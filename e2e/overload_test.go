package e2e

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The overload-protection walk, black-box against the real binary: a
// 200-job burst from one flooding client against 2 workers and a
// 32-deep queue, a steady second client that must not starve behind it,
// deadline-aware shedding, and the device-health circuit breaker opening
// on simulated all-device failures and recovering after its cooldown —
// all observed purely through the published HTTP surfaces (/v1/screens,
// /healthz, /metrics, /debug/snapshot).

// overloadRequest adds the overload-protection request fields to the
// wire format (the base screenRequest predates them).
type overloadRequest struct {
	screenRequest
	Priority        string  `json:"priority,omitempty"`
	ClientID        string  `json:"client_id,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	Faults          string  `json:"faults,omitempty"`
}

// shedBody is the structured overload-rejection payload.
type shedBody struct {
	Error             string `json:"error"`
	Reason            string `json:"reason"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
	QueueDepth        int    `json:"queue_depth"`
	Limit             int    `json:"limit"`
}

// statsView is the /healthz payload subset the assertions need.
type statsView struct {
	QueueDepth int    `json:"queue_depth"`
	Breaker    string `json:"breaker"`
	Limit      int    `json:"limit"`
}

// postScreen submits one request and returns the response status, the
// decoded job view (on 2xx) and the decoded shed body (on 4xx/5xx).
func postScreen(t *testing.T, apiURL string, req overloadRequest) (int, jobView, shedBody, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(apiURL+"/v1/screens", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var view jobView
	var shed shedBody
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("submit: decode view: %v", err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
			t.Fatalf("submit: decode shed body (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode, view, shed, resp.Header
}

// pollTerminal polls a job to a terminal state and returns its final view.
func pollTerminal(t *testing.T, apiURL, id string, within time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(within)
	var view jobView
	for {
		getJSON(t, apiURL+"/v1/screens/"+id, &view)
		switch view.State {
		case "done", "failed", "cancelled", "shed":
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", id, view.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// metricValue extracts one un-labeled (or exactly-labeled) series value
// from a Prometheus text exposition.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series+" ")), 64)
			if err != nil {
				t.Fatalf("series %q has unparsable value in %q: %v", series, line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition", series)
	return 0
}

func TestOverloadProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches a real server binary")
	}
	bin := buildServer(t)
	apiURL, debugURL := startServer(t, bin,
		"-queue", "32",
		"-breaker-threshold", "2",
		"-breaker-cooldown", "2s",
	)

	// ---- Phase 1: the flood. 200 concurrent low-priority submissions
	// from one client against 2 workers and 32 queue slots. Real (not
	// modeled) host screens so the backlog drains slowly enough to observe.
	floodReq := overloadRequest{
		screenRequest: screenRequest{
			Dataset: "2BSM", Library: 10, Spots: 4,
			Metaheuristic: "M1", Scale: 0.2,
		},
		Priority: "low",
		ClientID: "flood",
	}
	var (
		wg            sync.WaitGroup
		mu            sync.Mutex
		acceptedIDs   []string
		rejected      atomic.Int64
		badRejections atomic.Int64
	)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := floodReq
			req.Seed = uint64(i + 1)
			body, _ := json.Marshal(req)
			resp, err := http.Post(apiURL+"/v1/screens", "application/json", strings.NewReader(string(body)))
			if err != nil {
				badRejections.Add(1)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				var view jobView
				if json.NewDecoder(resp.Body).Decode(&view) == nil && view.ID != "" {
					mu.Lock()
					acceptedIDs = append(acceptedIDs, view.ID)
					mu.Unlock()
				}
				return
			}
			// Every rejection must be a structured, retryable 429.
			rejected.Add(1)
			var shed shedBody
			if resp.StatusCode != http.StatusTooManyRequests ||
				resp.Header.Get("Retry-After") == "" ||
				json.NewDecoder(resp.Body).Decode(&shed) != nil ||
				shed.Reason != "queue_full" || shed.Limit != 32 || shed.RetryAfterSeconds < 1 {
				badRejections.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if badRejections.Load() != 0 {
		t.Fatalf("%d rejections were malformed (want 429 + Retry-After + structured body)", badRejections.Load())
	}
	if rejected.Load() == 0 {
		t.Fatal("200-job burst against a 32-slot queue produced no 429s")
	}
	t.Logf("burst: %d accepted, %d shed with structured 429s", len(acceptedIDs), rejected.Load())

	// ---- Phase 2: the steady client must not starve behind the flood.
	// Its high-priority modeled job is submitted while the flood backlog
	// is deep and must complete while flood jobs are still queued.
	var st statsView
	getJSON(t, apiURL+"/healthz", &st)
	if st.QueueDepth < 10 {
		t.Fatalf("flood backlog already drained (depth %d); cannot observe fairness", st.QueueDepth)
	}
	steady := overloadRequest{
		screenRequest: screenRequest{
			Dataset: "2BSM", Library: 2, Spots: 1,
			Metaheuristic: "M1", Scale: 0.02, Modeled: true, Seed: 999,
		},
		Priority: "high",
		ClientID: "steady",
	}
	var steadyID string
	submitDeadline := time.Now().Add(30 * time.Second)
	for steadyID == "" {
		code, view, _, _ := postScreen(t, apiURL, steady)
		switch code {
		case http.StatusAccepted:
			steadyID = view.ID
		case http.StatusTooManyRequests:
			if time.Now().After(submitDeadline) {
				t.Fatal("steady client could never get a job admitted")
			}
			time.Sleep(100 * time.Millisecond)
		default:
			t.Fatalf("steady submit status %d", code)
		}
	}
	steadyView := pollTerminal(t, apiURL, steadyID, 30*time.Second)
	if steadyView.State != "done" {
		t.Fatalf("steady job finished as %s (%s)", steadyView.State, steadyView.Error)
	}
	getJSON(t, apiURL+"/healthz", &st)
	if st.QueueDepth == 0 {
		t.Error("steady job only completed after the whole flood drained (starvation not disproven)")
	} else {
		t.Logf("steady client finished with %d flood jobs still queued", st.QueueDepth)
	}

	// ---- Phase 3: deadline-aware shedding. With run-time and queue-wait
	// estimates trained by the flood, a 1ms deadline is unmeetable and is
	// rejected at admission with its own reason.
	impatient := steady
	impatient.ClientID = "impatient"
	impatient.Seed = 1000
	impatient.DeadlineSeconds = 0.001
	code, _, shed, hdr := postScreen(t, apiURL, impatient)
	if code != http.StatusTooManyRequests || shed.Reason != "deadline_admission" {
		t.Fatalf("1ms-deadline submit: status %d reason %q, want 429 deadline_admission", code, shed.Reason)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("deadline rejection missing Retry-After")
	}

	// ---- Phase 4: every accepted flood job reaches a terminal state.
	for _, id := range acceptedIDs {
		v := pollTerminal(t, apiURL, id, 90*time.Second)
		if v.State != "done" {
			t.Errorf("flood job %s finished as %s (%s)", id, v.State, v.Error)
		}
	}

	// ---- Phase 5: the circuit breaker. Two machine jobs whose injected
	// faults kill both Hertz devices open the circuit; open rejects machine
	// jobs with 503; after the 2s cooldown a healthy probe closes it again.
	broken := overloadRequest{
		screenRequest: screenRequest{
			Dataset: "2BSM", Library: 4, Spots: 2,
			Metaheuristic: "M1", Scale: 0.02,
			Machine: "Hertz", Mode: "heterogeneous", Modeled: true,
		},
		ClientID: "chaos",
		Faults:   "dev0:fail@0.0001,dev1:fail@0.0001",
	}
	for i := uint64(1); i <= 2; i++ {
		req := broken
		req.Seed = 2000 + i
		code, view, _, _ := postScreen(t, apiURL, req)
		if code != http.StatusAccepted {
			t.Fatalf("faulted machine submit %d: status %d", i, code)
		}
		v := pollTerminal(t, apiURL, view.ID, 30*time.Second)
		if v.State != "failed" {
			t.Fatalf("faulted machine job %d finished as %s, want failed", i, v.State)
		}
	}
	exposition := getText(t, apiURL+"/metrics")
	if got := metricValue(t, exposition, "metascreen_breaker_state"); got != 2 {
		t.Fatalf("breaker_state %g after two all-device losses, want 2 (open)", got)
	}
	probeReq := broken
	probeReq.Faults = ""
	probeReq.Seed = 3000
	code, _, shed, hdr = postScreen(t, apiURL, probeReq)
	if code != http.StatusServiceUnavailable || shed.Reason != "breaker_open" {
		t.Fatalf("machine submit while open: status %d reason %q, want 503 breaker_open", code, shed.Reason)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("breaker rejection missing Retry-After")
	}
	// Host jobs keep flowing while the breaker is open.
	hostReq := steady
	hostReq.Seed = 3001
	hostReq.ClientID = "chaos"
	if code, view, _, _ := postScreen(t, apiURL, hostReq); code != http.StatusAccepted {
		t.Fatalf("host submit while breaker open: status %d", code)
	} else {
		pollTerminal(t, apiURL, view.ID, 30*time.Second)
	}

	time.Sleep(2500 * time.Millisecond) // past -breaker-cooldown
	probeReq.Seed = 3002
	code, probeView, _, _ := postScreen(t, apiURL, probeReq)
	if code != http.StatusAccepted {
		t.Fatalf("probe submit after cooldown: status %d", code)
	}
	if v := pollTerminal(t, apiURL, probeView.ID, 30*time.Second); v.State != "done" {
		t.Fatalf("probe finished as %s (%s)", v.State, v.Error)
	}
	exposition = getText(t, apiURL+"/metrics")
	if got := metricValue(t, exposition, "metascreen_breaker_state"); got != 0 {
		t.Fatalf("breaker_state %g after successful probe, want 0 (closed)", got)
	}

	// ---- Phase 6: the whole story is visible on the published surfaces.
	for _, want := range []string{
		`metascreen_jobs_shed_total{reason="queue_full"}`,
		`metascreen_jobs_shed_total{reason="deadline_admission"}`,
		`metascreen_jobs_shed_total{reason="breaker_open"}`,
		`metascreen_queue_depth_class{class="high"}`,
		`metascreen_job_class_queue_seconds_count{class="low"}`,
		"metascreen_admission_limit",
		"metascreen_admission_inflight",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if metricValue(t, exposition, `metascreen_jobs_shed_total{reason="queue_full"}`) == 0 {
		t.Error("queue_full sheds not counted")
	}
	var snap struct {
		Admission struct {
			Limit   int    `json:"limit"`
			Breaker string `json:"breaker"`
		} `json:"admission"`
		Shed map[string]int64 `json:"shed"`
	}
	getJSON(t, debugURL+"/debug/snapshot", &snap)
	if snap.Admission.Limit < 1 || snap.Admission.Breaker != "closed" {
		t.Errorf("debug snapshot admission %+v", snap.Admission)
	}
	if snap.Shed["queue_full"] == 0 {
		t.Errorf("debug snapshot shed %v missing queue_full", snap.Shed)
	}
}
