package e2e

// Network-chaos drill, black box: a coordinator launched with a -chaos
// plan partitions one of its two workers mid-screen. The coordinator's
// bounded, fenced client declares the victim dead and re-splits its
// unfinished ligands; when the partition heals the victim's heartbeats
// revive it under a fresh epoch and it rejoins. The merged ranking must
// still be byte-identical to the single-node baseline, with every ligand
// merged exactly once.

import (
	"fmt"
	"testing"
	"time"
)

func TestDistributedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real server binaries")
	}
	bin := buildServer(t)

	// The chaos plan targets a worker by host:port, so its address must be
	// known before the coordinator starts: reserve both up front. Plan
	// time runs from the coordinator's first worker request — the first
	// shard dispatch — so "partition@2s" means two seconds into the screen.
	victimAddr, healthyAddr := freeAddr(t), freeAddr(t)
	plan := fmt.Sprintf("%s:partition@2s+5s,%s:latency@20ms±10ms", victimAddr, victimAddr)
	coordURL, _ := startProc(t, bin, freeAddr(t),
		"-role", "coordinator",
		"-chaos", plan, "-chaos-seed", "7",
		"-request-timeout", "750ms",
		"-worker-attempts", "2",
		"-worker-retry-delay", "50ms",
		"-worker-timeout", "2s",
		"-poll-interval", "50ms")
	for _, addr := range []string{victimAddr, healthyAddr} {
		startProc(t, bin, addr,
			"-role", "worker", "-coordinator", coordURL, "-heartbeat", "200ms",
			"-workers", "1", "-screen-workers", "1")
	}
	waitAlive := func(want int, timeout time.Duration, context string) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			var rows []workerRow
			getJSON(t, coordURL+"/v1/workers", &rows)
			alive := 0
			for _, r := range rows {
				if r.Alive {
					alive++
				}
			}
			if alive == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d workers alive, want %d", context, alive, want)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitAlive(2, 15*time.Second, "startup")

	// Long enough that the partition window lands mid-screen on two
	// sequential-docking workers.
	chaosScreen := distScreen
	chaosScreen.Library = 24
	chaosScreen.Scale = 0.35

	// Single-node baseline on the worker that will stay healthy.
	baseline := submitDist(t, "http://"+healthyAddr, chaosScreen)
	ref := waitDist(t, "http://"+healthyAddr, baseline.ID, 120*time.Second, terminalDist)
	if ref.State != "done" {
		t.Fatalf("baseline screen ended %s: %s", ref.State, ref.Error)
	}

	v := submitDist(t, coordURL, chaosScreen)

	// The partition must bite: the victim's request failures cross the
	// death threshold even though its heartbeats (worker→coordinator, not
	// routed through the chaos transport) never stop.
	deadline := time.Now().Add(60 * time.Second)
	for metricValue(t, getText(t, coordURL+"/metrics"), "metascreen_dist_worker_deaths_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("partitioned worker never declared dead")
		}
		time.Sleep(100 * time.Millisecond)
	}

	final := waitDist(t, coordURL, v.ID, 180*time.Second, terminalDist)
	if final.State != "done" {
		t.Fatalf("screen ended %s under chaos: %s", final.State, final.Error)
	}
	if got, want := rankingBytes(t, final.Result.Ranking), rankingBytes(t, ref.Result.Ranking); got != want {
		t.Fatalf("post-chaos ranking != 1-node ranking:\n got %s\nwant %s", got, want)
	}
	if final.Result.SimulatedSeconds != ref.Result.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != baseline %v", final.Result.SimulatedSeconds, ref.Result.SimulatedSeconds)
	}
	if final.Resplits < 1 {
		t.Errorf("partition produced %d resplits, want >= 1", final.Resplits)
	}

	metrics := getText(t, coordURL+"/metrics")
	// Exactly one merge per target ligand — the no-double-merge invariant,
	// visible as a counter because stale partials are fenced, not merged.
	if merged := metricValue(t, metrics, "metascreen_dist_ligands_merged_total"); merged != float64(chaosScreen.Library) {
		t.Errorf("%v ligand merges for a %d-ligand screen (double merge?)", merged, chaosScreen.Library)
	}
	if metricValue(t, metrics, "metascreen_dist_reshards_total") < 1 {
		t.Error("reshard counter did not move under chaos")
	}

	// The healed victim rejoins under a fresh epoch.
	waitAlive(2, 30*time.Second, "after heal")
}
