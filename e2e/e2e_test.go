// Package e2e black-box tests the real vsserved binary: it is built with
// the Go toolchain, launched as a separate process with both the API and
// debug listeners up, and driven purely over HTTP — submit, poll,
// rankings, per-job Chrome trace, Prometheus metrics, pprof and the debug
// snapshot. Nothing here imports internal packages: if the test passes,
// an operator following the README gets the same behaviour.
package e2e

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// screenRequest mirrors the service's ScreenRequest wire format. Kept
// local on purpose: the e2e test speaks the published JSON contract, not
// the Go types.
type screenRequest struct {
	Dataset       string  `json:"dataset"`
	Library       int     `json:"library"`
	Spots         int     `json:"spots"`
	Metaheuristic string  `json:"metaheuristic"`
	Scale         float64 `json:"scale"`
	Machine       string  `json:"machine"`
	Mode          string  `json:"mode"`
	Modeled       bool    `json:"modeled"`
	Seed          uint64  `json:"seed"`
}

type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Ranking []struct {
			Ligand string  `json:"ligand"`
			Score  float64 `json:"score"`
		} `json:"ranking"`
		SimulatedSeconds float64              `json:"simulated_seconds"`
		WarmupFactors    map[string][]float64 `json:"warmup_factors"`
	} `json:"result"`
}

// chromeEvent is the subset of a Chrome trace event the assertions need.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// buildServer compiles cmd/vsserved once per test binary.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vsserved")
	cmd := exec.Command("go", "build", "-o", bin, "github.com/metascreen/metascreen/cmd/vsserved")
	cmd.Dir = ".." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build vsserved: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a localhost port by binding :0 and releasing it. The
// tiny race with another process grabbing it between Close and the
// server's bind is acceptable for CI.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startServer launches vsserved and waits for /healthz. The process is
// SIGTERM'd and reaped at cleanup; its stderr log is dumped on failure.
func startServer(t *testing.T, bin string, extra ...string) (apiURL, debugURL string) {
	t.Helper()
	api := freeAddr(t)
	debug := freeAddr(t)
	logPath := filepath.Join(t.TempDir(), "vsserved.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("create log: %v", err)
	}
	args := append([]string{
		"-addr", api,
		"-debug-addr", debug,
		"-workers", "2",
		"-log-level", "debug",
		"-log-format", "json",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatalf("start vsserved: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			cmd.Process.Kill()
			<-done
		}
		logFile.Close()
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("vsserved log:\n%s", b)
			}
		}
	})

	apiURL = "http://" + api
	debugURL = "http://" + debug
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(apiURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return apiURL, debugURL
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("vsserved never became healthy at %s (last err: %v)", apiURL, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// submitAndWait submits a screen and polls it to a terminal state.
func submitAndWait(t *testing.T, apiURL string, req screenRequest) jobView {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(apiURL+"/v1/screens", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view jobView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("submit: decode: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, view %+v", resp.StatusCode, view)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		getJSON(t, apiURL+"/v1/screens/"+view.ID, &view)
		switch view.State {
		case "done", "failed", "cancelled":
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", view.ID, view.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestEndToEnd is the observability walk: one modeled heterogeneous
// screen on the simulated "Hertz" machine, followed end to end from HTTP
// submission to individual simulated device operations via the job's
// Chrome trace, with the metrics and debug surfaces checked on the way.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches a real server binary")
	}
	bin := buildServer(t)
	apiURL, debugURL := startServer(t, bin)

	view := submitAndWait(t, apiURL, screenRequest{
		Dataset:       "2BSM",
		Library:       4,
		Spots:         2,
		Metaheuristic: "M1",
		Scale:         0.02,
		Machine:       "Hertz",
		Mode:          "heterogeneous",
		Modeled:       true,
		Seed:          7,
	})
	if view.State != "done" {
		t.Fatalf("job state = %q (error %q), want done", view.State, view.Error)
	}
	if view.Result == nil || len(view.Result.Ranking) != 4 {
		t.Fatalf("result = %+v, want a 4-ligand ranking", view.Result)
	}
	if view.Result.SimulatedSeconds <= 0 {
		t.Errorf("simulated_seconds = %v, want > 0", view.Result.SimulatedSeconds)
	}
	if len(view.Result.WarmupFactors) == 0 {
		t.Errorf("warmup_factors missing from result view")
	}
	for kind, percent := range view.Result.WarmupFactors {
		// The paper's Percent factors are relative to the slowest device:
		// each in (0, 1], with at least one device at exactly 1.
		max := 0.0
		for _, p := range percent {
			if p <= 0 || p > 1 {
				t.Errorf("warmup factor for %s out of (0,1]: %v", kind, percent)
			}
			if p > max {
				max = p
			}
		}
		if max != 1 {
			t.Errorf("warmup factors for %s have max %v, want 1", kind, max)
		}
	}

	t.Run("Trace", func(t *testing.T) { checkTrace(t, apiURL, view.ID) })
	t.Run("Metrics", func(t *testing.T) { checkMetrics(t, apiURL) })
	t.Run("Debug", func(t *testing.T) { checkDebug(t, debugURL) })
}

// checkTrace downloads the job's trace from both route aliases and
// asserts it is valid Chrome trace format covering all four levels of
// the stack: job, screen/ligand, generation, and device op.
func checkTrace(t *testing.T, apiURL, id string) {
	canonical := getText(t, apiURL+"/v1/screens/"+id+"/trace")
	alias := getText(t, apiURL+"/jobs/"+id+"/trace")
	if canonical != alias {
		t.Errorf("trace route aliases disagree: %d vs %d bytes", len(canonical), len(alias))
	}

	var events []chromeEvent
	if err := json.Unmarshal([]byte(canonical), &events); err != nil {
		t.Fatalf("trace is not a Chrome trace JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}

	cats := map[string]int{}
	procs := map[int]bool{}
	var haveProcessMeta, haveThreadMeta bool
	for _, ev := range events {
		switch ev.Ph {
		case "X", "i":
			cats[ev.Cat]++
			procs[ev.Pid] = true
			if ev.Ph == "X" && ev.Dur <= 0 {
				t.Errorf("complete event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
			if ev.Ts < 0 {
				t.Errorf("event %q has negative ts %v", ev.Name, ev.Ts)
			}
		case "M":
			switch ev.Name {
			case "process_name":
				haveProcessMeta = true
			case "thread_name":
				haveThreadMeta = true
			}
		default:
			t.Errorf("unexpected event phase %q on %q", ev.Ph, ev.Name)
		}
	}
	for _, cat := range []string{"job", "screen", "ligand", "generation", "device"} {
		if cats[cat] == 0 {
			t.Errorf("trace has no %q spans (got %v)", cat, cats)
		}
	}
	if !procs[1] || !procs[2] {
		t.Errorf("trace should span both clock processes (wall=1, sim=2), got %v", procs)
	}
	if !haveProcessMeta || !haveThreadMeta {
		t.Errorf("trace missing metadata events (process_name=%v thread_name=%v)",
			haveProcessMeta, haveThreadMeta)
	}

	// The job span must carry its correlation ID, tying the HTTP job to
	// everything beneath it.
	var jobSpan *chromeEvent
	for i, ev := range events {
		if ev.Cat == "job" && ev.Args["job"] == id {
			jobSpan = &events[i]
			break
		}
	}
	if jobSpan == nil {
		t.Fatalf("no job span with args.job == %q", id)
	}
}

// checkMetrics asserts the new latency histograms reached the Prometheus
// exposition after the job finished.
func checkMetrics(t *testing.T, apiURL string) {
	metrics := getText(t, apiURL+"/metrics")
	for _, want := range []string{
		"metascreen_job_latency_seconds_bucket{le=",
		"metascreen_job_queue_seconds_count 1",
		"metascreen_job_run_seconds_count 1",
		"metascreen_generation_sim_seconds_sum",
		"metascreen_jobs_finished_total{state=\"done\"} 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// checkDebug asserts the -debug-addr listener serves pprof, expvar and
// the operational snapshot with device utilization and warm-up factors.
func checkDebug(t *testing.T, debugURL string) {
	if body := getText(t, debugURL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not list profiles")
	}
	var vars map[string]any
	getJSON(t, debugURL+"/debug/vars", &vars)
	if _, ok := vars["memstats"]; !ok {
		t.Errorf("/debug/vars has no memstats")
	}

	var snap struct {
		Stats struct {
			Workers int `json:"workers"`
		} `json:"stats"`
		Jobs          int     `json:"jobs"`
		Goroutines    int     `json:"goroutines"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		DeviceBusy    []struct {
			Track       string  `json:"track"`
			BusySeconds float64 `json:"busy_seconds"`
		} `json:"device_busy"`
		WarmupFactors map[string][]float64 `json:"warmup_factors"`
	}
	getJSON(t, debugURL+"/debug/snapshot", &snap)
	if snap.Jobs != 1 {
		t.Errorf("snapshot jobs = %d, want 1", snap.Jobs)
	}
	if snap.Goroutines <= 0 || snap.UptimeSeconds <= 0 {
		t.Errorf("snapshot vitals missing: goroutines=%d uptime=%v",
			snap.Goroutines, snap.UptimeSeconds)
	}
	if len(snap.DeviceBusy) == 0 {
		t.Errorf("snapshot has no per-device busy time")
	}
	for _, d := range snap.DeviceBusy {
		if d.BusySeconds <= 0 {
			t.Errorf("device track %q busy = %v, want > 0", d.Track, d.BusySeconds)
		}
	}
	if len(snap.WarmupFactors) == 0 {
		t.Errorf("snapshot has no warm-up factors")
	}
}

// TestTraceWhileRunning asserts tracing a live job returns a valid
// (partial) Chrome trace rather than erroring or blocking.
func TestTraceWhileRunning(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches a real server binary")
	}
	bin := buildServer(t)
	apiURL, _ := startServer(t, bin)

	body, _ := json.Marshal(screenRequest{
		Library: 6, Spots: 2, Metaheuristic: "M2", Scale: 0.05,
		Machine: "Hertz", Mode: "dynamic", Modeled: true, Seed: 11,
	})
	resp, err := http.Post(apiURL+"/v1/screens", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view jobView
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Immediately export the trace; the job is queued or running.
	var events []chromeEvent
	if err := json.Unmarshal([]byte(getText(t, apiURL+"/v1/screens/"+view.ID+"/trace")), &events); err != nil {
		t.Fatalf("live trace is not valid JSON: %v", err)
	}

	// It must still finish cleanly afterwards.
	deadline := time.Now().Add(90 * time.Second)
	for view.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", view.ID, view.State)
		}
		time.Sleep(100 * time.Millisecond)
		getJSON(t, apiURL+"/v1/screens/"+view.ID, &view)
	}
}

// TestTraceNotFound pins the 404 contract for unknown job IDs.
func TestTraceNotFound(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches a real server binary")
	}
	bin := buildServer(t)
	apiURL, _ := startServer(t, bin)
	resp, err := http.Get(apiURL + "/v1/screens/job-999999/trace")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var fail map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil || fail["error"] == "" {
		t.Fatalf("404 body should be {\"error\": ...}, got err=%v body=%v", err, fail)
	}
}
