package e2e

// Multi-node distributed screening, black box: a coordinator and three
// worker vsserved processes are launched as real binaries and driven
// purely over HTTP. The contract under test is the tentpole one — a
// screen sharded across workers merges to a ranking byte-identical to
// the same screen on a single node, and that stays true when one worker
// is SIGKILLed mid-screen and its ligands are re-split over survivors.

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// distRankRow carries every ranking field the wire exposes, so the
// byte-identity comparison covers the full row, not a projection.
type distRankRow struct {
	Rank   int     `json:"rank"`
	Ligand string  `json:"ligand"`
	Atoms  int     `json:"atoms"`
	Score  float64 `json:"score"`
	Spot   int     `json:"spot"`
}

type distJobView struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Error     string `json:"error"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	Resplits  int    `json:"resplits"`
	Result    *struct {
		Ranking          []distRankRow `json:"ranking"`
		SimulatedSeconds float64       `json:"simulated_seconds"`
		Evaluations      int64         `json:"evaluations"`
	} `json:"result"`
}

type workerRow struct {
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// startProc launches a vsserved with explicit args, waits for /healthz,
// and returns the base URL plus the process handle (so tests can
// SIGKILL it). Cleanup terminates it if still running.
func startProc(t *testing.T, bin, api string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	logPath := filepath.Join(t.TempDir(), "vsserved.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("create log: %v", err)
	}
	cmd := exec.Command(bin, append([]string{"-addr", api, "-log-format", "json"}, args...)...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatalf("start vsserved: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			cmd.Process.Kill()
			<-done
		}
		logFile.Close()
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("vsserved %s log:\n%s", api, b)
			}
		}
	})
	url := "http://" + api
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, herr := http.Get(url + "/healthz")
		if herr == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url, cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("vsserved at %s never became healthy (last err: %v)", url, herr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// startCluster boots a coordinator plus n workers and waits until the
// coordinator sees all of them alive. Worker processes are returned for
// fault injection.
func startCluster(t *testing.T, bin string, n int, coordArgs, workerArgs []string) (coordURL string, workers []*exec.Cmd, workerURLs []string) {
	t.Helper()
	coordURL, _ = startProc(t, bin, freeAddr(t), append([]string{"-role", "coordinator"}, coordArgs...)...)
	for i := 0; i < n; i++ {
		args := append([]string{"-role", "worker", "-coordinator", coordURL, "-heartbeat", "200ms"}, workerArgs...)
		u, cmd := startProc(t, bin, freeAddr(t), args...)
		workers = append(workers, cmd)
		workerURLs = append(workerURLs, u)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var rows []workerRow
		getJSON(t, coordURL+"/v1/workers", &rows)
		alive := 0
		for _, r := range rows {
			if r.Alive {
				alive++
			}
		}
		if alive == n {
			return coordURL, workers, workerURLs
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered with the coordinator", alive, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// submitDist submits a screen to a coordinator (or node — same API) and
// returns the accepted view without waiting.
func submitDist(t *testing.T, base string, req screenRequest) distJobView {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/screens", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view distJobView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("submit: decode: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, view %+v", resp.StatusCode, view)
	}
	return view
}

// waitDist polls a job until the predicate holds.
func waitDist(t *testing.T, base, id string, timeout time.Duration, pred func(distJobView) bool) distJobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v distJobView
		getJSON(t, base+"/v1/screens/"+id+"?limit=10000", &v)
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: state=%s completed=%d/%d err=%q", id, v.State, v.Completed, v.Total, v.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func terminalDist(v distJobView) bool {
	switch v.State {
	case "done", "failed", "cancelled", "shed":
		return true
	}
	return false
}

func rankingBytes(t *testing.T, rows []distRankRow) string {
	t.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// distScreen is the screen both distributed e2e tests run: real force
// field, large enough that three shards all get work and a mid-screen
// kill has a window to land in (sequential docking per worker).
var distScreen = screenRequest{
	Dataset:       "2BSM",
	Library:       18,
	Spots:         2,
	Metaheuristic: "M3",
	Scale:         0.3,
	Seed:          7,
}

// TestDistributedScreening: 3-worker screen == 1-node screen, byte for
// byte, plus the scale-out surfaces (membership, readyz, dist metrics).
func TestDistributedScreening(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real server binaries")
	}
	bin := buildServer(t)
	coordURL, _, workerURLs := startCluster(t, bin, 3,
		[]string{"-worker-timeout", "2s", "-poll-interval", "50ms"},
		[]string{"-workers", "1", "-screen-workers", "1"})

	// Readiness: every process reports ready before work is routed.
	for _, u := range append([]string{coordURL}, workerURLs...) {
		resp, err := http.Get(u + "/readyz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/readyz: %v (status %v)", u, err, resp)
		}
		resp.Body.Close()
	}

	// Single-node baseline on worker 1 — a worker is a stock node, so it
	// doubles as the reference platform.
	baseline := submitDist(t, workerURLs[0], distScreen)
	ref := waitDist(t, workerURLs[0], baseline.ID, 90*time.Second, terminalDist)
	if ref.State != "done" {
		t.Fatalf("baseline screen ended %s: %s", ref.State, ref.Error)
	}

	v := submitDist(t, coordURL, distScreen)
	final := waitDist(t, coordURL, v.ID, 120*time.Second, terminalDist)
	if final.State != "done" {
		t.Fatalf("distributed screen ended %s: %s", final.State, final.Error)
	}
	if got, want := rankingBytes(t, final.Result.Ranking), rankingBytes(t, ref.Result.Ranking); got != want {
		t.Fatalf("3-node ranking != 1-node ranking:\n got %s\nwant %s", got, want)
	}
	if final.Result.SimulatedSeconds != ref.Result.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != baseline %v", final.Result.SimulatedSeconds, ref.Result.SimulatedSeconds)
	}
	if final.Result.Evaluations != ref.Result.Evaluations {
		t.Errorf("evaluations %d != baseline %d", final.Result.Evaluations, ref.Result.Evaluations)
	}

	metrics := getText(t, coordURL+"/metrics")
	for _, want := range []string{
		"metascreen_dist_workers_alive 3",
		"metascreen_dist_shards_total",
		"metascreen_dist_ligands_merged_total",
		`metascreen_dist_jobs_finished_total{state="done"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
}

// TestDistributedWorkerLoss: SIGKILL one of three workers mid-screen.
// The survivors absorb its unfinished ligands and the final ranking is
// still byte-identical to the single-node baseline.
func TestDistributedWorkerLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real server binaries")
	}
	bin := buildServer(t)
	coordURL, workers, workerURLs := startCluster(t, bin, 3,
		[]string{"-worker-timeout", "1s", "-poll-interval", "50ms"},
		[]string{"-workers", "1", "-screen-workers", "1"})

	baseline := submitDist(t, workerURLs[0], distScreen)
	ref := waitDist(t, workerURLs[0], baseline.ID, 90*time.Second, terminalDist)
	if ref.State != "done" {
		t.Fatalf("baseline screen ended %s: %s", ref.State, ref.Error)
	}

	v := submitDist(t, coordURL, distScreen)
	waitDist(t, coordURL, v.ID, 90*time.Second, func(v distJobView) bool {
		return v.Completed > 0 && v.Completed < v.Total
	})
	// Kill a worker the hard way — no drain, no goodbye.
	if err := workers[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker: %v", err)
	}

	final := waitDist(t, coordURL, v.ID, 120*time.Second, terminalDist)
	if final.State != "done" {
		t.Fatalf("screen ended %s after worker kill: %s", final.State, final.Error)
	}
	if got, want := rankingBytes(t, final.Result.Ranking), rankingBytes(t, ref.Result.Ranking); got != want {
		t.Fatalf("post-kill ranking != 1-node ranking:\n got %s\nwant %s", got, want)
	}
	if final.Result.SimulatedSeconds != ref.Result.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != baseline %v", final.Result.SimulatedSeconds, ref.Result.SimulatedSeconds)
	}

	var rows []workerRow
	getJSON(t, coordURL+"/v1/workers", &rows)
	alive := 0
	for _, r := range rows {
		if r.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("%d workers alive after the kill, want 2", alive)
	}
	metrics := getText(t, coordURL+"/metrics")
	if !strings.Contains(metrics, "metascreen_dist_reshards_total") ||
		strings.Contains(metrics, "metascreen_dist_reshards_total 0\n") {
		t.Errorf("reshard counter did not move:\n%s", metrics)
	}
	if final.Resplits < 1 {
		t.Errorf("job view reports %d resplits, want >= 1", final.Resplits)
	}
}
