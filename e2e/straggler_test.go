package e2e

// Straggler drill, black box: a 3-worker cluster where one worker is
// both lagged (netsim latency on every coordinator->victim request) and
// genuinely stalled (a soak screen submitted directly to its one-slot
// pool, so the coordinator's shard queues behind it at zero progress).
// The coordinator must notice the straggler, steal its shard onto the
// idle healthy workers, and finish within a bounded multiple of the
// healthy-cluster makespan — with a ranking still byte-identical to the
// single-node run and every ligand merged exactly once.

import (
	"fmt"
	"testing"
	"time"
)

// snapshotWorker mirrors the worker rows of GET /debug/snapshot.
type snapshotWorker struct {
	URL           string  `json:"url"`
	Alive         bool    `json:"alive"`
	ThroughputLPS float64 `json:"throughput_lps"`
	Quarantined   bool    `json:"quarantined"`
	StolenFrom    int64   `json:"stolen_from"`
}

type snapshotView struct {
	Workers []snapshotWorker `json:"workers"`
}

// stragglerArgs is the coordinator tuning both clusters share, so the
// makespan comparison is apples to apples: only the chaos differs.
var stragglerArgs = []string{
	"-worker-timeout", "2s",
	"-poll-interval", "50ms",
	"-request-timeout", "3s",
	"-steal-threshold", "2",
	"-hedge-tail", "1",
	"-quarantine-factor", "4",
}

func TestDistributedStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real server binaries")
	}
	bin := buildServer(t)
	workerArgs := []string{"-workers", "1", "-screen-workers", "1"}

	// Healthy cluster: the single-node reference ranking and the makespan
	// the chaos run is judged against.
	coordURL, _, workerURLs := startCluster(t, bin, 3, stragglerArgs, workerArgs)
	baseline := submitDist(t, workerURLs[0], distScreen)
	ref := waitDist(t, workerURLs[0], baseline.ID, 120*time.Second, terminalDist)
	if ref.State != "done" {
		t.Fatalf("baseline screen ended %s: %s", ref.State, ref.Error)
	}
	healthyStart := time.Now()
	v := submitDist(t, coordURL, distScreen)
	healthy := waitDist(t, coordURL, v.ID, 120*time.Second, terminalDist)
	healthyMakespan := time.Since(healthyStart)
	if healthy.State != "done" {
		t.Fatalf("healthy-cluster screen ended %s: %s", healthy.State, healthy.Error)
	}
	if got, want := rankingBytes(t, healthy.Result.Ranking), rankingBytes(t, ref.Result.Ranking); got != want {
		t.Fatalf("healthy 3-node ranking != 1-node ranking:\n got %s\nwant %s", got, want)
	}

	// Chaos cluster: the victim's address must be known before the
	// coordinator starts so the latency plan can target it.
	victimAddr := freeAddr(t)
	plan := fmt.Sprintf("%s:latency@500ms±100ms", victimAddr)
	chaosCoord, _ := startProc(t, bin, freeAddr(t), append([]string{
		"-role", "coordinator", "-chaos", plan, "-chaos-seed", "7",
	}, stragglerArgs...)...)
	victimURL, _ := startProc(t, bin, victimAddr, append([]string{
		"-role", "worker", "-coordinator", chaosCoord, "-heartbeat", "200ms",
	}, workerArgs...)...)
	for i := 0; i < 2; i++ {
		startProc(t, bin, freeAddr(t), append([]string{
			"-role", "worker", "-coordinator", chaosCoord, "-heartbeat", "200ms",
		}, workerArgs...)...)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var rows []workerRow
		getJSON(t, chaosCoord+"/v1/workers", &rows)
		alive := 0
		for _, r := range rows {
			if r.Alive {
				alive++
			}
		}
		if alive == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 3 workers registered with the chaos coordinator", alive)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Stall the victim for real: its pool has one slot, so a soak screen
	// submitted directly serializes the coordinator's shard behind it at
	// zero progress — the shard's ETA is +Inf until stolen.
	soak := distScreen
	soak.Library = 60
	soak.Scale = 1.0
	soak.Seed = 3
	submitDist(t, victimURL, soak)

	chaosStart := time.Now()
	cv := submitDist(t, chaosCoord, distScreen)
	final := waitDist(t, chaosCoord, cv.ID, 180*time.Second, terminalDist)
	chaosMakespan := time.Since(chaosStart)
	if final.State != "done" {
		t.Fatalf("chaos screen ended %s: %s", final.State, final.Error)
	}

	// Correctness first: byte-identical ranking, every ligand exactly once.
	if got, want := rankingBytes(t, final.Result.Ranking), rankingBytes(t, ref.Result.Ranking); got != want {
		t.Fatalf("post-steal ranking != 1-node ranking:\n got %s\nwant %s", got, want)
	}
	metrics := getText(t, chaosCoord+"/metrics")
	if got := metricValue(t, metrics, "metascreen_dist_ligands_merged_total"); got != float64(distScreen.Library) {
		t.Errorf("ligands_merged_total = %v, want exactly %d", got, distScreen.Library)
	}
	if got := metricValue(t, metrics, "metascreen_dist_shards_stolen_total"); got < 1 {
		t.Errorf("shards_stolen_total = %v, want >= 1 — the stalled shard was never stolen", got)
	}

	// The mitigation bound: the stalled worker costs at most the healthy
	// makespan again (grace + re-run of its shard), with an absolute floor
	// so a very fast healthy run doesn't turn the bound into noise.
	limit := 2 * healthyMakespan
	if floor := healthyMakespan + 6*time.Second; limit < floor {
		limit = floor
	}
	if chaosMakespan > limit {
		t.Errorf("chaos makespan %v exceeds %v (healthy %v): straggler not mitigated",
			chaosMakespan, limit, healthyMakespan)
	}

	// The victim is visible in the operator surface: quarantined, stolen
	// from, and slower than the fleet in /debug/snapshot.
	var snap snapshotView
	getJSON(t, chaosCoord+"/debug/snapshot", &snap)
	found := false
	for _, w := range snap.Workers {
		if w.URL == victimURL {
			found = true
			if !w.Quarantined {
				t.Error("victim not quarantined in /debug/snapshot")
			}
			if w.StolenFrom < 1 {
				t.Error("victim's stolen_from counter is zero in /debug/snapshot")
			}
		}
	}
	if !found {
		t.Fatalf("victim %s missing from /debug/snapshot workers: %+v", victimURL, snap.Workers)
	}
}
