package metascreen_test

import (
	"testing"

	metascreen "github.com/metascreen/metascreen"
)

// TestFacadeQuickstart exercises the public API end to end exactly as the
// README shows it, without touching internal packages directly.
func TestFacadeQuickstart(t *testing.T) {
	ds := metascreen.Dataset2BSM()
	problem, err := metascreen.NewProblem(ds.Receptor, ds.Ligand,
		metascreen.SpotOptions{MaxSpots: 4}, metascreen.ForceFieldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := metascreen.NewPaperMetaheuristic("M3", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := metascreen.NewHostBackend(problem, metascreen.HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := metascreen.Run(problem, alg, backend, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Evaluated() {
		t.Fatal("no best pose")
	}
	if len(res.Spots) != 4 {
		t.Errorf("%d spot results", len(res.Spots))
	}
}

func TestFacadePoolBackend(t *testing.T) {
	problem, err := metascreen.NewProblemFromDataset(metascreen.Dataset2BSM(), metascreen.ForceFieldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := metascreen.NewPaperMetaheuristic("M1", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := metascreen.NewPoolBackend(problem, metascreen.PoolConfig{
		Specs: []metascreen.DeviceSpec{metascreen.TeslaK40c, metascreen.GTX580},
		Mode:  metascreen.Heterogeneous,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := metascreen.Run(problem, alg, backend, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedSeconds <= 0 {
		t.Error("no simulated time")
	}
}

func TestFacadeTables(t *testing.T) {
	tab, err := metascreen.RunTable(8, metascreen.TableConfig{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Number != 8 || len(tab.Rows) != 4 {
		t.Errorf("table = %d with %d rows", tab.Number, len(tab.Rows))
	}
	if _, err := metascreen.RunTable(3, metascreen.TableConfig{}); err == nil {
		t.Error("table 3 accepted")
	}
}

func TestFacadeCatalogueAndMachines(t *testing.T) {
	if len(metascreen.DeviceCatalogue()) < 4 {
		t.Error("catalogue too small")
	}
	if metascreen.Jupiter().CPUCores != 12 || metascreen.Hertz().CPUCores != 4 {
		t.Error("machines wrong")
	}
}

func TestFacadeCluster(t *testing.T) {
	problem, err := metascreen.NewProblemFromDataset(metascreen.Dataset2BSM(), metascreen.ForceFieldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := metascreen.RunCluster(problem, "M3", 0.05, metascreen.ClusterConfig{
		Nodes:       2,
		GPUsPerNode: []metascreen.DeviceSpec{metascreen.GTX580},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 || !res.Best.Evaluated() {
		t.Errorf("cluster result: %d nodes, best %v", len(res.Nodes), res.Best)
	}
}
