// Package bench holds metascreen's top-level benchmark harness: one
// benchmark per result table of the paper (Tables 6-9), microbenchmarks of
// the real scoring kernels, and the ablation studies listed in DESIGN.md.
//
// The table benchmarks replay the paper's full-scale workloads through the
// modeled backends and report the simulated execution times as custom
// metrics (sim-openmp-s, sim-het-s, ...), alongside the real time the
// replay took. Run them with:
//
//	go test -bench=Table -benchmem
package metascreen_test

import (
	"fmt"
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/tables"
	"github.com/metascreen/metascreen/internal/vec"
)

// benchScale trades fidelity for time in the table benchmarks: 1.0 replays
// the full paper workload on every iteration. 0.5 keeps each table row
// under ~1 s while preserving the full-scale shape for M4 (the dominant
// row) and the ordering of all columns.
const benchScale = 0.5

// benchTable runs one paper table row per sub-benchmark and reports the
// four simulated times the table's columns hold.
func benchTable(b *testing.B, number int) {
	exp, err := tables.ExperimentByNumber(number)
	if err != nil {
		b.Fatal(err)
	}
	for _, mh := range metaheuristic.PaperNames() {
		mh := mh
		b.Run(mh, func(b *testing.B) {
			var row tables.Row
			for i := 0; i < b.N; i++ {
				row, err = tables.RunRow(exp, mh, tables.Config{Scale: benchScale, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.OpenMP, "sim-openmp-s")
			if !isNaN(row.HomogeneousSystem) {
				b.ReportMetric(row.HomogeneousSystem, "sim-homogsys-s")
			}
			b.ReportMetric(row.HetHomogComputation, "sim-het/homog-s")
			b.ReportMetric(row.HetHetComputation, "sim-het/het-s")
			b.ReportMetric(row.SpeedupHetVsHomog(), "speedup-het")
			b.ReportMetric(row.SpeedupOpenMPVsHet(), "speedup-openmp")
		})
	}
}

func isNaN(f float64) bool { return f != f }

// BenchmarkTable6 regenerates the paper's Table 6 (Jupiter, PDB:2BSM).
func BenchmarkTable6(b *testing.B) { benchTable(b, 6) }

// BenchmarkTable7 regenerates the paper's Table 7 (Jupiter, PDB:2BXG).
func BenchmarkTable7(b *testing.B) { benchTable(b, 7) }

// BenchmarkTable8 regenerates the paper's Table 8 (Hertz, PDB:2BSM).
func BenchmarkTable8(b *testing.B) { benchTable(b, 8) }

// BenchmarkTable9 regenerates the paper's Table 9 (Hertz, PDB:2BXG).
func BenchmarkTable9(b *testing.B) { benchTable(b, 9) }

// --- real scoring-kernel microbenchmarks -------------------------------

// benchTopologies builds the 2BSM-sized scoring problem.
func benchTopologies() (rec, lig *forcefield.Topology, pose []vec.V3) {
	recM := molecule.Synthetic2BSMReceptor()
	ligM := molecule.Synthetic2BSMLigand().Centered()
	rec = forcefield.NewTopology(recM)
	lig = forcefield.NewTopology(ligM)
	// A pose at the receptor surface, where real docking evaluates.
	r := rng.New(1)
	center := recM.Centroid().Add(r.UnitVector().Scale(recM.Radius()))
	pose = make([]vec.V3, len(lig.Pos))
	for i, p := range lig.Pos {
		pose[i] = p.Add(center)
	}
	return rec, lig, pose
}

func benchScorer(b *testing.B, mk func(rec, lig *forcefield.Topology) forcefield.Scorer) {
	rec, lig, pose := benchTopologies()
	s := mk(rec, lig)
	pairs := float64(len(rec.Pos) * len(lig.Pos))
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += s.Score(pose)
	}
	b.StopTimer()
	if sum != sum {
		b.Fatal("NaN energy")
	}
	b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
}

// BenchmarkScorerDirect measures the reference O(R*L) scoring loop on the
// 2BSM workload (146 880 atom pairs per evaluation).
func BenchmarkScorerDirect(b *testing.B) {
	benchScorer(b, func(rec, lig *forcefield.Topology) forcefield.Scorer {
		return forcefield.NewDirect(rec, lig, forcefield.Options{})
	})
}

// BenchmarkScorerTiled measures the cache-blocked SoA kernel, the host
// analogue of the paper's shared-memory tiling.
func BenchmarkScorerTiled(b *testing.B) {
	benchScorer(b, func(rec, lig *forcefield.Topology) forcefield.Scorer {
		return forcefield.NewTiled(rec, lig, forcefield.Options{})
	})
}

// BenchmarkScorerCellList measures the cutoff-exploiting neighbour-grid
// scorer.
func BenchmarkScorerCellList(b *testing.B) {
	benchScorer(b, func(rec, lig *forcefield.Topology) forcefield.Scorer {
		return forcefield.NewCellList(rec, lig, forcefield.Options{})
	})
}

// BenchmarkScorerCoulomb measures the tiled kernel with the electrostatic
// extension enabled.
func BenchmarkScorerCoulomb(b *testing.B) {
	benchScorer(b, func(rec, lig *forcefield.Topology) forcefield.Scorer {
		return forcefield.NewTiled(rec, lig, forcefield.Options{Coulomb: true})
	})
}

// BenchmarkRealScreening measures a small end-to-end Real-mode run
// (receptor 600 atoms, 4 spots, scatter search).
func BenchmarkRealScreening(b *testing.B) {
	rec := molecule.SyntheticProtein("rec", 600, 31)
	lig := molecule.SyntheticLigand("lig", 12, 32)
	problem, err := core.NewProblem(rec, lig, surface.Options{MaxSpots: 4}, forcefield.Options{})
	if err != nil {
		b.Fatal(err)
	}
	alg, err := metaheuristic.NewScatterSearch("ss", metaheuristic.Params{
		PopulationPerSpot: 16, SelectFraction: 1,
		ImproveFraction: 0.5, ImproveMoves: 3, Generations: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend, err := core.NewHostBackend(problem, core.HostConfig{Real: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(problem, alg, backend, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md) ----------------------------------------------

// ablationProblem is the shared modeled workload for the scheduler
// ablations: the 2BSM problem with the M2 metaheuristic at half scale on
// the Hertz node.
func ablationRun(b *testing.B, cfg core.PoolConfig) float64 {
	b.Helper()
	problem, err := core.NewProblemFromDataset(core.Dataset2BSM(), forcefield.Options{})
	if err != nil {
		b.Fatal(err)
	}
	alg, err := metaheuristic.NewPaper("M2", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	if cfg.Specs == nil {
		cfg.Specs = []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
	}
	backend, err := core.NewPoolBackend(problem, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(problem, alg, backend, 1)
	if err != nil {
		b.Fatal(err)
	}
	return res.SimulatedSeconds
}

// BenchmarkAblationWarmup sweeps the warm-up iteration count: too few
// iterations measure noise, too many waste time. The paper uses five to
// ten.
func BenchmarkAblationWarmup(b *testing.B) {
	for _, iters := range []int{1, 2, 5, 10, 20, 40} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = ablationRun(b, core.PoolConfig{
					Mode:        sched.Heterogeneous,
					WarmupIters: iters,
					NoiseAmp:    0.05,
					Seed:        1,
				})
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// BenchmarkAblationGranularity sweeps the CUDA block granularity
// (warps per block): coarse blocks quantize the partition and erode the
// heterogeneous gain.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, wpb := range []int{1, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("warpsPerBlock=%d", wpb), func(b *testing.B) {
			var hom, het float64
			for i := 0; i < b.N; i++ {
				hom = ablationRun(b, core.PoolConfig{
					Mode: sched.Homogeneous, WarpsPerBlock: wpb, Seed: 1,
				})
				het = ablationRun(b, core.PoolConfig{
					Mode: sched.Heterogeneous, WarpsPerBlock: wpb, Seed: 1,
				})
			}
			b.ReportMetric(het, "sim-het-s")
			b.ReportMetric(hom/het, "gain")
		})
	}
}

// BenchmarkAblationDynamic sweeps the cooperative-scheduling chunk size
// against the static partitions.
func BenchmarkAblationDynamic(b *testing.B) {
	for _, chunk := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = ablationRun(b, core.PoolConfig{
					Mode: sched.Dynamic, ChunkSize: chunk, Seed: 1,
				})
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// BenchmarkAblationPipeline sweeps the stream-pipelining depth: overlap of
// chunk uploads with kernels hides part of the PCIe traffic.
func BenchmarkAblationPipeline(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = ablationRun(b, core.PoolConfig{
					Mode:          sched.Heterogeneous,
					PipelineDepth: depth,
					Seed:          1,
				})
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// BenchmarkAblationScaling sweeps the receptor size: the paper observes
// that the GPU advantage grows with the number of receptor atoms (more
// spots and more pairs per conformation).
func BenchmarkAblationScaling(b *testing.B) {
	for _, atoms := range []int{1000, 2000, 4000, 8000} {
		b.Run(fmt.Sprintf("atoms=%d", atoms), func(b *testing.B) {
			rec := molecule.SyntheticProtein("rec", atoms, 71)
			lig := molecule.SyntheticLigand("lig", 32, 72)
			problem, err := core.NewProblem(rec, lig, surface.Options{}, forcefield.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var cpuT, gpuT float64
			for i := 0; i < b.N; i++ {
				alg, err := metaheuristic.NewPaper("M3", 0.25)
				if err != nil {
					b.Fatal(err)
				}
				hb, err := core.NewHostBackend(problem, core.HostConfig{
					ModelCores: 4, ModelClockMHz: 3100,
				})
				if err != nil {
					b.Fatal(err)
				}
				hres, err := core.Run(problem, alg, hb, 1)
				if err != nil {
					b.Fatal(err)
				}
				pb, err := core.NewPoolBackend(problem, core.PoolConfig{
					Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
					Mode:  sched.Heterogeneous,
					Seed:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
				pres, err := core.Run(problem, alg, pb, 1)
				if err != nil {
					b.Fatal(err)
				}
				cpuT, gpuT = hres.SimulatedSeconds, pres.SimulatedSeconds
			}
			b.ReportMetric(cpuT/gpuT, "speedup")
		})
	}
}

// BenchmarkAblationJobLevel compares the paper's batched execution (all
// spots' conformations in shared per-generation grids) with job-level
// scheduling (one spot's whole run per device). Batched wins on wide GPUs
// because single-spot batches cannot fill their warp slots.
func BenchmarkAblationJobLevel(b *testing.B) {
	problem, err := core.NewProblemFromDataset(core.Dataset2BSM(), forcefield.Options{})
	if err != nil {
		b.Fatal(err)
	}
	specs := []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
	var batched, jobs float64
	for i := 0; i < b.N; i++ {
		batched, jobs, err = core.CompareExecutionModels(problem, "M3", 0.5, specs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batched, "sim-batched-s")
	b.ReportMetric(jobs, "sim-jobs-s")
	b.ReportMetric(jobs/batched, "batched-advantage")
}

// BenchmarkDeadlineQuality measures the paper's real-time-constraint
// claim: under the same simulated deadline, the heterogeneous split
// completes more generations than the homogeneous one, reaching better
// solutions. Reported metrics: generations completed per mode.
func BenchmarkDeadlineQuality(b *testing.B) {
	rec := molecule.SyntheticProtein("rec", 3000, 61)
	lig := molecule.SyntheticLigand("lig", 20, 62)
	problem, err := core.NewProblem(rec, lig, surface.Options{MaxSpots: 8}, forcefield.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []sched.Mode{sched.Homogeneous, sched.Heterogeneous} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var gens int
			var best float64
			for i := 0; i < b.N; i++ {
				alg, err := metaheuristic.NewScatterSearch("ss", metaheuristic.Params{
					PopulationPerSpot: 256, SelectFraction: 1,
					ImproveFraction: 0.5, ImproveMoves: 4, Generations: 400,
				})
				if err != nil {
					b.Fatal(err)
				}
				backend, err := core.NewPoolBackend(problem, core.PoolConfig{
					Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
					Mode:  mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.RunBudget(problem, alg, backend, 1, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				gens, best = res.Generations, res.Best.Score
			}
			b.ReportMetric(float64(gens), "generations")
			b.ReportMetric(best, "best-score")
		})
	}
}

// BenchmarkConformationApply measures the rigid-body pose transform, the
// per-warp preamble of the scoring kernel.
func BenchmarkConformationApply(b *testing.B) {
	lig := molecule.Synthetic2BSMLigand()
	pos := lig.Positions()
	dst := make([]vec.V3, len(pos))
	r := rng.New(1)
	c := conformation.New(0, r.InSphere(30), r.Quat())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Apply(pos, dst)
	}
}
