package tuning

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/metaheuristic"
)

// Recognized parameter names for MetaheuristicObjective.
const (
	ParamPopulation      = "population"
	ParamGenerations     = "generations"
	ParamImproveFraction = "improveFraction"
	ParamImproveMoves    = "improveMoves"
	ParamSelectFraction  = "selectFraction"
)

// ParamsFromAssignment builds template parameters from a tuning
// assignment, starting from base and overriding recognized names.
func ParamsFromAssignment(base metaheuristic.Params, a Assignment) (metaheuristic.Params, error) {
	p := base
	for name, v := range a {
		switch name {
		case ParamPopulation:
			p.PopulationPerSpot = int(v)
		case ParamGenerations:
			p.Generations = int(v)
		case ParamImproveFraction:
			p.ImproveFraction = v
		case ParamImproveMoves:
			p.ImproveMoves = int(v)
		case ParamSelectFraction:
			p.SelectFraction = v
		default:
			return p, fmt.Errorf("tuning: unknown parameter %q", name)
		}
	}
	return p, p.Validate()
}

// AlgorithmFactory builds a metaheuristic from tuned parameters.
type AlgorithmFactory func(p metaheuristic.Params) (metaheuristic.Algorithm, error)

// MetaheuristicObjective returns an Objective that runs the factory's
// algorithm on the problem with a real host backend and scores it by the
// best energy found (lower is better). Each configuration/seed pair is an
// independent, deterministic screening run.
func MetaheuristicObjective(p *core.Problem, base metaheuristic.Params, factory AlgorithmFactory) Objective {
	return func(a Assignment, seed uint64) (float64, error) {
		params, err := ParamsFromAssignment(base, a)
		if err != nil {
			return 0, err
		}
		alg, err := factory(params)
		if err != nil {
			return 0, err
		}
		backend, err := core.NewHostBackend(p, core.HostConfig{Real: true})
		if err != nil {
			return 0, err
		}
		res, err := core.Run(p, alg, backend, seed)
		if err != nil {
			return 0, err
		}
		return res.Best.Score, nil
	}
}
