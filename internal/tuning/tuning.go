// Package tuning implements the metaheuristic parameter-tuning process the
// paper's introduction describes ("for any particular metaheuristic, a
// tuning process is traditionally conducted to select appropriate values of
// some parameters... The experimentation with several metaheuristics and
// their tuning process drastically increases the computational cost").
//
// A Space enumerates candidate configurations, an Objective scores one
// configuration under one seed (lower is better, matching docking
// energies), and two tuners search the space: exhaustive GridSearch and
// Race, an F-Race-style procedure that adds replications round by round
// and eliminates configurations that fall behind the incumbent.
package tuning

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/metascreen/metascreen/internal/hostpar"
)

// Dimension is one tunable parameter and its candidate values.
type Dimension struct {
	// Name identifies the parameter, e.g. "improveMoves".
	Name string
	// Values are the candidates.
	Values []float64
}

// Assignment maps parameter names to chosen values.
type Assignment map[string]float64

// String renders the assignment deterministically (sorted by name).
func (a Assignment) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, a[k]))
	}
	return strings.Join(parts, " ")
}

// clone returns a copy of the assignment.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Space is the cartesian parameter space.
type Space struct {
	Dims []Dimension
}

// Validate checks the space is non-degenerate.
func (s Space) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("tuning: empty space")
	}
	seen := map[string]bool{}
	for _, d := range s.Dims {
		if d.Name == "" {
			return fmt.Errorf("tuning: dimension with empty name")
		}
		if seen[d.Name] {
			return fmt.Errorf("tuning: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
		if len(d.Values) == 0 {
			return fmt.Errorf("tuning: dimension %q has no values", d.Name)
		}
	}
	return nil
}

// Size returns the number of configurations in the space.
func (s Space) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= len(d.Values)
	}
	return n
}

// Enumerate lists every configuration in deterministic order.
func (s Space) Enumerate() []Assignment {
	out := []Assignment{{}}
	for _, d := range s.Dims {
		next := make([]Assignment, 0, len(out)*len(d.Values))
		for _, base := range out {
			for _, v := range d.Values {
				a := base.clone()
				a[d.Name] = v
				next = append(next, a)
			}
		}
		out = next
	}
	return out
}

// Objective evaluates one configuration under one seed; lower is better.
type Objective func(a Assignment, seed uint64) (float64, error)

// Evaluated is a configuration with its replication statistics.
type Evaluated struct {
	// Config is the assignment.
	Config Assignment
	// Scores holds one objective value per replication.
	Scores []float64
	// Mean and Std summarize Scores.
	Mean, Std float64
}

func summarize(e *Evaluated) {
	n := float64(len(e.Scores))
	if n == 0 {
		e.Mean, e.Std = math.Inf(1), 0
		return
	}
	sum := 0.0
	for _, v := range e.Scores {
		sum += v
	}
	e.Mean = sum / n
	var ss float64
	for _, v := range e.Scores {
		d := v - e.Mean
		ss += d * d
	}
	if n > 1 {
		e.Std = math.Sqrt(ss / (n - 1))
	}
}

// Options configures a tuner run.
type Options struct {
	// Replications is the number of seeds per configuration (GridSearch)
	// or the maximum rounds (Race); 0 means 5.
	Replications int
	// Workers bounds evaluation parallelism; 0 means all CPUs.
	Workers int
	// Seed derives the replication seeds.
	Seed uint64
	// EliminationMargin is Race's tolerance: a configuration is dropped
	// when its mean exceeds best mean + margin * pooled std; 0 means 1.0.
	EliminationMargin float64
	// MinSurvivors stops Race's elimination at this count; 0 means 1.
	MinSurvivors int
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 5
	}
	if o.Workers <= 0 {
		o.Workers = hostpar.DefaultThreads()
	}
	if o.EliminationMargin <= 0 {
		o.EliminationMargin = 1.0
	}
	if o.MinSurvivors <= 0 {
		o.MinSurvivors = 1
	}
	return o
}

// GridSearch evaluates every configuration with the same replication
// seeds and returns them ranked best (lowest mean) first. Evaluation
// errors abort the search.
func GridSearch(space Space, obj Objective, opts Options) ([]Evaluated, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	configs := space.Enumerate()
	results := make([]Evaluated, len(configs))
	errs := make([]error, len(configs))
	team := hostpar.NewTeam(opts.Workers)
	team.ForChunk(len(configs), hostpar.Dynamic, 1, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			e := Evaluated{Config: configs[i]}
			for rep := 0; rep < opts.Replications; rep++ {
				v, err := obj(configs[i], opts.Seed+uint64(rep))
				if err != nil {
					errs[i] = err
					return
				}
				e.Scores = append(e.Scores, v)
			}
			summarize(&e)
			results[i] = e
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rank(results)
	return results, nil
}

// Race runs the F-Race-style procedure: each round every surviving
// configuration receives one more replication (all with the same seed, a
// blocked design), then configurations whose mean trails the best by more
// than the elimination margin are dropped. It returns all configurations,
// survivors first, each carrying the replications it received.
func Race(space Space, obj Objective, opts Options) ([]Evaluated, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	configs := space.Enumerate()
	state := make([]Evaluated, len(configs))
	for i := range state {
		state[i] = Evaluated{Config: configs[i]}
	}
	alive := make([]int, len(configs))
	for i := range alive {
		alive[i] = i
	}
	team := hostpar.NewTeam(opts.Workers)

	for round := 0; round < opts.Replications && len(alive) > opts.MinSurvivors; round++ {
		errs := make([]error, len(alive))
		team.ForChunk(len(alive), hostpar.Dynamic, 1, func(lo, hi, _ int) {
			for k := lo; k < hi; k++ {
				i := alive[k]
				v, err := obj(state[i].Config, opts.Seed+uint64(round))
				if err != nil {
					errs[k] = err
					return
				}
				state[i].Scores = append(state[i].Scores, v)
				summarize(&state[i])
			}
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Need at least two replications before eliminating anything.
		if round == 0 {
			continue
		}
		best := math.Inf(1)
		var pooled float64
		for _, i := range alive {
			if state[i].Mean < best {
				best = state[i].Mean
			}
			pooled += state[i].Std
		}
		pooled /= float64(len(alive))
		cut := best + opts.EliminationMargin*(pooled+1e-12)
		var next []int
		for _, i := range alive {
			if state[i].Mean <= cut {
				next = append(next, i)
			}
		}
		// Keep at least MinSurvivors (the best ones).
		if len(next) < opts.MinSurvivors {
			sort.Slice(alive, func(a, b int) bool { return state[alive[a]].Mean < state[alive[b]].Mean })
			next = append([]int(nil), alive[:opts.MinSurvivors]...)
		}
		alive = next
	}
	rank(state)
	return state, nil
}

// rank orders evaluated configurations: more replications first (Race
// survivors), then by mean, then by deterministic config string.
func rank(results []Evaluated) {
	sort.Slice(results, func(a, b int) bool {
		ra, rb := results[a], results[b]
		if len(ra.Scores) != len(rb.Scores) {
			return len(ra.Scores) > len(rb.Scores)
		}
		if ra.Mean != rb.Mean {
			return ra.Mean < rb.Mean
		}
		return ra.Config.String() < rb.Config.String()
	})
}
