package tuning

import (
	"fmt"
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
)

func space2D() Space {
	return Space{Dims: []Dimension{
		{Name: "x", Values: []float64{0, 1, 2, 3}},
		{Name: "y", Values: []float64{0, 1, 2}},
	}}
}

// bowl is a deterministic objective with optimum at x=2, y=1 plus
// seed-dependent noise.
func bowl(a Assignment, seed uint64) (float64, error) {
	r := rng.New(seed)
	noise := 0.05 * r.NormFloat64()
	dx := a["x"] - 2
	dy := a["y"] - 1
	return dx*dx + dy*dy + noise, nil
}

func TestSpaceEnumerate(t *testing.T) {
	s := space2D()
	if s.Size() != 12 {
		t.Errorf("Size = %d", s.Size())
	}
	configs := s.Enumerate()
	if len(configs) != 12 {
		t.Fatalf("enumerated %d", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		key := c.String()
		if seen[key] {
			t.Errorf("duplicate config %s", key)
		}
		seen[key] = true
	}
}

func TestSpaceValidate(t *testing.T) {
	bad := []Space{
		{},
		{Dims: []Dimension{{Name: "", Values: []float64{1}}}},
		{Dims: []Dimension{{Name: "a", Values: nil}}},
		{Dims: []Dimension{{Name: "a", Values: []float64{1}}, {Name: "a", Values: []float64{2}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad space %d accepted", i)
		}
	}
	if err := space2D().Validate(); err != nil {
		t.Errorf("good space rejected: %v", err)
	}
}

func TestGridSearchFindsOptimum(t *testing.T) {
	results, err := GridSearch(space2D(), bowl, Options{Replications: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("%d results", len(results))
	}
	best := results[0].Config
	if best["x"] != 2 || best["y"] != 1 {
		t.Errorf("best config = %v, want x=2 y=1", best)
	}
	// Ranked by mean.
	for i := 1; i < len(results); i++ {
		if results[i].Mean < results[i-1].Mean {
			t.Errorf("ranking broken at %d", i)
		}
	}
	// Statistics sane.
	for _, r := range results {
		if len(r.Scores) != 6 {
			t.Errorf("config %v has %d replications", r.Config, len(r.Scores))
		}
		if math.IsNaN(r.Mean) || r.Std < 0 {
			t.Errorf("bad stats %+v", r)
		}
	}
}

func TestGridSearchDeterministic(t *testing.T) {
	a, err := GridSearch(space2D(), bowl, Options{Replications: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GridSearch(space2D(), bowl, Options{Replications: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Config.String() != b[i].Config.String() || a[i].Mean != b[i].Mean {
			t.Fatalf("result %d differs between identical runs", i)
		}
	}
}

func TestGridSearchPropagatesErrors(t *testing.T) {
	fail := func(a Assignment, seed uint64) (float64, error) {
		if a["x"] == 2 {
			return 0, fmt.Errorf("boom")
		}
		return 0, nil
	}
	if _, err := GridSearch(space2D(), fail, Options{Replications: 2}); err == nil {
		t.Error("objective error swallowed")
	}
}

func TestRaceEliminatesAndKeepsBest(t *testing.T) {
	results, err := Race(space2D(), bowl, Options{Replications: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The winner (most replications, best mean) must be the true optimum.
	best := results[0]
	if best.Config["x"] != 2 || best.Config["y"] != 1 {
		t.Errorf("race winner = %v", best.Config)
	}
	// Elimination must have happened: no configuration may consume the
	// full replication budget when the race converges early, and the
	// worst configuration must have been cut before the last round.
	worst := results[len(results)-1]
	if len(worst.Scores) >= 8 {
		t.Errorf("worst config got all %d replications: no elimination happened", len(worst.Scores))
	}
	// Total replications must be well below grid search's cost.
	total := 0
	for _, r := range results {
		total += len(r.Scores)
	}
	if total >= 12*8 {
		t.Errorf("race used %d evaluations, grid would use %d", total, 12*8)
	}
}

func TestRaceRespectsMinSurvivors(t *testing.T) {
	results, err := Race(space2D(), bowl, Options{
		Replications: 10, Seed: 13, MinSurvivors: 3, EliminationMargin: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxReps := len(results[0].Scores)
	survivors := 0
	for _, r := range results {
		if len(r.Scores) == maxReps {
			survivors++
		}
	}
	if survivors < 3 {
		t.Errorf("%d survivors, want >= 3", survivors)
	}
}

func TestAssignmentString(t *testing.T) {
	a := Assignment{"b": 2, "a": 1}
	if a.String() != "a=1 b=2" {
		t.Errorf("String = %q", a.String())
	}
}

func TestParamsFromAssignment(t *testing.T) {
	base := metaheuristic.Params{
		PopulationPerSpot: 16, SelectFraction: 1, Generations: 10,
	}
	p, err := ParamsFromAssignment(base, Assignment{
		ParamPopulation:      32,
		ParamImproveFraction: 0.5,
		ParamImproveMoves:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.PopulationPerSpot != 32 || p.ImproveFraction != 0.5 || p.ImproveMoves != 6 {
		t.Errorf("params = %+v", p)
	}
	if p.Generations != 10 {
		t.Error("base value not preserved")
	}
	if _, err := ParamsFromAssignment(base, Assignment{"bogus": 1}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := ParamsFromAssignment(base, Assignment{ParamPopulation: 0}); err == nil {
		t.Error("invalid resulting params accepted")
	}
}

func TestMetaheuristicObjectiveEndToEnd(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 400, 91)
	lig := molecule.SyntheticLigand("lig", 10, 92)
	problem, err := core.NewProblem(rec, lig, surface.Options{MaxSpots: 2}, forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := metaheuristic.Params{
		PopulationPerSpot: 8, SelectFraction: 1, Generations: 3,
	}
	obj := MetaheuristicObjective(problem, base, func(p metaheuristic.Params) (metaheuristic.Algorithm, error) {
		return metaheuristic.NewScatterSearch("tune-ss", p)
	})
	space := Space{Dims: []Dimension{
		{Name: ParamImproveMoves, Values: []float64{0, 3}},
		{Name: ParamImproveFraction, Values: []float64{0, 1}},
	}}
	results, err := GridSearch(space, obj, Options{Replications: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	// Sanity: every configuration produced finite energies.
	for _, r := range results {
		if math.IsNaN(r.Mean) || math.IsInf(r.Mean, 0) {
			t.Errorf("config %v mean = %v", r.Config, r.Mean)
		}
	}
	// Local search on (improveMoves=3, fraction=1) should not be worse
	// than no local search with the same budget of generations.
	means := map[string]float64{}
	for _, r := range results {
		means[r.Config.String()] = r.Mean
	}
	with := means["improveFraction=1 improveMoves=3"]
	without := means["improveFraction=0 improveMoves=0"]
	if with > without {
		t.Errorf("local search (%v) worse than none (%v)", with, without)
	}
}
