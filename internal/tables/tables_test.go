package tables

import (
	"math"
	"strings"
	"testing"
)

func TestMachinesMatchPaper(t *testing.T) {
	j := Jupiter()
	if j.CPUCores != 12 || j.CPUClockMHz != 2000 {
		t.Errorf("Jupiter CPU = %d @ %v", j.CPUCores, j.CPUClockMHz)
	}
	if len(j.GPUs) != 6 {
		t.Errorf("Jupiter has %d GPUs, want 6", len(j.GPUs))
	}
	if len(j.HomogeneousGPUs()) != 4 {
		t.Errorf("Jupiter homogeneous subset = %d, want 4", len(j.HomogeneousGPUs()))
	}
	h := Hertz()
	if h.CPUCores != 4 || h.CPUClockMHz != 3100 {
		t.Errorf("Hertz CPU = %d @ %v", h.CPUCores, h.CPUClockMHz)
	}
	if len(h.GPUs) != 2 || h.HomogeneousGPUs() != nil {
		t.Errorf("Hertz GPUs = %d (homog subset %v)", len(h.GPUs), h.HomogeneousGPUs())
	}
	if _, err := MachineByName("Jupiter"); err != nil {
		t.Error(err)
	}
	if _, err := MachineByName("Saturn"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestExperimentsCoverTables6To9(t *testing.T) {
	exps := Experiments()
	if len(exps) != 4 {
		t.Fatalf("%d experiments", len(exps))
	}
	want := map[int]string{6: "2BSM", 7: "2BXG", 8: "2BSM", 9: "2BXG"}
	for _, e := range exps {
		if want[e.Number] != e.Dataset {
			t.Errorf("table %d dataset = %s", e.Number, e.Dataset)
		}
	}
	if _, err := ExperimentByNumber(6); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByNumber(5); err == nil {
		t.Error("table 5 is not a result table")
	}
}

func TestPaperResultsComplete(t *testing.T) {
	for n := 6; n <= 9; n++ {
		rows := PaperResults(n)
		if len(rows) != 4 {
			t.Errorf("table %d: %d paper rows", n, len(rows))
		}
		for mh, r := range rows {
			if r.OpenMP <= 0 || r.HetHetComputation <= 0 {
				t.Errorf("table %d %s: bad paper numbers %+v", n, mh, r)
			}
			if r.SpeedupHetVsHomog() < 1 {
				t.Errorf("table %d %s: paper het speed-up %v < 1", n, mh, r.SpeedupHetVsHomog())
			}
		}
	}
	if PaperResults(5) != nil {
		t.Error("table 5 should have no results")
	}
}

// runTable8Small regenerates table 8 at reduced scale (fast) for the shape
// tests.
func runTable8Small(t *testing.T) *Table {
	t.Helper()
	exp, err := ExperimentByNumber(8)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Run(exp, Config{Scale: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRunTableShapeHertz(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale table run (the paper's shape only holds at paper-scale batches)")
	}
	exp, err := ExperimentByNumber(8)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Run(exp, Config{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	rep := CheckShape(tab)
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("shape check %s failed: %s", c.Name, c.Info)
		}
	}
	// Hertz has no homogeneous-system column.
	for _, r := range tab.Rows {
		if !math.IsNaN(r.HomogeneousSystem) {
			t.Errorf("%s: unexpected homogeneous-system value %v", r.Metaheuristic, r.HomogeneousSystem)
		}
	}
}

func TestRunTableShapeJupiter(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale table run (the paper's shape only holds at paper-scale batches)")
	}
	exp, err := ExperimentByNumber(6)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Run(exp, Config{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckShape(tab)
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("shape check %s failed: %s", c.Name, c.Info)
		}
	}
	// Jupiter's homogeneous system (4 GPUs) must be slower than the
	// 6-GPU heterogeneous system.
	for _, r := range tab.Rows {
		if math.IsNaN(r.HomogeneousSystem) {
			t.Fatalf("%s: missing homogeneous-system column", r.Metaheuristic)
		}
		if r.HomogeneousSystem <= r.HetHomogComputation {
			t.Errorf("%s: 4 GPUs (%v) not slower than 6 GPUs (%v)",
				r.Metaheuristic, r.HomogeneousSystem, r.HetHomogComputation)
		}
	}
}

func TestRunTableShape2BXG(t *testing.T) {
	// Tables 7 and 9 (the larger 2BXG dataset) at full scale: all shape
	// checks hold, and the speed-up exceeds the 2BSM tables' (the paper:
	// "the speed-up increases with the problem size").
	if testing.Short() {
		t.Skip("full-scale table runs")
	}
	minSpeedup := func(tab *Table) float64 {
		min := math.Inf(1)
		for _, r := range tab.Rows {
			if s := r.SpeedupOpenMPVsHet(); s < min {
				min = s
			}
		}
		return min
	}
	for _, pair := range []struct{ small, large int }{{8, 9}, {6, 7}} {
		expS, err := ExperimentByNumber(pair.small)
		if err != nil {
			t.Fatal(err)
		}
		tabS, err := Run(expS, Config{Scale: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		expL, err := ExperimentByNumber(pair.large)
		if err != nil {
			t.Fatal(err)
		}
		tabL, err := Run(expL, Config{Scale: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep := CheckShape(tabL)
		for _, c := range rep.Checks {
			if !c.Pass {
				t.Errorf("table %d shape check %s failed: %s", pair.large, c.Name, c.Info)
			}
		}
		if minSpeedup(tabL) <= minSpeedup(tabS)*0.95 {
			t.Errorf("tables %d vs %d: speed-up did not grow with problem size (%v vs %v)",
				pair.large, pair.small, minSpeedup(tabL), minSpeedup(tabS))
		}
	}
}

func TestRunTableStructureSmallScale(t *testing.T) {
	// Structural checks at reduced scale: rows, columns, positivity. The
	// quantitative shape is asserted at full scale above.
	tab := runTable8Small(t)
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.OpenMP <= 0 || r.HetHomogComputation <= 0 || r.HetHetComputation <= 0 {
			t.Errorf("%s: non-positive times %+v", r.Metaheuristic, r)
		}
		if r.SpeedupOpenMPVsHet() < 10 {
			t.Errorf("%s: GPU speed-up %v implausibly low", r.Metaheuristic, r.SpeedupOpenMPVsHet())
		}
	}
}

func TestRunTableDeterministic(t *testing.T) {
	a := runTable8Small(t)
	b := runTable8Small(t)
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Metaheuristic != rb.Metaheuristic ||
			!eq(ra.OpenMP, rb.OpenMP) ||
			!eq(ra.HomogeneousSystem, rb.HomogeneousSystem) ||
			!eq(ra.HetHomogComputation, rb.HetHomogComputation) ||
			!eq(ra.HetHetComputation, rb.HetHetComputation) {
			t.Errorf("row %d differs between identical runs:\n%+v\n%+v", i, ra, rb)
		}
	}
}

func TestTableWrite(t *testing.T) {
	tab := runTable8Small(t)
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 8", "Hertz", "M1", "M4", "SU het", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteConfig(t *testing.T) {
	var sb strings.Builder
	if err := WriteConfig(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 4", "Table 5", "1024*spots", "8609"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("config output missing %q", want)
		}
	}
}

func TestRunDeadlineHertz(t *testing.T) {
	rep, err := RunDeadline(Hertz(), "2BSM", 0.4, Config{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 { // M1-M3; M4 is a single step
		t.Fatalf("%d rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.GenHomog <= 0 || row.GenHeter <= 0 {
			t.Errorf("%s: no generations completed: %+v", row.Metaheuristic, row)
		}
		// On the mixed-architecture node the balanced split must complete
		// at least as many generations within the deadline.
		if row.GenHeter < row.GenHomog {
			t.Errorf("%s: heterogeneous completed %d generations, homogeneous %d",
				row.Metaheuristic, row.GenHeter, row.GenHomog)
		}
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Deadline experiment") {
		t.Error("report missing header")
	}
}

func TestRunDeadlineRejectsBadBudget(t *testing.T) {
	if _, err := RunDeadline(Hertz(), "2BSM", 0, Config{Scale: 0.2}); err != nil {
		// expected
	} else {
		t.Error("zero budget accepted")
	}
	if _, err := RunDeadline(Hertz(), "1ABC", 1, Config{Scale: 0.2}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunRowExported(t *testing.T) {
	exp, err := ExperimentByNumber(8)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunRow(exp, "M3", Config{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Metaheuristic != "M3" || row.OpenMP <= 0 {
		t.Errorf("row = %+v", row)
	}
	if row.EnergyOpenMP <= 0 || row.EnergyHetHet <= 0 {
		t.Errorf("energies missing: %+v", row)
	}
	if row.EnergyRatio() <= 1 {
		t.Errorf("CPU should burn more energy: ratio %v", row.EnergyRatio())
	}
	if _, err := RunRow(exp, "M9", Config{Scale: 0.1}); err == nil {
		t.Error("unknown metaheuristic accepted")
	}
}

func TestWriteEnergy(t *testing.T) {
	tab := runTable8Small(t)
	var sb strings.Builder
	if err := tab.WriteEnergy(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Energy", "OpenMP (J)", "ratio", "M4"} {
		if !strings.Contains(out, want) {
			t.Errorf("energy output missing %q", want)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	exp := Experiment{Number: 6, Machine: Jupiter(), Dataset: "NOPE"}
	if _, err := Run(exp, Config{Scale: 0.1}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := RunRow(exp, "M1", Config{Scale: 0.1}); err == nil {
		t.Error("RunRow accepted unknown dataset")
	}
}

func TestShapeReportPass(t *testing.T) {
	good := ShapeReport{Checks: []ShapeCheck{{Pass: true}, {Pass: true}}}
	if !good.Pass() {
		t.Error("all-pass report fails")
	}
	bad := ShapeReport{Checks: []ShapeCheck{{Pass: true}, {Pass: false}}}
	if bad.Pass() {
		t.Error("failing report passes")
	}
}
