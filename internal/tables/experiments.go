package tables

import (
	"fmt"
	"math"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/sched"
)

// Row is one metaheuristic's line in a result table, in the paper's column
// layout. Times are simulated seconds; a NaN HomogeneousSystem means the
// table has no such column (Hertz).
type Row struct {
	// Metaheuristic is "M1".."M4".
	Metaheuristic string
	// OpenMP is the multicore baseline time.
	OpenMP float64
	// HomogeneousSystem is the time on the machine's homogeneous GPU
	// subset (Jupiter's 4x GTX590), equal split.
	HomogeneousSystem float64
	// HetHomogComputation is the heterogeneous system under the
	// homogeneous (equal-split) algorithm.
	HetHomogComputation float64
	// HetHetComputation is the heterogeneous system under the
	// warm-up-balanced algorithm.
	HetHetComputation float64
	// EnergyOpenMP and EnergyHetHet are the modeled energies (joules) of
	// the OpenMP baseline and the heterogeneous computation — the paper's
	// "waste energy" concern, quantified.
	EnergyOpenMP, EnergyHetHet float64
}

// EnergyRatio returns how many times more energy the CPU baseline burns
// than the heterogeneous multi-GPU run.
func (r Row) EnergyRatio() float64 { return r.EnergyOpenMP / r.EnergyHetHet }

// SpeedupHetVsHomog is the paper's "SPEED-UP Heterogeneous Computation vs
// Homogeneous Computation" column.
func (r Row) SpeedupHetVsHomog() float64 { return r.HetHomogComputation / r.HetHetComputation }

// SpeedupOpenMPVsHet is the paper's "SPEED-UP OpenMP vs Heterogeneous
// Computation" column.
func (r Row) SpeedupOpenMPVsHet() float64 { return r.OpenMP / r.HetHetComputation }

// Table is one regenerated result table.
type Table struct {
	// Number is the paper's table number, 6-9.
	Number int
	// Machine and Dataset identify the experiment.
	Machine Machine
	Dataset string
	// Rows are M1..M4 in order.
	Rows []Row
}

// Experiment identifies a (machine, dataset) pair by the paper's table
// number.
type Experiment struct {
	Number  int
	Machine Machine
	Dataset string
}

// Experiments returns the paper's four result tables in order.
func Experiments() []Experiment {
	return []Experiment{
		{Number: 6, Machine: Jupiter(), Dataset: "2BSM"},
		{Number: 7, Machine: Jupiter(), Dataset: "2BXG"},
		{Number: 8, Machine: Hertz(), Dataset: "2BSM"},
		{Number: 9, Machine: Hertz(), Dataset: "2BXG"},
	}
}

// ExperimentByNumber returns the experiment for a paper table number.
func ExperimentByNumber(n int) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Number == n {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("tables: no experiment for table %d (want 6-9)", n)
}

// Config tunes a table run.
type Config struct {
	// Scale shrinks the paper-scale workload; 0 or 1 means full scale.
	Scale float64
	// Seed drives the stochastic components.
	Seed uint64
	// NoiseAmp is the warm-up measurement noise for the heterogeneous
	// algorithm; negative means the 0.05 default.
	NoiseAmp float64
	// WarpsPerBlock is the CUDA block granularity; 0 means 8.
	WarpsPerBlock int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2016
	}
	if c.NoiseAmp < 0 {
		c.NoiseAmp = 0.05
	}
	if c.WarpsPerBlock <= 0 {
		c.WarpsPerBlock = 8
	}
	return c
}

// Run regenerates one of the paper's result tables.
func Run(exp Experiment, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := core.DatasetByName(exp.Dataset)
	if err != nil {
		return nil, err
	}
	problem, err := core.NewProblemFromDataset(ds, forcefield.Options{})
	if err != nil {
		return nil, err
	}
	table := &Table{Number: exp.Number, Machine: exp.Machine, Dataset: exp.Dataset}
	for _, name := range metaheuristic.PaperNames() {
		row, err := runRow(problem, exp.Machine, name, cfg)
		if err != nil {
			return nil, fmt.Errorf("tables: table %d %s: %w", exp.Number, name, err)
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// RunRow regenerates a single metaheuristic's row of an experiment's
// table, for benchmarks that want one row at a time.
func RunRow(exp Experiment, mh string, cfg Config) (Row, error) {
	cfg = cfg.withDefaults()
	ds, err := core.DatasetByName(exp.Dataset)
	if err != nil {
		return Row{}, err
	}
	problem, err := core.NewProblemFromDataset(ds, forcefield.Options{})
	if err != nil {
		return Row{}, err
	}
	return runRow(problem, exp.Machine, mh, cfg)
}

// runRow executes the row's four configurations.
func runRow(problem *core.Problem, m Machine, mh string, cfg Config) (Row, error) {
	row := Row{Metaheuristic: mh, HomogeneousSystem: math.NaN()}

	runOne := func(backend core.Backend) (*core.Result, error) {
		alg, err := metaheuristic.NewPaper(mh, cfg.Scale)
		if err != nil {
			return nil, err
		}
		return core.Run(problem, alg, backend, cfg.Seed)
	}

	// OpenMP baseline.
	hb, err := core.NewHostBackend(problem, core.HostConfig{
		ModelCores:    m.CPUCores,
		ModelClockMHz: m.CPUClockMHz,
	})
	if err != nil {
		return row, err
	}
	hostRes, err := runOne(hb)
	if err != nil {
		return row, err
	}
	row.OpenMP = hostRes.SimulatedSeconds
	row.EnergyOpenMP = hostRes.EnergyJoules

	// Homogeneous system (subset of identical GPUs), where defined.
	if subset := m.HomogeneousGPUs(); len(subset) > 0 {
		pb, err := core.NewPoolBackend(problem, core.PoolConfig{
			Specs:         subset,
			Mode:          sched.Homogeneous,
			WarpsPerBlock: cfg.WarpsPerBlock,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return row, err
		}
		res, err := runOne(pb)
		if err != nil {
			return row, err
		}
		row.HomogeneousSystem = res.SimulatedSeconds
	}

	// Heterogeneous system, homogeneous computation (equal split).
	pbHom, err := core.NewPoolBackend(problem, core.PoolConfig{
		Specs:         m.GPUs,
		Mode:          sched.Homogeneous,
		WarpsPerBlock: cfg.WarpsPerBlock,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return row, err
	}
	homRes, err := runOne(pbHom)
	if err != nil {
		return row, err
	}
	row.HetHomogComputation = homRes.SimulatedSeconds

	// Heterogeneous system, heterogeneous computation (warm-up balanced).
	pbHet, err := core.NewPoolBackend(problem, core.PoolConfig{
		Specs:         m.GPUs,
		Mode:          sched.Heterogeneous,
		NoiseAmp:      cfg.NoiseAmp,
		WarpsPerBlock: cfg.WarpsPerBlock,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return row, err
	}
	hetRes, err := runOne(pbHet)
	if err != nil {
		return row, err
	}
	row.HetHetComputation = hetRes.SimulatedSeconds
	row.EnergyHetHet = hetRes.EnergyJoules
	return row, nil
}
