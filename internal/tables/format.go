package tables

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Write renders the table in the paper's column layout, appending the two
// speed-up columns, and — when the paper reported this table — a
// paper-vs-measured comparison of the speed-ups.
func (t *Table) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: %s on %s (simulated seconds)\n", t.Number, t.Dataset, t.Machine.Name)
	fmt.Fprintf(&b, "  Node: %d CPU cores @ %.0f MHz, GPUs: %s\n",
		t.Machine.CPUCores, t.Machine.CPUClockMHz, gpuSummary(t.Machine))

	hasHomogSys := len(t.Machine.HomogeneousSubset) > 0
	header := fmt.Sprintf("  %-4s %12s", "MH", "OpenMP")
	if hasHomogSys {
		header += fmt.Sprintf(" %12s", "HomogSys")
	}
	header += fmt.Sprintf(" %14s %14s %10s %10s", "HetSys/Homog", "HetSys/Heter", "SU het", "SU OpenMP")
	fmt.Fprintln(&b, header)

	for _, r := range t.Rows {
		line := fmt.Sprintf("  %-4s %12.2f", r.Metaheuristic, r.OpenMP)
		if hasHomogSys {
			line += fmt.Sprintf(" %12.2f", r.HomogeneousSystem)
		}
		line += fmt.Sprintf(" %14.2f %14.2f %10.2f %10.2f",
			r.HetHomogComputation, r.HetHetComputation,
			r.SpeedupHetVsHomog(), r.SpeedupOpenMPVsHet())
		fmt.Fprintln(&b, line)
	}

	if paper := PaperResults(t.Number); paper != nil {
		fmt.Fprintf(&b, "  paper-reported speed-ups for comparison:\n")
		for _, r := range t.Rows {
			p, ok := paper[r.Metaheuristic]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-4s SU het: paper %.2f / measured %.2f    SU OpenMP: paper %.2f / measured %.2f\n",
				r.Metaheuristic,
				p.SpeedupHetVsHomog(), r.SpeedupHetVsHomog(),
				p.SpeedupOpenMPVsHet(), r.SpeedupOpenMPVsHet())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func gpuSummary(m Machine) string {
	counts := map[string]int{}
	var order []string
	for _, g := range m.GPUs {
		if counts[g.Name] == 0 {
			order = append(order, g.Name)
		}
		counts[g.Name]++
	}
	parts := make([]string, 0, len(order))
	for _, name := range order {
		parts = append(parts, fmt.Sprintf("%dx %s", counts[name], name))
	}
	return strings.Join(parts, " + ")
}

// WriteEnergy renders the table's energy comparison: modeled joules for
// the OpenMP baseline and the heterogeneous computation, and the
// energy-saving factor of moving to GPUs (the paper's "waste energy"
// concern, quantified per metaheuristic).
func (t *Table) WriteEnergy(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Energy, Table %d workload: %s on %s (modeled joules)\n",
		t.Number, t.Dataset, t.Machine.Name)
	fmt.Fprintf(&b, "  %-4s %14s %14s %10s\n", "MH", "OpenMP (J)", "HetSys (J)", "ratio")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-4s %14.0f %14.0f %9.1fx\n",
			r.Metaheuristic, r.EnergyOpenMP, r.EnergyHetHet, r.EnergyRatio())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteConfig renders the paper's configuration tables 4 (metaheuristic
// parameters) and 5 (dataset sizes) as text.
func WriteConfig(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 4: algorithm parameters for the four metaheuristics")
	fmt.Fprintln(&b, "  MH   initial population   % selected   % improved")
	fmt.Fprintln(&b, "  M1   64*spots             100%         0%")
	fmt.Fprintln(&b, "  M2   64*spots             100%         100%")
	fmt.Fprintln(&b, "  M3   64*spots             100%         20%")
	fmt.Fprintln(&b, "  M4   1024*spots           (n/a)        100%")
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Table 5: number of atoms of the benchmark compounds")
	fmt.Fprintln(&b, "  2BSM receptor  3264")
	fmt.Fprintln(&b, "  2BSM ligand      45")
	fmt.Fprintln(&b, "  2BXG receptor  8609")
	fmt.Fprintln(&b, "  2BXG ligand      32")
	_, err := io.WriteString(w, b.String())
	return err
}

// ShapeReport summarizes whether a regenerated table preserves the paper's
// qualitative findings; each check is a named pass/fail.
type ShapeReport struct {
	Checks []ShapeCheck
}

// ShapeCheck is one qualitative assertion about a table.
type ShapeCheck struct {
	Name string
	Pass bool
	Info string
}

// Pass reports whether every check passed.
func (r ShapeReport) Pass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// CheckShape verifies the paper's qualitative findings on a regenerated
// table:
//
//   - multi-GPU beats the multicore baseline by a large factor for every
//     metaheuristic;
//   - the heterogeneous computation never loses to the homogeneous one;
//   - on mixed-architecture nodes (Hertz) the heterogeneous gain is
//     substantial (>= 1.2x); on near-uniform nodes (Jupiter) it is small
//     (< 1.2x);
//   - M4 is the most expensive metaheuristic and M3 the cheapest.
func CheckShape(t *Table) ShapeReport {
	var rep ShapeReport
	add := func(name string, pass bool, format string, args ...any) {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Name: name, Pass: pass, Info: fmt.Sprintf(format, args...),
		})
	}
	byName := map[string]Row{}
	minOpenMPSpeedup := math.Inf(1)
	minGain, maxGain := math.Inf(1), math.Inf(-1)
	for _, r := range t.Rows {
		byName[r.Metaheuristic] = r
		if s := r.SpeedupOpenMPVsHet(); s < minOpenMPSpeedup {
			minOpenMPSpeedup = s
		}
		g := r.SpeedupHetVsHomog()
		if g < minGain {
			minGain = g
		}
		if g > maxGain {
			maxGain = g
		}
	}
	add("gpu-dominates", minOpenMPSpeedup >= 10,
		"min OpenMP/het speed-up %.1f (want >= 10)", minOpenMPSpeedup)
	add("het-never-loses", minGain >= 0.99,
		"min heterogeneous gain %.3f (want >= 0.99)", minGain)
	mixedArch := t.Machine.Name == "Hertz"
	if mixedArch {
		add("mixed-arch-gain", minGain >= 1.2,
			"min gain %.2f on mixed architectures (want >= 1.2)", minGain)
	} else {
		add("uniform-arch-gain-small", maxGain < 1.2,
			"max gain %.2f on near-uniform architectures (want < 1.2)", maxGain)
	}
	m1, m2, m3, m4 := byName["M1"], byName["M2"], byName["M3"], byName["M4"]
	add("m4-most-expensive",
		m4.OpenMP > m1.OpenMP && m4.OpenMP > m2.OpenMP && m4.OpenMP > m3.OpenMP,
		"OpenMP times M1=%.1f M2=%.1f M3=%.1f M4=%.1f", m1.OpenMP, m2.OpenMP, m3.OpenMP, m4.OpenMP)
	add("m3-cheapest",
		m3.OpenMP < m1.OpenMP && m3.OpenMP < m2.OpenMP && m3.OpenMP < m4.OpenMP,
		"M3 cheapest: %.1f", m3.OpenMP)
	return rep
}
