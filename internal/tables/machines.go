// Package tables defines the paper's two experimental platforms and
// regenerates its result tables (Tables 6-9): execution time and speed-up
// for four metaheuristics on each platform and dataset, comparing the
// multicore baseline, the homogeneous multi-GPU system, and the
// heterogeneous system under homogeneous and heterogeneous computation.
//
// All table runs use the engine's Modeled mode, which replays the
// full-scale workloads through the calibrated cost model; the paper-vs-
// measured comparison is recorded in EXPERIMENTS.md.
package tables

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/cudasim"
)

// Machine describes one of the paper's experimental platforms (its
// Tables 2 and 3).
type Machine struct {
	// Name identifies the platform.
	Name string
	// CPUCores is the host core count used by the OpenMP baseline.
	CPUCores int
	// CPUClockMHz is the host clock.
	CPUClockMHz float64
	// GPUs is the node's full (heterogeneous) device set.
	GPUs []cudasim.DeviceSpec
	// HomogeneousSubset indexes the GPUs forming the paper's "homogeneous
	// system" column; empty means the table has no such column (Hertz).
	HomogeneousSubset []int
}

// Jupiter returns the paper's Jupiter platform: two hexa-core Xeon E5-2620
// at 2 GHz with four GeForce GTX 590 and two Tesla C2075 (Table 2).
func Jupiter() Machine {
	return Machine{
		Name:        "Jupiter",
		CPUCores:    12,
		CPUClockMHz: 2000,
		GPUs: []cudasim.DeviceSpec{
			cudasim.GTX590, cudasim.GTX590, cudasim.GTX590, cudasim.GTX590,
			cudasim.TeslaC2075, cudasim.TeslaC2075,
		},
		HomogeneousSubset: []int{0, 1, 2, 3},
	}
}

// Hertz returns the paper's Hertz platform: four-core Xeon E3-1220 at
// 3.1 GHz with one Tesla K40c and one GeForce GTX 580 (Table 3).
func Hertz() Machine {
	return Machine{
		Name:        "Hertz",
		CPUCores:    4,
		CPUClockMHz: 3100,
		GPUs: []cudasim.DeviceSpec{
			cudasim.TeslaK40c, cudasim.GTX580,
		},
	}
}

// MachineByName returns one of the paper's platforms.
func MachineByName(name string) (Machine, error) {
	switch name {
	case "Jupiter", "jupiter":
		return Jupiter(), nil
	case "Hertz", "hertz":
		return Hertz(), nil
	}
	return Machine{}, fmt.Errorf("tables: unknown machine %q (want Jupiter or Hertz)", name)
}

// HomogeneousGPUs returns the homogeneous-system device list, or nil when
// the machine has none.
func (m Machine) HomogeneousGPUs() []cudasim.DeviceSpec {
	if len(m.HomogeneousSubset) == 0 {
		return nil
	}
	out := make([]cudasim.DeviceSpec, 0, len(m.HomogeneousSubset))
	for _, i := range m.HomogeneousSubset {
		out = append(out, m.GPUs[i])
	}
	return out
}
