package tables

import (
	"fmt"
	"io"
	"strings"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/sched"
)

// Deadline experiment: the paper's abstract claims the cooperative
// scheduling "optimizes the quality of the solution and the overall
// performance" and that the strategy matters "where real-time constraints
// must be fulfilled". This experiment runs the same metaheuristic under
// the same simulated deadline on the homogeneous and heterogeneous splits
// and reports generations completed and solution quality.

// DeadlineRow is one metaheuristic's outcome under a deadline.
type DeadlineRow struct {
	Metaheuristic string
	// GenHomog and GenHeter are the generations completed by each split.
	GenHomog, GenHeter int
	// BestHomog and BestHeter are the best (surrogate) scores reached.
	BestHomog, BestHeter float64
}

// DeadlineReport is the whole experiment.
type DeadlineReport struct {
	Machine Machine
	Dataset string
	// BudgetSeconds is the simulated deadline.
	BudgetSeconds float64
	Rows          []DeadlineRow
}

// RunDeadline executes the deadline experiment on a machine and dataset.
// The budget should be a fraction of the full run time so the deadline
// binds; scale shrinks the workload as in Run.
func RunDeadline(m Machine, dataset string, budget float64, cfg Config) (*DeadlineReport, error) {
	cfg = cfg.withDefaults()
	if budget <= 0 {
		return nil, fmt.Errorf("tables: deadline budget %g", budget)
	}
	ds, err := core.DatasetByName(dataset)
	if err != nil {
		return nil, err
	}
	problem, err := core.NewProblemFromDataset(ds, forcefield.Options{})
	if err != nil {
		return nil, err
	}
	rep := &DeadlineReport{Machine: m, Dataset: dataset, BudgetSeconds: budget}
	for _, mh := range metaheuristic.PaperNames() {
		if mh == "M4" {
			// M4 is a single step; deadlines act between generations and
			// cannot split it.
			continue
		}
		row := DeadlineRow{Metaheuristic: mh}
		for _, mode := range []sched.Mode{sched.Homogeneous, sched.Heterogeneous} {
			alg, err := metaheuristic.NewPaper(mh, cfg.Scale)
			if err != nil {
				return nil, err
			}
			backend, err := core.NewPoolBackend(problem, core.PoolConfig{
				Specs:         m.GPUs,
				Mode:          mode,
				NoiseAmp:      cfg.NoiseAmp,
				WarpsPerBlock: cfg.WarpsPerBlock,
				Seed:          cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			res, err := core.RunBudget(problem, alg, backend, cfg.Seed, budget)
			if err != nil {
				return nil, err
			}
			if mode == sched.Homogeneous {
				row.GenHomog, row.BestHomog = res.Generations, res.Best.Score
			} else {
				row.GenHeter, row.BestHeter = res.Generations, res.Best.Score
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Write renders the report.
func (r *DeadlineReport) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Deadline experiment: %s on %s, budget %.3f simulated seconds\n",
		r.Dataset, r.Machine.Name, r.BudgetSeconds)
	fmt.Fprintf(&b, "  %-4s %16s %16s %14s %14s\n",
		"MH", "gens (homog)", "gens (heter)", "best (homog)", "best (heter)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4s %16d %16d %14.3f %14.3f\n",
			row.Metaheuristic, row.GenHomog, row.GenHeter, row.BestHomog, row.BestHeter)
	}
	fmt.Fprintln(&b, "  (same deadline. On mixed-architecture nodes the heterogeneous split")
	fmt.Fprintln(&b, "   completes more generations and equal-or-better solutions — the")
	fmt.Fprintln(&b, "   paper's real-time claim. On near-uniform nodes its warm-up cost may")
	fmt.Fprintln(&b, "   not be repaid within a short deadline.)")
	_, err := io.WriteString(w, b.String())
	return err
}
