package tables

import "math"

// PaperRow holds the numbers the paper reports for one row, for
// paper-vs-measured comparison in reports and EXPERIMENTS.md. NaN marks a
// column the paper's table does not have.
type PaperRow struct {
	OpenMP              float64
	HomogeneousSystem   float64
	HetHomogComputation float64
	HetHetComputation   float64
}

// SpeedupHetVsHomog returns the paper's reported heterogeneous-vs-
// homogeneous computation speed-up.
func (r PaperRow) SpeedupHetVsHomog() float64 { return r.HetHomogComputation / r.HetHetComputation }

// SpeedupOpenMPVsHet returns the paper's reported OpenMP-vs-heterogeneous
// speed-up.
func (r PaperRow) SpeedupOpenMPVsHet() float64 { return r.OpenMP / r.HetHetComputation }

// PaperResults returns the execution times (seconds) the paper reports in
// table n (6-9), keyed by metaheuristic.
func PaperResults(n int) map[string]PaperRow {
	nan := math.NaN()
	switch n {
	case 6: // Jupiter, 2BSM
		return map[string]PaperRow{
			"M1": {269.45, 7.01, 5.13, 4.98},
			"M2": {436.36, 10.68, 7.92, 7.68},
			"M3": {136.71, 3.69, 2.71, 2.54},
			"M4": {13557.29, 298.27, 212.42, 211.07},
		}
	case 7: // Jupiter, 2BXG
		return map[string]PaperRow{
			"M1": {1402.63, 23.45, 16.96, 16.77},
			"M2": {2272.71, 35.37, 26.57, 25.43},
			"M3": {711.01, 11.81, 8.72, 8.46},
			"M4": {70505.22, 1113.91, 764.131, 757.32},
		}
	case 8: // Hertz, 2BSM
		return map[string]PaperRow{
			"M1": {580.23, nan, 10.57, 6.74},
			"M2": {937.45, nan, 16.47, 12.37},
			"M3": {294.21, nan, 5.41, 4.09},
			"M4": {29144.06, nan, 470.51, 334.41},
		}
	case 9: // Hertz, 2BXG
		return map[string]PaperRow{
			"M1": {2327.60, nan, 33.92, 22.82},
			"M2": {3908.46, nan, 55.56, 41.58},
			"M3": {1336.40, nan, 18.13, 13.64},
			"M4": {150958.75, nan, 1735.73, 1253.64},
		}
	}
	return nil
}
