package conformation

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// flexLigand is a 6-atom chain with covalent spacing and its torsion set.
func flexLigand() (*molecule.Molecule, *molecule.TorsionSet, []vec.V3) {
	atoms := make([]molecule.Atom, 6)
	for i := range atoms {
		atoms[i] = molecule.Atom{Element: molecule.Carbon, Pos: vec.New(float64(i)*1.54, 0, 0)}
	}
	m := molecule.New("chain", atoms)
	return m, molecule.NewTorsionSet(m), m.Positions()
}

func TestApplyFlexZeroAnglesMatchesRigid(t *testing.T) {
	_, ts, lig := flexLigand()
	c := New(0, vec.New(3, 4, 5), vec.QuatFromAxisAngle(vec.New(0, 0, 1), 0.7))
	c.Torsions = make([]float64, ts.Len())
	flex := make([]vec.V3, len(lig))
	rigid := make([]vec.V3, len(lig))
	c.ApplyFlex(ts, lig, flex)
	c.Apply(lig, rigid)
	for i := range lig {
		if !flex[i].ApproxEq(rigid[i], 1e-12) {
			t.Errorf("atom %d: flex %v != rigid %v", i, flex[i], rigid[i])
		}
	}
}

func TestApplyFlexNilTorsionSet(t *testing.T) {
	_, _, lig := flexLigand()
	c := New(0, vec.Zero, vec.IdentityQuat)
	dst := make([]vec.V3, len(lig))
	c.ApplyFlex(nil, lig, dst) // must not panic, behaves rigid
	if !dst[3].ApproxEq(lig[3], 1e-12) {
		t.Error("nil torsion set changed geometry")
	}
}

func TestApplyFlexPreservesBondLengths(t *testing.T) {
	m, ts, lig := flexLigand()
	bonds := molecule.InferBonds(m)
	r := rng.New(5)
	dst := make([]vec.V3, len(lig))
	for trial := 0; trial < 50; trial++ {
		c := New(0, r.InSphere(10), r.Quat())
		c.Torsions = make([]float64, ts.Len())
		for i := range c.Torsions {
			c.Torsions[i] = r.Range(-math.Pi, math.Pi)
		}
		c.ApplyFlex(ts, lig, dst)
		for _, b := range bonds {
			orig := lig[b.I].Dist(lig[b.J])
			posed := dst[b.I].Dist(dst[b.J])
			if math.Abs(orig-posed) > 1e-9 {
				t.Fatalf("trial %d: bond %v length %v -> %v", trial, b, orig, posed)
			}
		}
	}
}

func TestApplyFlexChangesNonBondedDistances(t *testing.T) {
	// Bending must actually bend: distances across the rotated bond
	// change for a nonzero angle.
	_, ts, lig := flexLigand()
	c := New(0, vec.Zero, vec.IdentityQuat)
	c.Torsions = make([]float64, ts.Len())
	c.Torsions[0] = math.Pi / 2
	dst := make([]vec.V3, len(lig))
	c.ApplyFlex(ts, lig, dst)
	// A straight chain bent in the middle: end-to-end distance shrinks...
	// except a straight chain is degenerate (atoms on the axis line!).
	// Give the chain a kink first instead: use a real synthetic ligand.
	lig2 := Synthetic2BSMLigandPositions()
	ts2 := molecule.NewTorsionSet(syntheticLigand())
	if ts2.Len() == 0 {
		t.Skip("no torsions on synthetic ligand")
	}
	c2 := New(0, vec.Zero, vec.IdentityQuat)
	c2.Torsions = make([]float64, ts2.Len())
	dst0 := make([]vec.V3, len(lig2))
	c2.ApplyFlex(ts2, lig2, dst0)
	c2.Torsions[0] = math.Pi / 2
	dst1 := make([]vec.V3, len(lig2))
	c2.ApplyFlex(ts2, lig2, dst1)
	moved := 0
	for i := range dst0 {
		if dst0[i].Dist(dst1[i]) > 1e-6 {
			moved++
		}
	}
	tor := ts2.Torsions[0]
	if moved == 0 {
		t.Error("nonzero torsion moved nothing")
	}
	if moved > len(tor.Moving) {
		t.Errorf("torsion moved %d atoms, its branch has %d", moved, len(tor.Moving))
	}
}

// syntheticLigand and Synthetic2BSMLigandPositions adapt the molecule
// package's generator for this test.
func syntheticLigand() *molecule.Molecule {
	return molecule.SyntheticLigand("flex-lig", 20, 99)
}

func Synthetic2BSMLigandPositions() []vec.V3 {
	return syntheticLigand().Positions()
}

func TestApplyFlexPanicsOnLengthMismatch(t *testing.T) {
	_, ts, lig := flexLigand()
	if ts.Len() == 0 {
		t.Skip("chain has no torsions")
	}
	c := New(0, vec.Zero, vec.IdentityQuat)
	c.Torsions = []float64{0.5} // wrong length
	if len(c.Torsions) == ts.Len() {
		t.Skip("lengths coincide")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on torsion length mismatch")
		}
	}()
	c.ApplyFlex(ts, lig, make([]vec.V3, len(lig)))
}

func TestFlexSampler(t *testing.T) {
	m := syntheticLigand()
	ts := molecule.NewTorsionSet(m)
	if ts.Len() == 0 {
		t.Skip("no torsions")
	}
	s := NewSampler(testSpot(), 3)
	s.SetTorsions(ts)
	if s.TorsionSet() != ts {
		t.Error("TorsionSet accessor wrong")
	}
	r := rng.New(6)
	c := s.Random(r)
	if len(c.Torsions) != ts.Len() {
		t.Fatalf("random pose has %d torsions, want %d", len(c.Torsions), ts.Len())
	}
	for _, a := range c.Torsions {
		if a < -math.Pi || a > math.Pi {
			t.Errorf("torsion angle %v outside (-pi, pi]", a)
		}
	}
	// Perturb bounds the per-bond step.
	scale := MoveScale{MaxTranslate: 0.5, MaxRotate: 0.2, MaxTorsion: 0.1}
	p := s.Perturb(r, c, scale)
	for i := range p.Torsions {
		d := math.Abs(WrapAngle(p.Torsions[i] - c.Torsions[i]))
		if d > 0.1+1e-9 {
			t.Errorf("torsion %d stepped %v > 0.1", i, d)
		}
	}
	// Perturb must not alias the parent's slice.
	p.Torsions[0] = 99
	if c.Torsions[0] == 99 {
		t.Error("perturbed torsions alias the original")
	}
	// Combine blends along the short arc.
	a, b := s.Random(r), s.Random(r)
	child := s.Combine(r, a, b)
	if len(child.Torsions) != ts.Len() {
		t.Fatal("child lost torsions")
	}
	for i := range child.Torsions {
		da := math.Abs(WrapAngle(child.Torsions[i] - a.Torsions[i]))
		dab := math.Abs(WrapAngle(b.Torsions[i] - a.Torsions[i]))
		if da > dab+1e-9 {
			t.Errorf("torsion %d blend outside the parent arc: %v > %v", i, da, dab)
		}
	}
}

func TestCloneTorsions(t *testing.T) {
	c := New(0, vec.Zero, vec.IdentityQuat)
	if got := c.CloneTorsions(); got.Torsions != nil {
		t.Error("clone of rigid pose gained torsions")
	}
	c.Torsions = []float64{1, 2}
	d := c.CloneTorsions()
	d.Torsions[0] = 9
	if c.Torsions[0] == 9 {
		t.Error("CloneTorsions aliases")
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{-2.5 * math.Pi, -0.5 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
