// Package conformation defines the candidate solutions of the docking
// optimization: rigid-body poses of a ligand copy anchored to one surface
// spot, together with the pose-space moves the metaheuristics use
// (initialization, recombination and local-search perturbation).
package conformation

import (
	"fmt"
	"math"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

// Conformation is one individual: a rigid-body pose of the ligand at a
// specific receptor spot. The paper calls these "copies of the same ligand
// placed at each spot", a.k.a. individuals.
type Conformation struct {
	// Spot is the ID of the surface spot this individual belongs to.
	// Spots are independent sub-problems; individuals never migrate.
	Spot int
	// Translation is the position of the ligand centroid.
	Translation vec.V3
	// Orientation is the rigid-body rotation applied about the centroid.
	Orientation vec.Quat
	// Torsions holds one angle (radians) per rotatable bond when the
	// ligand is docked flexibly; nil for rigid poses. See ApplyFlex.
	Torsions []float64
	// Score is the cached energy of this pose; math.MaxFloat64 marks an
	// unevaluated conformation.
	Score float64
}

// Unscored is the sentinel Score of a conformation not yet evaluated.
const Unscored = math.MaxFloat64

// New returns an unscored conformation.
func New(spot int, t vec.V3, q vec.Quat) Conformation {
	return Conformation{Spot: spot, Translation: t, Orientation: q.Unit(), Score: Unscored}
}

// Evaluated reports whether the conformation's Score is valid.
func (c Conformation) Evaluated() bool { return c.Score != Unscored }

// Apply writes the posed ligand coordinates into dst, which must have
// len(ligand) entries: dst[i] = Translation + Orientation * ligand[i].
// The ligand is stored centered, so Translation is the pose centroid.
func (c Conformation) Apply(ligand []vec.V3, dst []vec.V3) {
	if len(dst) != len(ligand) {
		panic(fmt.Sprintf("conformation: dst has %d atoms, ligand %d", len(dst), len(ligand)))
	}
	m := c.Orientation.Mat3()
	for i, p := range ligand {
		dst[i] = m.MulV(p).Add(c.Translation)
	}
}

// Posed returns freshly allocated posed coordinates; use Apply with a reused
// buffer in hot paths.
func (c Conformation) Posed(ligand []vec.V3) []vec.V3 {
	dst := make([]vec.V3, len(ligand))
	c.Apply(ligand, dst)
	return dst
}

// Better reports whether c has a strictly better (lower) score than o.
// Unevaluated conformations compare worse than any evaluated one.
func (c Conformation) Better(o Conformation) bool { return c.Score < o.Score }

// String implements fmt.Stringer.
func (c Conformation) String() string {
	if !c.Evaluated() {
		return fmt.Sprintf("conf(spot=%d, t=%v, unscored)", c.Spot, c.Translation)
	}
	return fmt.Sprintf("conf(spot=%d, t=%v, score=%.3f)", c.Spot, c.Translation, c.Score)
}

// Sampler generates and perturbs conformations for one spot.
type Sampler struct {
	spot surface.Spot
	// standoff is the initial placement distance above the spot center
	// along the outward normal, keeping new individuals clear of the
	// surface before optimization pulls them in.
	standoff float64
	// torsions, when set, makes the sampler produce flexible poses (see
	// SetTorsions in flex.go).
	torsions *molecule.TorsionSet
}

// NewSampler returns a Sampler for the spot. ligandRadius sets the standoff
// of initial placements.
func NewSampler(spot surface.Spot, ligandRadius float64) *Sampler {
	return &Sampler{spot: spot, standoff: ligandRadius + 1.5}
}

// Random returns a fresh random individual: position uniform in the spot's
// search sphere biased along the outward normal, orientation uniform over
// SO(3).
func (s *Sampler) Random(r *rng.Source) Conformation {
	base := s.spot.Center.Add(s.spot.Normal.Scale(s.standoff))
	pos := base.Add(r.InSphere(s.spot.Radius))
	c := New(s.spot.ID, s.clamp(pos), r.Quat())
	c.Torsions = s.randomTorsions(r)
	return c
}

// Combine produces a child pose from two parents: the translation is a
// random convex blend, the orientation a slerp at the same blend factor,
// a standard recombination for rigid-body docking.
func (s *Sampler) Combine(r *rng.Source, a, b Conformation) Conformation {
	t := r.Float64()
	pos := a.Translation.Lerp(b.Translation, t)
	q := a.Orientation.Slerp(b.Orientation, t)
	c := New(s.spot.ID, s.clamp(pos), q)
	c.Torsions = s.combineTorsions(a.Torsions, b.Torsions, t)
	return c
}

// MoveScale bounds a local-search step: maximum translation in angstroms,
// maximum rigid rotation in radians, and maximum per-bond torsion step in
// radians (used only for flexible ligands; 0 falls back to MaxRotate).
type MoveScale struct {
	MaxTranslate float64
	MaxRotate    float64
	MaxTorsion   float64
}

// torsionStep returns the effective torsion jitter bound.
func (s MoveScale) torsionStep() float64 {
	if s.MaxTorsion > 0 {
		return s.MaxTorsion
	}
	return s.MaxRotate
}

// DefaultMoveScale is the local-search step used by the Improve phase.
var DefaultMoveScale = MoveScale{MaxTranslate: 1.0, MaxRotate: 0.35, MaxTorsion: 0.5}

// Perturb returns a neighbour of c: translation jittered within
// scale.MaxTranslate and orientation rotated by at most scale.MaxRotate,
// clamped to the spot region. The result is unscored.
func (s *Sampler) Perturb(r *rng.Source, c Conformation, scale MoveScale) Conformation {
	pos := c.Translation.Add(r.InSphere(scale.MaxTranslate))
	q := r.SmallQuat(scale.MaxRotate).Mul(c.Orientation)
	out := New(s.spot.ID, s.clamp(pos), q)
	out.Torsions = s.perturbTorsions(r, c.Torsions, scale.torsionStep())
	return out
}

// clamp projects pos back into the spot's search sphere (centered at the
// standoff point) so individuals cannot drift to other regions: spots must
// remain independent sub-problems.
func (s *Sampler) clamp(pos vec.V3) vec.V3 {
	base := s.spot.Center.Add(s.spot.Normal.Scale(s.standoff))
	d := pos.Sub(base)
	if d.Norm2() <= s.spot.Radius*s.spot.Radius {
		return pos
	}
	return base.Add(d.Unit().Scale(s.spot.Radius))
}

// Contains reports whether the conformation lies inside the sampler's
// search region (with a small tolerance for floating-point round-off).
func (s *Sampler) Contains(c Conformation) bool {
	base := s.spot.Center.Add(s.spot.Normal.Scale(s.standoff))
	return c.Translation.Dist(base) <= s.spot.Radius+1e-9
}

// Spot returns the spot this sampler serves.
func (s *Sampler) Spot() surface.Spot { return s.spot }
