package conformation

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

func testSpot() surface.Spot {
	return surface.Spot{
		ID:     3,
		Center: vec.New(10, 0, 0),
		Normal: vec.New(1, 0, 0),
		Radius: 8,
	}
}

func TestNewIsUnscored(t *testing.T) {
	c := New(1, vec.Zero, vec.IdentityQuat)
	if c.Evaluated() {
		t.Error("fresh conformation reports evaluated")
	}
	c.Score = -5
	if !c.Evaluated() {
		t.Error("scored conformation reports unevaluated")
	}
}

func TestApplyIdentity(t *testing.T) {
	lig := []vec.V3{vec.New(1, 0, 0), vec.New(0, 2, 0)}
	c := New(0, vec.New(5, 5, 5), vec.IdentityQuat)
	got := c.Posed(lig)
	if !got[0].ApproxEq(vec.New(6, 5, 5), 1e-12) || !got[1].ApproxEq(vec.New(5, 7, 5), 1e-12) {
		t.Errorf("posed = %v", got)
	}
}

func TestApplyRotation(t *testing.T) {
	lig := []vec.V3{vec.New(1, 0, 0)}
	q := vec.QuatFromAxisAngle(vec.New(0, 0, 1), math.Pi/2)
	c := New(0, vec.Zero, q)
	got := c.Posed(lig)
	if !got[0].ApproxEq(vec.New(0, 1, 0), 1e-9) {
		t.Errorf("rotated pose = %v", got[0])
	}
}

func TestApplyPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched dst")
		}
	}()
	New(0, vec.Zero, vec.IdentityQuat).Apply([]vec.V3{vec.Zero}, make([]vec.V3, 2))
}

func TestApplyPreservesShape(t *testing.T) {
	// Rigid-body transform: all pairwise distances preserved.
	f := func(tx, ty, tz, ax, ay, az, angle float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 50)
		}
		c := New(0,
			vec.New(clamp(tx), clamp(ty), clamp(tz)),
			vec.QuatFromAxisAngle(vec.New(clamp(ax), clamp(ay), clamp(az)), clamp(angle)))
		lig := []vec.V3{vec.Zero, vec.New(1.5, 0, 0), vec.New(0, 2.5, 1)}
		posed := c.Posed(lig)
		for i := range lig {
			for j := i + 1; j < len(lig); j++ {
				if math.Abs(posed[i].Dist(posed[j])-lig[i].Dist(lig[j])) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetter(t *testing.T) {
	a := New(0, vec.Zero, vec.IdentityQuat)
	b := New(0, vec.Zero, vec.IdentityQuat)
	a.Score = -10
	b.Score = -5
	if !a.Better(b) || b.Better(a) {
		t.Error("Better ordering wrong")
	}
	un := New(0, vec.Zero, vec.IdentityQuat)
	if un.Better(b) {
		t.Error("unscored conformation beat a scored one")
	}
}

func TestSamplerRandomInRegion(t *testing.T) {
	s := NewSampler(testSpot(), 3)
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		c := s.Random(r)
		if c.Spot != 3 {
			t.Fatalf("spot = %d", c.Spot)
		}
		if !s.Contains(c) {
			t.Fatalf("random conformation outside region: %v", c.Translation)
		}
		if math.Abs(c.Orientation.Norm()-1) > 1e-9 {
			t.Fatal("non-unit orientation")
		}
	}
}

func TestSamplerCombineStaysInRegion(t *testing.T) {
	s := NewSampler(testSpot(), 3)
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		a, b := s.Random(r), s.Random(r)
		child := s.Combine(r, a, b)
		if !s.Contains(child) {
			t.Fatalf("child outside region: %v", child.Translation)
		}
		if child.Evaluated() {
			t.Fatal("child born with a score")
		}
		if child.Spot != a.Spot {
			t.Fatal("child changed spot")
		}
	}
}

func TestSamplerCombineBlends(t *testing.T) {
	s := NewSampler(testSpot(), 3)
	r := rng.New(3)
	a, b := s.Random(r), s.Random(r)
	child := s.Combine(r, a, b)
	// Child translation lies on the segment between the parents.
	ab := b.Translation.Sub(a.Translation)
	ac := child.Translation.Sub(a.Translation)
	if ab.Norm() > 1e-9 {
		cross := ab.Cross(ac).Norm()
		if cross > 1e-6*(1+ab.Norm()*ac.Norm()) {
			t.Errorf("child off the parent segment (cross=%v)", cross)
		}
		if d := ac.Norm(); d > ab.Norm()+1e-9 {
			t.Errorf("child beyond parent b (%v > %v)", d, ab.Norm())
		}
	}
}

func TestSamplerPerturbBounded(t *testing.T) {
	s := NewSampler(testSpot(), 3)
	r := rng.New(4)
	scale := MoveScale{MaxTranslate: 0.5, MaxRotate: 0.2}
	orig := s.Random(r)
	for i := 0; i < 300; i++ {
		p := s.Perturb(r, orig, scale)
		if !s.Contains(p) {
			t.Fatalf("perturbed pose escaped region: %v", p.Translation)
		}
		// Translation step bounded unless the clamp pulled it back, which
		// can only shrink the distance to the region; allow for that by
		// checking against the unclamped bound.
		if d := p.Translation.Dist(orig.Translation); d > scale.MaxTranslate+2*testSpot().Radius {
			t.Fatalf("translation step %v", d)
		}
		if a := p.Orientation.AngleTo(orig.Orientation); a > scale.MaxRotate+1e-9 {
			t.Fatalf("rotation step %v > %v", a, scale.MaxRotate)
		}
		if p.Evaluated() {
			t.Fatal("perturbed pose born with a score")
		}
	}
}

func TestSamplerPerturbTranslationTight(t *testing.T) {
	// A pose at the region center cannot hit the clamp, so the raw bound
	// applies exactly.
	spot := testSpot()
	s := NewSampler(spot, 3)
	base := spot.Center.Add(spot.Normal.Scale(4.5))
	orig := New(spot.ID, base, vec.IdentityQuat)
	r := rng.New(5)
	scale := MoveScale{MaxTranslate: 0.5, MaxRotate: 0.2}
	for i := 0; i < 300; i++ {
		p := s.Perturb(r, orig, scale)
		if d := p.Translation.Dist(orig.Translation); d > scale.MaxTranslate+1e-9 {
			t.Fatalf("translation step %v > %v", d, scale.MaxTranslate)
		}
	}
}

func TestClampProjectsToSphere(t *testing.T) {
	spot := testSpot()
	s := NewSampler(spot, 3)
	far := New(spot.ID, spot.Center.Add(vec.New(100, 100, 100)), vec.IdentityQuat)
	r := rng.New(6)
	p := s.Perturb(r, far, MoveScale{MaxTranslate: 0.01, MaxRotate: 0.01})
	if !s.Contains(p) {
		t.Error("clamp failed to project far pose into region")
	}
}

func TestSamplerSpotAccessor(t *testing.T) {
	s := NewSampler(testSpot(), 3)
	if s.Spot().ID != 3 {
		t.Errorf("Spot() = %+v", s.Spot())
	}
}

func TestStringForms(t *testing.T) {
	c := New(1, vec.Zero, vec.IdentityQuat)
	if c.String() == "" {
		t.Error("empty unscored String")
	}
	c.Score = 1.5
	if c.String() == "" {
		t.Error("empty scored String")
	}
}
