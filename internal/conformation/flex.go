package conformation

import (
	"math"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// Flexible-ligand poses. A rigid Conformation optionally carries a vector
// of torsion angles (radians), one per rotatable bond of the ligand's
// TorsionSet. ApplyFlex bends the ligand's internal geometry first, then
// applies the rigid-body transform, so every branch remains a rigid body
// and all bond lengths are preserved.

// ApplyFlex writes the posed coordinates of a flexible ligand into dst:
// torsion rotations about each rotatable bond, then the conformation's
// rigid-body transform. A nil TorsionSet or empty Torsions vector reduces
// to Apply. The i-th torsion angle corresponds to ts.Torsions[i].
func (c Conformation) ApplyFlex(ts *molecule.TorsionSet, ligand []vec.V3, dst []vec.V3) {
	if ts.Len() == 0 || len(c.Torsions) == 0 {
		c.Apply(ligand, dst)
		return
	}
	if len(c.Torsions) != ts.Len() {
		panic("conformation: torsion vector length does not match torsion set")
	}
	// Bend into dst (internal coordinates), then transform in place.
	copy(dst, ligand)
	for k, tor := range ts.Torsions {
		angle := c.Torsions[k]
		if angle == 0 {
			continue
		}
		a := dst[tor.Axis.I]
		b := dst[tor.Axis.J]
		q := vec.QuatFromAxisAngle(b.Sub(a), angle)
		for _, idx := range tor.Moving {
			dst[idx] = a.Add(q.Rotate(dst[idx].Sub(a)))
		}
	}
	m := c.Orientation.Mat3()
	for i := range dst {
		dst[i] = m.MulV(dst[i]).Add(c.Translation)
	}
}

// CloneTorsions returns a copy of c with an independent torsion vector, so
// mutating the copy's angles never aliases the original.
func (c Conformation) CloneTorsions() Conformation {
	if c.Torsions == nil {
		return c
	}
	t := make([]float64, len(c.Torsions))
	copy(t, c.Torsions)
	c.Torsions = t
	return c
}

// WrapAngle maps an angle to (-pi, pi].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// SetTorsions attaches a torsion topology to the sampler: subsequent
// Random poses get uniform torsion angles, Perturb jitters them within
// MoveScale.MaxTorsion, and Combine blends them along the shortest arc.
// Pass nil to return to rigid sampling.
func (s *Sampler) SetTorsions(ts *molecule.TorsionSet) { s.torsions = ts }

// TorsionSet returns the sampler's torsion topology (nil when rigid).
func (s *Sampler) TorsionSet() *molecule.TorsionSet { return s.torsions }

// randomTorsions samples uniform angles for every rotatable bond.
func (s *Sampler) randomTorsions(r *rng.Source) []float64 {
	if s.torsions.Len() == 0 {
		return nil
	}
	t := make([]float64, s.torsions.Len())
	for i := range t {
		t[i] = r.Range(-math.Pi, math.Pi)
	}
	return t
}

// perturbTorsions jitters angles by at most maxStep each.
func (s *Sampler) perturbTorsions(r *rng.Source, base []float64, maxStep float64) []float64 {
	if s.torsions.Len() == 0 {
		return nil
	}
	t := make([]float64, s.torsions.Len())
	for i := range t {
		v := 0.0
		if i < len(base) {
			v = base[i]
		}
		t[i] = WrapAngle(v + r.Range(-maxStep, maxStep))
	}
	return t
}

// combineTorsions blends two angle vectors along the shortest arc at
// parameter u.
func (s *Sampler) combineTorsions(a, b []float64, u float64) []float64 {
	if s.torsions.Len() == 0 {
		return nil
	}
	t := make([]float64, s.torsions.Len())
	for i := range t {
		var va, vb float64
		if i < len(a) {
			va = a[i]
		}
		if i < len(b) {
			vb = b[i]
		}
		t[i] = WrapAngle(va + WrapAngle(vb-va)*u)
	}
	return t
}
