// Package report serializes metascreen results — regenerated paper tables
// and library-screening rankings — as CSV and JSON for downstream
// analysis, alongside the human-readable text the tables package renders.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/tables"
)

// TableCSV writes one regenerated table as CSV with a header row. NaN
// cells (columns the paper's table lacks) are empty.
func TableCSV(w io.Writer, t *tables.Table) error {
	cw := csv.NewWriter(w)
	header := []string{
		"table", "machine", "dataset", "metaheuristic",
		"openmp_s", "homogeneous_system_s",
		"het_homog_computation_s", "het_het_computation_s",
		"speedup_het", "speedup_openmp",
		"energy_openmp_j", "energy_het_j",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', 8, 64)
	}
	for _, r := range t.Rows {
		rec := []string{
			strconv.Itoa(t.Number), t.Machine.Name, t.Dataset, r.Metaheuristic,
			f(r.OpenMP), f(r.HomogeneousSystem),
			f(r.HetHomogComputation), f(r.HetHetComputation),
			f(r.SpeedupHetVsHomog()), f(r.SpeedupOpenMPVsHet()),
			f(r.EnergyOpenMP), f(r.EnergyHetHet),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the JSON shape of a regenerated table.
type tableJSON struct {
	Table   int            `json:"table"`
	Machine string         `json:"machine"`
	Dataset string         `json:"dataset"`
	Rows    []tableRowJSON `json:"rows"`
}

type tableRowJSON struct {
	Metaheuristic       string   `json:"metaheuristic"`
	OpenMP              float64  `json:"openmp_s"`
	HomogeneousSystem   *float64 `json:"homogeneous_system_s,omitempty"`
	HetHomogComputation float64  `json:"het_homog_computation_s"`
	HetHetComputation   float64  `json:"het_het_computation_s"`
	SpeedupHet          float64  `json:"speedup_het"`
	SpeedupOpenMP       float64  `json:"speedup_openmp"`
	EnergyOpenMP        float64  `json:"energy_openmp_j"`
	EnergyHet           float64  `json:"energy_het_j"`
}

// TableJSON writes one regenerated table as indented JSON.
func TableJSON(w io.Writer, t *tables.Table) error {
	out := tableJSON{Table: t.Number, Machine: t.Machine.Name, Dataset: t.Dataset}
	for _, r := range t.Rows {
		row := tableRowJSON{
			Metaheuristic:       r.Metaheuristic,
			OpenMP:              r.OpenMP,
			HetHomogComputation: r.HetHomogComputation,
			HetHetComputation:   r.HetHetComputation,
			SpeedupHet:          r.SpeedupHetVsHomog(),
			SpeedupOpenMP:       r.SpeedupOpenMPVsHet(),
			EnergyOpenMP:        r.EnergyOpenMP,
			EnergyHet:           r.EnergyHetHet,
		}
		if !math.IsNaN(r.HomogeneousSystem) {
			v := r.HomogeneousSystem
			row.HomogeneousSystem = &v
		}
		out.Rows = append(out.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ScreenCSV writes a library-screening ranking as CSV.
func ScreenCSV(w io.Writer, s *core.ScreenResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "ligand", "atoms", "best_kcal_mol", "spot", "evaluations"}); err != nil {
		return err
	}
	for i, e := range s.Ranking {
		rec := []string{
			strconv.Itoa(i + 1),
			e.Ligand.Name,
			strconv.Itoa(e.Ligand.NumAtoms()),
			strconv.FormatFloat(e.Result.Best.Score, 'g', 8, 64),
			strconv.Itoa(e.Result.Best.Spot),
			strconv.FormatInt(e.Result.Evaluations, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// HistoryCSV writes a run's convergence history (generation, simulated
// time, best score) as CSV for plotting quality-vs-time curves.
func HistoryCSV(w io.Writer, res *core.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"generation", "sim_seconds", "best_kcal_mol"}); err != nil {
		return err
	}
	for _, pt := range res.History {
		rec := []string{
			strconv.Itoa(pt.Generation),
			strconv.FormatFloat(pt.SimSeconds, 'g', 8, 64),
			strconv.FormatFloat(pt.Best, 'g', 8, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline renders a score series as a one-line ASCII curve (lower is
// better, so deeper glyphs mean better scores), for quick terminal
// inspection of convergence.
func Sparkline(scores []float64, width int) string {
	if len(scores) == 0 || width < 1 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := scores[0], scores[0]
	for _, s := range scores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		s := scores[i*len(scores)/width]
		frac := 0.0
		if hi > lo {
			frac = (hi - s) / (hi - lo) // lower score -> taller bar
		}
		gi := int(frac * float64(len(glyphs)-1))
		out[i] = glyphs[gi]
	}
	return string(out)
}

// Format names an output format.
type Format string

// Supported formats.
const (
	FormatText Format = "text"
	FormatCSV  Format = "csv"
	FormatJSON Format = "json"
)

// WriteTable renders a table in the requested format.
func WriteTable(w io.Writer, t *tables.Table, f Format) error {
	switch f {
	case FormatText, "":
		return t.Write(w)
	case FormatCSV:
		return TableCSV(w, t)
	case FormatJSON:
		return TableJSON(w, t)
	}
	return fmt.Errorf("report: unknown format %q (want text, csv or json)", f)
}
