package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/tables"
)

func sampleTable() *tables.Table {
	return &tables.Table{
		Number:  8,
		Machine: tables.Hertz(),
		Dataset: "2BSM",
		Rows: []tables.Row{
			{
				Metaheuristic: "M1", OpenMP: 100,
				HomogeneousSystem:   math.NaN(),
				HetHomogComputation: 4, HetHetComputation: 2.5,
				EnergyOpenMP: 5000, EnergyHetHet: 700,
			},
			{
				Metaheuristic: "M2", OpenMP: 200,
				HomogeneousSystem:   math.NaN(),
				HetHomogComputation: 8, HetHetComputation: 6,
				EnergyOpenMP: 9000, EnergyHetHet: 1500,
			},
		},
	}
}

func TestTableCSVRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := TableCSV(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d records", len(records))
	}
	if records[0][0] != "table" {
		t.Error("missing header")
	}
	if records[1][3] != "M1" || records[1][4] != "100" {
		t.Errorf("M1 row = %v", records[1])
	}
	// NaN column is empty.
	if records[1][5] != "" {
		t.Errorf("NaN cell rendered as %q", records[1][5])
	}
	if records[1][8] != "1.6" { // 4 / 2.5
		t.Errorf("speedup cell = %q", records[1][8])
	}
}

func TestTableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := TableJSON(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Table int `json:"table"`
		Rows  []map[string]any
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Table != 8 || len(decoded.Rows) != 2 {
		t.Errorf("decoded %+v", decoded)
	}
	// NaN column omitted entirely (JSON cannot hold NaN).
	if _, present := decoded.Rows[0]["homogeneous_system_s"]; present {
		t.Error("NaN column serialized")
	}
}

func TestWriteTableFormats(t *testing.T) {
	for _, f := range []Format{FormatText, FormatCSV, FormatJSON, ""} {
		var buf bytes.Buffer
		if err := WriteTable(&buf, sampleTable(), f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced nothing", f)
		}
	}
	if err := WriteTable(&bytes.Buffer{}, sampleTable(), "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestHistoryCSV(t *testing.T) {
	res := &core.Result{History: []core.GenPoint{
		{Generation: 1, SimSeconds: 0.1, Best: -3},
		{Generation: 2, SimSeconds: 0.2, Best: -5},
	}}
	var buf bytes.Buffer
	if err := HistoryCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d records", len(records))
	}
	if records[2][0] != "2" || records[2][2] != "-5" {
		t.Errorf("row = %v", records[2])
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty input produced output")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width produced output")
	}
	s := Sparkline([]float64{0, -1, -2, -3}, 4)
	runes := []rune(s)
	if len(runes) != 4 {
		t.Fatalf("width = %d", len(runes))
	}
	// Scores decrease (improve), so the bars must not descend.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("sparkline descends: %s", s)
		}
	}
	// Flat series renders without panic.
	if got := Sparkline([]float64{2, 2, 2}, 3); len([]rune(got)) != 3 {
		t.Errorf("flat sparkline = %q", got)
	}
}

func TestScreenCSV(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 400, 21)
	library := []*molecule.Molecule{
		molecule.SyntheticLigand("lig-a", 8, 1),
		molecule.SyntheticLigand("lig-b", 12, 2),
	}
	algf := func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewScatterSearch("ss", metaheuristic.Params{
			PopulationPerSpot: 8, SelectFraction: 1, Generations: 2,
		})
	}
	res, err := core.Screen(rec, library, surface.Options{MaxSpots: 2}, forcefield.Options{},
		algf, core.HostBackendFactory(core.HostConfig{Real: true}), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ScreenCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d records", len(records))
	}
	if records[1][0] != "1" || records[2][0] != "2" {
		t.Error("ranks wrong")
	}
	if !strings.HasPrefix(records[1][1], "lig-") {
		t.Errorf("ligand name = %q", records[1][1])
	}
}
