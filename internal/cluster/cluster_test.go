package cluster

import (
	"sync"
	"testing"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/sched"
)

func TestCommSendRecv(t *testing.T) {
	comms, err := NewComms(2, DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := comms[0].Send(1, 7, "hello", 5); err != nil {
			t.Error(err)
		}
	}()
	var got any
	go func() {
		defer wg.Done()
		var err error
		got, err = comms[1].Recv(0, 7)
		if err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if got != "hello" {
		t.Errorf("received %v", got)
	}
	if comms[0].NetTime() <= 0 {
		t.Error("network time not charged")
	}
}

func TestCommTagMismatch(t *testing.T) {
	comms, err := NewComms(2, DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if err := comms[0].Send(1, 1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := comms[1].Recv(0, 2); err == nil {
		t.Error("tag mismatch not detected")
	}
}

func TestCommRankBounds(t *testing.T) {
	comms, _ := NewComms(2, DefaultNetwork())
	if err := comms[0].Send(5, 1, "x", 1); err == nil {
		t.Error("out-of-range send accepted")
	}
	if _, err := comms[0].Recv(-1, 1); err == nil {
		t.Error("out-of-range recv accepted")
	}
	if _, err := NewComms(0, DefaultNetwork()); err == nil {
		t.Error("zero-size world accepted")
	}
}

func TestCommBroadcastGather(t *testing.T) {
	const n = 4
	comms, err := NewComms(n, DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	bcast := make([]any, n)
	var gathered []any
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v, err := comms[r].Broadcast(0, 1, 42, 8)
			if err != nil {
				t.Error(err)
				return
			}
			bcast[r] = v
			g, err := comms[r].Gather(0, 2, r*10, 8)
			if err != nil {
				t.Error(err)
				return
			}
			if r == 0 {
				gathered = g
			}
		}(r)
	}
	wg.Wait()
	for r, v := range bcast {
		if v != 42 {
			t.Errorf("rank %d broadcast value %v", r, v)
		}
	}
	if len(gathered) != n {
		t.Fatalf("gathered %d values", len(gathered))
	}
	for r, v := range gathered {
		if v != r*10 {
			t.Errorf("gathered[%d] = %v", r, v)
		}
	}
}

func clusterProblem(t *testing.T) *core.Problem {
	t.Helper()
	p, err := core.NewProblemFromDataset(core.Dataset2BSM(), forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hertzNode() []cudasim.DeviceSpec {
	return []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
}

func TestClusterRun(t *testing.T) {
	p := clusterProblem(t)
	res, err := Run(p, "M3", 0.1, Config{
		Nodes:       4,
		GPUsPerNode: hertzNode(),
		Mode:        sched.Heterogeneous,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("%d node results", len(res.Nodes))
	}
	totalSpots := 0
	for r, nr := range res.Nodes {
		if nr.Rank != r {
			t.Errorf("node %d has rank %d", r, nr.Rank)
		}
		if nr.SimulatedSeconds <= 0 {
			t.Errorf("node %d: no simulated time", r)
		}
		totalSpots += nr.Spots
	}
	if totalSpots != len(p.Spots) {
		t.Errorf("nodes covered %d spots, problem has %d", totalSpots, len(p.Spots))
	}
	if !res.Best.Evaluated() {
		t.Error("no global best gathered")
	}
	if res.Best.Spot < 0 || res.Best.Spot >= len(p.Spots) {
		t.Errorf("global best spot ID %d out of range", res.Best.Spot)
	}
	if res.NetworkSeconds <= 0 {
		t.Error("no network time modeled")
	}
	if res.SimulatedSeconds < res.ComputeSeconds {
		t.Error("makespan below compute time")
	}
}

func TestClusterScales(t *testing.T) {
	// More nodes -> shorter makespan (spots are independent).
	p := clusterProblem(t)
	run := func(nodes int) float64 {
		res, err := Run(p, "M3", 0.1, Config{
			Nodes:       nodes,
			GPUsPerNode: hertzNode(),
			Mode:        sched.Homogeneous,
		}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedSeconds
	}
	t1, t4 := run(1), run(4)
	if t4 >= t1 {
		t.Errorf("4 nodes (%v) not faster than 1 node (%v)", t4, t1)
	}
	speedup := t1 / t4
	if speedup < 2 || speedup > 4.5 {
		t.Errorf("4-node speed-up = %v, want roughly linear", speedup)
	}
}

func TestClusterErrors(t *testing.T) {
	p := clusterProblem(t)
	if _, err := Run(p, "M3", 0.1, Config{Nodes: 0, GPUsPerNode: hertzNode()}, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Run(p, "M3", 0.1, Config{Nodes: 2}, 1); err == nil {
		t.Error("no GPUs accepted")
	}
	if _, err := Run(p, "M3", 0.1, Config{Nodes: 1000, GPUsPerNode: hertzNode()}, 1); err == nil {
		t.Error("more nodes than spots accepted")
	}
	if _, err := Run(p, "M9", 0.1, Config{Nodes: 2, GPUsPerNode: hertzNode()}, 1); err == nil {
		t.Error("unknown metaheuristic accepted")
	}
}

func TestHeterogeneousClusterWeightedSpots(t *testing.T) {
	// A mixed cluster: one strong node (Hertz-like) and one weak node
	// (single GTX 580). Weighted spot partition must beat the equal one.
	p := clusterProblem(t)
	mixed := [][]cudasim.DeviceSpec{
		hertzNode(),
		{cudasim.GTX580},
	}
	run := func(weighted bool) *Result {
		// Scale 0.4 keeps per-generation batches large enough that node
		// time tracks spot count (at tiny scales fixed per-launch
		// overheads dominate and no partition helps).
		res, err := Run(p, "M3", 0.4, Config{
			NodeGPUs:      mixed,
			Mode:          sched.Heterogeneous,
			WeightedSpots: weighted,
		}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	eq := run(false)
	wt := run(true)
	if wt.SimulatedSeconds >= eq.SimulatedSeconds {
		t.Errorf("weighted spots (%v) not faster than equal (%v)",
			wt.SimulatedSeconds, eq.SimulatedSeconds)
	}
	// The strong node must have received more spots.
	if wt.Nodes[0].Spots <= wt.Nodes[1].Spots {
		t.Errorf("strong node got %d spots, weak node %d",
			wt.Nodes[0].Spots, wt.Nodes[1].Spots)
	}
	// All spots still covered.
	if wt.Nodes[0].Spots+wt.Nodes[1].Spots != len(p.Spots) {
		t.Error("spot coverage broken under weighted partition")
	}
}

func TestHeterogeneousClusterValidation(t *testing.T) {
	p := clusterProblem(t)
	if _, err := Run(p, "M3", 0.1, Config{
		NodeGPUs: [][]cudasim.DeviceSpec{hertzNode(), {}},
	}, 1); err == nil {
		t.Error("node with no GPUs accepted")
	}
}

func TestCommNetworkAccounting(t *testing.T) {
	net := Network{LatencySeconds: 1e-3, BandwidthBytesPerSec: 1e6}
	comms, err := NewComms(2, net)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 MB/s + 1 ms latency = 1.001 s.
	if err := comms[0].Send(1, 1, "payload", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := comms[1].Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	got := comms[0].NetTime()
	want := 1e-3 + float64(1<<20)/1e6
	if got < want*0.999 || got > want*1.001 {
		t.Errorf("network time = %v, want %v", got, want)
	}
	// Zero-bandwidth network charges only latency.
	zc, err := NewComms(2, Network{LatencySeconds: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := zc[0].Send(1, 1, "x", 100); err != nil {
		t.Fatal(err)
	}
	if got := zc[0].NetTime(); got != 5e-6 {
		t.Errorf("latency-only network time = %v", got)
	}
}

func TestGatherNonRootReturnsNil(t *testing.T) {
	comms, err := NewComms(2, DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []any, 1)
	go func() {
		g, err := comms[0].Gather(0, 3, "root", 4)
		if err != nil {
			t.Error(err)
		}
		done <- g
	}()
	g1, err := comms[1].Gather(0, 3, "leaf", 4)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != nil {
		t.Error("non-root Gather returned data")
	}
	if g0 := <-done; len(g0) != 2 || g0[1] != "leaf" {
		t.Errorf("root gathered %v", g0)
	}
}

func TestClusterDeterministic(t *testing.T) {
	p := clusterProblem(t)
	cfg := Config{Nodes: 3, GPUsPerNode: hertzNode(), Mode: sched.Heterogeneous}
	a, err := Run(p, "M3", 0.1, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, "M3", 0.1, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Score != b.Best.Score || a.SimulatedSeconds != b.SimulatedSeconds {
		t.Error("same-seed cluster runs differ")
	}
}
