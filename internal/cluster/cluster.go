package cluster

import (
	"fmt"
	"sort"
	"sync"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/sched"
)

// Config describes a simulated cluster of multicore+multiGPU nodes. Nodes
// are identical (Nodes x GPUsPerNode) unless NodeGPUs is set, which gives
// each node its own device list — a heterogeneous cluster, the second
// heterogeneity level the paper's future work anticipates.
type Config struct {
	// Nodes is the node count (ignored when NodeGPUs is set).
	Nodes int
	// GPUsPerNode lists each node's devices for a homogeneous cluster.
	GPUsPerNode []cudasim.DeviceSpec
	// NodeGPUs, when non-empty, defines a heterogeneous cluster: one
	// device list per node.
	NodeGPUs [][]cudasim.DeviceSpec
	// Mode is the intra-node partitioning strategy.
	Mode sched.Mode
	// Network models the interconnect; zero value means DefaultNetwork.
	Network Network
	// WarpsPerBlock is the CUDA block granularity; 0 means 8.
	WarpsPerBlock int
	// WeightedSpots splits spots proportionally to each node's modeled
	// throughput instead of equally — the cluster-level analogue of the
	// paper's heterogeneous computation. Essential when NodeGPUs mixes
	// fast and slow nodes.
	WeightedSpots bool
}

func (c Config) withDefaults() Config {
	if c.Network == (Network{}) {
		c.Network = DefaultNetwork()
	}
	if c.WarpsPerBlock <= 0 {
		c.WarpsPerBlock = 8
	}
	return c
}

// nodeDevices resolves the per-node device lists.
func (c Config) nodeDevices() ([][]cudasim.DeviceSpec, error) {
	if len(c.NodeGPUs) > 0 {
		for i, gpus := range c.NodeGPUs {
			if len(gpus) == 0 {
				return nil, fmt.Errorf("cluster: node %d has no GPUs", i)
			}
		}
		return c.NodeGPUs, nil
	}
	if c.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes", c.Nodes)
	}
	if len(c.GPUsPerNode) == 0 {
		return nil, fmt.Errorf("cluster: nodes with no GPUs")
	}
	out := make([][]cudasim.DeviceSpec, c.Nodes)
	for i := range out {
		out[i] = c.GPUsPerNode
	}
	return out, nil
}

// nodeWeights returns each node's modeled scoring throughput.
func nodeWeights(nodes [][]cudasim.DeviceSpec) []float64 {
	model := cudasim.DefaultCostModel()
	w := make([]float64, len(nodes))
	for i, gpus := range nodes {
		for _, g := range gpus {
			w[i] += model.PairRate(g, cudasim.KernelScoring)
		}
	}
	return w
}

// NodeResult is one node's contribution.
type NodeResult struct {
	// Rank is the node's rank.
	Rank int
	// Spots is the number of spots the node optimized.
	Spots int
	// SimulatedSeconds is the node's compute time.
	SimulatedSeconds float64
	// Best is the node's best conformation (spot IDs are global).
	Best conformation.Conformation
}

// Result is a whole-cluster run.
type Result struct {
	// Nodes holds the per-node outcomes in rank order.
	Nodes []NodeResult
	// Best is the global winner gathered at rank 0.
	Best conformation.Conformation
	// ComputeSeconds is the slowest node's compute time.
	ComputeSeconds float64
	// NetworkSeconds is the modeled communication cost.
	NetworkSeconds float64
	// SimulatedSeconds is ComputeSeconds + NetworkSeconds, the modeled
	// end-to-end makespan.
	SimulatedSeconds float64
}

// bestMsg is the gather payload: a node's best conformation, with the
// global spot ID restored.
type bestMsg struct {
	best conformation.Conformation
	time float64
	n    int
}

// wire size of a gathered best: pose (56 bytes) + score + spot id.
const bestBytes = 72

// Run executes the screening distributed over a simulated cluster: spots
// are split contiguously across ranks, every node runs the metaheuristic
// on its share with its own multi-GPU pool (Modeled mode), and rank 0
// gathers the winners. Nodes execute as real concurrent goroutines
// exchanging messages through the Comm layer.
func Run(p *core.Problem, algName string, scale float64, cfg Config, seed uint64) (*Result, error) {
	cfg = cfg.withDefaults()
	nodeGPUs, err := cfg.nodeDevices()
	if err != nil {
		return nil, err
	}
	nNodes := len(nodeGPUs)
	if nNodes > len(p.Spots) {
		return nil, fmt.Errorf("cluster: %d nodes for %d spots", nNodes, len(p.Spots))
	}
	comms, err := NewComms(nNodes, cfg.Network)
	if err != nil {
		return nil, err
	}

	// Contiguous spot partition: equal by count, or proportional to node
	// throughput for heterogeneous clusters.
	var shares []int
	if cfg.WeightedSpots {
		shares = sched.SplitProportional(len(p.Spots), nodeWeights(nodeGPUs))
	} else {
		shares = sched.SplitEqual(len(p.Spots), nNodes)
	}
	offsets := make([]int, nNodes+1)
	for i, s := range shares {
		offsets[i+1] = offsets[i] + s
	}

	results := make([]NodeResult, nNodes)
	errs := make([]error, nNodes)
	var gathered []any
	var wg sync.WaitGroup
	for rank := 0; rank < nNodes; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := comms[rank]
			lo, hi := offsets[rank], offsets[rank+1]
			if lo == hi {
				// A node with no spots still participates in the gather.
				results[rank] = NodeResult{
					Rank: rank,
					Best: conformation.Conformation{Score: conformation.Unscored},
				}
				g, err := comm.Gather(0, 1, bestMsg{
					best: results[rank].Best,
				}, bestBytes)
				if err != nil {
					errs[rank] = err
					return
				}
				if rank == 0 {
					gathered = g
				}
				return
			}
			idx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				idx = append(idx, i)
			}
			sub, err := p.SubsetSpots(idx)
			if err != nil {
				errs[rank] = err
				return
			}
			alg, err := metaheuristic.NewPaper(algName, scale)
			if err != nil {
				errs[rank] = err
				return
			}
			backend, err := core.NewPoolBackend(sub, core.PoolConfig{
				Specs:         nodeGPUs[rank],
				Mode:          cfg.Mode,
				WarpsPerBlock: cfg.WarpsPerBlock,
				Seed:          seed + uint64(rank),
			})
			if err != nil {
				errs[rank] = err
				return
			}
			res, err := core.Run(sub, alg, backend, seed+uint64(rank))
			if err != nil {
				errs[rank] = err
				return
			}
			best := res.Best
			best.Spot += lo // restore the global spot ID
			results[rank] = NodeResult{
				Rank:             rank,
				Spots:            hi - lo,
				SimulatedSeconds: res.SimulatedSeconds,
				Best:             best,
			}
			g, err := comm.Gather(0, 1, bestMsg{best: best, time: res.SimulatedSeconds, n: hi - lo}, bestBytes)
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				gathered = g
			}
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &Result{Nodes: results}
	out.Best = conformation.Conformation{Score: conformation.Unscored}
	for _, g := range gathered {
		m := g.(bestMsg)
		if m.best.Better(out.Best) {
			out.Best = m.best
		}
		if m.time > out.ComputeSeconds {
			out.ComputeSeconds = m.time
		}
	}
	out.NetworkSeconds = comms[0].NetTime()
	out.SimulatedSeconds = out.ComputeSeconds + out.NetworkSeconds
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Rank < out.Nodes[j].Rank })
	return out, nil
}
