// Package cluster simulates the paper's future-work platform ("several
// computational nodes working together with the message-passing paradigm,
// and each node with several computational components"): a set of
// multicore+multiGPU nodes connected by a modeled interconnect, with an
// MPI-like communicator for rank-to-rank messages and collectives.
//
// Each node optimizes a disjoint subset of the receptor's surface spots
// (spots are independent sub-problems, so the partition is embarrassingly
// parallel); rank 0 gathers the per-spot winners. Simulated time is the
// slowest node's compute time plus the modeled gather cost.
package cluster

import (
	"fmt"
	"sync"
)

// message is one point-to-point payload.
type message struct {
	from    int
	tag     int
	payload any
}

// Comm is an MPI-like communicator over in-process channels. Each rank
// must use its own *Comm handle from a single goroutine.
type Comm struct {
	rank  int
	size  int
	boxes [][]chan message // boxes[to][from]

	netMu   *sync.Mutex
	netTime *float64 // accumulated modeled network seconds
	latency float64
	bandwdt float64
}

// Network describes the modeled interconnect.
type Network struct {
	// LatencySeconds is the per-message latency.
	LatencySeconds float64
	// BandwidthBytesPerSec is the link bandwidth.
	BandwidthBytesPerSec float64
}

// DefaultNetwork returns FDR-InfiniBand-like parameters (2 us, 6 GB/s),
// period-appropriate for the paper's clusters.
func DefaultNetwork() Network {
	return Network{LatencySeconds: 2e-6, BandwidthBytesPerSec: 6e9}
}

// NewComms creates the communicators for a world of the given size.
func NewComms(size int, net Network) ([]*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cluster: world size %d", size)
	}
	boxes := make([][]chan message, size)
	for to := range boxes {
		boxes[to] = make([]chan message, size)
		for from := range boxes[to] {
			boxes[to][from] = make(chan message, 64)
		}
	}
	var mu sync.Mutex
	var netTime float64
	comms := make([]*Comm, size)
	for r := range comms {
		comms[r] = &Comm{
			rank: r, size: size, boxes: boxes,
			netMu: &mu, netTime: &netTime,
			latency: net.LatencySeconds, bandwdt: net.BandwidthBytesPerSec,
		}
	}
	return comms, nil
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// chargeNet accounts the modeled cost of moving n bytes.
func (c *Comm) chargeNet(bytes int) {
	cost := c.latency
	if c.bandwdt > 0 {
		cost += float64(bytes) / c.bandwdt
	}
	c.netMu.Lock()
	*c.netTime += cost
	c.netMu.Unlock()
}

// NetTime returns the accumulated modeled network seconds across all ranks.
func (c *Comm) NetTime() float64 {
	c.netMu.Lock()
	defer c.netMu.Unlock()
	return *c.netTime
}

// Send delivers payload to rank `to` with a tag. bytes is the modeled wire
// size. Send blocks only when the destination mailbox is full.
func (c *Comm) Send(to, tag int, payload any, bytes int) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("cluster: send to rank %d of %d", to, c.size)
	}
	c.chargeNet(bytes)
	c.boxes[to][c.rank] <- message{from: c.rank, tag: tag, payload: payload}
	return nil
}

// Recv blocks until a message with the tag arrives from rank `from`.
// Messages from one sender are delivered in order; a message with a
// different tag at the head of the mailbox is an error (this simulator
// uses disciplined tag protocols, not out-of-order matching).
func (c *Comm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("cluster: recv from rank %d of %d", from, c.size)
	}
	m := <-c.boxes[c.rank][from]
	if m.tag != tag {
		return nil, fmt.Errorf("cluster: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag)
	}
	return m.payload, nil
}

// Broadcast sends payload from root to every other rank (root returns the
// payload unchanged; other ranks receive it).
func (c *Comm) Broadcast(root, tag int, payload any, bytes int) (any, error) {
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, payload, bytes); err != nil {
				return nil, err
			}
		}
		return payload, nil
	}
	return c.Recv(root, tag)
}

// Gather collects one payload per rank at root, indexed by rank. Non-root
// ranks return nil.
func (c *Comm) Gather(root, tag int, payload any, bytes int) ([]any, error) {
	if c.rank != root {
		return nil, c.Send(root, tag, payload, bytes)
	}
	out := make([]any, c.size)
	out[root] = payload
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		p, err := c.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = p
	}
	return out, nil
}
