// Package dist scales a screening service out across nodes: a
// coordinator accepts ordinary screen requests, shards the ligand
// library across registered worker replicas by FNV-1a name hash, and
// dispatches each shard to a worker over the normal HTTP JSON API as a
// Ligands-restricted ScreenRequest. Per-ligand seed lanes are keyed by
// ligand name, so placement never changes a ligand's result: the merged
// ranking of a 3-node screen is byte-identical to the same screen run on
// one node at equal seeds.
//
// Workers are stock vsserved nodes — registration and heartbeating are
// the only coordinator-specific traffic they emit. The coordinator
// streams each shard's completed-ligand ranking from the worker's
// /partial endpoint as the screen checkpoints, merging entries as they
// arrive; when a worker dies (heartbeat timeout or repeated request
// failures) only its unfinished ligands move, re-split over the
// survivors proportionally to their observed throughput (the device
// pool's warm-up-weighted re-split, lifted one level up). All
// distributed state — membership, shard assignments, merged entries,
// terminal results — is journaled through the WAL, so a restarted
// coordinator resumes mid-screen and re-dispatches under the same
// idempotency keys, mapping onto the workers' still-running jobs instead
// of duplicating them.
package dist

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/fsim"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/trace"
	"github.com/metascreen/metascreen/internal/wal"
)

// Config tunes a coordinator. Zero values mean the documented defaults.
type Config struct {
	// DataDir roots the coordinator's journal ("" = in-memory only: a
	// restart forgets all distributed jobs).
	DataDir string
	// SyncPolicy is the journal's fsync policy (wal.SyncAlways default).
	SyncPolicy wal.SyncPolicy
	// FS is the filesystem the journal writes through; nil means the real
	// one. Storage chaos plans (-disk-chaos) inject a fsim.Faulty here.
	FS fsim.FS
	// HeartbeatTimeout declares a worker dead when no heartbeat (or
	// successful request) has been seen for this long; default 5s.
	HeartbeatTimeout time.Duration
	// PollInterval paces the per-job supervision loop (dispatch, partial
	// polls, merge, death checks); default 100ms.
	PollInterval time.Duration
	// RequestTimeout bounds each HTTP request to a worker; default 15s.
	// With RequestAttempts retries, one logical call takes at most about
	// RequestTimeout × RequestAttempts plus backoff.
	RequestTimeout time.Duration
	// RequestAttempts is the total number of tries per worker request;
	// transient failures (transport errors, timeouts, 408/429/5xx) are
	// retried with exponential backoff and jitter. 0 means 3; 1 disables
	// retries.
	RequestAttempts int
	// RetryBaseDelay seeds the retry backoff, doubled per retry and
	// jittered; default 50ms.
	RetryBaseDelay time.Duration
	// FailThreshold is how many consecutive failed requests to one worker
	// declare it dead, independent of its heartbeat age; default 2 — one
	// transient refusal is forgiven, a flapping node is not waited out.
	FailThreshold int
	// MaxResponseBytes caps how much of a worker response is read; 0
	// sizes the cap to the service's library limit (MaxRankingLimit
	// entries plus headroom), the largest partial a shard can produce.
	MaxResponseBytes int64
	// Transport overrides the HTTP transport for worker requests —
	// netsim fault injection in tests and chaos drills, proxies in odd
	// deployments. nil = http.DefaultTransport.
	Transport http.RoundTripper
	// CompactBytes triggers journal compaction; default 4 MiB.
	CompactBytes int64
	// StealThreshold flags a shard as a straggler when its projected
	// finish time (unfinished ligands / owner's observed rate) exceeds
	// this multiple of the reference ETA — the median over the job's
	// active shards, falling back to the median completed-shard duration.
	// An idle worker then steals the unfinished remainder. 0 means 3;
	// negative disables stealing.
	StealThreshold float64
	// HedgeTail speculatively re-dispatches the remaining ligands of the
	// job's last K unfinished shards to idle workers; the first complete
	// result wins and the loser is cancelled. 0 disables hedging.
	HedgeTail int
	// QuarantineFactor demotes persistently slow workers to a brownout:
	// a worker whose observed rate stays below the alive-fleet median
	// divided by this factor is quarantined — its weight in re-splits is
	// divided by the same factor and it stops receiving steals, hedges,
	// and initial equal-split shards — until its rate recovers. 0 means
	// 4; negative disables quarantine.
	QuarantineFactor float64
	// Logger receives coordinator events; default slog text to stderr.
	Logger *slog.Logger

	now func() time.Time // test hook; default time.Now
}

// maxPartialEntryBytes is the sizing assumption behind the default
// response cap: one JSON partial entry with headroom for long ligand
// names and large counters.
const maxPartialEntryBytes = 512

// validate rejects nonsensical tuning before any of it journals.
func (c Config) validate() error {
	if c.RequestAttempts < 0 {
		return fmt.Errorf("dist: RequestAttempts %d must be >= 0", c.RequestAttempts)
	}
	if c.FailThreshold < 0 {
		return fmt.Errorf("dist: FailThreshold %d must be >= 0", c.FailThreshold)
	}
	if c.MaxResponseBytes < 0 {
		return fmt.Errorf("dist: MaxResponseBytes %d must be >= 0", c.MaxResponseBytes)
	}
	if c.MaxResponseBytes > 0 && c.MaxResponseBytes < 64<<10 {
		return fmt.Errorf("dist: MaxResponseBytes %d is below the 64 KiB floor (too small for a shard partial)", c.MaxResponseBytes)
	}
	if c.RetryBaseDelay < 0 {
		return fmt.Errorf("dist: RetryBaseDelay %v must be >= 0", c.RetryBaseDelay)
	}
	if c.HedgeTail < 0 {
		return fmt.Errorf("dist: HedgeTail %d must be >= 0", c.HedgeTail)
	}
	if c.QuarantineFactor > 0 && c.QuarantineFactor <= 1 {
		return fmt.Errorf("dist: QuarantineFactor %v must exceed 1 (or be 0 for the default, negative to disable)", c.QuarantineFactor)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.RequestAttempts == 0 {
		c.RequestAttempts = 3
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 2
	}
	if c.MaxResponseBytes == 0 {
		// Sized to the library cap: the biggest partial one poll can see.
		c.MaxResponseBytes = int64(service.MaxRankingLimit)*maxPartialEntryBytes + 64<<10
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	if c.StealThreshold == 0 {
		c.StealThreshold = 3
	}
	if c.QuarantineFactor == 0 {
		c.QuarantineFactor = 4
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// worker is one registered node. Guarded by the coordinator's mutex.
type worker struct {
	url      string
	alive    bool
	epoch    uint64 // fencing epoch, bumped on every dead→alive transition
	lastBeat time.Time
	rate     sched.RateEWMA // observed completed ligands/second across its shards
	selfRate float64        // last rate the worker reported about itself (PartialView.RateLPS)
	shards   int64          // shards ever assigned here

	// Straggler quarantine. A quarantined worker stays alive and keeps
	// its shards, but its split weight is browned out and it receives no
	// stolen or hedged work until its rate recovers.
	quarantined bool
	slowStreak  int   // consecutive assessments below the quarantine bar
	stolenFrom  int64 // shards stolen away from this worker, ever
}

// shard is one contiguous slice of a distributed job's ligands, owned by
// one worker. Guarded by the coordinator's mutex.
type shard struct {
	id      string   // "s0", "s1", ... unique within the job, stable across restarts
	worker  string   // owning worker URL
	epoch   uint64   // owner's registration epoch at assignment; immutable after creation
	ligands []string // assigned ligand names, library order
	remote  string   // worker-side job ID; "" until the dispatch is acknowledged
	done    bool     // every assigned ligand merged
	moved   bool     // fenced out: worker died, remainder stolen, or hedge race lost
	stolen  bool     // moved because an idle worker stole the unfinished remainder

	// Hedge linkage: a hedge shard carries hedgeOf = the primary shard it
	// backs; a hedged primary carries hedgedBy = its twin's ID. The two
	// cover the same unfinished ligands — first complete wins, the loser
	// is fenced (moved) and cancelled.
	hedgeOf  string
	hedgedBy string

	dispatched time.Time
	doneAt     time.Time // completion time, for straggler reference durations
	lastPoll   time.Time
	lastSeen   int // merged count at the previous poll
	errs       int // consecutive failed requests for this shard
}

// job is one distributed screen. Guarded by the coordinator's mutex.
type job struct {
	id        string
	idemKey   string
	req       service.ScreenRequest // normalized
	state     service.JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string

	names      []string        // target ligand names, library order
	nameSet    map[string]bool // membership of names
	merged     map[string]service.PartialEntry
	shards     []*shard
	nextShard  int
	unassigned []string // ligands awaiting (re-)assignment, library order
	resplits   int

	cancelRequested bool
	final           *JobView        // terminal snapshot (journal round-trip)
	rec             *trace.Recorder // per-shard span timeline
}

// Coordinator owns distributed-job state and the per-job supervisors.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	cl      *client
	metrics *Metrics

	mu        sync.Mutex
	workers   map[string]*worker
	jobs      map[string]*job
	order     []string
	idem      map[string]string // idempotency key -> job ID
	nextID    uint64
	nextEpoch uint64      // monotonic fencing-epoch counter, journaled
	fenced     []remoteRef // zombie worker-side jobs awaiting best-effort cancel
	journal    *wal.Journal
	draining   bool
	lastAssess time.Time // last quarantine assessment, rate-limited to PollInterval

	reqCtx    context.Context // lifetime context for all worker requests
	reqCancel context.CancelFunc
	done      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// New builds a coordinator, replaying its journal (when DataDir is set)
// and resuming every non-terminal distributed job found there.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	metrics := NewMetrics()
	c := &Coordinator{
		cfg: cfg,
		log: cfg.Logger,
		cl: &client{
			hc:        &http.Client{Transport: cfg.Transport},
			timeout:   cfg.RequestTimeout,
			attempts:  cfg.RequestAttempts,
			backoff:   cfg.RetryBaseDelay,
			respLimit: cfg.MaxResponseBytes,
			onRetry:   metrics.RequestRetried,
		},
		metrics: metrics,
		workers: make(map[string]*worker),
		jobs:    make(map[string]*job),
		idem:    make(map[string]string),
		done:    make(chan struct{}),
	}
	c.reqCtx, c.reqCancel = context.WithCancel(context.Background())
	if cfg.DataDir != "" {
		if err := c.openJournal(); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	for _, id := range c.order {
		j := c.jobs[id]
		if !j.state.Terminal() {
			c.superviseLocked(j)
		}
	}
	c.mu.Unlock()
	return c, nil
}

// Stats is the coordinator's /healthz snapshot.
type Stats struct {
	Workers             int  `json:"workers"`
	WorkersAlive        int  `json:"workers_alive"`
	WorkersQuarantined  int  `json:"workers_quarantined,omitempty"`
	Jobs                int  `json:"jobs"`
	Queued              int  `json:"queued"`
	Running             int  `json:"running"`
	Draining            bool `json:"draining"`
}

// Stats snapshots coordinator-level gauges.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Workers: len(c.workers), Jobs: len(c.jobs), Draining: c.draining}
	for _, w := range c.workers {
		if w.alive {
			st.WorkersAlive++
			if w.quarantined {
				st.WorkersQuarantined++
			}
		}
	}
	for _, j := range c.jobs {
		switch j.state {
		case service.StateQueued:
			st.Queued++
		case service.StateRunning:
			st.Running++
		}
	}
	return st
}

// Ready reports readiness: the journal has been replayed (guaranteed
// once New returns) and the coordinator is not draining.
func (c *Coordinator) Ready() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.draining
}

// Register upserts a worker by URL and counts as a heartbeat. A dead or
// unknown worker becomes alive under a fresh fencing epoch; shards the
// worker owned under its previous epoch are thereby invalidated — a node
// that was declared dead and comes back (a zombie, in the partition
// sense) cannot have its stale results merged, because every dispatch
// and poll compares the shard's epoch against this one. Returns the
// current membership size.
func (c *Coordinator) Register(rawURL string) (int, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return 0, fmt.Errorf("dist: worker url %q must be absolute http(s)", rawURL)
	}
	base := u.Scheme + "://" + u.Host
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	w, ok := c.workers[base]
	if !ok {
		w = &worker{url: base}
		c.workers[base] = w
	}
	if !w.alive {
		w.alive = true
		w.rate.Reset()
		w.selfRate = 0
		w.quarantined = false
		w.slowStreak = 0
		c.nextEpoch++
		w.epoch = c.nextEpoch
		c.metrics.WorkerJoined()
		c.appendEvent(event{Type: evWorker, Worker: base, Alive: true, Epoch: w.epoch})
		c.log.Info("worker joined", "worker", base, "epoch", w.epoch, "members", len(c.workers))
	}
	w.lastBeat = now
	return len(c.workers), nil
}

// WorkerView is one membership row on the wire. ThroughputLPS is the
// coordinator's own poll-delta estimate; SelfRateLPS is what the worker
// last reported about itself via PartialView — comparing the two is the
// first diagnostic when a shard looks slow.
type WorkerView struct {
	URL                 string  `json:"url"`
	Alive               bool    `json:"alive"`
	Epoch               uint64  `json:"epoch,omitempty"`
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
	ThroughputLPS       float64 `json:"throughput_lps,omitempty"`
	SelfRateLPS         float64 `json:"self_rate_lps,omitempty"`
	Shards              int64   `json:"shards,omitempty"`
	Quarantined         bool    `json:"quarantined,omitempty"`
	StolenFrom          int64   `json:"stolen_from,omitempty"`
}

// Workers lists membership sorted by URL.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerView{
			URL:                 w.url,
			Alive:               w.alive,
			Epoch:               w.epoch,
			HeartbeatAgeSeconds: now.Sub(w.lastBeat).Seconds(),
			ThroughputLPS:       w.rate.Value(),
			SelfRateLPS:         w.selfRate,
			Shards:              w.shards,
			Quarantined:         w.quarantined,
			StolenFrom:          w.stolenFrom,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].URL < out[b].URL })
	return out
}

// DebugSnapshot is the coordinator's one-call operational dump, served at
// /debug/snapshot: membership with per-worker rates and quarantine state,
// coordinator gauges, and every job with its shard table.
type DebugSnapshot struct {
	Stats   Stats        `json:"stats"`
	Workers []WorkerView `json:"workers"`
	Jobs    []JobView    `json:"jobs"`
}

// Snapshot assembles the debug dump.
func (c *Coordinator) Snapshot() DebugSnapshot {
	return DebugSnapshot{Stats: c.Stats(), Workers: c.Workers(), Jobs: c.List()}
}

// ShardView is one shard's status on the wire.
type ShardView struct {
	ID      string `json:"id"`
	Worker  string `json:"worker"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Ligands int    `json:"ligands"`
	Merged  int    `json:"merged"`
	Remote  string `json:"remote,omitempty"`
	Done    bool   `json:"done,omitempty"`
	Moved   bool   `json:"moved,omitempty"`
	Stolen  bool   `json:"stolen,omitempty"`
	HedgeOf string `json:"hedge_of,omitempty"`
}

// JobView is a distributed screen on the wire (and in the journal's
// terminal records, so every field must round-trip through JSON). Result
// holds the merged ranking: partial while running, complete once done —
// the same ResultView shape a single node serves, so clients and the
// byte-identity checks need no distributed-specific decoding.
type JobView struct {
	ID          string                `json:"id"`
	State       service.JobState      `json:"state"`
	Request     service.ScreenRequest `json:"request"`
	SubmittedAt time.Time             `json:"submitted_at"`
	StartedAt   *time.Time            `json:"started_at,omitempty"`
	FinishedAt  *time.Time            `json:"finished_at,omitempty"`
	Error       string                `json:"error,omitempty"`
	Completed   int                   `json:"completed"`
	Total       int                   `json:"total"`
	Resplits    int                   `json:"resplits,omitempty"`
	Shards      []ShardView           `json:"shards,omitempty"`
	Result      *service.ResultView   `json:"result,omitempty"`
}

// Submit admits a distributed screen. The request is validated exactly
// like a single-node submission; sharding happens in the supervisor as
// workers are available, so submitting before any worker registers is
// legal — the job waits in queued.
func (c *Coordinator) Submit(req service.ScreenRequest, idemKey string) (JobView, bool, error) {
	req = req.Normalized()
	if err := req.Validate(); err != nil {
		return JobView{}, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return JobView{}, false, service.ErrDraining
	}
	if idemKey != "" {
		if id, ok := c.idem[idemKey]; ok {
			return c.viewLocked(c.jobs[id]), true, nil
		}
	}
	c.nextID++
	j := newJob(fmt.Sprintf("dscreen-%06d", c.nextID), req, idemKey, c.cfg.now())
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	if idemKey != "" {
		c.idem[idemKey] = j.id
	}
	c.metrics.JobSubmitted()
	c.appendEvent(event{Type: evJob, Job: j.id, IdemKey: idemKey, Request: &j.req, Time: j.submitted})
	c.superviseLocked(j)
	c.log.Info("distributed screen submitted", "job", j.id, "ligands", len(j.names))
	return c.viewLocked(j), false, nil
}

// newJob builds the in-memory job for a normalized request. Target
// ligands are materialized in library order — the order every
// deterministic aggregate sums in.
func newJob(id string, req service.ScreenRequest, idemKey string, now time.Time) *job {
	j := &job{
		id:        id,
		idemKey:   idemKey,
		req:       req,
		state:     service.StateQueued,
		submitted: now,
		merged:    make(map[string]service.PartialEntry),
		nameSet:   make(map[string]bool),
		rec:       &trace.Recorder{},
	}
	j.rec.SetEpoch(now)
	if len(req.Ligands) > 0 {
		want := make(map[string]bool, len(req.Ligands))
		for _, n := range req.Ligands {
			want[n] = true
		}
		for i := 0; i < req.Library; i++ {
			if n := core.SyntheticName(i); want[n] {
				j.names = append(j.names, n)
			}
		}
	} else {
		for i := 0; i < req.Library; i++ {
			j.names = append(j.names, core.SyntheticName(i))
		}
	}
	for _, n := range j.names {
		j.nameSet[n] = true
	}
	j.unassigned = append([]string(nil), j.names...)
	return j
}

// Get returns a job view; running jobs carry the merged partial ranking.
func (c *Coordinator) Get(id string) (JobView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobView{}, service.ErrNotFound
	}
	return c.viewLocked(j), nil
}

// List returns all jobs in submission order.
func (c *Coordinator) List() []JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobView, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.viewLocked(c.jobs[id]))
	}
	return out
}

// Trace returns a job's span recorder (shard lifetimes, re-splits).
func (c *Coordinator) Trace(id string) (*trace.Recorder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, service.ErrNotFound
	}
	return j.rec, nil
}

// Cancel requests cancellation. The supervisor propagates it to every
// dispatched shard and finishes the job.
func (c *Coordinator) Cancel(id string) (JobView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobView{}, service.ErrNotFound
	}
	if j.state.Terminal() {
		return c.viewLocked(j), service.ErrTerminal
	}
	if !j.cancelRequested {
		j.cancelRequested = true
		c.appendEvent(event{Type: evCancel, Job: j.id})
	}
	return c.viewLocked(j), nil
}

// Shutdown drains: no new submissions, supervisors stop at their next
// step (worker-side jobs keep running and are picked back up if the
// coordinator restarts over the same journal).
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.stopOnce.Do(func() {
		close(c.done)
		// Cancel in-flight worker requests so supervisors blocked in a
		// retry or against a blackholed worker exit promptly.
		c.reqCancel()
	})
	done := make(chan struct{})
	go func() { c.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	c.mu.Lock()
	if c.journal != nil {
		c.journal.Close()
		c.journal = nil
	}
	c.mu.Unlock()
	return err
}

// superviseLocked starts the job's supervision loop. Caller holds c.mu.
func (c *Coordinator) superviseLocked(j *job) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.PollInterval)
		defer t.Stop()
		for {
			if c.step(j) {
				return
			}
			select {
			case <-t.C:
			case <-c.done:
				return
			}
		}
	}()
}

// viewLocked snapshots a job. Caller holds c.mu.
func (c *Coordinator) viewLocked(j *job) JobView {
	if j.final != nil {
		return *j.final
	}
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Request:     j.req,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Completed:   len(j.merged),
		Total:       len(j.names),
		Resplits:    j.resplits,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	for _, sh := range j.shards {
		mv := 0
		for _, n := range sh.ligands {
			if _, ok := j.merged[n]; ok {
				mv++
			}
		}
		v.Shards = append(v.Shards, ShardView{
			ID: sh.id, Worker: sh.worker, Epoch: sh.epoch, Ligands: len(sh.ligands),
			Merged: mv, Remote: sh.remote, Done: sh.done, Moved: sh.moved,
			Stolen: sh.stolen, HedgeOf: sh.hedgeOf,
		})
	}
	if len(j.merged) > 0 {
		v.Result = j.resultLocked()
	}
	return v
}

// resultLocked builds the merged ResultView from the entries merged so
// far: ranking sorted score-then-name (the engine's exact tie-break),
// totals summed in library order so the floating-point sums match a
// single-node run bit for bit.
func (j *job) resultLocked() *service.ResultView {
	rv := &service.ResultView{RankingTotal: len(j.merged)}
	entries := make([]service.PartialEntry, 0, len(j.merged))
	for _, e := range j.merged {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Score != entries[b].Score {
			return entries[a].Score < entries[b].Score
		}
		return entries[a].Ligand < entries[b].Ligand
	})
	for i, e := range entries {
		rv.Ranking = append(rv.Ranking, service.RankEntry{
			Rank: i + 1, Ligand: e.Ligand, Atoms: e.Atoms, Score: e.Score, Spot: e.Spot,
		})
	}
	for _, n := range j.names {
		if e, ok := j.merged[n]; ok {
			rv.SimulatedSeconds += e.SimSeconds
			rv.Evaluations += e.Evaluations
		}
	}
	return rv
}
