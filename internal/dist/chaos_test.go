package dist

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/netsim"
	"github.com/metascreen/metascreen/internal/service"
)

// Chaos tests: the coordinator under injected network faults. The netsim
// transport sits between the coordinator's client and real worker
// services, so partitions, blackholes and revivals exercise the same
// retry, death-threshold and epoch-fencing code paths production hits —
// deterministically, from a seed and a plan.

func mustPlan(t *testing.T, spec string) netsim.Plan {
	t.Helper()
	p, err := netsim.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// hostOf strips the scheme from an httptest URL, yielding the host:port
// a netsim clause targets.
func hostOf(t *testing.T, url string) string {
	t.Helper()
	host := strings.TrimPrefix(url, "http://")
	if host == url {
		t.Fatalf("unexpected worker URL %q", url)
	}
	return host
}

func counterValue(m *Metrics, f func(*Metrics) int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return f(m)
}

// TestChaosPartitionHealByteIdentical is the acceptance drill: partition
// one of two workers mid-screen, let the coordinator declare it dead and
// re-split, heal the partition so heartbeats revive it under a fresh
// epoch, and require the merged ranking to be byte-identical to a
// single-node run — with every ligand merged exactly once.
func TestChaosPartitionHealByteIdentical(t *testing.T) {
	victim, healthy := startWorker(t), startWorker(t)
	// Plan time is driven manually so the partition starts exactly when
	// the screen is observed mid-flight, not on a wall-clock guess.
	var clock atomic.Int64
	plan := mustPlan(t, hostOf(t, victim.URL)+":partition@500ms+1s,*:latency@2ms±1ms")
	tr := netsim.New(plan, netsim.Config{
		Seed:  7,
		Clock: func() time.Duration { return time.Duration(clock.Load()) },
	})
	c := startCoordinator(t, Config{
		Transport:       tr,
		RequestTimeout:  500 * time.Millisecond,
		RequestAttempts: 2,
		RetryBaseDelay:  5 * time.Millisecond,
	})
	defer beat(t, c, victim.URL)()
	defer beat(t, c, healthy.URL)()

	req := distRequest
	req.Library = 24
	req.Scale = 0.3
	v, _, err := c.Submit(req, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID, 60*time.Second, func(v JobView) bool {
		return v.Completed >= 1 && v.Completed < v.Total
	})

	clock.Store(int64(600 * time.Millisecond)) // inside the partition window
	deadline := time.Now().Add(30 * time.Second)
	for counterValue(c.metrics, func(m *Metrics) int64 { return m.workerDeaths }) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("partitioned worker never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	clock.Store(int64(2 * time.Second)) // healed

	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("screen ended %s under partition+heal: %s", final.State, final.Error)
	}
	if final.Resplits < 1 {
		t.Error("partition produced no re-split")
	}

	want := singleNodeResult(t, req)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("post-chaos ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}
	if final.Result.SimulatedSeconds != want.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != single-node %v",
			final.Result.SimulatedSeconds, want.SimulatedSeconds)
	}
	// The double-merge check: 24 target ligands, exactly 24 merges ever.
	if merged := counterValue(c.metrics, func(m *Metrics) int64 { return m.merged }); merged != int64(req.Library) {
		t.Errorf("%d ligand merges for a %d-ligand screen (double merge?)", merged, req.Library)
	}

	// The healed victim rejoins: both workers alive again.
	deadline = time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, w := range c.Workers() {
			if w.Alive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers alive after heal, want 2", alive)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestZombieEpochFencing: a worker declared dead and instantly revived
// (the zombie window at its narrowest) must have its old shard fenced —
// re-split under the new epoch, the stale worker-side job cancelled — and
// still converge to the single-node ranking.
func TestZombieEpochFencing(t *testing.T) {
	w := startWorker(t)
	c := startCoordinator(t, Config{})
	defer beat(t, c, w.URL)()

	req := distRequest
	req.Library = 24
	req.Scale = 0.3
	v, _, err := c.Submit(req, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID, 60*time.Second, func(v JobView) bool {
		return v.Completed >= 1 && v.Completed < v.Total
	})

	// Kill and revive atomically, exactly as Register's dead→alive
	// transition would: the worker is alive the whole time as far as any
	// supervisor step can observe, but under a newer epoch — the pure
	// fencing case, with no dead-worker re-split mixed in.
	c.mu.Lock()
	c.markWorkerDeadLocked(w.URL, "zombie drill")
	wk := c.workers[w.URL]
	wk.alive = true
	c.nextEpoch++
	wk.epoch = c.nextEpoch
	c.mu.Unlock()

	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("screen ended %s after zombie revival: %s", final.State, final.Error)
	}
	if fenced := counterValue(c.metrics, func(m *Metrics) int64 { return m.shardsFenced }); fenced < 1 {
		t.Error("revived worker's stale shard was not fenced")
	}
	if final.Resplits < 1 {
		t.Error("fencing produced no re-split")
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Epoch != 2 {
		t.Fatalf("worker epoch after revival: %+v, want epoch 2", ws)
	}

	want := singleNodeResult(t, req)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("post-fence ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}
	if merged := counterValue(c.metrics, func(m *Metrics) int64 { return m.merged }); merged != int64(req.Library) {
		t.Errorf("%d ligand merges for a %d-ligand screen (double merge?)", merged, req.Library)
	}
}

// TestStalePartialRejected drives the poll path directly: a partial
// fetched for a shard whose epoch no longer matches its worker is
// dropped, not merged; the same poll under the matching epoch merges.
func TestStalePartialRejected(t *testing.T) {
	w := startWorker(t)
	c := startCoordinator(t, Config{})
	if _, err := c.Register(w.URL); err != nil {
		t.Fatal(err)
	}

	req := distRequest.Normalized()
	view, err := c.cl.submit(context.Background(), w.URL, req, "stale-poll-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		jv, gerr := c.cl.get(context.Background(), w.URL, view.ID)
		if gerr == nil && jv.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker-side job stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}

	j := newJob("stale-test-job", req, "", time.Now())
	sh := &shard{id: "s0", worker: w.URL, epoch: 99, ligands: j.names, remote: view.ID}
	if msg, fatal := c.poll(j, sh); fatal {
		t.Fatalf("stale poll reported fatal: %s", msg)
	}
	if len(j.merged) != 0 {
		t.Fatalf("stale partial merged %d ligands", len(j.merged))
	}
	if n := counterValue(c.metrics, func(m *Metrics) int64 { return m.staleRejected }); n != 1 {
		t.Fatalf("stale rejections counter %d, want 1", n)
	}

	sh.epoch = 1 // matches the worker's registration epoch
	if msg, fatal := c.poll(j, sh); fatal {
		t.Fatalf("valid poll reported fatal: %s", msg)
	}
	if len(j.merged) != len(j.names) {
		t.Fatalf("valid poll merged %d/%d ligands", len(j.merged), len(j.names))
	}
}

// TestBlackholeBoundedPoll: every request against a blackholed worker is
// bounded by the per-request timeout, so the death threshold fires within
// seconds instead of the supervisor wedging forever (the failure mode of
// a context-free client).
func TestBlackholeBoundedPoll(t *testing.T) {
	w := startWorker(t)
	tr := netsim.New(mustPlan(t, hostOf(t, w.URL)+":hang@0s"), netsim.Config{Seed: 1})
	c := startCoordinator(t, Config{
		Transport:       tr,
		RequestTimeout:  100 * time.Millisecond,
		RequestAttempts: 2,
		RetryBaseDelay:  5 * time.Millisecond,
		// No heartbeat loop: the worker registers once and then every
		// request to it blackholes, so death must come from the
		// consecutive-failure threshold alone.
		HeartbeatTimeout: time.Hour,
	})
	if _, err := c.Register(w.URL); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := c.Submit(distRequest, ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := c.Workers()
		if len(ws) == 1 && !ws[0].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blackholed worker never declared dead — polls are unbounded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// 2 dispatch attempts × 100ms + backoff, twice, plus poll ticks: well
	// under a second of fault budget; 5s leaves generous CI headroom.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("death threshold took %v against a blackholed worker", elapsed)
	}
}

// TestEpochSurvivesRestart: fencing epochs are journaled, so a restarted
// coordinator keeps counting upward — a zombie from before the crash can
// never collide with a fresh registration's epoch.
func TestEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	w := startWorker(t)

	c1 := startCoordinator(t, Config{DataDir: dir})
	if _, err := c1.Register(w.URL); err != nil {
		t.Fatal(err)
	}
	// One dead→alive cycle: epoch 2.
	c1.mu.Lock()
	c1.markWorkerDeadLocked(w.URL, "restart drill")
	c1.mu.Unlock()
	if _, err := c1.Register(w.URL); err != nil {
		t.Fatal(err)
	}
	if ws := c1.Workers(); ws[0].Epoch != 2 {
		t.Fatalf("epoch before restart %d, want 2", ws[0].Epoch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	c2 := startCoordinator(t, Config{DataDir: dir})
	if ws := c2.Workers(); len(ws) != 1 || ws[0].Epoch != 2 {
		t.Fatalf("replayed membership %+v, want the worker at epoch 2", ws)
	}
	// The next revival must advance past every journaled epoch.
	c2.mu.Lock()
	c2.markWorkerDeadLocked(w.URL, "restart drill")
	c2.mu.Unlock()
	if _, err := c2.Register(w.URL); err != nil {
		t.Fatal(err)
	}
	if ws := c2.Workers(); ws[0].Epoch != 3 {
		t.Fatalf("epoch after restart+revival %d, want 3", ws[0].Epoch)
	}
}
