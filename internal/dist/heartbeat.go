package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"github.com/metascreen/metascreen/internal/rng"
)

// RegisterLoop is the worker side of membership: it POSTs the worker's
// advertised URL to the coordinator's /v1/workers every interval until
// ctx ends. Registration and heartbeat are the same request — an upsert
// — so a worker that restarts, or a coordinator that restarts and
// forgot everyone, converges on the next beat without a special rejoin
// path. Failures are logged and retried on the normal cadence; the
// worker keeps serving either way.
//
// Beats are jittered ±20% around the interval, deterministically from
// the advertised URL and beat count, so a fleet of workers started
// together (or revived together after a partition heals) doesn't
// thunder the coordinator on synchronized ticks.
func RegisterLoop(ctx context.Context, coordinator, advertise string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	hc := &http.Client{Timeout: interval}
	body, _ := json.Marshal(map[string]string{"url": advertise})
	beat := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinator+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			logf("dist: heartbeat request: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			logf("dist: heartbeat to %s failed: %v", coordinator, err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			logf("dist: heartbeat to %s: HTTP %d", coordinator, resp.StatusCode)
		}
	}
	beat()
	t := time.NewTimer(beatJitter(interval, advertise, 0))
	defer t.Stop()
	for n := uint64(1); ; n++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
			t.Reset(beatJitter(interval, advertise, n))
		}
	}
}

// beatJitter spreads one heartbeat wait into [0.8, 1.2) × interval:
// reproducible without a global RNG, different per worker and per beat.
func beatJitter(interval time.Duration, advertise string, n uint64) time.Duration {
	return rng.Jitter(interval, 0.2, advertise, n)
}
