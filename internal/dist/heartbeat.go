package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// RegisterLoop is the worker side of membership: it POSTs the worker's
// advertised URL to the coordinator's /v1/workers every interval until
// ctx ends. Registration and heartbeat are the same request — an upsert
// — so a worker that restarts, or a coordinator that restarts and
// forgot everyone, converges on the next beat without a special rejoin
// path. Failures are logged and retried on the normal cadence; the
// worker keeps serving either way.
func RegisterLoop(ctx context.Context, coordinator, advertise string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	hc := &http.Client{Timeout: interval}
	body, _ := json.Marshal(map[string]string{"url": advertise})
	beat := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinator+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			logf("dist: heartbeat request: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			logf("dist: heartbeat to %s failed: %v", coordinator, err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			logf("dist: heartbeat to %s: HTTP %d", coordinator, resp.StatusCode)
		}
	}
	beat()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}
