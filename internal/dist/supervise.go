package dist

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/trace"
)

// The supervision loop. Each distributed job runs one supervisor
// goroutine that ticks every PollInterval through the same step:
//
//  1. reap workers whose heartbeat expired and reassess quarantine;
//  2. under the lock — honour a pending cancel, move unfinished ligands
//     off dead or fenced workers, (re-)assign unassigned ligands to
//     shards, then run the straggler pass (steal remainders from shards
//     projected to blow the median ETA, hedge the tail — straggler.go);
//  3. off the lock — cancel fenced zombie jobs (best effort), dispatch
//     undispatched shards and poll dispatched ones for partial rankings,
//     all concurrently so one slow or blackholed worker never delays the
//     others past its own request timeout;
//  4. under the lock — merge fresh entries (journaled), update worker
//     throughput estimates, and finish the job when every target ligand
//     has merged.
//
// All HTTP happens between the two locked sections, so a slow worker
// never stalls the coordinator's API; the locked re-checks — including
// the epoch fence — make the HTTP results safe to apply even if the
// worker died, revived or was re-split around in the meantime.

// remoteRef names a worker-side job for cancellation fan-out.
type remoteRef struct{ worker, remote string }

// step runs one supervision round. It reports true when the job reached
// a terminal state and the supervisor should exit.
func (c *Coordinator) step(j *job) bool {
	c.reapWorkers()

	c.mu.Lock()
	if j.state.Terminal() {
		c.mu.Unlock()
		return true
	}
	if j.cancelRequested {
		refs := append(j.remoteRefsLocked(), c.fenced...)
		c.fenced = nil
		c.finishLocked(j, service.StateCancelled, "cancelled by client")
		c.mu.Unlock()
		c.cancelRemotes(refs)
		return true
	}
	c.assignLocked(j)
	c.stealHedgeLocked(j)
	var dispatches, polls []*shard
	for _, sh := range j.shards {
		switch {
		case sh.done || sh.moved:
		case sh.remote == "":
			if c.epochValidLocked(sh) {
				dispatches = append(dispatches, sh)
			}
		default:
			polls = append(polls, sh)
		}
	}
	fenced := c.fenced
	c.fenced = nil
	c.mu.Unlock()

	if len(fenced) > 0 {
		// Zombie worker-side jobs: the worker revived under a new epoch
		// while its old job kept running. Cancel them so revenants stop
		// burning device time on ligands that were re-split elsewhere.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.cancelRemotes(fenced)
		}()
	}

	// Dispatches and polls run concurrently: each request is bounded by
	// the client's timeout × attempts, and no shard waits behind another
	// shard's blackholed worker.
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failMsg string
	var failed bool
	for _, sh := range dispatches {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			c.dispatch(j, sh)
		}(sh)
	}
	for _, sh := range polls {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			if msg, fatal := c.poll(j, sh); fatal {
				failMu.Lock()
				if !failed {
					failed, failMsg = true, msg
				}
				failMu.Unlock()
			}
		}(sh)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if j.state.Terminal() {
		return true
	}
	if failed {
		refs := append(j.remoteRefsLocked(), c.fenced...)
		c.fenced = nil
		c.finishLocked(j, service.StateFailed, failMsg)
		c.mu.Unlock()
		c.cancelRemotes(refs)
		c.mu.Lock()
		return true
	}
	if len(j.merged) == len(j.names) {
		c.finishLocked(j, service.StateDone, "")
		// A hedge race resolved by this very step's merge leaves its loser
		// on the fenced queue — and no later step to drain it. Cancel now,
		// off the lock, so the slow worker stops burning device time.
		if fenced := c.fenced; len(fenced) > 0 {
			c.fenced = nil
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.cancelRemotes(fenced)
			}()
		}
		return true
	}
	return false
}

// epochValidLocked reports whether a shard's owner is alive in the same
// registration epoch the shard was assigned under. A worker that was
// declared dead and re-registered carries a newer epoch, so its old
// shards fail this fence even though the URL is reachable again — the
// stale revenant's results are rejected and its ligands re-split, never
// double-merged. Caller holds c.mu.
func (c *Coordinator) epochValidLocked(sh *shard) bool {
	w := c.workers[sh.worker]
	return w != nil && w.alive && w.epoch == sh.epoch
}

// reapWorkers declares every worker whose heartbeat aged past the
// timeout dead. Run by every supervisor step — membership is shared, so
// whichever job steps first does the reaping for all of them.
func (c *Coordinator) reapWorkers() {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.alive && now.Sub(w.lastBeat) > c.cfg.HeartbeatTimeout {
			c.markWorkerDeadLocked(w.url, "heartbeat timeout")
		}
	}
	c.assessQuarantineLocked()
}

// markWorkerDeadLocked flips a worker to dead (idempotent). The actual
// ligand movement happens in each job's next assignLocked pass. Caller
// holds c.mu.
func (c *Coordinator) markWorkerDeadLocked(url, reason string) {
	w := c.workers[url]
	if w == nil || !w.alive {
		return
	}
	w.alive = false
	c.metrics.WorkerDied()
	c.appendEvent(event{Type: evWorker, Worker: url})
	c.log.Warn("worker declared dead", "worker", url, "reason", reason)
}

// assignLocked moves unfinished ligands off dead workers and splits
// everything unassigned across the currently alive workers: the initial
// assignment hashes ligand names (deterministic), recovery assignments
// split by observed throughput so fast survivors absorb more of the dead
// node's backlog. Caller holds c.mu.
func (c *Coordinator) assignLocked(j *job) {
	now := c.cfg.now()
	for _, sh := range j.shards {
		if sh.done || sh.moved {
			continue
		}
		if c.epochValidLocked(sh) {
			continue
		}
		sh.moved = true
		if w := c.workers[sh.worker]; w != nil && w.alive && w.epoch != sh.epoch {
			// The owner died and came back: the shard is fenced, not just
			// orphaned. Its old worker-side job may still be running as a
			// zombie — queue a best-effort cancel so it stops burning time
			// on ligands about to be re-split.
			c.metrics.ShardFenced()
			if sh.remote != "" {
				c.fenced = append(c.fenced, remoteRef{worker: sh.worker, remote: sh.remote})
			}
			c.log.Warn("fencing shard from revived worker",
				"job", j.id, "shard", sh.id, "worker", sh.worker,
				"shardEpoch", sh.epoch, "workerEpoch", w.epoch)
		}
		var remaining []string
		for _, n := range sh.ligands {
			if _, ok := j.merged[n]; !ok {
				remaining = append(remaining, n)
			}
		}
		if len(remaining) == 0 {
			sh.done = true
			continue
		}
		if partner := j.livePartnerLocked(sh); partner != nil {
			// The shard's hedge twin is still racing and covers every
			// unfinished ligand here; re-splitting would triple the work.
			// Unlink the survivor so it becomes a plain shard again.
			partner.hedgeOf, partner.hedgedBy = "", ""
			c.log.Warn("hedged shard lost its worker; twin carries on",
				"job", j.id, "shard", sh.id, "twin", partner.id, "worker", sh.worker)
			continue
		}
		j.unassigned = append(j.unassigned, remaining...)
		j.resplits++
		c.metrics.Reshard()
		t := j.rec.Now()
		j.rec.AddSpan(trace.Span{
			Track: "membership", Name: "reshard " + sh.id + " off " + sh.worker,
			Cat: trace.CatShard, Start: t, End: t,
			Args: map[string]string{"ligands": strconv.Itoa(len(remaining))},
		})
		c.log.Warn("re-splitting shard off dead worker",
			"job", j.id, "shard", sh.id, "worker", sh.worker, "ligands", len(remaining))
	}

	pending := j.orderedUnassigned()
	j.unassigned = nil
	if len(pending) == 0 {
		return
	}
	alive := c.aliveWorkersLocked()
	if len(alive) == 0 {
		j.unassigned = pending // wait for a worker to (re-)join
		return
	}
	var chunks [][]string
	if j.nextShard == 0 {
		// Initial equal split: leave quarantined workers out entirely when
		// anyone healthy is available — an equal share is exactly what a
		// known-slow worker must not get.
		var healthy []*worker
		for _, w := range alive {
			if !w.quarantined {
				healthy = append(healthy, w)
			}
		}
		if len(healthy) > 0 {
			alive = healthy
		}
		chunks = ShardByHash(pending, len(alive))
	} else {
		weights := make([]float64, len(alive))
		mask := make([]bool, len(alive))
		for i, w := range alive {
			weights[i] = w.rate.Value()
			if w.quarantined && c.cfg.QuarantineFactor > 0 {
				// Brownout: a quarantined worker still contributes, at a
				// fraction of the weight its raw rate would earn.
				weights[i] /= c.cfg.QuarantineFactor
			}
			mask[i] = true
		}
		chunks = SplitWeighted(pending, weights, mask)
	}
	for i, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		sh := &shard{id: "s" + strconv.Itoa(j.nextShard), worker: alive[i].url, epoch: alive[i].epoch, ligands: chunk}
		j.nextShard++
		j.shards = append(j.shards, sh)
		alive[i].shards++
		c.metrics.ShardAssigned()
		c.appendEvent(event{Type: evAssign, Job: j.id, Shard: sh.id, Worker: sh.worker, Epoch: sh.epoch, Ligands: chunk})
		c.log.Info("shard assigned",
			"job", j.id, "shard", sh.id, "worker", sh.worker, "ligands", len(chunk))
	}
	if j.state == service.StateQueued {
		j.state = service.StateRunning
		j.started = now
	}
}

// orderedUnassigned returns the job's unassigned ligands in library
// order, dropping any that merged in the meantime.
func (j *job) orderedUnassigned() []string {
	if len(j.unassigned) == 0 {
		return nil
	}
	pend := make(map[string]bool, len(j.unassigned))
	for _, n := range j.unassigned {
		pend[n] = true
	}
	var out []string
	for _, n := range j.names {
		if !pend[n] {
			continue
		}
		if _, ok := j.merged[n]; !ok {
			out = append(out, n)
		}
	}
	return out
}

// aliveWorkersLocked returns alive workers sorted by URL (the stable
// order shard-by-hash indexes into). Caller holds c.mu.
func (c *Coordinator) aliveWorkersLocked() []*worker {
	urls := make([]string, 0, len(c.workers))
	for u, w := range c.workers {
		if w.alive {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	out := make([]*worker, len(urls))
	for i, u := range urls {
		out[i] = c.workers[u]
	}
	return out
}

// dispatch submits one shard to its worker as a Ligands-restricted
// screen under the shard's stable idempotency key, so a re-dispatch
// (after a coordinator restart or a lost response) maps onto the
// worker's existing job.
func (c *Coordinator) dispatch(j *job, sh *shard) {
	req := j.req
	req.Ligands = sh.ligands
	view, err := c.cl.submit(c.reqCtx, sh.worker, req, j.id+"/"+sh.id, sh.epoch)
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh.moved || j.state.Terminal() || !c.epochValidLocked(sh) {
		return
	}
	if err != nil {
		c.metrics.PollError()
		sh.errs++
		c.log.Warn("shard dispatch failed",
			"job", j.id, "shard", sh.id, "worker", sh.worker, "err", err)
		if sh.errs >= c.cfg.FailThreshold {
			c.markWorkerDeadLocked(sh.worker, "dispatch failures")
		}
		return
	}
	sh.errs = 0
	sh.remote = view.ID
	sh.dispatched = now
	sh.lastPoll = now
	sh.lastSeen = 0
	if w := c.workers[sh.worker]; w != nil {
		w.lastBeat = now
	}
	c.log.Info("shard dispatched",
		"job", j.id, "shard", sh.id, "worker", sh.worker, "remote", view.ID, "ligands", len(sh.ligands))
}

// poll fetches one shard's partial ranking and merges what's new. It
// returns fatal=true with a message when the worker-side job reached a
// terminal state that cannot produce the shard's ligands (failed, shed,
// or cancelled out from under us) — a deterministic failure re-running
// elsewhere would only repeat.
func (c *Coordinator) poll(j *job, sh *shard) (msg string, fatal bool) {
	pv, err := c.cl.partial(c.reqCtx, sh.worker, sh.remote, sh.epoch)
	now := c.cfg.now()
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.status == http.StatusNotFound {
			// The worker restarted without durability and forgot the job.
			// Clearing remote re-dispatches under the same key next step.
			c.mu.Lock()
			sh.remote = ""
			c.mu.Unlock()
			c.log.Warn("worker lost shard job; re-dispatching",
				"job", j.id, "shard", sh.id, "worker", sh.worker)
			return "", false
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.metrics.PollError()
		sh.errs++
		if sh.errs >= c.cfg.FailThreshold {
			c.markWorkerDeadLocked(sh.worker, "poll failures")
		}
		return "", false
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if sh.moved || j.state.Terminal() {
		return "", false
	}
	if !c.epochValidLocked(sh) {
		// The response is from a shard whose owner died or revived under a
		// newer epoch while the poll was in flight: its ligands were (or
		// are about to be) re-split, so merging this body could double-
		// count. Drop it — the byte-identical-ranking invariant depends on
		// every ligand merging exactly once.
		c.metrics.StalePartialRejected()
		c.log.Warn("rejecting stale partial from fenced shard",
			"job", j.id, "shard", sh.id, "worker", sh.worker, "shardEpoch", sh.epoch)
		return "", false
	}
	sh.errs = 0
	w := c.workers[sh.worker]
	if w != nil {
		w.lastBeat = now
	}

	var fresh []service.PartialEntry
	for _, e := range pv.Entries {
		if !j.nameSet[e.Ligand] {
			continue
		}
		if _, ok := j.merged[e.Ligand]; ok {
			continue
		}
		e.Rank = 0 // per-shard rank is meaningless after the merge
		j.merged[e.Ligand] = e
		fresh = append(fresh, e)
	}
	if len(fresh) > 0 {
		c.metrics.LigandsMerged(len(fresh))
		c.appendEvent(event{Type: evEntries, Job: j.id, Entries: fresh})
	}

	completed := 0
	for _, n := range sh.ligands {
		if _, ok := j.merged[n]; ok {
			completed++
		}
	}
	if w != nil && !sh.lastPoll.IsZero() {
		if dt := now.Sub(sh.lastPoll).Seconds(); dt > 0 {
			// Credit the worker only with ligands its own poll delivered
			// first — in a hedge race both twins' counters move when either
			// side merges, and the loser must not inherit the winner's rate.
			freshOwn := 0
			if len(fresh) > 0 {
				freshSet := make(map[string]bool, len(fresh))
				for _, e := range fresh {
					freshSet[e.Ligand] = true
				}
				for _, n := range sh.ligands {
					if freshSet[n] {
						freshOwn++
					}
				}
			}
			w.rate.Observe(float64(freshOwn) / dt)
		}
		w.selfRate = pv.RateLPS
	}
	sh.lastPoll = now
	sh.lastSeen = completed

	if completed == len(sh.ligands) {
		sh.done = true
		sh.doneAt = now
		j.rec.AddSpan(trace.Span{
			Track: sh.worker, Name: "shard " + sh.id, Cat: trace.CatShard,
			Start: sh.dispatched.Sub(j.rec.Epoch()).Seconds(), End: j.rec.Now(),
			Args: map[string]string{
				"job": j.id, "remote": sh.remote, "ligands": strconv.Itoa(len(sh.ligands)),
			},
		})
		c.resolveHedgeLocked(j, sh)
		return "", false
	}
	if pv.State.Terminal() {
		if partner := j.livePartnerLocked(sh); partner != nil {
			// One leg of a hedge pair died (shed, external cancel, …) but
			// its twin still covers every unfinished ligand: fence this leg
			// and let the race finish instead of failing the whole job.
			sh.moved = true
			partner.hedgeOf, partner.hedgedBy = "", ""
			c.appendEvent(event{Type: evMoved, Job: j.id, Shard: sh.id})
			c.log.Warn("hedge leg ended terminally; twin carries on",
				"job", j.id, "shard", sh.id, "state", pv.State, "twin", partner.id)
			return "", false
		}
		// The worker-side job ended without producing every assigned
		// ligand: a real failure (bad run, shed deadline, external
		// cancel), not a liveness problem. Retrying the same request on
		// another node would deterministically repeat it.
		return fmt.Sprintf("dist: shard %s on %s ended %s with %d/%d ligands",
			sh.id, sh.worker, pv.State, completed, len(sh.ligands)), true
	}
	return "", false
}

// finishLocked moves a job to a terminal state, freezes its view (the
// journal's round-trip snapshot) and closes its trace. Caller holds c.mu.
func (c *Coordinator) finishLocked(j *job, state service.JobState, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finished = c.cfg.now()
	v := c.viewLocked(j)
	j.final = &v
	c.metrics.JobFinished(state)
	c.appendEvent(event{Type: evTerminal, Job: j.id, View: &v})
	j.rec.AddSpan(trace.Span{
		Track: "job", Name: j.id, Cat: trace.CatJob,
		Start: 0, End: j.rec.Now(),
		Args: map[string]string{"state": string(state), "resplits": strconv.Itoa(j.resplits)},
	})
	c.log.Info("distributed screen finished",
		"job", j.id, "state", state, "ligands", len(j.merged), "resplits", j.resplits, "err", errMsg)
}

// remoteRefsLocked lists the job's dispatched, unfinished worker-side
// jobs. Caller holds c.mu.
func (j *job) remoteRefsLocked() []remoteRef {
	var refs []remoteRef
	for _, sh := range j.shards {
		if sh.remote != "" && !sh.done && !sh.moved {
			refs = append(refs, remoteRef{worker: sh.worker, remote: sh.remote})
		}
	}
	return refs
}

// cancelRemotes best-effort cancels worker-side jobs (no lock held).
// Runs under reqCtx so Shutdown can abort in-flight cancels.
func (c *Coordinator) cancelRemotes(refs []remoteRef) {
	for _, r := range refs {
		if err := c.cl.cancel(c.reqCtx, r.worker, r.remote); err != nil {
			c.log.Warn("remote cancel failed", "worker", r.worker, "remote", r.remote, "err", err)
		}
	}
}

