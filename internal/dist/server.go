package dist

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/metascreen/metascreen/internal/service"
)

// The coordinator's HTTP API. Screens are submitted and read exactly
// like on a single node — same paths, same pagination, same idempotency
// header — so clients do not care whether they talk to a node or a
// cluster. The additions are membership:
//
//	POST   /v1/screens            submit a distributed screen -> 202 JobView
//	GET    /v1/screens            list jobs                   -> 200 [JobView]
//	GET    /v1/screens/{id}       status + merged ranking     -> 200 JobView
//	                              (?limit=&offset= window the ranking; a
//	                              running job serves the partial merge)
//	GET    /v1/screens/{id}/trace shard timeline (Chrome trace) -> 200
//	DELETE /v1/screens/{id}       cancel (fans out to workers) -> 202
//	POST   /v1/workers            register/heartbeat {"url": ...} -> 200
//	GET    /v1/workers            membership                  -> 200 [WorkerView]
//	GET    /healthz               liveness                    -> 200 Stats
//	GET    /readyz                readiness                   -> 200/503
//	GET    /metrics               Prometheus text exposition  -> 200
//	GET    /debug/snapshot        stats + per-worker rates + jobs -> 200
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/screens", c.handleSubmit)
	mux.HandleFunc("GET /v1/screens", c.handleList)
	mux.HandleFunc("GET /v1/screens/{id}", c.handleGet)
	mux.HandleFunc("GET /v1/screens/{id}/trace", c.handleTrace)
	mux.HandleFunc("DELETE /v1/screens/{id}", c.handleCancel)
	mux.HandleFunc("POST /v1/workers", c.handleRegister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /debug/snapshot", c.handleSnapshot)
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.ScreenRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, existing, err := c.Submit(req, r.Header.Get("Idempotency-Key"))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, service.ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	if existing {
		writeJSON(w, http.StatusOK, view)
		return
	}
	w.Header().Set("Location", "/v1/screens/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.List())
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := c.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	page, err := service.ParsePage(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view.Result = view.Result.Paged(page)
	writeJSON(w, http.StatusOK, view)
}

func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec, err := c.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rec.WriteChrome(w)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := c.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, service.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URL string `json:"url"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := c.Register(body.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"workers": n})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Workers())
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	code := http.StatusOK
	if st.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := c.Ready()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]bool{"ready": ready})
}

func (c *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Snapshot())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.metrics.WriteTo(w, c.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
