package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/metascreen/metascreen/internal/core"
)

// Property tests for the two splitters: hash sharding is deterministic,
// order-preserving and balanced; weighted re-splits move exactly the
// ligands they are given and nothing else.

func syntheticNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = core.SyntheticName(i)
	}
	return names
}

// TestShardByHashDeterministic: placement is a pure function of
// (name, shard count) — re-running the assignment, in any process, on
// any coordinator, yields identical shards.
func TestShardByHashDeterministic(t *testing.T) {
	names := syntheticNames(500)
	a := ShardByHash(names, 5)
	b := ShardByHash(names, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same names and shard count produced different assignments")
	}
	for i, sh := range a {
		for _, n := range sh {
			if got := int(HashName(n) % 5); got != i {
				t.Fatalf("ligand %s in shard %d, hash says %d", n, i, got)
			}
		}
	}
}

// TestShardByHashCoversAndPreservesOrder: every name lands in exactly
// one shard, and each shard keeps library order (the order deterministic
// aggregate sums depend on).
func TestShardByHashCoversAndPreservesOrder(t *testing.T) {
	names := syntheticNames(300)
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	for _, n := range []int{1, 2, 3, 7, 16} {
		shards := ShardByHash(names, n)
		seen := make(map[string]bool)
		total := 0
		for si, sh := range shards {
			last := -1
			for _, name := range sh {
				if seen[name] {
					t.Fatalf("n=%d: ligand %s assigned twice", n, name)
				}
				seen[name] = true
				if index[name] < last {
					t.Fatalf("n=%d shard %d: library order broken at %s", n, si, name)
				}
				last = index[name]
				total++
			}
		}
		if total != len(names) {
			t.Fatalf("n=%d: %d of %d ligands assigned", n, total, len(names))
		}
	}
}

// TestShardByHashBalanced: across 2..16 workers, FNV-1a spreads a
// synthetic library evenly — every shard within ±50% of the ideal cut.
func TestShardByHashBalanced(t *testing.T) {
	names := syntheticNames(2000)
	for n := 2; n <= 16; n++ {
		shards := ShardByHash(names, n)
		ideal := float64(len(names)) / float64(n)
		for i, sh := range shards {
			if f := float64(len(sh)); f < 0.5*ideal || f > 1.5*ideal {
				t.Errorf("n=%d shard %d holds %d ligands, ideal %.1f (>±50%% skew)", n, i, len(sh), ideal)
			}
		}
	}
}

// TestSplitWeightedMovesExactlyTheInput: a re-split distributes exactly
// the ligands it is handed — the dead node's unfinished ones — with
// nothing lost, duplicated, reordered, or assigned to a dead member.
func TestSplitWeightedMovesExactlyTheInput(t *testing.T) {
	names := syntheticNames(97)
	weights := []float64{2.0, 0.5, 1.5, 1.0}
	alive := []bool{true, false, true, true}
	chunks := SplitWeighted(names, weights, alive)
	if chunks[1] != nil {
		t.Fatalf("dead member received %d ligands", len(chunks[1]))
	}
	var joined []string
	for _, ch := range chunks {
		joined = append(joined, ch...)
	}
	if !reflect.DeepEqual(joined, names) {
		t.Fatalf("concatenated chunks != input: got %d names, want %d in order", len(joined), len(names))
	}
}

// TestSplitWeightedProportional: chunk sizes track throughput weights.
func TestSplitWeightedProportional(t *testing.T) {
	names := syntheticNames(400)
	chunks := SplitWeighted(names, []float64{3, 1}, []bool{true, true})
	if len(chunks[0]) != 300 || len(chunks[1]) != 100 {
		t.Fatalf("3:1 weights split %d/%d, want 300/100", len(chunks[0]), len(chunks[1]))
	}
}

// TestSplitWeightedZeroWeightsFallsBackToEqual: survivors with no
// observed throughput yet get an equal split, never a degenerate one.
func TestSplitWeightedZeroWeightsFallsBackToEqual(t *testing.T) {
	names := syntheticNames(90)
	chunks := SplitWeighted(names, []float64{0, 0, 0}, []bool{true, true, true})
	for i, ch := range chunks {
		if len(ch) != 30 {
			t.Fatalf("zero-weight chunk %d holds %d, want 30", i, len(ch))
		}
	}
}

// TestSplitWeightedSingleSurvivor: the degenerate memberships a steal or
// re-split can reach — one member, or one survivor among the dead — must
// hand the whole input to that member, in order.
func TestSplitWeightedSingleSurvivor(t *testing.T) {
	names := syntheticNames(37)
	for _, tc := range []struct {
		weights []float64
		alive   []bool
		want    int // index of the sole recipient
	}{
		{[]float64{0.5}, []bool{true}, 0},
		{[]float64{0}, []bool{true}, 0}, // no observed rate yet
		{[]float64{3, 2, 1}, []bool{false, true, false}, 1},
	} {
		chunks := SplitWeighted(names, tc.weights, tc.alive)
		for i, ch := range chunks {
			if i == tc.want {
				if !reflect.DeepEqual(ch, names) {
					t.Fatalf("alive=%v: survivor %d got %d of %d ligands", tc.alive, i, len(ch), len(names))
				}
				continue
			}
			if len(ch) != 0 {
				t.Fatalf("alive=%v: member %d got %d ligands, want 0", tc.alive, i, len(ch))
			}
		}
	}
}

// TestSplitWeightedQuarantineRenormalization pins the brownout split: a
// quarantined worker's weight is divided by QuarantineFactor before the
// split, so with equal raw rates of 8 and factor 4 the healthy worker
// takes ~80% of the backlog — reduced share, not exclusion.
func TestSplitWeightedQuarantineRenormalization(t *testing.T) {
	names := syntheticNames(100)
	chunks := SplitWeighted(names, []float64{8, 8.0 / 4}, []bool{true, true})
	if len(chunks[0]) != 80 || len(chunks[1]) != 20 {
		t.Fatalf("8 vs 8/4 weights split %d/%d, want 80/20", len(chunks[0]), len(chunks[1]))
	}
	var joined []string
	for _, ch := range chunks {
		joined = append(joined, ch...)
	}
	if !reflect.DeepEqual(joined, names) {
		t.Fatal("brownout split lost or reordered ligands")
	}
}

// TestReshardMovesOnlyDeadNodesLigands: the recovery invariant, as a
// property over random membership: after a node dies, survivors keep
// every ligand they already owned, and the moved set is exactly the dead
// node's shard.
func TestReshardMovesOnlyDeadNodesLigands(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5) // 2..6 workers
		names := syntheticNames(50 + rng.Intn(400))
		initial := ShardByHash(names, n)
		dead := rng.Intn(n)

		owned := make(map[string]int)
		for wi, sh := range initial {
			for _, name := range sh {
				owned[name] = wi
			}
		}

		weights := make([]float64, n)
		alive := make([]bool, n)
		for i := range alive {
			weights[i] = rng.Float64() * 4
			alive[i] = i != dead
		}
		moved := SplitWeighted(initial[dead], weights, alive)

		movedSet := make(map[string]bool)
		for wi, ch := range moved {
			if wi == dead && ch != nil {
				t.Fatalf("trial %d: dead worker %d got ligands back", trial, dead)
			}
			for _, name := range ch {
				if owned[name] != dead {
					t.Fatalf("trial %d: re-split moved %s, owned by live worker %d", trial, name, owned[name])
				}
				movedSet[name] = true
			}
		}
		if len(movedSet) != len(initial[dead]) {
			t.Fatalf("trial %d: moved %d ligands, dead node owned %d", trial, len(movedSet), len(initial[dead]))
		}
		// Survivors' original shards are untouched by construction (the
		// re-split only receives the dead node's ligands); confirm the
		// union of kept + moved covers the library exactly once.
		covered := make(map[string]bool)
		for wi, sh := range initial {
			if wi == dead {
				continue
			}
			for _, name := range sh {
				covered[name] = true
			}
		}
		for name := range movedSet {
			if covered[name] {
				t.Fatalf("trial %d: ligand %s both kept and moved", trial, name)
			}
			covered[name] = true
		}
		if len(covered) != len(names) {
			t.Fatalf("trial %d: %d of %d ligands covered after re-split", trial, len(covered), len(names))
		}
	}
}
