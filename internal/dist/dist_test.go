package dist

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/service"
)

// Coordinator integration tests against real screening services: each
// "worker node" is a service.Service behind httptest, so dispatch,
// partial polling, merging and fault recovery exercise the same HTTP
// surface production uses — only the listener is in-process.

var quiet = slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError}))

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// distRequest is the screen used across these tests: big enough that a
// 3-way split gives every worker real work, small enough for test time.
var distRequest = service.ScreenRequest{
	Dataset: "2BSM", Library: 12, Spots: 2, Metaheuristic: "M3", Scale: 0.02, Seed: 7,
}

// startWorker boots a real screening service behind httptest. Workers
// dock sequentially (ScreenWorkers: 1) so shards take long enough for
// the tests to observe — and interrupt — screens mid-flight.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 1, ScreenWorkers: 1, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return srv
}

// startCoordinator boots a coordinator with test-speed tuning plus a
// heartbeat goroutine per worker URL. Stopping a worker's heartbeat (and
// its server) is how tests kill a node.
func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = time.Second
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c
}

// beat keeps a worker registered until the returned stop is called.
func beat(t *testing.T, c *Coordinator, url string) (stop func()) {
	t.Helper()
	if _, err := c.Register(url); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				c.Register(url)
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}

// waitJob polls the coordinator until the predicate holds.
func waitJob(t *testing.T, c *Coordinator, id string, timeout time.Duration, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: state=%s completed=%d/%d err=%q",
				id, v.State, v.Completed, v.Total, v.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// singleNodeResult runs the reference screen on one real service.
func singleNodeResult(t *testing.T, req service.ScreenRequest) *service.ResultView {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 1, ScreenWorkers: 2, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	v, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, err := svc.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			if got.State != service.StateDone {
				t.Fatalf("reference run ended %s: %s", got.State, got.Error)
			}
			return got.Result
		}
		if time.Now().After(deadline) {
			t.Fatal("reference run stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rankingJSON renders a ranking for byte-level comparison.
func rankingJSON(t *testing.T, entries []service.RankEntry) string {
	t.Helper()
	b, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDistributedByteIdenticalToSingleNode: the tentpole contract. A
// screen sharded across 3 worker nodes merges to the same ranking — byte
// for byte, totals included — as the same screen on a single node.
func TestDistributedByteIdenticalToSingleNode(t *testing.T) {
	c := startCoordinator(t, Config{})
	for i := 0; i < 3; i++ {
		defer beat(t, c, startWorker(t).URL)()
	}

	v, existing, err := c.Submit(distRequest, "dist-vs-single")
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("fresh submission reported as existing")
	}
	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("distributed screen ended %s: %s", final.State, final.Error)
	}
	if len(final.Shards) < 2 {
		t.Fatalf("expected a real split, got %d shards", len(final.Shards))
	}

	want := singleNodeResult(t, distRequest)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("merged ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}
	if final.Result.SimulatedSeconds != want.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != single-node %v",
			final.Result.SimulatedSeconds, want.SimulatedSeconds)
	}
	if final.Result.Evaluations != want.Evaluations {
		t.Errorf("evaluations %d != single-node %d", final.Result.Evaluations, want.Evaluations)
	}

	// Idempotent resubmission maps onto the finished job.
	again, existing, err := c.Submit(distRequest, "dist-vs-single")
	if err != nil || !existing || again.ID != v.ID {
		t.Fatalf("idempotent resubmit: existing=%v id=%s err=%v", existing, again.ID, err)
	}
}

// TestWorkerDeathResharding: kill one of three workers mid-screen. The
// coordinator re-splits the dead node's unfinished ligands over the
// survivors and the final ranking is still byte-identical to the
// single-node run.
func TestWorkerDeathResharding(t *testing.T) {
	c := startCoordinator(t, Config{HeartbeatTimeout: 700 * time.Millisecond})
	victim := startWorker(t)
	stopVictim := beat(t, c, victim.URL)
	for i := 0; i < 2; i++ {
		defer beat(t, c, startWorker(t).URL)()
	}

	// A larger, paper-scale screen keeps all three shards busy long
	// enough to kill a node mid-screen deterministically.
	killReq := distRequest
	killReq.Library = 24
	killReq.Scale = 0.35
	v, _, err := c.Submit(killReq, "")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the screen is genuinely mid-flight, then kill the victim.
	waitJob(t, c, v.ID, 60*time.Second, func(v JobView) bool {
		return v.Completed > 0 && v.Completed < v.Total
	})
	stopVictim()
	victim.Close()

	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("screen ended %s after worker death: %s", final.State, final.Error)
	}
	if final.Resplits < 1 {
		t.Error("worker death produced no re-split")
	}

	want := singleNodeResult(t, killReq)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("post-recovery ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}
	if final.Result.SimulatedSeconds != want.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != single-node %v",
			final.Result.SimulatedSeconds, want.SimulatedSeconds)
	}

	alive := 0
	for _, w := range c.Workers() {
		if w.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("%d workers alive after the kill, want 2", alive)
	}
}

// TestCoordinatorRestartResumes: a coordinator stopped mid-screen and
// rebooted over the same journal resumes the job — re-dispatching under
// the original idempotency keys so the still-running workers hand back
// the same jobs — and finishes with the single-node ranking.
func TestCoordinatorRestartResumes(t *testing.T) {
	dir := t.TempDir()
	w1, w2 := startWorker(t), startWorker(t)

	// Slow enough that the shutdown below genuinely lands mid-screen.
	slowReq := distRequest
	slowReq.Library = 16
	slowReq.Scale = 0.35

	c1 := startCoordinator(t, Config{DataDir: dir})
	s1, s2 := beat(t, c1, w1.URL), beat(t, c1, w2.URL)
	v, _, err := c1.Submit(slowReq, "restart-key")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c1, v.ID, 60*time.Second, func(v JobView) bool {
		return v.Completed > 0 && v.Completed < v.Total
	})
	s1()
	s2()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	c2 := startCoordinator(t, Config{DataDir: dir})
	defer beat(t, c2, w1.URL)()
	defer beat(t, c2, w2.URL)()

	restored, err := c2.Get(v.ID)
	if err != nil {
		t.Fatalf("restarted coordinator forgot job %s: %v", v.ID, err)
	}
	if restored.Request.Seed != distRequest.Seed {
		t.Fatalf("restored request seed %d, want %d", restored.Request.Seed, distRequest.Seed)
	}
	final := waitJob(t, c2, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("resumed screen ended %s: %s", final.State, final.Error)
	}

	want := singleNodeResult(t, slowReq)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("resumed ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}

	// The idempotency key survived the restart too.
	again, existing, err := c2.Submit(distRequest, "restart-key")
	if err != nil || !existing || again.ID != v.ID {
		t.Fatalf("idempotency across restart: existing=%v id=%q err=%v", existing, again.ID, err)
	}
}

// TestSubmitBeforeAnyWorker: a screen submitted to an empty cluster
// waits in queued and runs as soon as the first worker registers.
func TestSubmitBeforeAnyWorker(t *testing.T) {
	c := startCoordinator(t, Config{})
	v, _, err := c.Submit(distRequest, "")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got, _ := c.Get(v.ID); got.State != service.StateQueued {
		t.Fatalf("job with no workers is %s, want queued", got.State)
	}
	defer beat(t, c, startWorker(t).URL)()
	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("screen ended %s: %s", final.State, final.Error)
	}
}

// TestCancelDistributed: cancelling a running distributed screen lands
// it in cancelled and (best-effort) cancels the worker-side jobs.
func TestCancelDistributed(t *testing.T) {
	c := startCoordinator(t, Config{})
	defer beat(t, c, startWorker(t).URL)()

	big := distRequest
	big.Library = 64
	v, _, err := c.Submit(big, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID, 60*time.Second, func(v JobView) bool { return v.State == service.StateRunning })
	if _, err := c.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, v.ID, 30*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateCancelled {
		t.Fatalf("cancelled screen ended %s", final.State)
	}
	if _, err := c.Cancel(v.ID); err != service.ErrTerminal {
		t.Fatalf("second cancel returned %v, want ErrTerminal", err)
	}
}

// TestViewsAndValidation covers the small surfaces: bad requests are
// rejected at submit, unknown jobs 404, reflect.DeepEqual sanity on
// List/Workers ordering.
func TestViewsAndValidation(t *testing.T) {
	c := startCoordinator(t, Config{})
	bad := distRequest
	bad.Metaheuristic = "M9"
	if _, _, err := c.Submit(bad, ""); err == nil {
		t.Error("invalid metaheuristic admitted")
	}
	if _, err := c.Get("nope"); err != service.ErrNotFound {
		t.Errorf("unknown job returned %v, want ErrNotFound", err)
	}
	if _, err := c.Register("not-a-url"); err == nil {
		t.Error("bogus worker URL registered")
	}
	if _, err := c.Register("ftp://x"); err == nil {
		t.Error("non-http worker URL registered")
	}
	if _, err := c.Register("http://a:1"); err != nil {
		t.Error(err)
	}
	if _, err := c.Register("http://b:2"); err != nil {
		t.Error(err)
	}
	ws := c.Workers()
	if !reflect.DeepEqual([]string{ws[0].URL, ws[1].URL}, []string{"http://a:1", "http://b:2"}) {
		t.Errorf("workers not sorted by URL: %+v", ws)
	}
}

// TestPaginationDoesNotCorruptTerminalView: a terminal job's view is
// frozen and shared across requests; a paginated GET through the HTTP
// handler must window a copy, never truncate the cached ranking (the
// regression: one ?limit=1 poll used to shrink every later response).
func TestPaginationDoesNotCorruptTerminalView(t *testing.T) {
	w := startWorker(t)
	c := startCoordinator(t, Config{})
	defer beat(t, c, w.URL)()

	v, _, err := c.Submit(distRequest, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID, 30*time.Second, func(v JobView) bool { return v.State == service.StateDone })

	api := httptest.NewServer(c.Handler())
	defer api.Close()
	var page JobView
	getInto := func(url string) {
		t.Helper()
		resp, err := api.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
	}
	getInto(api.URL + "/v1/screens/" + v.ID + "?limit=1")
	if len(page.Result.Ranking) != 1 || page.Result.RankingTotal != distRequest.Library {
		t.Fatalf("window: %d entries of %d total", len(page.Result.Ranking), page.Result.RankingTotal)
	}
	getInto(api.URL + "/v1/screens/" + v.ID)
	if len(page.Result.Ranking) != distRequest.Library {
		t.Fatalf("full ranking shrank to %d entries after a paginated request", len(page.Result.Ranking))
	}
}
