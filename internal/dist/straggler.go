package dist

import (
	"math"
	"sort"
	"strconv"

	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/trace"
)

// Straggler mitigation. The re-split machinery (supervise.go) only moves
// ligands off *dead* workers; a slow-but-alive worker still holds a
// screen's tail hostage — the distributed version of the imbalance the
// paper's Percent-factor split exists to prevent. This file treats
// slowness as a first-class fault, in three escalating moves, all run
// under the coordinator's mutex from the supervision step:
//
//   - Work-stealing: a shard whose projected finish (remaining ligands /
//     owner's observed rate) exceeds StealThreshold × the reference ETA
//     is fenced exactly like a zombie's shard — marked moved, its late
//     partials rejected by the same locked re-check, its worker-side job
//     best-effort cancelled — and the unfinished remainder is re-
//     dispatched across the idle workers under fresh shard IDs (hence
//     fresh idempotency keys). Ligands already merged stay merged; the
//     merged-set dedup keeps rankings byte-identical no matter how the
//     race between victim and thief resolves.
//
//   - Hedged dispatch: when a job is down to its last HedgeTail
//     unfinished shards, each is twinned onto an idle worker with its
//     remaining ligands. First complete twin wins; the loser is fenced
//     and cancelled like a stolen shard.
//
//   - Quarantine: a worker persistently observed far below the fleet's
//     median rate is browned out — split weight divided by
//     QuarantineFactor, excluded from steals, hedges, and initial equal
//     splits — instead of being declared dead. It keeps its current
//     shards; recovery (or a steal of its last shard) is decided by the
//     same rate signal that demoted it.

// quarantineStreak is how many consecutive below-bar assessments demote a
// worker — hysteresis against one noisy rate sample.
const quarantineStreak = 3

// stealHedgeLocked runs one straggler pass for a running job: flag
// stragglers against the median ETA, steal their remainders onto idle
// workers, then hedge the tail shards. Caller holds c.mu; new shards are
// picked up by the same step's dispatch collection.
func (c *Coordinator) stealHedgeLocked(j *job) {
	if j.state != service.StateRunning {
		return
	}
	now := c.cfg.now()
	grace := c.cfg.HeartbeatTimeout

	// Active shards with their unfinished remainders and projected ETAs,
	// plus completed-shard durations as the fallback reference.
	type candidate struct {
		sh        *shard
		remaining []string
		eta       float64
	}
	var active []candidate
	var refPool []float64
	for _, sh := range j.shards {
		if sh.moved {
			continue
		}
		if sh.done {
			if !sh.doneAt.IsZero() && !sh.dispatched.IsZero() {
				refPool = append(refPool, sh.doneAt.Sub(sh.dispatched).Seconds())
			}
			continue
		}
		if sh.remote == "" || !c.epochValidLocked(sh) {
			continue
		}
		var rem []string
		for _, n := range sh.ligands {
			if _, ok := j.merged[n]; !ok {
				rem = append(rem, n)
			}
		}
		if len(rem) == 0 {
			continue
		}
		active = append(active, candidate{sh: sh, remaining: rem, eta: c.shardETALocked(sh, len(rem))})
	}
	if len(active) == 0 {
		return
	}
	for _, a := range active {
		if !math.IsInf(a.eta, 1) {
			refPool = append(refPool, a.eta)
		}
	}

	// Steal pass. The reference mixes finite active ETAs with completed
	// durations: while healthy shards run, the straggler is measured
	// against them; once only the straggler remains, against how long a
	// healthy shard took. No reference (single shard, nothing finished,
	// no rate observed) means no steal — on a one-worker cluster this
	// pass is a no-op by construction.
	if c.cfg.StealThreshold > 0 && len(refPool) > 0 {
		ref := medianLow(refPool)
		// Worst first, so the shard holding the job hostage is stolen
		// before milder stragglers consume the idle workers.
		sort.Slice(active, func(a, b int) bool { return active[a].eta > active[b].eta })
		for _, a := range active {
			if a.sh.moved || a.sh.hedgedBy != "" || a.sh.hedgeOf != "" {
				continue // hedged pairs already have a backup racing
			}
			if now.Sub(a.sh.dispatched) < grace {
				continue // too young for its rate estimate to mean anything
			}
			if ref <= 0 || a.eta <= c.cfg.StealThreshold*ref {
				continue
			}
			idle := c.idleWorkersLocked(a.sh.worker)
			if len(idle) == 0 {
				continue
			}
			c.stealLocked(j, a.sh, a.remaining, idle, a.eta, ref)
		}
	}

	// Hedge pass. Only the job's tail — when at most HedgeTail shards
	// remain unfinished — is worth the duplicated work.
	if c.cfg.HedgeTail <= 0 {
		return
	}
	live := 0
	for _, a := range active {
		if !a.sh.moved {
			live++
		}
	}
	if live == 0 || live > c.cfg.HedgeTail {
		return
	}
	for _, a := range active {
		sh := a.sh
		if sh.moved || sh.hedgedBy != "" || sh.hedgeOf != "" {
			continue
		}
		if now.Sub(sh.dispatched) < grace {
			continue
		}
		idle := c.idleWorkersLocked(sh.worker)
		if len(idle) == 0 {
			return
		}
		c.hedgeLocked(j, sh, a.remaining, idle[0])
	}
}

// shardETALocked projects when a shard's unfinished remainder completes
// at its owner's observed rate. No observed progress means +Inf — a
// stalled worker must look infinitely slow, not unknown. Caller holds
// c.mu.
func (c *Coordinator) shardETALocked(sh *shard, remaining int) float64 {
	w := c.workers[sh.worker]
	if w == nil || w.rate.Value() <= 0 {
		return math.Inf(1)
	}
	return float64(remaining) / w.rate.Value()
}

// idleWorkersLocked lists alive, unquarantined workers with no active
// shard in any non-terminal job, fastest first (ties by URL for
// determinism), excluding the given victim. Caller holds c.mu.
func (c *Coordinator) idleWorkersLocked(exclude string) []*worker {
	busy := make(map[string]bool)
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state.Terminal() {
			continue
		}
		for _, sh := range j.shards {
			if !sh.done && !sh.moved {
				busy[sh.worker] = true
			}
		}
	}
	var idle []*worker
	for _, w := range c.aliveWorkersLocked() {
		if w.url == exclude || w.quarantined || busy[w.url] {
			continue
		}
		idle = append(idle, w)
	}
	sort.SliceStable(idle, func(a, b int) bool { return idle[a].rate.Value() > idle[b].rate.Value() })
	return idle
}

// stealLocked fences the victim shard and re-dispatches its unfinished
// remainder across the idle workers under fresh shard IDs — fresh
// idempotency keys, so the thieves start real work instead of mapping
// onto the victim's stuck job. The victim is quarantined on the spot: a
// proven straggler should not receive an equal share of the next
// re-split. Caller holds c.mu.
func (c *Coordinator) stealLocked(j *job, victim *shard, remaining []string, idle []*worker, eta, ref float64) {
	victim.moved = true
	victim.stolen = true
	if victim.remote != "" {
		c.fenced = append(c.fenced, remoteRef{worker: victim.worker, remote: victim.remote})
	}
	c.appendEvent(event{Type: evMoved, Job: j.id, Shard: victim.id})
	c.metrics.ShardStolen()
	if w := c.workers[victim.worker]; w != nil {
		w.stolenFrom++
		c.quarantineWorkerLocked(w, "shard stolen")
	}

	weights := make([]float64, len(idle))
	mask := make([]bool, len(idle))
	for i, w := range idle {
		weights[i] = w.rate.Value()
		mask[i] = true
	}
	chunks := SplitWeighted(remaining, weights, mask)
	for i, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		ns := &shard{id: "s" + strconv.Itoa(j.nextShard), worker: idle[i].url, epoch: idle[i].epoch, ligands: chunk}
		j.nextShard++
		j.shards = append(j.shards, ns)
		idle[i].shards++
		c.metrics.ShardAssigned()
		c.appendEvent(event{Type: evAssign, Job: j.id, Shard: ns.id, Worker: ns.worker, Epoch: ns.epoch, Ligands: chunk})
		c.log.Info("shard remainder stolen",
			"job", j.id, "victimShard", victim.id, "victim", victim.worker,
			"thiefShard", ns.id, "thief", ns.worker, "ligands", len(chunk))
	}
	t := j.rec.Now()
	j.rec.AddSpan(trace.Span{
		Track: "membership", Name: "steal " + victim.id + " off " + victim.worker,
		Cat: trace.CatShard, Start: t, End: t,
		Args: map[string]string{
			"ligands": strconv.Itoa(len(remaining)),
			"eta_s":   strconv.FormatFloat(eta, 'f', 2, 64),
			"ref_s":   strconv.FormatFloat(ref, 'f', 2, 64),
		},
	})
}

// hedgeLocked twins a tail shard onto an idle worker: a new shard with
// the primary's unfinished remainder, linked both ways so the first
// completion fences and cancels the other. Caller holds c.mu.
func (c *Coordinator) hedgeLocked(j *job, primary *shard, remaining []string, w *worker) {
	hs := &shard{
		id: "s" + strconv.Itoa(j.nextShard), worker: w.url, epoch: w.epoch,
		ligands: append([]string(nil), remaining...), hedgeOf: primary.id,
	}
	j.nextShard++
	j.shards = append(j.shards, hs)
	primary.hedgedBy = hs.id
	w.shards++
	c.metrics.HedgeIssued()
	c.metrics.ShardAssigned()
	c.appendEvent(event{Type: evAssign, Job: j.id, Shard: hs.id, Worker: hs.worker, Epoch: hs.epoch, Ligands: hs.ligands, HedgeOf: primary.id})
	t := j.rec.Now()
	j.rec.AddSpan(trace.Span{
		Track: "membership", Name: "hedge " + primary.id + " on " + w.url,
		Cat: trace.CatShard, Start: t, End: t,
		Args: map[string]string{"twin": hs.id, "ligands": strconv.Itoa(len(hs.ligands))},
	})
	c.log.Info("tail shard hedged",
		"job", j.id, "primary", primary.id, "on", primary.worker,
		"twin", hs.id, "worker", w.url, "ligands", len(hs.ligands))
}

// livePartnerLocked returns the other half of a hedge pair if it is still
// racing (not done, not moved), nil otherwise. Caller holds c.mu.
func (j *job) livePartnerLocked(sh *shard) *shard {
	id := sh.hedgeOf
	if id == "" {
		id = sh.hedgedBy
	}
	if id == "" {
		return nil
	}
	for _, p := range j.shards {
		if p.id == id && !p.done && !p.moved {
			return p
		}
	}
	return nil
}

// resolveHedgeLocked settles a hedge race after `winner` completed: the
// losing twin is fenced (late partials drop at the moved check, exactly
// like a stolen shard's) and its worker-side job queued for cancel so the
// slower worker stops burning time on already-merged ligands. Caller
// holds c.mu.
func (c *Coordinator) resolveHedgeLocked(j *job, winner *shard) {
	loser := j.livePartnerLocked(winner)
	if winner.hedgeOf != "" {
		// The twin beat the shard it was backing: the hedge paid off.
		c.metrics.HedgeWon()
	}
	if loser == nil {
		return
	}
	loser.moved = true
	if loser.remote != "" {
		c.fenced = append(c.fenced, remoteRef{worker: loser.worker, remote: loser.remote})
	}
	c.appendEvent(event{Type: evMoved, Job: j.id, Shard: loser.id})
	t := j.rec.Now()
	j.rec.AddSpan(trace.Span{
		Track: "membership", Name: "hedge won by " + winner.id + " over " + loser.id,
		Cat: trace.CatShard, Start: t, End: t,
		Args: map[string]string{"loser_worker": loser.worker},
	})
	c.log.Info("hedge race resolved",
		"job", j.id, "winner", winner.id, "loser", loser.id, "loserWorker", loser.worker)
}

// assessQuarantineLocked compares every alive worker's observed rate
// against the fleet and demotes (or recovers) the persistent outliers.
// Entry needs quarantineStreak consecutive passes below median/factor;
// exit needs the rate back above twice that bar — hysteresis in both
// directions so a worker doesn't flap at the boundary. Rate-limited to
// one assessment per PollInterval no matter how many supervisors call
// it. Caller holds c.mu.
func (c *Coordinator) assessQuarantineLocked() {
	f := c.cfg.QuarantineFactor
	if f <= 0 {
		return
	}
	now := c.cfg.now()
	if now.Sub(c.lastAssess) < c.cfg.PollInterval {
		return
	}
	c.lastAssess = now
	var rates []float64
	for _, w := range c.workers {
		if w.alive && w.rate.Observed() {
			rates = append(rates, w.rate.Value())
		}
	}
	if len(rates) < 2 {
		return // no fleet to be an outlier of
	}
	med := medianHigh(rates)
	if med <= 0 {
		return
	}
	for _, w := range c.workers {
		if !w.alive || !w.rate.Observed() {
			continue
		}
		switch {
		case w.rate.Value()*f < med:
			w.slowStreak++
			if w.slowStreak >= quarantineStreak {
				c.quarantineWorkerLocked(w, "rate below fleet median")
			}
		case w.rate.Value()*f >= 2*med:
			w.slowStreak = 0
			if w.quarantined {
				w.quarantined = false
				c.log.Info("worker left quarantine", "worker", w.url, "rate_lps", w.rate.Value())
			}
		default:
			w.slowStreak = 0 // gray zone: neither demote nor recover
		}
	}
}

// quarantineWorkerLocked demotes a worker to the brownout (idempotent).
// Quarantine is deliberately ephemeral — not journaled — because the
// rates it is based on die with the process anyway; a restarted
// coordinator re-learns both. Caller holds c.mu.
func (c *Coordinator) quarantineWorkerLocked(w *worker, reason string) {
	if w.quarantined {
		return
	}
	w.quarantined = true
	w.slowStreak = 0
	c.metrics.WorkerQuarantined()
	c.log.Warn("worker quarantined",
		"worker", w.url, "reason", reason, "rate_lps", w.rate.Value())
}

// medianLow returns the lower median — the aggressive choice for ETAs,
// where the reference should lean toward the faster half of the fleet.
func medianLow(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// medianHigh returns the upper median — the aggressive choice for rates,
// for the same reason with the axis flipped.
func medianHigh(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
