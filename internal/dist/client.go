package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/metascreen/metascreen/internal/service"
)

// client is the coordinator's HTTP client for worker nodes. Workers are
// plain vsserved instances — the client speaks the same JSON API any
// other consumer does, with one addition: shard submissions always carry
// an Idempotency-Key derived from (distributed job, shard), so a
// coordinator that restarts and re-dispatches maps onto the worker's
// already-running job instead of starting a duplicate screen.
type client struct {
	hc *http.Client
}

// apiError is a non-2xx response, decoded from the service's
// {"error": "..."} body when possible.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("worker: %s (HTTP %d)", e.msg, e.status)
	}
	return "worker: HTTP " + strconv.Itoa(e.status)
}

func (c *client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(body, &e)
		return &apiError{status: resp.StatusCode, msg: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// submit posts a shard screen to a worker under the given idempotency
// key. Both 202 (new) and 200 (the worker had already admitted this key)
// succeed and return the worker-side job.
func (c *client) submit(base string, req service.ScreenRequest, key string) (service.JobView, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return service.JobView{}, err
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/screens", bytes.NewReader(b))
	if err != nil {
		return service.JobView{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Idempotency-Key", key)
	var view service.JobView
	err = c.do(hreq, &view)
	return view, err
}

// partial fetches the completed-ligand ranking of a worker-side job. The
// limit is pinned to the service's maximum so one poll always sees the
// whole shard (shards are bounded by the library cap, which equals it).
func (c *client) partial(base, id string) (service.PartialView, error) {
	url := base + "/v1/screens/" + id + "/partial?limit=" + strconv.Itoa(service.MaxRankingLimit)
	hreq, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return service.PartialView{}, err
	}
	var pv service.PartialView
	err = c.do(hreq, &pv)
	return pv, err
}

// get fetches a worker-side job view (used for terminal error detail).
func (c *client) get(base, id string) (service.JobView, error) {
	hreq, err := http.NewRequest(http.MethodGet, base+"/v1/screens/"+id, nil)
	if err != nil {
		return service.JobView{}, err
	}
	var view service.JobView
	err = c.do(hreq, &view)
	return view, err
}

// cancel asks a worker to cancel a job. Already-terminal (409) and
// unknown (404) jobs are fine — the goal state is "not running".
func (c *client) cancel(base, id string) error {
	hreq, err := http.NewRequest(http.MethodDelete, base+"/v1/screens/"+id, nil)
	if err != nil {
		return err
	}
	err = c.do(hreq, nil)
	var ae *apiError
	if errors.As(err, &ae) && (ae.status == http.StatusConflict || ae.status == http.StatusNotFound) {
		return nil
	}
	return err
}

// ready probes a worker's /readyz.
func (c *client) ready(base string) bool {
	hreq, err := http.NewRequest(http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	return c.do(hreq, nil) == nil
}
