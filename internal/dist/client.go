package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/service"
)

// client is the coordinator's HTTP client for worker nodes. Workers are
// plain vsserved instances — the client speaks the same JSON API any
// other consumer does, with two additions: shard submissions always
// carry an Idempotency-Key derived from (distributed job, shard), so a
// coordinator that restarts and re-dispatches maps onto the worker's
// already-running job instead of starting a duplicate screen; and every
// shard request is tagged with the owning worker's registration epoch
// (service.EpochHeader), which the worker echoes back — the fencing
// handshake that lets the coordinator reject responses from zombies.
//
// Every request runs under a per-request timeout derived from the
// caller's context, so a blackholed worker can never wedge a supervision
// loop: the worst case is timeout × attempts, then the failure counts
// toward the worker's death threshold. Transient failures — transport
// errors, timeouts, 408/429/5xx — are retried with exponential backoff
// and deterministic jitter; anything else (other 4xx) is fatal and
// surfaces immediately.
type client struct {
	hc        *http.Client
	timeout   time.Duration // per-request deadline; 0 = no extra deadline
	attempts  int           // total tries per request (>= 1)
	backoff   time.Duration // base retry delay, doubled per retry
	respLimit int64         // response read cap in bytes
	onRetry   func()        // metrics hook, called once per retry
}

// maxClientBackoff caps one retry sleep so attempt budgets stay
// predictable even after several doublings.
const maxClientBackoff = 2 * time.Second

// apiError is a non-2xx response, decoded from the service's
// {"error": "..."} body when possible. retryAfter carries the server's
// Retry-After hint (429/503 shedding responses) so the retry loop can
// wait exactly as long as the server asked instead of guessing.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("worker: %s (HTTP %d)", e.msg, e.status)
	}
	return "worker: HTTP " + strconv.Itoa(e.status)
}

// retriableError marks a failure worth another attempt: the request may
// never have reached the worker, or the worker may recover.
type retriableError struct{ err error }

func (e *retriableError) Error() string { return e.err.Error() }
func (e *retriableError) Unwrap() error { return e.err }

// retriable reports whether an error is marked transient.
func retriable(err error) bool {
	var re *retriableError
	return errors.As(err, &re)
}

// do runs one logical request with retries. body may be nil; epoch > 0
// tags the request for fencing. The decoded 2xx body lands in out.
func (c *client) do(ctx context.Context, method, url string, body []byte, key string, epoch uint64, out any) error {
	for attempt := 1; ; attempt++ {
		err := c.once(ctx, method, url, body, key, epoch, out)
		if err == nil {
			return nil
		}
		if !retriable(err) || attempt >= c.attempts || ctx.Err() != nil {
			return err
		}
		if c.onRetry != nil {
			c.onRetry()
		}
		if !sleepCtx(ctx, c.retryDelay(err, url, attempt)) {
			return err
		}
	}
}

// once performs a single attempt under the per-request timeout.
func (c *client) once(ctx context.Context, method, url string, body []byte, key string, epoch uint64, out any) error {
	rctx := ctx
	if c.timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	sentEpoch := ""
	if epoch > 0 {
		sentEpoch = strconv.FormatUint(epoch, 10)
		req.Header.Set(service.EpochHeader, sentEpoch)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return err // the caller is gone; retrying is pointless
		}
		// Transport-level failures — refused connections, injected
		// partitions, per-request timeouts against a blackholed worker —
		// are all worth another try.
		return &retriableError{err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.respLimit+1))
	if err != nil {
		if ctx.Err() != nil {
			return err
		}
		return &retriableError{err}
	}
	if int64(len(data)) > c.respLimit {
		// Oversized responses repeat deterministically: fail loud instead
		// of truncating into a JSON parse error.
		return fmt.Errorf("dist: response from %s exceeds the %d-byte cap", url, c.respLimit)
	}
	if sentEpoch != "" {
		if echo := resp.Header.Get(service.EpochHeader); echo != "" && echo != sentEpoch {
			// The response answers a different epoch's request (a stale
			// duplicate, a confused proxy): never trust its body.
			return &retriableError{fmt.Errorf("dist: epoch echo mismatch from %s: sent %s, got %s", url, sentEpoch, echo)}
		}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		apiErr := &apiError{
			status:     resp.StatusCode,
			msg:        e.Error,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		if resp.StatusCode == http.StatusRequestTimeout ||
			resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode >= 500 {
			return &retriableError{apiErr}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return &retriableError{err}
	}
	return nil
}

// retryDelay picks the sleep before retry `attempt`. A server that said
// how long it wants to be left alone (Retry-After on a 429/503 shed
// response) is believed, clamped to the backoff cap; otherwise the usual
// jittered exponential backoff applies.
func (c *client) retryDelay(err error, url string, attempt int) time.Duration {
	var ae *apiError
	if errors.As(err, &ae) && ae.retryAfter > 0 {
		if ae.retryAfter > maxClientBackoff {
			return maxClientBackoff
		}
		return ae.retryAfter
	}
	return retryBackoff(c.backoff, url, attempt)
}

// parseRetryAfter reads a Retry-After header in its delay-seconds form
// (the only form the service emits). Malformed or negative values are
// ignored rather than trusted.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryBackoff computes the sleep before retry `attempt`: the base delay
// doubles per retry with a deterministic jitter factor in [0.5, 1.5)
// hashed from the URL and attempt — reproducible without a global RNG,
// and de-synchronized across workers.
func retryBackoff(base time.Duration, url string, attempt int) time.Duration {
	delay := base << (attempt - 1)
	if delay <= 0 || delay > maxClientBackoff {
		delay = maxClientBackoff
	}
	return rng.Jitter(delay, 0.5, url, uint64(attempt))
}

// sleepCtx waits out one backoff; false means the context ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// submit posts a shard screen to a worker under the given idempotency
// key and fencing epoch. Both 202 (new) and 200 (the worker had already
// admitted this key) succeed and return the worker-side job.
func (c *client) submit(ctx context.Context, base string, req service.ScreenRequest, key string, epoch uint64) (service.JobView, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return service.JobView{}, err
	}
	var view service.JobView
	err = c.do(ctx, http.MethodPost, base+"/v1/screens", b, key, epoch, &view)
	return view, err
}

// partial fetches the completed-ligand ranking of a worker-side job. The
// limit is pinned to the service's maximum so one poll always sees the
// whole shard (shards are bounded by the library cap, which equals it).
func (c *client) partial(ctx context.Context, base, id string, epoch uint64) (service.PartialView, error) {
	url := base + "/v1/screens/" + id + "/partial?limit=" + strconv.Itoa(service.MaxRankingLimit)
	var pv service.PartialView
	err := c.do(ctx, http.MethodGet, url, nil, "", epoch, &pv)
	return pv, err
}

// get fetches a worker-side job view (used for terminal error detail).
func (c *client) get(ctx context.Context, base, id string) (service.JobView, error) {
	var view service.JobView
	err := c.do(ctx, http.MethodGet, base+"/v1/screens/"+id, nil, "", 0, &view)
	return view, err
}

// cancel asks a worker to cancel a job. Already-terminal (409) and
// unknown (404) jobs are fine — the goal state is "not running".
func (c *client) cancel(ctx context.Context, base, id string) error {
	err := c.do(ctx, http.MethodDelete, base+"/v1/screens/"+id, nil, "", 0, nil)
	var ae *apiError
	if errors.As(err, &ae) && (ae.status == http.StatusConflict || ae.status == http.StatusNotFound) {
		return nil
	}
	return err
}

// ready probes a worker's /readyz.
func (c *client) ready(ctx context.Context, base string) bool {
	return c.do(ctx, http.MethodGet, base+"/readyz", nil, "", 0, nil) == nil
}
