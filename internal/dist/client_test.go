package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/service"
)

// Client-level tests: retry/timeout/backoff classification against stub
// servers, independent of the coordinator machinery.

func testClient(srv *httptest.Server) *client {
	return &client{
		hc:        srv.Client(),
		timeout:   time.Second,
		attempts:  3,
		backoff:   time.Millisecond,
		respLimit: 1 << 20,
	}
}

// TestClientRetriesTransient: 5xx responses are retried until an attempt
// succeeds, and each retry fires the metrics hook.
func TestClientRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	var retries atomic.Int64
	cl := testClient(srv)
	cl.onRetry = func() { retries.Add(1) }
	var out map[string]any
	if err := cl.do(context.Background(), http.MethodGet, srv.URL, nil, "", 0, &out); err != nil {
		t.Fatalf("request failed after retries: %v", err)
	}
	if calls.Load() != 3 || retries.Load() != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls.Load(), retries.Load())
	}
}

// TestClientFatalOn4xx: a client error is deterministic — no retry, the
// apiError surfaces on the first attempt.
func TestClientFatalOn4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"nope"}`))
	}))
	defer srv.Close()
	err := testClient(srv).do(context.Background(), http.MethodGet, srv.URL, nil, "", 0, nil)
	var ae *apiError
	if !errors.As(err, &ae) || ae.status != http.StatusBadRequest {
		t.Fatalf("got %v, want a 400 apiError", err)
	}
	if retriable(err) {
		t.Error("400 classified as retriable")
	}
	if calls.Load() != 1 {
		t.Errorf("4xx retried: %d calls", calls.Load())
	}
}

// TestClientTimeoutBounded: a blackholed server cannot wedge the caller —
// each attempt is cut off at the per-request timeout, the failure is
// retriable, and the whole call returns within timeout × attempts plus
// backoff.
func TestClientTimeoutBounded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	cl := testClient(srv)
	cl.timeout = 50 * time.Millisecond
	cl.attempts = 2
	start := time.Now()
	err := cl.do(context.Background(), http.MethodGet, srv.URL, nil, "", 0, nil)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if !retriable(err) {
		t.Errorf("timeout classified as fatal: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded call took %v", elapsed)
	}
}

// TestClientRespectsParentContext: when the caller's own context ends,
// the retry loop stops instead of burning remaining attempts.
func TestClientRespectsParentContext(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := testClient(srv)
	cl.attempts = 5
	if err := cl.do(ctx, http.MethodGet, srv.URL, nil, "", 0, nil); err == nil {
		t.Fatal("cancelled-context request succeeded")
	}
	if calls.Load() > 1 {
		t.Errorf("retried %d times under a cancelled context", calls.Load()-1)
	}
}

// TestClientResponseCap: an oversized body fails loud and fatal instead
// of truncating into a confusing JSON error.
func TestClientResponseCap(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write(make([]byte, 4096))
	}))
	defer srv.Close()
	cl := testClient(srv)
	cl.respLimit = 1024
	err := cl.do(context.Background(), http.MethodGet, srv.URL, nil, "", 0, nil)
	if err == nil {
		t.Fatal("oversized response accepted")
	}
	if retriable(err) {
		t.Errorf("oversized response classified as retriable: %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("oversized response retried: %d calls", calls.Load())
	}
}

// TestClientEpochEchoMismatch: a response echoing a different fencing
// epoch than the request carried is never trusted (retriable — the next
// attempt may reach the real worker).
func TestClientEpochEchoMismatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(service.EpochHeader, "42")
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	cl := testClient(srv)
	cl.attempts = 1
	err := cl.do(context.Background(), http.MethodGet, srv.URL, nil, "", 7, nil)
	if err == nil {
		t.Fatal("mismatched epoch echo accepted")
	}
	if !retriable(err) {
		t.Errorf("epoch mismatch classified as fatal: %v", err)
	}
}

// TestServiceEchoesEpoch: the worker side of the fencing handshake — a
// real service reflects the epoch header on its responses.
func TestServiceEchoesEpoch(t *testing.T) {
	w := startWorker(t)
	req, err := http.NewRequest(http.MethodGet, w.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.EpochHeader, "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(service.EpochHeader); got != "5" {
		t.Fatalf("service echoed epoch %q, want 5", got)
	}
}

// TestRetryBackoffShape: exponential growth, the cap, and the jitter
// band, all deterministic per (url, attempt).
func TestRetryBackoffShape(t *testing.T) {
	base := 50 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		d := retryBackoff(base, "http://w:1", attempt)
		if d != retryBackoff(base, "http://w:1", attempt) {
			t.Fatal("backoff not deterministic")
		}
		nominal := base << (attempt - 1)
		if nominal <= 0 || nominal > maxClientBackoff {
			nominal = maxClientBackoff
		}
		// Jitter keeps each sleep inside [0.5, 1.5) × the nominal delay.
		if d < nominal/2 || d >= nominal+nominal/2 {
			t.Fatalf("attempt %d backoff %v outside the jitter band of %v", attempt, d, nominal)
		}
	}
}

// TestParseRetryAfter: only the delay-seconds form is trusted; malformed,
// zero, or negative headers fall back to the computed backoff.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"abc", 0},
		{"-3", 0},
		{"0", 0},
		{"1", time.Second},
		{"2", 2 * time.Second},
		{"Fri, 07 Aug 2026 09:00:00 GMT", 0}, // HTTP-date form is not emitted by the service
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestRetryDelayHonorsRetryAfter: a server that said how long it wants to
// be left alone is believed — exactly, clamped to the backoff cap — and
// everything else gets the usual jittered exponential.
func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	cl := &client{backoff: 50 * time.Millisecond}
	shed := &retriableError{&apiError{status: http.StatusTooManyRequests, retryAfter: time.Second}}
	if got := cl.retryDelay(shed, "http://w:1", 1); got != time.Second {
		t.Errorf("Retry-After 1s produced delay %v, want exactly 1s", got)
	}
	far := &retriableError{&apiError{status: http.StatusServiceUnavailable, retryAfter: time.Minute}}
	if got := cl.retryDelay(far, "http://w:1", 1); got != maxClientBackoff {
		t.Errorf("Retry-After 1m produced delay %v, want the %v clamp", got, maxClientBackoff)
	}
	plain := &retriableError{&apiError{status: http.StatusInternalServerError}}
	if got, want := cl.retryDelay(plain, "http://w:1", 2), retryBackoff(cl.backoff, "http://w:1", 2); got != want {
		t.Errorf("no Retry-After: delay %v, want the computed backoff %v", got, want)
	}
}

// TestClientWaitsOutRetryAfter: end to end through do() — a 429 carrying
// Retry-After: 1 delays the retry by a full second instead of the
// millisecond-scale backoff the test client would otherwise use.
func TestClientWaitsOutRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	start := time.Now()
	if err := testClient(srv).do(context.Background(), http.MethodGet, srv.URL, nil, "", 0, nil); err != nil {
		t.Fatalf("request failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2", calls.Load())
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("retry waited %v, want ~1s per the server's Retry-After", elapsed)
	}
}

// TestBeatJitterBounds: heartbeat waits stay inside ±20% of the interval,
// spread across beats, and replay identically.
func TestBeatJitterBounds(t *testing.T) {
	interval := time.Second
	seen := make(map[time.Duration]bool)
	for n := uint64(0); n < 200; n++ {
		d := beatJitter(interval, "http://w:1", n)
		if d < 800*time.Millisecond || d >= 1200*time.Millisecond {
			t.Fatalf("beat %d jittered to %v, outside [0.8s, 1.2s)", n, d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct waits over 200 beats", len(seen))
	}
	if beatJitter(interval, "http://w:1", 3) != beatJitter(interval, "http://w:1", 3) {
		t.Error("beat jitter not deterministic")
	}
}

// TestConfigValidate: nonsense tuning is rejected before any state is
// built or journaled.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{RequestAttempts: -1},
		{FailThreshold: -2},
		{MaxResponseBytes: -5},
		{MaxResponseBytes: 1024}, // below the 64 KiB floor
		{RetryBaseDelay: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
