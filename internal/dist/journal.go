package dist

// The coordinator's durability layer. Every piece of distributed state
// that cannot be re-derived from the workers is journaled through the
// same WAL the service uses: job admissions (with idempotency keys),
// membership changes, shard assignments, merged partial entries, and
// terminal snapshots. A coordinator restarted over the same data dir
// replays the journal, rebuilds its job table mid-screen, and
// re-dispatches unfinished shards under their original idempotency keys
// — workers that kept running simply hand back the same jobs, so no
// ligand is docked twice and the final ranking is unchanged.
//
// Worker liveness is deliberately NOT trusted across a restart: replayed
// workers get a fresh heartbeat grace window and must re-heartbeat
// within HeartbeatTimeout or be declared dead and re-split around.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/wal"
)

// Event types. Unknown types are skipped on replay so newer journals
// degrade gracefully under older binaries.
const (
	evJob      = "job"      // distributed screen admitted
	evWorker   = "worker"   // membership change (alive flag is the new state)
	evAssign   = "assign"   // shard assigned to a worker
	evMoved    = "moved"    // shard fenced mid-run (remainder stolen, hedge race lost)
	evEntries  = "entries"  // per-ligand results merged from a worker partial
	evCancel   = "cancel"   // cancellation requested
	evTerminal = "terminal" // job reached a terminal state (full snapshot)
)

// event is one journal record. Which fields are set depends on Type;
// terminal events carry the whole JobView so replay needs no other
// source of truth for finished screens.
type event struct {
	Type    string                 `json:"type"`
	Time    time.Time              `json:"time,omitempty"`
	Job     string                 `json:"job,omitempty"`
	IdemKey string                 `json:"idem_key,omitempty"`
	Request *service.ScreenRequest `json:"request,omitempty"`
	Worker  string                 `json:"worker,omitempty"`
	Alive   bool                   `json:"alive"`
	Epoch   uint64                 `json:"epoch,omitempty"`
	Shard   string                 `json:"shard,omitempty"`
	HedgeOf string                 `json:"hedge_of,omitempty"`
	Ligands []string               `json:"ligands,omitempty"`
	Entries []service.PartialEntry `json:"entries,omitempty"`
	View    *JobView               `json:"view,omitempty"`
}

// appendEvent journals one event. Callers hold c.mu. Append failures
// degrade durability, not correctness, mirroring the service's policy.
func (c *Coordinator) appendEvent(ev event) {
	if c.journal == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err == nil {
		err = c.journal.Append(b)
	}
	if err != nil {
		c.metrics.JournalError()
		c.log.Error("dist journal append failed", "job", ev.Job, "err", err)
		return
	}
	if c.journal.Size() > c.cfg.CompactBytes {
		c.compactLocked()
	}
}

// compactLocked rewrites the journal as the minimal record set that
// reproduces current state: membership, then per job either its terminal
// snapshot or its admission + live assignments + merged entries (+
// pending cancel). Caller holds c.mu.
func (c *Coordinator) compactLocked() {
	var live [][]byte
	add := func(ev event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			c.metrics.JournalError()
			return false
		}
		live = append(live, b)
		return true
	}
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		if !add(event{Type: evWorker, Worker: u, Alive: c.workers[u].alive, Epoch: c.workers[u].epoch}) {
			return
		}
	}
	for _, id := range c.order {
		j := c.jobs[id]
		if j.final != nil {
			ok := add(event{Type: evJob, Job: j.id, IdemKey: j.idemKey, Request: &j.req, Time: j.submitted}) &&
				add(event{Type: evTerminal, Job: j.id, View: j.final})
			if !ok {
				return
			}
			continue
		}
		if !add(event{Type: evJob, Job: j.id, IdemKey: j.idemKey, Request: &j.req, Time: j.submitted}) {
			return
		}
		for _, sh := range j.shards {
			if sh.moved {
				continue
			}
			if !add(event{Type: evAssign, Job: j.id, Shard: sh.id, Worker: sh.worker, Epoch: sh.epoch, Ligands: sh.ligands, HedgeOf: sh.hedgeOf}) {
				return
			}
		}
		if len(j.merged) > 0 {
			entries := make([]service.PartialEntry, 0, len(j.merged))
			for _, n := range j.names {
				if e, ok := j.merged[n]; ok {
					entries = append(entries, e)
				}
			}
			if !add(event{Type: evEntries, Job: j.id, Entries: entries}) {
				return
			}
		}
		if j.cancelRequested && !add(event{Type: evCancel, Job: j.id}) {
			return
		}
	}
	if err := c.journal.Compact(live); err != nil {
		c.metrics.JournalError()
		c.log.Error("dist journal compact failed", "err", err)
	}
}

// openJournal opens the coordinator WAL and replays it into the job and
// membership tables. Called from New before any supervisor starts, so no
// lock is needed.
func (c *Coordinator) openJournal() error {
	j, info, err := wal.Open(filepath.Join(c.cfg.DataDir, "dist-journal"), wal.Options{
		Policy: c.cfg.SyncPolicy,
		Logf:   func(format string, args ...any) { c.log.Warn(fmt.Sprintf(format, args...)) },
		FS:     c.cfg.FS,
		OnIOError: func(op string, err error) {
			c.metrics.JournalError()
			c.log.Warn("dist journal io error", "op", op, "err", err)
		},
	})
	if err != nil {
		return err
	}
	boot := c.cfg.now()
	replayed := 0
	err = j.Replay(func(rec []byte) error {
		var ev event
		if uerr := json.Unmarshal(rec, &ev); uerr != nil {
			c.metrics.JournalError()
			return nil
		}
		c.applyEvent(ev, boot)
		replayed++
		return nil
	})
	if err != nil {
		j.Close()
		return err
	}
	c.journal = j

	// A replayed job may hold ligands that were never assigned before the
	// crash (or were assigned to a worker whose death was journaled);
	// recompute the unassigned remainder so the supervisor re-splits it.
	resumed := 0
	for _, id := range c.order {
		jb := c.jobs[id]
		if jb.state.Terminal() {
			continue
		}
		covered := make(map[string]bool, len(jb.names))
		for _, sh := range jb.shards {
			if sh.moved {
				// A fenced shard covers nothing: if the crash landed between
				// the steal's moved record and the thief's assignment, its
				// remainder must land back in unassigned, not vanish.
				continue
			}
			for _, n := range sh.ligands {
				covered[n] = true
			}
		}
		jb.unassigned = nil
		for _, n := range jb.names {
			if _, ok := jb.merged[n]; ok {
				continue
			}
			if !covered[n] {
				jb.unassigned = append(jb.unassigned, n)
			}
		}
		resumed++
	}
	if replayed > 0 {
		c.log.Info("dist journal replayed",
			"records", replayed, "jobs", len(c.jobs), "resumed", resumed,
			"workers", len(c.workers), "truncated_bytes", info.TruncatedBytes)
	}
	return nil
}

// applyEvent folds one journal record into coordinator state. Replay
// only; events are last-write-wins per job.
func (c *Coordinator) applyEvent(ev event, boot time.Time) {
	switch ev.Type {
	case evJob:
		if ev.Request == nil || ev.Job == "" {
			return
		}
		jb := newJob(ev.Job, *ev.Request, ev.IdemKey, ev.Time)
		if _, ok := c.jobs[ev.Job]; !ok {
			c.order = append(c.order, ev.Job)
		}
		c.jobs[ev.Job] = jb
		if ev.IdemKey != "" {
			c.idem[ev.IdemKey] = ev.Job
		}
		if n, perr := strconv.ParseUint(strings.TrimPrefix(ev.Job, "dscreen-"), 10, 64); perr == nil && n > c.nextID {
			c.nextID = n
		}
	case evWorker:
		if ev.Worker == "" {
			return
		}
		w, ok := c.workers[ev.Worker]
		if !ok {
			w = &worker{url: ev.Worker}
			c.workers[ev.Worker] = w
		}
		w.alive = ev.Alive
		if ev.Epoch > w.epoch {
			w.epoch = ev.Epoch
		}
		// Epochs must keep advancing after a restart, or a revived zombie
		// could collide with a pre-crash epoch and slip the fence.
		// nextEpoch tracks the last epoch issued; Register pre-increments.
		if w.epoch > c.nextEpoch {
			c.nextEpoch = w.epoch
		}
		// Fresh grace window: the node must re-heartbeat or be reaped.
		w.lastBeat = boot
	case evAssign:
		jb := c.jobs[ev.Job]
		if jb == nil || ev.Shard == "" {
			return
		}
		sh := &shard{id: ev.Shard, worker: ev.Worker, epoch: ev.Epoch, ligands: ev.Ligands, hedgeOf: ev.HedgeOf}
		jb.shards = append(jb.shards, sh)
		if sh.hedgeOf != "" {
			// Reconnect the twin link so the race still resolves after a
			// restart (first completion fences the other leg).
			for _, p := range jb.shards {
				if p.id == sh.hedgeOf {
					p.hedgedBy = sh.id
				}
			}
		}
		if n, perr := strconv.Atoi(strings.TrimPrefix(ev.Shard, "s")); perr == nil && n >= jb.nextShard {
			jb.nextShard = n + 1
		}
	case evMoved:
		jb := c.jobs[ev.Job]
		if jb == nil {
			return
		}
		for _, sh := range jb.shards {
			if sh.id == ev.Shard {
				sh.moved = true
			}
		}
	case evEntries:
		jb := c.jobs[ev.Job]
		if jb == nil {
			return
		}
		for _, e := range ev.Entries {
			if jb.nameSet[e.Ligand] {
				jb.merged[e.Ligand] = e
			}
		}
	case evCancel:
		if jb := c.jobs[ev.Job]; jb != nil {
			jb.cancelRequested = true
		}
	case evTerminal:
		jb := c.jobs[ev.Job]
		if jb == nil || ev.View == nil {
			return
		}
		v := *ev.View
		jb.state = v.State
		jb.errMsg = v.Error
		jb.final = &v
		if v.StartedAt != nil {
			jb.started = *v.StartedAt
		}
		if v.FinishedAt != nil {
			jb.finished = *v.FinishedAt
		}
	}
}
