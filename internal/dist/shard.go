package dist

import (
	"hash/fnv"
	"io"

	"github.com/metascreen/metascreen/internal/sched"
)

// Ligand sharding. A screen's library is partitioned across worker nodes
// by FNV-1a hash of the ligand name — the same name-keyed scheme the
// per-ligand seed lanes use, so a ligand's results are identical no
// matter which node docks it and placement is pure bookkeeping. Two
// splitters cover the two moments that need one:
//
//   - ShardByHash: the initial assignment. Depends only on (name, shard
//     count), so it is deterministic across coordinator restarts and
//     balanced for any realistically named library.
//   - SplitWeighted: the recovery assignment. When a node dies, only its
//     unfinished ligands move, split over the survivors proportionally
//     to their observed throughput — the warm-up-weighted re-split the
//     device pool does (sched.SplitOverAlive), lifted one level up.

// HashName is the 64-bit FNV-1a hash of a ligand name, the placement key
// for distributed screens.
func HashName(name string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	return h.Sum64()
}

// ShardByHash partitions ligand names into n shards by name hash. Input
// order (library order) is preserved within each shard, so per-shard
// aggregate sums stay deterministic. Placement depends only on the name
// and n: re-running the assignment always yields the same shards.
func ShardByHash(names []string, n int) [][]string {
	if n <= 0 {
		return nil
	}
	out := make([][]string, n)
	for _, name := range names {
		i := int(HashName(name) % uint64(n))
		out[i] = append(out[i], name)
	}
	return out
}

// SplitWeighted divides ligand names into len(alive) chunks sized
// proportionally to weights, restricted to alive members — dead members
// get nil. Chunks are contiguous in input order. All-zero surviving
// weights (no throughput observed yet) fall back to an equal split.
func SplitWeighted(names []string, weights []float64, alive []bool) [][]string {
	counts := sched.SplitOverAlive(len(names), weights, alive)
	if counts == nil {
		return nil
	}
	out := make([][]string, len(alive))
	at := 0
	for i, n := range counts {
		if n > 0 {
			out[i] = names[at : at+n]
			at += n
		}
	}
	return out
}
