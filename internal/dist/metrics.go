package dist

import (
	"fmt"
	"io"
	"sync"

	"github.com/metascreen/metascreen/internal/service"
)

// Metrics is the coordinator's counter set, exposed in Prometheus text
// exposition format on /metrics. Counters are cumulative over the
// process lifetime (they restart from zero with the coordinator);
// gauges come from a Stats snapshot at scrape time.
type Metrics struct {
	mu            sync.Mutex
	workersJoined int64
	workerDeaths  int64
	shards        int64
	reshards      int64
	merged        int64
	pollErrors    int64
	retries       int64
	staleRejected int64
	shardsFenced  int64
	shardsStolen  int64
	hedgesIssued  int64
	hedgeWins     int64
	quarantines   int64
	journalErrors int64
	submitted     int64
	finished      map[service.JobState]int64
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{finished: make(map[service.JobState]int64)}
}

func (m *Metrics) WorkerJoined() { m.add(&m.workersJoined, 1) }
func (m *Metrics) WorkerDied()   { m.add(&m.workerDeaths, 1) }
func (m *Metrics) ShardAssigned() { m.add(&m.shards, 1) }
func (m *Metrics) Reshard()       { m.add(&m.reshards, 1) }
func (m *Metrics) PollError()     { m.add(&m.pollErrors, 1) }
func (m *Metrics) JournalError()  { m.add(&m.journalErrors, 1) }
func (m *Metrics) JobSubmitted()  { m.add(&m.submitted, 1) }

// RequestRetried counts one client retry after a transient failure.
func (m *Metrics) RequestRetried() { m.add(&m.retries, 1) }

// StalePartialRejected counts a worker partial dropped by the epoch
// fence instead of merged.
func (m *Metrics) StalePartialRejected() { m.add(&m.staleRejected, 1) }

// ShardFenced counts shards re-split because their owner revived under
// a newer registration epoch.
func (m *Metrics) ShardFenced() { m.add(&m.shardsFenced, 1) }

// ShardStolen counts a straggling shard whose unfinished remainder was
// fenced and re-dispatched to faster workers.
func (m *Metrics) ShardStolen() { m.add(&m.shardsStolen, 1) }

// HedgeIssued counts a duplicate dispatch raced against a tail shard.
func (m *Metrics) HedgeIssued() { m.add(&m.hedgesIssued, 1) }

// HedgeWon counts a hedge twin that finished before its primary.
func (m *Metrics) HedgeWon() { m.add(&m.hedgeWins, 1) }

// WorkerQuarantined counts quarantine entries (steals and brownouts).
func (m *Metrics) WorkerQuarantined() { m.add(&m.quarantines, 1) }

func (m *Metrics) LigandsMerged(n int) { m.add(&m.merged, int64(n)) }

func (m *Metrics) JobFinished(st service.JobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[st]++
}

func (m *Metrics) add(p *int64, d int64) {
	m.mu.Lock()
	*p += d
	m.mu.Unlock()
}

// WriteTo renders the exposition. Counter naming follows the service's
// metascreen_* convention with a dist_ subsystem prefix.
func (m *Metrics) WriteTo(w io.Writer, st Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP metascreen_dist_workers Worker nodes ever registered.\n")
	p("# TYPE metascreen_dist_workers gauge\n")
	p("metascreen_dist_workers %d\n", st.Workers)

	p("# HELP metascreen_dist_workers_alive Worker nodes currently heartbeating.\n")
	p("# TYPE metascreen_dist_workers_alive gauge\n")
	p("metascreen_dist_workers_alive %d\n", st.WorkersAlive)

	p("# HELP metascreen_dist_worker_joins_total Worker registrations (first joins and revivals).\n")
	p("# TYPE metascreen_dist_worker_joins_total counter\n")
	p("metascreen_dist_worker_joins_total %d\n", m.workersJoined)

	p("# HELP metascreen_dist_worker_deaths_total Workers declared dead (heartbeat timeout or request failures).\n")
	p("# TYPE metascreen_dist_worker_deaths_total counter\n")
	p("metascreen_dist_worker_deaths_total %d\n", m.workerDeaths)

	p("# HELP metascreen_dist_shards_total Ligand shards assigned to workers, re-splits included.\n")
	p("# TYPE metascreen_dist_shards_total counter\n")
	p("metascreen_dist_shards_total %d\n", m.shards)

	p("# HELP metascreen_dist_reshards_total Re-split events after a worker loss.\n")
	p("# TYPE metascreen_dist_reshards_total counter\n")
	p("metascreen_dist_reshards_total %d\n", m.reshards)

	p("# HELP metascreen_dist_ligands_merged_total Per-ligand results merged from worker partials.\n")
	p("# TYPE metascreen_dist_ligands_merged_total counter\n")
	p("metascreen_dist_ligands_merged_total %d\n", m.merged)

	p("# HELP metascreen_dist_poll_errors_total Failed worker dispatch/poll requests.\n")
	p("# TYPE metascreen_dist_poll_errors_total counter\n")
	p("metascreen_dist_poll_errors_total %d\n", m.pollErrors)

	p("# HELP metascreen_dist_request_retries_total Worker requests retried after a transient failure.\n")
	p("# TYPE metascreen_dist_request_retries_total counter\n")
	p("metascreen_dist_request_retries_total %d\n", m.retries)

	p("# HELP metascreen_dist_stale_partials_rejected_total Worker partials dropped by the epoch fence.\n")
	p("# TYPE metascreen_dist_stale_partials_rejected_total counter\n")
	p("metascreen_dist_stale_partials_rejected_total %d\n", m.staleRejected)

	p("# HELP metascreen_dist_shards_fenced_total Shards re-split because their worker revived under a newer epoch.\n")
	p("# TYPE metascreen_dist_shards_fenced_total counter\n")
	p("metascreen_dist_shards_fenced_total %d\n", m.shardsFenced)

	p("# HELP metascreen_dist_shards_stolen_total Straggling shards fenced and re-dispatched to faster workers.\n")
	p("# TYPE metascreen_dist_shards_stolen_total counter\n")
	p("metascreen_dist_shards_stolen_total %d\n", m.shardsStolen)

	p("# HELP metascreen_dist_hedges_issued_total Duplicate dispatches raced against tail shards.\n")
	p("# TYPE metascreen_dist_hedges_issued_total counter\n")
	p("metascreen_dist_hedges_issued_total %d\n", m.hedgesIssued)

	p("# HELP metascreen_dist_hedge_wins_total Hedge twins that finished before their primary.\n")
	p("# TYPE metascreen_dist_hedge_wins_total counter\n")
	p("metascreen_dist_hedge_wins_total %d\n", m.hedgeWins)

	p("# HELP metascreen_dist_quarantines_total Slow-worker quarantine entries.\n")
	p("# TYPE metascreen_dist_quarantines_total counter\n")
	p("metascreen_dist_quarantines_total %d\n", m.quarantines)

	p("# HELP metascreen_dist_workers_quarantined Alive workers currently quarantined.\n")
	p("# TYPE metascreen_dist_workers_quarantined gauge\n")
	p("metascreen_dist_workers_quarantined %d\n", st.WorkersQuarantined)

	p("# HELP metascreen_dist_journal_errors_total Coordinator journal append/compact failures.\n")
	p("# TYPE metascreen_dist_journal_errors_total counter\n")
	p("metascreen_dist_journal_errors_total %d\n", m.journalErrors)

	p("# HELP metascreen_dist_jobs_submitted_total Distributed screens admitted.\n")
	p("# TYPE metascreen_dist_jobs_submitted_total counter\n")
	p("metascreen_dist_jobs_submitted_total %d\n", m.submitted)

	p("# HELP metascreen_dist_jobs_finished_total Distributed screens by terminal state.\n")
	p("# TYPE metascreen_dist_jobs_finished_total counter\n")
	for _, s := range service.TerminalStates {
		p("metascreen_dist_jobs_finished_total{state=%q} %d\n", string(s), m.finished[s])
	}

	p("# HELP metascreen_dist_jobs_running Distributed screens currently executing.\n")
	p("# TYPE metascreen_dist_jobs_running gauge\n")
	p("metascreen_dist_jobs_running %d\n", st.Running)
}
