package dist

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/service"
)

// Straggler-mitigation tests. The stalled node in each scenario is a stub
// HTTP worker, not a real service: it accepts shard submissions, reports
// zero progress on every poll, and records cancels — a worker that is
// perfectly reachable and perfectly useless, which is exactly the fault
// the steal/hedge/quarantine machinery exists to route around. (A dead
// worker is the re-split machinery's job and is tested in dist_test.go.)

// stalledWorker is that stub. It holds every submitted shard at
// completed=0 forever, so its ETA is +Inf from the coordinator's first
// rate observation onward.
type stalledWorker struct {
	srv *httptest.Server

	mu      sync.Mutex
	submits int
	total   int
	cancels []string
}

func startStalledWorker(t *testing.T) *stalledWorker {
	t.Helper()
	sw := &stalledWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/screens", func(w http.ResponseWriter, r *http.Request) {
		var req service.ScreenRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sw.mu.Lock()
		sw.submits++
		sw.total = len(req.Ligands)
		sw.mu.Unlock()
		writeJSON(w, http.StatusAccepted, service.JobView{ID: "stall-1", State: service.StateRunning})
	})
	mux.HandleFunc("GET /v1/screens/{id}/partial", func(w http.ResponseWriter, r *http.Request) {
		sw.mu.Lock()
		total := sw.total
		sw.mu.Unlock()
		writeJSON(w, http.StatusOK, service.PartialView{
			ID: r.PathValue("id"), State: service.StateRunning, Completed: 0, Total: total,
		})
	})
	mux.HandleFunc("DELETE /v1/screens/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw.mu.Lock()
		sw.cancels = append(sw.cancels, r.PathValue("id"))
		sw.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]string{})
	})
	sw.srv = httptest.NewServer(mux)
	t.Cleanup(sw.srv.Close)
	return sw
}

func (sw *stalledWorker) cancelCount() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.cancels)
}

// counterValue reads one Metrics counter through the exposition text, the
// same surface operators scrape — so the test also pins the metric names
// the runbooks grep for.
func expositionCounter(t *testing.T, c *Coordinator, name string) int {
	t.Helper()
	var buf strings.Builder
	c.metrics.WriteTo(&buf, c.Stats())
	for _, line := range strings.Split(buf.String(), "\n") {
		if f := strings.Fields(line); len(f) == 2 && f[0] == name {
			n, err := strconv.Atoi(f[1])
			if err != nil {
				t.Fatalf("unparseable %s value %q", name, f[1])
			}
			return n
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

func workerView(t *testing.T, c *Coordinator, url string) WorkerView {
	t.Helper()
	for _, w := range c.Workers() {
		if w.URL == url {
			return w
		}
	}
	t.Fatalf("worker %s not in membership", url)
	return WorkerView{}
}

// TestStealFromStalledWorker: two workers split a screen; one stalls at
// zero progress while staying perfectly reachable. Once the healthy
// worker finishes its own shard (idle + a reference duration), the
// coordinator must steal the stalled remainder, quarantine the victim,
// best-effort cancel its worker-side job — and still merge the exact
// single-node ranking with every ligand counted once.
func TestStealFromStalledWorker(t *testing.T) {
	stall := startStalledWorker(t)
	healthy := startWorker(t)
	c := startCoordinator(t, Config{HeartbeatTimeout: 400 * time.Millisecond})
	defer beat(t, c, healthy.URL)()
	defer beat(t, c, stall.srv.URL)()

	v, _, err := c.Submit(distRequest, "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("screen ended %s: %s", final.State, final.Error)
	}

	if got := expositionCounter(t, c, "metascreen_dist_shards_stolen_total"); got < 1 {
		t.Error("no shard was stolen from the stalled worker")
	}
	// Every ligand merged exactly once: the merged-set dedup means the
	// counter equals the library size no matter how the steal raced.
	if got := expositionCounter(t, c, "metascreen_dist_ligands_merged_total"); got != distRequest.Library {
		t.Errorf("ligands_merged_total = %d, want exactly %d", got, distRequest.Library)
	}
	stolen := false
	for _, sh := range final.Shards {
		if sh.Stolen {
			stolen = true
		}
	}
	if !stolen {
		t.Error("no shard in the job view is marked stolen")
	}

	want := singleNodeResult(t, distRequest)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("post-steal ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}
	if final.Result.SimulatedSeconds != want.SimulatedSeconds {
		t.Errorf("simulated_seconds %v != single-node %v",
			final.Result.SimulatedSeconds, want.SimulatedSeconds)
	}

	// The victim was quarantined on the spot and shows up in the
	// per-worker diagnostics.
	wv := workerView(t, c, stall.srv.URL)
	if !wv.Quarantined {
		t.Error("stalled worker not quarantined after the steal")
	}
	if wv.StolenFrom < 1 {
		t.Error("stolen_from not counted on the victim")
	}
	if got := expositionCounter(t, c, "metascreen_dist_workers_quarantined"); got < 1 {
		t.Error("workers_quarantined gauge is zero with a quarantined worker alive")
	}

	// The victim's worker-side job gets a best-effort cancel (async).
	deadline := time.Now().Add(5 * time.Second)
	for stall.cancelCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled worker never received a cancel for its fenced shard")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHedgeTailRace: with stealing disabled and HedgeTail=1, the last
// unfinished shard — held by the stalled worker — is twinned onto the
// idle healthy worker. The twin wins the race, the loser is fenced and
// cancelled, and the ranking still matches the single-node run.
func TestHedgeTailRace(t *testing.T) {
	stall := startStalledWorker(t)
	healthy := startWorker(t)
	c := startCoordinator(t, Config{
		HeartbeatTimeout: 400 * time.Millisecond,
		StealThreshold:   -1, // isolate the hedge path
		HedgeTail:        1,
	})
	defer beat(t, c, healthy.URL)()
	defer beat(t, c, stall.srv.URL)()

	v, _, err := c.Submit(distRequest, "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, v.ID, 90*time.Second, func(v JobView) bool { return v.State.Terminal() })
	if final.State != service.StateDone {
		t.Fatalf("screen ended %s: %s", final.State, final.Error)
	}

	if got := expositionCounter(t, c, "metascreen_dist_hedges_issued_total"); got < 1 {
		t.Error("tail shard was never hedged")
	}
	if got := expositionCounter(t, c, "metascreen_dist_hedge_wins_total"); got < 1 {
		t.Error("the healthy twin never won the hedge race")
	}
	if got := expositionCounter(t, c, "metascreen_dist_ligands_merged_total"); got != distRequest.Library {
		t.Errorf("ligands_merged_total = %d, want exactly %d", got, distRequest.Library)
	}
	hedged := false
	for _, sh := range final.Shards {
		if sh.HedgeOf != "" {
			hedged = true
		}
	}
	if !hedged {
		t.Error("no shard in the job view carries a hedge_of link")
	}

	want := singleNodeResult(t, distRequest)
	if got, exp := rankingJSON(t, final.Result.Ranking), rankingJSON(t, want.Ranking); got != exp {
		t.Fatalf("post-hedge ranking differs from single-node:\n got %s\nwant %s", got, exp)
	}

	// The losing leg's worker-side job is cancelled, best effort.
	deadline := time.Now().Add(5 * time.Second)
	for stall.cancelCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("losing hedge leg never received a cancel")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStealNoopOnSingleWorker: the regression guard from the issue — a
// one-worker cluster has no reference ETA and no idle thief, so the
// straggler pass must never fence the only shard making (or even not
// making) progress.
func TestStealNoopOnSingleWorker(t *testing.T) {
	stall := startStalledWorker(t)
	c := startCoordinator(t, Config{HeartbeatTimeout: 200 * time.Millisecond})
	defer beat(t, c, stall.srv.URL)()

	v, _, err := c.Submit(distRequest, "")
	if err != nil {
		t.Fatal(err)
	}
	// Outwait the grace period by a wide margin: many straggler passes run
	// against the stalled shard and all of them must decline.
	waitJob(t, c, v.ID, 30*time.Second, func(v JobView) bool { return v.State == service.StateRunning })
	time.Sleep(time.Second)

	if got := expositionCounter(t, c, "metascreen_dist_shards_stolen_total"); got != 0 {
		t.Errorf("shards_stolen_total = %d on a single-worker cluster, want 0", got)
	}
	if got := expositionCounter(t, c, "metascreen_dist_hedges_issued_total"); got != 0 {
		t.Errorf("hedges_issued_total = %d with no idle workers, want 0", got)
	}
	if stall.cancelCount() != 0 {
		t.Error("only worker's shard was cancelled out from under it")
	}
	if got, _ := c.Get(v.ID); got.State != service.StateRunning {
		t.Fatalf("job left running state: %s (%s)", got.State, got.Error)
	}
	if _, err := c.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID, 30*time.Second, func(v JobView) bool { return v.State.Terminal() })
}

// TestQuarantineAssessAndRecover drives the rate-based brownout directly:
// a worker persistently observed far below the fleet median is demoted
// after quarantineStreak assessments — not one — and recovers on its own
// once its rate clears the exit bar.
func TestQuarantineAssessAndRecover(t *testing.T) {
	c := startCoordinator(t, Config{}) // PollInterval 20ms, QuarantineFactor 4
	fast, slow := "http://fast:1", "http://slow:2"
	if _, err := c.Register(fast); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(slow); err != nil {
		t.Fatal(err)
	}

	observe := func(url string, rate float64) {
		c.mu.Lock()
		c.workers[url].rate.Observe(rate)
		c.mu.Unlock()
	}
	assess := func() {
		// Keep both workers heartbeating and outwait the assessment rate
		// limit (one pass per PollInterval).
		time.Sleep(25 * time.Millisecond)
		c.Register(fast)
		c.Register(slow)
		c.reapWorkers()
	}

	// One bad sample must not quarantine: hysteresis needs a streak.
	observe(fast, 10)
	observe(slow, 0.1)
	assess()
	if workerView(t, c, slow).Quarantined {
		t.Fatal("one slow sample quarantined the worker — no hysteresis")
	}
	for i := 0; i < quarantineStreak; i++ {
		observe(fast, 10)
		observe(slow, 0.1)
		assess()
	}
	if !workerView(t, c, slow).Quarantined {
		t.Fatal("persistently slow worker never quarantined")
	}
	if workerView(t, c, fast).Quarantined {
		t.Fatal("healthy worker quarantined alongside the straggler")
	}
	if got := expositionCounter(t, c, "metascreen_dist_quarantines_total"); got != 1 {
		t.Errorf("quarantines_total = %d, want 1", got)
	}

	// Recovery: rate climbs back above twice the entry bar; the EWMA takes
	// a few samples to catch up, so poll rather than count.
	deadline := time.Now().Add(5 * time.Second)
	for workerView(t, c, slow).Quarantined {
		if time.Now().After(deadline) {
			t.Fatal("recovered worker never left quarantine")
		}
		observe(fast, 10)
		observe(slow, 100)
		assess()
	}
	if got := expositionCounter(t, c, "metascreen_dist_workers_quarantined"); got != 0 {
		t.Errorf("workers_quarantined gauge = %d after recovery, want 0", got)
	}
}

// TestSnapshotExposesWorkerRates: /debug/snapshot bundles stats, the
// per-worker rate/quarantine diagnostics, and the job list in one GET —
// what an operator (or the e2e straggler drill) reads to see who is slow.
func TestSnapshotExposesWorkerRates(t *testing.T) {
	c := startCoordinator(t, Config{})
	if _, err := c.Register("http://w:1"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.workers["http://w:1"].rate.Observe(7.5)
	c.workers["http://w:1"].selfRate = 8.25
	c.mu.Unlock()

	api := httptest.NewServer(c.Handler())
	defer api.Close()
	resp, err := api.Client().Get(api.URL + "/debug/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/snapshot: status %d", resp.StatusCode)
	}
	var snap DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Workers != 1 {
		t.Errorf("snapshot stats report %d workers, want 1", snap.Stats.Workers)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].ThroughputLPS != 7.5 || snap.Workers[0].SelfRateLPS != 8.25 {
		t.Errorf("snapshot workers = %+v, want one with rate 7.5 / self-rate 8.25", snap.Workers)
	}
}
