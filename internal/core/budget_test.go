package core

import (
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
)

// budgetProblem is a modeled workload big enough that scheduling matters.
func budgetProblem(t *testing.T) *Problem {
	t.Helper()
	rec := molecule.SyntheticProtein("rec", 3000, 61)
	lig := molecule.SyntheticLigand("lig", 20, 62)
	p, err := NewProblem(rec, lig, surface.Options{MaxSpots: 8}, forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func budgetAlg(t *testing.T) metaheuristic.Algorithm {
	t.Helper()
	alg, err := metaheuristic.NewScatterSearch("budget-ss", metaheuristic.Params{
		PopulationPerSpot: 256,
		SelectFraction:    1,
		ImproveFraction:   0.5,
		ImproveMoves:      4,
		Generations:       400,
	})
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestRunHistoryMonotone(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Generations {
		t.Fatalf("history has %d points for %d generations", len(res.History), res.Generations)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Best > res.History[i-1].Best {
			t.Errorf("best worsened at generation %d: %v -> %v",
				i+1, res.History[i-1].Best, res.History[i].Best)
		}
		if res.History[i].SimSeconds < res.History[i-1].SimSeconds {
			t.Errorf("simulated time went backwards at generation %d", i+1)
		}
		if res.History[i].Generation != i+1 {
			t.Errorf("generation numbering broken at %d", i)
		}
	}
	if res.DeadlineHit {
		t.Error("unbudgeted run reports a deadline hit")
	}
	// The final history point matches the result.
	last := res.History[len(res.History)-1]
	if last.Best != res.Best.Score {
		t.Errorf("history end %v != best %v", last.Best, res.Best.Score)
	}
}

func TestRunBudgetStopsAtDeadline(t *testing.T) {
	p := budgetProblem(t)
	b, err := NewPoolBackend(p, PoolConfig{
		Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
		Mode:  sched.Homogeneous,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First find the unbudgeted time.
	full, err := Run(p, budgetAlg(t), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.SimulatedSeconds / 4

	b2, err := NewPoolBackend(p, PoolConfig{
		Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
		Mode:  sched.Homogeneous,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBudget(p, budgetAlg(t), b2, 1, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineHit {
		t.Error("quarter-budget run did not hit the deadline")
	}
	if res.Generations >= full.Generations {
		t.Errorf("budgeted run did %d generations, full run %d", res.Generations, full.Generations)
	}
	// The run stops within one generation of the budget.
	if res.SimulatedSeconds > budget*1.1+0.01 {
		t.Errorf("run overshot the budget: %v > %v", res.SimulatedSeconds, budget)
	}
}

func TestRunBudgetRejectsNonPositive(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBudget(p, smallAlg(t), b, 1, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestHeterogeneousBuysQualityWithinDeadline(t *testing.T) {
	// The paper's abstract: cooperative scheduling "optimizes the quality
	// of the solution and the overall performance". Same deadline, same
	// algorithm: the heterogeneous split completes more generations and
	// therefore reaches a better (surrogate) solution.
	p := budgetProblem(t)
	run := func(mode sched.Mode) *Result {
		b, err := NewPoolBackend(p, PoolConfig{
			Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
			Mode:  mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBudget(p, budgetAlg(t), b, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hom := run(sched.Homogeneous)
	het := run(sched.Heterogeneous)
	if het.Generations <= hom.Generations {
		t.Errorf("heterogeneous did %d generations, homogeneous %d (same deadline)",
			het.Generations, hom.Generations)
	}
	if het.Best.Score > hom.Best.Score {
		t.Errorf("heterogeneous quality %v worse than homogeneous %v within the deadline",
			het.Best.Score, hom.Best.Score)
	}
}
