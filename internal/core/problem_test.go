package core

import (
	"testing"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func TestNewProblem(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 800, 41)
	lig := molecule.SyntheticLigand("lig", 15, 42)
	p, err := NewProblem(rec, lig, surface.Options{MaxSpots: 5}, forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Spots) != 5 {
		t.Errorf("spots = %d", len(p.Spots))
	}
	if p.PairsPerConformation() != 800*15 {
		t.Errorf("pairs = %d", p.PairsPerConformation())
	}
	// Ligand is centered.
	if p.Ligand.Centroid().Norm() > 1e-9 {
		t.Errorf("ligand centroid = %v", p.Ligand.Centroid())
	}
	if p.LigandRadius() <= 0 {
		t.Error("ligand radius not positive")
	}
	if len(p.LigandPositions()) != 15 {
		t.Error("ligand positions length wrong")
	}
}

func TestNewProblemRejectsInvalidMolecules(t *testing.T) {
	lig := molecule.SyntheticLigand("lig", 15, 42)
	if _, err := NewProblem(&molecule.Molecule{Name: "empty"}, lig, surface.Options{}, forcefield.Options{}); err == nil {
		t.Error("empty receptor accepted")
	}
	rec := molecule.SyntheticProtein("rec", 400, 41)
	if _, err := NewProblem(rec, &molecule.Molecule{Name: "empty"}, surface.Options{}, forcefield.Options{}); err == nil {
		t.Error("empty ligand accepted")
	}
}

func TestNewScorerKinds(t *testing.T) {
	p := smallProblem(t)
	for _, kind := range []string{"direct", "tiled", "celllist", ""} {
		s, err := p.NewScorer(kind)
		if err != nil {
			t.Errorf("scorer %q: %v", kind, err)
		}
		if s == nil {
			t.Errorf("scorer %q is nil", kind)
		}
	}
	if _, err := p.NewScorer("nope"); err == nil {
		t.Error("unknown scorer accepted")
	}
}

func TestDatasets(t *testing.T) {
	bsm := Dataset2BSM()
	if bsm.Receptor.NumAtoms() != 3264 || bsm.Ligand.NumAtoms() != 45 {
		t.Errorf("2BSM sizes: %d/%d", bsm.Receptor.NumAtoms(), bsm.Ligand.NumAtoms())
	}
	bxg := Dataset2BXG()
	if bxg.Receptor.NumAtoms() != 8609 || bxg.Ligand.NumAtoms() != 32 {
		t.Errorf("2BXG sizes: %d/%d", bxg.Receptor.NumAtoms(), bxg.Ligand.NumAtoms())
	}
	if _, err := DatasetByName("2BSM"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("1ABC"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNewProblemFromDatasetSpotScaling(t *testing.T) {
	p, err := NewProblemFromDataset(Dataset2BSM(), forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Default spot detection: receptorAtoms/100 = 32 for 2BSM.
	if len(p.Spots) != 32 {
		t.Errorf("2BSM spots = %d, want 32", len(p.Spots))
	}
}
