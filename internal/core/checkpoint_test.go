package core

import (
	"bytes"
	"testing"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func checkpointFixtures() (*molecule.Molecule, []*molecule.Molecule) {
	rec := molecule.SyntheticProtein("rec", 400, 71)
	lib := []*molecule.Molecule{
		molecule.SyntheticLigand("cp-a", 8, 1),
		molecule.SyntheticLigand("cp-b", 12, 2),
		molecule.SyntheticLigand("cp-c", 10, 3),
	}
	return rec, lib
}

func TestScreenResumableMatchesScreen(t *testing.T) {
	rec, lib := checkpointFixtures()
	plain, err := Screen(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5)
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{}
	resumable, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Ranking {
		if plain.Ranking[i].Ligand.Name != resumable.Ranking[i].Ligand.Name ||
			plain.Ranking[i].Result.Best.Score != resumable.Ranking[i].Result.Best.Score {
			t.Errorf("rank %d differs between Screen and ScreenResumable", i)
		}
	}
	if len(cp.Ligands) != 3 {
		t.Errorf("checkpoint recorded %d ligands", len(cp.Ligands))
	}
}

func TestScreenResumableSkipsCompleted(t *testing.T) {
	rec, lib := checkpointFixtures()
	// First pass: only the first two ligands.
	cp := &Checkpoint{}
	if _, err := ScreenResumable(rec, lib[:2], surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, cp); err != nil {
		t.Fatal(err)
	}
	firstA := cp.Ligands["cp-a"]

	// Save and reload the checkpoint (exercise the JSON round trip).
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Ligands) != 2 || loaded.Seed != 5 {
		t.Fatalf("loaded checkpoint = %+v", loaded)
	}

	// Resume over the full library: the first two come from the
	// checkpoint (identical results), only the third runs.
	res, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 3 {
		t.Fatalf("%d entries after resume", len(res.Ranking))
	}
	if loaded.Ligands["cp-a"].Best.Score != firstA.Best.Score {
		t.Error("resume recomputed a completed ligand differently")
	}
	if _, ok := loaded.Ligands["cp-c"]; !ok {
		t.Error("resumed run did not record the new ligand")
	}
}

func TestScreenResumableValidation(t *testing.T) {
	rec, lib := checkpointFixtures()
	if _, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	cp := &Checkpoint{Seed: 99, Ligands: map[string]LigandRecord{}}
	if _, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, cp); err == nil {
		t.Error("seed mismatch accepted")
	}
	dup := []*molecule.Molecule{lib[0], lib[0]}
	if _, err := ScreenResumable(rec, dup, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, &Checkpoint{}); err == nil {
		t.Error("duplicate ligand names accepted")
	}
}

func TestPoseRecordRoundTrip(t *testing.T) {
	p := smallProblem(t)
	p.EnableFlexibility()
	b, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := poseRecord(res.Best)
	back := rec.Conformation()
	if back.Score != res.Best.Score || back.Translation != res.Best.Translation ||
		back.Orientation != res.Best.Orientation || back.Spot != res.Best.Spot {
		t.Errorf("pose round trip: %+v vs %+v", back, res.Best)
	}
	if len(back.Torsions) != len(res.Best.Torsions) {
		t.Error("torsions lost in round trip")
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	cp, err := LoadCheckpoint(bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Ligands == nil {
		t.Error("empty checkpoint has nil map")
	}
}
