package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func checkpointFixtures() (*molecule.Molecule, []*molecule.Molecule) {
	rec := molecule.SyntheticProtein("rec", 400, 71)
	lib := []*molecule.Molecule{
		molecule.SyntheticLigand("cp-a", 8, 1),
		molecule.SyntheticLigand("cp-b", 12, 2),
		molecule.SyntheticLigand("cp-c", 10, 3),
	}
	return rec, lib
}

func TestScreenResumableMatchesScreen(t *testing.T) {
	rec, lib := checkpointFixtures()
	plain, err := Screen(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5)
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{}
	resumable, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Ranking {
		if plain.Ranking[i].Ligand.Name != resumable.Ranking[i].Ligand.Name ||
			plain.Ranking[i].Result.Best.Score != resumable.Ranking[i].Result.Best.Score {
			t.Errorf("rank %d differs between Screen and ScreenResumable", i)
		}
	}
	if len(cp.Ligands) != 3 {
		t.Errorf("checkpoint recorded %d ligands", len(cp.Ligands))
	}
}

func TestScreenResumableSkipsCompleted(t *testing.T) {
	rec, lib := checkpointFixtures()
	// First pass: only the first two ligands.
	cp := &Checkpoint{}
	if _, err := ScreenResumable(rec, lib[:2], surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, cp); err != nil {
		t.Fatal(err)
	}
	firstA := cp.Ligands["cp-a"]

	// Save and reload the checkpoint (exercise the JSON round trip).
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Ligands) != 2 || loaded.Seed != 5 {
		t.Fatalf("loaded checkpoint = %+v", loaded)
	}

	// Resume over the full library: the first two come from the
	// checkpoint (identical results), only the third runs.
	res, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 3 {
		t.Fatalf("%d entries after resume", len(res.Ranking))
	}
	if loaded.Ligands["cp-a"].Best.Score != firstA.Best.Score {
		t.Error("resume recomputed a completed ligand differently")
	}
	if _, ok := loaded.Ligands["cp-c"]; !ok {
		t.Error("resumed run did not record the new ligand")
	}
}

func TestScreenResumableValidation(t *testing.T) {
	rec, lib := checkpointFixtures()
	if _, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	cp := &Checkpoint{Seed: 99, Ligands: map[string]LigandRecord{}}
	if _, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, cp); err == nil {
		t.Error("seed mismatch accepted")
	}
	dup := []*molecule.Molecule{lib[0], lib[0]}
	if _, err := ScreenResumable(rec, dup, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, &Checkpoint{}); err == nil {
		t.Error("duplicate ligand names accepted")
	}
}

// TestScreenResumableCtxMatchesScreenCtx: the parallel resumable screen is
// byte-identical to the plain parallel screen, whether it starts cold or
// resumes halfway — the recovery-layer determinism contract.
func TestScreenResumableCtxMatchesScreenCtx(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 400, 71)
	lib := SyntheticLibrary(6)
	plain, err := ScreenCtx(context.Background(), rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, res *ScreenResult) {
		t.Helper()
		if res.SimulatedSeconds != plain.SimulatedSeconds || res.Evaluations != plain.Evaluations {
			t.Errorf("%s: work totals (%g, %d) differ from ScreenCtx (%g, %d)", name,
				res.SimulatedSeconds, res.Evaluations, plain.SimulatedSeconds, plain.Evaluations)
		}
		for i := range plain.Ranking {
			p, r := plain.Ranking[i], res.Ranking[i]
			if p.Ligand.Name != r.Ligand.Name || p.Result.Best.Score != r.Result.Best.Score ||
				p.Result.Best.Translation != r.Result.Best.Translation {
				t.Errorf("%s: rank %d differs from ScreenCtx", name, i)
			}
		}
	}

	// Cold start, parallel.
	cold := &Checkpoint{}
	res, err := ScreenResumableCtx(context.Background(), rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, 4, cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("cold", res)
	if len(cold.Ligands) != len(lib) {
		t.Errorf("cold checkpoint holds %d ligands, want %d", len(cold.Ligands), len(lib))
	}

	// Resume from a half-full checkpoint (as if a crash hit mid-screen).
	half := &Checkpoint{Seed: 5, Ligands: map[string]LigandRecord{}}
	for _, name := range []string{lib[1].Name, lib[4].Name, lib[5].Name} {
		half.Ligands[name] = cold.Ligands[name]
	}
	res, err = ScreenResumableCtx(context.Background(), rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, 2, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("resumed", res)

	// Fully checkpointed: nothing runs, the ranking is rebuilt from records.
	res, err = ScreenResumableCtx(context.Background(), rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(),
		func(p *Problem) (Backend, error) { t.Fatal("backend built for a completed screen"); return nil, nil },
		5, 2, cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("replayed", res)
}

// TestScreenResumableCtxCallback: the checkpoint hook sees every newly
// completed ligand exactly once with a monotonically growing count, and a
// hook error aborts the screen while keeping the checkpoint.
func TestScreenResumableCtxCallback(t *testing.T) {
	rec, lib := checkpointFixtures()
	var counts []int
	cp := &Checkpoint{}
	_, err := ScreenResumableCtx(context.Background(), rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, 2, cp,
		func(cp *Checkpoint, newly int) error {
			if len(cp.Ligands) != newly {
				t.Errorf("hook sees %d recorded ligands at newly=%d", len(cp.Ligands), newly)
			}
			counts = append(counts, newly)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(lib) {
		t.Fatalf("hook called %d times, want %d", len(counts), len(lib))
	}
	for i, n := range counts {
		if n != i+1 {
			t.Errorf("hook call %d reported newly=%d", i, n)
		}
	}

	// A failing hook aborts; completed work stays checkpointed.
	cp2 := &Checkpoint{}
	_, err = ScreenResumableCtx(context.Background(), rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, 1, cp2,
		func(cp *Checkpoint, newly int) error {
			if newly == 2 {
				return errors.New("disk full")
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	if len(cp2.Ligands) != 2 {
		t.Errorf("checkpoint holds %d ligands after aborted hook, want 2", len(cp2.Ligands))
	}
}

func TestScreenResumableCtxCancelled(t *testing.T) {
	rec, lib := checkpointFixtures()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScreenResumableCtx(ctx, rec, lib, surface.Options{MaxSpots: 2},
		forcefield.Options{}, screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 5, 2,
		&Checkpoint{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPoseRecordRoundTrip(t *testing.T) {
	p := smallProblem(t)
	p.EnableFlexibility()
	b, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := poseRecord(res.Best)
	back := rec.Conformation()
	if back.Score != res.Best.Score || back.Translation != res.Best.Translation ||
		back.Orientation != res.Best.Orientation || back.Spot != res.Best.Spot {
		t.Errorf("pose round trip: %+v vs %+v", back, res.Best)
	}
	if len(back.Torsions) != len(res.Best.Torsions) {
		t.Error("torsions lost in round trip")
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	cp, err := LoadCheckpoint(bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Ligands == nil {
		t.Error("empty checkpoint has nil map")
	}
}
