package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/trace"
)

// tracedScreen runs a small heterogeneous pool screen with a trace
// recorder threaded through the context and returns the recorder.
func tracedScreen(t *testing.T, seed uint64, workers int) *trace.Recorder {
	t.Helper()
	rec := molecule.SyntheticProtein("rec", 300, 41)
	library := []*molecule.Molecule{
		molecule.SyntheticLigand("lig-a", 10, 1),
		molecule.SyntheticLigand("lig-b", 18, 2),
		molecule.SyntheticLigand("lig-c", 25, 3),
	}
	r := &trace.Recorder{}
	ctx := trace.NewContext(context.Background(), r)
	_, err := ScreenCtx(ctx, rec, library, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), PoolBackendFactory(PoolConfig{
			Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
			Mode:  sched.Heterogeneous,
		}), seed, workers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// spanTree flattens a recorder into a canonical, wall-clock-independent
// form: one line per span with track, name, category, args, and — for
// sim-clock spans only, where the modeled timeline is contractually
// deterministic — the exact start/end times. Wall-clock spans keep their
// structure but drop their (real-time, scheduling-dependent) timings.
func spanTree(r *trace.Recorder) []string {
	spans := r.Spans()
	lines := make([]string, 0, len(spans))
	for _, s := range spans {
		var args []string
		for k, v := range s.Args {
			args = append(args, k+"="+v)
		}
		sort.Strings(args)
		line := fmt.Sprintf("%s|%s|%s|%s|%s", s.Track, s.Name, s.Cat, s.Clock, strings.Join(args, ","))
		if s.Clock == trace.ClockSim {
			line += fmt.Sprintf("|%.12g..%.12g", s.Start, s.End)
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return lines
}

func diffTrees(t *testing.T, a, b []string, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d spans vs %d spans", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: span %d differs:\n  %s\n  %s", what, i, a[i], b[i])
		}
	}
}

// TestTraceDeterministicAcrossRuns: two screens at equal seed must record
// identical span trees — same tracks, names, categories, args, and
// identical simulated timelines. This is the trace-level version of the
// repo's byte-identical-ranking contract.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	first := spanTree(tracedScreen(t, 9, 2))
	second := spanTree(tracedScreen(t, 9, 2))
	if len(first) == 0 {
		t.Fatal("no spans recorded")
	}
	diffTrees(t, first, second, "equal-seed runs")

	// The tree must cover the ligand, generation and device levels (job
	// and screen spans are added by the service layer above Screen).
	cats := map[string]int{}
	for _, s := range tracedScreen(t, 9, 2).Spans() {
		cats[s.Cat]++
	}
	for _, cat := range []string{trace.CatLigand, trace.CatGeneration, trace.CatDevice} {
		if cats[cat] == 0 {
			t.Errorf("span tree has no %q spans (got %v)", cat, cats)
		}
	}
}

// TestTraceDeterministicAcrossWorkerCounts: the span tree is independent
// of ligand-level parallelism, exactly like the ranking. Per-ligand
// simulated timelines live on their own prefixed tracks, so concurrent
// ligands cannot interleave into each other's timelines.
func TestTraceDeterministicAcrossWorkerCounts(t *testing.T) {
	sequential := spanTree(tracedScreen(t, 9, 1))
	parallel := spanTree(tracedScreen(t, 9, 3))
	diffTrees(t, sequential, parallel, "workers=1 vs workers=3")
}
