package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/trace"
)

// SpotResult is the outcome at one surface spot.
type SpotResult struct {
	// Spot is the region.
	Spot surface.Spot
	// Best is the best conformation found there.
	Best conformation.Conformation
}

// Result is the outcome of one screening run.
type Result struct {
	// Algorithm names the metaheuristic.
	Algorithm string
	// Backend names the compute configuration.
	Backend string
	// Spots holds the per-spot outcomes in spot order.
	Spots []SpotResult
	// Best is the overall best conformation (the paper: "the final
	// solution is chosen from all independent executions").
	Best conformation.Conformation
	// SimulatedSeconds is the modeled execution time, the quantity the
	// paper's Tables 6-9 report.
	SimulatedSeconds float64
	// WallSeconds is the real time the run took.
	WallSeconds float64
	// Evaluations counts scoring-function evaluations (performed or
	// modeled).
	Evaluations int64
	// Generations is the number of template iterations executed.
	Generations int
	// EnergyJoules is the modeled energy of the run (0 when the backend
	// does not model energy).
	EnergyJoules float64
	// History records convergence: one point per generation.
	History []GenPoint
	// DeadlineHit reports whether a time-budgeted run stopped at its
	// budget rather than at the metaheuristic's own End condition.
	DeadlineHit bool
	// DeviceFaults counts device fault events (transient, permanent,
	// hang) absorbed or detected during the run.
	DeviceFaults int64
	// SchedRetries counts transient-fault operation retries.
	SchedRetries int64
	// Resplits counts mid-run redistributions of a dead device's work.
	Resplits int64
	// WarmupFactors holds the warm-up Percent factors (equation 1 of the
	// paper) per kernel kind, when the backend ran a heterogeneous
	// warm-up; nil otherwise. Exposed through the service's debug
	// snapshot.
	WarmupFactors map[string][]float64
}

// GenPoint is one generation's convergence sample.
type GenPoint struct {
	// Generation is the 1-based generation index.
	Generation int
	// SimSeconds is the simulated time when the generation completed.
	SimSeconds float64
	// Best is the best score found so far across all spots.
	Best float64
}

// improveTarget names one conformation selected for local search: spot
// index and conformation index within that spot's offspring.
type improveTarget struct {
	spot, conf int
}

// energyReporter is implemented by backends that model energy.
type energyReporter interface {
	EnergyJoules() float64
}

// errReporter is implemented by backends that can fail unrecoverably
// (e.g. every simulated device lost); the engine checks it each
// generation and aborts the run when it reports an error.
type errReporter interface {
	Err() error
}

// faultReporter is implemented by backends that track device faults and
// recovery actions.
type faultReporter interface {
	FaultTotals() (faults, retries, resplits int64)
}

// warmupReporter is implemented by backends that run the paper's warm-up
// phase and can report the measured Percent factors per kernel kind.
type warmupReporter interface {
	WarmupFactors() map[string][]float64
}

// backendErr returns the backend's latched failure, if any.
func backendErr(backend Backend) error {
	if er, ok := backend.(errReporter); ok {
		return er.Err()
	}
	return nil
}

// Run executes one virtual-screening run: the metaheuristic optimizes all
// of the problem's spots simultaneously, with per-generation evaluation
// batched onto the backend. The same seed, problem, algorithm and backend
// configuration always produce the same result.
func Run(p *Problem, alg metaheuristic.Algorithm, backend Backend, seed uint64) (*Result, error) {
	return run(context.Background(), p, alg, backend, seed, 0)
}

// RunCtx is Run with cancellation: the run checks ctx between generations
// and returns ctx's error as soon as it is cancelled or its deadline
// passes, so long screening runs abort promptly. A cancelled run returns
// no partial Result.
func RunCtx(ctx context.Context, p *Problem, alg metaheuristic.Algorithm, backend Backend, seed uint64) (*Result, error) {
	return run(ctx, p, alg, backend, seed, 0)
}

// RunBudget executes a run under a simulated-time deadline (the paper:
// "stochastic behaviors where real-time constraints must be fulfilled"):
// the run ends at the metaheuristic's End condition or as soon as the
// backend's simulated clock passes budgetSeconds, whichever comes first.
// Faster scheduling therefore buys more generations — and better
// solutions — within the same deadline.
func RunBudget(p *Problem, alg metaheuristic.Algorithm, backend Backend, seed uint64, budgetSeconds float64) (*Result, error) {
	return RunBudgetCtx(context.Background(), p, alg, backend, seed, budgetSeconds)
}

// RunBudgetCtx is RunBudget with cancellation; the simulated-time budget
// and ctx's real-time deadline are independent stop conditions.
func RunBudgetCtx(ctx context.Context, p *Problem, alg metaheuristic.Algorithm, backend Backend, seed uint64, budgetSeconds float64) (*Result, error) {
	if budgetSeconds <= 0 {
		return nil, fmt.Errorf("core: budget %g seconds", budgetSeconds)
	}
	return run(ctx, p, alg, backend, seed, budgetSeconds)
}

func run(ctx context.Context, p *Problem, alg metaheuristic.Algorithm, backend Backend, seed uint64, budget float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(p.Spots) == 0 {
		return nil, fmt.Errorf("core: problem has no spots")
	}
	if err := alg.Params().Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	rec := trace.FromContext(ctx)
	logger := obs.FromContext(ctx)
	root := rng.New(seed)
	ligandRadius := p.LigandRadius()

	// Per-spot state with order-independent random streams.
	states := make([]metaheuristic.SpotState, len(p.Spots))
	samplers := make([]*conformation.Sampler, len(p.Spots))
	improveRNGs := make([]*rng.Source, len(p.Spots))
	for i, s := range p.Spots {
		samplers[i] = conformation.NewSampler(s, ligandRadius)
		samplers[i].SetTorsions(p.TorsionSet())
		ctx := &metaheuristic.SpotContext{
			Spot:    s,
			Sampler: samplers[i],
			RNG:     root.Split(uint64(i)),
		}
		states[i] = alg.NewSpotState(ctx)
		improveRNGs[i] = root.Split(1_000_000 + uint64(i))
	}

	// Initialize: seed and evaluate the initial populations in one batch.
	seeds := make([]metaheuristic.Population, len(states))
	var batch []*conformation.Conformation
	for i, st := range states {
		seeds[i] = st.Seed()
		for j := range seeds[i] {
			batch = append(batch, &seeds[i][j])
		}
	}
	backend.ScoreBatch(batch)
	if err := backendErr(backend); err != nil {
		return nil, fmt.Errorf("core: backend failed during initialization: %w", err)
	}
	for i, st := range states {
		st.Begin(seeds[i])
	}

	params := alg.Params()
	scale := params.MoveScale
	if scale == (conformation.MoveScale{}) {
		scale = conformation.DefaultMoveScale
	}

	// bestSoFar tracks convergence across generations.
	bestSoFar := func() float64 {
		best := conformation.Conformation{Score: conformation.Unscored}
		for _, st := range states {
			if b := st.Best(); b.Better(best) {
				best = b
			}
		}
		return best.Score
	}

	var history []GenPoint
	deadlineHit := false
	gens := 0
	// Per-generation work lists, allocated once and reused: steady-state
	// generations must not allocate on the host side.
	scoms := make([]metaheuristic.Population, len(states))
	var (
		toScore  []*conformation.Conformation
		items    []ImproveItem
		itemRNGs []rng.Source
		targets  []improveTarget
	)
	for gen := 0; !states[0].Done(gen); gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if budget > 0 && backend.SimTime() >= budget {
			deadlineHit = true
			break
		}
		gens++
		genStart := backend.SimTime()
		// Select + Combine on the host, per spot.
		toScore = toScore[:0]
		popTotal := 0
		for i, st := range states {
			scoms[i] = st.Propose()
			popTotal += len(scoms[i])
			for j := range scoms[i] {
				if !scoms[i][j].Evaluated() {
					toScore = append(toScore, &scoms[i][j])
				}
			}
		}
		// Scoring kernel over all spots' offspring.
		backend.ScoreBatch(toScore)

		// Improve kernel over the selected fraction.
		if params.ImproveMoves > 0 {
			targets = targets[:0]
			for i, st := range states {
				for _, ti := range st.ImproveTargets(scoms[i]) {
					targets = append(targets, improveTarget{spot: i, conf: ti})
				}
			}
			// The items hold pointers into itemRNGs, so size it up front
			// (growing it mid-build would strand pointers in the old
			// backing array).
			if cap(itemRNGs) < len(targets) {
				itemRNGs = make([]rng.Source, len(targets))
			}
			itemRNGs = itemRNGs[:len(targets)]
			items = items[:0]
			for k, tg := range targets {
				// Stream per (generation, conformation): local search is
				// reproducible under any parallel order.
				improveRNGs[tg.spot].SplitInto(uint64(gen)<<20|uint64(tg.conf), &itemRNGs[k])
				items = append(items, ImproveItem{
					Conf:    &scoms[tg.spot][tg.conf],
					Sampler: samplers[tg.spot],
					RNG:     &itemRNGs[k],
				})
			}
			backend.ImproveBatch(items, params.ImproveMoves, scale)
		}

		// Include on the host, per spot.
		for i, st := range states {
			st.Integrate(scoms[i])
		}
		backend.HostOps(popTotal)
		if err := backendErr(backend); err != nil {
			return nil, fmt.Errorf("core: backend failed at generation %d: %w", gens, err)
		}
		history = append(history, GenPoint{
			Generation: gens,
			SimSeconds: backend.SimTime(),
			Best:       bestSoFar(),
		})
		if rec != nil {
			rec.AddSpan(trace.Span{
				Track: "generations",
				Name:  "generation " + strconv.Itoa(gens),
				Cat:   trace.CatGeneration,
				Clock: trace.ClockSim,
				Start: genStart,
				End:   backend.SimTime(),
				Args:  map[string]string{"generation": strconv.Itoa(gens)},
			})
		}
	}

	// Gather results; the overall best is the winner across spots.
	res := &Result{
		Algorithm:        alg.Name(),
		Backend:          backend.Name(),
		SimulatedSeconds: backend.SimTime(),
		Evaluations:      backend.Evaluations(),
		Generations:      gens,
		History:          history,
		DeadlineHit:      deadlineHit,
		Best:             conformation.Conformation{Score: conformation.Unscored},
	}
	for i, st := range states {
		best := st.Best()
		res.Spots = append(res.Spots, SpotResult{Spot: p.Spots[i], Best: best})
		if best.Better(res.Best) {
			res.Best = best
		}
	}
	if er, ok := backend.(energyReporter); ok {
		res.EnergyJoules = er.EnergyJoules()
	}
	if fr, ok := backend.(faultReporter); ok {
		res.DeviceFaults, res.SchedRetries, res.Resplits = fr.FaultTotals()
	}
	if wr, ok := backend.(warmupReporter); ok {
		res.WarmupFactors = wr.WarmupFactors()
	}
	res.WallSeconds = time.Since(start).Seconds()
	logger.Debug("run finished",
		"algorithm", res.Algorithm,
		"backend", res.Backend,
		"generations", res.Generations,
		"sim_seconds", res.SimulatedSeconds,
		"best", res.Best.Score,
		"deadline_hit", res.DeadlineHit,
	)
	return res, nil
}
