package core

import (
	"fmt"
	"sync/atomic"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/hostpar"
	"github.com/metascreen/metascreen/internal/vec"
)

// HostConfig configures the multicore baseline backend (the paper's
// "OpenMP" column).
type HostConfig struct {
	// Real selects actual force-field evaluation; false selects the
	// modeled surrogate.
	Real bool
	// Scorer picks the force-field implementation for Real mode
	// ("direct", "tiled", "celllist", "grid"); empty means "celllist".
	Scorer string
	// Improver selects the local-search strategy for Real mode:
	// "stochastic" (default, the paper's random perturbation moves) or
	// "gradient" (rigid-body gradient descent on analytic forces).
	Improver string
	// Workers is the number of goroutines used for Real evaluation;
	// 0 means all CPUs.
	Workers int
	// BatchChunk caps the number of conformations a worker scores per
	// batched call; 0 means the worker's whole static chunk at once.
	// Smaller chunks trade batching efficiency for smaller pose arenas.
	BatchChunk int
	// DisableBatch forces the one-pose-at-a-time scoring path. Rankings
	// are byte-identical either way; this is a differential-testing and
	// debugging knob.
	DisableBatch bool
	// ModelCores and ModelClockMHz describe the simulated machine's CPU
	// for the timeline (e.g. Jupiter: 12 cores at 2000 MHz).
	ModelCores    int
	ModelClockMHz float64
	// Model holds the cost-model constants; zero value means defaults.
	Model cudasim.CostModel
}

// withDefaults fills zero fields.
func (c HostConfig) withDefaults() HostConfig {
	if c.Workers <= 0 {
		c.Workers = hostpar.DefaultThreads()
	}
	if c.ModelCores <= 0 {
		c.ModelCores = c.Workers
	}
	if c.ModelClockMHz <= 0 {
		c.ModelClockMHz = 2000
	}
	if c.Model == (cudasim.CostModel{}) {
		c.Model = cudasim.DefaultCostModel()
	}
	return c
}

// HostBackend evaluates on the (simulated) multicore host: the starting
// point of the paper's comparison tables.
type HostBackend struct {
	cfg   HostConfig
	comp  compute
	team  *hostpar.Team
	pairs int
	// scratch holds one persistent workspace per team worker; reusing it
	// across generations keeps the scoring hot path allocation-free.
	scratch []workerScratch

	simTime float64
	evals   atomic.Int64
}

// workerScratch is one worker goroutine's persistent buffers: a single-pose
// buffer for the improve path and a pose arena for batched scoring.
type workerScratch struct {
	buf   []vec.V3
	arena poseArena
}

// newScratch sizes one workspace per team worker.
func newScratch(team *hostpar.Team, comp compute) []workerScratch {
	scratch := make([]workerScratch, team.Size())
	for t := range scratch {
		scratch[t].buf = make([]vec.V3, comp.ligandAtoms())
	}
	return scratch
}

// NewHostBackend builds the multicore backend for a problem.
func NewHostBackend(p *Problem, cfg HostConfig) (*HostBackend, error) {
	cfg = cfg.withDefaults()
	b := &HostBackend{
		cfg:   cfg,
		team:  hostpar.NewTeam(cfg.Workers),
		pairs: p.PairsPerConformation(),
	}
	comp, err := newCompute(p, cfg.Real, cfg.Scorer, cfg.Improver)
	if err != nil {
		return nil, err
	}
	b.comp = comp
	b.scratch = newScratch(b.team, comp)
	return b, nil
}

// Name implements Backend.
func (b *HostBackend) Name() string {
	mode := "modeled"
	if b.cfg.Real {
		mode = "real"
	}
	return fmt.Sprintf("host(%d cores, %s)", b.cfg.ModelCores, mode)
}

// ScoreBatch implements Backend.
func (b *HostBackend) ScoreBatch(confs []*conformation.Conformation) {
	if len(confs) == 0 {
		return
	}
	if b.cfg.DisableBatch {
		b.runParallel(len(confs), func(i int, buf []vec.V3) {
			b.comp.score(confs[i], buf)
		})
	} else {
		b.team.ForChunk(len(confs), hostpar.Static, 0, func(lo, hi, tid int) {
			scoreChunk(b.comp, confs[lo:hi], &b.scratch[tid].arena, b.cfg.BatchChunk)
		})
	}
	b.evals.Add(int64(len(confs)))
	b.simTime += b.cfg.Model.CPUTime(b.cfg.ModelCores, b.cfg.ModelClockMHz, cudasim.ScoringLaunch{
		Kind:                 cudasim.KernelScoring,
		Conformations:        len(confs),
		PairsPerConformation: b.pairs,
	})
}

// ImproveBatch implements Backend.
func (b *HostBackend) ImproveBatch(items []ImproveItem, moves int, scale conformation.MoveScale) {
	if len(items) == 0 || moves <= 0 {
		return
	}
	b.runParallel(len(items), func(i int, buf []vec.V3) {
		b.comp.improve(items[i], moves, scale, buf)
	})
	b.evals.Add(int64(len(items)) * int64(moves))
	b.simTime += b.cfg.Model.CPUTime(b.cfg.ModelCores, b.cfg.ModelClockMHz, cudasim.ScoringLaunch{
		Kind:                 cudasim.KernelImprove,
		Conformations:        len(items),
		PairsPerConformation: b.pairs,
		EvalsPerConformation: moves,
	})
}

// HostOps implements Backend.
func (b *HostBackend) HostOps(count int) {
	b.simTime += b.cfg.Model.HostPhaseTime(count)
}

// SimTime implements Backend.
func (b *HostBackend) SimTime() float64 { return b.simTime }

// EnergyJoules returns the modeled host package energy for the simulated
// duration.
func (b *HostBackend) EnergyJoules() float64 {
	return cudasim.DefaultCPUEnergy(b.cfg.ModelCores).EnergyJoules(b.simTime)
}

// Evaluations implements Backend.
func (b *HostBackend) Evaluations() int64 { return b.evals.Load() }

// runParallel executes body over [0, n) with each worker goroutine's
// persistent scratch pose buffer.
func (b *HostBackend) runParallel(n int, body func(i int, buf []vec.V3)) {
	b.team.ForChunk(n, hostpar.Static, 0, func(lo, hi, tid int) {
		buf := b.scratch[tid].buf
		for i := lo; i < hi; i++ {
			body(i, buf)
		}
	})
}
