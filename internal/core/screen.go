package core

import (
	"fmt"
	"sort"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

// This file is the library-screening layer: the drug-discovery workload
// the paper motivates ("large libraries of small molecules are explored to
// search for the structures which best bind to the receptor"), plus
// multi-start execution ("parallel runs do not incur any communication
// overhead, and the final solution is chosen from all independent
// executions, given the stochastic nature of metaheuristics").

// AlgorithmFactory builds a fresh metaheuristic per run. Runs must not
// share algorithm state, so Screen and RunMultiStart take factories.
type AlgorithmFactory func() (metaheuristic.Algorithm, error)

// BackendFactory builds a backend for a problem.
type BackendFactory func(p *Problem) (Backend, error)

// HostBackendFactory returns a BackendFactory for the host configuration.
func HostBackendFactory(cfg HostConfig) BackendFactory {
	return func(p *Problem) (Backend, error) { return NewHostBackend(p, cfg) }
}

// PoolBackendFactory returns a BackendFactory for the pool configuration.
func PoolBackendFactory(cfg PoolConfig) BackendFactory {
	return func(p *Problem) (Backend, error) { return NewPoolBackend(p, cfg) }
}

// ScreenEntry is one ligand's outcome in a library screen.
type ScreenEntry struct {
	// Ligand is the screened molecule.
	Ligand *molecule.Molecule
	// Result is the full run result.
	Result *Result
}

// ScreenResult ranks a ligand library against one receptor.
type ScreenResult struct {
	// Ranking holds one entry per ligand, best binding energy first.
	Ranking []ScreenEntry
	// SimulatedSeconds is the summed modeled time of all runs (ligand
	// jobs run back to back on the node).
	SimulatedSeconds float64
	// Evaluations is the total scoring work.
	Evaluations int64
}

// Screen docks every ligand of a library against the receptor and returns
// the library ranked by best binding energy — the virtual-screening funnel.
// Each ligand is an independent job with its own problem, backend and seed
// lane, so the ranking is deterministic and independent of library order.
func Screen(receptor *molecule.Molecule, library []*molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64) (*ScreenResult, error) {
	if len(library) == 0 {
		return nil, fmt.Errorf("core: empty ligand library")
	}
	out := &ScreenResult{}
	for i, lig := range library {
		problem, err := NewProblem(receptor, lig, spotOpts, ff)
		if err != nil {
			return nil, fmt.Errorf("core: ligand %q: %w", lig.Name, err)
		}
		alg, err := algf()
		if err != nil {
			return nil, err
		}
		backend, err := backf(problem)
		if err != nil {
			return nil, err
		}
		res, err := Run(problem, alg, backend, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, fmt.Errorf("core: ligand %q: %w", lig.Name, err)
		}
		out.Ranking = append(out.Ranking, ScreenEntry{Ligand: lig, Result: res})
		out.SimulatedSeconds += res.SimulatedSeconds
		out.Evaluations += res.Evaluations
	}
	sortRanking(out)
	return out, nil
}

// sortRanking orders a screen's ranking best-first.
func sortRanking(out *ScreenResult) {
	sort.SliceStable(out.Ranking, func(a, b int) bool {
		return out.Ranking[a].Result.Best.Score < out.Ranking[b].Result.Best.Score
	})
}

// MultiStartResult aggregates independent executions of the same problem.
type MultiStartResult struct {
	// Runs holds every execution's result, in start order.
	Runs []*Result
	// Best is the winning run (lowest best energy).
	Best *Result
	// SimulatedSeconds models the executions running concurrently on
	// independent resources (the paper's scheme): the slowest run.
	SimulatedSeconds float64
}

// RunMultiStart executes n independent stochastic runs of the same
// problem/algorithm and picks the winner, the paper's independent-
// executions scheme. Each run gets its own backend (its own simulated
// node) and a distinct seed lane.
func RunMultiStart(p *Problem, algf AlgorithmFactory, backf BackendFactory, n int, seed uint64) (*MultiStartResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: %d multi-start runs", n)
	}
	out := &MultiStartResult{}
	for i := 0; i < n; i++ {
		alg, err := algf()
		if err != nil {
			return nil, err
		}
		backend, err := backf(p)
		if err != nil {
			return nil, err
		}
		res, err := Run(p, alg, backend, seed+uint64(i)*0x51f1)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, res)
		if out.Best == nil || res.Best.Better(out.Best.Best) {
			out.Best = res
		}
		if res.SimulatedSeconds > out.SimulatedSeconds {
			out.SimulatedSeconds = res.SimulatedSeconds
		}
	}
	return out, nil
}
