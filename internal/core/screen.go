package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"runtime"
	"slices"
	"strings"
	"sync"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/trace"
)

// This file is the library-screening layer: the drug-discovery workload
// the paper motivates ("large libraries of small molecules are explored to
// search for the structures which best bind to the receptor"), plus
// multi-start execution ("parallel runs do not incur any communication
// overhead, and the final solution is chosen from all independent
// executions, given the stochastic nature of metaheuristics").

// AlgorithmFactory builds a fresh metaheuristic per run. Runs must not
// share algorithm state, so Screen and RunMultiStart take factories.
type AlgorithmFactory func() (metaheuristic.Algorithm, error)

// BackendFactory builds a backend for a problem.
type BackendFactory func(p *Problem) (Backend, error)

// HostBackendFactory returns a BackendFactory for the host configuration.
func HostBackendFactory(cfg HostConfig) BackendFactory {
	return func(p *Problem) (Backend, error) { return NewHostBackend(p, cfg) }
}

// PoolBackendFactory returns a BackendFactory for the pool configuration.
func PoolBackendFactory(cfg PoolConfig) BackendFactory {
	return func(p *Problem) (Backend, error) { return NewPoolBackend(p, cfg) }
}

// ScreenEntry is one ligand's outcome in a library screen.
type ScreenEntry struct {
	// Ligand is the screened molecule.
	Ligand *molecule.Molecule
	// Result is the full run result.
	Result *Result
}

// ScreenResult ranks a ligand library against one receptor.
type ScreenResult struct {
	// Ranking holds one entry per ligand, best binding energy first
	// (ties broken by ligand name so the order is fully deterministic).
	Ranking []ScreenEntry
	// SimulatedSeconds is the summed modeled time of all runs: the
	// ligand jobs modeled back to back on one node. It is a workload
	// measure, deliberately independent of how many worker goroutines
	// the screen actually ran with.
	SimulatedSeconds float64
	// Evaluations is the total scoring work.
	Evaluations int64
	// DeviceFaults, SchedRetries and Resplits sum the per-ligand fault
	// counters: fault events observed, transient retries, and mid-run
	// work redistributions across all ligand jobs.
	DeviceFaults int64
	SchedRetries int64
	Resplits     int64
	// WarmupFactors holds the warm-up Percent factors reported by the
	// first ligand run that had any (every ligand of a screen uses the
	// same backend configuration, so one sample represents the screen).
	WarmupFactors map[string][]float64
}

// addRun accumulates one ligand run into the screen totals.
func (out *ScreenResult) addRun(res *Result) {
	out.SimulatedSeconds += res.SimulatedSeconds
	out.Evaluations += res.Evaluations
	out.DeviceFaults += res.DeviceFaults
	out.SchedRetries += res.SchedRetries
	out.Resplits += res.Resplits
	if out.WarmupFactors == nil && res.WarmupFactors != nil {
		out.WarmupFactors = res.WarmupFactors
	}
}

// Screen docks every ligand of a library against the receptor and returns
// the library ranked by best binding energy — the virtual-screening funnel.
// It is ScreenCtx without cancellation, with one worker per CPU.
func Screen(receptor *molecule.Molecule, library []*molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64) (*ScreenResult, error) {
	return ScreenCtx(context.Background(), receptor, library, spotOpts, ff, algf, backf, seed, 0)
}

// ScreenCtx docks every ligand of a library with a bounded pool of
// `workers` goroutines (0 means runtime.GOMAXPROCS(0)). Each ligand is an
// independent job with its own problem, backend and seed lane, so the
// ranking is byte-identical for every worker count — including the
// sequential workers=1 path — and independent of completion order.
// Cancelling ctx aborts in-flight runs between generations and returns
// ctx's error.
func ScreenCtx(ctx context.Context, receptor *molecule.Molecule, library []*molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64, workers int) (*ScreenResult, error) {
	if len(library) == 0 {
		return nil, fmt.Errorf("core: empty ligand library")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(library) {
		workers = len(library)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(library))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel() // abort the other workers promptly
		}
		errMu.Unlock()
	}

	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := screenLigand(ctx, receptor, library[i], spotOpts, ff, algf, backf, seed)
				if err != nil {
					fail(err)
					return
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range library {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate in library order so floating-point sums are deterministic.
	out := &ScreenResult{}
	for i, res := range results {
		out.Ranking = append(out.Ranking, ScreenEntry{Ligand: library[i], Result: res})
		out.addRun(res)
	}
	sortRanking(out)
	return out, nil
}

// screenLigand runs one ligand job on its own seed lane. The lane is keyed
// by a stable hash of the ligand's name, not by library index or execution
// order: the parallel screen reproduces the sequential one exactly, and
// resuming a checkpointed screen with a reordered or extended library
// preserves the seeds of the unfinished ligands.
//
// When the context carries a trace recorder, the ligand's run gets its own
// child recorder — so concurrently screened ligands don't interleave their
// simulated device timelines — which is merged into the parent afterwards
// under the "lig:<name>/" track prefix, alongside a wall-clock ligand span.
func screenLigand(ctx context.Context, receptor, lig *molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64) (*Result, error) {
	problem, err := NewProblem(receptor, lig, spotOpts, ff)
	if err != nil {
		return nil, fmt.Errorf("core: ligand %q: %w", lig.Name, err)
	}
	alg, err := algf()
	if err != nil {
		return nil, err
	}
	backend, err := backf(problem)
	if err != nil {
		return nil, err
	}

	logger := obs.FromContext(ctx).With("ligand", lig.Name)
	runCtx := obs.NewContext(ctx, logger)
	if lb, ok := backend.(interface{ SetLogger(*slog.Logger) }); ok {
		lb.SetLogger(logger)
	}
	parent := trace.FromContext(ctx)
	var child *trace.Recorder
	var startWall float64
	if parent != nil {
		child = &trace.Recorder{}
		runCtx = trace.NewContext(runCtx, child)
		if tb, ok := backend.(interface{ SetTrace(*trace.Recorder) }); ok {
			tb.SetTrace(child)
		}
		startWall = parent.Now()
	}

	res, err := RunCtx(runCtx, problem, alg, backend, ligandSeed(seed, lig.Name))
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // cancellation is not the ligand's fault
		}
		return nil, fmt.Errorf("core: ligand %q: %w", lig.Name, err)
	}
	if parent != nil {
		parent.AddSpan(trace.Span{
			Track: "ligands",
			Name:  "ligand " + lig.Name,
			Cat:   trace.CatLigand,
			Start: startWall,
			End:   parent.Now(),
			Args:  map[string]string{"ligand": lig.Name},
		})
		parent.Merge(child, "lig:"+lig.Name)
	}
	logger.Debug("ligand screened",
		"best", res.Best.Score,
		"generations", res.Generations,
		"sim_seconds", res.SimulatedSeconds,
	)
	return res, nil
}

// ligandSeed derives a ligand's seed lane from the screen seed and a
// 64-bit FNV-1a hash of the ligand's name. Keying by name (rather than the
// earlier library-index scheme) keeps a ligand's lane stable when the
// library is reordered or extended between a checkpoint and its resume.
func ligandSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	return seed + h.Sum64()*0x9e37
}

// sortRanking orders a screen's ranking best-first, breaking equal scores
// by ligand name so the ranking never depends on library order.
func sortRanking(out *ScreenResult) {
	slices.SortStableFunc(out.Ranking, func(ea, eb ScreenEntry) int {
		switch {
		case ea.Result.Best.Score < eb.Result.Best.Score:
			return -1
		case eb.Result.Best.Score < ea.Result.Best.Score:
			return 1
		}
		return strings.Compare(ea.Ligand.Name, eb.Ligand.Name)
	})
}

// SyntheticLibrary returns n deterministic synthetic ligands with varied
// drug-like sizes — the shared workload generator of cmd/vsscreen and the
// screening service, so a service screen and a library screen over "the
// same" synthetic library really dock the same molecules.
func SyntheticLibrary(n int) []*molecule.Molecule {
	lib := make([]*molecule.Molecule, n)
	for i := range lib {
		atoms := 18 + (i*5)%27
		lib[i] = molecule.SyntheticLigand(SyntheticName(i), atoms, 5000+uint64(i))
	}
	return lib
}

// SyntheticName returns the name of the i-th ligand of SyntheticLibrary,
// without materializing the molecule. The distributed coordinator shards
// a library by these names and the service validates shard requests
// against them, so the naming scheme is part of the library's contract.
func SyntheticName(i int) string { return fmt.Sprintf("LIG-%03d", i) }

// MultiStartResult aggregates independent executions of the same problem.
type MultiStartResult struct {
	// Runs holds every execution's result, in start order.
	Runs []*Result
	// Best is the winning run (lowest best energy).
	Best *Result
	// SimulatedSeconds models the executions running concurrently on
	// independent resources (the paper's scheme): the slowest run.
	SimulatedSeconds float64
}

// RunMultiStart executes n independent stochastic runs of the same
// problem/algorithm and picks the winner, the paper's independent-
// executions scheme. Each run gets its own backend (its own simulated
// node) and a distinct seed lane.
func RunMultiStart(p *Problem, algf AlgorithmFactory, backf BackendFactory, n int, seed uint64) (*MultiStartResult, error) {
	return RunMultiStartCtx(context.Background(), p, algf, backf, n, seed)
}

// RunMultiStartCtx is RunMultiStart with cancellation between and within
// runs.
func RunMultiStartCtx(ctx context.Context, p *Problem, algf AlgorithmFactory, backf BackendFactory, n int, seed uint64) (*MultiStartResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: %d multi-start runs", n)
	}
	out := &MultiStartResult{}
	for i := 0; i < n; i++ {
		alg, err := algf()
		if err != nil {
			return nil, err
		}
		backend, err := backf(p)
		if err != nil {
			return nil, err
		}
		res, err := RunCtx(ctx, p, alg, backend, seed+uint64(i)*0x51f1)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, res)
		if out.Best == nil || res.Best.Better(out.Best.Best) {
			out.Best = res
		}
		if res.SimulatedSeconds > out.SimulatedSeconds {
			out.SimulatedSeconds = res.SimulatedSeconds
		}
	}
	return out, nil
}
