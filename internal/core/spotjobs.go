package core

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/sched"
)

// Spot-job scheduling: the alternative execution model the paper's
// abstract sketches ("dynamic assignment of jobs to heterogeneous
// resources which perform independent metaheuristic executions under
// different molecular interactions"). Each spot's entire metaheuristic run
// is one job placed on one GPU; devices pull the next spot when free.
//
// Jobs never synchronize, so there are no barrier losses — but each job's
// per-generation batch is only one spot's population, which cannot fill a
// wide device. RunSpotJobs exists to quantify that trade-off against the
// batched executors (see BenchmarkAblationJobLevel): batching across
// spots, the design the paper's section 3.2 adopts, wins on wide GPUs.

// SpotJobsResult is the outcome of a job-level schedule.
type SpotJobsResult struct {
	// Makespan is the simulated completion time of the last device.
	Makespan float64
	// DeviceBusy is each device's total job time.
	DeviceBusy []float64
	// JobsPerDevice counts spots placed on each device.
	JobsPerDevice []int
	// JobSeconds is the per-spot job duration (same workload per spot, so
	// one duration per device type), keyed by device index.
	JobSeconds []float64
}

// RunSpotJobs simulates the job-level schedule: every spot is an
// independent single-device run of the metaheuristic; jobs go to the
// earliest-free device (greedy list scheduling, the discrete-event
// equivalent of a dynamic job queue).
func RunSpotJobs(p *Problem, alg metaheuristic.Algorithm, specs []cudasim.DeviceSpec, cfg PoolConfig, seed uint64) (*SpotJobsResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: spot jobs with no devices")
	}
	if len(p.Spots) == 0 {
		return nil, fmt.Errorf("core: no spots")
	}
	// One spot's job duration per device: all spots carry the same
	// population, so a single-spot modeled run per device spec suffices.
	sub, err := p.SubsetSpots([]int{0})
	if err != nil {
		return nil, err
	}
	jobSeconds := make([]float64, len(specs))
	cache := map[string]float64{}
	for d, spec := range specs {
		if t, ok := cache[spec.Name]; ok {
			jobSeconds[d] = t
			continue
		}
		jcfg := cfg
		jcfg.Specs = []cudasim.DeviceSpec{spec}
		jcfg.Mode = sched.Homogeneous // single device: nothing to balance
		jcfg.Real = false
		backend, err := NewPoolBackend(sub, jcfg)
		if err != nil {
			return nil, err
		}
		res, err := Run(sub, alg, backend, seed)
		if err != nil {
			return nil, err
		}
		jobSeconds[d] = res.SimulatedSeconds
		cache[spec.Name] = res.SimulatedSeconds
	}

	// Greedy earliest-finish assignment of the spot jobs.
	out := &SpotJobsResult{
		DeviceBusy:    make([]float64, len(specs)),
		JobsPerDevice: make([]int, len(specs)),
		JobSeconds:    jobSeconds,
	}
	for range p.Spots {
		best := 0
		for d := 1; d < len(specs); d++ {
			if out.DeviceBusy[d]+jobSeconds[d] < out.DeviceBusy[best]+jobSeconds[best] {
				best = d
			}
		}
		out.DeviceBusy[best] += jobSeconds[best]
		out.JobsPerDevice[best]++
	}
	for _, busy := range out.DeviceBusy {
		if busy > out.Makespan {
			out.Makespan = busy
		}
	}
	return out, nil
}

// CompareExecutionModels runs the same problem and metaheuristic under the
// batched (paper) model and the job-level model and returns both simulated
// times. A ratio above 1 means batching across spots wins.
func CompareExecutionModels(p *Problem, mh string, scale float64, specs []cudasim.DeviceSpec, seed uint64) (batched, jobs float64, err error) {
	algB, err := metaheuristic.NewPaper(mh, scale)
	if err != nil {
		return 0, 0, err
	}
	backend, err := NewPoolBackend(p, PoolConfig{
		Specs: specs,
		Mode:  sched.Heterogeneous,
		Seed:  seed,
	})
	if err != nil {
		return 0, 0, err
	}
	resB, err := Run(p, algB, backend, seed)
	if err != nil {
		return 0, 0, err
	}
	algJ, err := metaheuristic.NewPaper(mh, scale)
	if err != nil {
		return 0, 0, err
	}
	resJ, err := RunSpotJobs(p, algJ, specs, PoolConfig{Seed: seed}, seed)
	if err != nil {
		return 0, 0, err
	}
	return resB.SimulatedSeconds, resJ.Makespan, nil
}
