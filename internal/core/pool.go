package core

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/hostpar"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/trace"
)

// PoolConfig configures the multi-GPU backend.
type PoolConfig struct {
	// Specs lists the node's GPUs, e.g. Jupiter's 4x GTX590 + 2x C2075.
	Specs []cudasim.DeviceSpec
	// Mode selects the partitioning strategy: sched.Homogeneous models
	// the paper's "homogeneous computation", sched.Heterogeneous its
	// warm-up-balanced computation, sched.Dynamic cooperative chunking.
	Mode sched.Mode
	// Real selects actual force-field evaluation for the results (the
	// timeline always comes from the simulator); false uses the surrogate.
	Real bool
	// Scorer picks the force-field implementation for Real mode.
	Scorer string
	// Improver selects the Real-mode local-search strategy ("stochastic"
	// or "gradient").
	Improver string
	// Workers bounds the goroutines used for Real evaluation; 0 = all CPUs.
	Workers int
	// WarmupIters is the number of warm-up iterations for Heterogeneous
	// mode ("five to ten" in the paper); 0 means 5.
	WarmupIters int
	// NoiseAmp is the relative warm-up measurement noise; negative means
	// 0.05, zero means exact measurements.
	NoiseAmp float64
	// WarpsPerBlock is the CUDA block granularity; 0 means 8.
	WarpsPerBlock int
	// ChunkSize is the Dynamic-mode chunk in conformations; 0 means 64.
	ChunkSize int
	// PipelineDepth > 1 splits each static generation into that many
	// chunks whose uploads overlap the previous chunk's kernel (CUDA
	// stream pipelining); 0 or 1 disables overlap.
	PipelineDepth int
	// Model holds the cost-model constants; zero value means defaults.
	Model cudasim.CostModel
	// Seed derives the warm-up noise.
	Seed uint64
	// Trace, when non-nil, records every device operation's timeline for
	// utilization analysis and Gantt rendering.
	Trace *trace.Recorder
	// Faults holds one fault plan per device (missing entries inject
	// nothing); see cudasim.FaultPlan.
	Faults []cudasim.FaultPlan
	// MaxRetries bounds per-operation transient retries; 0 means
	// sched.DefaultMaxRetries, negative disables retries.
	MaxRetries int
	// Watchdog is the per-operation hang deadline in simulated seconds;
	// 0 means cudasim.DefaultWatchdog.
	Watchdog float64
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.WarmupIters <= 0 {
		c.WarmupIters = 5
	}
	if c.NoiseAmp < 0 {
		c.NoiseAmp = 0.05
	}
	if c.WarpsPerBlock <= 0 {
		c.WarpsPerBlock = 8
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = hostpar.DefaultThreads()
	}
	if c.Model == (cudasim.CostModel{}) {
		c.Model = cudasim.DefaultCostModel()
	}
	return c
}

// PoolBackend runs evaluation on a simulated multi-GPU node. The simulated
// timeline comes from internal/sched (including warm-up cost, transfers and
// barrier synchronization); in Real mode the conformation energies are
// additionally computed on the host so that results are exact.
type PoolBackend struct {
	cfg   PoolConfig
	pool  *sched.Pool
	comp  compute
	team  *hostpar.Team
	pairs int
	// scratch holds one persistent workspace per team worker (see
	// workerScratch); steady-state generations allocate nothing.
	scratch []workerScratch

	// weights holds the warm-up throughput shares per kernel kind
	// (Heterogeneous mode only). The paper's warm-up runs iterations of
	// the metaheuristic itself, so the measured balance reflects each
	// kernel's own architecture efficiency; we reproduce that by probing
	// the scoring and improve kernels separately.
	weights map[cudasim.KernelKind][]float64
	// percent holds the raw warm-up Percent factors (equation 1) per
	// kernel kind, kept alongside weights for the debug snapshot.
	percent map[cudasim.KernelKind][]float64
	log     *slog.Logger
	evals   atomic.Int64

	failMu  sync.Mutex
	failure error // first unrecoverable scheduling failure
}

// NewPoolBackend builds the node, performing the warm-up phase when the
// mode is Heterogeneous (the homogeneous computation has nothing to
// measure). Warm-up cost is charged to the simulated timeline, as in the
// real system.
func NewPoolBackend(p *Problem, cfg PoolConfig) (*PoolBackend, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("core: pool backend with no devices")
	}
	ctx, err := cudasim.NewContextWithModel(cfg.Model, cfg.Specs...)
	if err != nil {
		return nil, err
	}
	b := &PoolBackend{
		cfg:   cfg,
		pool:  sched.NewPool(ctx),
		team:  hostpar.NewTeam(cfg.Workers),
		pairs: p.PairsPerConformation(),
	}
	if cfg.Trace != nil {
		b.pool.SetRecorder(cfg.Trace)
	}
	// Arm fault injection and the recovery policy before any operation
	// (including warm-up) touches the devices.
	for i, plan := range cfg.Faults {
		if i >= ctx.DeviceCount() {
			break
		}
		ctx.Device(i).SetFaultPlan(plan)
	}
	b.pool.SetFaultPolicy(sched.FaultPolicy{MaxRetries: cfg.MaxRetries, Watchdog: cfg.Watchdog})
	// Memory gate: every device must hold the receptor, the ligand and the
	// conformation buffers (the paper's motivation for scaling out: "for
	// the simulation of large molecules, it is necessary to scale to large
	// clusters to deal with memory and computational requirements"). The
	// conformation estimate is conservative: the largest paper population
	// (1024 per spot) at 64 bytes per individual.
	required := deviceFootprint(p)
	for _, d := range ctx.Devices() {
		if err := d.Malloc(required); err != nil {
			return nil, fmt.Errorf("core: problem does not fit on %s (%d bytes needed): %w",
				d.Spec.Name, required, err)
		}
	}
	comp, err := newCompute(p, cfg.Real, cfg.Scorer, cfg.Improver)
	if err != nil {
		return nil, err
	}
	b.comp = comp
	b.scratch = newScratch(b.team, comp)
	if cfg.Mode == sched.Heterogeneous {
		b.weights = make(map[cudasim.KernelKind][]float64)
		b.percent = make(map[cudasim.KernelKind][]float64)
	}
	b.log = obs.Nop()
	return b, nil
}

// SetTrace points the scheduling pool at a recorder after construction.
// The screening layer uses it to give every ligand job its own device
// timeline inside a shared job trace.
func (b *PoolBackend) SetTrace(r *trace.Recorder) { b.pool.SetRecorder(r) }

// SetLogger routes the backend's and the pool's structured logging
// (warm-up results, device fences, re-splits) through l.
func (b *PoolBackend) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Nop()
	}
	b.log = l
	b.pool.SetLogger(l)
}

// WarmupFactors implements the engine's warmupReporter: the measured
// warm-up Percent factors keyed by kernel name, or nil when no warm-up ran.
func (b *PoolBackend) WarmupFactors() map[string][]float64 {
	if len(b.percent) == 0 {
		return nil
	}
	out := make(map[string][]float64, len(b.percent))
	for kind, p := range b.percent {
		out[kind.String()] = append([]float64(nil), p...)
	}
	return out
}

// ensureWeights runs the warm-up phase for a kernel kind the first time
// that kernel is dispatched, probing at the run's real batch size. This is
// the paper's scheme — the warm-up executes "a small number of iterations
// of the metaheuristic" itself — and it matters: measuring at the actual
// launch size makes the measured ratio include the same wave-quantization
// the production launches experience, and keeps the warm-up cost
// proportional to the workload. The probe uses one evaluation per
// conformation; throughput ratios are independent of the evaluation count.
func (b *PoolBackend) ensureWeights(kind cudasim.KernelKind, batchSize int) {
	if b.weights == nil || b.weights[kind] != nil {
		return
	}
	probe := cudasim.ScoringLaunch{
		Kind:                 kind,
		Conformations:        batchSize,
		PairsPerConformation: b.pairs,
		WarpsPerBlock:        b.cfg.WarpsPerBlock,
	}
	res := b.pool.Warmup(probe, b.cfg.WarmupIters, b.cfg.NoiseAmp, b.cfg.Seed^uint64(kind))
	b.weights[kind] = res.Weights
	b.percent[kind] = res.Percent
	b.log.Debug("warmup complete",
		"kernel", kind.String(),
		"batch", batchSize,
		"weights", res.Weights,
		"percent", res.Percent,
	)
}

// deviceFootprint estimates the per-device memory a run needs, in bytes.
func deviceFootprint(p *Problem) int64 {
	const (
		bytesPerAtom = 40 // position (24) + type + padding + charge (8)
		bytesPerConf = 64 // pose (56) + score (8)
		maxPopPaper  = 1024
	)
	rec := int64(p.Receptor.NumAtoms()) * bytesPerAtom
	lig := int64(p.Ligand.NumAtoms()) * bytesPerAtom
	confs := int64(len(p.Spots)) * maxPopPaper * bytesPerConf
	return rec + lig + confs
}

// Name implements Backend.
func (b *PoolBackend) Name() string {
	names := make([]string, 0, len(b.cfg.Specs))
	for _, s := range b.cfg.Specs {
		names = append(names, s.Name)
	}
	return fmt.Sprintf("pool(%s, %s)", strings.Join(names, "+"), b.cfg.Mode)
}

// Weights returns the warm-up throughput shares for a kernel kind (nil
// unless the mode is Heterogeneous).
func (b *PoolBackend) Weights(kind cudasim.KernelKind) []float64 { return b.weights[kind] }

// Pool exposes the scheduling pool, mainly for tracing and tests.
func (b *PoolBackend) Pool() *sched.Pool { return b.pool }

// dispatch advances the simulated timeline for one generation batch.
// Device faults are absorbed by the pool's recovery (retries, re-splits);
// only an unrecoverable failure — every device lost — is latched and
// surfaced through Err.
func (b *PoolBackend) dispatch(n int, kind cudasim.KernelKind, evals int) {
	if b.Err() != nil {
		return
	}
	if b.pool.AliveCount() == 0 {
		b.setFailure(fmt.Errorf("core: cannot dispatch %d conformations: %w", n, sched.ErrAllDevicesLost))
		return
	}
	b.ensureWeights(kind, n)
	batch := sched.Batch{
		Proto: cudasim.ScoringLaunch{
			Kind:                 kind,
			PairsPerConformation: b.pairs,
			EvalsPerConformation: evals,
			WarpsPerBlock:        b.cfg.WarpsPerBlock,
		},
		BytesPerConformation: 56, // translation + quaternion, float64
	}
	var err error
	switch b.cfg.Mode {
	case sched.Dynamic:
		_, err = b.pool.RunDynamic(n, b.cfg.ChunkSize, batch)
	default:
		// Assign over the devices still alive: a device fenced in an
		// earlier generation keeps weight zero from here on.
		assign := sched.AssignAlive(b.cfg.Mode, n, b.pool.Alive(), b.weights[kind], b.cfg.WarpsPerBlock)
		if b.cfg.PipelineDepth > 1 {
			_, err = b.pool.RunStaticPipelined(assign, batch, b.cfg.PipelineDepth)
		} else {
			_, err = b.pool.RunStatic(assign, batch)
		}
	}
	if err != nil {
		b.setFailure(err)
	}
}

func (b *PoolBackend) setFailure(err error) {
	b.failMu.Lock()
	defer b.failMu.Unlock()
	if b.failure == nil {
		b.failure = err
		b.log.Error("backend failed", "err", err)
	}
}

// Err returns the first unrecoverable scheduling failure, or nil. The
// engine checks it each generation and aborts the run when set.
func (b *PoolBackend) Err() error {
	b.failMu.Lock()
	defer b.failMu.Unlock()
	return b.failure
}

// FaultTotals reports the pool's fault counters: total device fault
// events, transient retries, and mid-run re-splits.
func (b *PoolBackend) FaultTotals() (faults, retries, resplits int64) {
	st := b.pool.FaultStats()
	return st.Faults(), st.Retries, st.Resplits
}

// ScoreBatch implements Backend.
func (b *PoolBackend) ScoreBatch(confs []*conformation.Conformation) {
	if len(confs) == 0 {
		return
	}
	b.dispatch(len(confs), cudasim.KernelScoring, 1)
	b.team.ForChunk(len(confs), hostpar.Static, 0, func(lo, hi, tid int) {
		scoreChunk(b.comp, confs[lo:hi], &b.scratch[tid].arena, 0)
	})
	b.evals.Add(int64(len(confs)))
}

// ImproveBatch implements Backend.
func (b *PoolBackend) ImproveBatch(items []ImproveItem, moves int, scale conformation.MoveScale) {
	if len(items) == 0 || moves <= 0 {
		return
	}
	b.dispatch(len(items), cudasim.KernelImprove, moves)
	b.team.ForChunk(len(items), hostpar.Static, 0, func(lo, hi, tid int) {
		buf := b.scratch[tid].buf
		for i := lo; i < hi; i++ {
			b.comp.improve(items[i], moves, scale, buf)
		}
	})
	b.evals.Add(int64(len(items)) * int64(moves))
}

// HostOps implements Backend: the serial host phases stall every device.
func (b *PoolBackend) HostOps(count int) {
	t := b.pool.Now() + b.cfg.Model.HostPhaseTime(count)
	for _, d := range b.pool.Context().Devices() {
		d.Idle(cudasim.DefaultStream, t)
	}
}

// SimTime implements Backend.
func (b *PoolBackend) SimTime() float64 { return b.pool.Now() }

// EnergyJoules returns the modeled energy consumed by all devices so far
// (busy time at TDP, idle time at the idle fraction).
func (b *PoolBackend) EnergyJoules() float64 {
	total := 0.0
	for _, d := range b.pool.Context().Devices() {
		total += d.EnergyJoules()
	}
	return total
}

// Evaluations implements Backend.
func (b *PoolBackend) Evaluations() int64 { return b.evals.Load() }
