package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

// Checkpointing for library screens. A screen over a large library is the
// long-running production workload (the paper: "hundreds of CPU hours for
// each ligand"); the checkpoint records every completed ligand so an
// interrupted screen resumes where it stopped instead of re-docking.

// PoseRecord is a serializable conformation.
type PoseRecord struct {
	Spot        int        `json:"spot"`
	Translation vec.V3     `json:"translation"`
	Orientation [4]float64 `json:"orientation"` // w, x, y, z
	Torsions    []float64  `json:"torsions,omitempty"`
	Score       float64    `json:"score"`
}

// poseRecord converts a conformation.
func poseRecord(c conformation.Conformation) PoseRecord {
	return PoseRecord{
		Spot:        c.Spot,
		Translation: c.Translation,
		Orientation: [4]float64{c.Orientation.W, c.Orientation.X, c.Orientation.Y, c.Orientation.Z},
		Torsions:    c.Torsions,
		Score:       c.Score,
	}
}

// Conformation converts back.
func (p PoseRecord) Conformation() conformation.Conformation {
	c := conformation.New(p.Spot, p.Translation, vec.Quat{
		W: p.Orientation[0], X: p.Orientation[1], Y: p.Orientation[2], Z: p.Orientation[3],
	})
	c.Torsions = p.Torsions
	c.Score = p.Score
	return c
}

// LigandRecord is one completed ligand job in a checkpoint.
type LigandRecord struct {
	Name             string     `json:"name"`
	Atoms            int        `json:"atoms"`
	Best             PoseRecord `json:"best"`
	Evaluations      int64      `json:"evaluations"`
	SimulatedSeconds float64    `json:"simulated_seconds"`
}

// Checkpoint is a resumable screen state. The zero value is an empty
// checkpoint ready for use.
type Checkpoint struct {
	// Seed must match the screen's seed; resuming with a different seed
	// would silently mix runs.
	Seed uint64 `json:"seed"`
	// Ligands holds completed jobs keyed by ligand name.
	Ligands map[string]LigandRecord `json:"ligands"`
}

// SaveCheckpoint serializes the checkpoint as JSON.
func SaveCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// LoadCheckpoint deserializes a checkpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if cp.Ligands == nil {
		cp.Ligands = map[string]LigandRecord{}
	}
	return &cp, nil
}

// ligandRecord captures one completed run in checkpoint form.
func ligandRecord(lig *molecule.Molecule, res *Result) LigandRecord {
	return LigandRecord{
		Name:             lig.Name,
		Atoms:            lig.NumAtoms(),
		Best:             poseRecord(res.Best),
		Evaluations:      res.Evaluations,
		SimulatedSeconds: res.SimulatedSeconds,
	}
}

// recordResult reconstructs a Result from a checkpoint record. Fault
// counters are not checkpointed, so a resumed ligand contributes only its
// pose, evaluations and modeled time — exactly what the ranking and the
// work totals need.
func recordResult(rec LigandRecord) *Result {
	return &Result{
		Best:             rec.Best.Conformation(),
		Evaluations:      rec.Evaluations,
		SimulatedSeconds: rec.SimulatedSeconds,
	}
}

// CheckpointFunc observes checkpoint growth during a resumable screen. It
// is called with the screen's checkpoint mutex held — cp is consistent and
// must not be retained past the call — and newlyCompleted counts the
// ligands this run has finished so far (resumed ligands excluded). The
// screening service snapshots cp to disk from this hook every N calls. A
// non-nil error aborts the screen; the checkpoint keeps everything
// completed so far.
type CheckpointFunc func(cp *Checkpoint, newlyCompleted int) error

// ScreenResumable is Screen with checkpointing: ligands already present in
// cp are skipped (their recorded results are used), and every newly
// completed ligand is added to cp before the next job starts. On error the
// checkpoint still holds everything completed so far, so callers can save
// it and resume later. It is ScreenResumableCtx without cancellation, with
// one worker — ligands run sequentially in library order.
func ScreenResumable(receptor *molecule.Molecule, library []*molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64, cp *Checkpoint) (*ScreenResult, error) {
	return ScreenResumableCtx(context.Background(), receptor, library, spotOpts, ff,
		algf, backf, seed, 1, cp, nil)
}

// ScreenResumableCtx is the context-aware, ligand-parallel resumable
// screen (parity with ScreenCtx): ligands recorded in cp are skipped, the
// rest run on a bounded pool of `workers` goroutines (0 means one per
// CPU), and each completion is added to cp and reported to onUpdate before
// the next ligand of that worker starts. Seed lanes are keyed by ligand
// name, so the final ranking is byte-identical to an uninterrupted
// Screen/ScreenCtx run with the same seed, for every worker count and
// every split of the library across interrupted attempts. Cancelling ctx
// aborts in-flight ligands between metaheuristic generations; the
// checkpoint keeps everything completed before the abort.
func ScreenResumableCtx(ctx context.Context, receptor *molecule.Molecule, library []*molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64, workers int,
	cp *Checkpoint, onUpdate CheckpointFunc) (*ScreenResult, error) {
	if cp == nil {
		return nil, fmt.Errorf("core: nil checkpoint (use Screen for one-shot runs)")
	}
	if cp.Ligands == nil {
		cp.Ligands = map[string]LigandRecord{}
		cp.Seed = seed
	}
	if cp.Seed != seed {
		return nil, fmt.Errorf("core: checkpoint seed %d does not match run seed %d", cp.Seed, seed)
	}
	if len(library) == 0 {
		return nil, fmt.Errorf("core: empty ligand library")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var pending []int
	for i, lig := range library {
		if seen[lig.Name] {
			return nil, fmt.Errorf("core: duplicate ligand name %q (checkpoints key by name)", lig.Name)
		}
		seen[lig.Name] = true
		if _, done := cp.Ligands[lig.Name]; !done {
			pending = append(pending, i)
		}
	}

	results := make([]*Result, len(library))
	if len(pending) > 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(pending) {
			workers = len(pending)
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
			cpMu     sync.Mutex
			newly    int
		)
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
				cancel()
			}
			errMu.Unlock()
		}
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					lig := library[i]
					res, err := screenLigand(ctx, receptor, lig, spotOpts, ff, algf, backf, seed)
					if err != nil {
						fail(err)
						return
					}
					results[i] = res
					cpMu.Lock()
					cp.Ligands[lig.Name] = ligandRecord(lig, res)
					newly++
					if onUpdate != nil {
						err = onUpdate(cp, newly)
					}
					cpMu.Unlock()
					if err != nil {
						fail(fmt.Errorf("core: checkpoint update after %q: %w", lig.Name, err))
						return
					}
				}
			}()
		}
	feed:
		for _, i := range pending {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Aggregate in library order so floating-point sums are deterministic
	// and identical to an uninterrupted ScreenCtx run.
	out := &ScreenResult{}
	for i, lig := range library {
		if res := results[i]; res != nil {
			out.Ranking = append(out.Ranking, ScreenEntry{Ligand: lig, Result: res})
			out.addRun(res)
			continue
		}
		rec := cp.Ligands[lig.Name]
		res := recordResult(rec)
		out.Ranking = append(out.Ranking, ScreenEntry{Ligand: lig, Result: res})
		out.SimulatedSeconds += rec.SimulatedSeconds
		out.Evaluations += rec.Evaluations
	}
	sortRanking(out)
	return out, nil
}
