package core

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

// Checkpointing for library screens. A screen over a large library is the
// long-running production workload (the paper: "hundreds of CPU hours for
// each ligand"); the checkpoint records every completed ligand so an
// interrupted screen resumes where it stopped instead of re-docking.

// PoseRecord is a serializable conformation.
type PoseRecord struct {
	Spot        int        `json:"spot"`
	Translation vec.V3     `json:"translation"`
	Orientation [4]float64 `json:"orientation"` // w, x, y, z
	Torsions    []float64  `json:"torsions,omitempty"`
	Score       float64    `json:"score"`
}

// poseRecord converts a conformation.
func poseRecord(c conformation.Conformation) PoseRecord {
	return PoseRecord{
		Spot:        c.Spot,
		Translation: c.Translation,
		Orientation: [4]float64{c.Orientation.W, c.Orientation.X, c.Orientation.Y, c.Orientation.Z},
		Torsions:    c.Torsions,
		Score:       c.Score,
	}
}

// Conformation converts back.
func (p PoseRecord) Conformation() conformation.Conformation {
	c := conformation.New(p.Spot, p.Translation, vec.Quat{
		W: p.Orientation[0], X: p.Orientation[1], Y: p.Orientation[2], Z: p.Orientation[3],
	})
	c.Torsions = p.Torsions
	c.Score = p.Score
	return c
}

// LigandRecord is one completed ligand job in a checkpoint.
type LigandRecord struct {
	Name             string     `json:"name"`
	Atoms            int        `json:"atoms"`
	Best             PoseRecord `json:"best"`
	Evaluations      int64      `json:"evaluations"`
	SimulatedSeconds float64    `json:"simulated_seconds"`
}

// Checkpoint is a resumable screen state. The zero value is an empty
// checkpoint ready for use.
type Checkpoint struct {
	// Seed must match the screen's seed; resuming with a different seed
	// would silently mix runs.
	Seed uint64 `json:"seed"`
	// Ligands holds completed jobs keyed by ligand name.
	Ligands map[string]LigandRecord `json:"ligands"`
}

// SaveCheckpoint serializes the checkpoint as JSON.
func SaveCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// LoadCheckpoint deserializes a checkpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if cp.Ligands == nil {
		cp.Ligands = map[string]LigandRecord{}
	}
	return &cp, nil
}

// ScreenResumable is Screen with checkpointing: ligands already present in
// cp are skipped (their recorded results are used), and every newly
// completed ligand is added to cp before the next job starts. On error the
// checkpoint still holds everything completed so far, so callers can save
// it and resume later.
func ScreenResumable(receptor *molecule.Molecule, library []*molecule.Molecule,
	spotOpts surface.Options, ff forcefield.Options,
	algf AlgorithmFactory, backf BackendFactory, seed uint64, cp *Checkpoint) (*ScreenResult, error) {
	if cp == nil {
		return nil, fmt.Errorf("core: nil checkpoint (use Screen for one-shot runs)")
	}
	if cp.Ligands == nil {
		cp.Ligands = map[string]LigandRecord{}
		cp.Seed = seed
	}
	if cp.Seed != seed {
		return nil, fmt.Errorf("core: checkpoint seed %d does not match run seed %d", cp.Seed, seed)
	}
	if len(library) == 0 {
		return nil, fmt.Errorf("core: empty ligand library")
	}
	seen := map[string]bool{}
	for _, lig := range library {
		if seen[lig.Name] {
			return nil, fmt.Errorf("core: duplicate ligand name %q (checkpoints key by name)", lig.Name)
		}
		seen[lig.Name] = true
	}

	out := &ScreenResult{}
	for i, lig := range library {
		if rec, done := cp.Ligands[lig.Name]; done {
			res := &Result{
				Best:             rec.Best.Conformation(),
				Evaluations:      rec.Evaluations,
				SimulatedSeconds: rec.SimulatedSeconds,
			}
			out.Ranking = append(out.Ranking, ScreenEntry{Ligand: lig, Result: res})
			out.SimulatedSeconds += rec.SimulatedSeconds
			out.Evaluations += rec.Evaluations
			continue
		}
		problem, err := NewProblem(receptor, lig, spotOpts, ff)
		if err != nil {
			return nil, fmt.Errorf("core: ligand %q: %w", lig.Name, err)
		}
		alg, err := algf()
		if err != nil {
			return nil, err
		}
		backend, err := backf(problem)
		if err != nil {
			return nil, err
		}
		res, err := Run(problem, alg, backend, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, fmt.Errorf("core: ligand %q: %w", lig.Name, err)
		}
		cp.Ligands[lig.Name] = LigandRecord{
			Name:             lig.Name,
			Atoms:            lig.NumAtoms(),
			Best:             poseRecord(res.Best),
			Evaluations:      res.Evaluations,
			SimulatedSeconds: res.SimulatedSeconds,
		}
		out.Ranking = append(out.Ranking, ScreenEntry{Ligand: lig, Result: res})
		out.addRun(res)
	}
	sortRanking(out)
	return out, nil
}
