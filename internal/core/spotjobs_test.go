package core

import (
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
)

func TestRunSpotJobsBasics(t *testing.T) {
	p, err := NewProblemFromDataset(Dataset2BSM(), forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := metaheuristic.NewPaper("M3", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
	res, err := RunSpotJobs(p, alg, specs, PoolConfig{Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	totalJobs := 0
	for d, n := range res.JobsPerDevice {
		totalJobs += n
		if res.DeviceBusy[d] > res.Makespan {
			t.Errorf("device %d busy beyond makespan", d)
		}
	}
	if totalJobs != len(p.Spots) {
		t.Errorf("scheduled %d jobs for %d spots", totalJobs, len(p.Spots))
	}
	// Both devices work — and the job counts expose the model's flaw: a
	// one-spot job is a single wave on either GPU, so the higher-clocked
	// GTX 580 finishes jobs faster than the wide K40c whose 90 warp slots
	// sit mostly empty. Job-level scheduling inverts the device ranking.
	if res.JobsPerDevice[0] == 0 || res.JobsPerDevice[1] == 0 {
		t.Errorf("a device idled: %v", res.JobsPerDevice)
	}
	if res.JobSeconds[1] >= res.JobSeconds[0] {
		t.Errorf("GTX580 job (%v) not faster than K40c job (%v); "+
			"latency-bound jobs should favor the higher clock",
			res.JobSeconds[1], res.JobSeconds[0])
	}
	// Identical specs share a cached duration.
	if res.JobSeconds[0] <= 0 || res.JobSeconds[1] <= 0 {
		t.Error("non-positive job durations")
	}
}

func TestRunSpotJobsErrors(t *testing.T) {
	p := smallProblem(t)
	alg, err := metaheuristic.NewPaper("M3", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpotJobs(p, alg, nil, PoolConfig{}, 1); err == nil {
		t.Error("no devices accepted")
	}
}

func TestBatchedBeatsJobLevelOnWideGPUs(t *testing.T) {
	// The design question the paper's section 3.2 answers: batching all
	// spots' conformations into shared grids fills wide devices; one-spot
	// jobs (64 conformations) cannot occupy 90 warp slots, so the batched
	// model finishes sooner on the same hardware.
	p, err := NewProblemFromDataset(Dataset2BSM(), forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
	batched, jobs, err := CompareExecutionModels(p, "M3", 0.5, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if batched >= jobs {
		t.Errorf("batched model (%v) not faster than job-level (%v) on wide GPUs", batched, jobs)
	}
}
