package core

import (
	"fmt"
	"math"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// ImproveItem is one local-search assignment: a conformation to improve,
// the sampler of its spot, and a private random stream so results do not
// depend on execution order.
type ImproveItem struct {
	Conf    *conformation.Conformation
	Sampler *conformation.Sampler
	RNG     *rng.Source
}

// Backend executes the evaluation work of a run. Implementations mutate
// conformations in place and keep their own simulated-time and
// evaluation-count accounting. ScoreBatch and ImproveBatch are each called
// once per generation with the work of all spots, which is exactly the
// batching that fills GPU grids in the paper's scheme.
type Backend interface {
	// Name identifies the backend configuration for reports.
	Name() string
	// ScoreBatch evaluates every conformation in the batch (the engine
	// only passes unscored ones).
	ScoreBatch(confs []*conformation.Conformation)
	// ImproveBatch runs `moves` local-search steps on every item,
	// replacing each conformation with the best pose found (never worse).
	ImproveBatch(items []ImproveItem, moves int, scale conformation.MoveScale)
	// HostOps charges the serial host phases (Select/Combine/Include)
	// over count population elements to the timeline.
	HostOps(count int)
	// SimTime returns the accumulated simulated seconds.
	SimTime() float64
	// Evaluations returns the number of scoring-function evaluations
	// performed or modeled so far.
	Evaluations() int64
}

// newCompute builds the scoring strategy for a backend: the modeled
// surrogate, or a real scorer with stochastic or gradient local search.
func newCompute(p *Problem, real bool, scorerKind, improver string) (compute, error) {
	if !real {
		return newModeledCompute(p), nil
	}
	switch improver {
	case "", "stochastic":
		s, err := p.NewScorer(scorerKind)
		if err != nil {
			return nil, err
		}
		rc := &realCompute{scorer: s, ligand: p.LigandPositions(), ts: p.TorsionSet()}
		if bs, ok := s.(forcefield.BatchScorer); ok {
			rc.batch = bs
		}
		// The cell-list scorer additionally gets one neighbor list per
		// spot: built once here, reused every generation.
		if cl, ok := s.(*forcefield.CellList); ok {
			rc.nl = p.SpotNeighborLists(cl)
		}
		return rc, nil
	case "gradient":
		return &gradientCompute{scorer: p.NewGradientScorer(), ligand: p.LigandPositions(), ts: p.TorsionSet()}, nil
	}
	return nil, fmt.Errorf("core: unknown improver %q (want stochastic or gradient)", improver)
}

// poseArena is a worker-owned scoring workspace: one flat coordinate array
// sliced into per-conformation pose buffers, plus the batched score output.
// resize reuses capacity, so steady-state generations allocate nothing.
type poseArena struct {
	flat  []vec.V3
	poses [][]vec.V3
	out   []float64
}

func (a *poseArena) resize(n, atoms int) {
	need := n * atoms
	if cap(a.flat) < need {
		a.flat = make([]vec.V3, need)
	}
	a.flat = a.flat[:need]
	if cap(a.poses) < n {
		a.poses = make([][]vec.V3, n)
	}
	a.poses = a.poses[:n]
	for i := range a.poses {
		a.poses[i] = a.flat[i*atoms : (i+1)*atoms : (i+1)*atoms]
	}
	if cap(a.out) < n {
		a.out = make([]float64, n)
	}
	a.out = a.out[:n]
}

// compute is the scoring strategy shared by backends: real force-field
// evaluation or the modeled surrogate.
type compute interface {
	// score evaluates c in place. buf is a caller-owned scratch pose
	// buffer of ligand size.
	score(c *conformation.Conformation, buf []vec.V3)
	// scoreBatch evaluates every conformation of the slice using a's
	// pooled pose buffers. It assigns exactly the scores score would.
	scoreBatch(confs []*conformation.Conformation, a *poseArena)
	// improve runs moves hill-climbing steps on c in place.
	improve(it ImproveItem, moves int, scale conformation.MoveScale, buf []vec.V3)
	// ligandAtoms returns the pose buffer size.
	ligandAtoms() int
}

// scoreChunk scores one worker's span of a generation batch, chunkSize
// conformations per batched call (<= 0 means the whole span at once).
func scoreChunk(comp compute, confs []*conformation.Conformation, a *poseArena, chunkSize int) {
	if chunkSize <= 0 || chunkSize > len(confs) {
		chunkSize = len(confs)
	}
	for lo := 0; lo < len(confs); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(confs) {
			hi = len(confs)
		}
		comp.scoreBatch(confs[lo:hi], a)
	}
}

// realCompute actually evaluates the force field. A non-nil torsion set
// makes posing flexible (ApplyFlex bends the ligand before the rigid
// transform).
type realCompute struct {
	scorer forcefield.Scorer
	// batch is scorer's batched entry point, nil if it has none.
	batch forcefield.BatchScorer
	// nl holds one precomputed candidate list per spot (cell-list scorer
	// only): the receptor atoms within the cutoff of the spot's search
	// region, gathered once and reused across all generations.
	nl     []*forcefield.NeighborList
	ligand []vec.V3
	ts     *molecule.TorsionSet
}

func (rc *realCompute) ligandAtoms() int { return len(rc.ligand) }

// scorePose picks the cheapest exact scorer for a posed ligand: the spot's
// neighbor list when the pose stays inside its covered region, the full
// scorer otherwise (flexible poses can swing atoms out of the region).
// Both score and scoreBatch go through it, so batched and unbatched runs
// produce byte-identical scores.
func (rc *realCompute) scorePose(spot int, pose []vec.V3) float64 {
	if spot >= 0 && spot < len(rc.nl) {
		if nl := rc.nl[spot]; nl != nil && nl.Covers(pose) {
			return nl.Score(pose)
		}
	}
	return rc.scorer.Score(pose)
}

func (rc *realCompute) score(c *conformation.Conformation, buf []vec.V3) {
	c.ApplyFlex(rc.ts, rc.ligand, buf)
	c.Score = rc.scorePose(c.Spot, buf)
}

func (rc *realCompute) scoreBatch(confs []*conformation.Conformation, a *poseArena) {
	a.resize(len(confs), len(rc.ligand))
	for i, c := range confs {
		c.ApplyFlex(rc.ts, rc.ligand, a.poses[i])
	}
	if rc.nl != nil || rc.batch == nil {
		for i, c := range confs {
			c.Score = rc.scorePose(c.Spot, a.poses[i])
		}
		return
	}
	rc.batch.ScoreBatch(a.poses, a.out)
	for i, c := range confs {
		c.Score = a.out[i]
	}
}

func (rc *realCompute) improve(it ImproveItem, moves int, scale conformation.MoveScale, buf []vec.V3) {
	cur := *it.Conf
	if !cur.Evaluated() {
		rc.score(&cur, buf)
	}
	for m := 0; m < moves; m++ {
		cand := it.Sampler.Perturb(it.RNG, cur, scale)
		rc.score(&cand, buf)
		if cand.Better(cur) {
			cur = cand
		}
	}
	*it.Conf = cur
}

// gradientCompute scores like realCompute but improves by rigid-body
// gradient descent with backtracking line search instead of stochastic
// perturbation: each step moves along the net force and rotates along the
// torque, halving the step until the energy drops. Deterministic, and
// often far more sample-efficient near a minimum — the kind of scoring-
// function exploration the paper's conclusions call for.
type gradientCompute struct {
	scorer forcefield.GradientScorer
	ligand []vec.V3
	// ts bends poses before scoring. Descent covers all degrees of
	// freedom: translation and rotation from the rigid-body gradient,
	// and, when ts is set, each torsion from the generalized torque about
	// its bond axis.
	ts *molecule.TorsionSet
}

// torsionGradients returns the generalized force on each torsion angle:
// the torque of the branch's atoms about the posed bond axis,
// tau_k = sum_{i in moving} ((r_i - a) x F_i) . unit(b - a).
func (gc *gradientCompute) torsionGradients(c conformation.Conformation, posed, forces []vec.V3) []float64 {
	if gc.ts.Len() == 0 || len(c.Torsions) == 0 {
		return nil
	}
	out := make([]float64, gc.ts.Len())
	for k, tor := range gc.ts.Torsions {
		a := posed[tor.Axis.I]
		axis := posed[tor.Axis.J].Sub(a).Unit()
		tau := 0.0
		for _, idx := range tor.Moving {
			tau += posed[idx].Sub(a).Cross(forces[idx]).Dot(axis)
		}
		out[k] = tau
	}
	return out
}

func (gc *gradientCompute) ligandAtoms() int { return len(gc.ligand) }

func (gc *gradientCompute) score(c *conformation.Conformation, buf []vec.V3) {
	c.ApplyFlex(gc.ts, gc.ligand, buf)
	c.Score = gc.scorer.Score(buf)
}

func (gc *gradientCompute) scoreBatch(confs []*conformation.Conformation, a *poseArena) {
	a.resize(len(confs), len(gc.ligand))
	for i, c := range confs {
		c.ApplyFlex(gc.ts, gc.ligand, a.poses[i])
		c.Score = gc.scorer.Score(a.poses[i])
	}
}

func (gc *gradientCompute) improve(it ImproveItem, moves int, _ conformation.MoveScale, buf []vec.V3) {
	cur := *it.Conf
	forces := make([]vec.V3, len(gc.ligand))
	step := 0.25 // angstroms along the unit force
	for m := 0; m < moves; m++ {
		cur.ApplyFlex(gc.ts, gc.ligand, buf)
		e := gc.scorer.ScoreForces(buf, forces)
		cur.Score = e
		force, torque := forcefield.RigidGradient(buf, forces, cur.Translation)
		torGrad := gc.torsionGradients(cur, buf, forces)
		flat := force.Norm() < 1e-9 && torque.Norm() < 1e-9
		for _, g := range torGrad {
			if math.Abs(g) > 1e-9 {
				flat = false
			}
		}
		if flat {
			break // flat region (clamp or beyond cutoff)
		}
		// Normalize the torsion gradient so the angle step is bounded.
		maxTor := 0.0
		for _, g := range torGrad {
			if a := math.Abs(g); a > maxTor {
				maxTor = a
			}
		}
		// Backtracking: shrink until the move lowers the energy.
		improved := false
		for try := 0; try < 4; try++ {
			cand := cur.CloneTorsions()
			if force.Norm() > 0 {
				cand.Translation = cand.Translation.Add(force.Unit().Scale(step))
			}
			if torque.Norm() > 0 {
				rot := vec.QuatFromAxisAngle(torque, step*0.3)
				cand.Orientation = rot.Mul(cand.Orientation).Unit()
			}
			if maxTor > 0 {
				for k := range cand.Torsions {
					cand.Torsions[k] = conformation.WrapAngle(
						cand.Torsions[k] + step*0.3*torGrad[k]/maxTor)
				}
			}
			// Keep the pose in its spot region.
			cand = clampPose(it.Sampler, cand)
			cand.ApplyFlex(gc.ts, gc.ligand, buf)
			cand.Score = gc.scorer.Score(buf)
			if cand.Score < cur.Score {
				cur = cand
				improved = true
				break
			}
			step /= 2
		}
		if !improved {
			break
		}
	}
	if cur.Better(*it.Conf) || !it.Conf.Evaluated() {
		*it.Conf = cur
	}
}

// clampPose projects a pose back into its sampler's region using a
// zero-length perturbation (which applies the sampler's clamp).
func clampPose(s *conformation.Sampler, c conformation.Conformation) conformation.Conformation {
	if s.Contains(c) {
		return c
	}
	out := s.Perturb(rng.New(0), c, conformation.MoveScale{MaxTranslate: 1e-12, MaxRotate: 1e-12})
	out.Score = conformation.Unscored
	return out
}

// modeledCompute synthesizes scores from a smooth deterministic surrogate:
// the squared distance to a hidden per-spot target pose plus a small
// deterministic ripple. It preserves the optimization semantics (a
// well-defined optimum per spot, improvement under local search) without
// evaluating atom pairs, so full paper-scale workloads replay quickly.
type modeledCompute struct {
	targets []vec.V3 // per spot
	nligand int
}

// newModeledCompute derives one hidden target per spot, placed inside the
// spot's search region.
func newModeledCompute(p *Problem) *modeledCompute {
	mc := &modeledCompute{
		targets: make([]vec.V3, len(p.Spots)),
		nligand: p.Ligand.NumAtoms(),
	}
	standoff := p.LigandRadius() + 1.5
	for i, s := range p.Spots {
		base := s.Center.Add(s.Normal.Scale(standoff))
		// Deterministic in-region offset from the spot ID.
		r := rng.New(0xfeed ^ uint64(i)*0x9e3779b97f4a7c15)
		mc.targets[i] = base.Add(r.InSphere(s.Radius * 0.6))
	}
	return mc
}

func (mc *modeledCompute) ligandAtoms() int { return mc.nligand }

func (mc *modeledCompute) surrogate(c conformation.Conformation) float64 {
	t := mc.targets[c.Spot]
	d2 := c.Translation.Dist2(t)
	// A gentle orientation-dependent ripple keeps orientations relevant.
	ripple := 0.1 * math.Abs(c.Orientation.W)
	return d2 + ripple - 25 // offset so good poses go negative like energies
}

func (mc *modeledCompute) score(c *conformation.Conformation, _ []vec.V3) {
	c.Score = mc.surrogate(*c)
}

func (mc *modeledCompute) scoreBatch(confs []*conformation.Conformation, _ *poseArena) {
	for _, c := range confs {
		c.Score = mc.surrogate(*c)
	}
}

// improve models the outcome of `moves` hill-climbing steps: the pose
// moves toward the hidden target with diminishing returns in the move
// count, matching the qualitative convergence of real local search.
func (mc *modeledCompute) improve(it ImproveItem, moves int, _ conformation.MoveScale, _ []vec.V3) {
	c := *it.Conf
	t := mc.targets[c.Spot]
	frac := 1 - math.Exp(-float64(moves)/16)
	c.Translation = c.Translation.Lerp(t, frac)
	c.Score = mc.surrogate(c)
	if c.Better(*it.Conf) || !it.Conf.Evaluated() {
		*it.Conf = c
	}
}
