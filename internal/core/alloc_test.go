package core

import (
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/rng"
)

// makeConfs builds n random unscored conformations on the problem's first
// spot, returned as the pointer slice the backend API takes.
func makeConfs(p *Problem, n int, seed uint64) []*conformation.Conformation {
	sampler := conformation.NewSampler(p.Spots[0], p.LigandRadius())
	r := rng.New(seed)
	backing := make([]conformation.Conformation, n)
	confs := make([]*conformation.Conformation, n)
	for i := range backing {
		backing[i] = sampler.Random(r)
		confs[i] = &backing[i]
	}
	return confs
}

// TestScoreChunkZeroAllocSteadyState is the allocation budget of the batched
// scoring hot path at the compute layer: once the pose arena is warmed, a
// generation's worth of scoring performs zero heap allocations.
func TestScoreChunkZeroAllocSteadyState(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	confs := makeConfs(p, 64, 11)
	var arena poseArena
	scoreChunk(b.comp, confs, &arena, 0) // warm the arena
	for _, chunk := range []int{0, 1, 7} {
		if allocs := testing.AllocsPerRun(20, func() {
			scoreChunk(b.comp, confs, &arena, chunk)
		}); allocs != 0 {
			t.Errorf("chunk=%d: %.1f allocs per batched call, want 0", chunk, allocs)
		}
	}
}

// TestImproveZeroAllocSteadyState pins the improve kernel's budget for rigid
// ligands: stochastic hill climbing with a reused pose buffer is alloc-free.
func TestImproveZeroAllocSteadyState(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sampler := conformation.NewSampler(p.Spots[0], p.LigandRadius())
	confs := makeConfs(p, 1, 12)
	var arena poseArena
	scoreChunk(b.comp, confs, &arena, 0)
	var lane rng.Source
	rng.New(3).SplitInto(1, &lane)
	item := ImproveItem{Conf: confs[0], Sampler: sampler, RNG: &lane}
	buf := b.scratch[0].buf
	if allocs := testing.AllocsPerRun(20, func() {
		b.comp.improve(item, 4, conformation.DefaultMoveScale, buf)
	}); allocs != 0 {
		t.Errorf("improve allocates %.1f per item, want 0", allocs)
	}
}

// TestHostScoreBatchAllocsConstant checks the full backend path: per-call
// allocations are a small constant independent of batch size, i.e. ~0
// allocations per pose in steady state.
func TestHostScoreBatchAllocsConstant(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	small := makeConfs(p, 8, 21)
	large := makeConfs(p, 256, 22)
	b.ScoreBatch(large) // warm the worker scratch to the largest size
	perSmall := testing.AllocsPerRun(20, func() { b.ScoreBatch(small) })
	perLarge := testing.AllocsPerRun(20, func() { b.ScoreBatch(large) })
	if perLarge != perSmall {
		t.Errorf("allocations scale with batch size: %.1f for 8 poses, %.1f for 256", perSmall, perLarge)
	}
	// One closure for the parallel-for is tolerated; per-pose work is free.
	if perSmall > 2 {
		t.Errorf("%.1f allocs per ScoreBatch call, want <= 2", perSmall)
	}
}

// TestPoseArenaReuse is the pool-reuse regression test: resize reuses the
// backing arrays whenever capacity suffices, the per-pose subslices alias
// disjoint spans of the flat buffer, and their capacities are clipped so an
// append cannot silently corrupt a neighbouring pose.
func TestPoseArenaReuse(t *testing.T) {
	var a poseArena
	a.resize(8, 10)
	if len(a.flat) != 80 || len(a.poses) != 8 || len(a.out) != 8 {
		t.Fatalf("sizes after resize(8,10): flat=%d poses=%d out=%d", len(a.flat), len(a.poses), len(a.out))
	}
	for i := range a.poses {
		if len(a.poses[i]) != 10 || cap(a.poses[i]) != 10 {
			t.Fatalf("pose %d: len=%d cap=%d, want 10/10", i, len(a.poses[i]), cap(a.poses[i]))
		}
		if &a.poses[i][0] != &a.flat[i*10] {
			t.Fatalf("pose %d does not alias the flat buffer", i)
		}
	}
	p0 := &a.flat[0]
	a.resize(4, 10) // shrink: must reuse
	if &a.flat[0] != p0 {
		t.Error("shrinking reallocated the flat buffer")
	}
	a.resize(8, 10) // regrow within capacity: must reuse
	if &a.flat[0] != p0 {
		t.Error("regrowing within capacity reallocated the flat buffer")
	}
	if allocs := testing.AllocsPerRun(10, func() { a.resize(8, 10) }); allocs != 0 {
		t.Errorf("steady-state resize allocates %.1f, want 0", allocs)
	}
	a.resize(9, 10) // beyond capacity: must grow correctly
	if len(a.flat) != 90 || len(a.poses) != 9 || len(a.out) != 9 {
		t.Fatalf("sizes after growth: flat=%d poses=%d out=%d", len(a.flat), len(a.poses), len(a.out))
	}
}

// TestHostBackendScratchPersists checks the worker workspaces live on the
// backend, not the call: two generations share one arena allocation.
func TestHostBackendScratchPersists(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	confs := makeConfs(p, 16, 31)
	b.ScoreBatch(confs)
	if len(b.scratch) != 1 || len(b.scratch[0].arena.flat) == 0 {
		t.Fatal("no warmed worker arena after ScoreBatch")
	}
	ptr := &b.scratch[0].arena.flat[0]
	b.ScoreBatch(confs)
	if &b.scratch[0].arena.flat[0] != ptr {
		t.Error("second generation reallocated the worker arena")
	}
}
