package core

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
)

// smallProblem builds a quick Real-mode problem: ~600-atom receptor,
// 12-atom ligand, 4 spots.
func smallProblem(t *testing.T) *Problem {
	t.Helper()
	rec := molecule.SyntheticProtein("rec", 600, 31)
	lig := molecule.SyntheticLigand("lig", 12, 32)
	p, err := NewProblem(rec, lig, surface.Options{MaxSpots: 4}, forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func smallAlg(t *testing.T) metaheuristic.Algorithm {
	t.Helper()
	alg, err := metaheuristic.NewScatterSearch("test-ss", metaheuristic.Params{
		PopulationPerSpot: 16,
		SelectFraction:    1,
		ImproveFraction:   0.5,
		ImproveMoves:      3,
		Generations:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestRunHostRealOptimizes(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spots) != 4 {
		t.Fatalf("spot results = %d", len(res.Spots))
	}
	if !res.Best.Evaluated() {
		t.Fatal("no evaluated best")
	}
	// The overall best must be the best across spots.
	for _, sr := range res.Spots {
		if sr.Best.Better(res.Best) {
			t.Errorf("spot %d best %v beats overall %v", sr.Spot.ID, sr.Best.Score, res.Best.Score)
		}
	}
	if res.Generations != 8 {
		t.Errorf("generations = %d", res.Generations)
	}
	if res.Evaluations <= 0 || res.WallSeconds <= 0 {
		t.Errorf("bad accounting: evals=%d wall=%v", res.Evaluations, res.WallSeconds)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := smallProblem(t)
	run := func() *Result {
		b, err := NewHostBackend(p, HostConfig{Real: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, smallAlg(t), b, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best.Score != b.Best.Score || a.Best.Translation != b.Best.Translation {
		t.Errorf("same seed differs: %v vs %v", a.Best, b.Best)
	}
	for i := range a.Spots {
		if a.Spots[i].Best.Score != b.Spots[i].Best.Score {
			t.Errorf("spot %d differs", i)
		}
	}
}

func TestRunSeedMatters(t *testing.T) {
	p := smallProblem(t)
	mk := func(seed uint64) *Result {
		b, err := NewHostBackend(p, HostConfig{Real: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, smallAlg(t), b, seed)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if mk(1).Best.Translation == mk(2).Best.Translation {
		t.Error("different seeds gave identical best pose")
	}
}

func TestRunPoolRealMatchesHostReal(t *testing.T) {
	// The pool backend computes the same scores as the host backend;
	// partitioning only affects the simulated timeline, never results.
	p := smallProblem(t)
	hb, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Run(p, smallAlg(t), hb, 3)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPoolBackend(p, PoolConfig{
		Real:  true,
		Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
		Mode:  sched.Heterogeneous,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Run(p, smallAlg(t), pb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Best.Score != pres.Best.Score || hres.Best.Translation != pres.Best.Translation {
		t.Errorf("host best %v != pool best %v", hres.Best, pres.Best)
	}
}

func TestRunBestImprovesOnRandom(t *testing.T) {
	p := smallProblem(t)
	// Random baseline: M4-free single-generation GA with 1 generation.
	base, err := metaheuristic.NewGenetic("base", metaheuristic.Params{
		PopulationPerSpot: 16, SelectFraction: 1, Generations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := Run(p, base, bb, 5)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	ores, err := Run(p, smallAlg(t), ob, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ores.Best.Score > bres.Best.Score {
		t.Errorf("8-generation run (%v) worse than 1-generation run (%v)",
			ores.Best.Score, bres.Best.Score)
	}
}

func TestRunModeledEvaluationCounts(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: false, ModelCores: 12, ModelClockMHz: 2000})
	if err != nil {
		t.Fatal(err)
	}
	alg := smallAlg(t)
	res, err := Run(p, alg, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	pm := alg.Params()
	spots := len(p.Spots)
	// Per spot: initial pop + per generation (pop offspring scored +
	// improveFraction*pop*moves improve evals).
	perSpot := pm.PopulationPerSpot // seed
	perGen := pm.PopulationPerSpot + int(float64(pm.PopulationPerSpot)*pm.ImproveFraction+0.5)*pm.ImproveMoves
	want := int64(spots * (perSpot + pm.Generations*perGen))
	if res.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, want)
	}
	if res.SimulatedSeconds <= 0 {
		t.Error("no simulated time")
	}
}

func TestRunM4SingleGeneration(t *testing.T) {
	p := smallProblem(t)
	alg, err := metaheuristic.NewLocalSearch("m4", metaheuristic.Params{
		PopulationPerSpot: 32,
		ImproveMoves:      5,
		Generations:       99, // forced to 1 by the constructor
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, alg, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 1 {
		t.Errorf("M4 ran %d generations", res.Generations)
	}
	// Local search never worsens: every spot best must beat or match the
	// best random seed... which we can't see directly; at least all spots
	// report finite negative-or-positive scores.
	for _, sr := range res.Spots {
		if !sr.Best.Evaluated() || math.IsNaN(sr.Best.Score) {
			t.Errorf("spot %d best unscored", sr.Spot.ID)
		}
	}
}

func TestRunHeterogeneousFasterThanHomogeneousOnHertz(t *testing.T) {
	// Modeled full pipeline: warm-up + proportional split beats equal
	// split on the K40c+GTX580 node, as in the paper's Tables 8-9. The
	// workload must be large enough that the one-time warm-up cost and
	// the fixed per-launch overheads do not dominate (on trivial
	// workloads the homogeneous split wins, which is itself realistic).
	rec := molecule.SyntheticProtein("rec", 3000, 33)
	lig := molecule.SyntheticLigand("lig", 20, 34)
	p, err := NewProblem(rec, lig, surface.Options{MaxSpots: 8}, forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := metaheuristic.NewScatterSearch("big-ss", metaheuristic.Params{
		PopulationPerSpot: 256,
		SelectFraction:    1,
		ImproveFraction:   0.5,
		ImproveMoves:      4,
		Generations:       30,
	})
	if err != nil {
		t.Fatal(err)
	}
	simTime := func(mode sched.Mode) float64 {
		b, err := NewPoolBackend(p, PoolConfig{
			Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
			Mode:  mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, alg, b, 11)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedSeconds
	}
	hom := simTime(sched.Homogeneous)
	het := simTime(sched.Heterogeneous)
	if het >= hom {
		t.Errorf("heterogeneous (%v) not faster than homogeneous (%v)", het, hom)
	}
}

func TestRunGPUFasterThanCPUModel(t *testing.T) {
	p := smallProblem(t)
	alg := smallAlg(t)
	hb, err := NewHostBackend(p, HostConfig{ModelCores: 12, ModelClockMHz: 2000})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Run(p, alg, hb, 1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPoolBackend(p, PoolConfig{
		Specs: []cudasim.DeviceSpec{cudasim.GTX590, cudasim.GTX590, cudasim.GTX590, cudasim.GTX590},
		Mode:  sched.Homogeneous,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Run(p, alg, pb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pres.SimulatedSeconds >= hres.SimulatedSeconds {
		t.Errorf("multiGPU (%v) not faster than 12-core CPU (%v)",
			pres.SimulatedSeconds, hres.SimulatedSeconds)
	}
}

func TestRunEnergyAccounting(t *testing.T) {
	// Both backends model energy; the heterogeneous split wastes less
	// energy than the homogeneous one on a mixed node (the slow device no
	// longer idles at barriers — the paper's "waste energy" concern).
	rec := molecule.SyntheticProtein("rec", 3000, 33)
	lig := molecule.SyntheticLigand("lig", 20, 34)
	p, err := NewProblem(rec, lig, surface.Options{MaxSpots: 8}, forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Enough generations that the one-time warm-up energy amortizes, as
	// in the paper's 150-660-generation runs.
	alg, err := metaheuristic.NewScatterSearch("e-ss", metaheuristic.Params{
		PopulationPerSpot: 256, SelectFraction: 1,
		ImproveFraction: 0.5, ImproveMoves: 4, Generations: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	energy := func(mode sched.Mode) float64 {
		b, err := NewPoolBackend(p, PoolConfig{
			Specs: []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580},
			Mode:  mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, alg, b, 11)
		if err != nil {
			t.Fatal(err)
		}
		if res.EnergyJoules <= 0 {
			t.Fatal("no energy modeled")
		}
		return res.EnergyJoules
	}
	hom := energy(sched.Homogeneous)
	het := energy(sched.Heterogeneous)
	if het >= hom {
		t.Errorf("heterogeneous energy (%v J) not below homogeneous (%v J)", het, hom)
	}

	// The host backend reports energy too.
	hb, err := NewHostBackend(p, HostConfig{ModelCores: 4, ModelClockMHz: 3100})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Run(p, alg, hb, 11)
	if err != nil {
		t.Fatal(err)
	}
	if hres.EnergyJoules <= 0 {
		t.Error("host backend modeled no energy")
	}
}

func TestRunErrors(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	empty := &Problem{Receptor: p.Receptor, Ligand: p.Ligand}
	if _, err := Run(empty, smallAlg(t), b, 1); err == nil {
		t.Error("no error for problem without spots")
	}
}

func TestNewPoolBackendErrors(t *testing.T) {
	p := smallProblem(t)
	if _, err := NewPoolBackend(p, PoolConfig{}); err == nil {
		t.Error("no error for empty device list")
	}
	if _, err := NewPoolBackend(p, PoolConfig{
		Specs: []cudasim.DeviceSpec{cudasim.GTX580}, Real: true, Scorer: "bogus",
	}); err == nil {
		t.Error("no error for unknown scorer")
	}
}

func TestPoolBackendMemoryGate(t *testing.T) {
	// A device without enough global memory for the problem must be
	// rejected at construction — the paper's scaling-for-memory argument.
	tiny := cudasim.GTX580
	tiny.Name = "Tiny GPU"
	tiny.GlobalMemMB = 1 // 1 MB cannot hold the conformation buffers
	p, err := NewProblemFromDataset(Dataset2BXG(), forcefield.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPoolBackend(p, PoolConfig{Specs: []cudasim.DeviceSpec{tiny}}); err == nil {
		t.Error("oversized problem accepted on a 1 MB device")
	}
	// The real GTX580 fits it fine.
	if _, err := NewPoolBackend(p, PoolConfig{Specs: []cudasim.DeviceSpec{cudasim.GTX580}}); err != nil {
		t.Errorf("2BXG rejected on a real GTX580: %v", err)
	}
}
