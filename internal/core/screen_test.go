package core

import (
	"context"
	"errors"
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func screenAlgFactory() AlgorithmFactory {
	return func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewScatterSearch("screen-ss", metaheuristic.Params{
			PopulationPerSpot: 10, SelectFraction: 1,
			ImproveFraction: 0.5, ImproveMoves: 2, Generations: 4,
		})
	}
}

func TestScreenRanksLibrary(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 500, 41)
	library := []*molecule.Molecule{
		molecule.SyntheticLigand("lig-a", 10, 1),
		molecule.SyntheticLigand("lig-b", 18, 2),
		molecule.SyntheticLigand("lig-c", 25, 3),
	}
	res, err := Screen(rec, library, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 3 {
		t.Fatalf("%d entries", len(res.Ranking))
	}
	for i := 1; i < len(res.Ranking); i++ {
		if res.Ranking[i].Result.Best.Score < res.Ranking[i-1].Result.Best.Score {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
	if res.Evaluations <= 0 {
		t.Error("no evaluation accounting")
	}
}

func TestScreenIndependentOfLibraryOrder(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 500, 41)
	a := molecule.SyntheticLigand("lig-a", 10, 1)
	b := molecule.SyntheticLigand("lig-b", 18, 2)

	score := func(library []*molecule.Molecule, name string) float64 {
		res, err := Screen(rec, library, surface.Options{MaxSpots: 2}, forcefield.Options{},
			screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Ranking {
			if e.Ligand.Name == name {
				return e.Result.Best.Score
			}
		}
		t.Fatalf("ligand %s missing", name)
		return 0
	}
	// Seed lanes are keyed by a stable hash of the ligand name, so a
	// ligand's score is identical however the library is ordered or
	// padded — the property checkpoint resume relies on.
	s1 := score([]*molecule.Molecule{a, b}, "lig-a")
	s2 := score([]*molecule.Molecule{a, b}, "lig-a")
	if s1 != s2 {
		t.Errorf("same screen differs: %v vs %v", s1, s2)
	}
	if swapped := score([]*molecule.Molecule{b, a}, "lig-a"); swapped != s1 {
		t.Errorf("reordering the library changed lig-a's score: %v vs %v", swapped, s1)
	}
	c := molecule.SyntheticLigand("lig-c", 12, 3)
	if extended := score([]*molecule.Molecule{c, a, b}, "lig-a"); extended != s1 {
		t.Errorf("extending the library changed lig-a's score: %v vs %v", extended, s1)
	}
}

func TestScreenEmptyLibrary(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 500, 41)
	if _, err := Screen(rec, nil, surface.Options{}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 1); err == nil {
		t.Error("empty library accepted")
	}
}

func TestRunMultiStartPicksWinner(t *testing.T) {
	p := smallProblem(t)
	res, err := RunMultiStart(p, screenAlgFactory(),
		HostBackendFactory(HostConfig{Real: true}), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("%d runs", len(res.Runs))
	}
	for _, r := range res.Runs {
		if r.Best.Better(res.Best.Best) {
			t.Error("winner is not the best run")
		}
		if r.SimulatedSeconds > res.SimulatedSeconds {
			t.Error("makespan below a run's time")
		}
	}
	// Independent runs differ (stochastic restarts).
	if res.Runs[0].Best.Translation == res.Runs[1].Best.Translation {
		t.Error("independent runs produced identical poses")
	}
	// Multi-start is at least as good as the first run alone.
	if res.Best.Best.Score > res.Runs[0].Best.Score {
		t.Error("multi-start worse than its own first run")
	}
}

func TestRunMultiStartErrors(t *testing.T) {
	p := smallProblem(t)
	if _, err := RunMultiStart(p, screenAlgFactory(),
		HostBackendFactory(HostConfig{Real: true}), 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestSortRankingTieBreak(t *testing.T) {
	mk := func(name string, score float64) ScreenEntry {
		return ScreenEntry{
			Ligand: molecule.SyntheticLigand(name, 10, 1),
			Result: &Result{Best: conformation.Conformation{Score: score}},
		}
	}
	// Equal-energy ligands arrive in reverse-alphabetical library order;
	// the ranking must not preserve that accident.
	out := &ScreenResult{Ranking: []ScreenEntry{
		mk("lig-c", -5), mk("lig-b", -5), mk("lig-a", -5), mk("lig-d", -9),
	}}
	sortRanking(out)
	want := []string{"lig-d", "lig-a", "lig-b", "lig-c"}
	for i, w := range want {
		if got := out.Ranking[i].Ligand.Name; got != w {
			t.Errorf("rank %d: got %s want %s", i, got, w)
		}
	}
}

func TestScreenParallelMatchesSequential(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 500, 41)
	library := SyntheticLibrary(6)
	screen := func(workers int) *ScreenResult {
		res, err := ScreenCtx(context.Background(), rec, library,
			surface.Options{MaxSpots: 2}, forcefield.Options{},
			screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := screen(1)
	par := screen(4)
	if seq.SimulatedSeconds != par.SimulatedSeconds {
		t.Errorf("SimulatedSeconds differ: %v vs %v", seq.SimulatedSeconds, par.SimulatedSeconds)
	}
	if seq.Evaluations != par.Evaluations {
		t.Errorf("Evaluations differ: %d vs %d", seq.Evaluations, par.Evaluations)
	}
	for i := range seq.Ranking {
		s, p := seq.Ranking[i], par.Ranking[i]
		if s.Ligand.Name != p.Ligand.Name ||
			s.Result.Best.Score != p.Result.Best.Score ||
			s.Result.Best.Translation != p.Result.Best.Translation ||
			s.Result.Best.Orientation != p.Result.Best.Orientation {
			t.Errorf("rank %d differs: %s %v vs %s %v", i,
				s.Ligand.Name, s.Result.Best, p.Ligand.Name, p.Result.Best)
		}
	}
}

func TestScreenCtxCancelled(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 500, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScreenCtx(ctx, rec, SyntheticLibrary(3),
		surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), HostBackendFactory(HostConfig{Real: true}), 1, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	p := smallProblem(t)
	alg, err := screenAlgFactory()()
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, p, alg, backend, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunMultiStartCtxCancelled(t *testing.T) {
	p := smallProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunMultiStartCtx(ctx, p, screenAlgFactory(),
		HostBackendFactory(HostConfig{Real: true}), 2, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
