package core

import (
	"context"
	"testing"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

// TestScreenRankingInvariantToBatching is the golden byte-identity guarantee
// of the batched hot path: the full library ranking of core.Screen at a
// fixed seed is bit-for-bit unchanged by the batch chunk size, by disabling
// batching entirely, by the backend's worker count, and by the screen-level
// worker count. Batching is a throughput knob, never a semantic one.
func TestScreenRankingInvariantToBatching(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 500, 41)
	library := []*molecule.Molecule{
		molecule.SyntheticLigand("lig-a", 10, 1),
		molecule.SyntheticLigand("lig-b", 18, 2),
		molecule.SyntheticLigand("lig-c", 25, 3),
	}
	run := func(cfg HostConfig, workers int) *ScreenResult {
		t.Helper()
		res, err := ScreenCtx(context.Background(), rec, library,
			surface.Options{MaxSpots: 2}, forcefield.Options{},
			screenAlgFactory(), HostBackendFactory(cfg), 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(HostConfig{Real: true, Workers: 1}, 1)
	variants := []struct {
		name    string
		cfg     HostConfig
		workers int
	}{
		{"batch-chunk-1", HostConfig{Real: true, Workers: 1, BatchChunk: 1}, 1},
		{"batch-chunk-7", HostConfig{Real: true, Workers: 1, BatchChunk: 7}, 1},
		{"unbatched", HostConfig{Real: true, Workers: 1, DisableBatch: true}, 1},
		{"backend-workers-4", HostConfig{Real: true, Workers: 4, ModelCores: 1}, 1},
		{"screen-workers-3", HostConfig{Real: true, Workers: 1}, 3},
		{"unbatched-workers-4", HostConfig{Real: true, Workers: 4, ModelCores: 1, DisableBatch: true}, 3},
	}
	for _, v := range variants {
		got := run(v.cfg, v.workers)
		if len(got.Ranking) != len(base.Ranking) {
			t.Fatalf("%s: %d entries, want %d", v.name, len(got.Ranking), len(base.Ranking))
		}
		for i := range base.Ranking {
			want, have := base.Ranking[i], got.Ranking[i]
			if have.Ligand.Name != want.Ligand.Name {
				t.Errorf("%s: rank %d is %s, want %s", v.name, i, have.Ligand.Name, want.Ligand.Name)
				continue
			}
			if have.Result.Best.Score != want.Result.Best.Score {
				t.Errorf("%s: %s best score %v, want bit-identical %v",
					v.name, have.Ligand.Name, have.Result.Best.Score, want.Result.Best.Score)
			}
			if have.Result.Best.Translation != want.Result.Best.Translation ||
				have.Result.Best.Orientation != want.Result.Best.Orientation {
				t.Errorf("%s: %s best pose differs from baseline", v.name, have.Ligand.Name)
			}
			if have.Result.Evaluations != want.Result.Evaluations {
				t.Errorf("%s: %s evaluations %d, want %d",
					v.name, have.Ligand.Name, have.Result.Evaluations, want.Result.Evaluations)
			}
		}
		if got.Evaluations != base.Evaluations {
			t.Errorf("%s: total evaluations %d, want %d", v.name, got.Evaluations, base.Evaluations)
		}
	}
}
