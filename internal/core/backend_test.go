package core

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

func TestNewComputeKinds(t *testing.T) {
	p := smallProblem(t)
	for _, c := range []struct {
		real             bool
		scorer, improver string
		ok               bool
	}{
		{false, "", "", true},
		{true, "", "", true},
		{true, "tiled", "stochastic", true},
		{true, "grid", "", true},
		{true, "", "gradient", true},
		{true, "bogus", "", false},
		{true, "", "newton", false},
	} {
		_, err := newCompute(p, c.real, c.scorer, c.improver)
		if c.ok && err != nil {
			t.Errorf("newCompute(%+v): %v", c, err)
		}
		if !c.ok && err == nil {
			t.Errorf("newCompute(%+v) accepted", c)
		}
	}
}

func TestGradientImproveLowersEnergy(t *testing.T) {
	p := smallProblem(t)
	comp, err := newCompute(p, true, "", "gradient")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(81)
	sampler := conformation.NewSampler(p.Spots[0], p.LigandRadius())
	buf := make([]vec.V3, p.Ligand.NumAtoms())
	improvedCount := 0
	for trial := 0; trial < 20; trial++ {
		c := sampler.Random(r)
		comp.score(&c, buf)
		before := c.Score
		comp.improve(ImproveItem{Conf: &c, Sampler: sampler, RNG: r.Split(uint64(trial))}, 10, conformation.DefaultMoveScale, buf)
		if c.Score > before {
			t.Errorf("trial %d: gradient improve worsened %v -> %v", trial, before, c.Score)
		}
		if c.Score < before-1e-9 {
			improvedCount++
		}
		if !sampler.Contains(c) {
			t.Errorf("trial %d: improved pose escaped the spot region", trial)
		}
	}
	if improvedCount < 5 {
		t.Errorf("gradient descent improved only %d/20 poses", improvedCount)
	}
}

func TestGradientImproveDeterministic(t *testing.T) {
	p := smallProblem(t)
	comp, err := newCompute(p, true, "", "gradient")
	if err != nil {
		t.Fatal(err)
	}
	sampler := conformation.NewSampler(p.Spots[0], p.LigandRadius())
	buf := make([]vec.V3, p.Ligand.NumAtoms())
	start := sampler.Random(rng.New(7))
	run := func() float64 {
		c := start
		comp.score(&c, buf)
		comp.improve(ImproveItem{Conf: &c, Sampler: sampler, RNG: rng.New(1)}, 8, conformation.DefaultMoveScale, buf)
		return c.Score
	}
	if run() != run() {
		t.Error("gradient improve not deterministic")
	}
}

func TestGradientBackendEndToEnd(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true, Improver: "gradient"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Evaluated() || math.IsNaN(res.Best.Score) {
		t.Fatal("no valid best")
	}
	// Gradient local search should not be worse than no local search.
	noImp, err := metaheuristic.NewGenetic("plain", metaheuristic.Params{
		PopulationPerSpot: 16, SelectFraction: 1, Generations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(p, noImp, b2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score > res2.Best.Score {
		t.Errorf("gradient run (%v) worse than plain GA (%v)", res.Best.Score, res2.Best.Score)
	}
}

func TestGridScorerBackendEndToEnd(t *testing.T) {
	p := smallProblem(t)
	b, err := NewHostBackend(p, HostConfig{Real: true, Scorer: "grid"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Evaluated() {
		t.Fatal("no best with grid scorer")
	}
	// The grid approximates the exact field; best scores should be in the
	// same energy regime as the cell-list backend's.
	b2, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(p, smallAlg(t), b2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score > 0 && res2.Best.Score < -1 {
		t.Errorf("grid best %v vs exact best %v: wrong regime", res.Best.Score, res2.Best.Score)
	}
}

func TestGradientImproveFlexible(t *testing.T) {
	// Torsion-aware gradient descent: improving a flexible pose never
	// worsens it, keeps torsion vectors intact and actually bends bonds.
	p := smallProblem(t)
	dof := p.EnableFlexibility()
	if dof == 0 {
		t.Skip("ligand has no rotatable bonds")
	}
	comp, err := newCompute(p, true, "", "gradient")
	if err != nil {
		t.Fatal(err)
	}
	sampler := conformation.NewSampler(p.Spots[0], p.LigandRadius())
	sampler.SetTorsions(p.TorsionSet())
	buf := make([]vec.V3, p.Ligand.NumAtoms())
	r := rng.New(91)
	bentCount := 0
	for trial := 0; trial < 20; trial++ {
		c := sampler.Random(r)
		comp.score(&c, buf)
		before := c
		comp.improve(ImproveItem{Conf: &c, Sampler: sampler, RNG: r.Split(uint64(trial))}, 12, conformation.DefaultMoveScale, buf)
		if c.Score > before.Score {
			t.Errorf("trial %d: flexible gradient improve worsened %v -> %v", trial, before.Score, c.Score)
		}
		if len(c.Torsions) != dof {
			t.Fatalf("trial %d: improved pose lost torsions (%d of %d)", trial, len(c.Torsions), dof)
		}
		for k := range c.Torsions {
			if c.Torsions[k] != before.Torsions[k] {
				bentCount++
				break
			}
		}
	}
	if bentCount == 0 {
		t.Error("gradient descent never moved a torsion angle")
	}
}

func TestFlexibleDockingEndToEnd(t *testing.T) {
	p := smallProblem(t)
	dof := p.EnableFlexibility()
	if dof < 1 {
		t.Fatalf("12-atom branched ligand has %d rotatable bonds", dof)
	}
	if p.TorsionSet().Len() != dof {
		t.Error("TorsionSet inconsistent with EnableFlexibility")
	}
	b, err := NewHostBackend(p, HostConfig{Real: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallAlg(t), b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Evaluated() || math.IsNaN(res.Best.Score) {
		t.Fatal("no valid flexible best")
	}
	// Poses carry the full torsion vector.
	if len(res.Best.Torsions) != dof {
		t.Errorf("best pose has %d torsions, want %d", len(res.Best.Torsions), dof)
	}
	for _, sr := range res.Spots {
		if len(sr.Best.Torsions) != dof {
			t.Errorf("spot %d best has %d torsions", sr.Spot.ID, len(sr.Best.Torsions))
		}
	}
}

func TestFlexibleDockingDeterministic(t *testing.T) {
	run := func() float64 {
		p := smallProblem(t)
		p.EnableFlexibility()
		b, err := NewHostBackend(p, HostConfig{Real: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, smallAlg(t), b, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Score
	}
	if run() != run() {
		t.Error("flexible runs with the same seed differ")
	}
}

func TestFlexibleDiffersFromRigid(t *testing.T) {
	rigid := func() float64 {
		p := smallProblem(t)
		b, err := NewHostBackend(p, HostConfig{Real: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, smallAlg(t), b, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Score
	}()
	flex := func() float64 {
		p := smallProblem(t)
		p.EnableFlexibility()
		b, err := NewHostBackend(p, HostConfig{Real: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, smallAlg(t), b, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Score
	}()
	if rigid == flex {
		t.Error("flexible run identical to rigid run")
	}
}

func TestModeledComputeSurrogateProperties(t *testing.T) {
	p := smallProblem(t)
	mc := newModeledCompute(p)
	r := rng.New(83)
	sampler := conformation.NewSampler(p.Spots[1], p.LigandRadius())
	// The surrogate has a well-defined optimum: improving with many moves
	// converges toward the hidden target, and more moves never score
	// worse than fewer.
	c1 := sampler.Random(r)
	c2 := c1
	mc.score(&c1, nil)
	mc.score(&c2, nil)
	few, many := c1, c2
	mc.improve(ImproveItem{Conf: &few, Sampler: sampler}, 2, conformation.DefaultMoveScale, nil)
	mc.improve(ImproveItem{Conf: &many, Sampler: sampler}, 64, conformation.DefaultMoveScale, nil)
	if many.Score > few.Score {
		t.Errorf("64 moves (%v) worse than 2 moves (%v)", many.Score, few.Score)
	}
	if !many.Better(c1) {
		t.Error("improve did not improve the surrogate score")
	}
}
