// Package core is metascreen's virtual-screening engine: it ties the
// molecular model, scoring functions, surface spots, metaheuristics,
// host runtime and GPU simulator together into end-to-end screening runs,
// reproducing the paper's execution scheme (its sections 3.1-3.3).
//
// A run optimizes ligand conformations at every receptor surface spot
// simultaneously with a chosen metaheuristic. Evaluation is batched across
// spots each generation and dispatched to a Backend:
//
//   - HostBackend is the multicore "OpenMP" baseline;
//   - PoolBackend drives a simulated multi-GPU node through
//     internal/sched, in homogeneous, heterogeneous or dynamic mode.
//
// Both backends run in one of two compute modes:
//
//   - Real: conformation energies are actually computed with
//     internal/forcefield (used by tests, examples and benchmarks);
//   - Modeled: energies are synthesized from a smooth deterministic
//     surrogate and time comes from the calibrated cost model, which lets
//     the table harness replay the paper's full-scale workloads in
//     milliseconds.
package core

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

// Problem is one docking problem: a receptor with detected surface spots
// and a centered ligand.
type Problem struct {
	// Receptor is the target protein.
	Receptor *molecule.Molecule
	// Ligand is the small molecule, centered on its centroid.
	Ligand *molecule.Molecule
	// Spots are the independent surface regions.
	Spots []surface.Spot
	// FF selects the scoring terms.
	FF forcefield.Options

	recTopo  *forcefield.Topology
	ligTopo  *forcefield.Topology
	ligPos   []vec.V3
	torsions *molecule.TorsionSet
}

// NewProblem validates the molecules, detects surface spots and prepares
// scoring topologies.
func NewProblem(receptor, ligand *molecule.Molecule, spotOpts surface.Options, ff forcefield.Options) (*Problem, error) {
	if err := receptor.Validate(); err != nil {
		return nil, fmt.Errorf("core: receptor: %w", err)
	}
	if err := ligand.Validate(); err != nil {
		return nil, fmt.Errorf("core: ligand: %w", err)
	}
	spots, err := surface.FindSpots(receptor, spotOpts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lig := ligand.Centered()
	p := &Problem{
		Receptor: receptor,
		Ligand:   lig,
		Spots:    spots,
		FF:       ff,
		recTopo:  forcefield.NewTopology(receptor),
		ligTopo:  forcefield.NewTopology(lig),
	}
	p.ligPos = p.ligTopo.Pos
	return p, nil
}

// PairsPerConformation returns receptorAtoms * ligandAtoms, the work unit
// of one scoring evaluation.
func (p *Problem) PairsPerConformation() int {
	return p.Receptor.NumAtoms() * p.Ligand.NumAtoms()
}

// LigandRadius returns the centered ligand's bounding radius, which sets
// the conformation standoff.
func (p *Problem) LigandRadius() float64 { return p.Ligand.Radius() }

// NewScorer builds a fresh scorer of the given kind ("direct", "tiled",
// "celllist" or "grid") over the problem's topologies. Scorers are safe
// for concurrent Score calls. The grid scorer tabulates the receptor field
// once at construction (BINDSURF-style precomputed potentials).
func (p *Problem) NewScorer(kind string) (forcefield.Scorer, error) {
	switch kind {
	case "direct":
		return forcefield.NewDirect(p.recTopo, p.ligTopo, p.FF), nil
	case "tiled":
		return forcefield.NewTiled(p.recTopo, p.ligTopo, p.FF), nil
	case "celllist", "":
		return forcefield.NewCellList(p.recTopo, p.ligTopo, p.FF), nil
	case "grid":
		return forcefield.NewGrid(p.recTopo, p.ligTopo, p.FF, 0)
	}
	return nil, fmt.Errorf("core: unknown scorer %q", kind)
}

// SpotNeighborLists gathers, for every spot, the receptor atoms within the
// interaction cutoff of the spot's search region — the precomputed
// neighborhood a whole run's worth of poses at that spot is scored
// against. The region bounds every pose the spot's sampler can produce:
// translations stay inside the spot sphere, and atoms extend at most the
// ligand's reach beyond the translation (doubled for flexible ligands,
// whose torsioned branches can swing past the rigid bounding radius; the
// neighbor list's Covers check catches any pose that still escapes).
func (p *Problem) SpotNeighborLists(cells *forcefield.CellList) []*forcefield.NeighborList {
	reach := p.LigandRadius()
	if p.torsions != nil && p.torsions.Len() > 0 {
		reach *= 2
	}
	standoff := p.LigandRadius() + 1.5
	out := make([]*forcefield.NeighborList, len(p.Spots))
	for i, s := range p.Spots {
		base := s.Center.Add(s.Normal.Scale(standoff))
		half := vec.V3{X: 1, Y: 1, Z: 1}.Scale(s.Radius + reach + 1e-6)
		region := vec.NewAABB(base.Sub(half), base.Add(half))
		out[i] = forcefield.NewNeighborList(cells, p.recTopo, region)
	}
	return out
}

// NewGradientScorer builds a scorer with analytic forces (the tiled
// kernel), for gradient-descent local search.
func (p *Problem) NewGradientScorer() forcefield.GradientScorer {
	return forcefield.NewTiled(p.recTopo, p.ligTopo, p.FF)
}

// LigandPositions returns the centered ligand coordinates the scorers and
// conformations operate on. Callers must not mutate the slice.
func (p *Problem) LigandPositions() []vec.V3 { return p.ligPos }

// EnableFlexibility switches the problem to flexible-ligand docking: the
// ligand's rotatable bonds are detected and every conformation gains one
// torsion angle per bond. It returns the number of torsional degrees of
// freedom (possibly 0 for rigid ligands). Call before building backends
// and before Run.
func (p *Problem) EnableFlexibility() int {
	p.torsions = molecule.NewTorsionSet(p.Ligand)
	return p.torsions.Len()
}

// TorsionSet returns the ligand's torsional topology, nil for rigid runs.
func (p *Problem) TorsionSet() *molecule.TorsionSet { return p.torsions }

// SubsetSpots returns a problem over a subset of the receptor's spots,
// re-identified densely from 0. Topologies are shared with the parent (they
// are immutable). This is how multi-node runs partition the spot set: spots
// are independent sub-problems, so any partition preserves results.
func (p *Problem) SubsetSpots(indices []int) (*Problem, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("core: empty spot subset")
	}
	spots := make([]surface.Spot, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(p.Spots) {
			return nil, fmt.Errorf("core: spot index %d out of range [0,%d)", i, len(p.Spots))
		}
		s := p.Spots[i]
		s.ID = len(spots)
		spots = append(spots, s)
	}
	return &Problem{
		Receptor: p.Receptor,
		Ligand:   p.Ligand,
		Spots:    spots,
		FF:       p.FF,
		recTopo:  p.recTopo,
		ligTopo:  p.ligTopo,
		ligPos:   p.ligPos,
		torsions: p.torsions,
	}, nil
}

// Dataset is a named receptor-ligand benchmark pair.
type Dataset struct {
	// Name is the PDB-style identifier, e.g. "2BSM".
	Name string
	// Receptor and Ligand are the molecules.
	Receptor, Ligand *molecule.Molecule
}

// Dataset2BSM returns the synthetic stand-in for the paper's PDB:2BSM
// benchmark (receptor 3264 atoms, ligand 45).
func Dataset2BSM() Dataset {
	return Dataset{
		Name:     "2BSM",
		Receptor: molecule.Synthetic2BSMReceptor(),
		Ligand:   molecule.Synthetic2BSMLigand(),
	}
}

// Dataset2BXG returns the synthetic stand-in for the paper's PDB:2BXG
// benchmark (receptor 8609 atoms, ligand 32).
func Dataset2BXG() Dataset {
	return Dataset{
		Name:     "2BXG",
		Receptor: molecule.Synthetic2BXGReceptor(),
		Ligand:   molecule.Synthetic2BXGLigand(),
	}
}

// DatasetByName returns one of the paper's two benchmark datasets.
func DatasetByName(name string) (Dataset, error) {
	switch name {
	case "2BSM":
		return Dataset2BSM(), nil
	case "2BXG":
		return Dataset2BXG(), nil
	}
	return Dataset{}, fmt.Errorf("core: unknown dataset %q (want 2BSM or 2BXG)", name)
}

// NewProblemFromDataset builds the problem for a benchmark dataset with
// default spot detection (spots = receptorAtoms/100, as the paper's timing
// ratios imply).
func NewProblemFromDataset(d Dataset, ff forcefield.Options) (*Problem, error) {
	return NewProblem(d.Receptor, d.Ligand, surface.Options{}, ff)
}
