package core

import (
	"errors"
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
)

func hertzSpecs() []cudasim.DeviceSpec {
	return []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
}

// TestPoolBackendSurvivesDeviceLoss: a heterogeneous run whose GTX580 dies
// mid-screen finishes with byte-identical results (scores come from the
// host; faults perturb only the timeline) and a bounded slowdown.
func TestPoolBackendSurvivesDeviceLoss(t *testing.T) {
	p := smallProblem(t)
	mk := func(faults []cudasim.FaultPlan) *Result {
		t.Helper()
		b, err := NewPoolBackend(p, PoolConfig{
			Real:   true,
			Specs:  hertzSpecs(),
			Mode:   sched.Heterogeneous,
			Faults: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, smallAlg(t), b, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(nil)
	if base.DeviceFaults != 0 || base.Resplits != 0 {
		t.Fatalf("unfaulted run reports faults: %+v", base)
	}
	faulted := mk([]cudasim.FaultPlan{{}, {FailAt: base.SimulatedSeconds / 2}})

	if faulted.Best.Score != base.Best.Score || faulted.Best.Translation != base.Best.Translation {
		t.Errorf("faulted best %v differs from baseline %v", faulted.Best, base.Best)
	}
	if faulted.Evaluations != base.Evaluations {
		t.Errorf("faulted evaluations %d != baseline %d", faulted.Evaluations, base.Evaluations)
	}
	if faulted.DeviceFaults < 1 {
		t.Errorf("DeviceFaults = %d, want >= 1", faulted.DeviceFaults)
	}
	if faulted.Resplits < 1 {
		t.Errorf("Resplits = %d, want >= 1", faulted.Resplits)
	}
	if faulted.SimulatedSeconds <= base.SimulatedSeconds {
		t.Errorf("faulted makespan %v not slower than baseline %v",
			faulted.SimulatedSeconds, base.SimulatedSeconds)
	}
	if faulted.SimulatedSeconds > 2*base.SimulatedSeconds {
		t.Errorf("faulted makespan %v > 2x baseline %v",
			faulted.SimulatedSeconds, base.SimulatedSeconds)
	}
}

// TestPoolBackendAllDevicesLost: losing every device is an error, not a
// silent success with fabricated results.
func TestPoolBackendAllDevicesLost(t *testing.T) {
	p := smallProblem(t)
	b, err := NewPoolBackend(p, PoolConfig{
		Specs: hertzSpecs(),
		Mode:  sched.Homogeneous,
		Faults: []cudasim.FaultPlan{
			{FailAt: 1e-12},
			{FailAt: 1e-12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, smallAlg(t), b, 3); !errors.Is(err, sched.ErrAllDevicesLost) {
		t.Errorf("Run err = %v, want ErrAllDevicesLost", err)
	}
}

// TestCheckpointResumeAfterDeviceFault: a permanent fault kills the screen
// on the third ligand; the checkpoint holds the two completed ones, the
// resume re-docks only the unfinished ligand, and the final ranking is
// identical to a run that never faulted.
func TestCheckpointResumeAfterDeviceFault(t *testing.T) {
	rec, lib := checkpointFixtures() // 3 ligands
	cleanCfg := PoolConfig{Real: true, Specs: hertzSpecs(), Mode: sched.Heterogeneous}
	countingFactory := func(failOnCall int) (BackendFactory, *int) {
		calls := 0
		f := func(p *Problem) (Backend, error) {
			calls++
			cfg := cleanCfg
			if calls == failOnCall {
				cfg.Faults = []cudasim.FaultPlan{{FailAt: 1e-12}, {FailAt: 1e-12}}
			}
			return NewPoolBackend(p, cfg)
		}
		return f, &calls
	}

	// Reference: the same screen with no fault anywhere.
	reff, _ := countingFactory(0)
	ref, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), reff, 5, &Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}

	// Faulted pass: the backend for the third ligand loses both devices.
	cp := &Checkpoint{}
	faultf, _ := countingFactory(3)
	_, err = ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), faultf, 5, cp)
	if !errors.Is(err, sched.ErrAllDevicesLost) {
		t.Fatalf("faulted screen err = %v, want ErrAllDevicesLost", err)
	}
	if len(cp.Ligands) != 2 {
		t.Fatalf("checkpoint holds %d ligands after the fault, want 2", len(cp.Ligands))
	}

	// Resume with healthy hardware: only the unfinished ligand runs.
	resumef, calls := countingFactory(0)
	res, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), resumef, 5, cp)
	if err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Errorf("resume built %d backends, want 1 (completed ligands must not re-dock)", *calls)
	}
	if len(res.Ranking) != len(ref.Ranking) {
		t.Fatalf("resumed ranking has %d entries, want %d", len(res.Ranking), len(ref.Ranking))
	}
	for i := range ref.Ranking {
		if res.Ranking[i].Ligand.Name != ref.Ranking[i].Ligand.Name ||
			res.Ranking[i].Result.Best.Score != ref.Ranking[i].Result.Best.Score {
			t.Errorf("rank %d: resumed %s/%v vs reference %s/%v", i,
				res.Ranking[i].Ligand.Name, res.Ranking[i].Result.Best.Score,
				ref.Ranking[i].Ligand.Name, ref.Ranking[i].Result.Best.Score)
		}
	}
}

// TestScreenAggregatesFaultCounters: per-ligand fault counters roll up
// into the screen totals.
func TestScreenAggregatesFaultCounters(t *testing.T) {
	rec, lib := checkpointFixtures()
	// Fault only the GTX580, late enough that runs complete: measure one
	// clean ligand run first to place the fault mid-run.
	probe, err := ScreenResumable(rec, lib[:1], surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), PoolBackendFactory(PoolConfig{
			Real: true, Specs: hertzSpecs(), Mode: sched.Heterogeneous,
		}), 5, &Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PoolConfig{
		Real:  true,
		Specs: hertzSpecs(),
		Mode:  sched.Heterogeneous,
		Faults: []cudasim.FaultPlan{
			{},
			{FailAt: probe.SimulatedSeconds / 2},
		},
	}
	res, err := ScreenResumable(rec, lib, surface.Options{MaxSpots: 2}, forcefield.Options{},
		screenAlgFactory(), PoolBackendFactory(cfg), 5, &Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceFaults < 1 {
		t.Errorf("screen DeviceFaults = %d, want >= 1", res.DeviceFaults)
	}
	if res.Resplits < 1 {
		t.Errorf("screen Resplits = %d, want >= 1", res.Resplits)
	}
}
