package cudasim

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFaultPlans parses the fault-injection DSL shared by the vsrun
// -faults flag and the service's ScreenRequest.Faults field:
// comma-separated "dev<i>:<kind>@<value>" clauses, where kind is fail@T
// (permanent loss at simulated second T), hang@T (operations starting at
// or after T never complete), transient@R (per-operation error rate R) or
// throttle@Fx (throughput multiplier F). Multiple clauses for the same
// device merge into one plan. An empty spec returns nil. The seed derives
// each device's transient-error RNG so faulted runs stay reproducible.
func ParseFaultPlans(spec string, devices int, seed uint64) ([]FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plans := make([]FaultPlan, devices)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		devPart, rest, ok := strings.Cut(clause, ":")
		if !ok || !strings.HasPrefix(devPart, "dev") {
			return nil, fmt.Errorf("cudasim: bad fault clause %q (want dev<i>:<kind>@<value>)", clause)
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(devPart, "dev"))
		if err != nil || idx < 0 || idx >= devices {
			return nil, fmt.Errorf("cudasim: bad device in fault clause %q (machine has %d devices)", clause, devices)
		}
		kind, valPart, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("cudasim: bad fault clause %q (missing @value)", clause)
		}
		if kind == "throttle" {
			valPart = strings.TrimSuffix(valPart, "x")
		}
		val, err := strconv.ParseFloat(valPart, 64)
		if err != nil {
			return nil, fmt.Errorf("cudasim: bad value in fault clause %q: %v", clause, err)
		}
		p := &plans[idx]
		switch kind {
		case "fail":
			if val <= 0 {
				return nil, fmt.Errorf("cudasim: fail time must be positive in %q", clause)
			}
			p.FailAt = val
		case "hang":
			if val <= 0 {
				return nil, fmt.Errorf("cudasim: hang time must be positive in %q", clause)
			}
			p.HangAt = val
		case "transient":
			if val <= 0 || val >= 1 {
				return nil, fmt.Errorf("cudasim: transient rate must be in (0,1) in %q", clause)
			}
			p.TransientRate = val
			p.Seed = seed + uint64(idx)
		case "throttle":
			if val <= 0 || val >= 1 {
				return nil, fmt.Errorf("cudasim: throttle factor must be in (0,1) in %q", clause)
			}
			p.ThrottleFactor = val
		default:
			return nil, fmt.Errorf("cudasim: unknown fault kind %q in %q (want fail, hang, transient or throttle)", kind, clause)
		}
	}
	return plans, nil
}
