package cudasim

import (
	"strings"
	"testing"
)

func TestParseFaultPlans(t *testing.T) {
	plans, err := ParseFaultPlans("dev0:fail@2.5, dev1:transient@0.3, dev1:throttle@0.5x", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("len = %d, want 2", len(plans))
	}
	if plans[0].FailAt != 2.5 {
		t.Errorf("dev0 FailAt = %v, want 2.5", plans[0].FailAt)
	}
	// Clauses for the same device merge into one plan, with the RNG seed
	// derived per device.
	if plans[1].TransientRate != 0.3 || plans[1].ThrottleFactor != 0.5 || plans[1].Seed != 8 {
		t.Errorf("dev1 plan = %+v", plans[1])
	}

	if plans, err := ParseFaultPlans("", 2, 0); err != nil || plans != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", plans, err)
	}

	bad := []string{
		"dev2:fail@1",      // device out of range
		"gpu0:fail@1",      // bad device prefix
		"dev0:fail",        // missing @value
		"dev0:fail@0",      // non-positive time
		"dev0:transient@1", // rate out of (0,1)
		"dev0:melt@1",      // unknown kind
	}
	for _, spec := range bad {
		if _, err := ParseFaultPlans(spec, 2, 0); err == nil {
			t.Errorf("ParseFaultPlans(%q) accepted a bad spec", spec)
		}
	}
	if _, err := ParseFaultPlans("dev9:fail@1", 2, 0); err == nil || !strings.Contains(err.Error(), "2 devices") {
		t.Errorf("device-range error should name the device count, got %v", err)
	}
}
