package cudasim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPairRateOrdering(t *testing.T) {
	m := DefaultCostModel()
	// Scoring kernel: K40c must outrun every Fermi card; among the Fermi
	// cards, rate follows cores*clock.
	k40 := m.PairRate(TeslaK40c, KernelScoring)
	g580 := m.PairRate(GTX580, KernelScoring)
	g590 := m.PairRate(GTX590, KernelScoring)
	c2075 := m.PairRate(TeslaC2075, KernelScoring)
	if !(k40 > g580 && g580 > g590 && g590 > c2075) {
		t.Errorf("rate ordering wrong: k40=%g 580=%g 590=%g c2075=%g", k40, g580, g590, c2075)
	}
}

func TestHertzThroughputRatioMatchesPaperShape(t *testing.T) {
	// The paper's heterogeneous gain on Hertz peaks at 1.56x for M1, which
	// implies a K40c/GTX580 scoring ratio near 2.1 (gain = (1+r)/2).
	m := DefaultCostModel()
	r := m.PairRate(TeslaK40c, KernelScoring) / m.PairRate(GTX580, KernelScoring)
	if r < 1.8 || r < 1 || r > 2.6 {
		t.Errorf("K40c/GTX580 scoring ratio = %v, want ~2.1", r)
	}
	// For the divergent improve kernel the ratio shrinks (paper: M2/M3
	// gains of only ~1.3).
	ri := m.PairRate(TeslaK40c, KernelImprove) / m.PairRate(GTX580, KernelImprove)
	if ri >= r {
		t.Errorf("improve ratio %v should be below scoring ratio %v", ri, r)
	}
	if ri < 1.3 || ri > 2.0 {
		t.Errorf("K40c/GTX580 improve ratio = %v, want ~1.6", ri)
	}
}

func TestJupiterDevicesNearlyEqual(t *testing.T) {
	// GTX590 vs C2075 are both Fermi; paper: "computational capabilities
	// pretty much the same", heterogeneous gains of only 1-6%.
	m := DefaultCostModel()
	r := m.PairRate(GTX590, KernelScoring) / m.PairRate(TeslaC2075, KernelScoring)
	if r < 1.05 || r > 1.4 {
		t.Errorf("GTX590/C2075 ratio = %v, want ~1.2", r)
	}
}

func TestKernelTimeScalesLinearlyAboveSaturation(t *testing.T) {
	m := DefaultCostModel()
	l := ScoringLaunch{
		Kind:                 KernelScoring,
		Conformations:        4096,
		PairsPerConformation: 100000,
	}
	t1 := m.KernelTime(GTX580, l)
	l.Conformations *= 2
	t2 := m.KernelTime(GTX580, l)
	ratio := t2 / t1
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling saturated launch scaled time by %v, want ~2", ratio)
	}
}

func TestKernelTimeWaveQuantization(t *testing.T) {
	m := DefaultCostModel()
	// GTX580 has 16 warp slots; with 8 warps/block, 16 conformations fill
	// exactly one wave. One conformation costs the same wave.
	small := ScoringLaunch{Kind: KernelScoring, Conformations: 1, PairsPerConformation: 1000, WarpsPerBlock: 8}
	fill := small
	fill.Conformations = 16
	t1 := m.KernelTime(GTX580, small)
	t16 := m.KernelTime(GTX580, fill)
	if math.Abs(t1-t16) > 1e-15 {
		t.Errorf("launches within one wave differ: %v vs %v", t1, t16)
	}
	over := small
	over.Conformations = 17
	if m.KernelTime(GTX580, over) <= t16 {
		t.Error("crossing a wave boundary did not increase time")
	}
}

func TestKernelTimeIncludesLaunchOverhead(t *testing.T) {
	m := DefaultCostModel()
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 1, PairsPerConformation: 1}
	if got := m.KernelTime(GTX580, l); got < m.LaunchOverhead {
		t.Errorf("tiny kernel time %v below launch overhead %v", got, m.LaunchOverhead)
	}
}

func TestKernelTimeImproveSlowerOnKepler(t *testing.T) {
	m := DefaultCostModel()
	mk := func(k KernelKind) float64 {
		return m.KernelTime(TeslaK40c, ScoringLaunch{
			Kind: k, Conformations: 1024, PairsPerConformation: 100000,
		})
	}
	if mk(KernelImprove) <= mk(KernelScoring) {
		t.Error("improve kernel not slower than scoring on Kepler")
	}
}

func TestKernelTimePanicsOnInvalid(t *testing.T) {
	m := DefaultCostModel()
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid launch")
		}
	}()
	m.KernelTime(GTX580, ScoringLaunch{Conformations: 0, PairsPerConformation: 10})
}

func TestTransferTime(t *testing.T) {
	m := DefaultCostModel()
	if got := m.TransferTime(0); got != 0 {
		t.Errorf("zero-byte transfer = %v", got)
	}
	one := m.TransferTime(1 << 20)
	two := m.TransferTime(2 << 20)
	if two <= one {
		t.Error("transfer time not increasing")
	}
	// Latency floor.
	if tiny := m.TransferTime(1); tiny < m.PCIeLatency {
		t.Errorf("transfer %v below latency %v", tiny, m.PCIeLatency)
	}
}

func TestCPUTimeMatchesRate(t *testing.T) {
	m := DefaultCostModel()
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 100, PairsPerConformation: 1000}
	got := m.CPUTime(12, 2000, l)
	want := l.PairOps() / m.CPURate(12, 2000)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("CPUTime = %v, want %v", got, want)
	}
}

func TestGPUFasterThanCPUByPaperMagnitude(t *testing.T) {
	// Jupiter: 4x GTX590 vs 12 CPU cores at 2 GHz -> paper reports ~38-45x
	// for the homogeneous system.
	m := DefaultCostModel()
	gpu := 4 * m.PairRate(GTX590, KernelScoring)
	cpu := m.CPURate(12, 2000)
	ratio := gpu / cpu
	if ratio < 25 || ratio > 60 {
		t.Errorf("4xGTX590 vs 12-core CPU = %vx, want ~38x", ratio)
	}
}

func TestPairOps(t *testing.T) {
	l := ScoringLaunch{Conformations: 10, PairsPerConformation: 100, EvalsPerConformation: 3}
	if got := l.PairOps(); got != 3000 {
		t.Errorf("PairOps = %v", got)
	}
	// Defaulted evals.
	l2 := ScoringLaunch{Conformations: 10, PairsPerConformation: 100}
	if got := l2.PairOps(); got != 1000 {
		t.Errorf("PairOps with default evals = %v", got)
	}
}

func TestHostPhaseTime(t *testing.T) {
	m := DefaultCostModel()
	if m.HostPhaseTime(-5) != 0 {
		t.Error("negative population not clamped")
	}
	if m.HostPhaseTime(1000) <= 0 {
		t.Error("host phase time not positive")
	}
}

func TestQuickKernelTimeMonotonicInWork(t *testing.T) {
	m := DefaultCostModel()
	f := func(conf, pairs uint16) bool {
		c := int(conf%2048) + 1
		p := int(pairs%50000) + 1
		l := ScoringLaunch{Kind: KernelScoring, Conformations: c, PairsPerConformation: p}
		bigger := l
		bigger.PairsPerConformation = p * 2
		return m.KernelTime(GTX590, bigger) >= m.KernelTime(GTX590, l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelKindString(t *testing.T) {
	if KernelScoring.String() != "scoring" || KernelImprove.String() != "improve" {
		t.Error("kernel kind names wrong")
	}
	if KernelKind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}
