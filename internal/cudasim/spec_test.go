package cudasim

import "testing"

func TestPaperSpecsMatchTables(t *testing.T) {
	// Cross-check against the paper's Tables 2 and 3.
	cases := []struct {
		spec  DeviceSpec
		cores int
		sms   int
		ccc   string
	}{
		{GTX590, 512, 16, "2.0"},
		{TeslaC2075, 448, 14, "2.0"},
		{TeslaK40c, 2880, 15, "3.5"},
		{GTX580, 512, 16, "2.0"},
	}
	for _, c := range cases {
		if got := c.spec.Cores(); got != c.cores {
			t.Errorf("%s: %d cores, want %d", c.spec.Name, got, c.cores)
		}
		if c.spec.SMs != c.sms {
			t.Errorf("%s: %d SMs, want %d", c.spec.Name, c.spec.SMs, c.sms)
		}
		if c.spec.CCC != c.ccc {
			t.Errorf("%s: CCC %s, want %s", c.spec.Name, c.spec.CCC, c.ccc)
		}
		if err := c.spec.Validate(); err != nil {
			t.Errorf("%s: %v", c.spec.Name, err)
		}
	}
}

func TestWarpSlots(t *testing.T) {
	if got := GTX590.WarpSlots(); got != 16 {
		t.Errorf("GTX590 warp slots = %d, want 16", got)
	}
	if got := TeslaK40c.WarpSlots(); got != 90 {
		t.Errorf("K40c warp slots = %d, want 90", got)
	}
}

func TestCatalogueValid(t *testing.T) {
	cat := Catalogue()
	if len(cat) < 4 {
		t.Fatalf("catalogue has %d entries", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate catalogue entry %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestSpecByName(t *testing.T) {
	s, ok := SpecByName("Tesla K40c")
	if !ok || s.Arch != Kepler {
		t.Errorf("SpecByName(K40c) = %v, %v", s, ok)
	}
	if _, ok := SpecByName("No Such GPU"); ok {
		t.Error("found a nonexistent GPU")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := GTX580
	bad := []DeviceSpec{
		func() DeviceSpec { s := good; s.Name = ""; return s }(),
		func() DeviceSpec { s := good; s.SMs = 0; return s }(),
		func() DeviceSpec { s := good; s.ClockMHz = -1; return s }(),
		func() DeviceSpec { s := good; s.MaxThreadsPerBlock = 16; return s }(),
		func() DeviceSpec { s := good; s.MaxThreadsPerSM = 512; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestArchString(t *testing.T) {
	for _, a := range []Arch{Tesla, Fermi, Kepler, Maxwell} {
		if a.String() == "" {
			t.Errorf("empty name for arch %d", int(a))
		}
	}
	if Arch(99).String() == "" {
		t.Error("empty name for unknown arch")
	}
}

func TestSpecString(t *testing.T) {
	if GTX590.String() == "" {
		t.Error("empty spec string")
	}
}
