package cudasim

import (
	"fmt"
	"sync"

	"github.com/metascreen/metascreen/internal/rng"
)

// Device is one simulated GPU: a spec plus a simulated timeline and memory
// accounting. Operations advance the timeline by their modeled duration and
// return Events with start/end timestamps. A Device is safe for concurrent
// use, but like a real CUDA context it is normally driven by a single host
// goroutine (the paper binds one OpenMP thread per GPU).
//
// A Device can carry a FaultPlan; operations then return typed errors
// (see fault.go) and the device may become fenced ("lost"), after which
// every operation fails immediately without advancing time.
type Device struct {
	// ID is the device index within its Context, as cudaSetDevice sees it.
	ID int
	// Spec is the hardware description.
	Spec DeviceSpec

	model CostModel

	mu        sync.Mutex
	streams   map[int]float64 // stream id -> stream clock, seconds
	allocated int64
	kernels   int     // kernels launched successfully, for introspection
	busyTime  float64 // total operation time across streams, for energy
	confsDone int64   // conformations evaluated by successful launches

	plan     FaultPlan
	faultRng *rng.Source // transient draws; nil when the plan injects none
	watchdog float64     // hang detection deadline, simulated seconds
	lost     bool
	lostAt   float64
}

// Event is a completed simulated operation on a device stream.
type Event struct {
	// Device is the device ID.
	Device int
	// Stream is the stream the operation ran on.
	Stream int
	// Start and End are simulated timestamps in seconds.
	Start, End float64
	// Label describes the operation.
	Label string
}

// Duration returns the simulated duration of the event.
func (e Event) Duration() float64 { return e.End - e.Start }

// DefaultStream is the stream used by operations that do not choose one.
const DefaultStream = 0

// newDevice constructs a device; use Context to create devices.
func newDevice(id int, spec DeviceSpec, model CostModel) *Device {
	return &Device{
		ID: id, Spec: spec, model: model,
		streams:  map[int]float64{DefaultStream: 0},
		watchdog: DefaultWatchdog,
	}
}

// SetFaultPlan arms (or, with the zero plan, disarms) fault injection on
// the device and rewinds any fault state so the plan replays from scratch.
func (d *Device) SetFaultPlan(p FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan = p
	d.lost = false
	d.lostAt = 0
	d.faultRng = nil
	if p.TransientRate > 0 {
		d.faultRng = rng.New(p.Seed)
	}
}

// SetWatchdog sets the per-operation hang deadline in simulated seconds;
// non-positive restores DefaultWatchdog.
func (d *Device) SetWatchdog(seconds float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if seconds <= 0 {
		seconds = DefaultWatchdog
	}
	d.watchdog = seconds
}

// Lost reports whether the device has been fenced by a permanent fault
// or a watchdog-detected hang.
func (d *Device) Lost() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lost
}

// ConformationsCompleted returns the number of conformations evaluated by
// launches that completed successfully.
func (d *Device) ConformationsCompleted() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.confsDone
}

// advance moves the given stream clock forward by dur and returns the
// event, applying the device's fault plan:
//
//   - a fenced device fails immediately without advancing time;
//   - an operation starting at or after HangAt never completes: the caller
//     is charged the watchdog deadline and the device is fenced;
//   - an operation starting inside the throttle window is slowed by
//     1/ThrottleFactor;
//   - an operation that would run past FailAt aborts at FailAt and fences
//     the device;
//   - otherwise the operation completes, then may draw a transient error
//     (full time charged — the work ran and produced garbage).
func (d *Device) advance(stream int, dur float64, label string) (Event, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := d.streams[stream]
	if d.lost {
		ev := Event{Device: d.ID, Stream: stream, Start: start, End: start, Label: label}
		return ev, &DeviceError{Device: d.ID, Kind: FaultPermanent, Op: label, At: d.lostAt}
	}
	if d.plan.active() {
		if d.plan.HangAt > 0 && start >= d.plan.HangAt {
			end := start + d.watchdog
			d.streams[stream] = end
			d.lost = true
			d.lostAt = end
			ev := Event{Device: d.ID, Stream: stream, Start: start, End: end, Label: label}
			return ev, &DeviceError{Device: d.ID, Kind: FaultHang, Op: label, At: end}
		}
		dur = d.plan.throttledDuration(start, dur)
		if d.plan.FailAt > 0 && start+dur > d.plan.FailAt {
			end := d.plan.FailAt
			if end < start {
				end = start
			}
			d.streams[stream] = end
			d.busyTime += end - start
			d.lost = true
			d.lostAt = end
			ev := Event{Device: d.ID, Stream: stream, Start: start, End: end, Label: label}
			return ev, &DeviceError{Device: d.ID, Kind: FaultPermanent, Op: label, At: end}
		}
	}
	end := start + dur
	d.streams[stream] = end
	d.busyTime += dur
	ev := Event{Device: d.ID, Stream: stream, Start: start, End: end, Label: label}
	if d.faultRng != nil && d.faultRng.Float64() < d.plan.TransientRate {
		return ev, &DeviceError{Device: d.ID, Kind: FaultTransient, Op: label, At: end}
	}
	return ev, nil
}

// Malloc reserves bytes of simulated device memory. It fails like
// cudaMalloc when the device is out of memory.
func (d *Device) Malloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("cudasim: negative allocation")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	capacity := int64(d.Spec.GlobalMemMB) * 1 << 20
	if d.allocated+bytes > capacity {
		return fmt.Errorf("cudasim: %s out of memory: %d + %d > %d bytes",
			d.Spec.Name, d.allocated, bytes, capacity)
	}
	d.allocated += bytes
	return nil
}

// Free releases bytes of simulated device memory.
func (d *Device) Free(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.allocated -= bytes
	if d.allocated < 0 {
		d.allocated = 0
	}
}

// Allocated returns the simulated bytes currently allocated.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// CopyToDevice models a host-to-device transfer on a stream.
func (d *Device) CopyToDevice(stream int, bytes int) (Event, error) {
	return d.advance(stream, d.model.TransferTime(bytes), "h2d")
}

// CopyToHost models a device-to-host transfer on a stream.
func (d *Device) CopyToHost(stream int, bytes int) (Event, error) {
	return d.advance(stream, d.model.TransferTime(bytes), "d2h")
}

// Launch models the execution of a docking kernel on a stream. The kernel
// and conformation counters advance only on success.
func (d *Device) Launch(stream int, l ScoringLaunch) (Event, error) {
	dur := d.model.KernelTime(d.Spec, l)
	ev, err := d.advance(stream, dur, l.Kind.String())
	if err == nil {
		d.mu.Lock()
		d.kernels++
		d.confsDone += int64(l.Conformations)
		d.mu.Unlock()
	}
	return ev, err
}

// Idle advances a stream without work, modeling host-imposed waiting (for
// example a barrier with other devices).
func (d *Device) Idle(stream int, until float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.streams[stream] < until {
		d.streams[stream] = until
	}
}

// StreamClock returns the current simulated time of one stream.
func (d *Device) StreamClock(stream int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.streams[stream]
}

// Synchronize returns the simulated time at which all streams are idle,
// like cudaDeviceSynchronize.
func (d *Device) Synchronize() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := 0.0
	for _, c := range d.streams {
		if c > t {
			t = c
		}
	}
	return t
}

// Kernels returns the number of kernels launched so far.
func (d *Device) Kernels() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernels
}

// Reset rewinds all stream clocks and counters to zero, keeping memory
// allocations. Fault state rewinds too — the plan stays armed and replays
// identically, which is what makes faulted runs reproducible.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for s := range d.streams {
		d.streams[s] = 0
	}
	d.kernels = 0
	d.busyTime = 0
	d.confsDone = 0
	d.lost = false
	d.lostAt = 0
	if d.plan.TransientRate > 0 {
		d.faultRng = rng.New(d.plan.Seed)
	}
}

// Context owns the simulated devices of one node, playing the role of the
// CUDA runtime plus NVML for device discovery.
type Context struct {
	model   CostModel
	devices []*Device
}

// NewContext creates a node with one simulated device per spec, using the
// default cost model.
func NewContext(specs ...DeviceSpec) (*Context, error) {
	return NewContextWithModel(DefaultCostModel(), specs...)
}

// NewContextWithModel creates a node with a custom cost model.
func NewContextWithModel(model CostModel, specs ...DeviceSpec) (*Context, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cudasim: node with no devices")
	}
	c := &Context{model: model}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		c.devices = append(c.devices, newDevice(i, s, model))
	}
	return c, nil
}

// DeviceCount returns the number of devices, like cudaGetDeviceCount.
func (c *Context) DeviceCount() int { return len(c.devices) }

// Device returns device i, like cudaSetDevice selecting a context.
func (c *Context) Device(i int) *Device {
	if i < 0 || i >= len(c.devices) {
		panic(fmt.Sprintf("cudasim: device index %d out of range [0,%d)", i, len(c.devices)))
	}
	return c.devices[i]
}

// Devices returns all devices in index order.
func (c *Context) Devices() []*Device {
	out := make([]*Device, len(c.devices))
	copy(out, c.devices)
	return out
}

// Model returns the context's cost model.
func (c *Context) Model() CostModel { return c.model }

// Properties returns the spec of device i, like cudaGetDeviceProperties.
func (c *Context) Properties(i int) DeviceSpec { return c.Device(i).Spec }

// ResetAll rewinds every device's timeline.
func (c *Context) ResetAll() {
	for _, d := range c.devices {
		d.Reset()
	}
}
