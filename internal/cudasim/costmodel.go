package cudasim

import (
	"fmt"
	"math"
)

// KernelKind distinguishes the two docking kernels, which behave
// differently on the simulated hardware.
type KernelKind int

const (
	// KernelScoring is the tiled Lennard-Jones scoring kernel: regular,
	// memory-bound, one conformation per warp (paper section 3.2).
	KernelScoring KernelKind = iota
	// KernelImprove is the local-search kernel: the same pair loop inside a
	// data-dependent accept/reject loop, so it diverges. Divergence costs
	// relatively more on wide-issue Kepler SMs, which is why the paper's
	// improvement-heavy metaheuristics (M2, M3) gain less from the K40c.
	KernelImprove
)

// String implements fmt.Stringer.
func (k KernelKind) String() string {
	switch k {
	case KernelScoring:
		return "scoring"
	case KernelImprove:
		return "improve"
	}
	return fmt.Sprintf("KernelKind(%d)", int(k))
}

// CostModel holds the calibration constants of the execution model. The
// defaults reproduce the shape of the paper's Tables 6-9 (see DESIGN.md,
// "Workload calibration").
type CostModel struct {
	// CyclesPerPairGPU is the per-lane cycle cost of one atom-pair
	// interaction in the tiled kernel, including its share of memory
	// stalls (the kernel is memory-bound).
	CyclesPerPairGPU float64
	// CyclesPerPairCPU is the per-core cycle cost of one atom-pair
	// interaction in the scalar host loop.
	CyclesPerPairCPU float64
	// LaunchOverhead is the fixed host-side cost of one kernel launch, in
	// seconds.
	LaunchOverhead float64
	// PCIeBandwidth is the host-device transfer bandwidth in bytes/s.
	PCIeBandwidth float64
	// PCIeLatency is the fixed per-transfer latency in seconds.
	PCIeLatency float64
	// HostOpTime is the host time per population element per generation
	// spent in the serial Select/Combine/Include phases, in seconds.
	HostOpTime float64
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		CyclesPerPairGPU: 32,
		CyclesPerPairCPU: 12,
		LaunchOverhead:   10e-6,
		PCIeBandwidth:    6e9,
		PCIeLatency:      20e-6,
		HostOpTime:       150e-9,
	}
}

// archEfficiency returns the sustained fraction of peak issue rate the
// given architecture achieves on each kernel. Fermi is the calibration
// baseline. Kepler's 192-core SMs need 6-way ILP/occupancy the docking
// kernels don't fully supply, and divergence in the improve kernel widens
// that gap — the effect behind the paper's per-metaheuristic differences
// on Hertz.
func archEfficiency(a Arch, k KernelKind) float64 {
	switch a {
	case Tesla:
		return 0.85
	case Fermi:
		return 1.0
	case Kepler:
		if k == KernelImprove {
			return 0.60
		}
		return 0.78
	case Maxwell:
		return 1.05
	}
	return 1.0
}

// PairRate returns the device's sustained atom-pair interaction throughput
// (pairs/second) for the given kernel, ignoring wave quantization.
func (m CostModel) PairRate(spec DeviceSpec, kind KernelKind) float64 {
	return float64(spec.Cores()) * spec.ClockHz() / m.CyclesPerPairGPU * archEfficiency(spec.Arch, kind)
}

// CPURate returns a host's sustained pair throughput (pairs/second) for
// cores parallel workers at clockMHz.
func (m CostModel) CPURate(cores int, clockMHz float64) float64 {
	return float64(cores) * clockMHz * 1e6 / m.CyclesPerPairCPU
}

// ScoringLaunch describes one kernel launch: a batch of conformations, each
// evaluated against the receptor. One conformation maps to one warp, as in
// the paper's section 3.2.
type ScoringLaunch struct {
	// Kind selects the kernel.
	Kind KernelKind
	// Conformations is the number of individuals in the batch.
	Conformations int
	// PairsPerConformation is receptorAtoms * ligandAtoms.
	PairsPerConformation int
	// EvalsPerConformation is the number of full pair-loop evaluations per
	// individual: 1 for plain scoring, the local-search move count for the
	// improve kernel.
	EvalsPerConformation int
	// WarpsPerBlock is the CUDA block granularity; 0 means 8 (256-thread
	// blocks, the paper-era default).
	WarpsPerBlock int
}

// WithConformations returns a copy of the launch resized to n individuals.
func (l ScoringLaunch) WithConformations(n int) ScoringLaunch {
	l.Conformations = n
	return l
}

// normalized returns the launch with defaults applied.
func (l ScoringLaunch) normalized() ScoringLaunch {
	if l.WarpsPerBlock <= 0 {
		l.WarpsPerBlock = 8
	}
	if l.EvalsPerConformation <= 0 {
		l.EvalsPerConformation = 1
	}
	return l
}

// Validate checks the launch parameters.
func (l ScoringLaunch) Validate() error {
	if l.Conformations <= 0 {
		return fmt.Errorf("cudasim: launch with %d conformations", l.Conformations)
	}
	if l.PairsPerConformation <= 0 {
		return fmt.Errorf("cudasim: launch with %d pairs per conformation", l.PairsPerConformation)
	}
	return nil
}

// PairOps returns the total pair interactions the launch evaluates.
func (l ScoringLaunch) PairOps() float64 {
	l = l.normalized()
	return float64(l.Conformations) * float64(l.PairsPerConformation) * float64(l.EvalsPerConformation)
}

// KernelTime returns the simulated execution time of the launch on a device
// with the given spec, at warp/wave granularity:
//
//	warps     = blocks * warpsPerBlock   (partial blocks round up)
//	waves     = ceil(warps / device warp slots)
//	warp time = evals * pairs * cycles-per-pair / (warp lanes * clock * eff)
//	time      = waves * warp time
//
// Wave quantization is what makes very small launches (the warm-up phase)
// cheap but not free, and is the subject of the block-granularity ablation.
func (m CostModel) KernelTime(spec DeviceSpec, l ScoringLaunch) float64 {
	l = l.normalized()
	if err := l.Validate(); err != nil {
		panic(err)
	}
	blocks := (l.Conformations + l.WarpsPerBlock - 1) / l.WarpsPerBlock
	warps := blocks * l.WarpsPerBlock
	waves := math.Ceil(float64(warps) / float64(spec.WarpSlots()))
	eff := archEfficiency(spec.Arch, l.Kind)
	warpTime := float64(l.EvalsPerConformation) * float64(l.PairsPerConformation) *
		m.CyclesPerPairGPU / (WarpSize * spec.ClockHz() * eff)
	return waves*warpTime + m.LaunchOverhead
}

// TransferTime returns the simulated duration of a host-device copy of the
// given size in bytes (either direction).
func (m CostModel) TransferTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.PCIeLatency + float64(bytes)/m.PCIeBandwidth
}

// CPUTime returns the simulated duration of evaluating the launch's pair
// operations on a host with cores workers at clockMHz, assuming perfect
// static load balance (the OpenMP baseline).
func (m CostModel) CPUTime(cores int, clockMHz float64, l ScoringLaunch) float64 {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return l.PairOps() / m.CPURate(cores, clockMHz)
}

// HostPhaseTime returns the simulated duration of the serial host phases
// (Select/Combine/Include) over a population of the given size.
func (m CostModel) HostPhaseTime(population int) float64 {
	if population < 0 {
		population = 0
	}
	return float64(population) * m.HostOpTime
}
