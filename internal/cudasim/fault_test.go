package cudasim

import (
	"errors"
	"math"
	"testing"
)

func scoringProbe(confs int) ScoringLaunch {
	return ScoringLaunch{Kind: KernelScoring, Conformations: confs, PairsPerConformation: 10000}
}

func TestFaultZeroPlanNeverErrs(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	d.SetFaultPlan(FaultPlan{})
	if _, err := d.CopyToDevice(DefaultStream, 1<<20); err != nil {
		t.Fatalf("h2d: %v", err)
	}
	if _, err := d.Launch(DefaultStream, scoringProbe(64)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if _, err := d.CopyToHost(DefaultStream, 512); err != nil {
		t.Fatalf("d2h: %v", err)
	}
	if d.Lost() {
		t.Error("device lost with zero plan")
	}
}

func TestFaultPermanentClampsAndFences(t *testing.T) {
	// Measure the clean duration first, then kill the device halfway
	// through the same launch.
	clean := testContext(t, GTX580).Device(0)
	ev := mustOp(t)(clean.Launch(DefaultStream, scoringProbe(1024)))
	dur := ev.Duration()

	d := testContext(t, GTX580).Device(0)
	d.SetFaultPlan(FaultPlan{FailAt: dur / 2})
	fev, err := d.Launch(DefaultStream, scoringProbe(1024))
	if err == nil {
		t.Fatal("launch past FailAt did not error")
	}
	if !IsPermanent(err) || !errors.Is(err, ErrDeviceLost) {
		t.Errorf("error not permanent: %v", err)
	}
	if fev.End != dur/2 {
		t.Errorf("aborted event ends at %v, want clamp to FailAt %v", fev.End, dur/2)
	}
	if !d.Lost() {
		t.Error("device not fenced after permanent fault")
	}
	if got := d.ConformationsCompleted(); got != 0 {
		t.Errorf("aborted launch counted %d conformations", got)
	}
	// Every later operation fails immediately, without advancing time.
	before := d.StreamClock(DefaultStream)
	ev2, err2 := d.CopyToDevice(DefaultStream, 1<<20)
	if err2 == nil || !IsPermanent(err2) {
		t.Errorf("op on lost device returned %v", err2)
	}
	if ev2.Duration() != 0 || d.StreamClock(DefaultStream) != before {
		t.Error("op on lost device advanced the clock")
	}
	var de *DeviceError
	if !errors.As(err2, &de) || de.Kind != FaultPermanent || de.Device != 0 {
		t.Errorf("typed error = %+v", de)
	}
}

func TestFaultHangChargesWatchdog(t *testing.T) {
	d := testContext(t, GTX580).Device(0)
	d.SetFaultPlan(FaultPlan{HangAt: 1e-12})
	d.SetWatchdog(5)
	// First op starts at t=0 < HangAt, so it completes; the next starts
	// past HangAt and hangs.
	first := mustOp(t)(d.Launch(DefaultStream, scoringProbe(64)))
	hev, err := d.Launch(DefaultStream, scoringProbe(64))
	if !errors.Is(err, ErrHang) {
		t.Fatalf("second launch: %v, want hang", err)
	}
	if math.Abs(hev.Duration()-5) > 1e-12 {
		t.Errorf("hang charged %v, want the 5s watchdog", hev.Duration())
	}
	if hev.Start != first.End {
		t.Errorf("hang started at %v, want %v", hev.Start, first.End)
	}
	if !d.Lost() {
		t.Error("device not fenced after hang")
	}
}

func TestFaultThrottleSlowsWindow(t *testing.T) {
	clean := testContext(t, GTX580).Device(0)
	dur := mustOp(t)(clean.Launch(DefaultStream, scoringProbe(512))).Duration()

	d := testContext(t, GTX580).Device(0)
	d.SetFaultPlan(FaultPlan{ThrottleFactor: 0.5, ThrottleFrom: 0, ThrottleUntil: dur * 3})
	slow := mustOp(t)(d.Launch(DefaultStream, scoringProbe(512)))
	if math.Abs(slow.Duration()-2*dur) > 1e-12*dur {
		t.Errorf("throttled duration %v, want %v (2x)", slow.Duration(), 2*dur)
	}
	// Outside the window the device runs at full speed again.
	d.Idle(DefaultStream, dur*3)
	fast := mustOp(t)(d.Launch(DefaultStream, scoringProbe(512)))
	if math.Abs(fast.Duration()-dur) > 1e-12*dur {
		t.Errorf("post-window duration %v, want %v", fast.Duration(), dur)
	}
}

func TestFaultTransientDeterministicAndReplayable(t *testing.T) {
	plan := FaultPlan{TransientRate: 0.4, Seed: 42}
	draw := func(d *Device) []bool {
		out := make([]bool, 32)
		for i := range out {
			_, err := d.Launch(DefaultStream, scoringProbe(8))
			if err != nil && !IsTransient(err) {
				t.Fatalf("unexpected non-transient error: %v", err)
			}
			out[i] = err != nil
		}
		return out
	}

	d1 := testContext(t, GTX580).Device(0)
	d1.SetFaultPlan(plan)
	d2 := testContext(t, GTX580).Device(0)
	d2.SetFaultPlan(plan)
	a, b := draw(d1), draw(d2)
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between equal plans", i)
		}
		some = some || a[i]
	}
	if !some {
		t.Error("rate 0.4 over 32 draws produced no transient")
	}
	// Reset rewinds the fault stream: the same device replays identically.
	d1.Reset()
	c := draw(d1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("draw %d differs after Reset", i)
		}
	}
}

func TestFaultTransientChargesTime(t *testing.T) {
	// A transient failure still charges the full operation time: the work
	// ran, it just produced garbage.
	d := testContext(t, GTX580).Device(0)
	d.SetFaultPlan(FaultPlan{TransientRate: 0.999, Seed: 1})
	ev, err := d.Launch(DefaultStream, scoringProbe(256))
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if ev.Duration() <= 0 {
		t.Error("transient failure charged no time")
	}
	if d.Lost() {
		t.Error("transient failure fenced the device")
	}
	if d.ConformationsCompleted() != 0 {
		t.Error("failed launch counted its conformations")
	}
}

func TestConformationsCompletedCounts(t *testing.T) {
	d := testContext(t, GTX580).Device(0)
	mustOp(t)(d.Launch(DefaultStream, scoringProbe(64)))
	mustOp(t)(d.Launch(DefaultStream, scoringProbe(100)))
	if got := d.ConformationsCompleted(); got != 164 {
		t.Errorf("ConformationsCompleted = %d, want 164", got)
	}
	d.Reset()
	if d.ConformationsCompleted() != 0 {
		t.Error("Reset kept the conformation count")
	}
}

func TestFaultKindStringsAndHelpers(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultTransient: "transient",
		FaultPermanent: "permanent",
		FaultHang:      "hang",
	} {
		if k.String() != want {
			t.Errorf("FaultKind %d = %q", int(k), k.String())
		}
	}
	if FaultKind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
	hang := &DeviceError{Device: 3, Kind: FaultHang, Op: "scoring", At: 1.5}
	if !IsPermanent(hang) || IsTransient(hang) {
		t.Error("hang misclassified")
	}
	if hang.Error() == "" {
		t.Error("empty error string")
	}
}
