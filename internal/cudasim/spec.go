// Package cudasim is a discrete-event simulator of CUDA-capable GPUs. It
// stands in for the CUDA runtime the paper uses (repro note: no mature CUDA
// bindings exist for Go, and this environment has no GPUs), reproducing the
// pieces the paper's scheduling contribution depends on:
//
//   - a device catalogue with the published parameters of the paper's four
//     GPU models (Tables 1-3): GeForce GTX 590, Tesla C2075, Tesla K40c and
//     GeForce GTX 580, plus the rest of Table 1's generations;
//   - an execution cost model at warp/block/wave granularity for the two
//     docking kernels (scoring and local-search improvement), including
//     per-architecture efficiency, kernel-launch overhead and PCIe
//     transfers;
//   - a per-device simulated timeline with streams and events, and
//     cudaGetDeviceCount / NVML-style property queries.
//
// The heterogeneous-scheduling result the paper reports depends only on
// relative device throughputs and overhead structure, which this model
// derives from the same published hardware parameters.
package cudasim

import "fmt"

// Arch is a CUDA hardware generation (the rows of the paper's Table 1).
type Arch int

// Architectures covered by the paper's Table 1.
const (
	Tesla   Arch = iota // 2007, CCC 1.x
	Fermi               // 2010, CCC 2.x
	Kepler              // 2012, CCC 3.x
	Maxwell             // 2014, CCC 5.x
)

// String returns the generation code name.
func (a Arch) String() string {
	switch a {
	case Tesla:
		return "Tesla"
	case Fermi:
		return "Fermi"
	case Kepler:
		return "Kepler"
	case Maxwell:
		return "Maxwell"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// WarpSize is the number of threads per warp on every modeled generation.
const WarpSize = 32

// DeviceSpec describes a GPU model: the static properties a CUDA program
// reads through cudaGetDeviceProperties and NVML.
type DeviceSpec struct {
	// Name is the marketing name, e.g. "Tesla K40c".
	Name string
	// Arch is the hardware generation.
	Arch Arch
	// Year the model shipped.
	Year int
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of CUDA cores per multiprocessor.
	CoresPerSM int
	// ClockMHz is the core clock in MHz.
	ClockMHz float64
	// SharedMemKB is the maximum shared memory per multiprocessor in KB.
	SharedMemKB int
	// RegistersPerSM is the number of 32-bit registers per multiprocessor.
	RegistersPerSM int
	// GlobalMemMB is the DRAM size in MB.
	GlobalMemMB int
	// MemBandwidthGBs is the DRAM bandwidth in GB/s.
	MemBandwidthGBs float64
	// MaxThreadsPerBlock is the per-block thread limit.
	MaxThreadsPerBlock int
	// MaxThreadsPerSM is the per-multiprocessor resident-thread limit.
	MaxThreadsPerSM int
	// CCC is the CUDA compute capability, e.g. "3.5".
	CCC string
}

// Cores returns the total number of CUDA cores.
func (s DeviceSpec) Cores() int { return s.SMs * s.CoresPerSM }

// ClockHz returns the core clock in Hz.
func (s DeviceSpec) ClockHz() float64 { return s.ClockMHz * 1e6 }

// WarpSlots returns the number of warps the device can execute
// concurrently at full rate: one warp lane-set per 32 cores.
func (s DeviceSpec) WarpSlots() int {
	slots := s.Cores() / WarpSize
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Validate checks the spec for physical plausibility.
func (s DeviceSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cudasim: spec with empty name")
	case s.SMs <= 0 || s.CoresPerSM <= 0:
		return fmt.Errorf("cudasim: %s: non-positive SM geometry", s.Name)
	case s.ClockMHz <= 0:
		return fmt.Errorf("cudasim: %s: non-positive clock", s.Name)
	case s.MaxThreadsPerBlock < WarpSize:
		return fmt.Errorf("cudasim: %s: MaxThreadsPerBlock below warp size", s.Name)
	case s.MaxThreadsPerSM < s.MaxThreadsPerBlock:
		return fmt.Errorf("cudasim: %s: MaxThreadsPerSM below MaxThreadsPerBlock", s.Name)
	}
	return nil
}

// String implements fmt.Stringer.
func (s DeviceSpec) String() string {
	return fmt.Sprintf("%s (%s, %d SMs x %d cores @ %.0f MHz, CCC %s)",
		s.Name, s.Arch, s.SMs, s.CoresPerSM, s.ClockMHz, s.CCC)
}

// The four GPU models of the paper's experimental platforms, with the
// parameters of its Tables 2 and 3.
var (
	// GTX590 is the NVIDIA GeForce GTX 590 (one of the two GPUs on the
	// card; the paper counts four of these in Jupiter).
	GTX590 = DeviceSpec{
		Name: "GeForce GTX 590", Arch: Fermi, Year: 2011,
		SMs: 16, CoresPerSM: 32, ClockMHz: 1215,
		SharedMemKB: 48, RegistersPerSM: 32768,
		GlobalMemMB: 1536, MemBandwidthGBs: 163.85,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 1536, CCC: "2.0",
	}
	// TeslaC2075 is the NVIDIA Tesla C2075 (two in Jupiter).
	TeslaC2075 = DeviceSpec{
		Name: "Tesla C2075", Arch: Fermi, Year: 2012,
		SMs: 14, CoresPerSM: 32, ClockMHz: 1147,
		SharedMemKB: 48, RegistersPerSM: 32768,
		GlobalMemMB: 5375, MemBandwidthGBs: 144,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 1536, CCC: "2.0",
	}
	// TeslaK40c is the NVIDIA Tesla K40c (the fast GPU in Hertz).
	TeslaK40c = DeviceSpec{
		Name: "Tesla K40c", Arch: Kepler, Year: 2014,
		SMs: 15, CoresPerSM: 192, ClockMHz: 745,
		SharedMemKB: 48, RegistersPerSM: 65536,
		GlobalMemMB: 11520, MemBandwidthGBs: 288.38,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 2048, CCC: "3.5",
	}
	// GTX580 is the NVIDIA GeForce GTX 580 (the slow GPU in Hertz).
	GTX580 = DeviceSpec{
		Name: "GeForce GTX 580", Arch: Fermi, Year: 2011,
		SMs: 16, CoresPerSM: 32, ClockMHz: 1544,
		SharedMemKB: 48, RegistersPerSM: 32768,
		GlobalMemMB: 1536, MemBandwidthGBs: 192.4,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 1536, CCC: "2.0",
	}
)

// Catalogue lists every built-in device model, the paper's four plus
// representative models of the remaining Table 1 generations.
func Catalogue() []DeviceSpec {
	return []DeviceSpec{
		GTX590, TeslaC2075, TeslaK40c, GTX580,
		{
			Name: "Tesla C1060", Arch: Tesla, Year: 2008,
			SMs: 30, CoresPerSM: 8, ClockMHz: 1296,
			SharedMemKB: 16, RegistersPerSM: 16384,
			GlobalMemMB: 4096, MemBandwidthGBs: 102,
			MaxThreadsPerBlock: 512, MaxThreadsPerSM: 1024, CCC: "1.3",
		},
		{
			Name: "GeForce GTX 980", Arch: Maxwell, Year: 2014,
			SMs: 16, CoresPerSM: 128, ClockMHz: 1126,
			SharedMemKB: 64, RegistersPerSM: 65536,
			GlobalMemMB: 4096, MemBandwidthGBs: 224,
			MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 2048, CCC: "5.2",
		},
	}
}

// SpecByName returns the catalogue entry with the given name.
func SpecByName(name string) (DeviceSpec, bool) {
	for _, s := range Catalogue() {
		if s.Name == name {
			return s, true
		}
	}
	return DeviceSpec{}, false
}
