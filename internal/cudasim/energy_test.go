package cudasim

import (
	"math"
	"testing"
)

func TestTDPKnownModels(t *testing.T) {
	for _, s := range Catalogue() {
		if s.TDPWatts() < 100 || s.TDPWatts() > 300 {
			t.Errorf("%s TDP = %v W, implausible", s.Name, s.TDPWatts())
		}
	}
	// Fallback path for an unknown model.
	unknown := GTX580
	unknown.Name = "Mystery GPU"
	if unknown.TDPWatts() <= 0 {
		t.Error("fallback TDP not positive")
	}
}

func TestPerfPerWattImprovesAcrossGenerations(t *testing.T) {
	// The shape of the paper's Table 1: each generation delivers more
	// performance per watt on the scoring kernel.
	m := DefaultCostModel()
	tesla, _ := SpecByName("Tesla C1060")
	maxwell, _ := SpecByName("GeForce GTX 980")
	ppw := func(s DeviceSpec) float64 { return m.PerfPerWatt(s, KernelScoring) }
	if !(ppw(tesla) < ppw(GTX580) && ppw(GTX580) < ppw(TeslaK40c) && ppw(TeslaK40c) < ppw(maxwell)) {
		t.Errorf("perf/watt not increasing: tesla=%.3g fermi=%.3g kepler=%.3g maxwell=%.3g",
			ppw(tesla), ppw(GTX580), ppw(TeslaK40c), ppw(maxwell))
	}
}

func TestDeviceEnergyAccounting(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	if d.EnergyJoules() != 0 {
		t.Error("fresh device has nonzero energy")
	}
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 1024, PairsPerConformation: 100000}
	ev := mustOp(t)(d.Launch(DefaultStream, l))
	busy := ev.Duration()
	if got := d.BusyTime(); math.Abs(got-busy) > 1e-15 {
		t.Errorf("BusyTime = %v, want %v", got, busy)
	}
	// Fully busy: energy = busy * TDP exactly.
	want := busy * d.Spec.TDPWatts()
	if got := d.EnergyJoules(); math.Abs(got-want) > 1e-12*want {
		t.Errorf("energy = %v, want %v", got, want)
	}
	// Idling adds energy at the idle fraction.
	d.Idle(DefaultStream, busy*2)
	wantIdle := want + busy*d.Spec.TDPWatts()*idleFraction
	if got := d.EnergyJoules(); math.Abs(got-wantIdle) > 1e-12*wantIdle {
		t.Errorf("energy after idle = %v, want %v", got, wantIdle)
	}
}

func TestDeviceEnergyResets(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	d.Launch(DefaultStream, ScoringLaunch{Kind: KernelScoring, Conformations: 64, PairsPerConformation: 1000})
	ctx.ResetAll()
	if d.EnergyJoules() != 0 || d.BusyTime() != 0 {
		t.Error("energy accounting not reset")
	}
}

func TestCPUEnergyModel(t *testing.T) {
	m := DefaultCPUEnergy(12)
	if m.TDPWatts != 12*8+30 {
		t.Errorf("TDP = %v", m.TDPWatts)
	}
	if got := m.EnergyJoules(10); got != m.TDPWatts*10 {
		t.Errorf("energy = %v", got)
	}
}

func TestIdleDeviceCheaperThanBusy(t *testing.T) {
	ctx := testContext(t, GTX580, GTX580)
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 2048, PairsPerConformation: 100000}
	busyDev := ctx.Device(0)
	idleDev := ctx.Device(1)
	ev := mustOp(t)(busyDev.Launch(DefaultStream, l))
	idleDev.Idle(DefaultStream, ev.End) // waits at the barrier
	if idleDev.EnergyJoules() >= busyDev.EnergyJoules() {
		t.Errorf("idle device (%v J) not cheaper than busy (%v J)",
			idleDev.EnergyJoules(), busyDev.EnergyJoules())
	}
	if idleDev.EnergyJoules() <= 0 {
		t.Error("idle device consumed nothing")
	}
}
