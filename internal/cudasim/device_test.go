package cudasim

import (
	"math"
	"sync"
	"testing"
)

func testContext(t *testing.T, specs ...DeviceSpec) *Context {
	t.Helper()
	ctx, err := NewContext(specs...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// mustOp returns an event-asserting helper for fault-free device tests.
func mustOp(t *testing.T) func(Event, error) Event {
	t.Helper()
	return func(ev Event, err error) Event {
		t.Helper()
		if err != nil {
			t.Fatalf("device op failed: %v", err)
		}
		return ev
	}
}

func TestContextDeviceCount(t *testing.T) {
	ctx := testContext(t, GTX590, GTX590, TeslaC2075)
	if got := ctx.DeviceCount(); got != 3 {
		t.Errorf("DeviceCount = %d", got)
	}
	if ctx.Device(2).Spec.Name != TeslaC2075.Name {
		t.Error("device 2 has wrong spec")
	}
	if ctx.Properties(0).Name != GTX590.Name {
		t.Error("Properties(0) wrong")
	}
	if len(ctx.Devices()) != 3 {
		t.Error("Devices() length wrong")
	}
}

func TestContextRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := NewContext(); err == nil {
		t.Error("empty context accepted")
	}
	bad := GTX590
	bad.SMs = 0
	if _, err := NewContext(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestContextDevicePanicsOutOfRange(t *testing.T) {
	ctx := testContext(t, GTX590)
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range device")
		}
	}()
	ctx.Device(5)
}

func TestDeviceTimelineAdvances(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 64, PairsPerConformation: 10000}

	must := mustOp(t)
	e1 := must(d.CopyToDevice(DefaultStream, 1<<20))
	if e1.Start != 0 || e1.End <= 0 {
		t.Errorf("first event = %+v", e1)
	}
	e2 := must(d.Launch(DefaultStream, l))
	if e2.Start != e1.End {
		t.Errorf("launch started at %v, want %v", e2.Start, e1.End)
	}
	e3 := must(d.CopyToHost(DefaultStream, 1<<10))
	if e3.Start != e2.End {
		t.Error("d2h did not queue after kernel")
	}
	if got := d.StreamClock(DefaultStream); got != e3.End {
		t.Errorf("stream clock = %v, want %v", got, e3.End)
	}
	if d.Kernels() != 1 {
		t.Errorf("kernel count = %d", d.Kernels())
	}
}

func TestDeviceStreamsIndependent(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 64, PairsPerConformation: 10000}
	must := mustOp(t)
	e0 := must(d.Launch(0, l))
	e1 := must(d.Launch(1, l))
	if e1.Start != 0 {
		t.Errorf("stream 1 started at %v, want 0 (streams overlap)", e1.Start)
	}
	sync := d.Synchronize()
	if sync != math.Max(e0.End, e1.End) {
		t.Errorf("Synchronize = %v", sync)
	}
}

func TestDeviceIdle(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	d.Idle(DefaultStream, 5.0)
	if got := d.StreamClock(DefaultStream); got != 5.0 {
		t.Errorf("clock = %v after Idle(5)", got)
	}
	// Idle never rewinds.
	d.Idle(DefaultStream, 1.0)
	if got := d.StreamClock(DefaultStream); got != 5.0 {
		t.Errorf("Idle rewound the clock to %v", got)
	}
}

func TestDeviceMemoryAccounting(t *testing.T) {
	ctx := testContext(t, GTX580) // 1536 MB
	d := ctx.Device(0)
	if err := d.Malloc(1 << 30); err != nil {
		t.Fatalf("1 GB alloc failed: %v", err)
	}
	if err := d.Malloc(1 << 30); err == nil {
		t.Error("second 1 GB alloc should exceed 1536 MB")
	}
	if d.Allocated() != 1<<30 {
		t.Errorf("allocated = %d", d.Allocated())
	}
	d.Free(1 << 30)
	if d.Allocated() != 0 {
		t.Errorf("allocated after free = %d", d.Allocated())
	}
	d.Free(1 << 40) // over-free clamps to zero
	if d.Allocated() != 0 {
		t.Error("over-free went negative")
	}
	if err := d.Malloc(-1); err == nil {
		t.Error("negative malloc accepted")
	}
}

func TestDeviceReset(t *testing.T) {
	ctx := testContext(t, GTX580, GTX590)
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 8, PairsPerConformation: 100}
	ctx.Device(0).Launch(0, l)
	ctx.Device(1).Launch(0, l)
	ctx.ResetAll()
	for i := 0; i < 2; i++ {
		if ctx.Device(i).Synchronize() != 0 {
			t.Errorf("device %d clock not reset", i)
		}
		if ctx.Device(i).Kernels() != 0 {
			t.Errorf("device %d kernel count not reset", i)
		}
	}
}

func TestDeviceConcurrentSafety(t *testing.T) {
	ctx := testContext(t, GTX580)
	d := ctx.Device(0)
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 8, PairsPerConformation: 100}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Launch(stream, l)
			}
		}(i)
	}
	wg.Wait()
	if d.Kernels() != 800 {
		t.Errorf("kernel count = %d, want 800", d.Kernels())
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 1.5, End: 2.75}
	if e.Duration() != 1.25 {
		t.Errorf("Duration = %v", e.Duration())
	}
}

func TestFasterDeviceFinishesSooner(t *testing.T) {
	// End-to-end sanity for the heterogeneity result: the same workload on
	// K40c finishes earlier than on GTX580.
	ctx := testContext(t, TeslaK40c, GTX580)
	l := ScoringLaunch{Kind: KernelScoring, Conformations: 2048, PairsPerConformation: 146880}
	must := mustOp(t)
	fast := must(ctx.Device(0).Launch(0, l))
	slow := must(ctx.Device(1).Launch(0, l))
	if fast.Duration() >= slow.Duration() {
		t.Errorf("K40c (%v) not faster than GTX580 (%v)", fast.Duration(), slow.Duration())
	}
}
