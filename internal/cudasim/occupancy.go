package cudasim

import "fmt"

// Occupancy calculation, the CUDA-era tool for choosing launch
// configurations: how many blocks of a kernel can be resident on one
// multiprocessor given the kernel's thread, register and shared-memory
// demands, and what fraction of the SM's warp capacity that fills.

// KernelResources describes one kernel's per-block demands.
type KernelResources struct {
	// ThreadsPerBlock is the block size.
	ThreadsPerBlock int
	// RegsPerThread is the register usage reported by the compiler.
	RegsPerThread int
	// SharedMemPerBlock is the static+dynamic shared memory in bytes.
	SharedMemPerBlock int
}

// DockingKernelResources returns the resource profile of the tiled
// scoring kernel: 8 warps per block, moderate register pressure, one
// receptor tile (32 atoms x 4 floats x 4 bytes, plus ligand staging) of
// shared memory.
func DockingKernelResources() KernelResources {
	return KernelResources{
		ThreadsPerBlock:   8 * WarpSize,
		RegsPerThread:     32,
		SharedMemPerBlock: 4096,
	}
}

// maxBlocksPerSM is the architectural cap on resident blocks per SM.
func maxBlocksPerSM(a Arch) int {
	switch a {
	case Tesla, Fermi:
		return 8
	case Kepler:
		return 16
	case Maxwell:
		return 32
	}
	return 8
}

// Occupancy is the result of an occupancy calculation.
type Occupancy struct {
	// BlocksPerSM is the number of resident blocks per multiprocessor.
	BlocksPerSM int
	// WarpsPerSM is the number of resident warps.
	WarpsPerSM int
	// Fraction is resident warps over the SM's warp capacity, in [0, 1].
	Fraction float64
	// Limiter names the binding constraint: "threads", "registers",
	// "shared-memory" or "blocks".
	Limiter string
}

// ComputeOccupancy calculates the occupancy of a kernel on a device. It
// returns an error when a single block already exceeds a hardware limit
// (the launch would fail on real hardware).
func ComputeOccupancy(spec DeviceSpec, k KernelResources) (Occupancy, error) {
	if k.ThreadsPerBlock <= 0 || k.ThreadsPerBlock%WarpSize != 0 {
		return Occupancy{}, fmt.Errorf("cudasim: block of %d threads is not a warp multiple", k.ThreadsPerBlock)
	}
	if k.ThreadsPerBlock > spec.MaxThreadsPerBlock {
		return Occupancy{}, fmt.Errorf("cudasim: %d threads/block exceeds %s limit %d",
			k.ThreadsPerBlock, spec.Name, spec.MaxThreadsPerBlock)
	}
	sharedBytes := spec.SharedMemKB * 1024
	if k.SharedMemPerBlock > sharedBytes {
		return Occupancy{}, fmt.Errorf("cudasim: %d B shared/block exceeds %s limit %d",
			k.SharedMemPerBlock, spec.Name, sharedBytes)
	}
	regsPerBlock := k.RegsPerThread * k.ThreadsPerBlock
	if regsPerBlock > spec.RegistersPerSM {
		return Occupancy{}, fmt.Errorf("cudasim: %d regs/block exceeds %s register file %d",
			regsPerBlock, spec.Name, spec.RegistersPerSM)
	}

	limits := []struct {
		name   string
		blocks int
	}{
		{"threads", spec.MaxThreadsPerSM / k.ThreadsPerBlock},
		{"blocks", maxBlocksPerSM(spec.Arch)},
	}
	if k.RegsPerThread > 0 {
		limits = append(limits, struct {
			name   string
			blocks int
		}{"registers", spec.RegistersPerSM / regsPerBlock})
	}
	if k.SharedMemPerBlock > 0 {
		limits = append(limits, struct {
			name   string
			blocks int
		}{"shared-memory", sharedBytes / k.SharedMemPerBlock})
	}

	best := limits[0]
	for _, l := range limits[1:] {
		if l.blocks < best.blocks {
			best = l
		}
	}
	warps := best.blocks * k.ThreadsPerBlock / WarpSize
	capacity := spec.MaxThreadsPerSM / WarpSize
	return Occupancy{
		BlocksPerSM: best.blocks,
		WarpsPerSM:  warps,
		Fraction:    float64(warps) / float64(capacity),
		Limiter:     best.name,
	}, nil
}
