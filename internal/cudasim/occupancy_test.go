package cudasim

import (
	"math"
	"testing"
)

func TestDockingKernelOccupancy(t *testing.T) {
	k := DockingKernelResources()
	for _, spec := range []DeviceSpec{GTX590, TeslaC2075, TeslaK40c, GTX580} {
		occ, err := ComputeOccupancy(spec, k)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if occ.BlocksPerSM < 1 {
			t.Errorf("%s: %d blocks/SM", spec.Name, occ.BlocksPerSM)
		}
		if occ.Fraction <= 0 || occ.Fraction > 1 {
			t.Errorf("%s: occupancy %v", spec.Name, occ.Fraction)
		}
		if occ.Limiter == "" {
			t.Errorf("%s: no limiter", spec.Name)
		}
	}
}

func TestOccupancyFermiDockingKernel(t *testing.T) {
	// Hand check on the GTX 580: 256-thread blocks, 32 regs/thread,
	// 4 KB shared.
	//   threads: 1536/256 = 6 blocks
	//   blocks cap (Fermi): 8
	//   registers: 32768/(32*256) = 4 blocks  <- binding
	//   shared: 49152/4096 = 12 blocks
	occ, err := ComputeOccupancy(GTX580, DockingKernelResources())
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 4 || occ.Limiter != "registers" {
		t.Errorf("occupancy = %+v, want 4 blocks limited by registers", occ)
	}
	wantFrac := float64(4*256/32) / float64(1536/32)
	if math.Abs(occ.Fraction-wantFrac) > 1e-12 {
		t.Errorf("fraction = %v, want %v", occ.Fraction, wantFrac)
	}
}

func TestOccupancyKeplerHigherCaps(t *testing.T) {
	// The K40c's 64K register file doubles the register-limited block
	// count relative to Fermi.
	occ, err := ComputeOccupancy(TeslaK40c, DockingKernelResources())
	if err != nil {
		t.Fatal(err)
	}
	fermi, err := ComputeOccupancy(GTX580, DockingKernelResources())
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM <= fermi.BlocksPerSM {
		t.Errorf("K40c %d blocks/SM not above GTX580 %d", occ.BlocksPerSM, fermi.BlocksPerSM)
	}
}

func TestOccupancyThreadLimited(t *testing.T) {
	k := KernelResources{ThreadsPerBlock: 1024, RegsPerThread: 8, SharedMemPerBlock: 0}
	occ, err := ComputeOccupancy(GTX580, k) // 1536/1024 = 1 block
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 1 || occ.Limiter != "threads" {
		t.Errorf("occupancy = %+v", occ)
	}
}

func TestOccupancySharedMemoryLimited(t *testing.T) {
	k := KernelResources{ThreadsPerBlock: 64, RegsPerThread: 8, SharedMemPerBlock: 24 * 1024}
	occ, err := ComputeOccupancy(GTX580, k) // 48K/24K = 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.Limiter != "shared-memory" {
		t.Errorf("occupancy = %+v", occ)
	}
}

func TestOccupancyBlockCapLimited(t *testing.T) {
	k := KernelResources{ThreadsPerBlock: 32, RegsPerThread: 1, SharedMemPerBlock: 0}
	occ, err := ComputeOccupancy(GTX580, k)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 8 || occ.Limiter != "blocks" {
		t.Errorf("occupancy = %+v, want Fermi 8-block cap", occ)
	}
}

func TestOccupancyErrors(t *testing.T) {
	bad := []KernelResources{
		{ThreadsPerBlock: 100},                                             // not warp multiple
		{ThreadsPerBlock: 2048},                                            // exceeds block limit
		{ThreadsPerBlock: 256, SharedMemPerBlock: 1 << 20},                 // too much shared
		{ThreadsPerBlock: 1024, RegsPerThread: 64, SharedMemPerBlock: 128}, // register file blown
	}
	for i, k := range bad {
		if _, err := ComputeOccupancy(GTX580, k); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}
