package cudasim

import (
	"errors"
	"fmt"
)

// Fault injection for the simulated devices. Real multi-GPU nodes fail in
// well-known ways — ECC errors and driver resets (transient), Xid errors
// and falling off the bus (permanent), kernels that never return (hangs),
// and thermal throttling (the device keeps working, slower). A FaultPlan
// scripts those behaviours deterministically onto one device so the
// scheduler's recovery path can be exercised, measured and replayed: the
// same plan and seed always produce the same fault sequence.

// FaultKind classifies a device fault.
type FaultKind int

const (
	// FaultTransient is a recoverable error (ECC, spurious launch
	// failure): retrying the operation may succeed.
	FaultTransient FaultKind = iota
	// FaultPermanent is an unrecoverable device loss: every subsequent
	// operation fails immediately.
	FaultPermanent
	// FaultHang is an operation that never completes; the caller observes
	// it only through its watchdog deadline, after which the device is
	// fenced like a permanent loss.
	FaultHang
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultHang:
		return "hang"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Sentinel errors for errors.Is matching. Every fault surfaces as a
// *DeviceError, which unwraps to exactly one of these.
var (
	// ErrTransient matches recoverable device errors.
	ErrTransient = errors.New("cudasim: transient device error")
	// ErrDeviceLost matches permanent device loss.
	ErrDeviceLost = errors.New("cudasim: device lost")
	// ErrHang matches watchdog-detected hangs.
	ErrHang = errors.New("cudasim: device operation hung")
)

// DeviceError is a typed device fault: which device, what kind, during
// which operation, and at which simulated time it was detected.
type DeviceError struct {
	// Device is the failing device's ID.
	Device int
	// Kind classifies the fault.
	Kind FaultKind
	// Op labels the operation that observed it ("h2d", "scoring", ...).
	Op string
	// At is the simulated detection time in seconds.
	At float64
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("cudasim: device %d: %s fault during %s at t=%.6fs", e.Device, e.Kind, e.Op, e.At)
}

// Unwrap maps the fault kind to its sentinel so errors.Is works.
func (e *DeviceError) Unwrap() error {
	switch e.Kind {
	case FaultTransient:
		return ErrTransient
	case FaultHang:
		return ErrHang
	}
	return ErrDeviceLost
}

// IsTransient reports whether err is a retryable device fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsPermanent reports whether err fenced the device for good (permanent
// loss or a watchdog-detected hang).
func IsPermanent(err error) bool {
	return errors.Is(err, ErrDeviceLost) || errors.Is(err, ErrHang)
}

// DefaultWatchdog is the per-operation hang deadline, in simulated
// seconds, used when no watchdog is configured.
const DefaultWatchdog = 60.0

// FaultPlan scripts the faults of one device. The zero value injects
// nothing. All times are simulated seconds on the device's timeline.
type FaultPlan struct {
	// FailAt, when positive, kills the device permanently: the operation
	// in flight at FailAt aborts there and every later operation fails
	// immediately with a permanent DeviceError.
	FailAt float64
	// HangAt, when positive, makes every operation starting at or after
	// it hang: the operation never completes, the caller is charged the
	// watchdog deadline, and the device is fenced.
	HangAt float64
	// TransientRate is the per-operation probability of a transient
	// error in [0,1). The operation's time is still charged (the work ran
	// and produced garbage); an immediate retry draws independently.
	TransientRate float64
	// Seed derives the transient draw stream; equal plans and seeds
	// reproduce the same fault sequence.
	Seed uint64
	// ThrottleFactor, when in (0,1), is a thermal-slowdown throughput
	// multiplier: operations starting inside the throttle window take
	// 1/ThrottleFactor times as long.
	ThrottleFactor float64
	// ThrottleFrom and ThrottleUntil bound the throttle window;
	// ThrottleUntil == 0 leaves it open-ended.
	ThrottleFrom, ThrottleUntil float64
}

// active reports whether the plan injects anything.
func (p FaultPlan) active() bool {
	return p.FailAt > 0 || p.HangAt > 0 || p.TransientRate > 0 || p.ThrottleFactor > 0
}

// throttledDuration scales an operation's duration when it starts inside
// the throttle window.
func (p FaultPlan) throttledDuration(start, dur float64) float64 {
	f := p.ThrottleFactor
	if f <= 0 || f == 1 {
		return dur
	}
	if start < p.ThrottleFrom {
		return dur
	}
	if p.ThrottleUntil > 0 && start >= p.ThrottleUntil {
		return dur
	}
	return dur / f
}
