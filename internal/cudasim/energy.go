package cudasim

// Energy modeling. The paper's Table 1 tracks performance-per-watt across
// GPU generations ("power consumption has been reduced by a factor of 2 at
// each new generation") and its conclusions warn that "heterogeneity may
// limit acceleration and waste energy". The simulator models board energy
// as busy time at TDP plus idle time at a fixed idle fraction, which is
// enough to reproduce the per-generation efficiency shape and to compare
// the energy cost of scheduling strategies.

// boardTDP returns the board power in watts for the known models, with a
// per-architecture fallback.
func boardTDP(s DeviceSpec) float64 {
	switch s.Name {
	case "GeForce GTX 590":
		return 182 // one of the card's two GPUs
	case "Tesla C2075":
		return 225
	case "Tesla K40c":
		return 235
	case "GeForce GTX 580":
		return 244
	case "Tesla C1060":
		return 188
	case "GeForce GTX 980":
		return 165
	}
	switch s.Arch {
	case Tesla:
		return 190
	case Fermi:
		return 230
	case Kepler:
		return 235
	case Maxwell:
		return 170
	}
	return 200
}

// idleFraction is the idle power as a fraction of TDP.
const idleFraction = 0.25

// TDPWatts returns the device's modeled board power at full load.
func (s DeviceSpec) TDPWatts() float64 { return boardTDP(s) }

// PerfPerWatt returns the modeled docking throughput per watt
// (pairs/second/W) for a kernel kind — the quantity behind Table 1's
// normalized performance-per-watt row.
func (m CostModel) PerfPerWatt(spec DeviceSpec, kind KernelKind) float64 {
	return m.PairRate(spec, kind) / spec.TDPWatts()
}

// BusyTime returns the device's total accumulated operation time across
// all streams (kernels and transfers), in simulated seconds.
func (d *Device) BusyTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busyTime
}

// EnergyJoules returns the device's modeled energy consumption so far:
// busy time at TDP plus idle time (up to the device's latest stream clock)
// at the idle fraction.
func (d *Device) EnergyJoules() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := 0.0
	for _, c := range d.streams {
		if c > end {
			end = c
		}
	}
	busy := d.busyTime
	if busy > end {
		busy = end // overlapping streams cannot exceed wall time at TDP
	}
	idle := end - busy
	tdp := boardTDP(d.Spec)
	return busy*tdp + idle*tdp*idleFraction
}

// CPUEnergyModel models host energy for the OpenMP baseline.
type CPUEnergyModel struct {
	// TDPWatts is the package power at full load.
	TDPWatts float64
}

// DefaultCPUEnergy returns a period-appropriate Xeon package model:
// ~8 W per core plus 30 W uncore.
func DefaultCPUEnergy(cores int) CPUEnergyModel {
	return CPUEnergyModel{TDPWatts: float64(cores)*8 + 30}
}

// EnergyJoules returns the energy of running the host flat out for the
// given simulated duration.
func (m CPUEnergyModel) EnergyJoules(seconds float64) float64 {
	return m.TDPWatts * seconds
}
