// Package obs holds the shared structured-logging plumbing: slog logger
// construction from the CLI flags (-log-level, -log-format) and context
// propagation, so per-job correlation attributes (job ID, ligand, attempt)
// attached at the service layer follow the work down through internal/core
// and internal/sched without threading a logger through every signature.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a logger from the CLI flag values. level is one of
// "debug", "info", "warn" or "error"; format is "text" or "json".
func NewLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// Nop returns a logger that discards everything; the default wherever no
// logger was configured, so library callers pay nothing.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// ctxKey keys the logger in a context.
type ctxKey struct{}

// NewContext returns a context carrying the logger. The service attaches
// a job-correlated logger here before running a screen.
func NewContext(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the logger carried by ctx, or a Nop logger.
func FromContext(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Nop()
}
