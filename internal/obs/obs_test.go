package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger("warn", "text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "job", "job-000001")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "job-000001") {
		t.Errorf("warn line missing attrs: %q", out)
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger("info", "json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("event", "job", "job-000007", "attempt", 2)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v: %q", err, buf.String())
	}
	if rec["job"] != "job-000007" || rec["msg"] != "event" {
		t.Errorf("bad record: %v", rec)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger("loud", "text", nil); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewLogger("info", "xml", nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestContextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger("debug", "text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(context.Background(), l.With("job", "job-000042"))
	FromContext(ctx).Debug("correlated")
	if !strings.Contains(buf.String(), "job-000042") {
		t.Errorf("context logger lost correlation: %q", buf.String())
	}
	// A bare context yields a working no-op logger.
	FromContext(context.Background()).Error("discarded")
}
