package admission

import (
	"sync"
	"time"
)

// BreakerState is the circuit's position.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen passes a single probe to test recovery.
	BreakerHalfOpen
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
)

// String renders the state for logs, metrics labels and snapshots.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a three-state circuit breaker over device-pool health.
// Threshold consecutive failures open it; after the cooldown it
// half-opens and admits exactly one probe, whose outcome closes or
// re-opens the circuit. The clock is injected so tests drive the
// cooldown deterministically.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker builds a closed breaker. A nil clock means time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow decides whether one request may pass. In the half-open state the
// first allowed request is the probe (probe=true); its owner must resolve
// it with Success, Failure or ReleaseProbe. An open circuit reports how
// long until it half-opens via RetryAfter.
func (b *Breaker) Allow() (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Success reports a healthy completion: it resets the failure run and
// closes a half-open circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probing = false
	}
	b.mu.Unlock()
}

// Failure reports a device-loss failure: it re-opens a half-open circuit
// immediately and opens a closed one after threshold consecutive
// failures.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the circuit. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
}

// ReleaseProbe abandons a half-open probe without judging it (the probe
// job was cancelled or shed), letting the next request probe instead.
func (b *Breaker) ReleaseProbe() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State returns the current circuit position, folding an expired open
// cooldown into half-open so observers see the same decision Allow would
// make.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// RetryAfter is the time until an open circuit half-opens (zero when not
// open).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if d := b.cooldown - b.now().Sub(b.openedAt); d > 0 {
		return d
	}
	return 0
}
