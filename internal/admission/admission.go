// Package admission implements overload protection for the screening
// service: the measure-then-adapt philosophy of the paper's warm-up
// Percent factor (Eq. 1) applied one layer up, at service admission.
// Where the scheduler measures device throughput and splits conformations
// accordingly, this package measures attempt latency, queue wait and
// run time and adapts what the service accepts and runs:
//
//   - Limiter: an AIMD adaptive concurrency limiter seeded from the
//     worker count. Attempt latencies at or below the target grow the
//     window additively; latencies above it shrink the window
//     multiplicatively, so a saturated backend sheds concurrency instead
//     of queueing work inside itself.
//   - FairQueue: a priority, weighted-fair queue. Jobs carry a priority
//     class and a client ID; dequeue interleaves clients round-robin
//     within a class and classes by stride scheduling, so one flooding
//     client cannot starve the rest.
//   - Breaker: a circuit breaker over device-pool health. Repeated
//     all-devices-lost failures open it, a cooldown half-opens it, and a
//     single probe job decides between closing and re-opening.
//   - Controller: EWMA estimators of queue wait and run time feeding
//     deadline admission ("can this request's deadline still be met?"),
//     dequeue culling, Retry-After computation and the graceful
//     degradation signal (shrink per-job search effort under pressure).
//
// Every component takes an injectable clock and adapts only on observed
// values fed by the caller, so admission decisions are deterministic
// under test seeds and fake clocks.
package admission

import (
	"sync"
	"time"
)

// Config tunes the admission controller. The zero value of every field
// means its documented default; Workers is the only required field.
type Config struct {
	// Workers seeds the concurrency limiter (its initial and default
	// maximum window).
	Workers int
	// TargetLatency is the AIMD target for per-attempt latency; attempts
	// slower than this shrink the concurrency window. 0 disables
	// adaptation (the window stays at Workers).
	TargetLatency time.Duration
	// LimiterMin / LimiterMax bound the adaptive window; 0 means 1 and
	// Workers respectively.
	LimiterMin, LimiterMax int
	// LimiterBackoff is the multiplicative decrease factor in (0,1);
	// 0 means 0.75.
	LimiterBackoff float64
	// BreakerThreshold is the consecutive device-loss failures that open
	// the breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is the open -> half-open delay; 0 means 5s.
	BreakerCooldown time.Duration
	// DegradeAt is the queue-fill fraction at or above which new jobs run
	// with degraded effort; 0 means 0.75.
	DegradeAt float64
	// DegradeFactor is the search-effort multiplier applied to degraded
	// jobs; 0 means 0.5, and 1 disables degradation entirely.
	DegradeFactor float64
	// EWMAAlpha is the smoothing factor of the queue-wait and run-time
	// estimators; 0 means 0.3.
	EWMAAlpha float64
	// MinRetryAfter floors every computed Retry-After; 0 means 1s.
	MinRetryAfter time.Duration
	// Now is the clock; nil means time.Now. Tests pin it.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.LimiterMin <= 0 {
		c.LimiterMin = 1
	}
	if c.LimiterMax <= 0 {
		c.LimiterMax = c.Workers
	}
	if c.LimiterBackoff <= 0 || c.LimiterBackoff >= 1 {
		c.LimiterBackoff = 0.75
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 0.75
	}
	if c.DegradeFactor <= 0 {
		c.DegradeFactor = 0.5
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	if c.MinRetryAfter <= 0 {
		c.MinRetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// ewma is a single exponentially-weighted moving average. The zero value
// is unobserved: Value returns 0 until the first Observe.
type ewma struct {
	alpha float64
	value float64
	seen  bool
}

func (e *ewma) observe(v float64) {
	if !e.seen {
		e.value, e.seen = v, true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Controller composes the limiter, breaker and latency estimators into
// the service's admission policy. All methods are safe for concurrent
// use.
type Controller struct {
	cfg     Config
	Limiter *Limiter
	Breaker *Breaker

	mu        sync.Mutex
	queueWait ewma // seconds a job waits from submission to worker start
	runTime   ewma // seconds a successful job spends running
}

// NewController builds a controller from cfg.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg: cfg,
		Limiter: NewLimiter(LimiterConfig{
			Initial: cfg.Workers,
			Min:     cfg.LimiterMin,
			Max:     cfg.LimiterMax,
			Target:  cfg.TargetLatency,
			Backoff: cfg.LimiterBackoff,
		}),
		Breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now),
	}
	c.queueWait.alpha = cfg.EWMAAlpha
	c.runTime.alpha = cfg.EWMAAlpha
	return c
}

// ObserveQueueWait feeds one job's measured submission -> start wait.
func (c *Controller) ObserveQueueWait(d time.Duration) {
	c.mu.Lock()
	c.queueWait.observe(d.Seconds())
	c.mu.Unlock()
}

// ObserveRun feeds one successful job's measured start -> finish run time.
func (c *Controller) ObserveRun(d time.Duration) {
	c.mu.Lock()
	c.runTime.observe(d.Seconds())
	c.mu.Unlock()
}

// ObserveAttempt feeds one attempt's latency into the AIMD limiter.
func (c *Controller) ObserveAttempt(d time.Duration) { c.Limiter.Observe(d) }

// EstQueueWait is the current queue-wait estimate (0 until observed).
func (c *Controller) EstQueueWait() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.queueWait.value * float64(time.Second))
}

// EstRun is the current run-time estimate (0 until observed).
func (c *Controller) EstRun() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.runTime.value * float64(time.Second))
}

// CanMeetDeadline decides at admission whether a request's deadline is
// achievable given the measured queue wait and run time. When it is not,
// the returned Retry-After suggests when the backlog driving the estimate
// should have cleared. Unobserved estimators admit optimistically: the
// first jobs after boot carry no history to judge them by.
func (c *Controller) CanMeetDeadline(now, deadline time.Time) (ok bool, retryAfter time.Duration) {
	est := c.EstQueueWait() + c.EstRun()
	if !now.Add(est).After(deadline) {
		return true, 0
	}
	return false, c.floorRetry(c.EstQueueWait())
}

// ShouldCull decides at dequeue whether a job's deadline can no longer be
// met even if it starts immediately.
func (c *Controller) ShouldCull(now, deadline time.Time) bool {
	return now.Add(c.EstRun()).After(deadline)
}

// RetryAfterFull computes the Retry-After for a queue-full rejection: the
// estimated time for the pool to drain one slot (run-time estimate divided
// by the current concurrency window), floored at MinRetryAfter.
func (c *Controller) RetryAfterFull() time.Duration {
	limit := c.Limiter.Limit()
	if limit < 1 {
		limit = 1
	}
	return c.floorRetry(c.EstRun() / time.Duration(limit))
}

// RetryAfterBreaker computes the Retry-After for a breaker-open
// rejection: the time until the circuit half-opens, floored at
// MinRetryAfter.
func (c *Controller) RetryAfterBreaker() time.Duration {
	return c.floorRetry(c.Breaker.RetryAfter())
}

func (c *Controller) floorRetry(d time.Duration) time.Duration {
	if d < c.cfg.MinRetryAfter {
		return c.cfg.MinRetryAfter
	}
	return d
}

// EffortFactor returns the search-effort multiplier for a job starting
// while the queue is fill full (fill in [0,1]): 1 under normal load, the
// configured degradation factor at or above the pressure threshold.
func (c *Controller) EffortFactor(fill float64) float64 {
	if c.cfg.DegradeFactor >= 1 || fill < c.cfg.DegradeAt {
		return 1
	}
	return c.cfg.DegradeFactor
}

// Close releases every goroutine blocked in the limiter.
func (c *Controller) Close() { c.Limiter.Close() }

// Snapshot is the observable admission state for /debug/snapshot and the
// metrics gauges.
type Snapshot struct {
	// Limit and InFlight are the limiter's current window and occupancy.
	Limit    int `json:"limit"`
	InFlight int `json:"in_flight"`
	// Breaker is the circuit state: "closed", "half-open" or "open".
	Breaker string `json:"breaker"`
	// QueueWaitSeconds and RunSeconds are the EWMA estimates feeding
	// deadline admission.
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RunSeconds       float64 `json:"run_seconds"`
}

// Snapshot captures the current admission state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	qw, rt := c.queueWait.value, c.runTime.value
	c.mu.Unlock()
	return Snapshot{
		Limit:            c.Limiter.Limit(),
		InFlight:         c.Limiter.InFlight(),
		Breaker:          c.Breaker.State().String(),
		QueueWaitSeconds: qw,
		RunSeconds:       rt,
	}
}
