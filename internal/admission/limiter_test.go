package admission

import (
	"sync"
	"testing"
	"time"
)

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4})
	if got := l.Limit(); got != 4 {
		t.Fatalf("Limit() = %d, want 4", got)
	}
	// Zero target: Observe must not move the window.
	l.Observe(time.Hour)
	if got := l.Limit(); got != 4 {
		t.Fatalf("Limit() after no-op Observe = %d, want 4", got)
	}
}

// TestLimiterConvergesOnLatencyStep simulates a latency step: while the
// backend is fast the window grows to Max; when latency steps above the
// target the window decays to Min; when the backend recovers it grows
// back. This is the AIMD convergence property from the issue checklist.
func TestLimiterConvergesOnLatencyStep(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 2, Min: 1, Max: 8, Target: 100 * time.Millisecond, Backoff: 0.5})

	// Phase 1: healthy latencies grow the window to Max.
	for i := 0; i < 200; i++ {
		l.Observe(10 * time.Millisecond)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("after healthy phase Limit() = %d, want 8", got)
	}

	// Phase 2: latency steps over the target; multiplicative decrease
	// collapses the window to Min quickly.
	for i := 0; i < 10; i++ {
		l.Observe(500 * time.Millisecond)
	}
	if got := l.Limit(); got != 1 {
		t.Fatalf("after saturation phase Limit() = %d, want 1", got)
	}

	// Phase 3: recovery grows the window back.
	for i := 0; i < 200; i++ {
		l.Observe(10 * time.Millisecond)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("after recovery phase Limit() = %d, want 8", got)
	}
}

func TestLimiterAcquireBlocksAtWindow(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, Max: 2, Target: time.Second})
	if !l.Acquire() {
		t.Fatal("first Acquire should succeed")
	}
	acquired := make(chan struct{})
	go func() {
		if l.Acquire() {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire should block while window is 1")
	case <-time.After(50 * time.Millisecond):
	}
	// Growing the window past 1 admits the waiter without a Release.
	l.Observe(time.Millisecond) // limit: 1 -> 2
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after window grew")
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight() = %d, want 2", got)
	}
	l.Release()
	l.Release()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight() after releases = %d, want 0", got)
	}
}

func TestLimiterCloseWakesWaiters(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1})
	if !l.Acquire() {
		t.Fatal("Acquire failed")
	}
	var wg sync.WaitGroup
	results := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- l.Acquire()
		}()
	}
	l.Close()
	wg.Wait()
	close(results)
	for ok := range results {
		if ok {
			t.Fatal("Acquire after Close should return false")
		}
	}
	if !l.Acquire() == false {
		t.Fatal("Acquire on closed limiter should return false")
	}
}
