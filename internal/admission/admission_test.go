package admission

import (
	"testing"
	"time"
)

func TestControllerDeadlineAdmission(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Workers: 2, EWMAAlpha: 0.5, Now: clk.now})

	// Unobserved estimators admit optimistically.
	if ok, _ := c.CanMeetDeadline(clk.now(), clk.now().Add(time.Millisecond)); !ok {
		t.Fatal("unobserved controller should admit")
	}

	c.ObserveQueueWait(4 * time.Second)
	c.ObserveRun(2 * time.Second)
	// est = 6s: an 8s deadline is feasible, a 3s one is not.
	if ok, _ := c.CanMeetDeadline(clk.now(), clk.now().Add(8*time.Second)); !ok {
		t.Fatal("8s deadline should be admitted with 6s estimate")
	}
	ok, retry := c.CanMeetDeadline(clk.now(), clk.now().Add(3*time.Second))
	if ok {
		t.Fatal("3s deadline should be rejected with 6s estimate")
	}
	if retry != 4*time.Second {
		t.Fatalf("Retry-After = %v, want 4s (queue-wait estimate)", retry)
	}

	// Dequeue cull: run estimate 2s, deadline 1s away -> cull.
	if !c.ShouldCull(clk.now(), clk.now().Add(time.Second)) {
		t.Fatal("ShouldCull should fire when run estimate exceeds remaining deadline")
	}
	if c.ShouldCull(clk.now(), clk.now().Add(3*time.Second)) {
		t.Fatal("ShouldCull should pass when deadline is achievable")
	}
}

func TestControllerEWMADeterministic(t *testing.T) {
	c := NewController(Config{Workers: 1, EWMAAlpha: 0.5})
	c.ObserveRun(4 * time.Second)
	c.ObserveRun(2 * time.Second) // 0.5*2 + 0.5*4 = 3
	if got := c.EstRun(); got != 3*time.Second {
		t.Fatalf("EstRun() = %v, want 3s", got)
	}
}

func TestControllerRetryAfterFull(t *testing.T) {
	c := NewController(Config{Workers: 4, MinRetryAfter: time.Second})
	// No history: floored at MinRetryAfter.
	if got := c.RetryAfterFull(); got != time.Second {
		t.Fatalf("RetryAfterFull() unobserved = %v, want 1s", got)
	}
	c.ObserveRun(20 * time.Second)
	// 20s run / window 4 = 5s until a slot should free up.
	if got := c.RetryAfterFull(); got != 5*time.Second {
		t.Fatalf("RetryAfterFull() = %v, want 5s", got)
	}
}

func TestControllerEffortFactor(t *testing.T) {
	c := NewController(Config{Workers: 1, DegradeAt: 0.75, DegradeFactor: 0.5})
	if got := c.EffortFactor(0.5); got != 1 {
		t.Fatalf("EffortFactor(0.5) = %v, want 1", got)
	}
	if got := c.EffortFactor(0.75); got != 0.5 {
		t.Fatalf("EffortFactor(0.75) = %v, want 0.5", got)
	}
	// DegradeFactor 1 disables degradation entirely.
	off := NewController(Config{Workers: 1, DegradeFactor: 1})
	if got := off.EffortFactor(1); got != 1 {
		t.Fatalf("EffortFactor with degradation disabled = %v, want 1", got)
	}
}

func TestControllerSnapshot(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Workers: 3, Now: clk.now})
	c.ObserveQueueWait(2 * time.Second)
	c.ObserveRun(time.Second)
	s := c.Snapshot()
	if s.Limit != 3 || s.InFlight != 0 || s.Breaker != "closed" {
		t.Fatalf("Snapshot = %+v", s)
	}
	if s.QueueWaitSeconds != 2 || s.RunSeconds != 1 {
		t.Fatalf("Snapshot estimates = %v/%v, want 2/1", s.QueueWaitSeconds, s.RunSeconds)
	}
}
