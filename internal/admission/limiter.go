package admission

import (
	"sync"
	"time"
)

// LimiterConfig sizes the AIMD window. Initial is required; zero Min,
// Max and Backoff mean 1, Initial and 0.75. A zero Target disables
// adaptation: the window stays pinned at Initial.
type LimiterConfig struct {
	Initial int
	Min     int
	Max     int
	Target  time.Duration
	Backoff float64
}

// Limiter is an adaptive concurrency limiter: a semaphore whose size
// follows the classic AIMD control loop over observed attempt latency.
// Latencies at or below the target grow the window by ~1 per window's
// worth of observations (additive increase); a latency above the target
// multiplies the window by Backoff (multiplicative decrease). The window
// is seeded from the worker count, so the service starts at full
// parallelism and backs off only on evidence of saturation.
//
// Acquire blocks while the window is full, which is what pushes excess
// work back into the fair queue (where shedding and fairness policies
// see it) instead of piling it onto a saturated backend.
type Limiter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cfg    LimiterConfig
	limit  float64 // fractional so additive increase accumulates
	inUse  int
	closed bool
}

// NewLimiter builds a limiter from cfg.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Initial < 1 {
		cfg.Initial = 1
	}
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Initial
		if cfg.Max < cfg.Min {
			cfg.Max = cfg.Min
		}
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = 0.75
	}
	l := &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Acquire blocks until a concurrency slot is free and claims it. It
// returns false when the limiter was closed, with no slot claimed.
func (l *Limiter) Acquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for !l.closed && l.inUse >= int(l.limit) {
		l.cond.Wait()
	}
	if l.closed {
		return false
	}
	l.inUse++
	return true
}

// Release returns a slot claimed by Acquire.
func (l *Limiter) Release() {
	l.mu.Lock()
	if l.inUse > 0 {
		l.inUse--
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Observe feeds one attempt latency into the AIMD loop. A zero Target
// makes it a no-op.
func (l *Limiter) Observe(latency time.Duration) {
	if l.cfg.Target <= 0 {
		return
	}
	l.mu.Lock()
	if latency <= l.cfg.Target {
		l.limit += 1 / l.limit
		if l.limit > float64(l.cfg.Max) {
			l.limit = float64(l.cfg.Max)
		}
	} else {
		l.limit *= l.cfg.Backoff
		if l.limit < float64(l.cfg.Min) {
			l.limit = float64(l.cfg.Min)
		}
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Limit is the current window size (at least 1).
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// InFlight is the number of claimed slots.
func (l *Limiter) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// Close wakes every blocked Acquire with false. Idempotent.
func (l *Limiter) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}
