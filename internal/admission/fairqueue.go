package admission

import (
	"errors"
	"fmt"
	"sync"
)

// Class is a job's priority class. Classes share the queue by stride
// scheduling with weights 4:2:1 (high:normal:low): under sustained mixed
// load, high-priority jobs dequeue twice as often as normal ones and four
// times as often as low ones, and no class is ever starved outright.
type Class int

const (
	// ClassHigh is latency-sensitive interactive work.
	ClassHigh Class = iota
	// ClassNormal is the default class.
	ClassNormal
	// ClassLow is bulk/batch work that yields to everything else.
	ClassLow
	numClasses
)

// classWeights drive the stride scheduler; higher weight = shorter
// stride = more frequent dequeues.
var classWeights = [numClasses]float64{ClassHigh: 4, ClassNormal: 2, ClassLow: 1}

// String renders the class for wire payloads and metric labels.
func (c Class) String() string {
	switch c {
	case ClassHigh:
		return "high"
	case ClassNormal:
		return "normal"
	case ClassLow:
		return "low"
	}
	return "unknown"
}

// Classes lists every class in exposition order.
func Classes() []Class { return []Class{ClassHigh, ClassNormal, ClassLow} }

// ParseClass maps a wire priority name to its class; "" means normal.
func ParseClass(s string) (Class, error) {
	switch s {
	case "high":
		return ClassHigh, nil
	case "", "normal":
		return ClassNormal, nil
	case "low":
		return ClassLow, nil
	}
	return ClassNormal, fmt.Errorf("admission: unknown priority %q (want high, normal or low)", s)
}

// Queue errors.
var (
	// ErrFull is returned by Push when the queue is at capacity.
	ErrFull = errors.New("admission: queue full")
	// ErrClosed is returned by Push after Close.
	ErrClosed = errors.New("admission: queue closed")
)

// clientQ is one client's FIFO backlog within a class.
type clientQ[T any] struct {
	items []T
}

// classQ is one priority class: per-client FIFOs dequeued round-robin.
type classQ[T any] struct {
	pass    float64 // stride-scheduling virtual time
	clients map[string]*clientQ[T]
	ring    []string // clients with pending items, round-robin order
	next    int      // ring cursor
	size    int
}

// FairQueue is the bounded priority/weighted-fair queue between admission
// and the worker pool. Push never blocks (a full queue is an admission
// error); Pop blocks until an item, and drains the remainder after Close
// before reporting closed. Fairness is two-level and deterministic:
// stride scheduling across classes by weight, round-robin across clients
// within a class — so any dequeue prefix gives each active client of a
// class an equal share (±1), whatever order their submissions arrived in.
type FairQueue[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	size     int
	closed   bool
	classes  [numClasses]*classQ[T]
}

// NewFairQueue builds a queue bounded at capacity items across all
// classes (minimum 1).
func NewFairQueue[T any](capacity int) *FairQueue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &FairQueue[T]{capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	for i := range q.classes {
		q.classes[i] = &classQ[T]{clients: make(map[string]*clientQ[T])}
	}
	return q
}

// Push enqueues v for the given class and client, failing fast with
// ErrFull at capacity or ErrClosed after Close. An empty client ID shares
// the "anonymous" bucket.
func (q *FairQueue[T]) Push(v T, class Class, client string) error {
	if class < 0 || class >= numClasses {
		class = ClassNormal
	}
	if client == "" {
		client = "anonymous"
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.size >= q.capacity {
		return ErrFull
	}
	cq := q.classes[class]
	if cq.size == 0 {
		// A class waking from idle starts at the current virtual time so
		// it cannot burst ahead on credit accumulated while empty.
		if minPass, ok := q.minActivePass(); ok && cq.pass < minPass {
			cq.pass = minPass
		}
	}
	c, ok := cq.clients[client]
	if !ok {
		c = &clientQ[T]{}
		cq.clients[client] = c
		cq.ring = append(cq.ring, client)
	}
	c.items = append(c.items, v)
	cq.size++
	q.size++
	q.cond.Signal()
	return nil
}

// minActivePass is the smallest virtual time among non-empty classes.
// Caller holds q.mu.
func (q *FairQueue[T]) minActivePass() (float64, bool) {
	min, ok := 0.0, false
	for _, cq := range q.classes {
		if cq.size == 0 {
			continue
		}
		if !ok || cq.pass < min {
			min, ok = cq.pass, true
		}
	}
	return min, ok
}

// Pop blocks until an item is available and dequeues it fairly. After
// Close it keeps draining the backlog and returns ok=false once empty.
func (q *FairQueue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return v, false
	}

	// Stride scheduling: the non-empty class with the smallest virtual
	// time dequeues and advances by 1/weight. Ties break to the higher
	// priority (lower index).
	var pick *classQ[T]
	pickIdx := -1
	for i, cq := range q.classes {
		if cq.size == 0 {
			continue
		}
		if pick == nil || cq.pass < pick.pass {
			pick, pickIdx = cq, i
		}
	}
	pick.pass += 1 / classWeights[pickIdx]

	// Round-robin across the class's clients: one item from the cursor's
	// client, then advance (or compact the ring when the client drains).
	pick.next %= len(pick.ring)
	name := pick.ring[pick.next]
	c := pick.clients[name]
	v = c.items[0]
	var zero T
	c.items[0] = zero // release the reference for GC
	c.items = c.items[1:]
	if len(c.items) == 0 {
		delete(pick.clients, name)
		pick.ring = append(pick.ring[:pick.next], pick.ring[pick.next+1:]...)
	} else {
		pick.next++
	}
	pick.size--
	q.size--
	return v, true
}

// Len is the total queued item count.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// LenClass is one class's queued item count.
func (q *FairQueue[T]) LenClass(c Class) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if c < 0 || c >= numClasses {
		return 0
	}
	return q.classes[c].size
}

// Capacity is the configured bound.
func (q *FairQueue[T]) Capacity() int { return q.capacity }

// Close ends intake: further Pushes fail, Pops drain the backlog then
// report closed. Idempotent.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
