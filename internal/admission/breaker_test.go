package admission

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestBreaker(c *fakeClock, n int) *Breaker { return NewBreaker(n, 5*time.Second, c.now) }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 3)

	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("Allow() = false while closed (failure %d)", i)
		}
		b.Failure()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("State() after 2 failures = %v, want closed", got)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("State() after 3 failures = %v, want open", got)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow() = true while open")
	}
	if ra := b.RetryAfter(); ra != 5*time.Second {
		t.Fatalf("RetryAfter() = %v, want 5s", ra)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 3)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("State() = %v, want closed (success reset the run)", got)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 1)
	b.Failure() // trips immediately at threshold 1

	clk.advance(4 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow() = true before cooldown elapsed")
	}
	clk.advance(2 * time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("State() after cooldown = %v, want half-open", got)
	}
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow() after cooldown = (%v,%v), want probe", ok, probe)
	}
	// A second request during the probe is rejected.
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow() = true while probe in flight")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("State() after probe success = %v, want closed", got)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("Allow() after close = (%v,%v), want plain allow", ok, probe)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 1)
	b.Failure()
	clk.advance(6 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("Allow() = (%v,%v), want probe", ok, probe)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("State() after probe failure = %v, want open", got)
	}
	// Cooldown restarts from the re-trip.
	clk.advance(4 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow() = true before second cooldown elapsed")
	}
}

func TestBreakerReleaseProbeAllowsNextProbe(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 1)
	b.Failure()
	clk.advance(6 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("Allow() = (%v,%v), want probe", ok, probe)
	}
	// Probe owner abandons (job shed/cancelled) without judging health.
	b.ReleaseProbe()
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("Allow() after ReleaseProbe = (%v,%v), want new probe", ok, probe)
	}
}
