package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", ClassNormal, true},
		{"normal", ClassNormal, true},
		{"high", ClassHigh, true},
		{"low", ClassLow, true},
		{"urgent", ClassNormal, false},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseClass(%q) = (%v, %v), want (%v, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestFairQueueBoundAndClose(t *testing.T) {
	q := NewFairQueue[int](2)
	if err := q.Push(1, ClassNormal, "a"); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if err := q.Push(2, ClassNormal, "a"); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	if err := q.Push(3, ClassNormal, "a"); err != ErrFull {
		t.Fatalf("push over capacity = %v, want ErrFull", err)
	}
	q.Close()
	if err := q.Push(4, ClassNormal, "a"); err != ErrClosed {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
	// Backlog drains after close, then Pop reports closed.
	for want := 1; want <= 2; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop() = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop() on drained closed queue should report closed")
	}
}

// TestFairQueueClientFairness is the fairness property test: one client
// floods the queue with its entire burst before anyone else submits, yet
// any dequeue prefix gives every active client an equal share (±1).
func TestFairQueueClientFairness(t *testing.T) {
	const perClient = 100
	clients := []string{"flooder", "b", "c", "d"}
	q := NewFairQueue[string](len(clients) * perClient)
	// Adversarial order: the flooder enqueues everything first.
	for _, cl := range clients {
		for i := 0; i < perClient; i++ {
			if err := q.Push(cl, ClassNormal, cl); err != nil {
				t.Fatalf("push %s/%d: %v", cl, i, err)
			}
		}
	}
	counts := map[string]int{}
	for n := 1; n <= len(clients)*perClient; n++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop() closed early at %d", n)
		}
		counts[v]++
		// While all clients still have backlog, any prefix must be fair
		// to within one item per client.
		if n <= len(clients)*(perClient-1) {
			fair := n / len(clients)
			for _, cl := range clients {
				if d := counts[cl] - fair; d < -1 || d > 1 {
					t.Fatalf("after %d pops client %s has %d completions, fair share %d (±1)", n, cl, counts[cl], fair)
				}
			}
		}
	}
	for _, cl := range clients {
		if counts[cl] != perClient {
			t.Fatalf("client %s drained %d items, want %d", cl, counts[cl], perClient)
		}
	}
}

// TestFairQueueClassWeights checks the 4:2:1 stride split under
// sustained mixed backlog.
func TestFairQueueClassWeights(t *testing.T) {
	q := NewFairQueue[Class](300)
	for i := 0; i < 100; i++ {
		for _, c := range Classes() {
			if err := q.Push(c, c, "x"); err != nil {
				t.Fatalf("push: %v", err)
			}
		}
	}
	counts := map[Class]int{}
	// Pop 70 while every class still has backlog: expect ~40/20/10.
	for i := 0; i < 70; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("Pop() closed early")
		}
		counts[v]++
	}
	if counts[ClassHigh] != 40 || counts[ClassNormal] != 20 || counts[ClassLow] != 10 {
		t.Fatalf("class split after 70 pops = %d/%d/%d, want 40/20/10",
			counts[ClassHigh], counts[ClassNormal], counts[ClassLow])
	}
	if got := q.LenClass(ClassHigh); got != 60 {
		t.Fatalf("LenClass(high) = %d, want 60", got)
	}
}

// TestFairQueueIdleClassNoBurst: a class idle while others drain must not
// accumulate credit and monopolise the queue when it wakes.
func TestFairQueueIdleClassNoBurst(t *testing.T) {
	q := NewFairQueue[string](100)
	for i := 0; i < 40; i++ {
		q.Push("low", ClassLow, "x")
	}
	// Drain some low-class items; its pass advances well past 0.
	for i := 0; i < 20; i++ {
		q.Pop()
	}
	// High class wakes: it should interleave at 4:1 from now on, not
	// claim every slot until its pass catches up from zero.
	for i := 0; i < 40; i++ {
		q.Push("high", ClassHigh, "y")
	}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		v, _ := q.Pop()
		counts[v]++
	}
	if counts["low"] == 0 {
		t.Fatalf("low class starved after high class woke: %v", counts)
	}
	if counts["high"] < 7 {
		t.Fatalf("high class did not dominate 4:1: %v", counts)
	}
}

func TestFairQueuePopBlocksUntilPush(t *testing.T) {
	q := NewFairQueue[int](4)
	got := make(chan int, 1)
	go func() {
		v, ok := q.Pop()
		if ok {
			got <- v
		}
	}()
	select {
	case v := <-got:
		t.Fatalf("Pop() returned %d before any Push", v)
	case <-time.After(30 * time.Millisecond):
	}
	if err := q.Push(7, ClassNormal, ""); err != nil {
		t.Fatalf("push: %v", err)
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("Pop() = %d, want 7", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop() did not wake on Push")
	}
}

// TestFairQueueConcurrent hammers the queue from many producers and
// consumers under -race.
func TestFairQueueConcurrent(t *testing.T) {
	const producers, perProducer = 8, 50
	q := NewFairQueue[string](producers * perProducer)
	var pushWG, popWG sync.WaitGroup
	seen := make(chan string, producers*perProducer)
	for p := 0; p < producers; p++ {
		pushWG.Add(1)
		go func(p int) {
			defer pushWG.Done()
			cl := fmt.Sprintf("client-%d", p)
			class := Classes()[p%3]
			for i := 0; i < perProducer; i++ {
				if err := q.Push(fmt.Sprintf("%s/%d", cl, i), class, cl); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	for w := 0; w < 4; w++ {
		popWG.Add(1)
		go func() {
			defer popWG.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				seen <- v
			}
		}()
	}
	pushWG.Wait()
	q.Close()
	popWG.Wait()
	close(seen)
	uniq := map[string]bool{}
	for v := range seen {
		if uniq[v] {
			t.Fatalf("item %s dequeued twice", v)
		}
		uniq[v] = true
	}
	if len(uniq) != producers*perProducer {
		t.Fatalf("drained %d items, want %d", len(uniq), producers*perProducer)
	}
}
