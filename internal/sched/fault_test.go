package sched

import (
	"errors"
	"math"
	"os"
	"reflect"
	"sort"
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/trace"
)

// mustRun asserts a Run* call completed without losing the whole pool.
func mustRun(t *testing.T) func(float64, error) float64 {
	t.Helper()
	return func(end float64, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return end
	}
}

// confsDone sums successfully evaluated conformations across the pool.
func confsDone(p *Pool) int64 {
	var n int64
	for _, d := range p.Context().Devices() {
		n += d.ConformationsCompleted()
	}
	return n
}

// faultedHetRun warms up a Hertz pool, arms plan on the GTX580 (device 1),
// and runs one heterogeneous generation of total conformations. Returns
// the pool, its recorder and the barrier end time.
func faultedHetRun(t *testing.T, total int, plan cudasim.FaultPlan) (*Pool, *trace.Recorder, float64, error) {
	t.Helper()
	p := hertzPool(t)
	rec := &trace.Recorder{}
	p.SetRecorder(rec)
	w := p.Warmup(probe(), 8, 0, 1)
	p.Context().Device(1).SetFaultPlan(plan)
	assign := Assign(Heterogeneous, total, 2, w.Weights, 8)
	end, err := p.RunStatic(assign, batch())
	return p, rec, end, err
}

// TestHeterogeneousSurvivesDeviceLoss is the headline recovery scenario:
// the GTX580 of the Hertz node dies mid-generation under Heterogeneous
// scheduling, and the K40c absorbs its share.
func TestHeterogeneousSurvivesDeviceLoss(t *testing.T) {
	const total = 2048

	// Unfaulted two-device baseline (same warm-up charged).
	base := hertzPool(t)
	wb := base.Warmup(probe(), 8, 0, 1)
	tBase := mustRun(t)(base.RunStatic(Assign(Heterogeneous, total, 2, wb.Weights, 8), batch()))
	warmupConfs := confsDone(base) - total // warm-up kernels also count

	// Fault the GTX580 halfway between warm-up end and the baseline
	// makespan, while its generation share is in flight.
	probePool := hertzPool(t)
	probePool.Warmup(probe(), 8, 0, 1)
	failAt := probePool.Now() + (tBase-probePool.Now())/2

	p, rec, tFault, err := faultedHetRun(t, total, cudasim.FaultPlan{FailAt: failAt})
	if err != nil {
		t.Fatalf("faulted run did not complete: %v", err)
	}

	// (a) Every conformation was evaluated despite the loss.
	if got := confsDone(p); got < warmupConfs+total {
		t.Errorf("evaluated %d conformations, want >= %d", got, warmupConfs+total)
	}
	if !p.Context().Device(1).Lost() {
		t.Error("device 1 not fenced")
	}
	if alive := p.Alive(); !alive[0] || alive[1] {
		t.Errorf("alive mask = %v, want [true false]", alive)
	}

	// (b) Makespan stays within 2x the two-device baseline.
	if tFault > 2*tBase {
		t.Errorf("faulted makespan %v > 2x baseline %v", tFault, tBase)
	}
	if tFault <= tBase {
		t.Errorf("faulted makespan %v not slower than baseline %v", tFault, tBase)
	}

	// The recovery is visible in the stats and the trace.
	st := p.FaultStats()
	if st.Permanents < 1 {
		t.Errorf("Permanents = %d, want >= 1", st.Permanents)
	}
	if st.Resplits < 1 {
		t.Errorf("Resplits = %d, want >= 1", st.Resplits)
	}
	if rec.CountLabel("resplit") < 1 {
		t.Error("no resplit mark in the trace")
	}
	if rec.CountLabel("fault:permanent") < 1 {
		t.Error("no fault:permanent event in the trace")
	}
}

// TestFaultedRunDeterministic: the same seed and fault plan produce the
// same timeline, event for event.
func TestFaultedRunDeterministic(t *testing.T) {
	pp := hertzPool(t)
	pp.Warmup(probe(), 8, 0, 1)
	plan := cudasim.FaultPlan{FailAt: pp.Now() * 1.1} // mid-generation
	run := func() ([]trace.Event, float64) {
		t.Helper()
		p, rec, end, err := faultedHetRun(t, 2048, plan)
		if err != nil {
			t.Fatalf("faulted run: %v", err)
		}
		if p.FaultStats().Permanents < 1 {
			t.Fatal("fault plan did not fire; the test is vacuous")
		}
		evs := rec.Events()
		// Worker goroutines interleave recording; order within the trace
		// is not part of the contract, the set of events is.
		sort.Slice(evs, func(i, j int) bool {
			a, b := evs[i], evs[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.Device != b.Device {
				return a.Device < b.Device
			}
			if a.End != b.End {
				return a.End < b.End
			}
			return a.Label < b.Label
		})
		return evs, end
	}
	e1, t1 := run()
	e2, t2 := run()
	if t1 != t2 {
		t.Errorf("makespans differ: %v vs %v", t1, t2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("traces differ: %d vs %d events", len(e1), len(e2))
	}
}

// TestTransientRetriesRecover: a flaky device retries in place and the
// generation completes with no re-split.
func TestTransientRetriesRecover(t *testing.T) {
	p := hertzPool(t)
	p.SetFaultPolicy(FaultPolicy{MaxRetries: 10})
	p.Context().Device(1).SetFaultPlan(cudasim.FaultPlan{TransientRate: 0.5, Seed: 1})
	w := p.Warmup(probe(), 8, 0, 1)
	end, err := p.RunStatic(Assign(Heterogeneous, 1024, 2, w.Weights, 8), batch())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	st := p.FaultStats()
	if st.Transients < 1 || st.Retries < 1 {
		t.Errorf("stats = %+v, want transients and retries", st)
	}
	if st.Resplits != 0 || st.Permanents != 0 {
		t.Errorf("flaky-but-recoverable device was fenced: %+v", st)
	}
	if p.Context().Device(1).Lost() {
		t.Error("device 1 fenced despite retries succeeding")
	}
}

// TestTransientExhaustionFences: a device that fails every retry is
// treated as lost and its share is re-split.
func TestTransientExhaustionFences(t *testing.T) {
	p := hertzPool(t)
	p.SetFaultPolicy(FaultPolicy{MaxRetries: 2})
	p.Context().Device(1).SetFaultPlan(cudasim.FaultPlan{TransientRate: 0.999, Seed: 3})
	w := p.Warmup(probe(), 8, 0, 1)
	if !math.IsInf(w.Times[1], 1) {
		// The warm-up itself should already exhaust the budget; if not,
		// the generation below will.
		t.Logf("device 1 survived warm-up, weights = %v", w.Weights)
	}
	_, err := p.RunStatic(AssignAlive(Heterogeneous, 1024, p.Alive(), w.Weights, 8), batch())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !p.Context().Device(1).Lost() && p.aliveAt(1) {
		t.Error("persistently flaky device not fenced")
	}
	st := p.FaultStats()
	if st.Permanents < 1 {
		t.Errorf("Permanents = %d, want >= 1 (retry exhaustion)", st.Permanents)
	}
}

// TestHangFencedByWatchdog: a hanging device costs one watchdog interval,
// then the survivors finish the work.
func TestHangFencedByWatchdog(t *testing.T) {
	p := hertzPool(t)
	p.SetFaultPolicy(FaultPolicy{Watchdog: 0.05})
	w := p.Warmup(probe(), 8, 0, 1)
	p.Context().Device(1).SetFaultPlan(cudasim.FaultPlan{HangAt: p.Now() + 1e-9})
	end, err := p.RunStatic(Assign(Heterogeneous, 2048, 2, w.Weights, 8), batch())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	st := p.FaultStats()
	if st.Hangs != 1 {
		t.Errorf("Hangs = %d, want 1", st.Hangs)
	}
	if st.Resplits < 1 {
		t.Errorf("Resplits = %d, want >= 1", st.Resplits)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	// Pool of one K40c running everything, plus the watchdog wait, bounds
	// the makespan; mostly this asserts the watchdog did not charge the
	// 60s default.
	if end > 10 {
		t.Errorf("makespan %v suggests the default watchdog fired", end)
	}
}

// TestDynamicDrainsAroundDeadDevice: cooperative chunking requeues the
// failed chunk and the surviving device drains the queue.
func TestDynamicDrainsAroundDeadDevice(t *testing.T) {
	p := hertzPool(t)
	p.Warmup(probe(), 8, 0, 1)
	// The generation lasts roughly a third of the warm-up clock; 1.1x the
	// current time lands mid-run.
	p.Context().Device(1).SetFaultPlan(cudasim.FaultPlan{FailAt: p.Now() * 1.1})
	total := 2048
	before := confsDone(p)
	end, err := p.RunDynamic(total, 64, batch())
	if err != nil {
		t.Fatalf("dynamic run: %v", err)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	if got := confsDone(p) - before; got < int64(total) {
		t.Errorf("evaluated %d of %d conformations", got, total)
	}
	if !p.Context().Device(1).Lost() {
		t.Error("device 1 not lost")
	}
	if p.AliveCount() != 1 {
		t.Errorf("AliveCount = %d, want 1", p.AliveCount())
	}
}

// TestAllDevicesLost: when every device dies the run reports it instead
// of spinning or claiming success.
func TestAllDevicesLost(t *testing.T) {
	p := hertzPool(t)
	for i := 0; i < 2; i++ {
		p.Context().Device(i).SetFaultPlan(cudasim.FaultPlan{FailAt: 1e-12})
	}
	_, err := p.RunStatic([]int{512, 512}, batch())
	if !errors.Is(err, ErrAllDevicesLost) {
		t.Errorf("RunStatic err = %v, want ErrAllDevicesLost", err)
	}
	p2 := hertzPool(t)
	for i := 0; i < 2; i++ {
		p2.Context().Device(i).SetFaultPlan(cudasim.FaultPlan{FailAt: 1e-12})
	}
	if _, err := p2.RunDynamic(512, 64, batch()); !errors.Is(err, ErrAllDevicesLost) {
		t.Errorf("RunDynamic err = %v, want ErrAllDevicesLost", err)
	}
}

// TestWarmupFailedDeviceGetsZeroWeight: a device dead before warm-up has
// infinite time, zero Percent and zero weight; the survivor takes it all.
func TestWarmupFailedDeviceGetsZeroWeight(t *testing.T) {
	p := hertzPool(t)
	p.Context().Device(1).SetFaultPlan(cudasim.FaultPlan{FailAt: 1e-12})
	w := p.Warmup(probe(), 8, 0, 1)
	if !math.IsInf(w.Times[1], 1) {
		t.Errorf("dead device warm-up time = %v, want +Inf", w.Times[1])
	}
	if w.Weights[1] != 0 || w.Percent[1] != 0 {
		t.Errorf("dead device weight=%v percent=%v, want 0", w.Weights[1], w.Percent[1])
	}
	if math.Abs(w.Weights[0]-1) > 1e-12 {
		t.Errorf("survivor weight = %v, want 1", w.Weights[0])
	}
	assign := AssignAlive(Heterogeneous, 1000, p.Alive(), w.Weights, 8)
	if assign[0] != 1000 || assign[1] != 0 {
		t.Errorf("AssignAlive = %v, want all on device 0", assign)
	}
}

// TestPipelinedRunSurvivesDeviceLoss mirrors the headline scenario on the
// dual-stream pipelined executor.
func TestPipelinedRunSurvivesDeviceLoss(t *testing.T) {
	p := hertzPool(t)
	w := p.Warmup(probe(), 8, 0, 1)
	p.Context().Device(1).SetFaultPlan(cudasim.FaultPlan{FailAt: p.Now() * 1.1})
	before := confsDone(p)
	end, err := p.RunStaticPipelined(Assign(Heterogeneous, 2048, 2, w.Weights, 8), batch(), 4)
	if err != nil {
		t.Fatalf("pipelined run: %v", err)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	if got := confsDone(p) - before; got < 2048 {
		t.Errorf("evaluated %d of 2048 conformations", got)
	}
	if p.FaultStats().Resplits < 1 {
		t.Error("no re-split recorded")
	}
}

// TestChaosMatrix runs the CI chaos scenarios: METASCREEN_CHAOS selects
// one fault kind (transient, permanent, hang); unset runs all three.
func TestChaosMatrix(t *testing.T) {
	kinds := []string{"transient", "permanent", "hang"}
	if k := os.Getenv("METASCREEN_CHAOS"); k != "" {
		kinds = []string{k}
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			p := hertzPool(t)
			p.SetFaultPolicy(FaultPolicy{MaxRetries: 10, Watchdog: 0.05})
			w := p.Warmup(probe(), 8, 0, 1)
			var plan cudasim.FaultPlan
			switch kind {
			case "transient":
				plan = cudasim.FaultPlan{TransientRate: 0.3, Seed: 11}
			case "permanent":
				plan = cudasim.FaultPlan{FailAt: p.Now() * 1.1}
			case "hang":
				plan = cudasim.FaultPlan{HangAt: p.Now() * 1.05}
			default:
				t.Fatalf("unknown METASCREEN_CHAOS kind %q", kind)
			}
			p.Context().Device(1).SetFaultPlan(plan)
			total := 2048
			before := confsDone(p)
			_, err := p.RunStatic(Assign(Heterogeneous, total, 2, w.Weights, 8), batch())
			if err != nil {
				t.Fatalf("chaos %s run: %v", kind, err)
			}
			if got := confsDone(p) - before; got < int64(total) {
				t.Errorf("chaos %s: evaluated %d of %d", kind, got, total)
			}
			if st := p.FaultStats(); st.Faults() < 1 {
				t.Errorf("chaos %s: no fault observed: %+v", kind, st)
			}
		})
	}
}

func TestSplitProportionalDegenerateWeights(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	// All degenerate: fall back to the equal split.
	got := SplitProportional(10, []float64{nan, inf, -1})
	if got[0]+got[1]+got[2] != 10 {
		t.Errorf("degenerate split = %v, does not conserve total", got)
	}
	for _, v := range got {
		if v < 3 || v > 4 {
			t.Errorf("degenerate split = %v, want near-equal parts", got)
		}
	}
	// Mixed: the only sane weight takes everything.
	got = SplitProportional(10, []float64{nan, 2, inf})
	if got[1] != 10 || got[0] != 0 || got[2] != 0 {
		t.Errorf("mixed split = %v, want all on index 1", got)
	}
}

func TestAssignAlive(t *testing.T) {
	// One dead device under Heterogeneous: everything to the survivor.
	a := AssignAlive(Heterogeneous, 100, []bool{true, false}, []float64{0.6, 0.4}, 1)
	if a[0] != 100 || a[1] != 0 {
		t.Errorf("het one-dead = %v", a)
	}
	// Homogeneous over three devices with the middle one dead.
	a = AssignAlive(Homogeneous, 90, []bool{true, false, true}, nil, 1)
	if a[0] != 45 || a[1] != 0 || a[2] != 45 {
		t.Errorf("hom one-dead = %v", a)
	}
	// Nothing alive: all zeros.
	a = AssignAlive(Heterogeneous, 90, []bool{false, false}, []float64{1, 1}, 1)
	if a[0] != 0 || a[1] != 0 {
		t.Errorf("none-alive = %v", a)
	}
	// Dynamic still has no static assignment.
	defer func() {
		if recover() == nil {
			t.Error("AssignAlive(Dynamic) did not panic")
		}
	}()
	AssignAlive(Dynamic, 90, []bool{true, true}, nil, 1)
}
