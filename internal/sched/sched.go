// Package sched implements the paper's heterogeneity-aware scheduling (its
// sections 3.2-3.3): a device pool driven by one host worker per GPU, a
// warm-up phase that measures per-device throughput at run time, the
// Percent factor of the paper's equation 1, and three ways to split a batch
// of conformations across devices:
//
//	Homogeneous   — equal split, the baseline "homogeneous computation";
//	Heterogeneous — proportional to measured throughput (the contribution);
//	Dynamic       — cooperative chunk self-scheduling, the "cooperative
//	                scheduling of jobs" ablation.
package sched

import (
	"fmt"
	"log/slog"
	"math"
	"sync"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/hostpar"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/trace"
)

// Mode selects the partitioning strategy.
type Mode int

const (
	// Homogeneous assigns every device the same number of conformations,
	// as if all devices had identical compute capability.
	Homogeneous Mode = iota
	// Heterogeneous assigns conformations proportionally to the
	// throughput measured in the warm-up phase.
	Heterogeneous
	// Dynamic self-schedules fixed-size chunks onto whichever device
	// becomes free first.
	Dynamic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Homogeneous:
		return "homogeneous"
	case Heterogeneous:
		return "heterogeneous"
	case Dynamic:
		return "dynamic"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Pool drives the devices of one simulated node. Like the paper's
// implementation, it creates one host worker per device (the paper uses
// one OpenMP thread per GPU context).
type Pool struct {
	ctx  *cudasim.Context
	team *hostpar.Team
	rec  *trace.Recorder
	log  *slog.Logger

	fmu    sync.Mutex // guards the fault state below
	policy FaultPolicy
	alive  []bool
	stats  FaultStats
}

// NewPool returns a pool over all devices of the context.
func NewPool(ctx *cudasim.Context) *Pool {
	alive := make([]bool, ctx.DeviceCount())
	for i := range alive {
		alive[i] = true
	}
	return &Pool{ctx: ctx, team: hostpar.NewTeam(ctx.DeviceCount()), alive: alive, log: obs.Nop()}
}

// SetRecorder attaches a timeline recorder; every subsequent device
// operation is recorded. Pass nil to stop recording.
func (p *Pool) SetRecorder(r *trace.Recorder) { p.rec = r }

// SetLogger routes the pool's structured logging — warm-up summaries,
// device fences, re-splits — through l. Like SetRecorder, call it before
// dispatching work; nil restores the no-op default.
func (p *Pool) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Nop()
	}
	p.log = l
}

// record forwards a device event to the recorder, optionally overriding
// its label.
func (p *Pool) record(ev cudasim.Event, label string) {
	if p.rec == nil {
		return
	}
	if label == "" {
		label = ev.Label
	}
	p.rec.Add(trace.Event{Device: ev.Device, Label: label, Start: ev.Start, End: ev.End})
}

// Size returns the number of devices.
func (p *Pool) Size() int { return p.ctx.DeviceCount() }

// Context returns the underlying device context.
func (p *Pool) Context() *cudasim.Context { return p.ctx }

// WarmupResult holds the outcome of the warm-up phase.
type WarmupResult struct {
	// Times is the measured per-device execution time of the probe
	// workload, in simulated seconds (including measurement noise).
	Times []float64
	// Percent is the paper's equation 1: Times[i] / max(Times). The
	// slowest device has Percent = 1.
	Percent []float64
	// Weights is the normalized throughput share per device
	// ((1/Times[i]) / sum(1/Times)), the fraction of the workload the
	// heterogeneous split assigns to device i.
	Weights []float64
}

// Warmup runs the paper's warm-up phase: every device executes iters
// iterations of the probe launch concurrently (one host worker per device),
// per-device times are gathered and reduced to the maximum, and Percent and
// throughput weights are derived.
//
// Real measurements are noisy; noiseAmp injects a deterministic relative
// perturbation in [-noiseAmp, +noiseAmp] per device, derived from seed, so
// that Modeled runs reproduce the imperfect balance a real warm-up attains.
// The probe runs on each device's default stream and advances its simulated
// clock, charging the warm-up cost to the run like the real system does.
//
// A device that faults during warm-up (transients beyond the retry budget,
// permanent loss, hang) is fenced: its Time is +Inf and its Percent and
// Weight are zero, so no work is ever assigned to it.
func (p *Pool) Warmup(probe cudasim.ScoringLaunch, iters int, noiseAmp float64, seed uint64) WarmupResult {
	if iters < 1 {
		iters = 1
	}
	n := p.Size()
	res := WarmupResult{
		Times:   make([]float64, n),
		Percent: make([]float64, n),
		Weights: make([]float64, n),
	}
	base := rng.New(seed)
	// One host worker per device, as in the paper's OpenMP scheme.
	p.team.ForThread(func(tid int) {
		if tid >= n {
			return
		}
		if !p.aliveAt(tid) {
			res.Times[tid] = math.Inf(1)
			return
		}
		dev := p.ctx.Device(tid)
		start := dev.StreamClock(cudasim.DefaultStream)
		end := start
		for it := 0; it < iters; it++ {
			ev, err := p.runOp(tid, "warmup", func() (cudasim.Event, error) {
				return dev.Launch(cudasim.DefaultStream, probe)
			})
			if err != nil {
				res.Times[tid] = math.Inf(1)
				return
			}
			end = ev.End
		}
		t := end - start
		// Deterministic measurement noise, independent of worker order.
		noise := 1 + noiseAmp*(2*base.Split(uint64(tid)).Float64()-1)
		res.Times[tid] = t * noise
	})
	// Reduce to the slowest device (the paper uses an OpenMP max
	// reduction) and derive Percent and weights; fenced devices (infinite
	// time) contribute nothing and get zero weight.
	slowest := 0.0
	for _, t := range res.Times {
		if !math.IsInf(t, 1) && t > slowest {
			slowest = t
		}
	}
	invSum := 0.0
	for _, t := range res.Times {
		if !math.IsInf(t, 1) && t > 0 {
			invSum += 1 / t
		}
	}
	for i, t := range res.Times {
		if math.IsInf(t, 1) || t <= 0 || slowest <= 0 || invSum <= 0 {
			continue
		}
		res.Percent[i] = t / slowest
		res.Weights[i] = (1 / t) / invSum
	}
	p.log.Debug("warmup measured",
		"iters", iters,
		"times", res.Times,
		"percent", res.Percent,
		"weights", res.Weights,
	)
	return res
}

// SplitEqual divides total items into n near-equal parts (the homogeneous
// computation). The first total%n parts get one extra item; the sum always
// equals total.
func SplitEqual(total, n int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	base := total / n
	rem := total % n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// SplitProportional divides total items according to weights using the
// largest-remainder method, so the parts sum exactly to total and each part
// is within one item of its ideal share. Degenerate weights — negative,
// NaN, or infinite entries — are treated as zero, and an all-zero vector
// (what a fully-failed warm-up produces) falls back to the equal split
// rather than dividing by zero.
func SplitProportional(total int, weights []float64) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	// Sanitize: anything that is not a positive finite weight is zero.
	clean := make([]float64, n)
	sum := 0.0
	for i, w := range weights {
		if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
			clean[i] = w
			sum += w
		}
	}
	out := make([]int, n)
	if sum == 0 || total <= 0 {
		if total > 0 {
			return SplitEqual(total, n)
		}
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range clean {
		ideal := float64(total) * w / sum
		out[i] = int(ideal)
		assigned += out[i]
		rems[i] = rem{idx: i, frac: ideal - float64(out[i])}
	}
	// Distribute the remainder (at most n items, since each floor drops
	// less than 1) to the largest fractional parts, ties broken by index.
	for assigned < total {
		best := -1
		for j := range rems {
			if best == -1 || rems[j].frac > rems[best].frac ||
				(rems[j].frac == rems[best].frac && rems[j].idx < rems[best].idx) {
				best = j
			}
		}
		out[rems[best].idx]++
		rems[best].frac = -2 // consumed
		assigned++
	}
	return out
}

// RoundToGranularity rounds each part of assign to a multiple of gran while
// conserving the total, modeling CUDA block granularity: a device always
// receives whole blocks. Parts are rounded to the nearest multiple, then
// the difference is repaid in gran-sized steps against the largest (or
// smallest) parts. Totals that are not multiples of gran leave one part
// ragged.
func RoundToGranularity(assign []int, gran int) []int {
	if gran <= 1 || len(assign) == 0 {
		out := make([]int, len(assign))
		copy(out, assign)
		return out
	}
	total := 0
	out := make([]int, len(assign))
	for i, a := range assign {
		total += a
		out[i] = (a + gran/2) / gran * gran
	}
	sum := 0
	for _, a := range out {
		sum += a
	}
	// Repay the rounding difference in gran steps.
	for sum > total {
		// Shrink the largest part.
		best := 0
		for i := range out {
			if out[i] > out[best] {
				best = i
			}
		}
		step := gran
		if sum-total < gran {
			step = sum - total
		}
		if out[best] < step {
			step = out[best]
		}
		if step == 0 {
			break
		}
		out[best] -= step
		sum -= step
	}
	for sum < total {
		// Grow the smallest part.
		best := 0
		for i := range out {
			if out[i] < out[best] {
				best = i
			}
		}
		step := gran
		if total-sum < gran {
			step = total - sum
		}
		out[best] += step
		sum += step
	}
	return out
}
