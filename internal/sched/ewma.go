package sched

// DefaultRateAlpha is the smoothing weight a RateEWMA uses when none is
// set: the newest sample contributes 30%, matching the warm-up weighting
// the per-device scheduler has always used for throughput estimates.
const DefaultRateAlpha = 0.3

// RateEWMA smooths a stream of rate samples (ligands/second, poses/second
// — any throughput) into a stable estimate. It is the one rate estimator
// shared by the device scheduler, the coordinator's per-worker straggler
// detection, and the service's self-reported shard progress, so that all
// three layers agree on what "observed rate" means.
//
// The zero value is ready to use. RateEWMA is not safe for concurrent
// use; callers guard it with their own locks.
type RateEWMA struct {
	// Alpha is the weight of the newest sample; 0 means DefaultRateAlpha.
	Alpha float64

	value float64
	seen  bool
}

func (e *RateEWMA) alpha() float64 {
	if e.Alpha > 0 {
		return e.Alpha
	}
	return DefaultRateAlpha
}

// Observe folds one rate sample into the estimate. The first sample is
// taken verbatim so cold starts converge immediately instead of climbing
// from zero.
func (e *RateEWMA) Observe(sample float64) {
	if !e.seen {
		e.value, e.seen = sample, true
		return
	}
	a := e.alpha()
	e.value = (1-a)*e.value + a*sample
}

// Value returns the current estimate, 0 until the first sample.
func (e *RateEWMA) Value() float64 { return e.value }

// Observed reports whether any sample has been folded in — callers that
// compare workers must not mistake "no data yet" for "rate zero".
func (e *RateEWMA) Observed() bool { return e.seen }

// Reset discards all history, as when a worker re-registers after a death
// and its old throughput no longer describes it.
func (e *RateEWMA) Reset() { e.value, e.seen = 0, false }
