package sched

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
)

func batch() Batch {
	return Batch{
		Proto: cudasim.ScoringLaunch{
			Kind:                 cudasim.KernelScoring,
			PairsPerConformation: 146880,
		},
		BytesPerConformation: 56, // translation (24) + quaternion (32)
	}
}

func TestRunStaticBarrier(t *testing.T) {
	p := hertzPool(t)
	end := mustRun(t)(p.RunStatic([]int{1024, 1024}, batch()))
	if end <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// After the barrier every device sits at the same clock.
	for i, d := range p.Context().Devices() {
		if got := d.StreamClock(cudasim.DefaultStream); math.Abs(got-end) > 1e-15 {
			t.Errorf("device %d clock %v != barrier %v", i, got, end)
		}
	}
	if p.Now() != end {
		t.Errorf("Now() = %v, want %v", p.Now(), end)
	}
}

func TestRunStaticSlowestDeviceDominates(t *testing.T) {
	// Equal split on a heterogeneous pool: the barrier time equals what
	// the slow device needs, not the fast one.
	p := hertzPool(t)
	end := mustRun(t)(p.RunStatic([]int{1024, 1024}, batch()))

	solo := hertzPool(t)
	slowOnly := mustRun(t)(solo.RunStatic([]int{0, 1024}, batch()))
	if end < slowOnly-1e-12 {
		t.Errorf("barrier %v earlier than slow device alone %v", end, slowOnly)
	}
}

func TestHeterogeneousBeatsHomogeneousOnHertz(t *testing.T) {
	// The paper's headline effect (Tables 8-9): on K40c + GTX580,
	// proportional splitting beats the equal split by ~1.3-1.6x.
	total := 2048

	hom := hertzPool(t)
	tHom := mustRun(t)(hom.RunStatic(Assign(Homogeneous, total, 2, nil, 8), batch()))

	het := hertzPool(t)
	res := het.Warmup(batch().Proto.WithConformations(64), 8, 0, 1)
	het.Context().ResetAll() // compare pure generation times
	tHet := mustRun(t)(het.RunStatic(Assign(Heterogeneous, total, 2, res.Weights, 8), batch()))

	gain := tHom / tHet
	if gain < 1.2 || gain > 1.8 {
		t.Errorf("heterogeneous gain on Hertz = %v, want ~1.3-1.6", gain)
	}
}

func TestHeterogeneousGainSmallOnJupiter(t *testing.T) {
	// Jupiter's GPUs are all Fermi with similar throughput; the paper
	// reports only 1-6% gains there.
	total := 2112

	hom := jupiterPool(t)
	tHom := mustRun(t)(hom.RunStatic(Assign(Homogeneous, total, 6, nil, 8), batch()))

	het := jupiterPool(t)
	res := het.Warmup(batch().Proto.WithConformations(64), 8, 0, 1)
	het.Context().ResetAll()
	tHet := mustRun(t)(het.RunStatic(Assign(Heterogeneous, total, 6, res.Weights, 8), batch()))

	gain := tHom / tHet
	if gain < 1.0-1e-9 || gain > 1.2 {
		t.Errorf("heterogeneous gain on Jupiter = %v, want 1.0-1.2", gain)
	}
}

func TestRunDynamicCompletesAllWork(t *testing.T) {
	p := hertzPool(t)
	end := mustRun(t)(p.RunDynamic(1000, 64, batch()))
	if end <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// All devices end at the barrier.
	for i, d := range p.Context().Devices() {
		if got := d.StreamClock(cudasim.DefaultStream); math.Abs(got-end) > 1e-15 {
			t.Errorf("device %d clock %v != %v", i, got, end)
		}
	}
}

func TestRunDynamicNearHeterogeneousStatic(t *testing.T) {
	// Cooperative chunking should approach the proportional split (within
	// chunk-size slack) and clearly beat the equal split.
	total := 4096

	hom := hertzPool(t)
	tHom := mustRun(t)(hom.RunStatic(Assign(Homogeneous, total, 2, nil, 1), batch()))

	dyn := hertzPool(t)
	tDyn := mustRun(t)(dyn.RunDynamic(total, 64, batch()))

	if tDyn >= tHom {
		t.Errorf("dynamic (%v) not faster than homogeneous static (%v)", tDyn, tHom)
	}
}

func TestRunStaticPanicsOnWrongAssignment(t *testing.T) {
	p := hertzPool(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for wrong assignment length")
		}
	}()
	p.RunStatic([]int{1, 2, 3}, batch())
}

func TestRunStaticSkipsZeroAssignments(t *testing.T) {
	p := hertzPool(t)
	p.RunStatic([]int{64, 0}, batch())
	if p.Context().Device(1).Kernels() != 0 {
		t.Error("zero-assigned device launched a kernel")
	}
	if p.Context().Device(0).Kernels() != 1 {
		t.Error("assigned device did not launch")
	}
}

func TestStragglerDevice(t *testing.T) {
	// An extreme straggler (2008-era Tesla C1060 next to a K40c): the
	// equal split is crippled by the slow card; both the warm-up-balanced
	// split and dynamic chunking recover most of the loss.
	c1060, ok := cudasim.SpecByName("Tesla C1060")
	if !ok {
		t.Fatal("C1060 missing from catalogue")
	}
	mk := func() *Pool {
		ctx, err := cudasim.NewContext(cudasim.TeslaK40c, c1060)
		if err != nil {
			t.Fatal(err)
		}
		return NewPool(ctx)
	}
	total := 4096

	hom := mk()
	tHom := mustRun(t)(hom.RunStatic(Assign(Homogeneous, total, 2, nil, 8), batch()))

	het := mk()
	w := het.Warmup(batch().Proto.WithConformations(1024), 8, 0, 1)
	het.Context().ResetAll()
	tHet := mustRun(t)(het.RunStatic(Assign(Heterogeneous, total, 2, w.Weights, 8), batch()))

	dyn := mk()
	tDyn := mustRun(t)(dyn.RunDynamic(total, 64, batch()))

	if tHet >= tHom || tDyn >= tHom {
		t.Errorf("straggler not mitigated: hom=%v het=%v dyn=%v", tHom, tHet, tDyn)
	}
	// The modeled throughput ratio is ~8x, so balancing should recover
	// at least 2x.
	if tHom/tHet < 2 {
		t.Errorf("heterogeneous gain %v under an 8x straggler, want >= 2", tHom/tHet)
	}
}

func TestGenerationsAccumulate(t *testing.T) {
	p := hertzPool(t)
	a := []int{512, 512}
	t1 := mustRun(t)(p.RunStatic(a, batch()))
	t2 := mustRun(t)(p.RunStatic(a, batch()))
	if t2 <= t1 {
		t.Errorf("second generation (%v) did not extend the timeline (%v)", t2, t1)
	}
	dt1, dt2 := t1, t2-t1
	if math.Abs(dt1-dt2) > 1e-9*dt1 {
		t.Errorf("identical generations took %v then %v", dt1, dt2)
	}
}
