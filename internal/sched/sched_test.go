package sched

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/metascreen/metascreen/internal/cudasim"
)

func hertzPool(t *testing.T) *Pool {
	t.Helper()
	ctx, err := cudasim.NewContext(cudasim.TeslaK40c, cudasim.GTX580)
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(ctx)
}

func jupiterPool(t *testing.T) *Pool {
	t.Helper()
	ctx, err := cudasim.NewContext(
		cudasim.GTX590, cudasim.GTX590, cudasim.GTX590, cudasim.GTX590,
		cudasim.TeslaC2075, cudasim.TeslaC2075)
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(ctx)
}

func probe() cudasim.ScoringLaunch {
	return cudasim.ScoringLaunch{
		Kind:                 cudasim.KernelScoring,
		Conformations:        256,
		PairsPerConformation: 146880, // 2BSM
	}
}

func TestWarmupPercentEquationOne(t *testing.T) {
	p := hertzPool(t)
	res := p.Warmup(probe(), 8, 0, 1)
	// The GTX580 (device 1) is the slowest -> Percent = 1; the K40c is
	// about twice as fast -> Percent ~ 0.5.
	if math.Abs(res.Percent[1]-1) > 1e-12 {
		t.Errorf("slowest Percent = %v, want 1", res.Percent[1])
	}
	if res.Percent[0] < 0.4 || res.Percent[0] > 0.6 {
		t.Errorf("K40c Percent = %v, want ~0.5", res.Percent[0])
	}
	// Weights sum to 1 and favor the fast device.
	sum := 0.0
	for _, w := range res.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	if res.Weights[0] <= res.Weights[1] {
		t.Error("fast device did not get the larger weight")
	}
}

func TestWarmupChargesDeviceTime(t *testing.T) {
	p := hertzPool(t)
	p.Warmup(probe(), 8, 0, 1)
	for i, d := range p.Context().Devices() {
		if d.StreamClock(cudasim.DefaultStream) <= 0 {
			t.Errorf("device %d clock did not advance during warm-up", i)
		}
		if d.Kernels() != 8 {
			t.Errorf("device %d ran %d warm-up kernels, want 8", i, d.Kernels())
		}
	}
}

func TestWarmupNoiseDeterministicAndBounded(t *testing.T) {
	p1 := hertzPool(t)
	p2 := hertzPool(t)
	a := p1.Warmup(probe(), 8, 0.05, 42)
	b := p2.Warmup(probe(), 8, 0.05, 42)
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Errorf("device %d warm-up time differs between same-seed runs", i)
		}
	}
	// Noise must stay within the amplitude.
	clean := hertzPool(t).Warmup(probe(), 8, 0, 42)
	for i := range a.Times {
		ratio := a.Times[i] / clean.Times[i]
		if ratio < 0.95-1e-9 || ratio > 1.05+1e-9 {
			t.Errorf("device %d noise ratio %v outside +-5%%", i, ratio)
		}
	}
}

func TestWarmupMinimumOneIteration(t *testing.T) {
	p := hertzPool(t)
	res := p.Warmup(probe(), 0, 0, 1)
	for i, ti := range res.Times {
		if ti <= 0 {
			t.Errorf("device %d time = %v", i, ti)
		}
	}
}

func TestSplitEqual(t *testing.T) {
	if got := SplitEqual(10, 3); got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Errorf("SplitEqual(10,3) = %v", got)
	}
	if got := SplitEqual(0, 3); got[0]+got[1]+got[2] != 0 {
		t.Errorf("SplitEqual(0,3) = %v", got)
	}
	if got := SplitEqual(5, 0); got != nil {
		t.Errorf("SplitEqual(5,0) = %v", got)
	}
}

func TestSplitProportional(t *testing.T) {
	got := SplitProportional(100, []float64{2, 1, 1})
	if got[0] != 50 || got[1] != 25 || got[2] != 25 {
		t.Errorf("SplitProportional = %v", got)
	}
	// Zero weights fall back to equal.
	eq := SplitProportional(9, []float64{0, 0, 0})
	if eq[0]+eq[1]+eq[2] != 9 {
		t.Errorf("zero-weight split = %v", eq)
	}
	if SplitProportional(10, nil) != nil {
		t.Error("nil weights should give nil")
	}
}

func TestQuickSplitsConserveTotal(t *testing.T) {
	f := func(total uint16, w1, w2, w3 uint8) bool {
		tot := int(total % 5000)
		weights := []float64{float64(w1), float64(w2), float64(w3)}
		sp := SplitProportional(tot, weights)
		se := SplitEqual(tot, 3)
		sumP, sumE := 0, 0
		for i := 0; i < 3; i++ {
			if sp[i] < 0 || se[i] < 0 {
				return false
			}
			sumP += sp[i]
			sumE += se[i]
		}
		return sumP == tot && sumE == tot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitProportionalWithinOneOfIdeal(t *testing.T) {
	got := SplitProportional(101, []float64{3, 2, 1})
	ideals := []float64{101 * 3.0 / 6, 101 * 2.0 / 6, 101 * 1.0 / 6}
	for i := range got {
		if math.Abs(float64(got[i])-ideals[i]) >= 1 {
			t.Errorf("part %d = %d, ideal %v", i, got[i], ideals[i])
		}
	}
}

func TestRoundToGranularity(t *testing.T) {
	in := []int{37, 27}
	out := RoundToGranularity(in, 8)
	if out[0]+out[1] != 64 {
		t.Errorf("total not conserved: %v", out)
	}
	// At most one part may be ragged (total 64 is a multiple of 8, so
	// none here).
	for i, v := range out {
		if v%8 != 0 {
			t.Errorf("part %d = %d not block-aligned", i, v)
		}
	}
	// gran 1 and empty input are identity.
	if got := RoundToGranularity([]int{3, 4}, 1); got[0] != 3 || got[1] != 4 {
		t.Errorf("gran=1 changed values: %v", got)
	}
	if got := RoundToGranularity(nil, 8); len(got) != 0 {
		t.Errorf("nil input gave %v", got)
	}
}

func TestQuickRoundToGranularityConserves(t *testing.T) {
	f := func(a, b, c uint8, g uint8) bool {
		in := []int{int(a), int(b), int(c)}
		gran := int(g%16) + 1
		out := RoundToGranularity(in, gran)
		sumIn, sumOut := 0, 0
		for i := 0; i < 3; i++ {
			if out[i] < 0 {
				return false
			}
			sumIn += in[i]
			sumOut += out[i]
		}
		return sumIn == sumOut
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssignModes(t *testing.T) {
	w := []float64{0.68, 0.32}
	hom := Assign(Homogeneous, 100, 2, w, 1)
	if hom[0] != 50 || hom[1] != 50 {
		t.Errorf("homogeneous = %v", hom)
	}
	het := Assign(Heterogeneous, 100, 2, w, 1)
	if het[0] != 68 || het[1] != 32 {
		t.Errorf("heterogeneous = %v", het)
	}
	defer func() {
		if recover() == nil {
			t.Error("Assign(Dynamic) did not panic")
		}
	}()
	Assign(Dynamic, 100, 2, w, 1)
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Homogeneous, Heterogeneous, Dynamic} {
		if m.String() == "" {
			t.Error("empty mode name")
		}
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode has empty name")
	}
}
