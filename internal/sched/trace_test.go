package sched

import (
	"strings"
	"testing"

	"github.com/metascreen/metascreen/internal/trace"
)

func TestPoolRecordsTimeline(t *testing.T) {
	p := hertzPool(t)
	var rec trace.Recorder
	p.SetRecorder(&rec)

	res := p.Warmup(probe(), 4, 0, 1)
	if res.Times[0] <= 0 {
		t.Fatal("warm-up failed")
	}
	p.RunStatic(Assign(Heterogeneous, 2048, 2, res.Weights, 8), batch())

	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	stats := rec.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d devices", len(stats))
	}
	for _, s := range stats {
		if s.ByLabel["warmup"] <= 0 {
			t.Errorf("device %d has no warm-up time", s.Device)
		}
		if s.ByLabel["scoring"] <= 0 {
			t.Errorf("device %d has no scoring time", s.Device)
		}
		if s.ByLabel["h2d"] <= 0 || s.ByLabel["d2h"] <= 0 {
			t.Errorf("device %d missing transfer events", s.Device)
		}
	}

	var sb strings.Builder
	if err := rec.WriteGantt(&sb, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dev0") {
		t.Error("gantt missing device row")
	}
}

func TestHeterogeneousSplitBalancesUtilization(t *testing.T) {
	// With the proportional split, both devices should be busy a similar
	// fraction of the generation (that is the whole point).
	balanced := hertzPool(t)
	var recBal trace.Recorder
	balanced.SetRecorder(&recBal)
	w := balanced.Warmup(probe(), 8, 0, 1)
	balanced.Context().ResetAll()
	recBal = trace.Recorder{} // drop warm-up events
	balanced.SetRecorder(&recBal)
	balanced.RunStatic(Assign(Heterogeneous, 4096, 2, w.Weights, 8), batch())

	equal := hertzPool(t)
	var recEq trace.Recorder
	equal.SetRecorder(&recEq)
	equal.RunStatic(Assign(Homogeneous, 4096, 2, nil, 8), batch())

	gap := func(r *trace.Recorder) float64 {
		u := r.Utilization()
		if len(u) != 2 {
			t.Fatalf("utilization for %d devices", len(u))
		}
		d := u[0] - u[1]
		if d < 0 {
			d = -d
		}
		return d
	}
	if gb, ge := gap(&recBal), gap(&recEq); gb >= ge {
		t.Errorf("balanced utilization gap %.3f not below equal-split gap %.3f", gb, ge)
	}
}
