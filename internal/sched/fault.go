package sched

import (
	"errors"

	"github.com/metascreen/metascreen/internal/cudasim"
)

// Fault-tolerant execution. The paper's scheduling assumes devices never
// fail; this file adds the recovery policy around it: bounded retries for
// transient errors, fencing on permanent loss or hang, and a mid-generation
// re-split of the dead device's share onto the survivors with their warm-up
// weights renormalized (the dead device's weight drops to zero, which is
// exactly what redistributing proportionally to the surviving shares does).

// ErrAllDevicesLost is returned when work remains but every device has
// been fenced.
var ErrAllDevicesLost = errors.New("sched: all devices lost")

// DefaultMaxRetries is the per-operation transient retry budget used when
// FaultPolicy does not set one.
const DefaultMaxRetries = 3

// FaultPolicy configures the pool's recovery behaviour.
type FaultPolicy struct {
	// MaxRetries bounds immediate retries of a transiently-failing
	// operation; 0 means DefaultMaxRetries, negative means none.
	MaxRetries int
	// Watchdog is the per-operation hang deadline in simulated seconds;
	// 0 means cudasim.DefaultWatchdog.
	Watchdog float64
}

// FaultStats counts fault events observed by the pool.
type FaultStats struct {
	// Transients counts transient operation errors (including retried ones).
	Transients int64
	// Permanents counts devices fenced by permanent loss (or by exhausting
	// the transient retry budget).
	Permanents int64
	// Hangs counts devices fenced by watchdog-detected hangs.
	Hangs int64
	// Retries counts transient retry attempts.
	Retries int64
	// Resplits counts mid-run redistributions of a dead device's share.
	Resplits int64
}

// Faults returns the total number of device fault events.
func (s FaultStats) Faults() int64 { return s.Transients + s.Permanents + s.Hangs }

// SetFaultPolicy installs the recovery policy and propagates the watchdog
// deadline to every device.
func (p *Pool) SetFaultPolicy(fp FaultPolicy) {
	p.fmu.Lock()
	p.policy = fp
	p.fmu.Unlock()
	for _, d := range p.ctx.Devices() {
		d.SetWatchdog(fp.Watchdog)
	}
}

// FaultStats returns a snapshot of the fault counters.
func (p *Pool) FaultStats() FaultStats {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	return p.stats
}

// Alive returns a copy of the per-device liveness mask.
func (p *Pool) Alive() []bool {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	out := make([]bool, len(p.alive))
	copy(out, p.alive)
	return out
}

// AliveCount returns the number of devices not yet fenced.
func (p *Pool) AliveCount() int {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	n := 0
	for _, a := range p.alive {
		if a {
			n++
		}
	}
	return n
}

// HealthSnapshot is the pool's exported health signal: the liveness
// picture plus the fault counters that produced it. The service's
// admission breaker consumes it (alongside ErrAllDevicesLost surfacing
// through run errors) to decide when a simulated platform is too sick to
// accept machine jobs.
type HealthSnapshot struct {
	// Devices is the pool size; Alive how many are not fenced.
	Devices int `json:"devices"`
	Alive   int `json:"alive"`
	// Healthy reports whether at least one device can still take work.
	Healthy bool `json:"healthy"`
	// Stats are the cumulative fault counters.
	Stats FaultStats `json:"stats"`
}

// Health snapshots the pool's device liveness and fault counters.
func (p *Pool) Health() HealthSnapshot {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	alive := 0
	for _, a := range p.alive {
		if a {
			alive++
		}
	}
	return HealthSnapshot{
		Devices: len(p.alive),
		Alive:   alive,
		Healthy: alive > 0,
		Stats:   p.stats,
	}
}

func (p *Pool) aliveAt(i int) bool {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	return i >= 0 && i < len(p.alive) && p.alive[i]
}

func (p *Pool) maxRetries() int {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	switch {
	case p.policy.MaxRetries > 0:
		return p.policy.MaxRetries
	case p.policy.MaxRetries < 0:
		return 0
	}
	return DefaultMaxRetries
}

func (p *Pool) noteTransient() {
	p.fmu.Lock()
	p.stats.Transients++
	p.fmu.Unlock()
}

func (p *Pool) noteRetry() {
	p.fmu.Lock()
	p.stats.Retries++
	p.fmu.Unlock()
}

func (p *Pool) noteResplit() {
	p.fmu.Lock()
	p.stats.Resplits++
	p.fmu.Unlock()
}

// fence marks device i dead and counts it once under the given kind.
func (p *Pool) fence(i int, kind cudasim.FaultKind) {
	p.fmu.Lock()
	if i < 0 || i >= len(p.alive) || !p.alive[i] {
		p.fmu.Unlock()
		return
	}
	p.alive[i] = false
	if kind == cudasim.FaultHang {
		p.stats.Hangs++
	} else {
		p.stats.Permanents++
	}
	p.fmu.Unlock()
	p.log.Warn("device fenced", "device", i, "fault", kind.String())
}

// mark drops a zero-duration annotation on the trace, if recording.
func (p *Pool) mark(device int, t float64, label string) {
	if p.rec != nil {
		p.rec.AddMark(device, t, label)
	}
}

// runOp executes one device operation with the fault policy applied:
// transient errors are retried up to the budget (each failed attempt's
// charged time is recorded as "fault:transient"); exhausting the budget or
// hitting a permanent error or hang fences the device. On success the
// event is recorded under label ("" keeps the device's own label) and
// returned.
func (p *Pool) runOp(tid int, label string, op func() (cudasim.Event, error)) (cudasim.Event, error) {
	for attempt := 0; ; attempt++ {
		ev, err := op()
		if err == nil {
			p.record(ev, label)
			return ev, nil
		}
		var de *cudasim.DeviceError
		if errors.As(err, &de) && ev.Duration() > 0 {
			p.record(ev, "fault:"+de.Kind.String())
		}
		if cudasim.IsTransient(err) {
			p.noteTransient()
			if attempt < p.maxRetries() {
				p.noteRetry()
				continue
			}
			// Retry budget exhausted: the device keeps producing garbage,
			// so fence it and let the caller move the share elsewhere.
			p.fence(tid, cudasim.FaultPermanent)
			return ev, err
		}
		if errors.Is(err, cudasim.ErrHang) {
			p.fence(tid, cudasim.FaultHang)
		} else {
			p.fence(tid, cudasim.FaultPermanent)
		}
		return ev, err
	}
}

// deviceShare runs one device's generation share (upload, kernel, download)
// on the default stream under the fault policy.
func (p *Pool) deviceShare(tid, n int, b Batch) error {
	dev := p.ctx.Device(tid)
	if _, err := p.runOp(tid, "", func() (cudasim.Event, error) {
		return dev.CopyToDevice(cudasim.DefaultStream, n*b.BytesPerConformation)
	}); err != nil {
		return err
	}
	l := b.Proto
	l.Conformations = n
	if _, err := p.runOp(tid, "", func() (cudasim.Event, error) {
		return dev.Launch(cudasim.DefaultStream, l)
	}); err != nil {
		return err
	}
	// One float64 score per conformation comes back.
	_, err := p.runOp(tid, "", func() (cudasim.Event, error) {
		return dev.CopyToHost(cudasim.DefaultStream, n*8)
	})
	return err
}

// resplitPending moves pending work off dead devices, redistributing it to
// the survivors proportionally to their original shares (which encode the
// warm-up weights, so this renormalizes the weights with dead devices at
// zero). Returns the remaining unassignable count: nonzero only when no
// device is alive.
func (p *Pool) resplitPending(pending, original []int) int {
	alive := p.Alive()
	leftover := 0
	for i := range pending {
		if pending[i] > 0 && !p.aliveAt(i) {
			leftover += pending[i]
			pending[i] = 0
			p.mark(i, p.ctx.Device(i).StreamClock(cudasim.DefaultStream), "resplit")
		}
	}
	if leftover == 0 {
		return 0
	}
	w := make([]float64, len(original))
	for i, o := range original {
		w[i] = float64(o)
	}
	extra := SplitOverAlive(leftover, w, alive)
	if extra == nil {
		return leftover
	}
	for i := range pending {
		pending[i] += extra[i]
	}
	p.noteResplit()
	p.log.Info("work resplit onto survivors", "conformations", leftover)
	return 0
}

// SplitOverAlive divides total proportionally to weights, but only among
// alive members; dead members get zero. Returns nil when nothing is alive.
// All-zero surviving weights fall back to an equal split over the alive
// members only.
//
// The pool uses it to redistribute a fenced device's share onto the
// surviving devices (the weights encode the warm-up throughput, so the
// dead device's weight renormalizes to zero); the distributed coordinator
// reuses it one level up to re-shard a dead worker node's unfinished
// ligands onto the surviving nodes with their observed throughputs as
// weights.
func SplitOverAlive(total int, weights []float64, alive []bool) []int {
	idx := make([]int, 0, len(alive))
	w := make([]float64, 0, len(alive))
	for i, a := range alive {
		if !a {
			continue
		}
		idx = append(idx, i)
		if i < len(weights) {
			w = append(w, weights[i])
		} else {
			w = append(w, 0)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	parts := SplitProportional(total, w)
	out := make([]int, len(alive))
	for j, i := range idx {
		out[i] = parts[j]
	}
	return out
}

// AssignAlive is Assign restricted to the devices still alive: the split
// is computed over the alive devices only (using their weights for
// Heterogeneous mode) and scattered back to full device-index positions,
// with dead devices assigned zero. Dynamic mode has no static assignment;
// AssignAlive panics for it like Assign does.
func AssignAlive(mode Mode, total int, alive []bool, weights []float64, gran int) []int {
	n := len(alive)
	out := make([]int, n)
	idx := make([]int, 0, n)
	for i, a := range alive {
		if a {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 || total <= 0 {
		return out
	}
	var parts []int
	switch mode {
	case Homogeneous:
		parts = RoundToGranularity(SplitEqual(total, len(idx)), gran)
	case Heterogeneous:
		w := make([]float64, len(idx))
		for j, i := range idx {
			if i < len(weights) {
				w[j] = weights[i]
			}
		}
		parts = RoundToGranularity(SplitProportional(total, w), gran)
	default:
		return Assign(mode, total, len(idx), nil, gran) // panics for Dynamic
	}
	for j, i := range idx {
		out[i] = parts[j]
	}
	return out
}
