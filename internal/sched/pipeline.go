package sched

import (
	"fmt"
)

// Pipelined execution: CUDA programs hide transfer latency by splitting a
// batch into chunks and overlapping chunk k's host-to-device copy (on a
// copy stream) with chunk k-1's kernel (on a compute stream). This file
// models that optimization; the gain over the plain barrier executor is
// bounded by the transfer fraction of the generation, which the
// block-granularity ablation quantifies.

const (
	computeStream = 0
	copyStream    = 1
)

// RunStaticPipelined executes one generation like RunStatic but with each
// device's work split into `depth` chunks whose transfers overlap the
// previous chunk's kernel. depth <= 1 degenerates to RunStatic behaviour.
func (p *Pool) RunStaticPipelined(assign []int, b Batch, depth int) float64 {
	if len(assign) != p.Size() {
		panic(fmt.Sprintf("sched: assignment for %d devices, pool has %d", len(assign), p.Size()))
	}
	if depth < 1 {
		depth = 1
	}
	start := p.Now()
	for _, d := range p.ctx.Devices() {
		d.Idle(computeStream, start)
		d.Idle(copyStream, start)
	}
	p.team.ForThread(func(tid int) {
		if tid >= len(assign) || assign[tid] <= 0 {
			return
		}
		dev := p.ctx.Device(tid)
		chunks := SplitEqual(assign[tid], depth)
		for _, n := range chunks {
			if n <= 0 {
				continue
			}
			// Chunk upload on the copy stream...
			up := dev.CopyToDevice(copyStream, n*b.BytesPerConformation)
			p.record(up, "")
			// ...kernel waits for its own data, not for other chunks'.
			dev.Idle(computeStream, up.End)
			l := b.Proto
			l.Conformations = n
			p.record(dev.Launch(computeStream, l), "")
		}
		// Results come back once per generation, after the last kernel.
		dev.Idle(copyStream, dev.StreamClock(computeStream))
		p.record(dev.CopyToHost(copyStream, assign[tid]*8), "")
	})
	end := start
	for _, d := range p.ctx.Devices() {
		if c := d.Synchronize(); c > end {
			end = c
		}
	}
	for _, d := range p.ctx.Devices() {
		d.Idle(computeStream, end)
		d.Idle(copyStream, end)
	}
	return end
}
