package sched

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/cudasim"
)

// Pipelined execution: CUDA programs hide transfer latency by splitting a
// batch into chunks and overlapping chunk k's host-to-device copy (on a
// copy stream) with chunk k-1's kernel (on a compute stream). This file
// models that optimization; the gain over the plain barrier executor is
// bounded by the transfer fraction of the generation, which the
// block-granularity ablation quantifies.

const (
	computeStream = 0
	copyStream    = 1
)

// RunStaticPipelined executes one generation like RunStatic but with each
// device's work split into `depth` chunks whose transfers overlap the
// previous chunk's kernel. depth <= 1 degenerates to RunStatic behaviour.
//
// Fault handling matches RunStatic: a device fenced mid-generation has its
// whole share re-split across the survivors (chunks already finished on
// the dead device are conservatively redone — scores never came back).
func (p *Pool) RunStaticPipelined(assign []int, b Batch, depth int) (float64, error) {
	if len(assign) != p.Size() {
		panic(fmt.Sprintf("sched: assignment for %d devices, pool has %d", len(assign), p.Size()))
	}
	if depth < 1 {
		depth = 1
	}
	n := p.Size()
	original := make([]int, n)
	copy(original, assign)
	pending := make([]int, n)
	copy(pending, assign)
	for round := 0; round <= n; round++ {
		if leftover := p.resplitPending(pending, original); leftover > 0 {
			return p.pipelineClose(), fmt.Errorf("sched: %d conformations unassigned: %w", leftover, ErrAllDevicesLost)
		}
		work := 0
		for _, c := range pending {
			work += c
		}
		if work == 0 {
			break
		}
		start := p.pipelineNow()
		p.team.ForThread(func(tid int) {
			if tid >= n || pending[tid] <= 0 || !p.aliveAt(tid) {
				return
			}
			dev := p.ctx.Device(tid)
			dev.Idle(computeStream, start)
			dev.Idle(copyStream, start)
			if err := p.pipelinedShare(tid, pending[tid], b, depth); err == nil {
				pending[tid] = 0
			}
		})
	}
	return p.pipelineClose(), nil
}

// pipelinedShare runs one device's share split into depth chunks with
// copy/compute overlap, under the fault policy.
func (p *Pool) pipelinedShare(tid, n int, b Batch, depth int) error {
	dev := p.ctx.Device(tid)
	chunks := SplitEqual(n, depth)
	for _, c := range chunks {
		if c <= 0 {
			continue
		}
		// Chunk upload on the copy stream...
		up, err := p.runOp(tid, "", func() (cudasim.Event, error) {
			return dev.CopyToDevice(copyStream, c*b.BytesPerConformation)
		})
		if err != nil {
			return err
		}
		// ...kernel waits for its own data, not for other chunks'.
		dev.Idle(computeStream, up.End)
		l := b.Proto
		l.Conformations = c
		if _, err := p.runOp(tid, "", func() (cudasim.Event, error) {
			return dev.Launch(computeStream, l)
		}); err != nil {
			return err
		}
	}
	// Results come back once per generation, after the last kernel.
	dev.Idle(copyStream, dev.StreamClock(computeStream))
	_, err := p.runOp(tid, "", func() (cudasim.Event, error) {
		return dev.CopyToHost(copyStream, n*8)
	})
	return err
}

// pipelineNow returns the latest clock across both streams of all devices.
func (p *Pool) pipelineNow() float64 {
	t := 0.0
	for _, d := range p.ctx.Devices() {
		if c := d.Synchronize(); c > t {
			t = c
		}
	}
	return t
}

// pipelineClose aligns surviving devices' streams on the latest clock
// across all devices and returns it.
func (p *Pool) pipelineClose() float64 {
	end := p.pipelineNow()
	for i, d := range p.ctx.Devices() {
		if p.aliveAt(i) {
			d.Idle(computeStream, end)
			d.Idle(copyStream, end)
		}
	}
	return end
}
