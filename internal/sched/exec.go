package sched

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/cudasim"
)

// Batch describes one generation's device work: a prototype launch whose
// Conformations field the executor replaces with each device's share, plus
// the per-conformation transfer size.
type Batch struct {
	// Proto is the kernel launch prototype (Kind, PairsPerConformation,
	// EvalsPerConformation, WarpsPerBlock).
	Proto cudasim.ScoringLaunch
	// BytesPerConformation is the host-device traffic per individual
	// (pose down, score back).
	BytesPerConformation int
}

// RunStatic executes one barrier-synchronized generation with a fixed
// assignment: device i receives assign[i] conformations, all devices start
// together at the pool's current barrier time, and the generation completes
// when the last device finishes (the paper: "the slowest GPU will determine
// the overall execution time"). It returns the simulated barrier completion
// time.
//
// Device faults are handled by the pool's FaultPolicy: transient errors are
// retried in place, and a device fenced mid-generation has its unfinished
// share re-split across the survivors proportionally to their original
// shares (renormalized warm-up weights), recorded as "resplit" in the
// trace. The returned error is non-nil only when work remains and every
// device has been lost; the completion time then covers what did run,
// including time charged by hang watchdogs.
func (p *Pool) RunStatic(assign []int, b Batch) (float64, error) {
	if len(assign) != p.Size() {
		panic(fmt.Sprintf("sched: assignment for %d devices, pool has %d", len(assign), p.Size()))
	}
	n := p.Size()
	original := make([]int, n)
	copy(original, assign)
	pending := make([]int, n)
	copy(pending, assign)
	// Each failed round fences at least one device, so n+1 rounds always
	// suffice to either finish or run out of devices.
	for round := 0; round <= n; round++ {
		if leftover := p.resplitPending(pending, original); leftover > 0 {
			return p.barrierClose(), fmt.Errorf("sched: %d conformations unassigned: %w", leftover, ErrAllDevicesLost)
		}
		work := 0
		for _, c := range pending {
			work += c
		}
		if work == 0 {
			break
		}
		// Barrier start: no device may begin before all are free. A hung
		// device's watchdog-advanced clock counts — that time was really
		// spent waiting on it.
		start := p.Now()
		p.team.ForThread(func(tid int) {
			if tid >= n || pending[tid] <= 0 || !p.aliveAt(tid) {
				return
			}
			dev := p.ctx.Device(tid)
			dev.Idle(cudasim.DefaultStream, start)
			if err := p.deviceShare(tid, pending[tid], b); err == nil {
				pending[tid] = 0
			}
		})
	}
	return p.barrierClose(), nil
}

// barrierClose aligns every surviving device on the latest clock across
// all devices (dead ones included: their failure time is part of the
// timeline) and returns it.
func (p *Pool) barrierClose() float64 {
	end := p.Now()
	for i, d := range p.ctx.Devices() {
		if p.aliveAt(i) {
			d.Idle(cudasim.DefaultStream, end)
		}
	}
	return end
}

// RunDynamic executes one generation of total conformations by cooperative
// self-scheduling: work is cut into chunks of chunkSize conformations and
// each chunk goes to the device that becomes free first (greedy
// earliest-finish assignment, the discrete-event equivalent of a shared
// work queue). Returns the simulated barrier completion time.
//
// A chunk that fails on a fenced device goes back on the queue, so the
// remaining devices naturally drain around a dead one; the error is
// non-nil only when chunks remain and no device is alive.
func (p *Pool) RunDynamic(total, chunkSize int, b Batch) (float64, error) {
	if chunkSize < 1 {
		chunkSize = 1
	}
	start := p.Now()
	for i, d := range p.ctx.Devices() {
		if p.aliveAt(i) {
			d.Idle(cudasim.DefaultStream, start)
		}
	}
	remaining := total
	for remaining > 0 {
		n := chunkSize
		if n > remaining {
			n = remaining
		}
		// Pick the alive device that is free earliest.
		devs := p.ctx.Devices()
		best := -1
		for i, d := range devs {
			if !p.aliveAt(i) {
				continue
			}
			if best == -1 || d.StreamClock(cudasim.DefaultStream) < devs[best].StreamClock(cudasim.DefaultStream) {
				best = i
			}
		}
		if best == -1 {
			return p.barrierClose(), fmt.Errorf("sched: %d conformations unassigned: %w", remaining, ErrAllDevicesLost)
		}
		if err := p.deviceShare(best, n, b); err != nil {
			// The chunk failed with the device; requeue it for the others.
			continue
		}
		remaining -= n
	}
	return p.barrierClose(), nil
}

// Now returns the pool's barrier time: the latest default-stream clock
// across devices.
func (p *Pool) Now() float64 {
	t := 0.0
	for _, d := range p.ctx.Devices() {
		if c := d.StreamClock(cudasim.DefaultStream); c > t {
			t = c
		}
	}
	return t
}

// Assign computes the per-device conformation counts for a generation of
// total individuals under the given mode. For Heterogeneous mode the
// warm-up weights are used; Homogeneous ignores them. gran rounds
// assignments to whole blocks (pass 1 for warp granularity). Dynamic mode
// has no static assignment; Assign panics for it.
func Assign(mode Mode, total int, devices int, weights []float64, gran int) []int {
	switch mode {
	case Homogeneous:
		return RoundToGranularity(SplitEqual(total, devices), gran)
	case Heterogeneous:
		return RoundToGranularity(SplitProportional(total, weights), gran)
	}
	panic(fmt.Sprintf("sched: Assign called with mode %v", mode))
}
