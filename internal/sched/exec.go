package sched

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/cudasim"
)

// Batch describes one generation's device work: a prototype launch whose
// Conformations field the executor replaces with each device's share, plus
// the per-conformation transfer size.
type Batch struct {
	// Proto is the kernel launch prototype (Kind, PairsPerConformation,
	// EvalsPerConformation, WarpsPerBlock).
	Proto cudasim.ScoringLaunch
	// BytesPerConformation is the host-device traffic per individual
	// (pose down, score back).
	BytesPerConformation int
}

// RunStatic executes one barrier-synchronized generation with a fixed
// assignment: device i receives assign[i] conformations, all devices start
// together at the pool's current barrier time, and the generation completes
// when the last device finishes (the paper: "the slowest GPU will determine
// the overall execution time"). It returns the simulated barrier completion
// time.
func (p *Pool) RunStatic(assign []int, b Batch) float64 {
	if len(assign) != p.Size() {
		panic(fmt.Sprintf("sched: assignment for %d devices, pool has %d", len(assign), p.Size()))
	}
	// Barrier start: no device may begin before all are free.
	start := 0.0
	for _, d := range p.ctx.Devices() {
		if c := d.StreamClock(cudasim.DefaultStream); c > start {
			start = c
		}
	}
	end := start
	p.team.ForThread(func(tid int) {
		if tid >= len(assign) || assign[tid] <= 0 {
			return
		}
		dev := p.ctx.Device(tid)
		dev.Idle(cudasim.DefaultStream, start)
		l := b.Proto
		l.Conformations = assign[tid]
		p.record(dev.CopyToDevice(cudasim.DefaultStream, assign[tid]*b.BytesPerConformation), "")
		p.record(dev.Launch(cudasim.DefaultStream, l), "")
		// One float64 score per conformation comes back.
		p.record(dev.CopyToHost(cudasim.DefaultStream, assign[tid]*8), "")
	})
	for _, d := range p.ctx.Devices() {
		if c := d.StreamClock(cudasim.DefaultStream); c > end {
			end = c
		}
	}
	// Close the barrier: every device waits for the slowest.
	for _, d := range p.ctx.Devices() {
		d.Idle(cudasim.DefaultStream, end)
	}
	return end
}

// RunDynamic executes one generation of total conformations by cooperative
// self-scheduling: work is cut into chunks of chunkSize conformations and
// each chunk goes to the device that becomes free first (greedy
// earliest-finish assignment, the discrete-event equivalent of a shared
// work queue). Returns the simulated barrier completion time.
func (p *Pool) RunDynamic(total, chunkSize int, b Batch) float64 {
	if chunkSize < 1 {
		chunkSize = 1
	}
	start := 0.0
	for _, d := range p.ctx.Devices() {
		if c := d.StreamClock(cudasim.DefaultStream); c > start {
			start = c
		}
	}
	for _, d := range p.ctx.Devices() {
		d.Idle(cudasim.DefaultStream, start)
	}
	remaining := total
	for remaining > 0 {
		n := chunkSize
		if n > remaining {
			n = remaining
		}
		remaining -= n
		// Pick the device that is free earliest.
		devs := p.ctx.Devices()
		best := 0
		for i, d := range devs {
			if d.StreamClock(cudasim.DefaultStream) < devs[best].StreamClock(cudasim.DefaultStream) {
				best = i
			}
		}
		dev := devs[best]
		l := b.Proto
		l.Conformations = n
		p.record(dev.CopyToDevice(cudasim.DefaultStream, n*b.BytesPerConformation), "")
		p.record(dev.Launch(cudasim.DefaultStream, l), "")
		p.record(dev.CopyToHost(cudasim.DefaultStream, n*8), "")
	}
	end := start
	for _, d := range p.ctx.Devices() {
		if c := d.StreamClock(cudasim.DefaultStream); c > end {
			end = c
		}
	}
	for _, d := range p.ctx.Devices() {
		d.Idle(cudasim.DefaultStream, end)
	}
	return end
}

// Now returns the pool's barrier time: the latest default-stream clock
// across devices.
func (p *Pool) Now() float64 {
	t := 0.0
	for _, d := range p.ctx.Devices() {
		if c := d.StreamClock(cudasim.DefaultStream); c > t {
			t = c
		}
	}
	return t
}

// Assign computes the per-device conformation counts for a generation of
// total individuals under the given mode. For Heterogeneous mode the
// warm-up weights are used; Homogeneous ignores them. gran rounds
// assignments to whole blocks (pass 1 for warp granularity). Dynamic mode
// has no static assignment; Assign panics for it.
func Assign(mode Mode, total int, devices int, weights []float64, gran int) []int {
	switch mode {
	case Homogeneous:
		return RoundToGranularity(SplitEqual(total, devices), gran)
	case Heterogeneous:
		return RoundToGranularity(SplitProportional(total, weights), gran)
	}
	panic(fmt.Sprintf("sched: Assign called with mode %v", mode))
}
