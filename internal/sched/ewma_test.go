package sched

import (
	"math"
	"testing"
)

func TestRateEWMAFirstSampleTakenVerbatim(t *testing.T) {
	var e RateEWMA
	if e.Observed() {
		t.Fatal("zero value claims to have observed a sample")
	}
	e.Observe(12.5)
	if !e.Observed() || e.Value() != 12.5 {
		t.Fatalf("first sample not taken verbatim: value %v observed %v", e.Value(), e.Observed())
	}
}

func TestRateEWMASmoothing(t *testing.T) {
	e := RateEWMA{Alpha: 0.5}
	e.Observe(10)
	e.Observe(20)
	if got := e.Value(); math.Abs(got-15) > 1e-12 {
		t.Fatalf("alpha 0.5 blend of 10,20 = %v, want 15", got)
	}
	// Default alpha path: 0.7*old + 0.3*new.
	var d RateEWMA
	d.Observe(10)
	d.Observe(20)
	if got := d.Value(); math.Abs(got-13) > 1e-12 {
		t.Fatalf("default alpha blend of 10,20 = %v, want 13", got)
	}
}

func TestRateEWMAZeroSamplesDecayTheEstimate(t *testing.T) {
	// A stalled worker keeps producing zero-progress samples; the
	// estimate must sink toward zero rather than freeze at its last
	// healthy value — straggler ETAs depend on this.
	var e RateEWMA
	e.Observe(100)
	for i := 0; i < 40; i++ {
		e.Observe(0)
	}
	if e.Value() > 1e-3 {
		t.Fatalf("estimate failed to decay under zero samples: %v", e.Value())
	}
	if !e.Observed() {
		t.Fatal("decay must not clear the observed bit")
	}
}

func TestRateEWMAReset(t *testing.T) {
	var e RateEWMA
	e.Observe(3)
	e.Reset()
	if e.Observed() || e.Value() != 0 {
		t.Fatalf("reset left state behind: value %v observed %v", e.Value(), e.Observed())
	}
}
