package sched

import (
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
)

func TestPoolHealthSnapshot(t *testing.T) {
	ctx, err := cudasim.NewContext(cudasim.TeslaK40c, cudasim.GTX580)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(ctx)

	h := p.Health()
	if h.Devices != 2 || h.Alive != 2 || !h.Healthy {
		t.Fatalf("fresh pool health = %+v, want 2/2 healthy", h)
	}

	p.fence(0, cudasim.FaultPermanent)
	h = p.Health()
	if h.Devices != 2 || h.Alive != 1 || !h.Healthy {
		t.Fatalf("health after one fence = %+v, want 1/2 healthy", h)
	}
	if h.Stats.Permanents != 1 {
		t.Fatalf("Stats.Permanents = %d, want 1", h.Stats.Permanents)
	}

	p.fence(1, cudasim.FaultHang)
	h = p.Health()
	if h.Alive != 0 || h.Healthy {
		t.Fatalf("health after losing every device = %+v, want unhealthy", h)
	}
	if h.Stats.Hangs != 1 {
		t.Fatalf("Stats.Hangs = %d, want 1", h.Stats.Hangs)
	}
}
