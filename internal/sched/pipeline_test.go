package sched

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/cudasim"
)

// heavyBatch has large per-conformation transfers, the regime pipelining
// targets.
func heavyBatch() Batch {
	return Batch{
		Proto: cudasim.ScoringLaunch{
			Kind:                 cudasim.KernelScoring,
			PairsPerConformation: 20000,
		},
		BytesPerConformation: 64 * 1024,
	}
}

func TestPipelinedHidesTransfers(t *testing.T) {
	assign := []int{1024, 1024}

	plain := hertzPool(t)
	tPlain := mustRun(t)(plain.RunStatic(assign, heavyBatch()))

	piped := hertzPool(t)
	tPiped := mustRun(t)(piped.RunStaticPipelined(assign, heavyBatch(), 8))

	if tPiped >= tPlain {
		t.Errorf("pipelined (%v) not faster than sequential (%v) on transfer-heavy batch",
			tPiped, tPlain)
	}
	// The gain is bounded by the transfer time itself.
	if tPiped < tPlain/3 {
		t.Errorf("pipelined gain implausibly large: %v vs %v", tPiped, tPlain)
	}
}

func TestPipelinedDepthOneMatchesStatic(t *testing.T) {
	assign := []int{512, 512}
	a := hertzPool(t)
	tA := mustRun(t)(a.RunStatic(assign, batch()))
	b := hertzPool(t)
	tB := mustRun(t)(b.RunStaticPipelined(assign, batch(), 1))
	if math.Abs(tA-tB) > 1e-12*tA {
		t.Errorf("depth-1 pipeline %v != static %v", tB, tA)
	}
}

func TestPipelinedBarrierSemantics(t *testing.T) {
	p := hertzPool(t)
	end := mustRun(t)(p.RunStaticPipelined([]int{700, 300}, heavyBatch(), 4))
	for i, d := range p.Context().Devices() {
		if got := d.StreamClock(computeStream); math.Abs(got-end) > 1e-15 {
			t.Errorf("device %d compute stream %v != barrier %v", i, got, end)
		}
		if got := d.StreamClock(copyStream); math.Abs(got-end) > 1e-15 {
			t.Errorf("device %d copy stream %v != barrier %v", i, got, end)
		}
	}
	// Generations compose.
	end2 := mustRun(t)(p.RunStaticPipelined([]int{700, 300}, heavyBatch(), 4))
	if end2 <= end {
		t.Error("second pipelined generation did not advance the timeline")
	}
}

func TestPipelinedKernelWaitsForItsUpload(t *testing.T) {
	// With one device and depth 2, the first kernel must start no earlier
	// than the first chunk's upload finishes.
	ctx, err := cudasim.NewContext(cudasim.GTX580)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(ctx)
	p.RunStaticPipelined([]int{256}, heavyBatch(), 2)
	// Reconstruct expectations analytically.
	model := ctx.Model()
	up := model.TransferTime(128 * heavyBatch().BytesPerConformation)
	l := heavyBatch().Proto
	l.Conformations = 128
	kern := model.KernelTime(cudasim.GTX580, l)
	// Sequential would be 2*(up+kern) + d2h; pipelined overlaps the second
	// upload with the first kernel.
	overlap := math.Min(up, kern)
	wantImprovement := overlap
	seq := 2*(up+kern) + model.TransferTime(256*8)
	got := ctx.Device(0).Synchronize()
	if got > seq-wantImprovement+1e-12 {
		t.Errorf("pipelined end %v, want <= %v (sequential %v minus overlap %v)",
			got, seq-wantImprovement, seq, overlap)
	}
}

func TestPipelinedSkipsZeroAssignments(t *testing.T) {
	p := hertzPool(t)
	p.RunStaticPipelined([]int{128, 0}, heavyBatch(), 4)
	if p.Context().Device(1).Kernels() != 0 {
		t.Error("zero-assigned device launched kernels")
	}
}

func TestPipelinedPanicsOnWrongAssignment(t *testing.T) {
	p := hertzPool(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for wrong assignment length")
		}
	}()
	p.RunStaticPipelined([]int{1}, heavyBatch(), 2)
}
