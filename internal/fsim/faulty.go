package fsim

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"syscall"

	"github.com/metascreen/metascreen/internal/rng"
)

// ErrCrashed is the sentinel a crash@opN rule injects: the simulated
// machine lost power — every byte already on disk stays, nothing further
// lands. errors.Is(err, ErrCrashed) identifies it through the wrapping
// InjectedError.
var ErrCrashed = fmt.Errorf("fsim: simulated power loss (writes halted)")

// InjectedError is one fault delivered instead of a successful
// operation. It unwraps to the errno-level sentinel the fault models
// (syscall.EIO, syscall.ENOSPC or ErrCrashed) so errors.Is-based
// classification treats injected faults exactly like real ones.
type InjectedError struct {
	Kind Kind
	Op   string // operation that faulted: "write", "sync", "rename", ...
	Path string
	Err  error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fsim: injected %s on %s %s: %v", e.Kind, e.Op, e.Path, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// Decision is one injected fault, in admission order. With the same
// seed, plan and operation sequence the decision log is identical run to
// run — the replay contract the crash-point explorer and postmortems
// rely on.
type Decision struct {
	Op   string
	Path string
	Kind Kind
	Seq  uint64 // per-path operation ordinal (crash: global op index)
}

// maxDecisions bounds the in-memory decision log on long-running
// processes; past it, new decisions are counted but not stored.
const maxDecisions = 65536

// Config tunes a Faulty filesystem.
type Config struct {
	// Seed drives every probabilistic decision. Decisions are a pure
	// function of (seed, path, per-path op ordinal, rule position), so
	// they do not depend on goroutine interleaving.
	Seed uint64
	// Base performs the real operations; nil = OSFS().
	Base FS
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Faulty is a fault-injecting FS applying a Plan over a base filesystem.
// Rules apply in a fixed kind order per operation — crash, enospc, eio,
// fsync-fail, torn-write on the write path; eio then bitrot on the read
// path — so a plan combining kinds behaves the same in every run.
type Faulty struct {
	plan Plan
	cfg  Config
	base FS

	mu        sync.Mutex
	ord       map[string]uint64 // per-path operation ordinal, starting at 0
	ops       uint64            // global mutating-op counter, 1-based
	written   map[int]int64     // bytes consumed per enospc rule (plan index)
	crashed   bool              // a crash rule fired; all mutation halted
	decisions []Decision
	dropped   int64
}

// New builds a Faulty applying plan over cfg.Base.
func New(plan Plan, cfg Config) *Faulty {
	base := cfg.Base
	if base == nil {
		base = OSFS()
	}
	return &Faulty{
		plan:    plan,
		cfg:     cfg,
		base:    base,
		ord:     make(map[string]uint64),
		written: make(map[int]int64),
	}
}

// Decisions returns a copy of the fault log so far.
func (f *Faulty) Decisions() []Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Decision(nil), f.decisions...)
}

// MutatingOps reports how many mutating operations (writes, syncs,
// renames, removes, truncates, creates, dir syncs) have been admitted.
// The crash-point explorer records a clean run's total and then replays
// it once per crash@opK, K in 1..MutatingOps().
func (f *Faulty) MutatingOps() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether a crash rule has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// FreeSpace simulates an operator freeing disk space: every enospc
// rule's byte budget is reset, so writes succeed again until it is
// consumed anew.
func (f *Faulty) FreeSpace() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.written = make(map[int]int64)
}

// record logs one injected fault. Caller holds f.mu.
func (f *Faulty) record(d Decision) {
	if len(f.decisions) < maxDecisions {
		f.decisions = append(f.decisions, d)
	} else {
		f.dropped++
	}
	if f.cfg.Logf != nil {
		f.cfg.Logf("fsim: %s on %s %s (op %d)", d.Kind, d.Op, d.Path, d.Seq)
	}
}

// lane derives the deterministic random source for one decision: a pure
// function of seed, path, per-path op ordinal and rule position, so
// concurrent operations on different paths cannot perturb each other's
// fault sequences.
func (f *Faulty) lane(path string, ord, ruleIdx uint64) *rng.Source {
	h := fnv.New64a()
	io.WriteString(h, path)
	return rng.New(f.cfg.Seed ^ h.Sum64()).Split(ord).Split(ruleIdx)
}

// inject builds and records one fault. Caller holds f.mu.
func (f *Faulty) inject(kind Kind, op, path string, seq uint64, errno error) error {
	f.record(Decision{Op: op, Path: path, Kind: kind, Seq: seq})
	return &InjectedError{Kind: kind, Op: op, Path: path, Err: errno}
}

// admit assigns the next per-path ordinal and, for mutating ops, the
// next global op index; it returns the crash fault if the plan says the
// machine has lost power. Caller holds f.mu.
func (f *Faulty) admit(op, path string, mutating bool) (ord uint64, err error) {
	ord = f.ord[path]
	f.ord[path] = ord + 1
	if !mutating {
		return ord, nil
	}
	f.ops++
	if f.crashed {
		return ord, f.inject(KindCrash, op, path, f.ops, ErrCrashed)
	}
	for _, r := range f.plan.Rules {
		if r.Kind == KindCrash && r.matches(path) && f.ops >= r.Op {
			f.crashed = true
			return ord, f.inject(KindCrash, op, path, f.ops, ErrCrashed)
		}
	}
	return ord, nil
}

// roll evaluates the probabilistic rules of one kind against an
// operation; on a hit it returns the decision's lane (positioned after
// the decision draw, so faults needing extra randomness — a torn write's
// cut, a bitrot position — continue the same deterministic stream) and
// true. Caller holds f.mu.
func (f *Faulty) roll(kind Kind, path string, ord uint64) (*rng.Source, bool) {
	for i, r := range f.plan.Rules {
		if r.Kind != kind || !r.matches(path) {
			continue
		}
		lane := f.lane(path, ord, uint64(i))
		if lane.Float64() < r.Rate {
			return lane, true
		}
	}
	return nil, false
}

// chargeENOSPC consumes n bytes from every matching enospc budget; if
// any is exhausted the write fails disk-full. Caller holds f.mu.
func (f *Faulty) chargeENOSPC(op, path string, ord uint64, n int) error {
	for i, r := range f.plan.Rules {
		if r.Kind != KindENOSPC || !r.matches(path) {
			continue
		}
		if f.written[i]+int64(n) > r.After {
			return f.inject(KindENOSPC, op, path, ord, syscall.ENOSPC)
		}
		f.written[i] += int64(n)
	}
	return nil
}

// writeFlags reports whether an OpenFile flag set can mutate the file.
func writeFlags(flag int) bool {
	return flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_APPEND|os.O_TRUNC) != 0
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	_, err := f.admit("mkdir", path, true)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *Faulty) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	_, err := f.admit("open", path, writeFlags(flag))
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, path: path, f: file}, nil
}

func (f *Faulty) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	ord, _ := f.admit("read", path, false)
	if _, hit := f.roll(KindEIO, path, ord); hit {
		err := f.inject(KindEIO, "read", path, ord, syscall.EIO)
		f.mu.Unlock()
		return nil, err
	}
	f.mu.Unlock()
	data, err := f.base.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if lane, hit := f.roll(KindBitrot, path, ord); hit && len(data) > 0 {
		bit := lane.Uint64() % uint64(len(data)*8)
		data[bit/8] ^= 1 << (bit % 8)
		f.record(Decision{Op: "read", Path: path, Kind: KindBitrot, Seq: ord})
	}
	return data, nil
}

func (f *Faulty) ReadDir(path string) ([]os.DirEntry, error) { return f.base.ReadDir(path) }
func (f *Faulty) Glob(pattern string) ([]string, error)      { return f.base.Glob(pattern) }

func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	ord, err := f.admit("rename", newpath, true)
	if err == nil {
		if _, hit := f.roll(KindEIO, newpath, ord); hit {
			err = f.inject(KindEIO, "rename", newpath, ord, syscall.EIO)
		}
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(path string) error {
	f.mu.Lock()
	ord, err := f.admit("remove", path, true)
	if err == nil {
		if _, hit := f.roll(KindEIO, path, ord); hit {
			err = f.inject(KindEIO, "remove", path, ord, syscall.EIO)
		}
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.base.Remove(path)
}

func (f *Faulty) Truncate(path string, size int64) error {
	f.mu.Lock()
	ord, err := f.admit("truncate", path, true)
	if err == nil {
		if _, hit := f.roll(KindEIO, path, ord); hit {
			err = f.inject(KindEIO, "truncate", path, ord, syscall.EIO)
		}
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.base.Truncate(path, size)
}

func (f *Faulty) SyncDir(dir string) error {
	f.mu.Lock()
	ord, err := f.admit("dirsync", dir, true)
	if err == nil {
		if _, hit := f.roll(KindFsyncFail, dir, ord); hit {
			err = f.inject(KindFsyncFail, "dirsync", dir, ord, syscall.EIO)
		}
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// faultyFile wraps one open file, applying the write-path rules.
type faultyFile struct {
	fs   *Faulty
	path string
	f    File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	ord, err := fs.admit("write", ff.path, true)
	if err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	if err := fs.chargeENOSPC("write", ff.path, ord, len(p)); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	if _, hit := fs.roll(KindEIO, ff.path, ord); hit {
		err := fs.inject(KindEIO, "write", ff.path, ord, syscall.EIO)
		fs.mu.Unlock()
		return 0, err
	}
	torn := -1
	if lane, hit := fs.roll(KindTornWrite, ff.path, ord); hit && len(p) > 0 {
		// Persist a deterministic prefix — the on-disk tail a real torn
		// write leaves — and report the write failed.
		torn = int(lane.Uint64() % uint64(len(p)))
		fs.record(Decision{Op: "write", Path: ff.path, Kind: KindTornWrite, Seq: ord})
	}
	fs.mu.Unlock()
	if torn >= 0 {
		n, _ := ff.f.Write(p[:torn])
		return n, &InjectedError{Kind: KindTornWrite, Op: "write", Path: ff.path, Err: syscall.EIO}
	}
	return ff.f.Write(p)
}

func (ff *faultyFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	ord, err := fs.admit("sync", ff.path, true)
	if err == nil {
		if _, hit := fs.roll(KindFsyncFail, ff.path, ord); hit {
			err = fs.inject(KindFsyncFail, "sync", ff.path, ord, syscall.EIO)
		}
	}
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultyFile) Truncate(size int64) error {
	fs := ff.fs
	fs.mu.Lock()
	ord, err := fs.admit("truncate", ff.path, true)
	if err == nil {
		if _, hit := fs.roll(KindEIO, ff.path, ord); hit {
			err = fs.inject(KindEIO, "truncate", ff.path, ord, syscall.EIO)
		}
	}
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultyFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }
func (ff *faultyFile) Close() error               { return ff.f.Close() }
