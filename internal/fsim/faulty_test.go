package fsim

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func mustPlan(t *testing.T, spec string) Plan {
	t.Helper()
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return p
}

// scriptOps runs a fixed operation sequence through fs rooted at dir,
// ignoring injected errors — the workload for the replay-identity test.
func scriptOps(t *testing.T, fs *Faulty, dir string) {
	t.Helper()
	sub := filepath.Join(dir, "journal")
	fs.MkdirAll(sub, 0o755)
	for i := 0; i < 4; i++ {
		p := filepath.Join(sub, "seg.wal")
		f, err := fs.OpenFile(p, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			continue
		}
		f.Write([]byte("record-payload-bytes"))
		f.Sync()
		f.Close()
		fs.ReadFile(p)
	}
	tmp := filepath.Join(sub, "snap.tmp")
	if f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644); err == nil {
		f.Write([]byte("snapshot"))
		f.Sync()
		f.Close()
	}
	fs.Rename(tmp, filepath.Join(sub, "snap"))
	fs.SyncDir(sub)
	fs.Remove(filepath.Join(sub, "snap"))
}

// TestReplayIdentity is the determinism contract: the same seed, plan
// and operation sequence produce the identical decision log, run to run.
func TestReplayIdentity(t *testing.T) {
	plan := mustPlan(t, "*:eio@0.3,*:fsync-fail@0.4,*:torn-write@0.2,*:bitrot@0.5")
	dir := t.TempDir()

	run := func() []Decision {
		os.RemoveAll(dir)
		os.MkdirAll(dir, 0o755)
		fs := New(plan, Config{Seed: 42})
		scriptOps(t, fs, dir)
		return fs.Decisions()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("plan injected nothing; test is vacuous")
	}
	if len(first) != len(second) {
		t.Fatalf("decision counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
	// A different seed must not replay the same log (overwhelmingly).
	os.RemoveAll(dir)
	os.MkdirAll(dir, 0o755)
	other := New(plan, Config{Seed: 43})
	scriptOps(t, other, dir)
	o := other.Decisions()
	same := len(o) == len(first)
	if same {
		for i := range o {
			if o[i] != first[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 43 replayed seed 42's decision log exactly")
	}
}

func TestEIOWrite(t *testing.T) {
	dir := t.TempDir()
	fs := New(mustPlan(t, "*:eio@1"), Config{Seed: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write err = %v, want EIO", err)
	}
}

func TestENOSPCBudgetAndFreeSpace(t *testing.T) {
	dir := t.TempDir()
	fs := New(mustPlan(t, "*:enospc@10"), Config{Seed: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatalf("first write within budget failed: %v", err)
	}
	if _, err := f.Write([]byte("123456")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write err = %v, want ENOSPC", err)
	}
	// Disk-full is sticky until space is freed.
	if _, err := f.Write([]byte("123456")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("still-full write err = %v, want ENOSPC", err)
	}
	fs.FreeSpace()
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatalf("write after FreeSpace failed: %v", err)
	}
}

func TestFsyncFail(t *testing.T) {
	dir := t.TempDir()
	fs := New(mustPlan(t, "*:fsync-fail@1"), Config{Seed: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("dirsync err = %v, want EIO", err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := New(mustPlan(t, "*:torn-write@1"), Config{Seed: 7})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := []byte("the-whole-record-that-should-tear")
	n, werr := f.Write(payload)
	f.Close()
	if !errors.Is(werr, syscall.EIO) {
		t.Fatalf("torn write err = %v, want EIO", werr)
	}
	if n >= len(payload) {
		t.Fatalf("torn write reported %d bytes, want < %d", n, len(payload))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if len(got) != n || string(got) != string(payload[:n]) {
		t.Fatalf("on-disk bytes %q are not the reported prefix %q", got, payload[:n])
	}
}

func TestBitrotFlipsOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	payload := []byte("pristine bytes on disk")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(mustPlan(t, "*:bitrot@1"), Config{Seed: 5})
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	diff := 0
	for i := range payload {
		b := payload[i] ^ got[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bitrot flipped %d bits, want exactly 1", diff)
	}
	// The file itself is untouched — rot is a read-path phenomenon.
	onDisk, _ := os.ReadFile(path)
	if string(onDisk) != string(payload) {
		t.Fatal("bitrot modified the stored bytes")
	}
}

func TestCrashHaltsAllWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := New(mustPlan(t, "*:crash@op3"), Config{Seed: 1})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 1
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("before")); err != nil { // op 2
		t.Fatalf("pre-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 3: power loss
		t.Fatalf("op 3 err = %v, want ErrCrashed", err)
	}
	if _, err := f.Write([]byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v, want ErrCrashed", err)
	}
	if err := fs.Rename(path, path+".x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after crash fired")
	}
	// Reads still work: the disk contents up to the crash are intact.
	got, err := fs.ReadFile(path)
	if err != nil || string(got) != "before" {
		t.Fatalf("post-crash read = %q, %v; want \"before\"", got, err)
	}
	if fs.MutatingOps() < 3 {
		t.Fatalf("MutatingOps() = %d, want >= 3", fs.MutatingOps())
	}
}
