// Package fsim injects deterministic storage faults under the service's
// durable state. It is the filesystem sibling of cudasim's device
// FaultPlan and netsim's network plan — the third leg of the fault
// tripod: where cudasim makes simulated GPUs fail and netsim makes the
// coordinator↔worker path drop and partition, fsim makes the bytes under
// the WAL, the job checkpoints and the dist coordinator journal fail the
// way real disks do — fsync errors, disk-full, torn writes, bit rot and
// power loss — on a replayable schedule, from a seed and a one-line plan.
//
// A plan is a comma-separated list of per-path clauses in the same
// spirit as the -faults and -chaos DSLs:
//
//	<path-glob>:<kind>@<value>
//
// where path-glob matches the file a faultable operation touches ("*"
// matches every path; otherwise the glob is matched, path.Match-style,
// against the slash-separated path and against every suffix of it that
// starts at a path component, so "journal/*" matches any file directly
// inside any journal directory) and kind@value is one of
//
//	eio@R          reads, writes, renames, removes and truncates fail
//	               with EIO, probability R in (0,1]
//	enospc@N       disk-full: after N bytes written through matching
//	               paths, further writes fail with ENOSPC until
//	               FreeSpace is called
//	fsync-fail@R   file and directory fsyncs fail with EIO, probability
//	               R in (0,1] — the fsyncgate fault
//	torn-write@R   a write persists only a deterministic prefix and
//	               reports EIO, probability R in (0,1]
//	bitrot@R       a read returns the stored bytes with one
//	               deterministically chosen bit flipped, probability R
//	               in (0,1]
//	crash@opN      power loss: the N-th mutating operation (1-based,
//	               counted across all paths) and every one after it
//	               fail with ErrCrashed — everything already written
//	               stays on disk, nothing further lands
//
// Every probabilistic decision is a pure function of the seed, the path,
// the per-path operation ordinal and the rule's plan position, so a
// fixed seed+plan replays the identical decision log regardless of
// goroutine interleaving — the same contract netsim's transport gives
// the network tests.
package fsim

import (
	"fmt"
	"math"
	"path"
	"path/filepath"
	"strconv"
	"strings"
)

// Kind is a fault clause's kind.
type Kind string

// The six fault kinds.
const (
	KindEIO       Kind = "eio"
	KindENOSPC    Kind = "enospc"
	KindFsyncFail Kind = "fsync-fail"
	KindTornWrite Kind = "torn-write"
	KindBitrot    Kind = "bitrot"
	KindCrash     Kind = "crash"
)

// Rule is one parsed fault clause. Which value fields are meaningful
// depends on Kind.
type Rule struct {
	Glob string // path glob the rule applies to; "*" matches every path
	Kind Kind

	Rate  float64 // eio, fsync-fail, torn-write, bitrot: probability in (0,1]
	After int64   // enospc: byte budget before writes start failing
	Op    uint64  // crash: first mutating-op index (1-based) that fails
}

// matches reports whether the rule applies to a path. The glob is tried
// against the whole slash-normalized path and against every suffix that
// starts at a path component, so relative globs like "journal/*" or
// "*.json" apply no matter where the data dir lives.
func (r Rule) matches(p string) bool {
	if r.Glob == "*" {
		return true
	}
	s := filepath.ToSlash(p)
	if ok, _ := path.Match(r.Glob, s); ok {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			if ok, _ := path.Match(r.Glob, s[i+1:]); ok {
				return true
			}
		}
	}
	return false
}

// value renders the clause's value part in canonical form.
func (r Rule) value() string {
	switch r.Kind {
	case KindEIO, KindFsyncFail, KindTornWrite, KindBitrot:
		return strconv.FormatFloat(r.Rate, 'g', -1, 64)
	case KindENOSPC:
		return strconv.FormatInt(r.After, 10)
	case KindCrash:
		return "op" + strconv.FormatUint(r.Op, 10)
	}
	return ""
}

// String renders the clause in the canonical form ParsePlan accepts.
func (r Rule) String() string {
	return r.Glob + ":" + string(r.Kind) + "@" + r.value()
}

// Plan is an ordered set of fault rules. Order is preserved: rules apply
// in plan order within each kind, and String round-trips through
// ParsePlan rule for rule.
type Plan struct {
	Rules []Rule
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Rules) == 0 }

// String renders the plan in the canonical comma-separated clause form;
// ParsePlan(p.String()) reproduces p exactly.
func (p Plan) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the disk-fault DSL. An empty spec is an empty plan.
// Globs may contain colons, so each clause is split at its LAST colon:
// everything before it is the glob, everything after is kind@value.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		cut := strings.LastIndex(clause, ":")
		if cut <= 0 {
			return Plan{}, fmt.Errorf("fsim: bad fault clause %q (want path-glob:kind@value)", clause)
		}
		glob, rest := clause[:cut], clause[cut+1:]
		kindPart, valPart, ok := strings.Cut(rest, "@")
		if !ok {
			return Plan{}, fmt.Errorf("fsim: bad fault clause %q (missing @value)", clause)
		}
		r := Rule{Glob: glob, Kind: Kind(kindPart)}
		var err error
		switch r.Kind {
		case KindEIO, KindFsyncFail, KindTornWrite, KindBitrot:
			r.Rate, err = parseRate(valPart)
		case KindENOSPC:
			r.After, err = parseBytes(valPart)
		case KindCrash:
			r.Op, err = parseOp(valPart)
		default:
			err = fmt.Errorf("unknown fault kind %q (want eio, enospc, fsync-fail, torn-write, bitrot or crash)", kindPart)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fsim: bad fault clause %q: %v", clause, err)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("rate %q is not a number", s)
	}
	if math.IsNaN(v) || v <= 0 || v > 1 {
		return 0, fmt.Errorf("rate %v must be in (0,1]", v)
	}
	return v, nil
}

func parseBytes(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("byte budget %q is not an integer", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("byte budget %d must be non-negative", v)
	}
	return v, nil
}

func parseOp(s string) (uint64, error) {
	s = strings.TrimPrefix(s, "op")
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("op index %q is not opN", s)
	}
	if v == 0 {
		return 0, fmt.Errorf("op index must be >= 1 (ops are 1-based)")
	}
	return v, nil
}
