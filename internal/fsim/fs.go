package fsim

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durability layers need. The fault
// injector wraps it; production code gets *os.File straight through.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// FS is the filesystem surface the WAL, the service checkpoints and the
// dist coordinator journal write through. Production uses OSFS; tests
// and chaos drills swap in a Faulty built from a Plan. Every call maps
// 1:1 onto the os package function of the same name, plus SyncDir — the
// directory fsync that makes renames and unlinks durable.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	SyncDir(dir string) error
	Glob(pattern string) ([]string, error)
}

// osFS is the pass-through FS over the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem: every method is the os package
// call of the same name.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error     { return os.Truncate(path, size) }
func (osFS) Glob(pattern string) ([]string, error)      { return filepath.Glob(pattern) }

// SyncDir fsyncs a directory so the renames and unlinks inside it are
// durable. Unlike the old silent helper this surfaces the error: some
// filesystems reject directory fsync, and the caller — not this layer —
// decides whether that is fatal.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
