package fsim

import (
	"strings"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"*:eio@0.5",
		"*.wal:fsync-fail@1",
		"journal/*:torn-write@0.25",
		"checkpoints/*.json:bitrot@0.1",
		"*:enospc@4096",
		"*:crash@op37",
		"*:eio@0.5,*.json:enospc@1024,*:crash@op3",
		"a:b:eio@1", // glob containing a colon
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", spec, p.String(), err)
		}
		if p.String() != again.String() || len(p.Rules) != len(again.Rules) {
			t.Fatalf("round trip of %q: %q != %q", spec, p.String(), again.String())
		}
		for i := range p.Rules {
			if p.Rules[i] != again.Rules[i] {
				t.Fatalf("round trip of %q: rule %d %+v != %+v", spec, i, p.Rules[i], again.Rules[i])
			}
		}
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := []string{
		"eio@0.5",          // no glob
		"*:eio",            // no value
		"*:eio@0",          // rate out of range
		"*:eio@1.5",        // rate out of range
		"*:eio@NaN",        // NaN rate
		"*:flood@0.5",      // unknown kind
		"*:enospc@-1",      // negative budget
		"*:enospc@lots",    // non-integer budget
		"*:crash@op0",      // ops are 1-based
		"*:crash@whenever", // non-integer op
		":eio@0.5",         // empty glob
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", spec)
		}
	}
}

func TestParsePlanEmpty(t *testing.T) {
	for _, spec := range []string{"", " ", ",", " , "} {
		p, err := ParsePlan(spec)
		if err != nil || !p.Empty() {
			t.Fatalf("ParsePlan(%q) = %+v, %v; want empty plan", spec, p, err)
		}
	}
}

func TestRuleMatches(t *testing.T) {
	cases := []struct {
		glob, path string
		want       bool
	}{
		{"*", "/data/journal/seg-00000001.wal", true},
		{"*.wal", "/data/journal/seg-00000001.wal", true},
		{"journal/*", "/data/journal/seg-00000001.wal", true},
		{"journal/*", "/data/checkpoints/job-000001.json", false},
		{"checkpoints/*.json", "/data/checkpoints/job-000001.json", true},
		{"seg-00000001.wal", "/data/journal/seg-00000001.wal", true},
		{"seg-00000002.wal", "/data/journal/seg-00000001.wal", false},
		{"*.json", "/data/journal/seg-00000001.wal", false},
	}
	for _, c := range cases {
		r := Rule{Glob: c.glob}
		if got := r.matches(c.path); got != c.want {
			t.Errorf("Rule{Glob: %q}.matches(%q) = %v, want %v", c.glob, c.path, got, c.want)
		}
	}
}

func FuzzParseDiskPlan(f *testing.F) {
	f.Add("*:eio@0.5")
	f.Add("*.wal:fsync-fail@1,journal/*:torn-write@0.25")
	f.Add("*:enospc@4096,*:crash@op12")
	f.Add("a:b:bitrot@0.001")
	f.Add("*:crash@op18446744073709551615")
	f.Add("x:eio@NaN")
	f.Add(strings.Repeat("*:eio@1,", 64))
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return
		}
		// Whatever parses must render canonically and round-trip exactly.
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", p.String(), err)
		}
		if len(again.Rules) != len(p.Rules) {
			t.Fatalf("round trip changed rule count: %d != %d", len(again.Rules), len(p.Rules))
		}
		for i := range p.Rules {
			if p.Rules[i] != again.Rules[i] {
				t.Fatalf("rule %d changed in round trip: %+v != %+v", i, p.Rules[i], again.Rules[i])
			}
		}
	})
}
