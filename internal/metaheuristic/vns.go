package metaheuristic

import "github.com/metascreen/metascreen/internal/conformation"

// VariableNeighborhood implements Variable Neighborhood Search (listed in
// the paper's section 2.2): each walker shakes within its current
// neighborhood k (a perturbation whose size grows with k), the shaken
// pose receives local search, and the walker either accepts the result and
// resets to the smallest neighborhood or escalates to the next one.
type VariableNeighborhood struct {
	name   string
	params Params
	// KMax is the number of neighborhood sizes.
	KMax int
	// BaseScale is neighborhood 1; neighborhood k scales it by k.
	BaseScale conformation.MoveScale
}

// NewVariableNeighborhood returns a VNS algorithm with the given
// parameters. Walkers per spot come from Params.PopulationPerSpot.
func NewVariableNeighborhood(name string, p Params) (*VariableNeighborhood, error) {
	if p.SelectFraction == 0 {
		p.SelectFraction = 1
	}
	if p.ImproveFraction == 0 {
		p.ImproveFraction = 1
	}
	if p.ImproveMoves == 0 {
		p.ImproveMoves = 4
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &VariableNeighborhood{
		name: name, params: p,
		KMax:      4,
		BaseScale: conformation.MoveScale{MaxTranslate: 0.75, MaxRotate: 0.25},
	}, nil
}

// Name implements Algorithm.
func (v *VariableNeighborhood) Name() string { return v.name }

// Params implements Algorithm.
func (v *VariableNeighborhood) Params() Params { return v.params }

// NewSpotState implements Algorithm.
func (v *VariableNeighborhood) NewSpotState(ctx *SpotContext) SpotState {
	return &vnsState{alg: v, ctx: ctx}
}

type vnsState struct {
	alg  *VariableNeighborhood
	ctx  *SpotContext
	pop  Population // incumbent per walker
	k    []int      // current neighborhood per walker
	best conformation.Conformation
}

func (s *vnsState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *vnsState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.k = make([]int, len(s.pop))
	for i := range s.k {
		s.k[i] = 1
	}
	s.best = conformation.Conformation{Score: conformation.Unscored}
	if i := s.pop.Best(); i >= 0 {
		s.best = s.pop[i]
	}
}

// Propose shakes every walker within its current neighborhood.
func (s *vnsState) Propose() Population {
	scom := make(Population, len(s.pop))
	for i, w := range s.pop {
		scale := conformation.MoveScale{
			MaxTranslate: s.alg.BaseScale.MaxTranslate * float64(s.k[i]),
			MaxRotate:    s.alg.BaseScale.MaxRotate * float64(s.k[i]),
		}
		scom[i] = s.ctx.Sampler.Perturb(s.ctx.RNG, w, scale)
	}
	return scom
}

// ImproveTargets: VNS applies local search to every shaken pose.
func (s *vnsState) ImproveTargets(scom Population) []int {
	idx := make([]int, len(scom))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Integrate applies the VNS move-or-escalate rule per walker.
func (s *vnsState) Integrate(scom Population) {
	for i := range scom {
		if i >= len(s.pop) {
			break
		}
		if scom[i].Better(s.pop[i]) {
			s.pop[i] = scom[i]
			s.k[i] = 1
		} else {
			s.k[i]++
			if s.k[i] > s.alg.KMax {
				s.k[i] = 1
			}
		}
		s.best = bestOf(s.best, scom[i])
	}
}

func (s *vnsState) Population() Population { return s.pop }

func (s *vnsState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *vnsState) Best() conformation.Conformation { return s.best }
