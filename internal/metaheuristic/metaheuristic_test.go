package metaheuristic

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

func testCtx(seed uint64) *SpotContext {
	spot := surface.Spot{
		ID:     0,
		Center: vec.New(20, 0, 0),
		Normal: vec.New(1, 0, 0),
		Radius: 10,
	}
	return &SpotContext{
		Spot:    spot,
		Sampler: conformation.NewSampler(spot, 2),
		RNG:     rng.New(seed),
	}
}

// quadraticEval scores a conformation by distance to a hidden target pose:
// smooth, single-minimum, ideal for verifying that algorithms optimize.
type quadraticEval struct {
	target vec.V3
}

func (q quadraticEval) score(c conformation.Conformation) float64 {
	return c.Translation.Dist2(q.target)
}

// drive runs the SpotState protocol serially, scoring with eval and
// emulating local search as hill-climbing with the sampler, exactly like
// the engine's Real backend does.
func drive(t *testing.T, alg Algorithm, ctx *SpotContext, eval quadraticEval) conformation.Conformation {
	t.Helper()
	state := alg.NewSpotState(ctx)
	seed := state.Seed()
	if len(seed) != alg.Params().PopulationPerSpot {
		t.Fatalf("%s: seed size %d, want %d", alg.Name(), len(seed), alg.Params().PopulationPerSpot)
	}
	for i := range seed {
		if seed[i].Evaluated() {
			t.Fatalf("%s: seed individual %d pre-scored", alg.Name(), i)
		}
		seed[i].Score = eval.score(seed[i])
	}
	state.Begin(seed)

	improveRNG := ctx.RNG.Split(999)
	for gen := 0; ; gen++ {
		if state.Done(gen) {
			break
		}
		scom := state.Propose()
		for i := range scom {
			if !scom[i].Evaluated() {
				scom[i].Score = eval.score(scom[i])
			}
		}
		targets := state.ImproveTargets(scom)
		for _, ti := range targets {
			if ti < 0 || ti >= len(scom) {
				t.Fatalf("%s: improve target %d out of range", alg.Name(), ti)
			}
			cur := scom[ti]
			for m := 0; m < alg.Params().ImproveMoves; m++ {
				cand := ctx.Sampler.Perturb(improveRNG, cur, alg.Params().moveScale())
				cand.Score = eval.score(cand)
				if cand.Better(cur) {
					cur = cand
				}
			}
			scom[ti] = cur
		}
		state.Integrate(scom)
	}
	return state.Best()
}

// allAlgorithms builds each algorithm with a small test parameterization.
func allAlgorithms(t *testing.T) []Algorithm {
	t.Helper()
	p := Params{
		PopulationPerSpot: 24,
		SelectFraction:    1.0,
		ImproveFraction:   0.5,
		ImproveMoves:      4,
		Generations:       30,
	}
	ga, err := NewGenetic("ga", p)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewScatterSearch("ss", p)
	if err != nil {
		t.Fatal(err)
	}
	lsP := p
	lsP.PopulationPerSpot = 200
	lsP.ImproveMoves = 40
	ls, err := NewLocalSearch("ls", lsP)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewSimulatedAnnealing("sa", p)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTabuSearch("tabu", p)
	if err != nil {
		t.Fatal(err)
	}
	pso, err := NewParticleSwarm("pso", p)
	if err != nil {
		t.Fatal(err)
	}
	return []Algorithm{ga, ss, ls, sa, tb, pso}
}

func TestAlgorithmsOptimize(t *testing.T) {
	for _, alg := range allAlgorithms(t) {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			ctx := testCtx(101)
			// Hidden optimum inside the search region.
			eval := quadraticEval{target: ctx.Spot.Center.Add(vec.New(4, 1, -2))}

			// Baseline: best of a same-size random sample.
			baselineRNG := rng.New(555)
			baseline := math.Inf(1)
			n := alg.Params().PopulationPerSpot
			for i := 0; i < n; i++ {
				c := ctx.Sampler.Random(baselineRNG)
				if s := eval.score(c); s < baseline {
					baseline = s
				}
			}

			best := drive(t, alg, ctx, eval)
			if !best.Evaluated() {
				t.Fatal("no evaluated best")
			}
			if best.Score > baseline {
				t.Errorf("best %v worse than random baseline %v", best.Score, baseline)
			}
		})
	}
}

func TestAlgorithmsDeterministic(t *testing.T) {
	for _, mk := range []func() Algorithm{
		func() Algorithm { a, _ := NewGenetic("ga", M1Params(0.1)); return a },
		func() Algorithm { a, _ := NewScatterSearch("ss", M3Params(0.1)); return a },
	} {
		alg := mk()
		eval := quadraticEval{target: vec.New(24, 1, -2)}
		a := drive(t, alg, testCtx(7), eval)
		b := drive(t, mk(), testCtx(7), eval)
		if a.Score != b.Score || a.Translation != b.Translation {
			t.Errorf("%s: same seed produced different results: %v vs %v", alg.Name(), a, b)
		}
	}
}

func TestPopulationBestAndSort(t *testing.T) {
	mk := func(score float64) conformation.Conformation {
		c := conformation.New(0, vec.Zero, vec.IdentityQuat)
		c.Score = score
		return c
	}
	p := Population{mk(3), mk(-1), mk(2)}
	if got := p.Best(); got != 1 {
		t.Errorf("Best = %d", got)
	}
	p = append(p, conformation.New(0, vec.Zero, vec.IdentityQuat)) // unscored
	if got := p.Best(); got != 1 {
		t.Errorf("Best with unscored = %d", got)
	}
	p.SortByScore()
	if p[0].Score != -1 || p[len(p)-1].Evaluated() {
		t.Errorf("sort order wrong: %v", p)
	}

	var empty Population
	if empty.Best() != -1 {
		t.Error("Best of empty != -1")
	}
}

func TestPopulationUnscoredAndClone(t *testing.T) {
	p := Population{
		conformation.New(0, vec.Zero, vec.IdentityQuat),
		func() conformation.Conformation {
			c := conformation.New(0, vec.Zero, vec.IdentityQuat)
			c.Score = 1
			return c
		}(),
	}
	if got := p.Unscored(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Unscored = %v", got)
	}
	c := p.Clone()
	c[0].Score = 99
	if p[0].Score == 99 {
		t.Error("Clone aliases original")
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{PopulationPerSpot: 10, SelectFraction: 1, Generations: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{PopulationPerSpot: 0, SelectFraction: 1, Generations: 5},
		{PopulationPerSpot: 10, SelectFraction: 1, Generations: 0},
		{PopulationPerSpot: 10, SelectFraction: -0.1, Generations: 5},
		{PopulationPerSpot: 10, SelectFraction: 1.5, Generations: 5},
		{PopulationPerSpot: 10, SelectFraction: 1, ImproveFraction: 2, Generations: 5},
		{PopulationPerSpot: 10, SelectFraction: 1, ImproveMoves: -1, Generations: 5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestImproveFractionSelection(t *testing.T) {
	mk := func(score float64) conformation.Conformation {
		c := conformation.New(0, vec.Zero, vec.IdentityQuat)
		c.Score = score
		return c
	}
	scom := Population{mk(5), mk(1), mk(3), mk(2)}
	got := improveFraction(scom, 0.5)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("improveFraction(0.5) = %v, want [1 3]", got)
	}
	if improveFraction(scom, 0) != nil {
		t.Error("improveFraction(0) != nil")
	}
	if got := improveFraction(scom, 1); len(got) != 4 {
		t.Errorf("improveFraction(1) = %v", got)
	}
	// Tiny positive fraction still improves at least one element.
	if got := improveFraction(scom, 0.01); len(got) != 1 {
		t.Errorf("improveFraction(0.01) = %v", got)
	}
}
