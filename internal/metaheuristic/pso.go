package metaheuristic

import (
	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/vec"
)

// ParticleSwarm is a distributed metaheuristic extension: particles move
// through pose space under inertia plus attraction toward their personal
// best and the spot's global best. Orientations follow by slerp toward the
// attractors.
type ParticleSwarm struct {
	name   string
	params Params
	// Inertia, Cognitive and Social are the standard PSO coefficients.
	Inertia, Cognitive, Social float64
	// VMax bounds particle speed in angstroms per generation.
	VMax float64
}

// NewParticleSwarm returns a PSO algorithm with the given parameters.
func NewParticleSwarm(name string, p Params) (*ParticleSwarm, error) {
	if p.SelectFraction == 0 {
		p.SelectFraction = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ParticleSwarm{
		name: name, params: p,
		Inertia: 0.72, Cognitive: 1.49, Social: 1.49, VMax: 2.0,
	}, nil
}

// Name implements Algorithm.
func (a *ParticleSwarm) Name() string { return a.name }

// Params implements Algorithm.
func (a *ParticleSwarm) Params() Params { return a.params }

// NewSpotState implements Algorithm.
func (a *ParticleSwarm) NewSpotState(ctx *SpotContext) SpotState {
	return &psoState{alg: a, ctx: ctx}
}

type psoState struct {
	alg   *ParticleSwarm
	ctx   *SpotContext
	pop   Population // current particle positions (scored)
	vel   []vec.V3
	pbest Population
	gbest conformation.Conformation
}

func (s *psoState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *psoState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.pbest = pop.Clone()
	s.vel = make([]vec.V3, len(pop))
	for i := range s.vel {
		s.vel[i] = s.ctx.RNG.InSphere(s.alg.VMax / 2)
	}
	s.gbest = conformation.Conformation{Score: conformation.Unscored}
	if i := s.pop.Best(); i >= 0 {
		s.gbest = s.pop[i]
	}
}

func (s *psoState) Propose() Population {
	r := s.ctx.RNG
	a := s.alg
	scom := make(Population, len(s.pop))
	for i, part := range s.pop {
		// Velocity update with per-component stochastic weights.
		v := s.vel[i].Scale(a.Inertia)
		v = v.Add(s.pbest[i].Translation.Sub(part.Translation).Scale(a.Cognitive * r.Float64()))
		if s.gbest.Evaluated() {
			v = v.Add(s.gbest.Translation.Sub(part.Translation).Scale(a.Social * r.Float64()))
		}
		if n := v.Norm(); n > a.VMax {
			v = v.Scale(a.VMax / n)
		}
		s.vel[i] = v
		// Orientation drifts toward the attractors.
		q := part.Orientation
		q = q.Slerp(s.pbest[i].Orientation, 0.3*r.Float64())
		if s.gbest.Evaluated() {
			q = q.Slerp(s.gbest.Orientation, 0.3*r.Float64())
		}
		next := conformation.New(part.Spot, part.Translation.Add(v), q)
		// Keep particles inside the spot region via a zero-length perturb.
		next = s.ctx.Sampler.Perturb(r, next, conformation.MoveScale{MaxTranslate: 1e-12, MaxRotate: 1e-12})
		scom[i] = next
	}
	return scom
}

func (s *psoState) ImproveTargets(scom Population) []int {
	return improveFraction(scom, s.alg.params.ImproveFraction)
}

func (s *psoState) Integrate(scom Population) {
	for i := range scom {
		if i >= len(s.pop) {
			break
		}
		s.pop[i] = scom[i]
		s.pbest[i] = bestOf(s.pbest[i], scom[i])
		s.gbest = bestOf(s.gbest, scom[i])
	}
}

func (s *psoState) Population() Population { return s.pop }

func (s *psoState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *psoState) Best() conformation.Conformation { return s.gbest }
