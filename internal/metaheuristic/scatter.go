package metaheuristic

import "github.com/metascreen/metascreen/internal/conformation"

// ScatterSearch is the evolutionary method behind the paper's M2 and M3: a
// reference set of the population size, systematic pairwise combination of
// the best subset, local search ("Improve") on a configurable fraction of
// the offspring, and reference-set update by quality.
type ScatterSearch struct {
	name   string
	params Params
	// refSubset is the number of best individuals whose pairs are combined
	// each generation.
	refSubset int
}

// NewScatterSearch returns a scatter-search algorithm with the given
// parameters.
func NewScatterSearch(name string, p Params) (*ScatterSearch, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sub := 10
	if sub > p.PopulationPerSpot {
		sub = p.PopulationPerSpot
	}
	return &ScatterSearch{name: name, params: p, refSubset: sub}, nil
}

// Name implements Algorithm.
func (s *ScatterSearch) Name() string { return s.name }

// Params implements Algorithm.
func (s *ScatterSearch) Params() Params { return s.params }

// NewSpotState implements Algorithm.
func (s *ScatterSearch) NewSpotState(ctx *SpotContext) SpotState {
	return &scatterState{alg: s, ctx: ctx}
}

type scatterState struct {
	alg *ScatterSearch
	ctx *SpotContext
	pop Population
	gen int
	// scom and spare are per-generation buffers reused across generations
	// (offspring and elitist output respectively).
	scom  Population
	spare Population
}

func (s *scatterState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *scatterState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.pop.SortByScore()
}

func (s *scatterState) Propose() Population {
	r := s.ctx.RNG
	p := s.alg.params
	// Select: the reference subset is the best refSubset individuals of
	// the SelectFraction pool. s.pop is kept sorted best-first by Begin
	// and Integrate, so selection is a prefix view — no per-generation
	// clone or re-sort.
	nsel := int(float64(len(s.pop))*p.SelectFraction + 0.5)
	if nsel < 2 {
		nsel = min(2, len(s.pop))
	}
	pool := s.pop[:nsel]
	b := s.alg.refSubset
	if b > len(pool) {
		b = len(pool)
	}

	// Combine: all ordered pairs of the subset, cycled until the offspring
	// set reaches the population size (scatter search generates solutions
	// from systematic subset combinations).
	if cap(s.scom) < p.PopulationPerSpot {
		s.scom = make(Population, 0, p.PopulationPerSpot)
	}
	scom := s.scom[:0]
	for len(scom) < p.PopulationPerSpot {
		for i := 0; i < b && len(scom) < p.PopulationPerSpot; i++ {
			for j := i + 1; j < b && len(scom) < p.PopulationPerSpot; j++ {
				scom = append(scom, s.ctx.Sampler.Combine(r, pool[i], pool[j]))
			}
		}
		if b < 2 {
			// Degenerate subset: fall back to random diversification.
			scom = append(scom, s.ctx.Sampler.Random(r))
		}
	}
	s.scom = scom
	return scom
}

func (s *scatterState) ImproveTargets(scom Population) []int {
	return improveFraction(scom, s.alg.params.ImproveFraction)
}

func (s *scatterState) Integrate(scom Population) {
	s.spare = elitistInto(s.spare, s.pop, scom, s.alg.params.PopulationPerSpot)
	s.pop, s.spare = s.spare, s.pop
	s.gen++
}

func (s *scatterState) Population() Population { return s.pop }

func (s *scatterState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *scatterState) Best() conformation.Conformation {
	if i := s.pop.Best(); i >= 0 {
		return s.pop[i]
	}
	return conformation.Conformation{Score: conformation.Unscored}
}
