package metaheuristic

import (
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/vec"
)

func extParams() Params {
	return Params{
		PopulationPerSpot: 20,
		SelectFraction:    1,
		ImproveFraction:   1,
		ImproveMoves:      4,
		Generations:       25,
	}
}

func TestExtensionsOptimize(t *testing.T) {
	mks := []func() (Algorithm, error){
		func() (Algorithm, error) { return NewVariableNeighborhood("vns", extParams()) },
		func() (Algorithm, error) { return NewGRASP("grasp", extParams()) },
		func() (Algorithm, error) { return NewAnnealedGenetic("ga-sa", extParams()) },
	}
	for _, mk := range mks {
		alg, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(alg.Name(), func(t *testing.T) {
			ctx := testCtx(301)
			eval := quadraticEval{target: ctx.Spot.Center.Add(vec.New(3, -1, 2))}
			best := drive(t, alg, ctx, eval)
			if !best.Evaluated() {
				t.Fatal("no best")
			}
			// Must land meaningfully close to the optimum (region radius
			// is 10, so random poses average squared distance >> 10).
			if best.Score > 10 {
				t.Errorf("best score %v, optimization ineffective", best.Score)
			}
		})
	}
}

func TestVNSEscalatesNeighborhoods(t *testing.T) {
	alg, err := NewVariableNeighborhood("vns", extParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(302)
	state := alg.NewSpotState(ctx).(*vnsState)
	seed := state.Seed()
	for i := range seed {
		seed[i].Score = 0 // already optimal: every shake fails
	}
	state.Begin(seed)
	scom := state.Propose()
	for i := range scom {
		scom[i].Score = 1 // all worse
	}
	state.Integrate(scom)
	for i, k := range state.k {
		if k != 2 {
			t.Errorf("walker %d neighborhood = %d after failure, want 2", i, k)
		}
	}
	// A success resets to 1.
	scom2 := state.Propose()
	for i := range scom2 {
		scom2[i].Score = -1 // all better
	}
	state.Integrate(scom2)
	for i, k := range state.k {
		if k != 1 {
			t.Errorf("walker %d neighborhood = %d after success, want 1", i, k)
		}
	}
}

func TestVNSNeighborhoodWraps(t *testing.T) {
	alg, err := NewVariableNeighborhood("vns", extParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(303)
	state := alg.NewSpotState(ctx).(*vnsState)
	seed := state.Seed()
	for i := range seed {
		seed[i].Score = 0
	}
	state.Begin(seed)
	for round := 0; round < alg.KMax+1; round++ {
		scom := state.Propose()
		for i := range scom {
			scom[i].Score = 1
		}
		state.Integrate(scom)
	}
	for i, k := range state.k {
		if k < 1 || k > alg.KMax {
			t.Errorf("walker %d neighborhood = %d outside [1,%d]", i, k, alg.KMax)
		}
	}
}

func TestGRASPEliteSetBounded(t *testing.T) {
	alg, err := NewGRASP("grasp", extParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(304)
	eval := quadraticEval{target: ctx.Spot.Center.Add(vec.New(2, 2, 2))}
	state := alg.NewSpotState(ctx)
	seed := state.Seed()
	for i := range seed {
		seed[i].Score = eval.score(seed[i])
	}
	state.Begin(seed)
	for gen := 0; gen < 5; gen++ {
		scom := state.Propose()
		for i := range scom {
			scom[i].Score = eval.score(scom[i])
		}
		state.Integrate(scom)
		if got := len(state.Population()); got > alg.EliteSize {
			t.Fatalf("elite set grew to %d (cap %d)", got, alg.EliteSize)
		}
	}
}

func TestAnnealedGeneticCoolsToElitism(t *testing.T) {
	alg, err := NewAnnealedGenetic("ga-sa", extParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(305)
	state := alg.NewSpotState(ctx).(*annealedGeneticState)
	seed := state.Seed()
	for i := range seed {
		seed[i].Score = 0
	}
	state.Begin(seed)
	t0 := state.temp
	for gen := 0; gen < 10; gen++ {
		scom := state.Propose()
		for i := range scom {
			scom[i].Score = 0.1
		}
		state.Integrate(scom)
	}
	if state.temp >= t0 {
		t.Errorf("temperature did not cool: %v -> %v", t0, state.temp)
	}
}

func TestExtensionsRejectBadParams(t *testing.T) {
	bad := Params{PopulationPerSpot: 0, Generations: 5}
	if _, err := NewVariableNeighborhood("v", bad); err == nil {
		t.Error("VNS accepted bad params")
	}
	if _, err := NewGRASP("g", bad); err == nil {
		t.Error("GRASP accepted bad params")
	}
	if _, err := NewAnnealedGenetic("a", bad); err == nil {
		t.Error("hybrid accepted bad params")
	}
}

func TestExtensionsNeverWorseBest(t *testing.T) {
	// Best() must be monotone: integrating new offspring never loses the
	// incumbent best.
	for _, mk := range []func() (Algorithm, error){
		func() (Algorithm, error) { return NewVariableNeighborhood("vns", extParams()) },
		func() (Algorithm, error) { return NewGRASP("grasp", extParams()) },
		func() (Algorithm, error) { return NewAnnealedGenetic("ga-sa", extParams()) },
	} {
		alg, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		ctx := testCtx(306)
		eval := quadraticEval{target: ctx.Spot.Center}
		state := alg.NewSpotState(ctx)
		seed := state.Seed()
		for i := range seed {
			seed[i].Score = eval.score(seed[i])
		}
		state.Begin(seed)
		prev := state.Best().Score
		for gen := 0; gen < 8; gen++ {
			scom := state.Propose()
			for i := range scom {
				if !scom[i].Evaluated() {
					scom[i].Score = eval.score(scom[i])
				}
			}
			state.Integrate(scom)
			if cur := state.Best().Score; cur > prev {
				t.Errorf("%s: best worsened %v -> %v at gen %d", alg.Name(), prev, cur, gen)
			} else {
				prev = cur
			}
		}
	}
}

func TestHybridIntegrateBounds(t *testing.T) {
	// Offspring longer than the population must not panic.
	alg, err := NewAnnealedGenetic("ga-sa", extParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(307)
	state := alg.NewSpotState(ctx)
	seed := state.Seed()
	for i := range seed {
		seed[i].Score = 1
	}
	state.Begin(seed)
	long := make(Population, len(seed)+5)
	for i := range long {
		c := conformation.New(0, vec.Zero, vec.IdentityQuat)
		c.Score = 0.5
		long[i] = c
	}
	state.Integrate(long) // must not panic
}
