// Package metaheuristic implements the paper's six-function metaheuristic
// template (its Algorithm 1: Initialize, End, Select, Combine, Improve,
// Include) and the four instantiations evaluated in its Tables 6-9:
//
//	M1 — a genetic algorithm, population 64 per spot, no local search;
//	M2 — a scatter-search-like method, local search on 100% of offspring;
//	M3 — as M2 but local search on only 20% of offspring;
//	M4 — a pure neighbourhood method: one step of intensive local search
//	     over a large (1024 per spot) initial set.
//
// Simulated annealing, tabu search and particle swarm optimization are
// provided as the extensions the paper's section 2.2 enumerates.
//
// The package deliberately separates the *algorithmic* state from
// *evaluation*: implementations never score conformations themselves.
// Instead they expose unscored candidates through the SpotState protocol
// and the driver (internal/core) batches evaluation and local search across
// all spots onto the compute backend — this batching is exactly what maps
// candidate solutions to CUDA warps in the paper's parallelization.
package metaheuristic

import (
	"fmt"
	"slices"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
)

// Population is an ordered set of candidate solutions for one spot.
type Population []conformation.Conformation

// Best returns the index of the best (lowest-score) evaluated individual,
// or -1 for an empty or fully unevaluated population.
func (p Population) Best() int {
	best := -1
	for i := range p {
		if !p[i].Evaluated() {
			continue
		}
		if best == -1 || p[i].Score < p[best].Score {
			best = i
		}
	}
	return best
}

// SortByScore orders the population best-first. Unevaluated individuals
// sort last. The sort is stable so equal scores keep their order, which
// keeps runs deterministic. It uses the generic stable sort rather than
// sort.SliceStable: no reflection-based swapping, which matters because
// population sorting is on the per-generation host path.
func (p Population) SortByScore() {
	slices.SortStableFunc(p, func(a, b conformation.Conformation) int {
		switch {
		case a.Score < b.Score:
			return -1
		case b.Score < a.Score:
			return 1
		}
		return 0
	})
}

// Clone returns a deep copy (conformations are values, so this is a plain
// slice copy).
func (p Population) Clone() Population {
	out := make(Population, len(p))
	copy(out, p)
	return out
}

// Unscored returns the indices of individuals that still need evaluation.
func (p Population) Unscored() []int {
	var idx []int
	for i, c := range p {
		if !c.Evaluated() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Params are the template parameters the paper's Table 4 tabulates per
// metaheuristic, plus the generation budget that closes the End condition.
type Params struct {
	// PopulationPerSpot is the initial population size per receptor spot
	// (the "Initial population (S)" column of Table 4, divided by spots).
	PopulationPerSpot int
	// SelectFraction is the fraction of S selected into Ssel.
	SelectFraction float64
	// ImproveFraction is the fraction of offspring improved by local
	// search (the "% of elements to be improved" column).
	ImproveFraction float64
	// ImproveMoves is the number of local-search moves applied to each
	// improved element (the paper's local-search intensity).
	ImproveMoves int
	// Generations is the End condition: a fixed number of template
	// iterations. Neighbourhood methods like M4 use 1.
	Generations int
	// MoveScale bounds the local-search step; the zero value means
	// conformation.DefaultMoveScale.
	MoveScale conformation.MoveScale
}

// moveScale returns the effective local-search step.
func (p Params) moveScale() conformation.MoveScale {
	if p.MoveScale == (conformation.MoveScale{}) {
		return conformation.DefaultMoveScale
	}
	return p.MoveScale
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.PopulationPerSpot <= 0:
		return fmt.Errorf("metaheuristic: population %d", p.PopulationPerSpot)
	case p.Generations <= 0:
		return fmt.Errorf("metaheuristic: generations %d", p.Generations)
	case p.SelectFraction < 0 || p.SelectFraction > 1:
		return fmt.Errorf("metaheuristic: select fraction %g", p.SelectFraction)
	case p.ImproveFraction < 0 || p.ImproveFraction > 1:
		return fmt.Errorf("metaheuristic: improve fraction %g", p.ImproveFraction)
	case p.ImproveMoves < 0:
		return fmt.Errorf("metaheuristic: improve moves %d", p.ImproveMoves)
	}
	return nil
}

// SpotContext is what an algorithm knows about the spot it optimizes.
type SpotContext struct {
	// Spot is the surface region.
	Spot surface.Spot
	// Sampler generates and perturbs conformations for the spot.
	Sampler *conformation.Sampler
	// RNG is the spot's private random stream (split from the run seed, so
	// results are independent of spot evaluation order).
	RNG *rng.Source
}

// Algorithm is a metaheuristic: a named parameter set plus a factory for
// per-spot optimization state. Implementations correspond to fillings of
// the paper's Algorithm 1 template.
type Algorithm interface {
	// Name identifies the metaheuristic, e.g. "M2".
	Name() string
	// Params returns the template parameters.
	Params() Params
	// NewSpotState creates the optimization state for one spot.
	NewSpotState(ctx *SpotContext) SpotState
}

// SpotState is the per-spot optimization protocol the driver speaks. One
// generation is:
//
//	scom := state.Propose()            // Select + Combine (host side)
//	<driver evaluates unscored scom>   // scoring kernel
//	idx := state.ImproveTargets(scom)  // which offspring get local search
//	<driver runs local search>         // improve kernel, updates scom
//	state.Integrate(scom)              // Include (host side)
//
// before which the driver evaluates Seed() and installs it with Begin().
type SpotState interface {
	// Seed returns the unscored initial population (Initialize). Called
	// exactly once, before Begin.
	Seed() Population
	// Begin installs the evaluated initial population.
	Begin(pop Population)
	// Propose returns Scom: the offspring for this generation. Elements
	// may be unscored (the driver will evaluate them) or carry scores
	// (e.g. M4 re-proposes its scored population for pure local search).
	Propose() Population
	// ImproveTargets returns the indices in scom to run local search on.
	ImproveTargets(scom Population) []int
	// Integrate merges the evaluated (and possibly improved) offspring
	// into the population (Include).
	Integrate(scom Population)
	// Population returns the current population S.
	Population() Population
	// Done reports whether the End condition holds after gen completed
	// generations.
	Done(gen int) bool
	// Best returns the best individual found so far.
	Best() conformation.Conformation
}

// bestOf returns the better of two conformations.
func bestOf(a, b conformation.Conformation) conformation.Conformation {
	if b.Better(a) {
		return b
	}
	return a
}

// elitist returns the best n individuals of the union of a and b: the
// first n elements of a stable best-first sort of a followed by b.
func elitist(a, b Population, n int) Population {
	return elitistInto(nil, a, b, n)
}

// elitistInto is elitist writing into dst's backing array (grown as
// needed), the form per-spot states use so the per-generation Include
// phase reuses one buffer instead of reallocating.
//
// It requires a to already be sorted best-first — every caller maintains
// that invariant between generations — so b is sorted through an index
// permutation (16-byte key moves instead of whole-conformation moves) and
// the two halves are merged, ties taking a's element first: exactly the
// order a full stable sort of the concatenation would produce, at a
// fraction of the copying. dst must not alias a or b.
func elitistInto(dst, a, b Population, n int) Population {
	ord := make([]int32, len(b))
	for i := range ord {
		ord[i] = int32(i)
	}
	// Best-first; the index tie-break reproduces a stable sort of b.
	slices.SortFunc(ord, func(x, y int32) int {
		switch {
		case b[x].Score < b[y].Score:
			return -1
		case b[y].Score < b[x].Score:
			return 1
		}
		return int(x - y)
	})
	if total := len(a) + len(b); n > total {
		n = total
	}
	if cap(dst) < n {
		dst = make(Population, 0, n)
	}
	dst = dst[:0]
	i, j := 0, 0
	for len(dst) < n {
		switch {
		case i >= len(a):
			dst = append(dst, b[ord[j]])
			j++
		case j >= len(b):
			dst = append(dst, a[i])
			i++
		case b[ord[j]].Score < a[i].Score:
			dst = append(dst, b[ord[j]])
			j++
		default:
			dst = append(dst, a[i])
			i++
		}
	}
	return dst
}
