package metaheuristic

import (
	"slices"

	"github.com/metascreen/metascreen/internal/conformation"
)

// Genetic is a population-based metaheuristic in the style of the paper's
// M1: tournament selection from the best individuals, blend recombination,
// optional local search on a fraction of offspring, and elitist inclusion.
type Genetic struct {
	name   string
	params Params
	// tournament is the tournament size for parent selection.
	tournament int
	// mutation is the probability an offspring is additionally perturbed
	// (classic GA mutation, one sampler move).
	mutation float64
}

// NewGenetic returns a genetic algorithm with the given parameters.
func NewGenetic(name string, p Params) (*Genetic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Genetic{name: name, params: p, tournament: 3, mutation: 0.1}, nil
}

// Name implements Algorithm.
func (g *Genetic) Name() string { return g.name }

// Params implements Algorithm.
func (g *Genetic) Params() Params { return g.params }

// NewSpotState implements Algorithm.
func (g *Genetic) NewSpotState(ctx *SpotContext) SpotState {
	return &geneticState{alg: g, ctx: ctx}
}

type geneticState struct {
	alg *Genetic
	ctx *SpotContext
	pop Population
	gen int
	// scom and spare are per-generation buffers reused across generations
	// (offspring and elitist output respectively).
	scom  Population
	spare Population
}

func (s *geneticState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *geneticState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.pop.SortByScore()
}

func (s *geneticState) Propose() Population {
	r := s.ctx.RNG
	p := s.alg.params
	// Select: the best SelectFraction of S form the mating pool (Ssel).
	// s.pop is kept sorted best-first by Begin and Integrate, so selection
	// is a prefix view — no per-generation clone or re-sort.
	nsel := int(float64(len(s.pop))*p.SelectFraction + 0.5)
	if nsel < 2 {
		nsel = min(2, len(s.pop))
	}
	pool := s.pop[:nsel]

	// Combine: tournament-pick parent pairs and blend them.
	if cap(s.scom) < p.PopulationPerSpot {
		s.scom = make(Population, 0, p.PopulationPerSpot)
	}
	scom := s.scom[:0]
	pick := func() int {
		best := r.Intn(len(pool))
		for t := 1; t < s.alg.tournament; t++ {
			if c := r.Intn(len(pool)); pool[c].Score < pool[best].Score {
				best = c
			}
		}
		return best
	}
	for len(scom) < p.PopulationPerSpot {
		a, b := pick(), pick()
		child := s.ctx.Sampler.Combine(r, pool[a], pool[b])
		if r.Bool(s.alg.mutation) {
			child = s.ctx.Sampler.Perturb(r, child, p.moveScale())
		}
		scom = append(scom, child)
	}
	s.scom = scom
	return scom
}

func (s *geneticState) ImproveTargets(scom Population) []int {
	return improveFraction(scom, s.alg.params.ImproveFraction)
}

func (s *geneticState) Integrate(scom Population) {
	s.spare = elitistInto(s.spare, s.pop, scom, s.alg.params.PopulationPerSpot)
	s.pop, s.spare = s.spare, s.pop
	s.gen++
}

func (s *geneticState) Population() Population { return s.pop }

func (s *geneticState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *geneticState) Best() conformation.Conformation {
	if i := s.pop.Best(); i >= 0 {
		return s.pop[i]
	}
	return conformation.Conformation{Score: conformation.Unscored}
}

// improveFraction returns the indices of the best frac*len(scom) evaluated
// individuals (rounded to nearest, deterministic order).
func improveFraction(scom Population, frac float64) []int {
	if frac <= 0 || len(scom) == 0 {
		return nil
	}
	n := int(float64(len(scom))*frac + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(scom) {
		n = len(scom)
	}
	order := make([]int, len(scom))
	for i := range order {
		order[i] = i
	}
	// Best-first by score; unevaluated last; ties by index. The index
	// tie-break makes the order total, so the non-stable generic sort
	// reproduces the stable one without reflection overhead.
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case scom[a].Score < scom[b].Score:
			return -1
		case scom[b].Score < scom[a].Score:
			return 1
		}
		return a - b
	})
	return order[:n]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
