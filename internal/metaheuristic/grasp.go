package metaheuristic

import "github.com/metascreen/metascreen/internal/conformation"

// GRASP implements a Greedy Randomized Adaptive Search Procedure (listed
// in the paper's section 2.2), adapted to continuous pose space: each
// generation constructs candidate poses semi-greedily — with probability
// Greediness near a uniformly chosen elite solution, otherwise uniformly in
// the spot region (the restricted-candidate-list analogue) — applies local
// search to all of them, and keeps the best solutions as the elite set.
type GRASP struct {
	name   string
	params Params
	// Greediness is the probability a construction starts from an elite
	// solution rather than from scratch.
	Greediness float64
	// EliteSize is the number of retained elite solutions.
	EliteSize int
}

// NewGRASP returns a GRASP algorithm with the given parameters.
func NewGRASP(name string, p Params) (*GRASP, error) {
	if p.SelectFraction == 0 {
		p.SelectFraction = 1
	}
	if p.ImproveFraction == 0 {
		p.ImproveFraction = 1
	}
	if p.ImproveMoves == 0 {
		p.ImproveMoves = 4
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	elite := p.PopulationPerSpot / 4
	if elite < 1 {
		elite = 1
	}
	return &GRASP{name: name, params: p, Greediness: 0.5, EliteSize: elite}, nil
}

// Name implements Algorithm.
func (g *GRASP) Name() string { return g.name }

// Params implements Algorithm.
func (g *GRASP) Params() Params { return g.params }

// NewSpotState implements Algorithm.
func (g *GRASP) NewSpotState(ctx *SpotContext) SpotState {
	return &graspState{alg: g, ctx: ctx}
}

type graspState struct {
	alg   *GRASP
	ctx   *SpotContext
	elite Population
	best  conformation.Conformation
}

func (s *graspState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *graspState) Begin(pop Population) {
	sorted := pop.Clone()
	sorted.SortByScore()
	n := s.alg.EliteSize
	if n > len(sorted) {
		n = len(sorted)
	}
	s.elite = sorted[:n].Clone()
	s.best = conformation.Conformation{Score: conformation.Unscored}
	if i := sorted.Best(); i >= 0 {
		s.best = sorted[i]
	}
}

// Propose is the construction phase.
func (s *graspState) Propose() Population {
	r := s.ctx.RNG
	scom := make(Population, s.alg.params.PopulationPerSpot)
	for i := range scom {
		if len(s.elite) > 0 && r.Bool(s.alg.Greediness) {
			// Semi-greedy: restart near a random elite solution.
			seed := s.elite[r.Intn(len(s.elite))]
			scom[i] = s.ctx.Sampler.Perturb(r, seed, conformation.MoveScale{
				MaxTranslate: 2.0, MaxRotate: 0.8,
			})
		} else {
			scom[i] = s.ctx.Sampler.Random(r)
		}
	}
	return scom
}

// ImproveTargets: GRASP local-searches every construction.
func (s *graspState) ImproveTargets(scom Population) []int {
	idx := make([]int, len(scom))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Integrate refreshes the elite set.
func (s *graspState) Integrate(scom Population) {
	s.elite = elitist(s.elite, scom, s.alg.EliteSize)
	for _, c := range scom {
		s.best = bestOf(s.best, c)
	}
}

// Population returns the elite set (the retained solutions).
func (s *graspState) Population() Population { return s.elite }

func (s *graspState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *graspState) Best() conformation.Conformation { return s.best }
