package metaheuristic

import "testing"

func TestPaperConfigsMatchTable4(t *testing.T) {
	// Table 4 of the paper.
	cases := []struct {
		name       string
		pop        int
		selectFrac float64
		improve    float64
	}{
		{"M1", 64, 1.0, 0},
		{"M2", 64, 1.0, 1.0},
		{"M3", 64, 1.0, 0.20},
		{"M4", 1024, 1.0, 1.0},
	}
	for _, c := range cases {
		alg, err := NewPaper(c.name, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		p := alg.Params()
		if p.PopulationPerSpot != c.pop {
			t.Errorf("%s population = %d, want %d", c.name, p.PopulationPerSpot, c.pop)
		}
		if p.SelectFraction != c.selectFrac {
			t.Errorf("%s select fraction = %g, want %g", c.name, p.SelectFraction, c.selectFrac)
		}
		if p.ImproveFraction != c.improve {
			t.Errorf("%s improve fraction = %g, want %g", c.name, p.ImproveFraction, c.improve)
		}
	}
}

func TestPaperWorkloadRatios(t *testing.T) {
	// The derived budgets must reproduce the invariant evaluation-count
	// ratios of the paper's tables: M1:M2:M3:M4 ~ 2 : 3.2 : 1 : 99.
	evals := func(name string) float64 {
		alg, err := NewPaper(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := alg.Params()
		perGen := float64(p.PopulationPerSpot) *
			(1 + p.ImproveFraction*float64(p.ImproveMoves))
		return float64(p.Generations) * perGen
	}
	m1, m2, m3, m4 := evals("M1"), evals("M2"), evals("M3"), evals("M4")
	check := func(name string, got, want, tol float64) {
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Errorf("%s ratio = %.2f, want ~%.2f", name, got, want)
		}
	}
	check("M1/M3", m1/m3, 2.0, 0.10)
	check("M2/M3", m2/m3, 3.2, 0.10)
	check("M4/M3", m4/m3, 99.0, 0.10)
}

func TestM4IsSingleStep(t *testing.T) {
	alg, err := NewPaper("M4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Params().Generations != 1 {
		t.Errorf("M4 generations = %d, want 1", alg.Params().Generations)
	}
}

func TestNewPaperRejectsBadInput(t *testing.T) {
	if _, err := NewPaper("M9", 1); err == nil {
		t.Error("unknown metaheuristic accepted")
	}
	if _, err := NewPaper("M1", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewPaper("M1", 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestScaledConfigsAreSmaller(t *testing.T) {
	full, err := NewPaper("M2", 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewPaper("M2", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Params().PopulationPerSpot >= full.Params().PopulationPerSpot {
		t.Error("scaled population not smaller")
	}
	if small.Params().Generations >= full.Params().Generations {
		t.Error("scaled generations not smaller")
	}
	if small.Params().PopulationPerSpot < 1 || small.Params().Generations < 1 {
		t.Error("scaled budgets below 1")
	}
}

func TestPaperNames(t *testing.T) {
	names := PaperNames()
	if len(names) != 4 || names[0] != "M1" || names[3] != "M4" {
		t.Errorf("PaperNames = %v", names)
	}
	for _, n := range names {
		if _, err := NewPaper(n, 1); err != nil {
			t.Errorf("NewPaper(%s): %v", n, err)
		}
	}
}
