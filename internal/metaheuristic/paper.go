package metaheuristic

import "fmt"

// This file defines the four metaheuristic configurations of the paper's
// Table 4 at two scales:
//
//   - Paper scale: the population sizes of Table 4 plus the generation and
//     local-search budgets DESIGN.md derives from the invariant time ratios
//     across the paper's result tables (M1:M2:M3:M4 ~ 2:3.2:1:99). Used by
//     the Modeled-mode table harness.
//   - A caller-chosen Scale in (0, 1] shrinks population and budgets for
//     Real-mode tests, examples and benchmarks.

// Paper-scale template budgets (see DESIGN.md, "Workload calibration").
const (
	paperPopM13       = 64   // M1-M3 population per spot (Table 4)
	paperPopM4        = 1024 // M4 population per spot (Table 4)
	paperGenM1        = 660  // GA runs ~4.4x more generations than M2/M3
	paperGenM23       = 150
	paperImproveMoves = 6    // local-search moves per improved element (M2/M3)
	paperM4Moves      = 2046 // M4's intensive local search
)

// scalei scales an integer budget, minimum 1.
func scalei(v int, scale float64) int {
	s := int(float64(v)*scale + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// M1Params returns the paper's M1 row of Table 4 scaled by scale (1 = paper
// scale): a 64-individual genetic algorithm with no local search.
func M1Params(scale float64) Params {
	return Params{
		PopulationPerSpot: scalei(paperPopM13, scale),
		SelectFraction:    1.0,
		ImproveFraction:   0,
		ImproveMoves:      0,
		Generations:       scalei(paperGenM1, scale),
	}
}

// M2Params returns the paper's M2: scatter search with local search on all
// offspring.
func M2Params(scale float64) Params {
	return Params{
		PopulationPerSpot: scalei(paperPopM13, scale),
		SelectFraction:    1.0,
		ImproveFraction:   1.0,
		ImproveMoves:      paperImproveMoves,
		Generations:       scalei(paperGenM23, scale),
	}
}

// M3Params returns the paper's M3: as M2 with local search on 20% of
// offspring.
func M3Params(scale float64) Params {
	p := M2Params(scale)
	p.ImproveFraction = 0.20
	return p
}

// M4Params returns the paper's M4: one step of intensive local search over
// a 1024-individual set.
func M4Params(scale float64) Params {
	return Params{
		PopulationPerSpot: scalei(paperPopM4, scale),
		SelectFraction:    1.0,
		ImproveFraction:   1.0,
		ImproveMoves:      scalei(paperM4Moves, scale),
		Generations:       1,
	}
}

// NewPaper constructs one of the paper's four metaheuristics ("M1".."M4")
// at the given scale (1 = paper scale).
func NewPaper(name string, scale float64) (Algorithm, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("metaheuristic: scale %g outside (0, 1]", scale)
	}
	switch name {
	case "M1":
		return NewGenetic("M1", M1Params(scale))
	case "M2":
		return NewScatterSearch("M2", M2Params(scale))
	case "M3":
		return NewScatterSearch("M3", M3Params(scale))
	case "M4":
		return NewLocalSearch("M4", M4Params(scale))
	}
	return nil, fmt.Errorf("metaheuristic: unknown paper metaheuristic %q (want M1..M4)", name)
}

// PaperNames lists the paper's metaheuristics in table order.
func PaperNames() []string { return []string{"M1", "M2", "M3", "M4"} }
