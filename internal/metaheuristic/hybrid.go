package metaheuristic

import (
	"math"

	"github.com/metascreen/metascreen/internal/conformation"
)

// AnnealedGenetic is a hybridization of two basic metaheuristics (the
// paper's introduction: "hybridations of basic metaheuristics"): genetic
// recombination generates offspring, but inclusion follows simulated
// annealing — each offspring challenges a population slot and wins by the
// Metropolis criterion under a cooling temperature. Early generations
// accept freely (diversification); late generations become elitist
// (intensification).
type AnnealedGenetic struct {
	name   string
	params Params
	// T0 and Cooling define the geometric temperature schedule.
	T0      float64
	Cooling float64
	// tournament is the parent-selection tournament size.
	tournament int
}

// NewAnnealedGenetic returns the GA x SA hybrid.
func NewAnnealedGenetic(name string, p Params) (*AnnealedGenetic, error) {
	if p.SelectFraction == 0 {
		p.SelectFraction = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &AnnealedGenetic{
		name: name, params: p,
		T0: 5.0, Cooling: 0.92, tournament: 3,
	}, nil
}

// Name implements Algorithm.
func (a *AnnealedGenetic) Name() string { return a.name }

// Params implements Algorithm.
func (a *AnnealedGenetic) Params() Params { return a.params }

// NewSpotState implements Algorithm.
func (a *AnnealedGenetic) NewSpotState(ctx *SpotContext) SpotState {
	return &annealedGeneticState{alg: a, ctx: ctx, temp: a.T0}
}

type annealedGeneticState struct {
	alg  *AnnealedGenetic
	ctx  *SpotContext
	pop  Population
	temp float64
	best conformation.Conformation
}

func (s *annealedGeneticState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *annealedGeneticState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.best = conformation.Conformation{Score: conformation.Unscored}
	if i := s.pop.Best(); i >= 0 {
		s.best = s.pop[i]
	}
}

// Propose recombines tournament-selected parents, exactly like Genetic.
func (s *annealedGeneticState) Propose() Population {
	r := s.ctx.RNG
	p := s.alg.params
	pick := func() int {
		best := r.Intn(len(s.pop))
		for t := 1; t < s.alg.tournament; t++ {
			c := r.Intn(len(s.pop))
			if s.pop[c].Better(s.pop[best]) {
				best = c
			}
		}
		return best
	}
	scom := make(Population, 0, p.PopulationPerSpot)
	for len(scom) < p.PopulationPerSpot {
		a, b := pick(), pick()
		scom = append(scom, s.ctx.Sampler.Combine(r, s.pop[a], s.pop[b]))
	}
	return scom
}

func (s *annealedGeneticState) ImproveTargets(scom Population) []int {
	return improveFraction(scom, s.alg.params.ImproveFraction)
}

// Integrate is the annealing half: offspring i challenges population slot
// i and replaces it by the Metropolis rule.
func (s *annealedGeneticState) Integrate(scom Population) {
	r := s.ctx.RNG
	for i := range scom {
		if i >= len(s.pop) {
			break
		}
		delta := scom[i].Score - s.pop[i].Score
		if delta <= 0 || (s.temp > 0 && r.Float64() < math.Exp(-delta/s.temp)) {
			s.pop[i] = scom[i]
		}
		s.best = bestOf(s.best, scom[i])
	}
	s.temp *= s.alg.Cooling
}

func (s *annealedGeneticState) Population() Population { return s.pop }

func (s *annealedGeneticState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *annealedGeneticState) Best() conformation.Conformation { return s.best }
