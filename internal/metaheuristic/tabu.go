package metaheuristic

import (
	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/vec"
)

// TabuSearch is a neighbourhood metaheuristic extension: each walker keeps
// a short-term memory of recently visited translations and rejects moves
// that return within tabuRadius of a remembered position, unless the move
// improves on the best solution found so far (the aspiration criterion).
type TabuSearch struct {
	name   string
	params Params
	// Tenure is the tabu-list length per walker.
	Tenure int
	// TabuRadius is the exclusion radius in angstroms.
	TabuRadius float64
}

// NewTabuSearch returns a tabu-search algorithm with the given parameters.
func NewTabuSearch(name string, p Params) (*TabuSearch, error) {
	if p.SelectFraction == 0 {
		p.SelectFraction = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &TabuSearch{name: name, params: p, Tenure: 12, TabuRadius: 0.5}, nil
}

// Name implements Algorithm.
func (t *TabuSearch) Name() string { return t.name }

// Params implements Algorithm.
func (t *TabuSearch) Params() Params { return t.params }

// NewSpotState implements Algorithm.
func (t *TabuSearch) NewSpotState(ctx *SpotContext) SpotState {
	return &tabuState{alg: t, ctx: ctx}
}

type tabuState struct {
	alg  *TabuSearch
	ctx  *SpotContext
	pop  Population
	tabu [][]vec.V3 // per-walker ring of recent translations
	best conformation.Conformation
}

func (s *tabuState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *tabuState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.tabu = make([][]vec.V3, len(s.pop))
	s.best = conformation.Conformation{Score: conformation.Unscored}
	if i := s.pop.Best(); i >= 0 {
		s.best = s.pop[i]
	}
}

func (s *tabuState) Propose() Population {
	scom := make(Population, len(s.pop))
	for i, w := range s.pop {
		scom[i] = s.ctx.Sampler.Perturb(s.ctx.RNG, w, s.alg.params.moveScale())
	}
	return scom
}

func (s *tabuState) ImproveTargets(Population) []int { return nil }

// isTabu reports whether pos is inside the exclusion radius of any
// remembered position for walker i.
func (s *tabuState) isTabu(i int, pos vec.V3) bool {
	r2 := s.alg.TabuRadius * s.alg.TabuRadius
	for _, p := range s.tabu[i] {
		if p.Dist2(pos) < r2 {
			return true
		}
	}
	return false
}

func (s *tabuState) remember(i int, pos vec.V3) {
	s.tabu[i] = append(s.tabu[i], pos)
	if len(s.tabu[i]) > s.alg.Tenure {
		s.tabu[i] = s.tabu[i][1:]
	}
}

// Integrate accepts each walker's move unless it is tabu; aspiration
// overrides the tabu status for new global bests. Tabu search always moves
// (even uphill) when the move is admissible — that is its escape mechanism.
func (s *tabuState) Integrate(scom Population) {
	for i := range scom {
		if i >= len(s.pop) {
			break
		}
		cand := scom[i]
		aspires := cand.Better(s.best)
		if aspires || !s.isTabu(i, cand.Translation) {
			s.remember(i, s.pop[i].Translation)
			s.pop[i] = cand
		}
		s.best = bestOf(s.best, cand)
	}
}

func (s *tabuState) Population() Population { return s.pop }

func (s *tabuState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *tabuState) Best() conformation.Conformation { return s.best }
