package metaheuristic

import "github.com/metascreen/metascreen/internal/conformation"

// LocalSearch is the paper's M4: a pure neighbourhood metaheuristic that
// applies one step of intensive local search to every element of a large
// initial set ("only one step, and so there is no selection of elements
// after improving").
type LocalSearch struct {
	name   string
	params Params
}

// NewLocalSearch returns the neighbourhood metaheuristic. Generations is
// forced to 1 (M4 applies a single step) and ImproveFraction to 1.
func NewLocalSearch(name string, p Params) (*LocalSearch, error) {
	p.Generations = 1
	p.ImproveFraction = 1
	if p.SelectFraction == 0 {
		p.SelectFraction = 1 // "does not apply" in the paper's Table 4
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &LocalSearch{name: name, params: p}, nil
}

// Name implements Algorithm.
func (l *LocalSearch) Name() string { return l.name }

// Params implements Algorithm.
func (l *LocalSearch) Params() Params { return l.params }

// NewSpotState implements Algorithm.
func (l *LocalSearch) NewSpotState(ctx *SpotContext) SpotState {
	return &localSearchState{alg: l, ctx: ctx}
}

type localSearchState struct {
	alg *LocalSearch
	ctx *SpotContext
	pop Population
	// scom is the reused proposal buffer (a working copy of pop the
	// driver's improve kernel mutates in place).
	scom Population
}

func (s *localSearchState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *localSearchState) Begin(pop Population) { s.pop = pop.Clone() }

// Propose hands the whole (already scored) population to the driver; the
// generation's only work is the improve kernel.
func (s *localSearchState) Propose() Population {
	if cap(s.scom) < len(s.pop) {
		s.scom = make(Population, len(s.pop))
	}
	s.scom = s.scom[:len(s.pop)]
	copy(s.scom, s.pop)
	return s.scom
}

func (s *localSearchState) ImproveTargets(scom Population) []int {
	idx := make([]int, len(scom))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Integrate keeps the element-wise better of the original and improved
// individual: local search never worsens a solution.
func (s *localSearchState) Integrate(scom Population) {
	for i := range scom {
		if i < len(s.pop) && scom[i].Score < s.pop[i].Score {
			s.pop[i] = scom[i]
		}
	}
}

func (s *localSearchState) Population() Population { return s.pop }

func (s *localSearchState) Done(gen int) bool { return gen >= 1 }

func (s *localSearchState) Best() conformation.Conformation {
	if i := s.pop.Best(); i >= 0 {
		return s.pop[i]
	}
	return conformation.Conformation{Score: conformation.Unscored}
}
