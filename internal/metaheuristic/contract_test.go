package metaheuristic

import (
	"testing"

	"github.com/metascreen/metascreen/internal/vec"
)

// allContractAlgorithms builds every algorithm family with comparable
// parameters for the protocol contract test.
func allContractAlgorithms(t *testing.T) []Algorithm {
	t.Helper()
	p := Params{
		PopulationPerSpot: 18,
		SelectFraction:    1,
		ImproveFraction:   0.5,
		ImproveMoves:      3,
		Generations:       12,
	}
	var algs []Algorithm
	add := func(a Algorithm, err error) {
		if err != nil {
			t.Fatal(err)
		}
		algs = append(algs, a)
	}
	add(NewGenetic("ga", p))
	add(NewScatterSearch("ss", p))
	lsP := p
	lsP.ImproveMoves = 6
	add(NewLocalSearch("ls", lsP))
	add(NewSimulatedAnnealing("sa", p))
	add(NewTabuSearch("tabu", p))
	add(NewParticleSwarm("pso", p))
	add(NewVariableNeighborhood("vns", p))
	add(NewGRASP("grasp", p))
	add(NewAnnealedGenetic("ga-sa", p))
	return algs
}

// TestSpotStateContract drives every algorithm through the full driver
// protocol and checks the invariants the engine relies on:
//
//  1. Seed returns exactly PopulationPerSpot unscored individuals.
//  2. Propose returns a non-empty offspring set whose unscored members
//     the driver can evaluate.
//  3. ImproveTargets only returns valid indices, each at most once.
//  4. Integrate never grows the population without bound.
//  5. Best is monotone non-increasing and always evaluated after Begin.
//  6. Done eventually holds at the configured generation budget.
//  7. Every pose stays inside the sampler's region.
func TestSpotStateContract(t *testing.T) {
	for _, alg := range allContractAlgorithms(t) {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			ctx := testCtx(401)
			eval := quadraticEval{target: ctx.Spot.Center.Add(vec.New(2, 1, 0))}
			state := alg.NewSpotState(ctx)

			seed := state.Seed()
			if len(seed) != alg.Params().PopulationPerSpot {
				t.Fatalf("Seed returned %d, want %d", len(seed), alg.Params().PopulationPerSpot)
			}
			for i := range seed {
				if seed[i].Evaluated() {
					t.Fatalf("seed %d pre-scored", i)
				}
				if !ctx.Sampler.Contains(seed[i]) {
					t.Fatalf("seed %d outside region", i)
				}
				seed[i].Score = eval.score(seed[i])
			}
			state.Begin(seed)
			if !state.Best().Evaluated() {
				t.Fatal("Best unevaluated after Begin")
			}

			prevBest := state.Best().Score
			maxPop := 4 * alg.Params().PopulationPerSpot
			gen := 0
			for ; gen < 1000 && !state.Done(gen); gen++ {
				scom := state.Propose()
				if len(scom) == 0 {
					t.Fatalf("gen %d: empty proposal", gen)
				}
				for i := range scom {
					if !scom[i].Evaluated() {
						scom[i].Score = eval.score(scom[i])
					}
					if !ctx.Sampler.Contains(scom[i]) {
						t.Fatalf("gen %d: proposal %d outside region", gen, i)
					}
				}
				seen := map[int]bool{}
				for _, ti := range state.ImproveTargets(scom) {
					if ti < 0 || ti >= len(scom) {
						t.Fatalf("gen %d: improve target %d out of range", gen, ti)
					}
					if seen[ti] {
						t.Fatalf("gen %d: duplicate improve target %d", gen, ti)
					}
					seen[ti] = true
				}
				state.Integrate(scom)
				if got := len(state.Population()); got > maxPop {
					t.Fatalf("gen %d: population grew to %d", gen, got)
				}
				if cur := state.Best().Score; cur > prevBest+1e-12 {
					t.Fatalf("gen %d: Best worsened %v -> %v", gen, prevBest, cur)
				} else {
					prevBest = cur
				}
			}
			if gen >= 1000 {
				t.Fatal("Done never held")
			}
			if gen != alg.Params().Generations {
				t.Errorf("stopped after %d generations, params say %d", gen, alg.Params().Generations)
			}
		})
	}
}
