package metaheuristic

import (
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/vec"
)

func benchCtx() *SpotContext {
	spot := surface.Spot{Center: vec.New(20, 0, 0), Normal: vec.New(1, 0, 0), Radius: 10}
	return &SpotContext{
		Spot:    spot,
		Sampler: conformation.NewSampler(spot, 2),
		RNG:     rng.New(1),
	}
}

// benchPropose measures one generation of host-side Select+Combine, the
// serial fraction of the paper's scheme.
func benchPropose(b *testing.B, alg Algorithm) {
	b.Helper()
	state := alg.NewSpotState(benchCtx())
	seed := state.Seed()
	for i := range seed {
		seed[i].Score = float64(i)
	}
	state.Begin(seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scom := state.Propose()
		for j := range scom {
			if !scom[j].Evaluated() {
				scom[j].Score = float64(j)
			}
		}
		state.Integrate(scom)
	}
}

func BenchmarkGeneticGeneration(b *testing.B) {
	alg, err := NewGenetic("ga", M1Params(1))
	if err != nil {
		b.Fatal(err)
	}
	benchPropose(b, alg)
}

func BenchmarkScatterGeneration(b *testing.B) {
	alg, err := NewScatterSearch("ss", M2Params(1))
	if err != nil {
		b.Fatal(err)
	}
	benchPropose(b, alg)
}

func BenchmarkAnnealingGeneration(b *testing.B) {
	alg, err := NewSimulatedAnnealing("sa", extParams())
	if err != nil {
		b.Fatal(err)
	}
	benchPropose(b, alg)
}

func BenchmarkPSOGeneration(b *testing.B) {
	alg, err := NewParticleSwarm("pso", extParams())
	if err != nil {
		b.Fatal(err)
	}
	benchPropose(b, alg)
}
