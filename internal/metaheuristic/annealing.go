package metaheuristic

import (
	"math"

	"github.com/metascreen/metascreen/internal/conformation"
)

// SimulatedAnnealing is a neighbourhood metaheuristic extension (the paper
// lists it in section 2.2): a set of independent walkers per spot, each
// proposing one perturbation per generation and accepting it by the
// Metropolis criterion under a geometric cooling schedule.
type SimulatedAnnealing struct {
	name   string
	params Params
	// T0 is the initial temperature in score units; Cooling the geometric
	// factor applied per generation.
	T0      float64
	Cooling float64
}

// NewSimulatedAnnealing returns a simulated-annealing algorithm. The walker
// count is Params.PopulationPerSpot.
func NewSimulatedAnnealing(name string, p Params) (*SimulatedAnnealing, error) {
	if p.SelectFraction == 0 {
		p.SelectFraction = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &SimulatedAnnealing{name: name, params: p, T0: 5.0, Cooling: 0.95}, nil
}

// Name implements Algorithm.
func (a *SimulatedAnnealing) Name() string { return a.name }

// Params implements Algorithm.
func (a *SimulatedAnnealing) Params() Params { return a.params }

// NewSpotState implements Algorithm.
func (a *SimulatedAnnealing) NewSpotState(ctx *SpotContext) SpotState {
	return &annealState{alg: a, ctx: ctx, temp: a.T0}
}

type annealState struct {
	alg  *SimulatedAnnealing
	ctx  *SpotContext
	pop  Population // current walkers
	best conformation.Conformation
	temp float64
}

func (s *annealState) Seed() Population {
	n := s.alg.params.PopulationPerSpot
	pop := make(Population, n)
	for i := range pop {
		pop[i] = s.ctx.Sampler.Random(s.ctx.RNG)
	}
	return pop
}

func (s *annealState) Begin(pop Population) {
	s.pop = pop.Clone()
	s.best = conformation.Conformation{Score: conformation.Unscored}
	if i := s.pop.Best(); i >= 0 {
		s.best = s.pop[i]
	}
}

// Propose perturbs every walker (Select = identity, Combine = neighbourhood
// move).
func (s *annealState) Propose() Population {
	scom := make(Population, len(s.pop))
	for i, w := range s.pop {
		scom[i] = s.ctx.Sampler.Perturb(s.ctx.RNG, w, s.alg.params.moveScale())
	}
	return scom
}

// ImproveTargets: annealing has no inner local search; the walk itself is
// the search.
func (s *annealState) ImproveTargets(Population) []int { return nil }

// Integrate applies the Metropolis criterion per walker and cools.
func (s *annealState) Integrate(scom Population) {
	r := s.ctx.RNG
	for i := range scom {
		if i >= len(s.pop) {
			break
		}
		delta := scom[i].Score - s.pop[i].Score
		if delta <= 0 || (s.temp > 0 && r.Float64() < math.Exp(-delta/s.temp)) {
			s.pop[i] = scom[i]
		}
		s.best = bestOf(s.best, scom[i])
	}
	s.temp *= s.alg.Cooling
}

func (s *annealState) Population() Population { return s.pop }

func (s *annealState) Done(gen int) bool { return gen >= s.alg.params.Generations }

func (s *annealState) Best() conformation.Conformation { return s.best }
