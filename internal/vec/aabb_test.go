package vec

import (
	"testing"
	"testing/quick"
)

func TestAABBEmpty(t *testing.T) {
	var b AABB
	if !b.Empty() {
		t.Error("zero AABB not empty")
	}
	if b.Volume() != 0 || b.Size() != Zero || b.Center() != Zero {
		t.Error("empty box has nonzero extent")
	}
	if b.Contains(Zero) {
		t.Error("empty box contains a point")
	}
}

func TestAABBExtend(t *testing.T) {
	var b AABB
	b.Extend(New(1, 1, 1))
	if b.Empty() {
		t.Fatal("box still empty after Extend")
	}
	if !b.Contains(New(1, 1, 1)) {
		t.Error("box does not contain its seed point")
	}
	b.Extend(New(-1, 3, 0))
	if b.Lo != New(-1, 1, 0) || b.Hi != New(1, 3, 1) {
		t.Errorf("bounds = %v..%v", b.Lo, b.Hi)
	}
}

func TestAABBNewOrdersCorners(t *testing.T) {
	b := NewAABB(New(2, -1, 5), New(-2, 1, 3))
	if b.Lo != New(-2, -1, 3) || b.Hi != New(2, 1, 5) {
		t.Errorf("bounds = %v..%v", b.Lo, b.Hi)
	}
}

func TestAABBPadVolume(t *testing.T) {
	b := NewAABB(Zero, New(1, 1, 1))
	p := b.Pad(1)
	if p.Volume() != 27 {
		t.Errorf("padded volume = %v, want 27", p.Volume())
	}
	var e AABB
	if !e.Pad(5).Empty() {
		t.Error("padding an empty box produced a non-empty box")
	}
}

func TestAABBExtendBox(t *testing.T) {
	a := NewAABB(Zero, New(1, 1, 1))
	b := NewAABB(New(2, 2, 2), New(3, 3, 3))
	a.ExtendBox(b)
	if a.Hi != New(3, 3, 3) {
		t.Errorf("Hi = %v", a.Hi)
	}
	var e AABB
	a.ExtendBox(e) // extending by empty box is a no-op
	if a.Hi != New(3, 3, 3) || a.Lo != Zero {
		t.Error("extending by empty box changed bounds")
	}
}

func TestAABBMetrics(t *testing.T) {
	b := NewAABB(Zero, New(3, 4, 0))
	if b.Diagonal() != 5 {
		t.Errorf("Diagonal = %v", b.Diagonal())
	}
	if b.MaxEdge() != 4 {
		t.Errorf("MaxEdge = %v", b.MaxEdge())
	}
	if b.Center() != New(1.5, 2, 0) {
		t.Errorf("Center = %v", b.Center())
	}
}

func TestQuickBoundPointsContainsAll(t *testing.T) {
	f := func(pts []V3) bool {
		for i := range pts {
			pts[i] = clampV(pts[i])
		}
		b := BoundPoints(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
