package vec

import "math"

// Mat3 is a 3x3 matrix in row-major order.
type Mat3 [9]float64

// IdentityMat3 returns the identity matrix.
func IdentityMat3() Mat3 { return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} }

// MulV applies m to v.
func (m Mat3) MulV(v V3) V3 {
	return V3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Mul returns the matrix product m*n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*i+k] * n[3*k+j]
			}
			r[3*i+j] = s
		}
	}
	return r
}

// Transpose returns the transpose of m.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Trace returns the trace of m.
func (m Mat3) Trace() float64 { return m[0] + m[4] + m[8] }

// ApproxEq reports whether m and n differ by at most eps in every entry.
func (m Mat3) ApproxEq(n Mat3, eps float64) bool {
	for i := range m {
		if math.Abs(m[i]-n[i]) > eps {
			return false
		}
	}
	return true
}
