package vec

// SoA is a structure-of-arrays coordinate buffer: the same points as a
// []V3, but with each component contiguous. The scoring kernels in
// internal/forcefield stream these arrays the way the paper's CUDA kernels
// stream shared memory, and reusing one SoA across calls keeps the hot
// path allocation-free.
type SoA struct {
	X, Y, Z []float64
}

// NewSoA returns an SoA with capacity (and length) n.
func NewSoA(n int) *SoA {
	s := &SoA{}
	s.Resize(n)
	return s
}

// Len returns the number of points.
func (s *SoA) Len() int { return len(s.X) }

// Resize sets the length to n, growing the backing arrays only when the
// capacity is insufficient. Existing contents are preserved up to n.
func (s *SoA) Resize(n int) {
	if cap(s.X) < n {
		s.X = append(s.X[:cap(s.X)], make([]float64, n-cap(s.X))...)
		s.Y = append(s.Y[:cap(s.Y)], make([]float64, n-cap(s.Y))...)
		s.Z = append(s.Z[:cap(s.Z)], make([]float64, n-cap(s.Z))...)
	}
	s.X, s.Y, s.Z = s.X[:n], s.Y[:n], s.Z[:n]
}

// Set stores p at index i.
func (s *SoA) Set(i int, p V3) {
	s.X[i], s.Y[i], s.Z[i] = p.X, p.Y, p.Z
}

// At returns the point at index i.
func (s *SoA) At(i int) V3 { return V3{s.X[i], s.Y[i], s.Z[i]} }

// FromV3s resizes s to len(pts) and copies the points in.
func (s *SoA) FromV3s(pts []V3) {
	s.Resize(len(pts))
	for i, p := range pts {
		s.X[i], s.Y[i], s.Z[i] = p.X, p.Y, p.Z
	}
}
