package vec

import (
	"math"
	"testing"
)

func TestMat3Identity(t *testing.T) {
	id := IdentityMat3()
	v := New(1, 2, 3)
	if got := id.MulV(v); got != v {
		t.Errorf("I*v = %v", got)
	}
	if got := id.Det(); got != 1 {
		t.Errorf("det(I) = %v", got)
	}
	if got := id.Trace(); got != 3 {
		t.Errorf("tr(I) = %v", got)
	}
}

func TestMat3MulAssociates(t *testing.T) {
	a := QuatFromAxisAngle(New(1, 0, 0), 0.3).Mat3()
	b := QuatFromAxisAngle(New(0, 1, 0), 0.7).Mat3()
	c := QuatFromAxisAngle(New(0, 0, 1), 1.1).Mat3()
	l := a.Mul(b).Mul(c)
	r := a.Mul(b.Mul(c))
	if !l.ApproxEq(r, 1e-12) {
		t.Error("matrix multiplication not associative")
	}
}

func TestMat3TransposeIsInverseForRotations(t *testing.T) {
	m := QuatFromAxisAngle(New(1, 2, -1), 0.9).Mat3()
	if !m.Mul(m.Transpose()).ApproxEq(IdentityMat3(), 1e-12) {
		t.Error("R * R^T != I")
	}
}

func TestMat3Det(t *testing.T) {
	m := Mat3{2, 0, 0, 0, 3, 0, 0, 0, 4}
	if got := m.Det(); math.Abs(got-24) > 1e-12 {
		t.Errorf("det = %v, want 24", got)
	}
	singular := Mat3{1, 2, 3, 2, 4, 6, 0, 1, 0}
	if got := singular.Det(); math.Abs(got) > 1e-12 {
		t.Errorf("det of singular = %v", got)
	}
}
