package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func TestAddSub(t *testing.T) {
	v := New(1, 2, 3)
	w := New(4, -5, 6)
	if got := v.Add(w); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
}

func TestScaleNeg(t *testing.T) {
	v := New(1, -2, 3)
	if got := v.Scale(2); got != New(2, -4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != New(-1, 2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Dot(y); got != 0 {
		t.Errorf("x.y = %v", got)
	}
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Neg() {
		t.Errorf("y cross x = %v, want -z", got)
	}
}

func TestNormDist(t *testing.T) {
	v := New(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := v.Dist(New(0, 0, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := v.Dist2(New(3, 4, 12)); got != 144 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestUnit(t *testing.T) {
	v := New(0, 0, 9)
	if got := v.Unit(); !got.ApproxEq(New(0, 0, 1), eps) {
		t.Errorf("Unit = %v", got)
	}
	if got := Zero.Unit(); got != Zero {
		t.Errorf("Unit(0) = %v, want zero", got)
	}
}

func TestLerp(t *testing.T) {
	v := New(0, 0, 0)
	w := New(2, 4, 6)
	if got := v.Lerp(w, 0.5); got != New(1, 2, 3) {
		t.Errorf("Lerp = %v", got)
	}
	if got := v.Lerp(w, 0); got != v {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := v.Lerp(w, 1); got != w {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	v := New(1, -2, 3)
	w := New(-1, 2, 3)
	if got := v.Min(w); got != New(-1, -2, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(w); got != New(1, 2, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := v.Abs(); got != New(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestCentroid(t *testing.T) {
	pts := []V3{New(0, 0, 0), New(2, 0, 0), New(1, 3, 0)}
	if got := Centroid(pts); !got.ApproxEq(New(1, 1, 0), eps) {
		t.Errorf("Centroid = %v", got)
	}
	if got := Centroid(nil); got != Zero {
		t.Errorf("Centroid(nil) = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2, 3).String(); got == "" {
		t.Error("empty String()")
	}
}

// clampV keeps quick-generated vectors in a numerically tame range.
func clampV(v V3) V3 {
	c := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 1
		}
		return math.Mod(x, 1e3)
	}
	return V3{c(v.X), c(v.Y), c(v.Z)}
}

func TestQuickDotCommutes(t *testing.T) {
	f := func(a, b V3) bool {
		a, b = clampV(a), clampV(b)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossOrthogonal(t *testing.T) {
	f := func(a, b V3) bool {
		a, b = clampV(a), clampV(b)
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return math.Abs(c.Dot(a))/scale < 1e-6 && math.Abs(c.Dot(b))/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(a, b V3) bool {
		a, b = clampV(a), clampV(b)
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b V3) bool {
		a, b = clampV(a), clampV(b)
		return a.Add(b).Sub(b).ApproxEq(a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
