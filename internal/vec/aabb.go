package vec

import "math"

// AABB is an axis-aligned bounding box described by its minimum and maximum
// corners. The zero value is an "empty" box that Extend grows correctly.
type AABB struct {
	Lo, Hi V3
	valid  bool
}

// NewAABB returns the box spanning the two corners in any order.
func NewAABB(a, b V3) AABB {
	return AABB{Lo: a.Min(b), Hi: a.Max(b), valid: true}
}

// BoundPoints returns the tightest box containing all points; an empty slice
// yields an empty box.
func BoundPoints(pts []V3) AABB {
	var b AABB
	for _, p := range pts {
		b.Extend(p)
	}
	return b
}

// Empty reports whether the box contains no points.
func (b AABB) Empty() bool { return !b.valid }

// Extend grows b (in place) to include p.
func (b *AABB) Extend(p V3) {
	if !b.valid {
		b.Lo, b.Hi, b.valid = p, p, true
		return
	}
	b.Lo = b.Lo.Min(p)
	b.Hi = b.Hi.Max(p)
}

// ExtendBox grows b (in place) to include the box o.
func (b *AABB) ExtendBox(o AABB) {
	if o.Empty() {
		return
	}
	b.Extend(o.Lo)
	b.Extend(o.Hi)
}

// Pad returns b grown by r on every side. Padding an empty box returns an
// empty box.
func (b AABB) Pad(r float64) AABB {
	if !b.valid {
		return b
	}
	d := V3{r, r, r}
	return AABB{Lo: b.Lo.Sub(d), Hi: b.Hi.Add(d), valid: true}
}

// Size returns the edge lengths of b, zero for an empty box.
func (b AABB) Size() V3 {
	if !b.valid {
		return Zero
	}
	return b.Hi.Sub(b.Lo)
}

// Center returns the center of b, zero for an empty box.
func (b AABB) Center() V3 {
	if !b.valid {
		return Zero
	}
	return b.Lo.Add(b.Hi).Scale(0.5)
}

// Contains reports whether p lies inside b (inclusive).
func (b AABB) Contains(p V3) bool {
	return b.valid &&
		p.X >= b.Lo.X && p.X <= b.Hi.X &&
		p.Y >= b.Lo.Y && p.Y <= b.Hi.Y &&
		p.Z >= b.Lo.Z && p.Z <= b.Hi.Z
}

// Dist2ToPoint returns the squared distance from p to the closest point of
// b (0 when p is inside). The distance to an empty box is +Inf.
func (b AABB) Dist2ToPoint(p V3) float64 {
	if !b.valid {
		return math.Inf(1)
	}
	d2 := 0.0
	for _, ax := range [3][3]float64{
		{p.X, b.Lo.X, b.Hi.X},
		{p.Y, b.Lo.Y, b.Hi.Y},
		{p.Z, b.Lo.Z, b.Hi.Z},
	} {
		if d := ax[1] - ax[0]; d > 0 {
			d2 += d * d
		} else if d := ax[0] - ax[2]; d > 0 {
			d2 += d * d
		}
	}
	return d2
}

// Volume returns the volume of b, zero for an empty box.
func (b AABB) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Diagonal returns the length of the main diagonal of b.
func (b AABB) Diagonal() float64 { return b.Size().Norm() }

// MaxEdge returns the longest edge length of b.
func (b AABB) MaxEdge() float64 {
	s := b.Size()
	return math.Max(s.X, math.Max(s.Y, s.Z))
}
