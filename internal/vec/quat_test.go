package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotation(t *testing.T) {
	v := New(1, 2, 3)
	if got := IdentityQuat.Rotate(v); !got.ApproxEq(v, eps) {
		t.Errorf("identity rotation changed vector: %v", got)
	}
}

func TestQuatAxisAngle90(t *testing.T) {
	q := QuatFromAxisAngle(New(0, 0, 1), math.Pi/2)
	got := q.Rotate(New(1, 0, 0))
	if !got.ApproxEq(New(0, 1, 0), 1e-9) {
		t.Errorf("rotating x by 90deg about z = %v, want y", got)
	}
}

func TestQuatZeroAxis(t *testing.T) {
	q := QuatFromAxisAngle(Zero, 1.0)
	if q != IdentityQuat {
		t.Errorf("zero axis = %v, want identity", q)
	}
}

func TestQuatConjInverts(t *testing.T) {
	q := QuatFromAxisAngle(New(1, 2, 3), 0.7)
	v := New(4, 5, 6)
	back := q.Conj().Rotate(q.Rotate(v))
	if !back.ApproxEq(v, 1e-9) {
		t.Errorf("conj did not invert: %v", back)
	}
}

func TestQuatMulComposes(t *testing.T) {
	qa := QuatFromAxisAngle(New(0, 0, 1), 0.3)
	qb := QuatFromAxisAngle(New(0, 1, 0), 0.5)
	v := New(1, 2, 3)
	composed := qa.Mul(qb).Rotate(v)
	sequential := qa.Rotate(qb.Rotate(v))
	if !composed.ApproxEq(sequential, 1e-9) {
		t.Errorf("composition mismatch: %v vs %v", composed, sequential)
	}
}

func TestQuatMat3Agrees(t *testing.T) {
	q := QuatFromAxisAngle(New(1, -1, 0.5), 1.1)
	m := q.Mat3()
	v := New(0.4, -2, 3)
	if !m.MulV(v).ApproxEq(q.Rotate(v), 1e-9) {
		t.Error("matrix and quaternion rotation disagree")
	}
	if math.Abs(m.Det()-1) > 1e-9 {
		t.Errorf("rotation matrix determinant = %v", m.Det())
	}
}

func TestQuatEuler(t *testing.T) {
	// Pure yaw about Z.
	q := QuatFromEuler(math.Pi/2, 0, 0)
	got := q.Rotate(New(1, 0, 0))
	if !got.ApproxEq(New(0, 1, 0), 1e-9) {
		t.Errorf("yaw 90: %v", got)
	}
	if math.Abs(q.Norm()-1) > 1e-12 {
		t.Errorf("euler quat norm = %v", q.Norm())
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	qa := QuatFromAxisAngle(New(0, 0, 1), 0.2)
	qb := QuatFromAxisAngle(New(0, 0, 1), 1.4)
	if got := qa.Slerp(qb, 0); got.AngleTo(qa) > 1e-6 {
		t.Errorf("slerp(0) = %v", got)
	}
	if got := qa.Slerp(qb, 1); got.AngleTo(qb) > 1e-6 {
		t.Errorf("slerp(1) = %v", got)
	}
	mid := qa.Slerp(qb, 0.5)
	want := QuatFromAxisAngle(New(0, 0, 1), 0.8)
	if mid.AngleTo(want) > 1e-6 {
		t.Errorf("slerp(0.5) = %v, want %v", mid, want)
	}
}

func TestQuatSlerpNearlyParallel(t *testing.T) {
	qa := QuatFromAxisAngle(New(0, 0, 1), 0.2)
	qb := QuatFromAxisAngle(New(0, 0, 1), 0.2+1e-7)
	got := qa.Slerp(qb, 0.5)
	if math.Abs(got.Norm()-1) > 1e-9 {
		t.Errorf("near-parallel slerp norm = %v", got.Norm())
	}
}

func TestQuatAngleTo(t *testing.T) {
	qa := IdentityQuat
	qb := QuatFromAxisAngle(New(1, 0, 0), 1.0)
	if got := qa.AngleTo(qb); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("AngleTo = %v, want 1", got)
	}
	// Double cover: q and -q are the same rotation.
	qneg := Quat{-qb.W, -qb.X, -qb.Y, -qb.Z}
	if got := qa.AngleTo(qneg); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("AngleTo(-q) = %v, want 1", got)
	}
}

func TestQuatUnitZero(t *testing.T) {
	if got := (Quat{}).Unit(); got != IdentityQuat {
		t.Errorf("Unit(zero quat) = %v", got)
	}
}

func TestQuatIsFinite(t *testing.T) {
	if !IdentityQuat.IsFinite() {
		t.Error("identity reported non-finite")
	}
	if (Quat{W: math.NaN()}).IsFinite() {
		t.Error("NaN quat reported finite")
	}
}

func clampQ(q Quat) Quat {
	c := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return 0.5
		}
		return math.Mod(x, 10)
	}
	return Quat{c(q.W), c(q.X), c(q.Y), c(q.Z)}
}

func TestQuickRotationPreservesNorm(t *testing.T) {
	f := func(q Quat, v V3) bool {
		u := clampQ(q).Unit()
		v = clampV(v)
		return math.Abs(u.Rotate(v).Norm()-v.Norm()) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRotationPreservesDot(t *testing.T) {
	f := func(q Quat, a, b V3) bool {
		u := clampQ(q).Unit()
		a, b = clampV(a), clampV(b)
		scale := 1 + a.Norm()*b.Norm()
		return math.Abs(u.Rotate(a).Dot(u.Rotate(b))-a.Dot(b))/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulNormMultiplicative(t *testing.T) {
	f := func(a, b Quat) bool {
		a, b = clampQ(a), clampQ(b)
		return math.Abs(a.Mul(b).Norm()-a.Norm()*b.Norm()) < 1e-6*(1+a.Norm()*b.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatString(t *testing.T) {
	if IdentityQuat.String() == "" {
		t.Error("empty String()")
	}
}
