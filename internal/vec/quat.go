package vec

import (
	"fmt"
	"math"
)

// Quat is a quaternion w + xi + yj + zk. Unit quaternions represent
// rigid-body orientations of ligand conformations.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat is the identity rotation.
var IdentityQuat = Quat{W: 1}

// QuatFromAxisAngle returns the unit quaternion rotating by angle radians
// around axis. The axis need not be normalized; a zero axis yields the
// identity rotation.
func QuatFromAxisAngle(axis V3, angle float64) Quat {
	u := axis.Unit()
	if u == Zero {
		return IdentityQuat
	}
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: u.X * s, Y: u.Y * s, Z: u.Z * s}
}

// QuatFromEuler returns the unit quaternion for intrinsic Z-Y-X Euler angles
// (yaw, pitch, roll), in radians.
func QuatFromEuler(yaw, pitch, roll float64) Quat {
	sy, cy := math.Sincos(yaw / 2)
	sp, cp := math.Sincos(pitch / 2)
	sr, cr := math.Sincos(roll / 2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// Mul returns the Hamilton product q*r, the rotation r followed by q.
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate of q. For unit quaternions this is the inverse
// rotation.
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion norm.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Unit returns q normalized to unit norm. A zero quaternion yields the
// identity.
func (q Quat) Unit() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat
	}
	inv := 1 / n
	return Quat{q.W * inv, q.X * inv, q.Y * inv, q.Z * inv}
}

// Rotate applies the rotation represented by the unit quaternion q to v.
func (q Quat) Rotate(v V3) V3 {
	// v' = v + 2*u x (u x v + w*v), with u the vector part of q.
	u := V3{q.X, q.Y, q.Z}
	t := u.Cross(v).Add(v.Scale(q.W)) // u x v + w*v
	return v.Add(u.Cross(t).Scale(2))
}

// Mat3 returns the 3x3 rotation matrix equivalent to the unit quaternion q.
func (q Quat) Mat3() Mat3 {
	xx, yy, zz := q.X*q.X, q.Y*q.Y, q.Z*q.Z
	xy, xz, yz := q.X*q.Y, q.X*q.Z, q.Y*q.Z
	wx, wy, wz := q.W*q.X, q.W*q.Y, q.W*q.Z
	return Mat3{
		1 - 2*(yy+zz), 2 * (xy - wz), 2 * (xz + wy),
		2 * (xy + wz), 1 - 2*(xx+zz), 2 * (yz - wx),
		2 * (xz - wy), 2 * (yz + wx), 1 - 2*(xx+yy),
	}
}

// Slerp spherically interpolates between unit quaternions q and r by t in
// [0, 1]. Inputs are assumed unit; the result is unit.
func (q Quat) Slerp(r Quat, t float64) Quat {
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	// Take the short arc.
	if dot < 0 {
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: fall back to normalized lerp.
		return Quat{
			q.W + t*(r.W-q.W),
			q.X + t*(r.X-q.X),
			q.Y + t*(r.Y-q.Y),
			q.Z + t*(r.Z-q.Z),
		}.Unit()
	}
	theta := math.Acos(dot)
	sin := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sin
	b := math.Sin(t*theta) / sin
	return Quat{
		a*q.W + b*r.W,
		a*q.X + b*r.X,
		a*q.Y + b*r.Y,
		a*q.Z + b*r.Z,
	}
}

// AngleTo returns the rotation angle in radians between unit quaternions
// q and r, in [0, pi].
func (q Quat) AngleTo(r Quat) float64 {
	dot := math.Abs(q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z)
	if dot > 1 {
		dot = 1
	}
	return 2 * math.Acos(dot)
}

// IsFinite reports whether every component of q is finite.
func (q Quat) IsFinite() bool {
	for _, c := range [4]float64{q.W, q.X, q.Y, q.Z} {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (q Quat) String() string {
	return fmt.Sprintf("quat(w=%.4f, x=%.4f, y=%.4f, z=%.4f)", q.W, q.X, q.Y, q.Z)
}
