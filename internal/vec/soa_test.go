package vec

import "testing"

func TestSoARoundTrip(t *testing.T) {
	pts := []V3{{1, 2, 3}, {-4, 5, -6}, {0, 0, 7}}
	s := NewSoA(0)
	s.FromV3s(pts)
	if s.Len() != len(pts) {
		t.Fatalf("len = %d, want %d", s.Len(), len(pts))
	}
	for i, p := range pts {
		if s.At(i) != p {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), p)
		}
	}
}

func TestSoAResizeReusesCapacity(t *testing.T) {
	s := NewSoA(8)
	base := &s.X[0]
	s.Resize(4)
	s.Resize(8)
	if &s.X[0] != base {
		t.Error("Resize within capacity reallocated")
	}
	s.Set(7, V3{1, 1, 1})
	if s.At(7) != (V3{1, 1, 1}) {
		t.Error("Set after Resize lost data")
	}
}

func TestSoAResizeGrows(t *testing.T) {
	s := NewSoA(2)
	s.Set(1, V3{9, 9, 9})
	s.Resize(100)
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.At(1) != (V3{9, 9, 9}) {
		t.Error("grow lost existing contents")
	}
	if s.At(99) != Zero {
		t.Error("grown tail not zeroed")
	}
}
