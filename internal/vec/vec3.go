// Package vec provides the small fixed-size linear algebra used throughout
// metascreen: 3-component vectors, unit quaternions for rigid-body
// orientations, 3x3 matrices and axis-aligned bounding boxes.
//
// All types are plain value types with no hidden allocation; the hot scoring
// loops in internal/forcefield operate on them directly.
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component vector of float64. It is used for atom coordinates,
// translations and directions.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Zero is the zero vector.
var Zero = V3{}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v V3) Scale(s float64) V3 { return V3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v . w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v V3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v V3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v V3) Dist2(w V3) float64 { return v.Sub(w).Norm2() }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v V3) Unit() V3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)*v + t*w.
func (v V3) Lerp(w V3, t float64) V3 {
	return V3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Mul returns the component-wise product of v and w.
func (v V3) Mul(w V3) V3 { return V3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Min returns the component-wise minimum of v and w.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v V3) Abs() V3 {
	return V3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// IsFinite reports whether every component of v is finite (not NaN or Inf).
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEq reports whether v and w differ by at most eps in every component.
func (v V3) ApproxEq(w V3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps &&
		math.Abs(v.Y-w.Y) <= eps &&
		math.Abs(v.Z-w.Z) <= eps
}

// String implements fmt.Stringer.
func (v V3) String() string {
	return fmt.Sprintf("(%.4f, %.4f, %.4f)", v.X, v.Y, v.Z)
}

// Centroid returns the arithmetic mean of the given points, or the zero
// vector when pts is empty.
func Centroid(pts []V3) V3 {
	if len(pts) == 0 {
		return Zero
	}
	var c V3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
