package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestRecorderConcurrentStress hammers one recorder from 64 goroutines —
// half writing device events, half writing spans — and asserts nothing is
// lost and per-device event order stays monotone and non-overlapping.
// Each goroutine plays one device (or one span track) appending strictly
// increasing intervals; the recorder must preserve per-writer insertion
// order, so any reordering or loss is a bug. Run with -race (CI does).
func TestRecorderConcurrentStress(t *testing.T) {
	const (
		writers = 64
		perG    = 500
	)
	r := &Recorder{}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Device-event writer: device g, back-to-back intervals.
				for i := 0; i < perG; i++ {
					start := float64(i)
					r.Add(Event{Device: g, Label: "op", Start: start, End: start + 1})
				}
				return
			}
			// Span writer: its own track, back-to-back sim spans.
			track := fmt.Sprintf("track-%d", g)
			for i := 0; i < perG; i++ {
				start := float64(i)
				r.AddSpan(Span{
					Track: track, Name: "span", Cat: CatGeneration,
					Clock: ClockSim, Start: start, End: start + 1,
				})
			}
		}(g)
	}
	wg.Wait()

	if got, want := r.Len(), writers/2*perG; got != want {
		t.Fatalf("lost device events: got %d, want %d", got, want)
	}
	if got, want := r.SpanCount(), writers/2*perG; got != want {
		t.Fatalf("lost spans: got %d, want %d", got, want)
	}

	// Per-device: exactly perG events, in monotone non-overlapping order.
	byDev := map[int][]Event{}
	for _, e := range r.Events() {
		byDev[e.Device] = append(byDev[e.Device], e)
	}
	if len(byDev) != writers/2 {
		t.Fatalf("got %d devices, want %d", len(byDev), writers/2)
	}
	for dev, evs := range byDev {
		if len(evs) != perG {
			t.Fatalf("device %d: %d events, want %d", dev, len(evs), perG)
		}
		for i, e := range evs {
			if e.Start != float64(i) || e.End != float64(i)+1 {
				t.Fatalf("device %d: event %d out of order or overlapping: [%g, %g]",
					dev, i, e.Start, e.End)
			}
		}
	}

	// Per-track spans likewise.
	byTrack := map[string][]Span{}
	for _, s := range r.Spans() {
		byTrack[s.Track] = append(byTrack[s.Track], s)
	}
	if len(byTrack) != writers/2 {
		t.Fatalf("got %d tracks, want %d", len(byTrack), writers/2)
	}
	for track, spans := range byTrack {
		if len(spans) != perG {
			t.Fatalf("track %s: %d spans, want %d", track, len(spans), perG)
		}
		prevEnd := 0.0
		for i, s := range spans {
			if s.Start != float64(i) || s.End != s.Start+1 || s.Start < prevEnd {
				t.Fatalf("track %s: span %d out of order: [%g, %g]", track, i, s.Start, s.End)
			}
			prevEnd = s.End
		}
	}

	// The stats and export paths must also hold up after the stampede.
	if u := r.Utilization(); len(u) != writers/2 {
		t.Fatalf("utilization over %d devices, want %d", len(u), writers/2)
	}
	busy := r.BusyByTrack("")
	if len(busy) != writers {
		t.Fatalf("busy tracks: %d, want %d", len(busy), writers)
	}
	for track, b := range busy {
		if b != perG {
			t.Fatalf("track %s busy %g, want %d", track, b, perG)
		}
	}
}

// TestRecorderConcurrentMerge folds 16 child recorders into a parent from
// 16 goroutines, asserting no spans are lost and prefixes are applied.
func TestRecorderConcurrentMerge(t *testing.T) {
	const children = 16
	parent := &Recorder{}
	var wg sync.WaitGroup
	for c := 0; c < children; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			child := &Recorder{}
			child.Add(Event{Device: 0, Label: "scoring", Start: 0, End: 1})
			child.AddSpan(Span{Track: "generations", Name: "generation 1",
				Cat: CatGeneration, Clock: ClockSim, Start: 0, End: 1})
			parent.Merge(child, fmt.Sprintf("lig:%03d", c))
		}(c)
	}
	wg.Wait()
	if got, want := parent.SpanCount(), children*2; got != want {
		t.Fatalf("merged %d spans, want %d", got, want)
	}
	if got, want := parent.CountCat(CatDevice), children; got != want {
		t.Fatalf("%d device spans, want %d", got, want)
	}
	for _, s := range parent.Spans() {
		if len(s.Track) < 8 || s.Track[:4] != "lig:" {
			t.Fatalf("span track %q missing merge prefix", s.Track)
		}
	}
}
