package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenRecorder builds a fixed timeline exercising both clock domains,
// both event kinds (complete and instant), args, and the legacy device
// events.
func goldenRecorder() *Recorder {
	r := &Recorder{}
	r.Add(Event{Device: 0, Label: "warmup", Start: 0, End: 0.4})
	r.Add(Event{Device: 1, Label: "scoring", Start: 0.4, End: 1.1})
	r.AddMark(1, 1.1, "resplit")
	r.AddSpan(Span{
		Track: "job", Name: "job job-000001", Cat: CatJob,
		Start: 0, End: 2.5,
		Args: map[string]string{"job": "job-000001", "state": "done"},
	})
	r.AddSpan(Span{
		Track: "job", Name: "queued", Cat: CatJob,
		Start: 0, End: 0.25,
	})
	r.AddSpan(Span{
		Track: "lig:LIG-000/generations", Name: "generation 1", Cat: CatGeneration,
		Clock: ClockSim, Start: 0.4, End: 1.2,
		Args: map[string]string{"generation": "1"},
	})
	r.AddSpan(Span{
		Track: "screen", Name: "ligand LIG-000", Cat: CatLigand,
		Start: 0.3, End: 2.2,
		Args: map[string]string{"ligand": "LIG-000"},
	})
	return r
}

// TestWriteChromeGolden pins the exporter's byte-exact output. Run with
// -update after an intentional format change.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run go test ./internal/trace -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteChromeStable asserts two exports of the same content are
// byte-identical even when the recorder was filled in a different order.
func TestWriteChromeStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenRecorder().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	// Same content, reversed insertion order.
	src := goldenRecorder()
	r := &Recorder{}
	spans := src.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		r.AddSpan(spans[i])
	}
	events := src.Events()
	for i := len(events) - 1; i >= 0; i-- {
		r.Add(events[i])
	}
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("export depends on insertion order:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// TestWriteChromeParses asserts the export is valid JSON in the Chrome
// trace shape: an array of events, each with name/ph/pid/tid, where every
// "X" event has a duration and every tid is named by a metadata event.
func TestWriteChromeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	events := ParseChrome(t, buf.Bytes())
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	named := map[[2]float64]bool{}
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			named[[2]float64{ev["pid"].(float64), ev["tid"].(float64)}] = true
		}
	}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event without name: %v", ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event without ts: %v", ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		}
		key := [2]float64{ev["pid"].(float64), ev["tid"].(float64)}
		if !named[key] {
			t.Fatalf("event on unnamed track pid=%v tid=%v", ev["pid"], ev["tid"])
		}
	}
}

// TestWriteChromeEmpty asserts an empty recorder still exports valid JSON.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Recorder{}).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(events) != 0 {
		t.Fatalf("empty recorder exported %d events", len(events))
	}
}

// ParseChrome decodes a Chrome trace export for assertions.
func ParseChrome(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b)
	}
	return events
}
