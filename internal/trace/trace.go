// Package trace is the observability recorder of the stack. It began as a
// sim-only device timeline (an Event per kernel or transfer, with busy-time
// stats and text Gantt charts) and is now a general span recorder: named
// intervals on named tracks across two clock domains (wall and simulated),
// covering a whole screening job — HTTP submission, per-ligand screens,
// metaheuristic generations, individual device operations — exportable in
// Chrome trace format for chrome://tracing and Perfetto (chrome.go).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one timed operation on a simulated device.
type Event struct {
	// Device is the device index.
	Device int
	// Label names the operation ("scoring", "improve", "h2d", "d2h",
	// "warmup", ...).
	Label string
	// Start and End are simulated timestamps in seconds.
	Start, End float64
}

// Duration returns the event's simulated duration.
func (e Event) Duration() float64 { return e.End - e.Start }

// Recorder accumulates events and spans. It is safe for concurrent use;
// the zero value is ready. Events are the legacy sim-only device timeline
// (one entry per kernel or transfer); spans (span.go) generalize the
// recorder to arbitrary named intervals across clock domains, exportable
// as a Chrome trace (chrome.go).
type Recorder struct {
	mu     sync.Mutex
	events []Event

	ss spanState
}

// Add appends an event.
func (r *Recorder) Add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// AddMark appends a zero-duration marker event, used for point-in-time
// annotations such as fault detections and re-splits.
func (r *Recorder) AddMark(device int, t float64, label string) {
	r.Add(Event{Device: device, Label: label, Start: t, End: t})
}

// CountLabel returns the number of events whose label equals label.
func (r *Recorder) CountLabel(label string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Label == label {
			n++
		}
	}
	return n
}

// Events returns a copy of all events in insertion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// DeviceStats summarizes one device's timeline.
type DeviceStats struct {
	// Device is the device index.
	Device int
	// Busy is the total event time.
	Busy float64
	// ByLabel breaks Busy down per operation label.
	ByLabel map[string]float64
	// Events is the number of operations.
	Events int
}

// Stats aggregates per-device statistics, ordered by device index.
func (r *Recorder) Stats() []DeviceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	byDev := map[int]*DeviceStats{}
	for _, e := range r.events {
		s := byDev[e.Device]
		if s == nil {
			s = &DeviceStats{Device: e.Device, ByLabel: map[string]float64{}}
			byDev[e.Device] = s
		}
		s.Busy += e.Duration()
		s.ByLabel[e.Label] += e.Duration()
		s.Events++
	}
	out := make([]DeviceStats, 0, len(byDev))
	for _, s := range byDev {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// Span returns the earliest start and latest end over all events, or zeros
// when empty.
func (r *Recorder) Span() (start, end float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) == 0 {
		return 0, 0
	}
	start, end = r.events[0].Start, r.events[0].End
	for _, e := range r.events[1:] {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// Utilization returns each device's busy fraction of the whole span,
// indexed like Stats(). An empty recorder yields nil.
func (r *Recorder) Utilization() []float64 {
	start, end := r.Span()
	if end <= start {
		return nil
	}
	stats := r.Stats()
	out := make([]float64, len(stats))
	for i, s := range stats {
		out[i] = s.Busy / (end - start)
	}
	return out
}

// WriteGantt renders a fixed-width text Gantt chart of the timeline, one
// row per device, to w. width is the number of character cells.
func (r *Recorder) WriteGantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	start, end := r.Span()
	if end <= start {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	scale := float64(width) / (end - start)
	stats := r.Stats()
	for _, s := range stats {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range r.Events() {
			if e.Device != s.Device {
				continue
			}
			lo := int((e.Start - start) * scale)
			hi := int((e.End - start) * scale)
			if hi >= width {
				hi = width - 1
			}
			mark := byte('#')
			if len(e.Label) > 0 {
				mark = e.Label[0]
			}
			for i := lo; i <= hi; i++ {
				row[i] = mark
			}
		}
		if _, err := fmt.Fprintf(w, "dev%-3d |%s| busy %.3fs\n", s.Device, row, s.Busy); err != nil {
			return err
		}
	}
	return nil
}
