package trace

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file promotes the recorder from a sim-only device timeline to a
// general span recorder: named intervals on named tracks, with a category
// per observability level (job, screen, ligand, generation, device) and an
// explicit clock domain, so one recorder can hold a whole screening job's
// timeline — HTTP submission down to individual simulated device
// operations — and export it as a Chrome trace (see chrome.go).

// Clock domains. A span's timestamps are seconds on one of two clocks:
// the recorder's wall-clock epoch (real time) or the simulated device
// clock (modeled time). The Chrome exporter keeps the domains apart as two
// trace "processes" so mixed timelines stay readable.
const (
	// ClockWall is real time, in seconds since the recorder's epoch.
	ClockWall = "wall"
	// ClockSim is simulated time, in modeled seconds from zero.
	ClockSim = "sim"
)

// Span categories used across the stack. They are convention, not an
// enum — callers may add their own — but the service's job traces and the
// tests rely on these names.
const (
	CatJob        = "job"
	CatScreen     = "screen"
	CatLigand     = "ligand"
	CatGeneration = "generation"
	CatDevice     = "device"
	// CatShard marks distributed-coordinator spans: shard lifetimes,
	// re-splits, steals, hedges, and quarantine transitions.
	CatShard = "shard"
)

// Span is one named interval on a named track. The zero Clock means
// ClockWall. Start == End is an instant (exported as a Chrome instant
// event). Args carry correlation metadata (job ID, ligand name, ...).
type Span struct {
	// Track names the horizontal lane the span renders on ("job",
	// "lig:LIG-003/dev0", ...). Tracks are created on first use.
	Track string
	// Name is the span's label ("generation 7", "ligand LIG-003", ...).
	Name string
	// Cat is the observability level (CatJob, CatLigand, ...).
	Cat string
	// Clock is the span's time domain: ClockWall (default) or ClockSim.
	Clock string
	// Start and End are seconds on the span's clock.
	Start, End float64
	// Args is optional correlation metadata; exported verbatim.
	Args map[string]string
}

// Duration returns the span's length in seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// spanState holds the recorder's span-side state, kept separate from the
// event fields so the legacy device-event API is untouched.
type spanState struct {
	mu    sync.Mutex
	spans []Span
	epoch time.Time
}

// SetEpoch pins the wall-clock origin: Now() returns seconds since this
// instant. The service pins it to the job's submission time so a job's
// wall spans start at zero; tests pin it for byte-stable exports.
func (r *Recorder) SetEpoch(t time.Time) {
	r.ss.mu.Lock()
	r.ss.epoch = t
	r.ss.mu.Unlock()
}

// Epoch returns the wall-clock origin, setting it to the current time on
// first use so Now() is always meaningful.
func (r *Recorder) Epoch() time.Time {
	r.ss.mu.Lock()
	defer r.ss.mu.Unlock()
	if r.ss.epoch.IsZero() {
		r.ss.epoch = time.Now()
	}
	return r.ss.epoch
}

// Now returns the wall-clock reading in seconds since the epoch.
func (r *Recorder) Now() float64 { return time.Since(r.Epoch()).Seconds() }

// AddSpan appends a span. Safe for concurrent use.
func (r *Recorder) AddSpan(s Span) {
	if s.Clock == "" {
		s.Clock = ClockWall
	}
	r.ss.mu.Lock()
	r.ss.spans = append(r.ss.spans, s)
	r.ss.mu.Unlock()
}

// Spans returns a copy of all spans in insertion order.
func (r *Recorder) Spans() []Span {
	r.ss.mu.Lock()
	defer r.ss.mu.Unlock()
	out := make([]Span, len(r.ss.spans))
	copy(out, r.ss.spans)
	return out
}

// SpanCount returns the number of recorded spans.
func (r *Recorder) SpanCount() int {
	r.ss.mu.Lock()
	defer r.ss.mu.Unlock()
	return len(r.ss.spans)
}

// CountCat returns the number of spans whose category equals cat.
func (r *Recorder) CountCat(cat string) int {
	r.ss.mu.Lock()
	defer r.ss.mu.Unlock()
	n := 0
	for _, s := range r.ss.spans {
		if s.Cat == cat {
			n++
		}
	}
	return n
}

// Merge folds a child recorder into r with every track prefixed by
// prefix+"/". Child device events become CatDevice spans on simulated
// tracks prefix+"/dev<N>", and child spans keep their category and clock.
// The screening layer uses this to give each ligand its own sub-timeline
// inside the job trace.
func (r *Recorder) Merge(child *Recorder, prefix string) {
	if child == nil {
		return
	}
	for _, e := range child.Events() {
		r.AddSpan(Span{
			Track: fmt.Sprintf("%s/dev%d", prefix, e.Device),
			Name:  e.Label,
			Cat:   CatDevice,
			Clock: ClockSim,
			Start: e.Start,
			End:   e.End,
		})
	}
	for _, s := range child.Spans() {
		s.Track = prefix + "/" + s.Track
		r.AddSpan(s)
	}
}

// BusyByTrack sums span durations per track, restricted to one category
// ("" sums every category). Device events recorded through the legacy
// Event API are included under their "dev<N>" track when cat is "" or
// CatDevice. The debug snapshot derives per-device utilization from this.
func (r *Recorder) BusyByTrack(cat string) map[string]float64 {
	out := map[string]float64{}
	if cat == "" || cat == CatDevice {
		for _, e := range r.Events() {
			out[fmt.Sprintf("dev%d", e.Device)] += e.Duration()
		}
	}
	for _, s := range r.Spans() {
		if cat != "" && s.Cat != cat {
			continue
		}
		out[s.Track] += s.Duration()
	}
	return out
}

// SpanWindow returns the earliest start and latest end over all spans on
// the given clock ("" spans both domains), or zeros when none exist.
func (r *Recorder) SpanWindow(clock string) (start, end float64) {
	first := true
	for _, s := range r.Spans() {
		if clock != "" && s.Clock != clock {
			continue
		}
		if first || s.Start < start {
			start = s.Start
		}
		if first || s.End > end {
			end = s.End
		}
		first = false
	}
	return start, end
}

// Tracks returns the sorted set of track names across spans (and device
// events, reported as "dev<N>").
func (r *Recorder) Tracks() []string {
	seen := map[string]bool{}
	for _, e := range r.Events() {
		seen[fmt.Sprintf("dev%d", e.Device)] = true
	}
	for _, s := range r.Spans() {
		seen[s.Track] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ctxKey keys the recorder in a context.
type ctxKey struct{}

// NewContext returns a context carrying the recorder. The engine and the
// screening layers pick it up to record generation and ligand spans.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder carried by ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
