package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if r.Len() != 0 {
		t.Error("fresh recorder not empty")
	}
	r.Add(Event{Device: 0, Label: "scoring", Start: 0, End: 2})
	r.Add(Event{Device: 1, Label: "scoring", Start: 0, End: 1})
	r.Add(Event{Device: 0, Label: "h2d", Start: 2, End: 2.5})
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Duration() != 2 {
		t.Errorf("Events = %v", evs)
	}
}

func TestStats(t *testing.T) {
	var r Recorder
	r.Add(Event{Device: 1, Label: "scoring", Start: 0, End: 3})
	r.Add(Event{Device: 0, Label: "h2d", Start: 0, End: 1})
	r.Add(Event{Device: 1, Label: "h2d", Start: 3, End: 4})
	stats := r.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d devices", len(stats))
	}
	if stats[0].Device != 0 || stats[1].Device != 1 {
		t.Error("stats not ordered by device")
	}
	if stats[1].Busy != 4 || stats[1].Events != 2 {
		t.Errorf("device 1 stats = %+v", stats[1])
	}
	if stats[1].ByLabel["scoring"] != 3 {
		t.Errorf("scoring time = %v", stats[1].ByLabel["scoring"])
	}
}

func TestSpanAndUtilization(t *testing.T) {
	var r Recorder
	if s, e := r.Span(); s != 0 || e != 0 {
		t.Error("empty span not zero")
	}
	if r.Utilization() != nil {
		t.Error("empty utilization not nil")
	}
	r.Add(Event{Device: 0, Start: 1, End: 5})
	r.Add(Event{Device: 1, Start: 1, End: 3})
	s, e := r.Span()
	if s != 1 || e != 5 {
		t.Errorf("span = %v..%v", s, e)
	}
	u := r.Utilization()
	if math.Abs(u[0]-1.0) > 1e-12 || math.Abs(u[1]-0.5) > 1e-12 {
		t.Errorf("utilization = %v", u)
	}
}

func TestConcurrentAdd(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Event{Device: dev, Start: float64(i), End: float64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func TestWriteGantt(t *testing.T) {
	var r Recorder
	var sb strings.Builder
	if err := r.WriteGantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Error("empty chart missing placeholder")
	}
	r.Add(Event{Device: 0, Label: "scoring", Start: 0, End: 1})
	r.Add(Event{Device: 1, Label: "h2d", Start: 0.5, End: 1})
	sb.Reset()
	if err := r.WriteGantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dev0") || !strings.Contains(out, "dev1") {
		t.Errorf("chart missing device rows:\n%s", out)
	}
	if !strings.Contains(out, "s") || !strings.Contains(out, "h") {
		t.Errorf("chart missing operation marks:\n%s", out)
	}
}
