package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace export. The recorder's spans and device events are written
// in the Chrome trace "JSON Array Format": a JSON array with one trace
// event per line (JSONL bracketed by [ ]), directly loadable in
// chrome://tracing and Perfetto. The two clock domains export as two trace
// processes — pid 1 "wall clock" and pid 2 "simulated device time" — so a
// job's real-time lifecycle and its modeled device timelines stay on
// separate, internally consistent axes.
//
// The output is deterministic: tracks get tids in sorted-name order and
// events are sorted by (pid, tid, ts, dur, name), so equal recorder
// contents produce byte-identical exports (see the golden test).

// Chrome trace pids, one per clock domain.
const (
	chromePidWall = 1
	chromePidSim  = 2
)

// chromeEvent is one Chrome trace event on the wire. Field order is the
// exported order; encoding/json keeps struct order and sorts map keys, so
// marshaling is deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"` // microseconds
	Dur   *float64          `json:"dur,omitempty"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// clockPid maps a span clock to its trace process.
func clockPid(clock string) int {
	if clock == ClockSim {
		return chromePidSim
	}
	return chromePidWall
}

// WriteChrome writes the recorder's timeline as a Chrome trace. Spans
// export as complete events ("ph":"X") or instant events ("ph":"i") when
// zero-length; legacy device events export on simulated "dev<N>" tracks
// with category "device".
func (r *Recorder) WriteChrome(w io.Writer) error {
	type key struct {
		pid   int
		track string
	}
	// Collect everything as (pid, track, chromeEvent-sans-tid).
	type item struct {
		k  key
		ev chromeEvent
	}
	var items []item
	add := func(pid int, track, name, cat string, start, end float64, args map[string]string) {
		ev := chromeEvent{Name: name, Cat: cat, Pid: pid, Ts: start * 1e6}
		if end > start {
			d := (end - start) * 1e6
			ev.Ph, ev.Dur = "X", &d
		} else {
			ev.Ph, ev.Scope = "i", "t"
		}
		ev.Args = args
		items = append(items, item{k: key{pid, track}, ev: ev})
	}
	for _, e := range r.Events() {
		add(chromePidSim, fmt.Sprintf("dev%d", e.Device), e.Label, CatDevice, e.Start, e.End, nil)
	}
	for _, s := range r.Spans() {
		add(clockPid(s.Clock), s.Track, s.Name, s.Cat, s.Start, s.End, s.Args)
	}

	// Assign tids per process in sorted track order.
	tracks := map[key]int{}
	var keys []key
	for _, it := range items {
		if _, ok := tracks[it.k]; !ok {
			tracks[it.k] = 0
			keys = append(keys, it.k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].track < keys[j].track
	})
	nextTid := map[int]int{}
	for _, k := range keys {
		nextTid[k.pid]++
		tracks[k] = nextTid[k.pid]
	}

	// Metadata first: process names, then thread names in tid order.
	var out []chromeEvent
	meta := func(pid int, name, value string, tid int) {
		out = append(out, chromeEvent{
			Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]string{"name": value},
		})
	}
	pidNames := map[int]string{chromePidWall: "wall clock", chromePidSim: "simulated device time"}
	for _, pid := range []int{chromePidWall, chromePidSim} {
		if nextTid[pid] == 0 {
			continue
		}
		meta(pid, "process_name", pidNames[pid], 0)
	}
	for _, k := range keys {
		meta(k.pid, "thread_name", k.track, tracks[k])
	}

	// Then the timed events, fully ordered for byte stability.
	timed := make([]chromeEvent, 0, len(items))
	for _, it := range items {
		ev := it.ev
		ev.Tid = tracks[it.k]
		timed = append(timed, ev)
	}
	sort.SliceStable(timed, func(i, j int) bool {
		a, b := timed[i], timed[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		ad, bd := 0.0, 0.0
		if a.Dur != nil {
			ad = *a.Dur
		}
		if b.Dur != nil {
			bd = *b.Dur
		}
		if ad != bd {
			return ad > bd // longer (enclosing) spans first
		}
		return a.Name < b.Name
	})
	out = append(out, timed...)

	// One event per line, bracketed: valid JSON, Perfetto-loadable, and
	// line-diffable in the golden file.
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
