// Package analysis provides post-docking pose analysis: RMSD between
// poses, clustering of results into distinct binding modes, and summary
// statistics over spot results — the standard downstream of a virtual
// screen, where "the needles in the haystacks" (the paper's phrase) are
// separated from redundant rediscoveries of the same site.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/vec"
)

// PoseRMSD returns the root-mean-square deviation in angstroms between two
// poses of the same (possibly flexible) ligand: both conformations are
// applied to the ligand coordinates and compared atom by atom.
func PoseRMSD(ts *molecule.TorsionSet, ligand []vec.V3, a, b conformation.Conformation) float64 {
	if len(ligand) == 0 {
		return 0
	}
	pa := make([]vec.V3, len(ligand))
	pb := make([]vec.V3, len(ligand))
	a.ApplyFlex(ts, ligand, pa)
	b.ApplyFlex(ts, ligand, pb)
	sum := 0.0
	for i := range pa {
		sum += pa[i].Dist2(pb[i])
	}
	return math.Sqrt(sum / float64(len(ligand)))
}

// Mode is one cluster of poses: a distinct binding mode.
type Mode struct {
	// Representative is the best-scoring pose of the cluster.
	Representative conformation.Conformation
	// Members is the number of poses in the cluster.
	Members int
	// MeanScore averages the members' scores.
	MeanScore float64
}

// ClusterModes groups evaluated poses into binding modes by greedy leader
// clustering: poses are visited best-first, each joining the first
// existing mode whose representative is within rmsdCutoff, or founding a
// new mode. Modes are returned best-representative-first. Unevaluated
// poses are ignored.
func ClusterModes(ts *molecule.TorsionSet, ligand []vec.V3,
	poses []conformation.Conformation, rmsdCutoff float64) ([]Mode, error) {
	if rmsdCutoff <= 0 {
		return nil, fmt.Errorf("analysis: RMSD cutoff %g", rmsdCutoff)
	}
	var evaluated []conformation.Conformation
	for _, p := range poses {
		if p.Evaluated() {
			evaluated = append(evaluated, p)
		}
	}
	sort.SliceStable(evaluated, func(i, j int) bool {
		return evaluated[i].Score < evaluated[j].Score
	})
	var modes []Mode
	sums := []float64{}
	for _, p := range evaluated {
		placed := false
		for mi := range modes {
			if PoseRMSD(ts, ligand, modes[mi].Representative, p) <= rmsdCutoff {
				modes[mi].Members++
				sums[mi] += p.Score
				placed = true
				break
			}
		}
		if !placed {
			modes = append(modes, Mode{Representative: p, Members: 1})
			sums = append(sums, p.Score)
		}
	}
	for i := range modes {
		modes[i].MeanScore = sums[i] / float64(modes[i].Members)
	}
	return modes, nil
}

// Stats summarizes a set of scores.
type Stats struct {
	N                int
	Best, Worst      float64
	Mean, Std, Range float64
}

// Summarize computes statistics over the evaluated poses' scores.
func Summarize(poses []conformation.Conformation) Stats {
	s := Stats{Best: math.Inf(1), Worst: math.Inf(-1)}
	sum := 0.0
	for _, p := range poses {
		if !p.Evaluated() {
			continue
		}
		s.N++
		sum += p.Score
		if p.Score < s.Best {
			s.Best = p.Score
		}
		if p.Score > s.Worst {
			s.Worst = p.Score
		}
	}
	if s.N == 0 {
		return Stats{}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, p := range poses {
		if !p.Evaluated() {
			continue
		}
		d := p.Score - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Range = s.Worst - s.Best
	return s
}
