package analysis

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

func ligand() []vec.V3 {
	return molecule.SyntheticLigand("lig", 15, 3).Positions()
}

func scored(t vec.V3, q vec.Quat, score float64) conformation.Conformation {
	c := conformation.New(0, t, q)
	c.Score = score
	return c
}

func TestPoseRMSDIdentical(t *testing.T) {
	lig := ligand()
	a := scored(vec.New(1, 2, 3), vec.IdentityQuat, -5)
	if got := PoseRMSD(nil, lig, a, a); got != 0 {
		t.Errorf("self RMSD = %v", got)
	}
}

func TestPoseRMSDPureTranslation(t *testing.T) {
	lig := ligand()
	a := scored(vec.Zero, vec.IdentityQuat, 0)
	b := scored(vec.New(3, 4, 0), vec.IdentityQuat, 0)
	// Every atom moves exactly 5 A, so RMSD = 5.
	if got := PoseRMSD(nil, lig, a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("translation RMSD = %v, want 5", got)
	}
}

func TestPoseRMSDRotationSensitive(t *testing.T) {
	lig := ligand()
	a := scored(vec.Zero, vec.IdentityQuat, 0)
	b := scored(vec.Zero, vec.QuatFromAxisAngle(vec.New(0, 0, 1), 1.0), 0)
	if got := PoseRMSD(nil, lig, a, b); got <= 0 {
		t.Errorf("rotation RMSD = %v, want > 0", got)
	}
}

func TestPoseRMSDFlexible(t *testing.T) {
	m := molecule.SyntheticLigand("flex", 20, 9)
	ts := molecule.NewTorsionSet(m)
	if ts.Len() == 0 {
		t.Skip("no torsions")
	}
	lig := m.Positions()
	a := scored(vec.Zero, vec.IdentityQuat, 0)
	a.Torsions = make([]float64, ts.Len())
	b := a
	b.Torsions = make([]float64, ts.Len())
	b.Torsions[0] = 1.5
	if got := PoseRMSD(ts, lig, a, b); got <= 0 {
		t.Errorf("torsion change RMSD = %v, want > 0", got)
	}
}

func TestClusterModes(t *testing.T) {
	lig := ligand()
	// Two clusters: three poses near the origin, two near (30,0,0); plus
	// one unevaluated pose to ignore.
	poses := []conformation.Conformation{
		scored(vec.New(0, 0, 0), vec.IdentityQuat, -10),
		scored(vec.New(0.3, 0, 0), vec.IdentityQuat, -8),
		scored(vec.New(0, 0.4, 0), vec.IdentityQuat, -6),
		scored(vec.New(30, 0, 0), vec.IdentityQuat, -9),
		scored(vec.New(30.2, 0, 0), vec.IdentityQuat, -5),
		conformation.New(0, vec.New(99, 0, 0), vec.IdentityQuat), // unscored
	}
	modes, err := ClusterModes(nil, lig, poses, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 2 {
		t.Fatalf("%d modes, want 2: %+v", len(modes), modes)
	}
	// Best mode first, with the best representative.
	if modes[0].Representative.Score != -10 || modes[0].Members != 3 {
		t.Errorf("mode 0 = %+v", modes[0])
	}
	if modes[1].Representative.Score != -9 || modes[1].Members != 2 {
		t.Errorf("mode 1 = %+v", modes[1])
	}
	if math.Abs(modes[0].MeanScore-(-8)) > 1e-12 {
		t.Errorf("mode 0 mean = %v", modes[0].MeanScore)
	}
}

func TestClusterModesCutoffMatters(t *testing.T) {
	lig := ligand()
	poses := []conformation.Conformation{
		scored(vec.New(0, 0, 0), vec.IdentityQuat, -10),
		scored(vec.New(4, 0, 0), vec.IdentityQuat, -9),
	}
	tight, err := ClusterModes(nil, lig, poses, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ClusterModes(nil, lig, poses, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) != 2 || len(loose) != 1 {
		t.Errorf("tight %d / loose %d modes", len(tight), len(loose))
	}
	if _, err := ClusterModes(nil, lig, poses, 0); err == nil {
		t.Error("zero cutoff accepted")
	}
}

func TestClusterModesEmpty(t *testing.T) {
	modes, err := ClusterModes(nil, ligand(), nil, 1)
	if err != nil || len(modes) != 0 {
		t.Errorf("empty input: %v, %v", modes, err)
	}
}

func TestSummarize(t *testing.T) {
	poses := []conformation.Conformation{
		scored(vec.Zero, vec.IdentityQuat, -10),
		scored(vec.Zero, vec.IdentityQuat, -6),
		scored(vec.Zero, vec.IdentityQuat, -2),
		conformation.New(0, vec.Zero, vec.IdentityQuat), // unscored
	}
	s := Summarize(poses)
	if s.N != 3 || s.Best != -10 || s.Worst != -2 || s.Range != 8 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Mean-(-6)) > 1e-12 || math.Abs(s.Std-4) > 1e-12 {
		t.Errorf("mean/std = %v/%v", s.Mean, s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Best != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestRMSDProperties(t *testing.T) {
	lig := ligand()
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		a := scored(r.InSphere(20), r.Quat(), 0)
		b := scored(r.InSphere(20), r.Quat(), 0)
		ab := PoseRMSD(nil, lig, a, b)
		ba := PoseRMSD(nil, lig, b, a)
		if math.Abs(ab-ba) > 1e-9 {
			t.Fatalf("RMSD not symmetric: %v vs %v", ab, ba)
		}
		if ab < 0 {
			t.Fatalf("negative RMSD %v", ab)
		}
		// Triangle inequality against a third pose.
		c := scored(r.InSphere(20), r.Quat(), 0)
		if PoseRMSD(nil, lig, a, c) > ab+PoseRMSD(nil, lig, b, c)+1e-9 {
			t.Fatal("RMSD violates the triangle inequality")
		}
	}
}
