package molecule

import (
	"testing"

	"github.com/metascreen/metascreen/internal/vec"
)

func TestTorsionSetChain(t *testing.T) {
	// A 6-carbon chain has 3 rotatable bonds: 1-2, 2-3, 3-4 (bonds 0-1 and
	// 4-5 only spin a terminal atom).
	m := chain(6, 1.54)
	ts := NewTorsionSet(m)
	if ts.Len() != 3 {
		t.Fatalf("%d torsions, want 3: %+v", ts.Len(), ts.Torsions)
	}
	for _, tor := range ts.Torsions {
		if len(tor.Moving) < 2 {
			t.Errorf("torsion %+v moves fewer than 2 atoms", tor)
		}
		// The moving side is the smaller one.
		if len(tor.Moving) > m.NumAtoms()/2 {
			t.Errorf("torsion %+v moves the larger side", tor)
		}
		// Neither axis endpoint's fixed side leaks into Moving beyond J.
		for _, idx := range tor.Moving {
			if idx == tor.Axis.I {
				t.Errorf("torsion %+v moves its fixed axis atom", tor)
			}
		}
	}
}

func TestTorsionSetRingHasNoRotatableRingBonds(t *testing.T) {
	// A 6-ring (cyclohexane-like): no bridges, no torsions.
	atoms := make([]Atom, 6)
	for i := range atoms {
		q := vec.QuatFromAxisAngle(vec.New(0, 0, 1), float64(i)*3.14159265/3)
		atoms[i] = Atom{Element: Carbon, Pos: q.Rotate(vec.New(1.54, 0, 0))}
	}
	m := New("ring", atoms)
	if bonds := InferBonds(m); len(bonds) != 6 {
		t.Fatalf("ring has %d bonds, want 6", len(bonds))
	}
	if ts := NewTorsionSet(m); ts.Len() != 0 {
		t.Errorf("ring reports %d rotatable bonds", ts.Len())
	}
}

func TestTorsionSetRingWithTail(t *testing.T) {
	// A ring plus a 3-atom tail: the ring-tail bond and the first tail
	// bond rotate, giving 2 torsions (the last tail bond is terminal).
	atoms := make([]Atom, 0, 9)
	for i := 0; i < 6; i++ {
		q := vec.QuatFromAxisAngle(vec.New(0, 0, 1), float64(i)*3.14159265/3)
		atoms = append(atoms, Atom{Element: Carbon, Pos: q.Rotate(vec.New(1.54, 0, 0))})
	}
	base := atoms[0].Pos
	for i := 1; i <= 3; i++ {
		atoms = append(atoms, Atom{Element: Carbon, Pos: base.Add(vec.New(float64(i)*1.54, 0, 0))})
	}
	m := New("ring-tail", atoms)
	ts := NewTorsionSet(m)
	if ts.Len() != 2 {
		t.Errorf("%d torsions, want 2: %+v", ts.Len(), ts.Torsions)
	}
}

func TestTorsionSetSkipsHydrogenBonds(t *testing.T) {
	// C-C-H-? : bonds to hydrogens never rotate.
	m := New("ch", []Atom{
		{Element: Carbon, Pos: vec.Zero},
		{Element: Carbon, Pos: vec.New(1.54, 0, 0)},
		{Element: Carbon, Pos: vec.New(3.08, 0, 0)},
		{Element: Hydrogen, Pos: vec.New(3.08, 1.09, 0)},
		{Element: Carbon, Pos: vec.New(4.62, 0, 0)},
	})
	ts := NewTorsionSet(m)
	for _, tor := range ts.Torsions {
		if m.Atoms[tor.Axis.I].Element == Hydrogen || m.Atoms[tor.Axis.J].Element == Hydrogen {
			t.Errorf("hydrogen bond marked rotatable: %+v", tor)
		}
	}
}

func TestTorsionSetNilAndEmpty(t *testing.T) {
	var nilTS *TorsionSet
	if nilTS.Len() != 0 {
		t.Error("nil torsion set has nonzero length")
	}
	one := New("one", []Atom{{Element: Carbon}})
	if NewTorsionSet(one).Len() != 0 {
		t.Error("single atom has torsions")
	}
}

func TestSyntheticLigandHasTorsions(t *testing.T) {
	// Branched synthetic ligands are acyclic chains: plenty of rotatable
	// bonds.
	lig := Synthetic2BSMLigand()
	ts := NewTorsionSet(lig)
	if ts.Len() < 5 {
		t.Errorf("45-atom ligand has only %d rotatable bonds", ts.Len())
	}
	// Deterministic.
	ts2 := NewTorsionSet(lig)
	if ts.Len() != ts2.Len() {
		t.Error("torsion detection not deterministic")
	}
	for i := range ts.Torsions {
		if ts.Torsions[i].Axis != ts2.Torsions[i].Axis {
			t.Error("torsion order not deterministic")
		}
	}
}
