// Package molecule models receptors and ligands: atoms with element and
// force-field typing, whole molecules with derived geometry, a reader and
// writer for a PDB subset, and deterministic synthetic structure generators
// that reproduce the atom counts of the paper's benchmark compounds
// (PDB 2BSM and 2BXG).
package molecule

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/vec"
)

// Element is a chemical element relevant to protein-ligand systems.
type Element uint8

// Elements that occur in the synthetic structures and the PDB subset parser.
const (
	Hydrogen Element = iota
	Carbon
	Nitrogen
	Oxygen
	Sulfur
	Phosphorus
	numElements
)

var elementNames = [numElements]string{"H", "C", "N", "O", "S", "P"}

// String returns the element symbol.
func (e Element) String() string {
	if int(e) < len(elementNames) {
		return elementNames[e]
	}
	return fmt.Sprintf("Element(%d)", uint8(e))
}

// ElementFromSymbol returns the element for a chemical symbol such as "C" or
// "FE" (unknown symbols map to Carbon, the most common heavy atom, with
// ok=false).
func ElementFromSymbol(sym string) (Element, bool) {
	switch sym {
	case "H", "D":
		return Hydrogen, true
	case "C":
		return Carbon, true
	case "N":
		return Nitrogen, true
	case "O":
		return Oxygen, true
	case "S":
		return Sulfur, true
	case "P":
		return Phosphorus, true
	}
	return Carbon, false
}

// VdwRadius returns the van der Waals radius of the element in angstroms.
func (e Element) VdwRadius() float64 {
	switch e {
	case Hydrogen:
		return 1.20
	case Carbon:
		return 1.70
	case Nitrogen:
		return 1.55
	case Oxygen:
		return 1.52
	case Sulfur:
		return 1.80
	case Phosphorus:
		return 1.80
	}
	return 1.70
}

// Mass returns the atomic mass in daltons.
func (e Element) Mass() float64 {
	switch e {
	case Hydrogen:
		return 1.008
	case Carbon:
		return 12.011
	case Nitrogen:
		return 14.007
	case Oxygen:
		return 15.999
	case Sulfur:
		return 32.06
	case Phosphorus:
		return 30.974
	}
	return 12.011
}

// Atom is a single atom of a receptor or ligand.
type Atom struct {
	// Serial is the 1-based atom index within its molecule.
	Serial int
	// Name is the PDB atom name, e.g. "CA" for an alpha carbon.
	Name string
	// Element is the chemical element.
	Element Element
	// Pos is the position in angstroms.
	Pos vec.V3
	// Charge is the partial charge in elementary charge units, used by the
	// optional Coulomb term of the scoring function.
	Charge float64
	// Residue is the 1-based residue index the atom belongs to (0 for
	// ligands and free atoms).
	Residue int
}

// IsAlphaCarbon reports whether the atom is a protein backbone alpha carbon.
// The paper identifies surface spots by "finding out a specific type of
// atoms in the protein"; metascreen uses alpha carbons as that type.
func (a Atom) IsAlphaCarbon() bool { return a.Name == "CA" && a.Element == Carbon }
