package molecule

import (
	"bytes"
	"strings"
	"testing"
)

const sampleXYZ = `3
water-ish
O   0.000000   0.000000   0.117300
H   0.000000   0.757200  -0.469200
H   0.000000  -0.757200  -0.469200
`

func TestReadXYZ(t *testing.T) {
	m, err := ReadXYZ(strings.NewReader(sampleXYZ))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "water-ish" || m.NumAtoms() != 3 {
		t.Fatalf("parsed %s with %d atoms", m.Name, m.NumAtoms())
	}
	if m.Atoms[0].Element != Oxygen || m.Atoms[1].Element != Hydrogen {
		t.Error("elements wrong")
	}
	if m.Atoms[1].Pos.Y != 0.7572 {
		t.Errorf("coordinate = %v", m.Atoms[1].Pos.Y)
	}
}

func TestReadXYZErrors(t *testing.T) {
	bad := []string{
		"",
		"abc\ncomment\n",
		"0\ncomment\n",
		"2\ncomment\nC 0 0 0\n", // truncated
		"1\ncomment\nC 0 0\n",   // short line
		"1\ncomment\nC x 0 0\n", // bad number
		"1",                     // missing comment
	}
	for i, s := range bad {
		if _, err := ReadXYZ(strings.NewReader(s)); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

func TestXYZRoundTrip(t *testing.T) {
	orig := SyntheticLigand("roundtrip", 17, 4)
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAtoms() != orig.NumAtoms() || back.Name != orig.Name {
		t.Fatalf("round trip: %s/%d vs %s/%d", back.Name, back.NumAtoms(), orig.Name, orig.NumAtoms())
	}
	for i := range orig.Atoms {
		if !back.Atoms[i].Pos.ApproxEq(orig.Atoms[i].Pos, 1e-6) {
			t.Errorf("atom %d moved", i)
		}
		if back.Atoms[i].Element != orig.Atoms[i].Element {
			t.Errorf("atom %d element changed", i)
		}
	}
}
