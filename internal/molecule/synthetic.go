package molecule

import (
	"fmt"
	"math"

	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// The paper evaluates on two crystal structures of human serum albumin from
// the Protein Data Bank (its Table 5):
//
//	2BSM: receptor 3264 atoms, ligand 45 atoms
//	2BXG: receptor 8609 atoms, ligand 32 atoms
//
// The real coordinate files are not redistributable here, so metascreen
// generates deterministic synthetic structures with exactly those atom
// counts and protein-like geometry (compact globular fold, 3.8 A CA-CA
// backbone spacing, realistic heavy-atom density). The scoring workload
// depends only on atom counts and spatial distribution, so these stand-ins
// preserve the computational behaviour the paper measures.

// Benchmark compound atom counts from the paper's Table 5.
const (
	Atoms2BSMReceptor = 3264
	Atoms2BSMLigand   = 45
	Atoms2BXGReceptor = 8609
	Atoms2BXGLigand   = 32
)

// Synthetic2BSMReceptor returns the synthetic stand-in for the 2BSM receptor.
func Synthetic2BSMReceptor() *Molecule {
	return SyntheticProtein("2BSM-receptor", Atoms2BSMReceptor, 0x2b5a)
}

// Synthetic2BSMLigand returns the synthetic stand-in for the 2BSM ligand.
func Synthetic2BSMLigand() *Molecule {
	return SyntheticLigand("2BSM-ligand", Atoms2BSMLigand, 0x2b5b)
}

// Synthetic2BXGReceptor returns the synthetic stand-in for the 2BXG receptor.
func Synthetic2BXGReceptor() *Molecule {
	return SyntheticProtein("2BXG-receptor", Atoms2BXGReceptor, 0x2bc6)
}

// Synthetic2BXGLigand returns the synthetic stand-in for the 2BXG ligand.
func Synthetic2BXGLigand() *Molecule {
	return SyntheticLigand("2BXG-ligand", Atoms2BXGLigand, 0x2bc7)
}

// sideChainLengths approximates the distribution of heavy side-chain sizes
// over the 20 amino acids (glycine 0 ... tryptophan 10, average ~4).
var sideChainLengths = []int{0, 1, 2, 2, 3, 3, 4, 4, 4, 4, 5, 5, 5, 6, 6, 7, 7, 8, 9, 10}

// SyntheticProtein generates a deterministic protein-like receptor with
// exactly numAtoms atoms. The backbone is a compact self-avoiding walk of
// residues (N, CA, C, O plus a side chain); the fold is biased toward the
// origin so the result is globular with a density close to real proteins
// (~0.01 heavy atoms per cubic angstrom within the fold envelope).
func SyntheticProtein(name string, numAtoms int, seed uint64) *Molecule {
	if numAtoms <= 0 {
		panic(fmt.Sprintf("molecule: SyntheticProtein(%q) with %d atoms", name, numAtoms))
	}
	r := rng.New(seed)
	// Expected fold radius for a globular protein: V = numAtoms / density.
	const density = 0.0095 // heavy atoms per cubic angstrom
	radius := math.Cbrt(3 * float64(numAtoms) / (4 * math.Pi * density))

	atoms := make([]Atom, 0, numAtoms)
	ca := vec.Zero
	dir := r.UnitVector()
	residue := 0

	for len(atoms) < numAtoms {
		residue++
		// Backbone atoms around the current CA position.
		n := ca.Add(dir.Scale(-1.46).Add(r.InSphere(0.25)))
		c := ca.Add(dir.Scale(1.52).Add(r.InSphere(0.25)))
		o := c.Add(r.UnitVector().Scale(1.23))
		backbone := []Atom{
			{Name: "N", Element: Nitrogen, Pos: n, Charge: -0.47, Residue: residue},
			{Name: "CA", Element: Carbon, Pos: ca, Charge: 0.07, Residue: residue},
			{Name: "C", Element: Carbon, Pos: c, Charge: 0.51, Residue: residue},
			{Name: "O", Element: Oxygen, Pos: o, Charge: -0.51, Residue: residue},
		}
		for _, a := range backbone {
			if len(atoms) == numAtoms {
				break
			}
			atoms = append(atoms, a)
		}

		// Side chain: short branch off the CA.
		scLen := sideChainLengths[r.Intn(len(sideChainLengths))]
		branch := ca
		branchDir := r.UnitVector()
		for s := 0; s < scLen && len(atoms) < numAtoms; s++ {
			branch = branch.Add(branchDir.Scale(1.53))
			branchDir = branchDir.Add(r.InSphere(0.8)).Unit()
			el := Carbon
			chg := -0.05
			switch {
			case s == scLen-1 && r.Bool(0.30):
				el, chg = Oxygen, -0.40
			case s == scLen-1 && r.Bool(0.20):
				el, chg = Nitrogen, -0.30
			case s >= 2 && r.Bool(0.03):
				el, chg = Sulfur, -0.10
			}
			atoms = append(atoms, Atom{
				Name:    fmt.Sprintf("S%d", s+1),
				Element: el, Pos: branch, Charge: chg, Residue: residue,
			})
		}

		// Advance the backbone 3.8 A, biased back toward the origin once the
		// walk leaves the target fold radius, producing a compact globule.
		step := dir.Add(r.InSphere(0.9))
		if ca.Norm() > radius {
			step = step.Add(ca.Unit().Scale(-1.6 * (ca.Norm()/radius - 1)))
		}
		dir = step.Unit()
		ca = ca.Add(dir.Scale(3.8))
	}
	return New(name, atoms)
}

// SyntheticLigand generates a deterministic drug-like small molecule with
// exactly numAtoms atoms: a branched chain of heavy atoms at covalent
// spacing, centered on its centroid.
func SyntheticLigand(name string, numAtoms int, seed uint64) *Molecule {
	if numAtoms <= 0 {
		panic(fmt.Sprintf("molecule: SyntheticLigand(%q) with %d atoms", name, numAtoms))
	}
	r := rng.New(seed)
	atoms := make([]Atom, 0, numAtoms)
	pos := vec.Zero
	dir := r.UnitVector()
	// Branch points remembered for restarts, giving a branched topology.
	branches := []vec.V3{pos}

	for i := 0; i < numAtoms; i++ {
		el := Carbon
		chg := 0.0
		switch {
		case r.Bool(0.15):
			el, chg = Oxygen, -0.35
		case r.Bool(0.12):
			el, chg = Nitrogen, -0.25
		case r.Bool(0.03):
			el, chg = Sulfur, -0.08
		default:
			chg = r.Range(-0.10, 0.12)
		}
		atoms = append(atoms, Atom{
			Name:    fmt.Sprintf("L%d", i+1),
			Element: el, Pos: pos, Charge: chg,
		})
		if r.Bool(0.25) && len(branches) > 0 {
			// Restart from a previous branch point.
			pos = branches[r.Intn(len(branches))]
			dir = r.UnitVector()
		}
		branches = append(branches, pos)
		dir = dir.Add(r.InSphere(0.7)).Unit()
		pos = pos.Add(dir.Scale(1.5))
	}
	return New(name, atoms).Centered()
}
