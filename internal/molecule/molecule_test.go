package molecule

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/vec"
)

func small() *Molecule {
	return New("test", []Atom{
		{Name: "CA", Element: Carbon, Pos: vec.New(0, 0, 0)},
		{Name: "N", Element: Nitrogen, Pos: vec.New(2, 0, 0)},
		{Name: "O", Element: Oxygen, Pos: vec.New(0, 2, 0)},
		{Name: "CA", Element: Carbon, Pos: vec.New(0, 0, 2)},
	})
}

func TestNewRenumbersSerials(t *testing.T) {
	m := small()
	for i, a := range m.Atoms {
		if a.Serial != i+1 {
			t.Errorf("atom %d serial = %d", i, a.Serial)
		}
	}
}

func TestNumAtomsAndCounts(t *testing.T) {
	m := small()
	if m.NumAtoms() != 4 {
		t.Errorf("NumAtoms = %d", m.NumAtoms())
	}
	if got := m.CountElement(Carbon); got != 2 {
		t.Errorf("carbon count = %d", got)
	}
	if got := m.CountElement(Sulfur); got != 0 {
		t.Errorf("sulfur count = %d", got)
	}
}

func TestCentroid(t *testing.T) {
	m := small()
	want := vec.New(0.5, 0.5, 0.5)
	if got := m.Centroid(); !got.ApproxEq(want, 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestCenterOfMassWeighted(t *testing.T) {
	m := New("two", []Atom{
		{Element: Hydrogen, Pos: vec.New(0, 0, 0)},
		{Element: Carbon, Pos: vec.New(1, 0, 0)},
	})
	com := m.CenterOfMass()
	want := 12.011 / (12.011 + 1.008)
	if math.Abs(com.X-want) > 1e-9 {
		t.Errorf("COM.X = %v, want %v", com.X, want)
	}
}

func TestBoundsAndRadius(t *testing.T) {
	m := small()
	b := m.Bounds()
	if b.Lo != vec.Zero || b.Hi != vec.New(2, 2, 2) {
		t.Errorf("bounds %v..%v", b.Lo, b.Hi)
	}
	r := m.Radius()
	want := vec.New(0.5, 0.5, 0.5).Dist(vec.New(2, 0, 0))
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("Radius = %v, want %v", r, want)
	}
}

func TestTranslatedAndCentered(t *testing.T) {
	m := small()
	moved := m.Translated(vec.New(10, 0, 0))
	if moved.Atoms[0].Pos != vec.New(10, 0, 0) {
		t.Errorf("translate: %v", moved.Atoms[0].Pos)
	}
	// Original untouched.
	if m.Atoms[0].Pos != vec.Zero {
		t.Error("Translated mutated the original")
	}
	c := moved.Centered()
	if got := c.Centroid(); got.Norm() > 1e-9 {
		t.Errorf("centered centroid = %v", got)
	}
}

func TestAlphaCarbons(t *testing.T) {
	m := small()
	idx := m.AlphaCarbons()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 3 {
		t.Errorf("AlphaCarbons = %v", idx)
	}
}

func TestValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Errorf("valid molecule rejected: %v", err)
	}
	empty := &Molecule{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty molecule accepted")
	}
	bad := small()
	bad.Atoms[1].Pos.X = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN coordinates accepted")
	}
	badCharge := small()
	badCharge.Atoms[0].Charge = 9
	if err := badCharge.Validate(); err == nil {
		t.Error("implausible charge accepted")
	}
	badSerial := small()
	badSerial.Atoms[2].Serial = 99
	if err := badSerial.Validate(); err == nil {
		t.Error("broken serials accepted")
	}
}

func TestElementProperties(t *testing.T) {
	if Carbon.String() != "C" || Oxygen.String() != "O" {
		t.Error("element symbols wrong")
	}
	if e, ok := ElementFromSymbol("N"); !ok || e != Nitrogen {
		t.Error("ElementFromSymbol(N)")
	}
	if _, ok := ElementFromSymbol("XX"); ok {
		t.Error("unknown symbol accepted")
	}
	for e := Hydrogen; e < numElements; e++ {
		if e.VdwRadius() <= 0 || e.Mass() <= 0 {
			t.Errorf("element %v has non-positive radius or mass", e)
		}
	}
}

func TestPositionsIsCopy(t *testing.T) {
	m := small()
	pos := m.Positions()
	pos[0].X = 999
	if m.Atoms[0].Pos.X == 999 {
		t.Error("Positions aliases molecule storage")
	}
}

func TestString(t *testing.T) {
	if small().String() == "" {
		t.Error("empty String")
	}
}
