package molecule

import (
	"math"
	"testing"
)

func TestSyntheticSizesMatchPaperTable5(t *testing.T) {
	cases := []struct {
		m    *Molecule
		want int
	}{
		{Synthetic2BSMReceptor(), 3264},
		{Synthetic2BSMLigand(), 45},
		{Synthetic2BXGReceptor(), 8609},
		{Synthetic2BXGLigand(), 32},
	}
	for _, c := range cases {
		if c.m.NumAtoms() != c.want {
			t.Errorf("%s: %d atoms, want %d", c.m.Name, c.m.NumAtoms(), c.want)
		}
		if err := c.m.Validate(); err != nil {
			t.Errorf("%s: %v", c.m.Name, err)
		}
	}
}

func TestSyntheticProteinDeterministic(t *testing.T) {
	a := SyntheticProtein("a", 500, 42)
	b := SyntheticProtein("b", 500, 42)
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos || a.Atoms[i].Element != b.Atoms[i].Element {
			t.Fatalf("atom %d differs between same-seed generations", i)
		}
	}
	c := SyntheticProtein("c", 500, 43)
	if a.Atoms[10].Pos == c.Atoms[10].Pos {
		t.Error("different seeds produced identical geometry")
	}
}

func TestSyntheticProteinIsGlobular(t *testing.T) {
	m := Synthetic2BSMReceptor()
	r := m.Radius()
	// Ideal globular radius for 3264 atoms at ~0.0095 atoms/A^3 is ~43 A.
	// The walk overshoots somewhat; require the fold to stay compact.
	if r < 20 || r > 90 {
		t.Errorf("fold radius = %v A, not protein-like", r)
	}
	// Density within the bounding sphere should be protein-like, not a
	// diffuse random gas.
	density := float64(m.NumAtoms()) / (4.0 / 3.0 * math.Pi * r * r * r)
	if density < 0.002 {
		t.Errorf("density = %v atoms/A^3, too diffuse", density)
	}
}

func TestSyntheticProteinHasBackbone(t *testing.T) {
	m := SyntheticProtein("p", 800, 7)
	cas := m.AlphaCarbons()
	// ~1 CA per ~8 atoms.
	if len(cas) < 50 || len(cas) > 200 {
		t.Errorf("%d alpha carbons for 800 atoms", len(cas))
	}
	// Consecutive CA-CA distance must be the canonical 3.8 A.
	for i := 1; i < len(cas); i++ {
		d := m.Atoms[cas[i]].Pos.Dist(m.Atoms[cas[i-1]].Pos)
		if math.Abs(d-3.8) > 1e-6 {
			t.Fatalf("CA-CA distance %v, want 3.8", d)
		}
	}
}

func TestSyntheticProteinElementMix(t *testing.T) {
	m := Synthetic2BXGReceptor()
	c := m.CountElement(Carbon)
	n := m.CountElement(Nitrogen)
	o := m.CountElement(Oxygen)
	if c <= n || c <= o {
		t.Errorf("carbon (%d) should dominate N (%d) and O (%d)", c, n, o)
	}
	if n == 0 || o == 0 {
		t.Error("protein missing N or O atoms")
	}
}

func TestSyntheticLigandCenteredAndCompact(t *testing.T) {
	m := Synthetic2BSMLigand()
	if m.Centroid().Norm() > 1e-9 {
		t.Errorf("ligand centroid = %v, want origin", m.Centroid())
	}
	if r := m.Radius(); r > 20 {
		t.Errorf("ligand radius = %v A, not drug-like", r)
	}
}

func TestSyntheticLigandConnected(t *testing.T) {
	// Every atom must be within covalent distance (1.5 A steps) of another.
	m := SyntheticLigand("l", 40, 9)
	for i, a := range m.Atoms {
		nearest := math.Inf(1)
		for j, b := range m.Atoms {
			if i == j {
				continue
			}
			if d := a.Pos.Dist(b.Pos); d < nearest {
				nearest = d
			}
		}
		if nearest > 1.6 {
			t.Fatalf("atom %d nearest neighbour %v A: disconnected", i, nearest)
		}
	}
}

func TestSyntheticPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero atoms")
		}
	}()
	SyntheticProtein("bad", 0, 1)
}

func TestSyntheticLigandPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative atoms")
		}
	}()
	SyntheticLigand("bad", -1, 1)
}
