package molecule

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPDB checks that arbitrary input never panics the PDB parser and
// that anything it accepts is a valid molecule that survives a write/read
// round trip.
func FuzzReadPDB(f *testing.F) {
	f.Add(samplePDB)
	f.Add("ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N\n")
	f.Add("HEADER    X\nEND\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadPDB(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.NumAtoms() == 0 {
			t.Fatal("accepted a molecule with no atoms")
		}
		for _, a := range m.Atoms {
			if !a.Pos.IsFinite() {
				// Parsers may admit inf/NaN literals; Validate must
				// catch them so downstream code can rely on it.
				if m.Validate() == nil {
					t.Fatal("Validate passed a non-finite coordinate")
				}
				return
			}
		}
		var buf bytes.Buffer
		if err := WritePDB(&buf, m); err != nil {
			// The fixed-column PDB format cannot represent every parsed
			// coordinate; refusing is correct, corrupting output is not.
			return
		}
		if _, err := ReadPDB(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzReadXYZ checks the XYZ parser never panics and accepted molecules
// round-trip.
func FuzzReadXYZ(f *testing.F) {
	f.Add(sampleXYZ)
	f.Add("1\n\nC 0 0 0\n")
	f.Add("2\nname\nC 1 2 3\nO -1 -2 -3\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadXYZ(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.NumAtoms() == 0 {
			t.Fatal("accepted an empty molecule")
		}
		for _, a := range m.Atoms {
			if !a.Pos.IsFinite() {
				return // Validate covers this; round trip of inf loses precision
			}
		}
		var buf bytes.Buffer
		if err := WriteXYZ(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadXYZ(&buf)
		if err != nil {
			// Only rejectable if the name contained a newline-ish thing
			// the writer cannot represent; tolerate.
			return
		}
		if back.NumAtoms() != m.NumAtoms() {
			t.Fatalf("round trip changed atom count %d -> %d", m.NumAtoms(), back.NumAtoms())
		}
	})
}

// FuzzInferBonds checks bond inference on arbitrary small geometries:
// never panics, never produces out-of-range indices or duplicates.
func FuzzInferBonds(f *testing.F) {
	f.Add(3, int64(42))
	f.Add(1, int64(7))
	f.Fuzz(func(t *testing.T, n int, seed int64) {
		if n < 1 || n > 64 {
			return
		}
		m := SyntheticLigand("fuzz", n, uint64(seed))
		bonds := InferBonds(m)
		seen := map[Bond]bool{}
		for _, b := range bonds {
			if b.I < 0 || b.J >= n || b.I >= b.J {
				t.Fatalf("bad bond %+v for %d atoms", b, n)
			}
			if seen[b] {
				t.Fatalf("duplicate bond %+v", b)
			}
			seen[b] = true
		}
		// Components must partition the atoms.
		comps := Components(n, bonds)
		count := 0
		for _, c := range comps {
			count += len(c)
		}
		if count != n {
			t.Fatalf("components cover %d of %d atoms", count, n)
		}
	})
}
