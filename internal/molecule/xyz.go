package molecule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadXYZ parses the XYZ chemical file format: an atom count line, a
// comment line (used as the molecule name when non-empty), then one
// "symbol x y z" line per atom.
func ReadXYZ(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("xyz: missing atom count line")
	}
	count, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || count <= 0 {
		return nil, fmt.Errorf("xyz: bad atom count %q", sc.Text())
	}
	name := "unnamed"
	if sc.Scan() {
		if c := strings.TrimSpace(sc.Text()); c != "" {
			name = c
		}
	} else {
		return nil, fmt.Errorf("xyz: missing comment line")
	}
	atoms := make([]Atom, 0, count)
	for i := 0; i < count; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("xyz: expected %d atoms, got %d", count, i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			return nil, fmt.Errorf("xyz: line %d has %d fields, want 4", i+3, len(fields))
		}
		x, errX := strconv.ParseFloat(fields[1], 64)
		y, errY := strconv.ParseFloat(fields[2], 64)
		z, errZ := strconv.ParseFloat(fields[3], 64)
		if errX != nil || errY != nil || errZ != nil {
			return nil, fmt.Errorf("xyz: bad coordinates on line %d", i+3)
		}
		el, _ := ElementFromSymbol(strings.ToUpper(fields[0]))
		atoms = append(atoms, Atom{
			Name:    fields[0],
			Element: el,
		})
		atoms[len(atoms)-1].Pos.X = x
		atoms[len(atoms)-1].Pos.Y = y
		atoms[len(atoms)-1].Pos.Z = z
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("xyz: %w", err)
	}
	return New(name, atoms), nil
}

// WriteXYZ writes the molecule in XYZ format; output round-trips through
// ReadXYZ.
func WriteXYZ(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n%s\n", m.NumAtoms(), m.Name)
	for _, a := range m.Atoms {
		fmt.Fprintf(bw, "%-2s %12.6f %12.6f %12.6f\n",
			a.Element.String(), a.Pos.X, a.Pos.Y, a.Pos.Z)
	}
	return bw.Flush()
}
