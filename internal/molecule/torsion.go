package molecule

import "sort"

// Torsional flexibility. The paper docks rigid ligand poses "for
// simplicity"; real docking engines (and the comparative study the paper
// cites, López-Camacho et al. 2015) also search the ligand's rotatable
// bonds. TorsionSet identifies those bonds and the atom branch each one
// moves, turning a rigid pose into a pose plus a torsion-angle vector.

// Torsion is one rotatable bond: rotating by an angle spins Moving around
// the Axis.I -> Axis.J axis.
type Torsion struct {
	// Axis is the bond; atoms Axis.I and Axis.J stay fixed.
	Axis Bond
	// Moving lists the atom indices on the Axis.J side, sorted. They are
	// always the smaller side of the bond, so most of the ligand stays
	// put and the pose center stays meaningful.
	Moving []int
}

// TorsionSet is the ligand's torsional topology.
type TorsionSet struct {
	// Torsions lists the rotatable bonds in deterministic order.
	Torsions []Torsion
}

// Len returns the number of torsional degrees of freedom.
func (ts *TorsionSet) Len() int {
	if ts == nil {
		return 0
	}
	return len(ts.Torsions)
}

// NewTorsionSet infers the rotatable bonds of a molecule: bridge bonds of
// the covalent graph (rotating a ring bond would break the ring) between
// heavy atoms, where both sides have at least two atoms (rotating a
// terminal atom is a no-op for pair potentials with no improper terms).
func NewTorsionSet(m *Molecule) *TorsionSet {
	n := m.NumAtoms()
	bonds := InferBonds(m)
	adj := make([][]int, n) // adjacency as bond indices
	for bi, b := range bonds {
		adj[b.I] = append(adj[b.I], bi)
		adj[b.J] = append(adj[b.J], bi)
	}

	bridges := findBridges(n, bonds, adj)

	ts := &TorsionSet{}
	for _, bi := range bridges {
		b := bonds[bi]
		if m.Atoms[b.I].Element == Hydrogen || m.Atoms[b.J].Element == Hydrogen {
			continue
		}
		// The moving side is the component containing J when the bridge
		// is removed.
		side := sideOf(n, bonds, adj, bi, b.J)
		if len(side) < 2 || n-len(side) < 2 {
			continue // terminal rotation, no conformational effect
		}
		// Keep the smaller side moving.
		axis := b
		if len(side) > n-len(side) {
			axis = Bond{I: b.J, J: b.I}
			side = sideOf(n, bonds, adj, bi, b.I)
		}
		sort.Ints(side)
		ts.Torsions = append(ts.Torsions, Torsion{Axis: axis, Moving: side})
	}
	sort.Slice(ts.Torsions, func(a, b int) bool {
		ta, tb := ts.Torsions[a].Axis, ts.Torsions[b].Axis
		if ta.I != tb.I {
			return ta.I < tb.I
		}
		return ta.J < tb.J
	})
	return ts
}

// findBridges returns the indices of bridge bonds (Tarjan's algorithm,
// iterative to avoid deep recursion on long chains).
func findBridges(n int, bonds []Bond, adj [][]int) []int {
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []int
	timer := 0

	type frame struct {
		node, parentBond, childIdx int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{node: start, parentBond: -1}}
		disc[start], low[start] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.childIdx < len(adj[f.node]) {
				bi := adj[f.node][f.childIdx]
				f.childIdx++
				if bi == f.parentBond {
					continue
				}
				b := bonds[bi]
				next := b.I
				if next == f.node {
					next = b.J
				}
				if disc[next] == -1 {
					disc[next], low[next] = timer, timer
					timer++
					stack = append(stack, frame{node: next, parentBond: bi})
				} else if disc[next] < low[f.node] {
					low[f.node] = disc[next]
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					if low[f.node] < low[p.node] {
						low[p.node] = low[f.node]
					}
					if low[f.node] > disc[p.node] {
						bridges = append(bridges, f.parentBond)
					}
				}
			}
		}
	}
	sort.Ints(bridges)
	return bridges
}

// sideOf returns the atoms reachable from seed without crossing bond
// `removed`.
func sideOf(n int, bonds []Bond, adj [][]int, removed, seed int) []int {
	seen := make([]bool, n)
	seen[seed] = true
	stack := []int{seed}
	var out []int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, cur)
		for _, bi := range adj[cur] {
			if bi == removed {
				continue
			}
			b := bonds[bi]
			next := b.I
			if next == cur {
				next = b.J
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return out
}
