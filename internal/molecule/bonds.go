package molecule

import (
	"fmt"
	"sort"

	"github.com/metascreen/metascreen/internal/vec"
)

// Bond is a covalent bond between two atoms, identified by their 0-based
// indices with I < J.
type Bond struct {
	I, J int
}

// bondTolerance is the slack added to the sum of covalent radii when
// inferring bonds from geometry.
const bondTolerance = 0.45

// covalentRadius returns the single-bond covalent radius in angstroms.
func (e Element) covalentRadius() float64 {
	switch e {
	case Hydrogen:
		return 0.31
	case Carbon:
		return 0.76
	case Nitrogen:
		return 0.71
	case Oxygen:
		return 0.66
	case Sulfur:
		return 1.05
	case Phosphorus:
		return 1.07
	}
	return 0.76
}

// InferBonds derives covalent bonds from geometry: two atoms are bonded
// when their distance is below the sum of covalent radii plus tolerance.
// A cell grid keeps this near O(N). Bonds are returned sorted (I, then J).
func InferBonds(m *Molecule) []Bond {
	if m.NumAtoms() < 2 {
		return nil
	}
	// Maximum bond length bounds the search radius.
	maxR := 0.0
	for _, a := range m.Atoms {
		if r := a.Element.covalentRadius(); r > maxR {
			maxR = r
		}
	}
	search := 2*maxR + bondTolerance

	grid := newCountGrid(m, search)
	var bonds []Bond
	for i, a := range m.Atoms {
		ri := a.Element.covalentRadius()
		grid.visit(a.Pos, func(j int32) {
			if int(j) <= i {
				return
			}
			b := m.Atoms[j]
			limit := ri + b.Element.covalentRadius() + bondTolerance
			if a.Pos.Dist2(b.Pos) <= limit*limit {
				bonds = append(bonds, Bond{I: i, J: int(j)})
			}
		})
	}
	sort.Slice(bonds, func(x, y int) bool {
		if bonds[x].I != bonds[y].I {
			return bonds[x].I < bonds[y].I
		}
		return bonds[x].J < bonds[y].J
	})
	return bonds
}

// countGrid gains a visitor for bond inference.
func (g *countGrid) visit(p vec.V3, fn func(i int32)) {
	ix := clampInt(int((p.X-g.origin.X)/g.cell), 0, g.nx-1)
	iy := clampInt(int((p.Y-g.origin.Y)/g.cell), 0, g.ny-1)
	iz := clampInt(int((p.Z-g.origin.Z)/g.cell), 0, g.nz-1)
	for x := maxInt(ix-1, 0); x <= minInt(ix+1, g.nx-1); x++ {
		for y := maxInt(iy-1, 0); y <= minInt(iy+1, g.ny-1); y++ {
			for z := maxInt(iz-1, 0); z <= minInt(iz+1, g.nz-1); z++ {
				c := (x*g.ny+y)*g.nz + z
				for k := g.start[c]; k < g.start[c+1]; k++ {
					fn(g.idx[k])
				}
			}
		}
	}
}

// countGrid is reused from surface-style neighbour counting; it lives in
// this package for bonds so the molecule package stays self-contained.
type countGrid struct {
	origin     vec.V3
	cell       float64
	nx, ny, nz int
	start      []int32
	idx        []int32
	pos        []vec.V3
}

func newCountGrid(m *Molecule, cell float64) *countGrid {
	g := &countGrid{cell: cell, pos: m.Positions()}
	b := vec.BoundPoints(g.pos)
	g.origin = b.Lo
	size := b.Size()
	g.nx = int(size.X/cell) + 1
	g.ny = int(size.Y/cell) + 1
	g.nz = int(size.Z/cell) + 1
	n := g.nx * g.ny * g.nz
	counts := make([]int32, n+1)
	cellOf := make([]int32, len(g.pos))
	for i, p := range g.pos {
		c := g.cellIndex(p)
		cellOf[i] = c
		counts[c+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	g.start = counts
	g.idx = make([]int32, len(g.pos))
	cursor := make([]int32, n)
	for i := range g.pos {
		c := cellOf[i]
		g.idx[g.start[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

func (g *countGrid) cellIndex(p vec.V3) int32 {
	ix := clampInt(int((p.X-g.origin.X)/g.cell), 0, g.nx-1)
	iy := clampInt(int((p.Y-g.origin.Y)/g.cell), 0, g.ny-1)
	iz := clampInt(int((p.Z-g.origin.Z)/g.cell), 0, g.nz-1)
	return int32((ix*g.ny+iy)*g.nz + iz)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Components returns the connected components induced by the bonds, each a
// sorted list of atom indices, ordered by their smallest member. Atoms
// with no bonds form singleton components.
func Components(numAtoms int, bonds []Bond) [][]int {
	parent := make([]int, numAtoms)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, b := range bonds {
		ri, rj := find(b.I), find(b.J)
		if ri != rj {
			parent[ri] = rj
		}
	}
	groups := map[int][]int{}
	for i := 0; i < numAtoms; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// ValidateConnectivity checks that the molecule is a single covalent
// component — the sanity check for ligand inputs, which must be one
// molecule, not a complex.
func ValidateConnectivity(m *Molecule) error {
	if m.NumAtoms() < 2 {
		return nil
	}
	comps := Components(m.NumAtoms(), InferBonds(m))
	if len(comps) != 1 {
		return fmt.Errorf("molecule %q has %d disconnected fragments", m.Name, len(comps))
	}
	return nil
}
