package molecule

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/metascreen/metascreen/internal/vec"
)

const samplePDB = `HEADER    HYDROLASE                               01-JAN-16   1ABC
REMARK this line is ignored
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
ATOM      3  C   ALA A   1      12.689   7.153  -4.936  1.00  0.00           C
HETATM    4  O1  LIG B   2       1.000   2.000   3.000  1.00  0.00           O
TER
END
`

func TestReadPDB(t *testing.T) {
	m, err := ReadPDB(strings.NewReader(samplePDB))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "1ABC" {
		t.Errorf("name = %q", m.Name)
	}
	if m.NumAtoms() != 4 {
		t.Fatalf("atoms = %d", m.NumAtoms())
	}
	a := m.Atoms[1]
	if a.Name != "CA" || a.Element != Carbon {
		t.Errorf("atom 2 = %+v", a)
	}
	if math.Abs(a.Pos.X-11.639) > 1e-9 || math.Abs(a.Pos.Z+5.147) > 1e-9 {
		t.Errorf("atom 2 pos = %v", a.Pos)
	}
	if a.Residue != 1 {
		t.Errorf("residue = %d", a.Residue)
	}
	if m.Atoms[3].Element != Oxygen {
		t.Errorf("HETATM element = %v", m.Atoms[3].Element)
	}
}

func TestReadPDBNoAtoms(t *testing.T) {
	if _, err := ReadPDB(strings.NewReader("REMARK nothing\n")); err == nil {
		t.Error("no error for atom-free file")
	}
}

func TestReadPDBBadCoordinates(t *testing.T) {
	bad := "ATOM      1  N   ALA A   1      xx.xxx   6.134  -6.504  1.00  0.00           N\n"
	if _, err := ReadPDB(strings.NewReader(bad)); err == nil {
		t.Error("no error for malformed coordinates")
	}
}

func TestReadPDBElementFallback(t *testing.T) {
	// No element column: element inferred from the atom name.
	short := "ATOM      1  ND2 ASN A   1      11.104   6.134  -6.504\nEND\n"
	m, err := ReadPDB(strings.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if m.Atoms[0].Element != Nitrogen {
		t.Errorf("fallback element = %v, want N", m.Atoms[0].Element)
	}
}

func TestPDBRoundTrip(t *testing.T) {
	orig := SyntheticLigand("roundtrip", 25, 3)
	var buf bytes.Buffer
	if err := WritePDB(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAtoms() != orig.NumAtoms() {
		t.Fatalf("round trip atoms: %d != %d", back.NumAtoms(), orig.NumAtoms())
	}
	for i := range orig.Atoms {
		if !back.Atoms[i].Pos.ApproxEq(orig.Atoms[i].Pos, 0.001) {
			t.Errorf("atom %d pos %v != %v", i, back.Atoms[i].Pos, orig.Atoms[i].Pos)
		}
		if back.Atoms[i].Element != orig.Atoms[i].Element {
			t.Errorf("atom %d element changed", i)
		}
	}
}

func TestWritePDBRejectsOverflowingCoordinates(t *testing.T) {
	// Found by FuzzReadPDB: a coordinate of 10000.0 is 9 characters wide
	// and silently shifted every later column, corrupting the record.
	m := New("wide", []Atom{
		{Element: Carbon, Pos: vec.New(10000.0, 0, 0)},
	})
	var buf bytes.Buffer
	if err := WritePDB(&buf, m); err == nil {
		t.Error("coordinate beyond the PDB fixed columns accepted")
	}
	ok := New("edge", []Atom{
		{Element: Carbon, Pos: vec.New(9999.999, -999.999, 0)},
	})
	buf.Reset()
	if err := WritePDB(&buf, ok); err != nil {
		t.Errorf("representable edge coordinates rejected: %v", err)
	}
	if _, err := ReadPDB(&buf); err != nil {
		t.Errorf("edge round trip failed: %v", err)
	}
}

func TestReadPDBStopsAtEND(t *testing.T) {
	two := samplePDB + "ATOM      9  CB  ALA A   3      0.0     0.0     0.0                         C\n"
	m, err := ReadPDB(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAtoms() != 4 {
		t.Errorf("parsed %d atoms, want parsing to stop at END", m.NumAtoms())
	}
}
