package molecule

import (
	"testing"

	"github.com/metascreen/metascreen/internal/vec"
)

// chain builds n carbons in a line with the given spacing.
func chain(n int, spacing float64) *Molecule {
	atoms := make([]Atom, n)
	for i := range atoms {
		atoms[i] = Atom{Name: "C", Element: Carbon, Pos: vec.New(float64(i)*spacing, 0, 0)}
	}
	return New("chain", atoms)
}

func TestInferBondsChain(t *testing.T) {
	m := chain(5, 1.54) // canonical C-C bond length
	bonds := InferBonds(m)
	if len(bonds) != 4 {
		t.Fatalf("%d bonds, want 4: %v", len(bonds), bonds)
	}
	for i, b := range bonds {
		if b.I != i || b.J != i+1 {
			t.Errorf("bond %d = %+v", i, b)
		}
	}
}

func TestInferBondsNoFalsePositives(t *testing.T) {
	m := chain(4, 3.0) // far beyond covalent distance
	if bonds := InferBonds(m); len(bonds) != 0 {
		t.Errorf("spurious bonds: %v", bonds)
	}
}

func TestInferBondsHydrogens(t *testing.T) {
	// C-H at 1.09 A bonds; H-H at the same positions apart would not
	// if placed beyond 2*0.31+0.45.
	m := New("ch", []Atom{
		{Element: Carbon, Pos: vec.Zero},
		{Element: Hydrogen, Pos: vec.New(1.09, 0, 0)},
	})
	if len(InferBonds(m)) != 1 {
		t.Error("C-H bond not found")
	}
	hh := New("hh", []Atom{
		{Element: Hydrogen, Pos: vec.Zero},
		{Element: Hydrogen, Pos: vec.New(1.2, 0, 0)},
	})
	if len(InferBonds(hh)) != 0 {
		t.Error("H-H at 1.2 A should not bond")
	}
}

func TestInferBondsTinyMolecules(t *testing.T) {
	if InferBonds(New("one", []Atom{{Element: Carbon}})) != nil {
		t.Error("single atom produced bonds")
	}
	if InferBonds(&Molecule{Name: "empty"}) != nil {
		t.Error("empty molecule produced bonds")
	}
}

func TestComponents(t *testing.T) {
	// Two fragments: 0-1-2 and 3-4; atom 5 isolated.
	bonds := []Bond{{0, 1}, {1, 2}, {3, 4}}
	comps := Components(6, bonds)
	if len(comps) != 3 {
		t.Fatalf("%d components: %v", len(comps), comps)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Errorf("component %d = %v, want %v", i, comps[i], want[i])
			continue
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Errorf("component %d = %v, want %v", i, comps[i], want[i])
				break
			}
		}
	}
}

func TestValidateConnectivity(t *testing.T) {
	if err := ValidateConnectivity(chain(6, 1.54)); err != nil {
		t.Errorf("connected chain rejected: %v", err)
	}
	broken := New("broken", []Atom{
		{Element: Carbon, Pos: vec.Zero},
		{Element: Carbon, Pos: vec.New(1.5, 0, 0)},
		{Element: Carbon, Pos: vec.New(50, 0, 0)},
	})
	if err := ValidateConnectivity(broken); err == nil {
		t.Error("disconnected molecule accepted")
	}
	if err := ValidateConnectivity(New("one", []Atom{{Element: Carbon}})); err != nil {
		t.Error("single atom rejected")
	}
}

func TestSyntheticLigandsAreConnected(t *testing.T) {
	for _, m := range []*Molecule{
		Synthetic2BSMLigand(),
		Synthetic2BXGLigand(),
		SyntheticLigand("x", 50, 77),
	} {
		if err := ValidateConnectivity(m); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestSyntheticProteinBackboneBonded(t *testing.T) {
	// Protein backbones must form one dominant component containing the
	// vast majority of atoms (side chains attach to it).
	m := SyntheticProtein("p", 600, 55)
	comps := Components(m.NumAtoms(), InferBonds(m))
	largest := 0
	for _, c := range comps {
		if len(c) > largest {
			largest = len(c)
		}
	}
	if largest < m.NumAtoms()*5/10 {
		t.Errorf("largest component has %d of %d atoms", largest, m.NumAtoms())
	}
}
