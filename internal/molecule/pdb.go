package molecule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadPDB parses a subset of the Protein Data Bank format: ATOM and HETATM
// records supply atoms; TER and END terminate a chain or the file; all other
// records are ignored. Column positions follow the PDB 3.3 specification.
// The molecule name is taken from the HEADER record when present.
func ReadPDB(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	name := "unnamed"
	var atoms []Atom
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "HEADER"):
			if len(text) > 62 {
				if id := strings.TrimSpace(text[62:]); id != "" {
					name = id
				}
			}
		case strings.HasPrefix(text, "ATOM") || strings.HasPrefix(text, "HETATM"):
			a, err := parseAtomRecord(text)
			if err != nil {
				return nil, fmt.Errorf("pdb line %d: %w", line, err)
			}
			atoms = append(atoms, a)
		case strings.HasPrefix(text, "END"):
			// END or ENDMDL: stop at the first model.
			if len(atoms) > 0 {
				return New(name, atoms), nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pdb: %w", err)
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("pdb: no ATOM or HETATM records")
	}
	return New(name, atoms), nil
}

// field extracts columns [lo, hi) (0-based) of a fixed-width record,
// tolerating short lines.
func field(s string, lo, hi int) string {
	if lo >= len(s) {
		return ""
	}
	if hi > len(s) {
		hi = len(s)
	}
	return strings.TrimSpace(s[lo:hi])
}

func parseAtomRecord(s string) (Atom, error) {
	var a Atom
	a.Name = field(s, 12, 16)
	x, errX := strconv.ParseFloat(field(s, 30, 38), 64)
	y, errY := strconv.ParseFloat(field(s, 38, 46), 64)
	z, errZ := strconv.ParseFloat(field(s, 46, 54), 64)
	if errX != nil || errY != nil || errZ != nil {
		return a, fmt.Errorf("bad coordinates in %q", s)
	}
	a.Pos.X, a.Pos.Y, a.Pos.Z = x, y, z
	if res := field(s, 22, 26); res != "" {
		if n, err := strconv.Atoi(res); err == nil {
			a.Residue = n
		}
	}
	sym := field(s, 76, 78)
	if sym == "" {
		// Fall back to the first letter of the atom name, the usual
		// convention for files lacking the element column.
		for _, c := range a.Name {
			if c >= 'A' && c <= 'Z' {
				sym = string(c)
				break
			}
		}
	}
	a.Element, _ = ElementFromSymbol(strings.ToUpper(sym))
	return a, nil
}

// WritePDB writes the molecule as minimal ATOM records followed by END.
// Output round-trips through ReadPDB. Coordinates outside the format's
// fixed 8-column fields (beyond [-999.999, 9999.999] angstroms) cannot be
// represented and are rejected.
func WritePDB(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "HEADER    SYNTHETIC STRUCTURE                     01-JAN-16   %s\n", m.Name)
	for _, a := range m.Atoms {
		for _, c := range [3]float64{a.Pos.X, a.Pos.Y, a.Pos.Z} {
			if c < -999.999 || c > 9999.999 || c != c {
				return fmt.Errorf("pdb: atom %d coordinate %g exceeds the format's fixed columns", a.Serial, c)
			}
		}
		// Columns per the PDB 3.3 ATOM record layout.
		fmt.Fprintf(bw, "ATOM  %5d %-4s %-3s A%4d    %8.3f%8.3f%8.3f%6.2f%6.2f          %2s\n",
			a.Serial%100000, truncate(a.Name, 4), "UNK", a.Residue%10000,
			a.Pos.X, a.Pos.Y, a.Pos.Z, 1.0, 0.0, a.Element.String())
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
