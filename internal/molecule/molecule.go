package molecule

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/vec"
)

// Molecule is an ordered collection of atoms: a receptor protein or a small
// ligand. Molecules are immutable after construction in normal use; docking
// never mutates the molecule, it transforms copies of the ligand's
// coordinates (see internal/conformation).
type Molecule struct {
	// Name identifies the molecule, e.g. "2BSM-receptor".
	Name string
	// Atoms is the atom list; Serial fields are 1-based and dense.
	Atoms []Atom
}

// New returns a molecule with the given name and atoms, renumbering atom
// serials to be dense and 1-based.
func New(name string, atoms []Atom) *Molecule {
	m := &Molecule{Name: name, Atoms: atoms}
	for i := range m.Atoms {
		m.Atoms[i].Serial = i + 1
	}
	return m
}

// NumAtoms returns the number of atoms.
func (m *Molecule) NumAtoms() int { return len(m.Atoms) }

// Positions returns a fresh slice with a copy of every atom position, in
// atom order. Scoring kernels operate on position slices, not on molecules.
func (m *Molecule) Positions() []vec.V3 {
	pos := make([]vec.V3, len(m.Atoms))
	for i, a := range m.Atoms {
		pos[i] = a.Pos
	}
	return pos
}

// Centroid returns the unweighted centroid of the molecule.
func (m *Molecule) Centroid() vec.V3 {
	return vec.Centroid(m.Positions())
}

// CenterOfMass returns the mass-weighted center of the molecule.
func (m *Molecule) CenterOfMass() vec.V3 {
	var c vec.V3
	total := 0.0
	for _, a := range m.Atoms {
		w := a.Element.Mass()
		c = c.Add(a.Pos.Scale(w))
		total += w
	}
	if total == 0 {
		return vec.Zero
	}
	return c.Scale(1 / total)
}

// Bounds returns the axis-aligned bounding box of the molecule.
func (m *Molecule) Bounds() vec.AABB {
	var b vec.AABB
	for _, a := range m.Atoms {
		b.Extend(a.Pos)
	}
	return b
}

// Radius returns the maximum distance of any atom from the centroid, the
// bounding-sphere radius about the centroid.
func (m *Molecule) Radius() float64 {
	c := m.Centroid()
	r := 0.0
	for _, a := range m.Atoms {
		if d := a.Pos.Dist(c); d > r {
			r = d
		}
	}
	return r
}

// Translated returns a copy of the molecule with every atom moved by d.
func (m *Molecule) Translated(d vec.V3) *Molecule {
	atoms := make([]Atom, len(m.Atoms))
	copy(atoms, m.Atoms)
	for i := range atoms {
		atoms[i].Pos = atoms[i].Pos.Add(d)
	}
	return &Molecule{Name: m.Name, Atoms: atoms}
}

// Centered returns a copy of the molecule translated so that its centroid is
// at the origin. Ligands are conventionally stored centered, so that a
// conformation's translation places the ligand center directly.
func (m *Molecule) Centered() *Molecule {
	return m.Translated(m.Centroid().Neg())
}

// CountElement returns the number of atoms of the given element.
func (m *Molecule) CountElement(e Element) int {
	n := 0
	for _, a := range m.Atoms {
		if a.Element == e {
			n++
		}
	}
	return n
}

// AlphaCarbons returns the indices of all alpha-carbon atoms.
func (m *Molecule) AlphaCarbons() []int {
	var idx []int
	for i, a := range m.Atoms {
		if a.IsAlphaCarbon() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Validate checks structural invariants: at least one atom, finite
// coordinates, dense 1-based serials, and bounded partial charges.
func (m *Molecule) Validate() error {
	if len(m.Atoms) == 0 {
		return fmt.Errorf("molecule %q has no atoms", m.Name)
	}
	for i, a := range m.Atoms {
		if a.Serial != i+1 {
			return fmt.Errorf("molecule %q: atom %d has serial %d", m.Name, i, a.Serial)
		}
		if !a.Pos.IsFinite() {
			return fmt.Errorf("molecule %q: atom %d has non-finite position", m.Name, i)
		}
		if a.Charge < -3 || a.Charge > 3 {
			return fmt.Errorf("molecule %q: atom %d has implausible charge %g", m.Name, i, a.Charge)
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (m *Molecule) String() string {
	return fmt.Sprintf("%s (%d atoms)", m.Name, len(m.Atoms))
}
