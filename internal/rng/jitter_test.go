package rng

import (
	"fmt"
	"testing"
	"time"
)

// TestJitterFactorProperties drives JitterFactor with generated keys,
// sequence numbers, and spreads, and checks the contract every caller
// relies on: bounded band, determinism, and enough dispersion that a
// fleet sharing one nominal delay does not fire in lockstep.
func TestJitterFactorProperties(t *testing.T) {
	src := New(42)
	for trial := 0; trial < 200; trial++ {
		spread := src.Range(0.05, 0.95)
		key := fmt.Sprintf("node-%d.example:%d", src.Intn(1000), src.Intn(65536))
		distinct := map[float64]bool{}
		for seq := uint64(0); seq < 64; seq++ {
			f := JitterFactor(spread, key, seq)
			if f < 1-spread || f >= 1+spread {
				t.Fatalf("spread %.3f key %q seq %d: factor %.6f outside [%.3f, %.3f)",
					spread, key, seq, f, 1-spread, 1+spread)
			}
			if f != JitterFactor(spread, key, seq) {
				t.Fatalf("factor not deterministic for key %q seq %d", key, seq)
			}
			distinct[f] = true
		}
		if len(distinct) < 16 {
			t.Fatalf("spread %.3f key %q: only %d distinct factors over 64 seqs", spread, key, len(distinct))
		}
	}
}

// TestJitterZeroSpreadIsIdentity pins the degenerate edge: spread 0 must
// return the nominal duration untouched, whatever the key.
func TestJitterZeroSpreadIsIdentity(t *testing.T) {
	for seq := uint64(0); seq < 10; seq++ {
		if got := Jitter(time.Second, 0, "anything", seq); got != time.Second {
			t.Fatalf("seq %d: zero spread changed the delay: %v", seq, got)
		}
	}
}

// TestJitterScalesWithDuration checks the factor is independent of the
// duration: doubling d doubles the jittered delay, up to the 1ns
// truncation of the float->Duration conversion.
func TestJitterScalesWithDuration(t *testing.T) {
	for seq := uint64(1); seq <= 8; seq++ {
		d1 := Jitter(250*time.Millisecond, 0.5, "w1", seq)
		d2 := Jitter(500*time.Millisecond, 0.5, "w1", seq)
		if diff := d2 - 2*d1; diff < -time.Nanosecond || diff > time.Nanosecond {
			t.Fatalf("seq %d: jitter not linear in d: %v vs %v", seq, d1, d2)
		}
	}
}

// TestJitterKeySeparation: two distinct keys must not share a factor
// schedule, or the herd the jitter exists to break up re-forms.
func TestJitterKeySeparation(t *testing.T) {
	same := 0
	for seq := uint64(0); seq < 100; seq++ {
		if JitterFactor(0.2, "worker-a", seq) == JitterFactor(0.2, "worker-b", seq) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("keys collide on %d/100 seqs — factors are not key-separated", same)
	}
}
