package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Float64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Intn(1000)
	}
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Split(uint64(i))
	}
}

func BenchmarkUnitVector(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.UnitVector()
	}
}

func BenchmarkQuat(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Quat()
	}
}
