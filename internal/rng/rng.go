// Package rng implements a deterministic, splittable pseudo-random number
// generator used by all stochastic components of metascreen.
//
// The paper's metaheuristics run as independent stochastic executions on
// different devices; reproducing a run bit-for-bit therefore requires that
// every parallel execution derives its own stream from a single seed in a
// way that is independent of scheduling order. Source implements
// xoshiro256**, seeded through SplitMix64, and Split derives statistically
// independent child streams from named lanes.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator. It is NOT safe
// for concurrent use; give each goroutine its own Source via Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x and returns a well-mixed 64-bit value. It is the
// recommended seeding procedure for xoshiro generators.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// xoshiro requires a nonzero state; splitMix64 of any seed makes an
	// all-zero state astronomically unlikely, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child stream identified by lane. Splitting
// does not advance the parent stream, so the set of children is a pure
// function of (parent state, lane): parallel executions can derive their
// streams in any order and still reproduce the same run.
func (r *Source) Split(lane uint64) *Source {
	c := new(Source)
	r.SplitInto(lane, c)
	return c
}

// SplitInto is Split writing the child stream into dst instead of
// allocating one — the form hot per-generation loops use so that deriving
// thousands of per-conformation streams costs no allocations.
func (r *Source) SplitInto(lane uint64, dst *Source) {
	x := r.s[0] ^ rotl(r.s[2], 29) ^ (lane * 0xd2b74407b1ce6e93)
	for i := range dst.s {
		dst.s[i] = splitMix64(&x)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 1
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= -un%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask+a0*b1)>>32
	return
}

// Range returns a uniform value in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal deviate using the polar
// (Marsaglia) method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }
