package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	parent := New(7)
	c1a := parent.Split(1)
	c2a := parent.Split(2)

	parent2 := New(7)
	c2b := parent2.Split(2)
	c1b := parent2.Split(1)

	for i := 0; i < 100; i++ {
		if c1a.Uint64() != c1b.Uint64() {
			t.Fatal("lane 1 depends on split order")
		}
		if c2a.Uint64() != c2b.Uint64() {
			t.Fatal("lane 2 depends on split order")
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestSplitLanesDiffer(t *testing.T) {
	p := New(3)
	c1 := p.Split(1)
	c2 := p.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between lanes", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) value %d seen %d times, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range = %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(31)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Errorf("shuffle lost elements: %v", s)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}

func TestQuickIntnInBounds(t *testing.T) {
	r := New(41)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// Any seed must produce a usable (nonzero-state) generator.
	r := New(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Error("generator from seed 0 appears stuck at zero")
	}
}
