package rng

import (
	"fmt"
	"hash/fnv"
	"time"
)

// JitterFactor returns a deterministic multiplier in [1-spread, 1+spread)
// derived from the FNV-1a hash of "key/seq". Retry loops, heartbeats, and
// backoff schedules all need jitter to avoid thundering herds, but this
// codebase's tests replay whole failure scenarios byte-for-byte — so the
// jitter must be a pure function of who is waiting (key) and how many
// times they have waited (seq), never of wall-clock entropy.
//
// The quantisation to 1024 steps keeps the factor reproducible across
// platforms (no float accumulation ordering) and is plenty of spread for
// de-synchronising fleets.
func JitterFactor(spread float64, key string, seq uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", key, seq)
	return 1 - spread + 2*spread*float64(h.Sum64()%1024)/1024
}

// Jitter scales d by JitterFactor(spread, key, seq). spread 0.5 yields
// delays in [d/2, 3d/2) — the classic "equal jitter" band used by the
// dist client and the service retry loop; spread 0.2 yields the ±20%
// band heartbeat senders use.
func Jitter(d time.Duration, spread float64, key string, seq uint64) time.Duration {
	return time.Duration(float64(d) * JitterFactor(spread, key, seq))
}
