package rng

import (
	"math"

	"github.com/metascreen/metascreen/internal/vec"
)

// UnitVector returns a vector uniformly distributed on the unit sphere.
func (r *Source) UnitVector() vec.V3 {
	// Marsaglia (1972): uniform on the sphere without trig in the common path.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-s)
		return vec.V3{X: u * f, Y: v * f, Z: 1 - 2*s}
	}
}

// InSphere returns a point uniformly distributed inside the sphere of the
// given radius centered at the origin.
func (r *Source) InSphere(radius float64) vec.V3 {
	// Rejection from the bounding cube: acceptance ratio pi/6.
	for {
		p := vec.V3{
			X: r.Range(-1, 1),
			Y: r.Range(-1, 1),
			Z: r.Range(-1, 1),
		}
		if p.Norm2() <= 1 {
			return p.Scale(radius)
		}
	}
}

// InBox returns a point uniformly distributed inside the box.
func (r *Source) InBox(b vec.AABB) vec.V3 {
	if b.Empty() {
		return vec.Zero
	}
	return vec.V3{
		X: r.Range(b.Lo.X, b.Hi.X),
		Y: r.Range(b.Lo.Y, b.Hi.Y),
		Z: r.Range(b.Lo.Z, b.Hi.Z),
	}
}

// Quat returns a rotation uniformly distributed over SO(3) (Shoemake's
// subgroup algorithm).
func (r *Source) Quat() vec.Quat {
	u1, u2, u3 := r.Float64(), r.Float64(), r.Float64()
	a := math.Sqrt(1 - u1)
	b := math.Sqrt(u1)
	s2, c2 := math.Sincos(2 * math.Pi * u2)
	s3, c3 := math.Sincos(2 * math.Pi * u3)
	return vec.Quat{W: a * s2, X: a * c2, Y: b * s3, Z: b * c3}
}

// SmallQuat returns a rotation by an angle uniform in [0, maxAngle] radians
// about a uniformly random axis. It is the perturbation move used by the
// Improve (local search) phase.
func (r *Source) SmallQuat(maxAngle float64) vec.Quat {
	return vec.QuatFromAxisAngle(r.UnitVector(), r.Float64()*maxAngle)
}
