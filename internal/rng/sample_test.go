package rng

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/vec"
)

func TestUnitVectorNorm(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.UnitVector()
		if math.Abs(v.Norm()-1) > 1e-9 {
			t.Fatalf("norm = %v", v.Norm())
		}
	}
}

func TestUnitVectorIsotropy(t *testing.T) {
	r := New(2)
	var mean vec.V3
	const n = 50000
	for i := 0; i < n; i++ {
		mean = mean.Add(r.UnitVector())
	}
	mean = mean.Scale(1.0 / n)
	if mean.Norm() > 0.02 {
		t.Errorf("mean direction = %v, want ~0", mean)
	}
}

func TestInSphereRadius(t *testing.T) {
	r := New(3)
	inside60 := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := r.InSphere(2)
		if p.Norm() > 2+1e-12 {
			t.Fatalf("point outside sphere: %v", p)
		}
		// For a uniform ball, P(|p| < 0.843*R) ~ 0.6.
		if p.Norm() < 2*0.8434 {
			inside60++
		}
	}
	frac := float64(inside60) / n
	if math.Abs(frac-0.6) > 0.02 {
		t.Errorf("radial CDF check: frac = %v, want ~0.6 (non-uniform ball?)", frac)
	}
}

func TestInBox(t *testing.T) {
	r := New(4)
	b := vec.NewAABB(vec.New(-1, 0, 2), vec.New(1, 5, 3))
	for i := 0; i < 1000; i++ {
		if p := r.InBox(b); !b.Contains(p) {
			t.Fatalf("point outside box: %v", p)
		}
	}
	var empty vec.AABB
	if r.InBox(empty) != vec.Zero {
		t.Error("InBox(empty) != zero")
	}
}

func TestQuatUnitAndUniform(t *testing.T) {
	r := New(5)
	var meanAngle float64
	const n = 20000
	for i := 0; i < n; i++ {
		q := r.Quat()
		if math.Abs(q.Norm()-1) > 1e-9 {
			t.Fatalf("quat norm = %v", q.Norm())
		}
		meanAngle += q.AngleTo(vec.IdentityQuat)
	}
	meanAngle /= n
	// For uniform SO(3), E[angle] = pi/2 + 2/pi.
	want := math.Pi/2 + 2/math.Pi
	if math.Abs(meanAngle-want) > 0.02 {
		t.Errorf("mean rotation angle = %v, want ~%v", meanAngle, want)
	}
}

func TestSmallQuatBounded(t *testing.T) {
	r := New(6)
	const maxAngle = 0.3
	for i := 0; i < 1000; i++ {
		q := r.SmallQuat(maxAngle)
		if a := q.AngleTo(vec.IdentityQuat); a > maxAngle+1e-9 {
			t.Fatalf("angle = %v > max %v", a, maxAngle)
		}
	}
}
