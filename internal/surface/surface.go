// Package surface divides a receptor protein's surface into the arbitrary,
// independent regions ("spots") over which the virtual-screening engine
// docks ligand copies simultaneously — the BINDSURF strategy the paper
// builds on.
//
// Spots are found the way the paper describes ("identified by finding out a
// specific type of atoms in the protein"): alpha-carbon atoms are ranked by
// solvent exposure, estimated from the local atom density, and the most
// exposed ones are selected greedily subject to a minimum spacing so that
// the regions tile the whole surface instead of crowding one patch.
package surface

import (
	"fmt"
	"sort"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/vec"
)

// Spot is one independent docking region on the receptor surface.
type Spot struct {
	// ID is the spot's dense 0-based index.
	ID int
	// Center is the anchor position on the surface.
	Center vec.V3
	// Normal is the outward direction, pointing away from the receptor
	// interior; initial conformations are placed along it.
	Normal vec.V3
	// Radius is the search-region radius: conformations for this spot stay
	// within Radius of Center.
	Radius float64
	// AtomIndex is the receptor atom the spot is anchored to.
	AtomIndex int
	// Exposure is the solvent-exposure estimate in [0, 1]; larger means
	// more exposed.
	Exposure float64
}

// Options configures spot detection. The zero value is usable: it selects
// NumAtoms/100 spots with defaults matching the engine's calibration.
type Options struct {
	// MaxSpots bounds the number of spots; 0 means NumAtoms/100 (minimum 1),
	// the scaling the paper's timing tables imply.
	MaxSpots int
	// MinSeparation is the minimum distance between spot centers in
	// angstroms; 0 means 6.0.
	MinSeparation float64
	// NeighborRadius is the radius of the density probe used for the
	// exposure estimate; 0 means 8.0.
	NeighborRadius float64
	// SpotRadius is the search-region radius given to every spot; 0 means
	// 10.0.
	SpotRadius float64
}

func (o Options) withDefaults(numAtoms int) Options {
	if o.MaxSpots == 0 {
		o.MaxSpots = numAtoms / 100
		if o.MaxSpots < 1 {
			o.MaxSpots = 1
		}
	}
	if o.MinSeparation == 0 {
		o.MinSeparation = 6.0
	}
	if o.NeighborRadius == 0 {
		o.NeighborRadius = 8.0
	}
	if o.SpotRadius == 0 {
		o.SpotRadius = 10.0
	}
	return o
}

// DefaultSpotCount returns the number of spots detection aims for on a
// receptor of the given size under default options.
func DefaultSpotCount(numAtoms int) int {
	n := numAtoms / 100
	if n < 1 {
		n = 1
	}
	return n
}

// FindSpots detects docking spots on the receptor. It returns an error only
// if the receptor has no atoms; if the receptor has no alpha carbons (e.g. a
// HETATM-only structure), every atom is considered an anchor candidate.
func FindSpots(m *molecule.Molecule, opts Options) ([]Spot, error) {
	if m.NumAtoms() == 0 {
		return nil, fmt.Errorf("surface: receptor %q has no atoms", m.Name)
	}
	opts = opts.withDefaults(m.NumAtoms())

	candidates := m.AlphaCarbons()
	if len(candidates) == 0 {
		candidates = make([]int, m.NumAtoms())
		for i := range candidates {
			candidates[i] = i
		}
	}

	exposure := exposures(m, candidates, opts.NeighborRadius)

	// Rank candidates by exposure, most exposed first; ties broken by atom
	// index for determinism.
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := exposure[order[a]], exposure[order[b]]
		if ea != eb {
			return ea > eb
		}
		return candidates[order[a]] < candidates[order[b]]
	})

	centroid := m.Centroid()
	minSep2 := opts.MinSeparation * opts.MinSeparation
	var spots []Spot
	for _, ci := range order {
		if len(spots) >= opts.MaxSpots {
			break
		}
		atom := candidates[ci]
		p := m.Atoms[atom].Pos
		tooClose := false
		for _, s := range spots {
			if s.Center.Dist2(p) < minSep2 {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		normal := p.Sub(centroid).Unit()
		if normal == vec.Zero {
			normal = vec.New(0, 0, 1)
		}
		spots = append(spots, Spot{
			ID:        len(spots),
			Center:    p,
			Normal:    normal,
			Radius:    opts.SpotRadius,
			AtomIndex: atom,
			Exposure:  exposure[ci],
		})
	}
	return spots, nil
}

// exposures estimates solvent exposure for each candidate atom as
// 1 - density/maxDensity, where density counts receptor atoms within
// radius. Exposed surface atoms have few neighbours; buried core atoms have
// many. A cell grid keeps this O(N) rather than O(N^2).
func exposures(m *molecule.Molecule, candidates []int, radius float64) []float64 {
	grid := newCountGrid(m, radius)
	counts := make([]int, len(candidates))
	maxCount := 1
	for i, atom := range candidates {
		c := grid.neighborsWithin(m.Atoms[atom].Pos, radius)
		counts[i] = c
		if c > maxCount {
			maxCount = c
		}
	}
	exp := make([]float64, len(candidates))
	for i, c := range counts {
		exp[i] = 1 - float64(c)/float64(maxCount)
	}
	return exp
}

// countGrid is a minimal uniform grid for neighbour counting.
type countGrid struct {
	origin     vec.V3
	cell       float64
	nx, ny, nz int
	start      []int32
	idx        []int32
	pos        []vec.V3
}

func newCountGrid(m *molecule.Molecule, cell float64) *countGrid {
	g := &countGrid{cell: cell, pos: m.Positions()}
	b := vec.BoundPoints(g.pos)
	g.origin = b.Lo
	size := b.Size()
	g.nx = int(size.X/cell) + 1
	g.ny = int(size.Y/cell) + 1
	g.nz = int(size.Z/cell) + 1
	n := g.nx * g.ny * g.nz
	counts := make([]int32, n+1)
	cellOf := make([]int32, len(g.pos))
	for i, p := range g.pos {
		c := g.cellIndex(p)
		cellOf[i] = c
		counts[c+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	g.start = counts
	g.idx = make([]int32, len(g.pos))
	cursor := make([]int32, n)
	for i := range g.pos {
		c := cellOf[i]
		g.idx[g.start[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

func (g *countGrid) cellIndex(p vec.V3) int32 {
	ix := clampInt(int((p.X-g.origin.X)/g.cell), 0, g.nx-1)
	iy := clampInt(int((p.Y-g.origin.Y)/g.cell), 0, g.ny-1)
	iz := clampInt(int((p.Z-g.origin.Z)/g.cell), 0, g.nz-1)
	return int32((ix*g.ny+iy)*g.nz + iz)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (g *countGrid) neighborsWithin(p vec.V3, radius float64) int {
	r2 := radius * radius
	ix := clampInt(int((p.X-g.origin.X)/g.cell), 0, g.nx-1)
	iy := clampInt(int((p.Y-g.origin.Y)/g.cell), 0, g.ny-1)
	iz := clampInt(int((p.Z-g.origin.Z)/g.cell), 0, g.nz-1)
	n := 0
	for x := maxInt(ix-1, 0); x <= minInt(ix+1, g.nx-1); x++ {
		for y := maxInt(iy-1, 0); y <= minInt(iy+1, g.ny-1); y++ {
			for z := maxInt(iz-1, 0); z <= minInt(iz+1, g.nz-1); z++ {
				c := (x*g.ny+y)*g.nz + z
				for k := g.start[c]; k < g.start[c+1]; k++ {
					if g.pos[g.idx[k]].Dist2(p) <= r2 {
						n++
					}
				}
			}
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
