package surface

import (
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/vec"
)

func TestFindSpotsDefaultsScaleWithReceptor(t *testing.T) {
	rec := molecule.Synthetic2BSMReceptor()
	spots, err := FindSpots(rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultSpotCount(rec.NumAtoms()) // 3264/100 = 32
	if len(spots) != want {
		t.Errorf("got %d spots, want %d", len(spots), want)
	}
}

func TestDefaultSpotCount(t *testing.T) {
	if got := DefaultSpotCount(3264); got != 32 {
		t.Errorf("3264 atoms -> %d spots", got)
	}
	if got := DefaultSpotCount(8609); got != 86 {
		t.Errorf("8609 atoms -> %d spots", got)
	}
	if got := DefaultSpotCount(10); got != 1 {
		t.Errorf("10 atoms -> %d spots, want minimum 1", got)
	}
}

func TestSpotsAreSeparated(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 2000, 21)
	const sep = 7.0
	spots, err := FindSpots(rec, Options{MaxSpots: 15, MinSeparation: sep})
	if err != nil {
		t.Fatal(err)
	}
	for i := range spots {
		for j := i + 1; j < len(spots); j++ {
			if d := spots[i].Center.Dist(spots[j].Center); d < sep {
				t.Errorf("spots %d and %d are %v A apart, want >= %v", i, j, d, sep)
			}
		}
	}
}

func TestSpotsDenseIDsAndAnchors(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 1500, 22)
	spots, err := FindSpots(rec, Options{MaxSpots: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range spots {
		if s.ID != i {
			t.Errorf("spot %d has ID %d", i, s.ID)
		}
		if s.AtomIndex < 0 || s.AtomIndex >= rec.NumAtoms() {
			t.Errorf("spot %d anchored to atom %d", i, s.AtomIndex)
		}
		if s.Center != rec.Atoms[s.AtomIndex].Pos {
			t.Errorf("spot %d center does not match its anchor atom", i)
		}
		if s.Radius <= 0 {
			t.Errorf("spot %d radius %v", i, s.Radius)
		}
		if s.Exposure < 0 || s.Exposure > 1 {
			t.Errorf("spot %d exposure %v", i, s.Exposure)
		}
	}
}

func TestSpotsAnchoredToAlphaCarbons(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 1500, 23)
	spots, err := FindSpots(rec, Options{MaxSpots: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spots {
		if !rec.Atoms[s.AtomIndex].IsAlphaCarbon() {
			t.Errorf("spot %d anchored to %q, want an alpha carbon", s.ID, rec.Atoms[s.AtomIndex].Name)
		}
	}
}

func TestSpotNormalsPointOutward(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 2000, 24)
	spots, err := FindSpots(rec, Options{MaxSpots: 12})
	if err != nil {
		t.Fatal(err)
	}
	c := rec.Centroid()
	for _, s := range spots {
		out := s.Center.Sub(c).Unit()
		if s.Normal.Dot(out) < 0.99 {
			t.Errorf("spot %d normal %v not outward %v", s.ID, s.Normal, out)
		}
	}
}

func TestSpotsPreferExposedAtoms(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 3000, 25)
	spots, err := FindSpots(rec, Options{MaxSpots: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Selected spots must sit in locally sparser (more exposed) regions
	// than the average alpha-carbon candidate. Count neighbours within 8 A
	// directly, independent of the package's grid implementation.
	neighbors := func(p vec.V3) int {
		n := 0
		for _, a := range rec.Atoms {
			if a.Pos.Dist2(p) <= 64 {
				n++
			}
		}
		return n
	}
	cas := rec.AlphaCarbons()
	meanCand := 0.0
	for _, i := range cas {
		meanCand += float64(neighbors(rec.Atoms[i].Pos))
	}
	meanCand /= float64(len(cas))
	meanSpot := 0.0
	for _, s := range spots {
		meanSpot += float64(neighbors(s.Center))
	}
	meanSpot /= float64(len(spots))
	if meanSpot >= meanCand {
		t.Errorf("selected spots have mean density %v, candidates %v; spots should be sparser", meanSpot, meanCand)
	}
}

func TestFindSpotsNoAtoms(t *testing.T) {
	if _, err := FindSpots(&molecule.Molecule{Name: "empty"}, Options{}); err == nil {
		t.Error("no error for empty receptor")
	}
}

func TestFindSpotsNoAlphaCarbons(t *testing.T) {
	// HETATM-style structure: all atoms usable as anchors.
	atoms := make([]molecule.Atom, 30)
	for i := range atoms {
		atoms[i] = molecule.Atom{
			Name:    "O1",
			Element: molecule.Oxygen,
			Pos:     vec.New(float64(i)*3, 0, 0),
		}
	}
	m := molecule.New("het", atoms)
	spots, err := FindSpots(m, Options{MaxSpots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(spots) != 3 {
		t.Errorf("got %d spots", len(spots))
	}
}

func TestFindSpotsDeterministic(t *testing.T) {
	rec := molecule.SyntheticProtein("rec", 1200, 26)
	a, err := FindSpots(rec, Options{MaxSpots: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindSpots(rec, Options{MaxSpots: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("spot counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("spot %d differs between runs", i)
		}
	}
}
