// Package hostpar is the host-side parallel runtime of metascreen, the Go
// analogue of the OpenMP constructs the paper uses: a parallel-for over a
// fixed thread team with static or dynamic scheduling, and reductions over
// per-thread results (the paper reduces warm-up timings with omp reduction).
package hostpar

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects how loop iterations map to threads.
type Schedule int

const (
	// Static splits the iteration space into one contiguous chunk per
	// thread, like OpenMP schedule(static).
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter as threads
	// finish, like OpenMP schedule(dynamic, chunk).
	Dynamic
	// Guided hands out shrinking chunks — each claim takes half the
	// remaining work divided by the thread count, floored at the chunk
	// parameter — like OpenMP schedule(guided, chunk). Large chunks early
	// amortize claiming overhead; small chunks late smooth the tail.
	Guided
)

// DefaultThreads is the thread-team size used when a Team is created with
// size <= 0: the number of usable CPUs.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Team is a fixed-size thread team, the analogue of an OpenMP parallel
// region's team. The zero value is not usable; create teams with NewTeam.
type Team struct {
	n int
}

// NewTeam returns a team of n threads; n <= 0 means DefaultThreads().
func NewTeam(n int) *Team {
	if n <= 0 {
		n = DefaultThreads()
	}
	return &Team{n: n}
}

// Size returns the number of threads in the team.
func (t *Team) Size() int { return t.n }

// For runs body(i) for every i in [0, n) across the team with static
// scheduling. It returns when all iterations complete.
func (t *Team) For(n int, body func(i int)) {
	t.ForChunk(n, Static, 0, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForThread runs body(tid) once on each of the team's threads, the analogue
// of a bare omp parallel region. tid ranges over [0, Size()).
func (t *Team) ForThread(body func(tid int)) {
	var wg sync.WaitGroup
	wg.Add(t.n)
	for tid := 0; tid < t.n; tid++ {
		go func(tid int) {
			defer wg.Done()
			body(tid)
		}(tid)
	}
	wg.Wait()
}

// ForChunk runs body(lo, hi, tid) over contiguous chunks covering [0, n).
// With Static scheduling each thread gets one balanced chunk; with Dynamic,
// chunks of the given size (0 means a heuristic n/(8*threads), minimum 1)
// are claimed from a shared counter. Every index is processed exactly once.
func (t *Team) ForChunk(n int, sched Schedule, chunkParam int, body func(lo, hi, tid int)) {
	if n <= 0 {
		return
	}
	// threads and chunk are initialized exactly once and never reassigned:
	// the goroutine closures below capture them, and a reassigned captured
	// variable is captured by reference, which would heap-allocate it on
	// every call — including the sequential fast path.
	threads := minInt(t.n, n)
	// A one-thread Static team runs inline: no goroutine spawn, no
	// WaitGroup, zero allocations — the sequential scoring hot loop relies
	// on this. Dynamic and Guided keep their chunked claiming even with one
	// thread, so the schedule's chunk-size sequence stays observable.
	if threads == 1 && sched == Static {
		body(0, n, 0)
		return
	}
	chunk := effectiveChunk(chunkParam, n, threads, sched)
	switch sched {
	case Static:
		var wg sync.WaitGroup
		wg.Add(threads)
		for tid := 0; tid < threads; tid++ {
			go func(tid int) {
				defer wg.Done()
				lo := n * tid / threads
				hi := n * (tid + 1) / threads
				if lo < hi {
					body(lo, hi, tid)
				}
			}(tid)
		}
		wg.Wait()
	case Dynamic:
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(threads)
		for tid := 0; tid < threads; tid++ {
			go func(tid int) {
				defer wg.Done()
				for {
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(lo, hi, tid)
				}
			}(tid)
		}
		wg.Wait()
	case Guided:
		var mu sync.Mutex
		next := 0
		claim := func() (lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if next >= n {
				return n, n
			}
			size := (n - next) / (2 * threads)
			if size < chunk {
				size = chunk
			}
			lo = next
			hi = lo + size
			if hi > n {
				hi = n
			}
			next = hi
			return lo, hi
		}
		var wg sync.WaitGroup
		wg.Add(threads)
		for tid := 0; tid < threads; tid++ {
			go func(tid int) {
				defer wg.Done()
				for {
					lo, hi := claim()
					if lo >= hi {
						return
					}
					body(lo, hi, tid)
				}
			}(tid)
		}
		wg.Wait()
	default:
		panic("hostpar: unknown schedule")
	}
}

// minInt returns the smaller of a and b.
func minInt(a, b int) int {
	if b < a {
		return b
	}
	return a
}

// effectiveChunk resolves the chunk parameter for a schedule: Dynamic's
// zero value means the n/(8*threads) heuristic, Guided's floor is 1, and
// Static ignores it.
func effectiveChunk(chunk, n, threads int, sched Schedule) int {
	switch sched {
	case Dynamic:
		if chunk <= 0 {
			chunk = n / (8 * threads)
		}
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// ReduceFloat64 runs produce(tid) on every thread and combines the results
// with combine, starting from init. It is the analogue of omp reduction over
// a parallel region. The combination order is deterministic (by tid).
func (t *Team) ReduceFloat64(init float64, produce func(tid int) float64, combine func(a, b float64) float64) float64 {
	results := make([]float64, t.n)
	t.ForThread(func(tid int) { results[tid] = produce(tid) })
	acc := init
	for _, v := range results {
		acc = combine(acc, v)
	}
	return acc
}

// MaxFloat64 is a combine function for ReduceFloat64 computing the maximum.
func MaxFloat64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SumFloat64 is a combine function for ReduceFloat64 computing the sum.
func SumFloat64(a, b float64) float64 { return a + b }
