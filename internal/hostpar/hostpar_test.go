package hostpar

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8, 16} {
		team := NewTeam(threads)
		const n = 1000
		var hits [n]atomic.Int32
		team.For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, got)
			}
		}
	}
}

func TestForChunkDynamicCoversAllIndices(t *testing.T) {
	team := NewTeam(4)
	const n = 997 // prime, exercises ragged chunks
	var hits [n]atomic.Int32
	team.ForChunk(n, Dynamic, 13, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForChunkStaticBalanced(t *testing.T) {
	team := NewTeam(4)
	sizes := make([]int, 4)
	team.ForChunk(100, Static, 0, func(lo, hi, tid int) { sizes[tid] = hi - lo })
	for tid, s := range sizes {
		if s != 25 {
			t.Errorf("thread %d got %d iterations, want 25", tid, s)
		}
	}
}

func TestForChunkMoreThreadsThanWork(t *testing.T) {
	team := NewTeam(16)
	var count atomic.Int32
	team.ForChunk(3, Static, 0, func(lo, hi, _ int) {
		count.Add(int32(hi - lo))
	})
	if count.Load() != 3 {
		t.Errorf("covered %d iterations, want 3", count.Load())
	}
}

func TestForChunkGuidedCoversAllIndices(t *testing.T) {
	team := NewTeam(4)
	const n = 1009 // prime
	var hits [n]atomic.Int32
	team.ForChunk(n, Guided, 4, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForChunkGuidedShrinkingChunks(t *testing.T) {
	// A single thread observes the guided schedule exactly: chunk sizes
	// never grow and end at the floor.
	team := NewTeam(1)
	var sizes []int
	team.ForChunk(1000, Guided, 8, func(lo, hi, _ int) {
		sizes = append(sizes, hi-lo)
	})
	if len(sizes) < 3 {
		t.Fatalf("only %d chunks", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("chunk grew: %v", sizes)
		}
	}
	if sizes[0] <= sizes[len(sizes)-1] {
		t.Errorf("no shrinkage: first %d, last %d", sizes[0], sizes[len(sizes)-1])
	}
}

func TestForZeroAndNegative(t *testing.T) {
	team := NewTeam(4)
	called := false
	team.For(0, func(int) { called = true })
	team.For(-5, func(int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForThreadRunsEachTid(t *testing.T) {
	team := NewTeam(6)
	var seen [6]atomic.Int32
	team.ForThread(func(tid int) { seen[tid].Add(1) })
	for tid := range seen {
		if seen[tid].Load() != 1 {
			t.Errorf("tid %d ran %d times", tid, seen[tid].Load())
		}
	}
}

func TestNewTeamDefaults(t *testing.T) {
	if NewTeam(0).Size() != DefaultThreads() {
		t.Error("NewTeam(0) != default size")
	}
	if NewTeam(-1).Size() != DefaultThreads() {
		t.Error("NewTeam(-1) != default size")
	}
	if NewTeam(5).Size() != 5 {
		t.Error("NewTeam(5) size wrong")
	}
}

func TestReduceMax(t *testing.T) {
	team := NewTeam(8)
	got := team.ReduceFloat64(math.Inf(-1), func(tid int) float64 {
		return float64(tid * tid)
	}, MaxFloat64)
	if got != 49 {
		t.Errorf("max = %v, want 49", got)
	}
}

func TestReduceSum(t *testing.T) {
	team := NewTeam(5)
	got := team.ReduceFloat64(0, func(tid int) float64 { return float64(tid) }, SumFloat64)
	if got != 10 {
		t.Errorf("sum = %v, want 10", got)
	}
}

func TestParallelSumMatchesSerial(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			// Bound magnitudes: float addition is only approximately
			// associative, and this property tests coverage, not FP error.
			vals[i] = math.Mod(v, 1e6)
		}
		serial := 0.0
		for _, v := range vals {
			serial += v
		}
		partial := make([]float64, 4)
		NewTeam(4).ForChunk(len(vals), Static, 0, func(lo, hi, tid int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			partial[tid] = s
		})
		par := 0.0
		for _, v := range partial {
			par += v
		}
		return math.Abs(par-serial) <= 1e-9*(1+math.Abs(serial))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForChunkUnknownSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown schedule")
		}
	}()
	NewTeam(2).ForChunk(10, Schedule(99), 0, func(lo, hi, tid int) {})
}
