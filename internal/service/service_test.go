package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/surface"
)

// newTestService builds a service whose runner is replaced by stub. The
// override happens before any job is submitted, so workers (which read
// the runner under the service mutex) never observe it mid-change.
func newTestService(t *testing.T, cfg Config, stub runnerFunc) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stub != nil {
		s.run = stub
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// blockingRunner returns a runner that blocks until released (or its job
// is cancelled), plus the release function.
func blockingRunner() (runnerFunc, func()) {
	release := make(chan struct{})
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		select {
		case <-release:
			return stubResult(), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return run, func() { close(release) }
}

// stubResult is a minimal well-formed screen outcome.
func stubResult() *core.ScreenResult {
	lib := core.SyntheticLibrary(1)
	return &core.ScreenResult{
		Ranking:          []core.ScreenEntry{{Ligand: lib[0], Result: &core.Result{Evaluations: 42}}},
		SimulatedSeconds: 1.5,
		Evaluations:      42,
	}
}

// doJSON issues a request against the test server and decodes the reply.
func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollState polls a job until it reaches a state for which done returns
// true, failing the test after a deadline.
func pollState(t *testing.T, client *http.Client, base, id string, done func(JobState) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if code := doJSON(t, client, "GET", base+"/v1/screens/"+id, nil, &v); code != http.StatusOK {
			t.Fatalf("GET job: status %d", code)
		}
		if done(v.State) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached wanted state", id)
	return JobView{}
}

// TestSubmitPollResult drives the happy path end to end through the real
// engine and checks the service ranking is byte-identical to the same
// screen run through the library API — the service's determinism
// contract.
func TestSubmitPollResult(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, ScreenWorkers: 2}, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	req := ScreenRequest{Dataset: "2BSM", Library: 4, Spots: 2, Metaheuristic: "M3", Scale: 0.02, Seed: 7}
	var submitted JobView
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if submitted.ID == "" || submitted.State != StateQueued {
		t.Fatalf("unexpected submit view: %+v", submitted)
	}

	v := pollState(t, c, srv.URL, submitted.ID, JobState.Terminal)
	if v.State != StateDone {
		t.Fatalf("job finished as %s (%s)", v.State, v.Error)
	}
	if v.Result == nil || len(v.Result.Ranking) != 4 {
		t.Fatalf("bad result: %+v", v.Result)
	}
	if v.Result.Evaluations <= 0 {
		t.Error("no evaluation accounting")
	}

	// Same screen through the library API.
	ds, _ := core.DatasetByName("2BSM")
	algf := func() (metaheuristic.Algorithm, error) { return metaheuristic.NewPaper("M3", 0.02) }
	direct, err := core.ScreenCtx(context.Background(), ds.Receptor, core.SyntheticLibrary(4),
		surface.Options{MaxSpots: 2}, forcefield.Options{},
		algf, core.HostBackendFactory(core.HostConfig{Real: true}), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Ranking) != len(v.Result.Ranking) {
		t.Fatalf("library %d entries, service %d", len(direct.Ranking), len(v.Result.Ranking))
	}
	for i, e := range direct.Ranking {
		got := v.Result.Ranking[i]
		if got.Ligand != e.Ligand.Name || got.Score != e.Result.Best.Score || got.Spot != e.Result.Best.Spot {
			t.Errorf("rank %d: service %+v, library %s %v", i+1, got, e.Ligand.Name, e.Result.Best.Score)
		}
	}
	if v.Result.Evaluations != direct.Evaluations || v.Result.SimulatedSeconds != direct.SimulatedSeconds {
		t.Errorf("work accounting differs: service (%d, %g) library (%d, %g)",
			v.Result.Evaluations, v.Result.SimulatedSeconds, direct.Evaluations, direct.SimulatedSeconds)
	}

	// Metrics now report the finished job, with non-zero latency and
	// evaluation counters.
	resp, err := c.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`metascreen_jobs_finished_total{state="done"} 1`,
		"metascreen_job_latency_seconds_count 1",
		fmt.Sprintf("metascreen_evaluations_total %d", direct.Evaluations),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "metascreen_job_latency_seconds_sum 0\n") {
		t.Error("job latency sum is zero after a completed job")
	}
}

// TestCancelMidRun cancels a running job and checks it finishes as
// cancelled, promptly, via its context.
func TestCancelMidRun(t *testing.T) {
	run, release := blockingRunner()
	defer release()
	s := newTestService(t, Config{Workers: 1}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	var v JobView
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Seed: 1}, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollState(t, c, srv.URL, v.ID, func(st JobState) bool { return st == StateRunning })

	if code := doJSON(t, c, "DELETE", srv.URL+"/v1/screens/"+v.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel status %d", code)
	}
	got := pollState(t, c, srv.URL, v.ID, JobState.Terminal)
	if got.State != StateCancelled {
		t.Fatalf("state %s after cancel", got.State)
	}
	// A second cancel conflicts.
	if code := doJSON(t, c, "DELETE", srv.URL+"/v1/screens/"+v.ID, nil, nil); code != http.StatusConflict {
		t.Errorf("re-cancel status %d, want 409", code)
	}
}

// TestQueueFull429 fills the single worker and the one queue slot, then
// checks admission control rejects with 429 and the rejection is counted.
func TestQueueFull429(t *testing.T) {
	run, release := blockingRunner()
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	var first JobView
	doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Seed: 1}, &first)
	// Wait until the worker claims it, so the queue slot is truly free.
	pollState(t, c, srv.URL, first.ID, func(st JobState) bool { return st == StateRunning })

	var second JobView
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Seed: 2}, &second); code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	buf, _ := json.Marshal(ScreenRequest{Seed: 3})
	resp, err := c.Post(srv.URL+"/v1/screens", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var errBody map[string]any
	if derr := json.NewDecoder(resp.Body).Decode(&errBody); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	if msg, _ := errBody["error"].(string); !strings.Contains(msg, "queue full") {
		t.Errorf("error body %q", msg)
	}
	if errBody["reason"] != "queue_full" {
		t.Errorf("reason %v, want queue_full", errBody["reason"])
	}
	for _, k := range []string{"retry_after_seconds", "queue_depth", "limit"} {
		if _, ok := errBody[k]; !ok {
			t.Errorf("429 body missing %q", k)
		}
	}

	release()
	pollState(t, c, srv.URL, second.ID, JobState.Terminal)
	resp, _ = c.Get(srv.URL + "/metrics")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "metascreen_jobs_rejected_total 1") {
		t.Error("rejection not counted")
	}
}

// TestGracefulShutdown checks Shutdown cancels queued jobs, refuses new
// submissions, lets the running job finish, and flips /healthz to 503.
func TestGracefulShutdown(t *testing.T) {
	run, release := blockingRunner()
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	var running, queued JobView
	doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Seed: 1}, &running)
	pollState(t, c, srv.URL, running.ID, func(st JobState) bool { return st == StateRunning })
	doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Seed: 2}, &queued)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// The queued job is cancelled immediately; intake closes; health
	// flips to draining.
	q := pollState(t, c, srv.URL, queued.ID, JobState.Terminal)
	if q.State != StateCancelled {
		t.Errorf("queued job state %s, want cancelled", q.State)
	}
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Seed: 3}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
	var st Stats
	if code := doJSON(t, c, "GET", srv.URL+"/healthz", nil, &st); code != http.StatusServiceUnavailable || !st.Draining {
		t.Errorf("healthz while draining: %d %+v", code, st)
	}

	// The running job is not killed: it finishes once released.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned %v before the running job finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r, err := s.Get(running.ID)
	if err != nil || r.State != StateDone {
		t.Fatalf("running job after drain: %+v %v", r, err)
	}
}

// TestShutdownDeadlineForceCancels checks an expired shutdown context
// force-cancels the running job instead of hanging.
func TestShutdownDeadlineForceCancels(t *testing.T) {
	run, release := blockingRunner()
	defer release()
	s := newTestService(t, Config{Workers: 1}, run)

	v, err := s.Submit(ScreenRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State == StateRunning
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown returned %v, want deadline exceeded", err)
	}
	got, err := s.Get(v.ID)
	if err != nil || got.State != StateCancelled {
		t.Fatalf("job after forced drain: %+v %v", got, err)
	}
}

// TestJobTimeout checks a per-job deadline fails the job.
func TestJobTimeout(t *testing.T) {
	run, release := blockingRunner()
	defer release()
	s := newTestService(t, Config{Workers: 1}, run)

	v, err := s.Submit(ScreenRequest{Seed: 1, TimeoutSeconds: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := s.Get(v.ID)
		return got.State.Terminal()
	})
	got, _ := s.Get(v.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("timed-out job: %+v", got)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestService(t, Config{Workers: 1}, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens/job-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d", code)
	}
	if code := doJSON(t, c, "DELETE", srv.URL+"/v1/screens/job-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d", code)
	}
	var errBody map[string]string
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", ScreenRequest{Dataset: "NOPE"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad dataset: %d", code)
	}
	resp, err := c.Post(srv.URL+"/v1/screens", "application/json", strings.NewReader(`{"bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d", resp.StatusCode)
	}
	var list []JobView
	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens", nil, &list); code != http.StatusOK || len(list) != 0 {
		t.Errorf("list: %d, %d entries", code, len(list))
	}
}

// waitFor polls cond until true or the test deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
