package service

// The durability layer: when Config.DataDir is set, every job lifecycle
// transition is journaled to an append-only WAL (internal/wal) before the
// response leaves the service, and each running screen's core.Checkpoint
// is snapshotted atomically (temp file + rename) every CheckpointEvery
// completed ligands. On the next boot over the same data dir the journal
// is replayed: the job table is rebuilt, terminal jobs keep their results,
// and jobs that were queued or running at the crash are re-enqueued — a
// re-run resumes from its checkpoint, re-docking only unfinished ligands,
// with a final ranking byte-identical to an uninterrupted run.
//
// Layout under DataDir:
//
//	journal/seg-%08d.wal   framed JSONL job events (see jobEvent)
//	checkpoints/<id>.json  per-job core.Checkpoint snapshots
//
// Event records are last-write-wins per job, which is what makes journal
// compaction (full-snapshot records replacing history) crash-safe: a
// replay of old events followed by a snapshot converges on the snapshot.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/wal"
)

// Event types. Unknown types are skipped on replay so newer journals
// degrade gracefully under older binaries.
const (
	evSubmitted  = "submitted"  // job admitted: request + idempotency key
	evStarted    = "started"    // a worker claimed the job
	evAttempt    = "attempt"    // one execution attempt finished (with error, if any)
	evCheckpoint = "checkpoint" // the job's checkpoint snapshot was written
	evCancel     = "cancel"     // a cancel was requested for a running job
	evTerminal   = "terminal"   // the job reached a terminal state (full snapshot)
	evSnapshot   = "snapshot"   // compaction record: full job snapshot
)

// jobEvent is one journal record. Which fields are set depends on Type;
// terminal and snapshot events carry the whole JobView so replay needs no
// other source of truth.
type jobEvent struct {
	Type    string         `json:"type"`
	Job     string         `json:"job,omitempty"`
	Time    time.Time      `json:"time,omitempty"`
	Request *ScreenRequest `json:"request,omitempty"`
	IdemKey string         `json:"idem_key,omitempty"`
	Attempt int            `json:"attempt,omitempty"`
	Error   string         `json:"error,omitempty"`
	Ligands int            `json:"ligands,omitempty"`
	View    *JobView       `json:"view,omitempty"`
}

// RecoveryStats reports what a boot over an existing data dir recovered.
type RecoveryStats struct {
	// ReplayedRecords is the number of journal records applied.
	ReplayedRecords int `json:"replayed_records"`
	// RecoveredJobs is the number of non-terminal jobs re-enqueued.
	RecoveredJobs int `json:"recovered_jobs"`
	// TruncatedBytes counts journal bytes dropped as a torn/corrupt tail.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// openJournal opens the WAL, replays it into the job table, and re-enqueues
// every job that was queued or running when the previous process died.
// Called from New before the workers start, so no lock is needed.
func (s *Service) openJournal() error {
	if err := os.MkdirAll(s.checkpointDir(), 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	j, info, err := wal.Open(filepath.Join(s.cfg.DataDir, "journal"), wal.Options{
		Policy:       s.cfg.Fsync,
		SyncInterval: s.cfg.FsyncInterval,
		Logf:         func(format string, args ...any) { s.log.Warn(fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		return err
	}
	s.recovery.TruncatedBytes = info.TruncatedBytes

	err = j.Replay(func(rec []byte) error {
		var ev jobEvent
		if uerr := json.Unmarshal(rec, &ev); uerr != nil {
			// A record that framed correctly but no longer parses is
			// skipped, not fatal: replay keeps every applicable event.
			s.metrics.JournalError()
			return nil
		}
		s.applyEvent(ev)
		s.recovery.ReplayedRecords++
		return nil
	})
	if err != nil {
		j.Close()
		return err
	}

	// Re-enqueue interrupted jobs in submission order, honouring cancels
	// journaled before the crash. The queue must admit all of them
	// regardless of the configured bound, so size it up front (workers
	// have not started; pushes cannot block).
	var pending, cancelled []*Job
	for _, id := range s.order {
		switch j := s.jobs[id]; {
		case j.state.Terminal():
		case j.cancelRequested:
			cancelled = append(cancelled, j)
		default:
			pending = append(pending, j)
		}
	}
	if len(pending) > s.cfg.QueueDepth {
		s.queue = newJobQueue(len(pending))
	}
	for _, job := range pending {
		job.state = StateQueued
		job.started = time.Time{}
		job.cancel = nil
		// The admission state is rebuilt from the request: the priority
		// class survives replay and the deadline stays anchored to the
		// original submission time.
		job.class, _ = admission.ParseClass(job.req.Priority)
		job.deadline = time.Time{}
		if job.req.DeadlineSeconds > 0 && !job.submitted.IsZero() {
			job.deadline = job.submitted.Add(
				time.Duration(job.req.DeadlineSeconds * float64(time.Second)))
		}
		if err := s.queue.tryPush(job); err != nil {
			j.Close()
			return fmt.Errorf("service: re-enqueue %s: %w", job.id, err)
		}
		s.recovery.RecoveredJobs++
	}
	s.metrics.Recovered(s.recovery.ReplayedRecords, s.recovery.RecoveredJobs, s.recovery.TruncatedBytes)
	s.journal = j
	// Cancelled-but-not-terminal jobs finish now, with the journal open so
	// the terminal record survives the next restart too.
	for _, job := range cancelled {
		s.finishLocked(job, StateCancelled, nil, "cancelled before restart")
	}
	return nil
}

// applyEvent folds one journal record into the in-memory job table.
// Events are last-write-wins per job; unknown types are ignored.
func (s *Service) applyEvent(ev jobEvent) {
	switch ev.Type {
	case evSubmitted:
		j := s.jobFor(ev.Job)
		if ev.Request != nil {
			j.req = *ev.Request
		}
		j.state = StateQueued
		j.submitted = ev.Time
		j.idemKey = ev.IdemKey
		if ev.IdemKey != "" {
			s.idem[ev.IdemKey] = j.id
		}
	case evStarted:
		j := s.jobFor(ev.Job)
		j.state = StateRunning
		j.started = ev.Time
		j.attempts = ev.Attempt
	case evAttempt:
		j := s.jobFor(ev.Job)
		j.attempts = ev.Attempt
		j.lastErr = ev.Error
	case evCheckpoint:
		s.jobFor(ev.Job).cpLigands = ev.Ligands
	case evCancel:
		// The cancel may not have produced a terminal record before the
		// crash; remember the intent so recovery finishes the job as
		// cancelled instead of resurrecting it.
		s.jobFor(ev.Job).cancelRequested = true
	case evTerminal, evSnapshot:
		if ev.View != nil {
			s.applyView(ev.View)
		}
	}
}

// jobFor returns the job for a replayed event, creating a placeholder if
// its submitted record was lost with a truncated tail.
func (s *Service) jobFor(id string) *Job {
	if j, ok := s.jobs[id]; ok {
		return j
	}
	j := &Job{id: id, state: StateQueued}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.bumpNextID(id)
	return j
}

// applyView overwrites a job from a full snapshot (terminal or compaction
// record).
func (s *Service) applyView(v *JobView) {
	j := s.jobFor(v.ID)
	j.state = v.State
	j.req = v.Request
	j.submitted = v.SubmittedAt
	j.started = time.Time{}
	if v.StartedAt != nil {
		j.started = *v.StartedAt
	}
	j.finished = time.Time{}
	if v.FinishedAt != nil {
		j.finished = *v.FinishedAt
	}
	j.err = v.Error
	j.attempts = v.Attempts
	j.lastErr = v.LastError
	j.cpLigands = v.CheckpointLigands
	j.idemKey = v.IdempotencyKey
	j.degraded = v.Degraded
	j.effortFactor = v.EffortFactor
	j.effectiveScale = v.EffectiveScale
	j.deadline = time.Time{}
	if v.DeadlineAt != nil {
		j.deadline = *v.DeadlineAt
	}
	if v.IdempotencyKey != "" {
		s.idem[v.IdempotencyKey] = j.id
	}
	j.result = nil
	j.restored = v.Result
}

// bumpNextID keeps ID allocation monotonic across restarts.
func (s *Service) bumpNextID(id string) {
	var n uint64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// appendEvent journals one event. Callers hold s.mu. Append failures are
// counted and reported to stderr but do not fail the operation: the
// in-memory service stays correct, durability degrades.
func (s *Service) appendEvent(ev jobEvent) {
	if s.journal == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err == nil {
		err = s.journal.Append(b)
	}
	if err != nil {
		s.metrics.JournalError()
		s.log.Error("journal append failed", "job", ev.Job, "err", err)
		return
	}
	s.metrics.JournalAppend(len(b))
	if s.journal.Size() > s.cfg.CompactBytes {
		s.compactLocked()
	}
}

// compactLocked rewrites the journal as one snapshot record per job.
// Caller holds s.mu.
func (s *Service) compactLocked() {
	live := make([][]byte, 0, len(s.order))
	for _, id := range s.order {
		v := s.jobs[id].view()
		b, err := json.Marshal(jobEvent{Type: evSnapshot, Job: id, View: &v})
		if err != nil {
			s.metrics.JournalError()
			return
		}
		live = append(live, b)
	}
	if err := s.journal.Compact(live); err != nil {
		s.metrics.JournalError()
		s.log.Error("journal compact failed", "err", err)
		return
	}
	s.metrics.JournalCompaction()
}

// checkpointDir and checkpointPath locate per-job checkpoint snapshots.
func (s *Service) checkpointDir() string { return filepath.Join(s.cfg.DataDir, "checkpoints") }
func (s *Service) checkpointPath(id string) string {
	return filepath.Join(s.checkpointDir(), id+".json")
}

// loadJobCheckpoint reads a job's checkpoint snapshot, returning a fresh
// checkpoint when none exists, the file is corrupt (a crash can tear at
// most the temp file, but be defensive), or its seed does not match the
// request — resuming would silently mix runs.
func (s *Service) loadJobCheckpoint(id string, seed uint64) *core.Checkpoint {
	f, err := os.Open(s.checkpointPath(id))
	if err != nil {
		return &core.Checkpoint{}
	}
	defer f.Close()
	cp, err := core.LoadCheckpoint(f)
	if err != nil || cp.Seed != seed {
		s.log.Warn("checkpoint unusable, re-docking from scratch", "job", id, "err", err)
		return &core.Checkpoint{}
	}
	return cp
}

// writeJobCheckpoint snapshots a checkpoint atomically: temp file, fsync,
// rename. A crash leaves either the old snapshot or the new one, never a
// torn file.
func (s *Service) writeJobCheckpoint(id string, cp *core.Checkpoint) error {
	path := s.checkpointPath(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := core.SaveCheckpoint(f, cp); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
