package service

// The durability layer: when Config.DataDir is set, every job lifecycle
// transition is journaled to an append-only WAL (internal/wal) before the
// response leaves the service, and each running screen's core.Checkpoint
// is snapshotted atomically (temp file + rename) every CheckpointEvery
// completed ligands. On the next boot over the same data dir the journal
// is replayed: the job table is rebuilt, terminal jobs keep their results,
// and jobs that were queued or running at the crash are re-enqueued — a
// re-run resumes from its checkpoint, re-docking only unfinished ligands,
// with a final ranking byte-identical to an uninterrupted run.
//
// Layout under DataDir:
//
//	journal/seg-%08d.wal   framed JSONL job events (see jobEvent)
//	checkpoints/<id>.json  per-job core.Checkpoint snapshots
//
// Event records are last-write-wins per job, which is what makes journal
// compaction (full-snapshot records replacing history) crash-safe: a
// replay of old events followed by a snapshot converges on the snapshot.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/wal"
)

// Event types. Unknown types are skipped on replay so newer journals
// degrade gracefully under older binaries.
const (
	evSubmitted  = "submitted"  // job admitted: request + idempotency key
	evStarted    = "started"    // a worker claimed the job
	evAttempt    = "attempt"    // one execution attempt finished (with error, if any)
	evCheckpoint = "checkpoint" // the job's checkpoint snapshot was written
	evCancel     = "cancel"     // a cancel was requested for a running job
	evTerminal   = "terminal"   // the job reached a terminal state (full snapshot)
	evSnapshot   = "snapshot"   // compaction record: full job snapshot
)

// jobEvent is one journal record. Which fields are set depends on Type;
// terminal and snapshot events carry the whole JobView so replay needs no
// other source of truth.
type jobEvent struct {
	Type    string         `json:"type"`
	Job     string         `json:"job,omitempty"`
	Time    time.Time      `json:"time,omitempty"`
	Request *ScreenRequest `json:"request,omitempty"`
	IdemKey string         `json:"idem_key,omitempty"`
	Attempt int            `json:"attempt,omitempty"`
	Error   string         `json:"error,omitempty"`
	Ligands int            `json:"ligands,omitempty"`
	View    *JobView       `json:"view,omitempty"`
}

// RecoveryStats reports what a boot over an existing data dir recovered.
type RecoveryStats struct {
	// ReplayedRecords is the number of journal records applied.
	ReplayedRecords int `json:"replayed_records"`
	// RecoveredJobs is the number of non-terminal jobs re-enqueued.
	RecoveredJobs int `json:"recovered_jobs"`
	// TruncatedBytes counts journal bytes dropped as a torn/corrupt tail.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// openJournal opens the WAL, replays it into the job table, and re-enqueues
// every job that was queued or running when the previous process died.
// Called from New before the workers start, so no lock is needed.
func (s *Service) openJournal() error {
	if err := s.fs.MkdirAll(s.checkpointDir(), 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	j, info, err := wal.Open(filepath.Join(s.cfg.DataDir, "journal"), wal.Options{
		Policy:       s.cfg.Fsync,
		SyncInterval: s.cfg.FsyncInterval,
		Logf:         func(format string, args ...any) { s.log.Warn(fmt.Sprintf(format, args...)) },
		FS:           s.fs,
		OnIOError:    func(op string, err error) { s.metrics.WALIOError(op) },
	})
	if err != nil {
		return err
	}
	s.recovery.TruncatedBytes = info.TruncatedBytes

	err = j.Replay(func(rec []byte) error {
		var ev jobEvent
		if uerr := json.Unmarshal(rec, &ev); uerr != nil {
			// A record that framed correctly but no longer parses is
			// skipped, not fatal: replay keeps every applicable event.
			s.metrics.JournalError()
			return nil
		}
		s.applyEvent(ev)
		s.recovery.ReplayedRecords++
		return nil
	})
	if err != nil {
		j.Close()
		return err
	}

	// Re-enqueue interrupted jobs in submission order, honouring cancels
	// journaled before the crash. The queue must admit all of them
	// regardless of the configured bound, so size it up front (workers
	// have not started; pushes cannot block).
	var pending, cancelled []*Job
	for _, id := range s.order {
		switch j := s.jobs[id]; {
		case j.state.Terminal():
		case j.cancelRequested:
			cancelled = append(cancelled, j)
		default:
			pending = append(pending, j)
		}
	}
	if len(pending) > s.cfg.QueueDepth {
		s.queue = newJobQueue(len(pending))
	}
	for _, job := range pending {
		job.state = StateQueued
		job.started = time.Time{}
		job.cancel = nil
		// The admission state is rebuilt from the request: the priority
		// class survives replay and the deadline stays anchored to the
		// original submission time.
		job.class, _ = admission.ParseClass(job.req.Priority)
		job.deadline = time.Time{}
		if job.req.DeadlineSeconds > 0 && !job.submitted.IsZero() {
			job.deadline = job.submitted.Add(
				time.Duration(job.req.DeadlineSeconds * float64(time.Second)))
		}
		if err := s.queue.tryPush(job); err != nil {
			j.Close()
			return fmt.Errorf("service: re-enqueue %s: %w", job.id, err)
		}
		s.recovery.RecoveredJobs++
	}
	s.metrics.Recovered(s.recovery.ReplayedRecords, s.recovery.RecoveredJobs, s.recovery.TruncatedBytes)
	s.journal = j
	// Cancelled-but-not-terminal jobs finish now, with the journal open so
	// the terminal record survives the next restart too.
	for _, job := range cancelled {
		s.finishLocked(job, StateCancelled, nil, "cancelled before restart")
	}
	return nil
}

// applyEvent folds one journal record into the in-memory job table.
// Events are last-write-wins per job; unknown types are ignored.
func (s *Service) applyEvent(ev jobEvent) {
	switch ev.Type {
	case evSubmitted:
		j := s.jobFor(ev.Job)
		if ev.Request != nil {
			j.req = *ev.Request
		}
		j.state = StateQueued
		j.submitted = ev.Time
		j.idemKey = ev.IdemKey
		if ev.IdemKey != "" {
			s.idem[ev.IdemKey] = j.id
		}
	case evStarted:
		j := s.jobFor(ev.Job)
		j.state = StateRunning
		j.started = ev.Time
		j.attempts = ev.Attempt
	case evAttempt:
		j := s.jobFor(ev.Job)
		j.attempts = ev.Attempt
		j.lastErr = ev.Error
	case evCheckpoint:
		s.jobFor(ev.Job).cpLigands = ev.Ligands
	case evCancel:
		// The cancel may not have produced a terminal record before the
		// crash; remember the intent so recovery finishes the job as
		// cancelled instead of resurrecting it.
		s.jobFor(ev.Job).cancelRequested = true
	case evTerminal, evSnapshot:
		if ev.View != nil {
			s.applyView(ev.View)
		}
	}
}

// jobFor returns the job for a replayed event, creating a placeholder if
// its submitted record was lost with a truncated tail.
func (s *Service) jobFor(id string) *Job {
	if j, ok := s.jobs[id]; ok {
		return j
	}
	j := &Job{id: id, state: StateQueued}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.bumpNextID(id)
	return j
}

// applyView overwrites a job from a full snapshot (terminal or compaction
// record).
func (s *Service) applyView(v *JobView) {
	j := s.jobFor(v.ID)
	j.state = v.State
	j.req = v.Request
	j.submitted = v.SubmittedAt
	j.started = time.Time{}
	if v.StartedAt != nil {
		j.started = *v.StartedAt
	}
	j.finished = time.Time{}
	if v.FinishedAt != nil {
		j.finished = *v.FinishedAt
	}
	j.err = v.Error
	j.attempts = v.Attempts
	j.lastErr = v.LastError
	j.cpLigands = v.CheckpointLigands
	j.idemKey = v.IdempotencyKey
	j.degraded = v.Degraded
	j.effortFactor = v.EffortFactor
	j.effectiveScale = v.EffectiveScale
	j.deadline = time.Time{}
	if v.DeadlineAt != nil {
		j.deadline = *v.DeadlineAt
	}
	if v.IdempotencyKey != "" {
		s.idem[v.IdempotencyKey] = j.id
	}
	j.result = nil
	j.restored = v.Result
}

// bumpNextID keeps ID allocation monotonic across restarts.
func (s *Service) bumpNextID(id string) {
	var n uint64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// appendEvent journals one event, reporting whether the record is in the
// journal. Callers hold s.mu.
//
// Failure policy: while the service is storage-degraded the append is
// skipped outright (counted as skipped — in-flight jobs finish
// un-journaled by design). A fresh failure gets exactly one
// Recover-and-retry for transient causes; ENOSPC, or a retry that also
// fails, flips the service into degraded read-only mode. The in-memory
// service stays correct either way — only durability degrades — but
// SubmitIdem refuses to acknowledge a submission whose record did not
// land, so a 202 always means "journaled".
func (s *Service) appendEvent(ev jobEvent) bool {
	if s.journal == nil {
		return true
	}
	if s.storageDegraded {
		s.metrics.JournalSkipped()
		return false
	}
	b, err := json.Marshal(ev)
	if err == nil {
		err = s.journal.Append(b)
	}
	if err != nil {
		s.metrics.JournalError()
		s.log.Error("journal append failed", "job", ev.Job, "err", err)
		// One shot at recovery for transient I/O faults. A full disk is
		// not transient — retrying the same bytes cannot help.
		if !errors.Is(err, syscall.ENOSPC) {
			if rerr := s.journal.Recover(); rerr == nil {
				if err2 := s.journal.Append(b); err2 == nil {
					s.metrics.StorageRecovered()
					s.log.Info("journal append recovered after transient failure", "job", ev.Job)
					return s.afterAppendLocked(b)
				}
			}
		}
		s.enterDegradedLocked(err)
		return false
	}
	return s.afterAppendLocked(b)
}

// afterAppendLocked finishes a successful append: counters and size-based
// compaction. Caller holds s.mu.
func (s *Service) afterAppendLocked(b []byte) bool {
	s.metrics.JournalAppend(len(b))
	if s.journal.Size() > s.cfg.CompactBytes {
		s.compactLocked()
	}
	return true
}

// compactLocked rewrites the journal as one snapshot record per job,
// reporting success. Caller holds s.mu.
func (s *Service) compactLocked() bool {
	live := make([][]byte, 0, len(s.order))
	for _, id := range s.order {
		v := s.jobs[id].view()
		b, err := json.Marshal(jobEvent{Type: evSnapshot, Job: id, View: &v})
		if err != nil {
			s.metrics.JournalError()
			return false
		}
		live = append(live, b)
	}
	if err := s.journal.Compact(live); err != nil {
		s.metrics.JournalError()
		s.log.Error("journal compact failed", "err", err)
		return false
	}
	s.metrics.JournalCompaction()
	return true
}

// enterDegradedLocked flips the service into storage-degraded read-only
// mode: new submissions are shed with ErrStorageFull (HTTP 507 +
// Retry-After), reads keep serving, in-flight jobs finish un-journaled.
// tryRecoverStorageLocked probes the way back out. Caller holds s.mu.
func (s *Service) enterDegradedLocked(cause error) {
	if s.storageDegraded {
		return
	}
	s.storageDegraded = true
	s.storageReason = "io_error"
	if errors.Is(cause, syscall.ENOSPC) {
		s.storageReason = "disk_full"
	}
	s.storageSince = s.now()
	s.storageOnce.Do(func() { close(s.storageNotify) })
	s.log.Error("entering storage-degraded read-only mode",
		"reason", s.storageReason, "err", cause)
}

// storageProbeInterval rate-limits degraded-mode recovery probes (each
// probe attempts a journal Recover plus a full compaction). Package var so
// tests can zero it.
var storageProbeInterval = time.Second

// tryRecoverStorageLocked probes whether degraded mode can end: the WAL
// must Recover, and a full compaction — which writes a snapshot of every
// job, closing the un-journaled gap AND proving the disk takes writes
// again — must succeed. True means the service is (back) in journaling
// mode. Caller holds s.mu.
func (s *Service) tryRecoverStorageLocked() bool {
	if !s.storageDegraded {
		return true
	}
	if s.journal == nil {
		return false
	}
	now := s.now()
	if storageProbeInterval > 0 && now.Sub(s.lastStorageProbe) < storageProbeInterval {
		return false
	}
	s.lastStorageProbe = now
	if err := s.journal.Recover(); err != nil {
		return false
	}
	if !s.compactLocked() || s.journal.Failed() != nil {
		return false
	}
	s.storageDegraded = false
	s.storageReason = ""
	s.metrics.StorageRecovered()
	s.log.Info("storage recovered, journaling re-enabled",
		"degraded_seconds", now.Sub(s.storageSince).Seconds())
	return true
}

// checkpointDir and checkpointPath locate per-job checkpoint snapshots.
func (s *Service) checkpointDir() string { return filepath.Join(s.cfg.DataDir, "checkpoints") }
func (s *Service) checkpointPath(id string) string {
	return filepath.Join(s.checkpointDir(), id+".json")
}

// Checkpoint files end with a CRC32 trailer line over the JSON payload:
// "#crc32 xxxxxxxx\n". A snapshot that fails verification (truncated,
// bit-flipped, zero-length) is quarantined under <DataDir>/quarantine and
// the job re-docks from its WAL state instead of failing the boot or
// silently resuming from rot.
const checkpointTrailerLen = len("#crc32 ") + 8 + 1

// appendCheckpointTrailer appends the CRC trailer for payload.
func appendCheckpointTrailer(payload []byte) []byte {
	return append(payload, fmt.Sprintf("#crc32 %08x\n", crc32.ChecksumIEEE(payload))...)
}

// verifyCheckpointTrailer checks and strips the CRC trailer, returning
// the JSON payload and whether the file verified.
func verifyCheckpointTrailer(data []byte) ([]byte, bool) {
	if len(data) < checkpointTrailerLen {
		return nil, false
	}
	payload := data[:len(data)-checkpointTrailerLen]
	trailer := data[len(data)-checkpointTrailerLen:]
	var sum uint32
	if _, err := fmt.Sscanf(string(trailer), "#crc32 %08x\n", &sum); err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	return payload, true
}

// quarantineCheckpoint preserves a corrupt checkpoint file under
// <DataDir>/quarantine/<id>.json for post-mortem. Best effort — recovery
// proceeds on a fresh checkpoint either way.
func (s *Service) quarantineCheckpoint(id string, reason string) {
	qdir := filepath.Join(s.cfg.DataDir, "quarantine")
	if err := s.fs.MkdirAll(qdir, 0o755); err != nil {
		s.metrics.WALIOError("quarantine")
		return
	}
	if err := s.fs.Rename(s.checkpointPath(id), filepath.Join(qdir, id+".json")); err != nil {
		s.metrics.WALIOError("quarantine")
		s.log.Warn("could not quarantine corrupt checkpoint", "job", id, "err", err)
		return
	}
	s.metrics.CheckpointQuarantined()
	s.log.Warn("corrupt checkpoint quarantined, re-docking from WAL state",
		"job", id, "reason", reason, "quarantine", filepath.Join(qdir, id+".json"))
}

// loadJobCheckpoint reads a job's checkpoint snapshot, returning a fresh
// checkpoint when none exists, quarantining it first when it is corrupt
// (bad CRC trailer or undecodable JSON), and ignoring it when its seed
// does not match the request — resuming would silently mix runs.
func (s *Service) loadJobCheckpoint(id string, seed uint64) *core.Checkpoint {
	data, err := s.fs.ReadFile(s.checkpointPath(id))
	if err != nil {
		return &core.Checkpoint{}
	}
	payload, ok := verifyCheckpointTrailer(data)
	if !ok {
		s.quarantineCheckpoint(id, "crc mismatch or truncated")
		return &core.Checkpoint{}
	}
	cp, err := core.LoadCheckpoint(bytes.NewReader(payload))
	if err != nil {
		s.quarantineCheckpoint(id, err.Error())
		return &core.Checkpoint{}
	}
	if cp.Seed != seed {
		s.log.Warn("checkpoint seed mismatch, re-docking from scratch", "job", id)
		return &core.Checkpoint{}
	}
	return cp
}

// writeJobCheckpoint snapshots a checkpoint atomically: temp file, fsync,
// rename, directory fsync. A crash leaves either the old snapshot or the
// new one, never a torn file — and the directory fsync makes sure the
// rename itself survives a power loss, not just the temp file's bytes.
func (s *Service) writeJobCheckpoint(id string, cp *core.Checkpoint) error {
	path := s.checkpointPath(id)
	tmp := path + ".tmp"
	var buf bytes.Buffer
	if err := core.SaveCheckpoint(&buf, cp); err != nil {
		return err
	}
	framed := appendCheckpointTrailer(buf.Bytes())
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.SyncDir(s.checkpointDir()); err != nil {
		s.metrics.WALIOError("dirsync")
		return err
	}
	return nil
}
