package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
)

// histogram is one fixed-bucket Prometheus histogram: cumulative bucket
// counts are derived at write time, so observe is O(buckets) with no
// allocation. Callers hold the owning Metrics mutex.
type histogram struct {
	buckets []float64 // upper bounds, seconds; +Inf implicit
	counts  []int64   // one per bucket plus the +Inf overflow
	sum     float64
	count   int64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for ; i < len(h.buckets); i++ {
		if v <= h.buckets[i] {
			break
		}
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// write emits the histogram in Prometheus text format under name.
func (h *histogram) write(p func(format string, args ...any), name string) {
	cum := int64(0)
	for i, le := range h.buckets {
		cum += h.counts[i]
		p("%s_bucket{le=%q} %d\n", name, formatFloat(le), cum)
	}
	cum += h.counts[len(h.buckets)]
	p("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p("%s_sum %s\n", name, formatFloat(h.sum))
	p("%s_count %d\n", name, h.count)
}

// writeLabeled is write with one extra constant label on every series.
func (h *histogram) writeLabeled(p func(format string, args ...any), name, label, value string) {
	cum := int64(0)
	for i, le := range h.buckets {
		cum += h.counts[i]
		p("%s_bucket{%s=%q,le=%q} %d\n", name, label, value, formatFloat(le), cum)
	}
	cum += h.counts[len(h.buckets)]
	p("%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
	p("%s_sum{%s=%q} %s\n", name, label, value, formatFloat(h.sum))
	p("%s_count{%s=%q} %d\n", name, label, value, h.count)
}

// Metrics is the service's hand-rolled Prometheus registry: counters for
// the job lifecycle, latency histograms (end-to-end, queue wait, run time,
// per-generation simulated time), and engine work counters (scoring
// evaluations, simulated seconds) aggregated from every finished run. It
// holds no references into jobs, so scraping never contends with screening
// beyond this one mutex.
//
// The exposition format is the Prometheus text format, written by
// WriteTo; names are stable API (dashboards depend on them).
type Metrics struct {
	mu sync.Mutex

	workers   int
	busy      int
	submitted int64
	rejected  int64
	finished  map[JobState]int64
	shed      map[string]int64 // overload rejections/culls by reason
	degraded  int64            // jobs run with reduced effort

	latency    *histogram                     // submission -> terminal state
	queueWait  *histogram                     // submission -> worker start
	runTime    *histogram                     // worker start -> terminal state
	genSim     *histogram                     // simulated seconds per metaheuristic generation
	classQueue map[admission.Class]*histogram // queue wait split by priority class

	evaluations      int64
	simulatedSeconds float64

	deviceFaults int64
	resplits     int64
	jobRetries   int64
	workerPanics int64

	journalRecords     int64
	journalBytes       int64
	journalErrors      int64
	journalCompactions int64
	checkpointsWritten int64
	replayedRecords    int64
	recoveredJobs      int64
	truncatedBytes     int64

	walIOErrors       map[string]int64 // absorbed/surfaced storage I/O failures by op
	journalSkipped    int64            // appends skipped in storage-degraded mode
	checkpointsQuar   int64            // corrupt checkpoints quarantined
	checkpointErrors  int64            // checkpoint snapshot write failures
	storageRecoveries int64            // successful storage recoveries (journal re-enabled)
}

// defaultLatencyBuckets spans interactive modeled screens (tens of
// milliseconds) to long real-mode library runs.
var defaultLatencyBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}

// defaultGenBuckets spans one metaheuristic generation's simulated time,
// from sub-millisecond modeled generations to long real-scale ones.
var defaultGenBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10, 100}

// shedReasons lists every shed-counter label in exposition order.
var shedReasons = []string{
	"queue_full", "deadline_admission", "deadline_dequeue",
	"deadline_backoff", "breaker_open", "storage_full",
}

// NewMetrics builds an empty registry for a pool of `workers` workers.
func NewMetrics(workers int) *Metrics {
	m := &Metrics{
		workers:     workers,
		finished:    make(map[JobState]int64),
		shed:        make(map[string]int64),
		latency:     newHistogram(defaultLatencyBuckets),
		queueWait:   newHistogram(defaultLatencyBuckets),
		runTime:     newHistogram(defaultLatencyBuckets),
		genSim:      newHistogram(defaultGenBuckets),
		classQueue:  make(map[admission.Class]*histogram),
		walIOErrors: make(map[string]int64),
	}
	for _, c := range admission.Classes() {
		m.classQueue[c] = newHistogram(defaultLatencyBuckets)
	}
	return m
}

// Submitted counts one admitted job.
func (m *Metrics) Submitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// Rejected counts one queue-full rejection.
func (m *Metrics) Rejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// Shed counts one overload rejection or cull under its reason label
// (one of shedReasons).
func (m *Metrics) Shed(reason string) {
	m.mu.Lock()
	m.shed[reason]++
	m.mu.Unlock()
}

// ShedCounts copies the shed counters by reason.
func (m *Metrics) ShedCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.shed))
	for k, v := range m.shed {
		out[k] = v
	}
	return out
}

// Degraded counts one job run with reduced effort under pressure.
func (m *Metrics) Degraded() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

// ClassQueueWait observes one job's queue wait under its priority class.
func (m *Metrics) ClassQueueWait(c admission.Class, d time.Duration) {
	m.mu.Lock()
	if h, ok := m.classQueue[c]; ok {
		h.observe(d.Seconds())
	}
	m.mu.Unlock()
}

// WorkerBusy adjusts the busy-worker gauge by delta (+1/-1).
func (m *Metrics) WorkerBusy(delta int) {
	m.mu.Lock()
	m.busy += delta
	m.mu.Unlock()
}

// Finished counts one job reaching a terminal state and observes its
// end-to-end latency (submission to completion, queue wait included).
func (m *Metrics) Finished(state JobState, latency time.Duration) {
	m.mu.Lock()
	m.finished[state]++
	m.latency.observe(latency.Seconds())
	m.mu.Unlock()
}

// JobTimes observes the two phases of one finished job that actually ran:
// the submit->start queue wait and the start->finish run time.
func (m *Metrics) JobTimes(queueWait, run time.Duration) {
	m.mu.Lock()
	m.queueWait.observe(queueWait.Seconds())
	m.runTime.observe(run.Seconds())
	m.mu.Unlock()
}

// GenerationSim observes one metaheuristic generation's simulated
// duration, in modeled seconds.
func (m *Metrics) GenerationSim(seconds float64) {
	m.mu.Lock()
	m.genSim.observe(seconds)
	m.mu.Unlock()
}

// Work accumulates a finished run's engine counters, including the fault
// events and re-splits its scheduler absorbed.
func (m *Metrics) Work(evaluations int64, simulatedSeconds float64, deviceFaults, resplits int64) {
	m.mu.Lock()
	m.evaluations += evaluations
	m.simulatedSeconds += simulatedSeconds
	m.deviceFaults += deviceFaults
	m.resplits += resplits
	m.mu.Unlock()
}

// JobRetried counts one transient-failure retry of a job.
func (m *Metrics) JobRetried() {
	m.mu.Lock()
	m.jobRetries++
	m.mu.Unlock()
}

// WorkerPanic counts one recovered worker panic.
func (m *Metrics) WorkerPanic() {
	m.mu.Lock()
	m.workerPanics++
	m.mu.Unlock()
}

// JournalAppend counts one journal record of the given payload size.
func (m *Metrics) JournalAppend(bytes int) {
	m.mu.Lock()
	m.journalRecords++
	m.journalBytes += int64(bytes)
	m.mu.Unlock()
}

// JournalError counts one journal append, compaction or replay-decode
// failure. Durability degrades; the in-memory service stays correct.
func (m *Metrics) JournalError() {
	m.mu.Lock()
	m.journalErrors++
	m.mu.Unlock()
}

// JournalCompaction counts one successful journal compaction.
func (m *Metrics) JournalCompaction() {
	m.mu.Lock()
	m.journalCompactions++
	m.mu.Unlock()
}

// CheckpointWritten counts one atomic per-job checkpoint snapshot.
func (m *Metrics) CheckpointWritten() {
	m.mu.Lock()
	m.checkpointsWritten++
	m.mu.Unlock()
}

// WALIOError counts one storage I/O failure by operation label ("sync",
// "dirsync", "remove", "quarantine", ...). Many are absorbed (logged and
// survived); the counter is how a quietly failing disk gets noticed.
func (m *Metrics) WALIOError(op string) {
	m.mu.Lock()
	m.walIOErrors[op]++
	m.mu.Unlock()
}

// WALIOErrorCounts copies the per-op storage I/O failure counters.
func (m *Metrics) WALIOErrorCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.walIOErrors))
	for k, v := range m.walIOErrors {
		out[k] = v
	}
	return out
}

// JournalSkipped counts one append skipped in storage-degraded mode.
func (m *Metrics) JournalSkipped() {
	m.mu.Lock()
	m.journalSkipped++
	m.mu.Unlock()
}

// CheckpointQuarantined counts one corrupt checkpoint snapshot moved to
// quarantine instead of being resumed from.
func (m *Metrics) CheckpointQuarantined() {
	m.mu.Lock()
	m.checkpointsQuar++
	m.mu.Unlock()
}

// CheckpointError counts one failed checkpoint snapshot write (the screen
// continues; the job keeps its previous snapshot).
func (m *Metrics) CheckpointError() {
	m.mu.Lock()
	m.checkpointErrors++
	m.mu.Unlock()
}

// StorageRecovered counts one successful storage recovery: a journal
// append retried clean, or degraded mode ended.
func (m *Metrics) StorageRecovered() {
	m.mu.Lock()
	m.storageRecoveries++
	m.mu.Unlock()
}

// Recovered records what boot-time journal replay found: records applied,
// interrupted jobs re-enqueued, and torn-tail bytes truncated.
func (m *Metrics) Recovered(replayed, recovered int, truncated int64) {
	m.mu.Lock()
	m.replayedRecords += int64(replayed)
	m.recoveredJobs += int64(recovered)
	m.truncatedBytes += truncated
	m.mu.Unlock()
}

// Snapshot is the scrape-time view of the counters, merged with the live
// service gauges by the /metrics handler.
type Snapshot struct {
	Submitted   int64
	Rejected    int64
	Finished    map[JobState]int64
	Evaluations int64
	Busy        int
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	fin := make(map[JobState]int64, len(m.finished))
	for k, v := range m.finished {
		fin[k] = v
	}
	return Snapshot{
		Submitted:   m.submitted,
		Rejected:    m.rejected,
		Finished:    fin,
		Evaluations: m.evaluations,
		Busy:        m.busy,
	}
}

// WriteTo writes the registry in Prometheus text exposition format,
// followed by the live gauges carried by st (queue depth, running jobs
// and the admission state come from the Service, not the registry).
// Output order is fixed so the exposition is byte-stable for a given
// state — see the golden test.
func (m *Metrics) WriteTo(w io.Writer, st Stats) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	queueDepth, running := st.QueueDepth, st.Running

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP metascreen_jobs_submitted_total Jobs admitted into the queue.\n")
	p("# TYPE metascreen_jobs_submitted_total counter\n")
	p("metascreen_jobs_submitted_total %d\n", m.submitted)

	p("# HELP metascreen_jobs_rejected_total Submissions rejected because the queue was full.\n")
	p("# TYPE metascreen_jobs_rejected_total counter\n")
	p("metascreen_jobs_rejected_total %d\n", m.rejected)

	p("# HELP metascreen_jobs_finished_total Jobs by terminal state.\n")
	p("# TYPE metascreen_jobs_finished_total counter\n")
	for _, st := range TerminalStates {
		p("metascreen_jobs_finished_total{state=%q} %d\n", string(st), m.finished[st])
	}

	p("# HELP metascreen_queue_depth Jobs admitted but not yet claimed by a worker.\n")
	p("# TYPE metascreen_queue_depth gauge\n")
	p("metascreen_queue_depth %d\n", queueDepth)

	p("# HELP metascreen_jobs_running Jobs currently executing.\n")
	p("# TYPE metascreen_jobs_running gauge\n")
	p("metascreen_jobs_running %d\n", running)

	p("# HELP metascreen_workers Size of the worker pool.\n")
	p("# TYPE metascreen_workers gauge\n")
	p("metascreen_workers %d\n", m.workers)

	p("# HELP metascreen_workers_busy Workers currently running a job.\n")
	p("# TYPE metascreen_workers_busy gauge\n")
	p("metascreen_workers_busy %d\n", m.busy)

	p("# HELP metascreen_job_latency_seconds Job latency from submission to terminal state.\n")
	p("# TYPE metascreen_job_latency_seconds histogram\n")
	m.latency.write(p, "metascreen_job_latency_seconds")

	p("# HELP metascreen_job_queue_seconds Queue wait from submission to worker start.\n")
	p("# TYPE metascreen_job_queue_seconds histogram\n")
	m.queueWait.write(p, "metascreen_job_queue_seconds")

	p("# HELP metascreen_job_run_seconds Execution time from worker start to terminal state.\n")
	p("# TYPE metascreen_job_run_seconds histogram\n")
	m.runTime.write(p, "metascreen_job_run_seconds")

	p("# HELP metascreen_generation_sim_seconds Simulated seconds per metaheuristic generation in finished jobs.\n")
	p("# TYPE metascreen_generation_sim_seconds histogram\n")
	m.genSim.write(p, "metascreen_generation_sim_seconds")

	p("# HELP metascreen_evaluations_total Scoring-function evaluations performed by finished jobs.\n")
	p("# TYPE metascreen_evaluations_total counter\n")
	p("metascreen_evaluations_total %d\n", m.evaluations)

	p("# HELP metascreen_simulated_seconds_total Modeled engine seconds accumulated by finished jobs.\n")
	p("# TYPE metascreen_simulated_seconds_total counter\n")
	p("metascreen_simulated_seconds_total %s\n", formatFloat(m.simulatedSeconds))

	p("# HELP metascreen_device_faults_total Simulated device fault events absorbed by finished jobs.\n")
	p("# TYPE metascreen_device_faults_total counter\n")
	p("metascreen_device_faults_total %d\n", m.deviceFaults)

	p("# HELP metascreen_resplits_total Mid-run work redistributions after device loss in finished jobs.\n")
	p("# TYPE metascreen_resplits_total counter\n")
	p("metascreen_resplits_total %d\n", m.resplits)

	p("# HELP metascreen_job_retries_total Job executions retried after a transient failure.\n")
	p("# TYPE metascreen_job_retries_total counter\n")
	p("metascreen_job_retries_total %d\n", m.jobRetries)

	p("# HELP metascreen_worker_panics_total Worker panics recovered while running jobs.\n")
	p("# TYPE metascreen_worker_panics_total counter\n")
	p("metascreen_worker_panics_total %d\n", m.workerPanics)

	p("# HELP metascreen_journal_records_total Job lifecycle records appended to the journal.\n")
	p("# TYPE metascreen_journal_records_total counter\n")
	p("metascreen_journal_records_total %d\n", m.journalRecords)

	p("# HELP metascreen_journal_bytes_total Journal record payload bytes appended.\n")
	p("# TYPE metascreen_journal_bytes_total counter\n")
	p("metascreen_journal_bytes_total %d\n", m.journalBytes)

	p("# HELP metascreen_journal_errors_total Journal append, compaction or replay-decode failures.\n")
	p("# TYPE metascreen_journal_errors_total counter\n")
	p("metascreen_journal_errors_total %d\n", m.journalErrors)

	p("# HELP metascreen_journal_compactions_total Journal compactions into per-job snapshots.\n")
	p("# TYPE metascreen_journal_compactions_total counter\n")
	p("metascreen_journal_compactions_total %d\n", m.journalCompactions)

	p("# HELP metascreen_checkpoints_written_total Atomic per-job checkpoint snapshots written.\n")
	p("# TYPE metascreen_checkpoints_written_total counter\n")
	p("metascreen_checkpoints_written_total %d\n", m.checkpointsWritten)

	p("# HELP metascreen_replayed_records_total Journal records applied during boot-time recovery.\n")
	p("# TYPE metascreen_replayed_records_total counter\n")
	p("metascreen_replayed_records_total %d\n", m.replayedRecords)

	p("# HELP metascreen_recovered_jobs_total Interrupted jobs re-enqueued by boot-time recovery.\n")
	p("# TYPE metascreen_recovered_jobs_total counter\n")
	p("metascreen_recovered_jobs_total %d\n", m.recoveredJobs)

	p("# HELP metascreen_journal_truncated_bytes_total Torn-tail journal bytes dropped during recovery.\n")
	p("# TYPE metascreen_journal_truncated_bytes_total counter\n")
	p("metascreen_journal_truncated_bytes_total %d\n", m.truncatedBytes)

	p("# HELP metascreen_wal_io_errors_total Storage I/O failures absorbed or surfaced by the durability layer, by operation.\n")
	p("# TYPE metascreen_wal_io_errors_total counter\n")
	ops := make([]string, 0, len(m.walIOErrors))
	for op := range m.walIOErrors {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		p("metascreen_wal_io_errors_total{op=%q} %d\n", op, m.walIOErrors[op])
	}

	p("# HELP metascreen_journal_skipped_total Journal appends skipped while storage-degraded.\n")
	p("# TYPE metascreen_journal_skipped_total counter\n")
	p("metascreen_journal_skipped_total %d\n", m.journalSkipped)

	p("# HELP metascreen_checkpoints_quarantined_total Corrupt checkpoint snapshots quarantined during recovery.\n")
	p("# TYPE metascreen_checkpoints_quarantined_total counter\n")
	p("metascreen_checkpoints_quarantined_total %d\n", m.checkpointsQuar)

	p("# HELP metascreen_checkpoint_errors_total Checkpoint snapshot write failures (screen continued).\n")
	p("# TYPE metascreen_checkpoint_errors_total counter\n")
	p("metascreen_checkpoint_errors_total %d\n", m.checkpointErrors)

	p("# HELP metascreen_storage_recoveries_total Successful storage recoveries (journaling re-enabled).\n")
	p("# TYPE metascreen_storage_recoveries_total counter\n")
	p("metascreen_storage_recoveries_total %d\n", m.storageRecoveries)

	p("# HELP metascreen_storage_degraded Whether the service is in storage-degraded read-only mode.\n")
	p("# TYPE metascreen_storage_degraded gauge\n")
	p("metascreen_storage_degraded %d\n", boolGauge(st.StorageDegraded))

	p("# HELP metascreen_jobs_shed_total Overload rejections and culls by reason.\n")
	p("# TYPE metascreen_jobs_shed_total counter\n")
	for _, r := range shedReasons {
		p("metascreen_jobs_shed_total{reason=%q} %d\n", r, m.shed[r])
	}

	p("# HELP metascreen_jobs_degraded_total Jobs run with reduced search effort under pressure.\n")
	p("# TYPE metascreen_jobs_degraded_total counter\n")
	p("metascreen_jobs_degraded_total %d\n", m.degraded)

	p("# HELP metascreen_admission_limit Adaptive concurrency limiter window.\n")
	p("# TYPE metascreen_admission_limit gauge\n")
	p("metascreen_admission_limit %d\n", st.Limit)

	p("# HELP metascreen_admission_inflight Jobs currently holding a concurrency slot.\n")
	p("# TYPE metascreen_admission_inflight gauge\n")
	p("metascreen_admission_inflight %d\n", st.InFlight)

	p("# HELP metascreen_breaker_state Device-health circuit state: 0 closed, 1 half-open, 2 open.\n")
	p("# TYPE metascreen_breaker_state gauge\n")
	p("metascreen_breaker_state %d\n", breakerGauge(st.Breaker))

	p("# HELP metascreen_queue_depth_class Queued jobs by priority class.\n")
	p("# TYPE metascreen_queue_depth_class gauge\n")
	for _, c := range admission.Classes() {
		p("metascreen_queue_depth_class{class=%q} %d\n", c.String(), st.QueueByClass[c.String()])
	}

	p("# HELP metascreen_job_class_queue_seconds Queue wait from submission to worker start, by priority class.\n")
	p("# TYPE metascreen_job_class_queue_seconds histogram\n")
	for _, c := range admission.Classes() {
		m.classQueue[c].writeLabeled(p, "metascreen_job_class_queue_seconds", "class", c.String())
	}

	return err
}

// boolGauge renders a boolean gauge as 0/1.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// breakerGauge maps a breaker state name to its gauge value.
func breakerGauge(state string) int {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return 0
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
