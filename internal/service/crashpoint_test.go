package service

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/fsim"
)

// The ALICE-style crash-point explorer: run a fixed submit -> checkpoint
// -> finish workload once under a recording fsim to learn how many
// mutating filesystem operations (writes, syncs, renames, removes) it
// performs, then replay it once per operation with a deterministic
// crash@opK plan — simulating a power loss at every write/sync/rename
// boundary — recover each frozen data dir into a fresh Server, and assert
// the durability invariants:
//
//   - no acknowledged job is lost: every submission that returned nil
//     error in the crashed run exists after recovery;
//   - no terminal regression: after the recovered service drains, every
//     acknowledged job is done (never failed, shed or vanished);
//   - resumed rankings are byte-identical to the uninterrupted run's.

// explorerSeed keys every fsim in the explorer; the decision log (and
// therefore every crashed disk image) is a pure function of it.
const explorerSeed = 424242

// explorerRequests is the workload: three distinct screens, each with an
// idempotency key, submitted sequentially (each waits for the previous to
// finish, so the mutating-op sequence is deterministic).
func explorerRequests() []ScreenRequest {
	reqs := make([]ScreenRequest, 3)
	for i := range reqs {
		reqs[i] = recoveryRequest
		reqs[i].Seed = uint64(7 + i)
	}
	return reqs
}

// rankingBytes is the byte-identity fingerprint of a job's ranking.
func rankingBytes(t *testing.T, v JobView) []byte {
	t.Helper()
	if v.Result == nil {
		t.Fatalf("job %s has no result", v.ID)
	}
	b, err := json.Marshal(v.Result.Ranking)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runExplorerWorkload submits the workload sequentially against s,
// waiting for each acknowledged job to reach a terminal state before the
// next submission. It returns the acknowledged job IDs by idempotency
// key. Submissions shed after a simulated crash are not acknowledged and
// not returned.
func runExplorerWorkload(s *Service) map[string]string {
	acked := make(map[string]string)
	for i, req := range explorerRequests() {
		key := fmt.Sprintf("explore-%d", i)
		v, _, err := s.SubmitIdem(req, key)
		if err != nil {
			continue
		}
		acked[key] = v.ID
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			got, gerr := s.Get(v.ID)
			if gerr == nil && got.State.Terminal() {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	return acked
}

func TestCrashPointExplorer(t *testing.T) {
	// Recording run: clean pass-through fsim counts the mutating ops and
	// produces the reference rankings every recovered run must reproduce.
	refDir := t.TempDir()
	recorder := fsim.New(fsim.Plan{}, fsim.Config{Seed: explorerSeed})
	cfg := durableConfig(refDir)
	cfg.FS = recorder
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acked := runExplorerWorkload(s)
	if len(acked) != 3 {
		t.Fatalf("clean run acknowledged %d jobs, want 3", len(acked))
	}
	reference := make(map[string][]byte) // idempotency key -> ranking bytes
	for key, id := range acked {
		v, err := s.Get(id)
		if err != nil || v.State != StateDone {
			t.Fatalf("clean run job %s: %+v (%v)", id, v, err)
		}
		reference[key] = rankingBytes(t, v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	total := int(recorder.MutatingOps())
	if total < 100 {
		t.Fatalf("workload performs %d mutating ops; explorer needs >= 100 crash points", total)
	}
	// Bound the sweep so the test stays proportionate: every point in
	// -short mode would be excessive, every point above ~400 likewise.
	stride := 1
	if testing.Short() {
		stride = (total + 24) / 25
	} else if total > 400 {
		stride = total / 400
	}
	t.Logf("exploring %d crash points (of %d mutating ops, stride %d)", (total+stride-1)/stride, total, stride)

	explored := 0
	for k := 1; k <= total; k += stride {
		explored++
		k := k
		t.Run(fmt.Sprintf("op%03d", k), func(t *testing.T) {
			dir := t.TempDir()

			// Crashed run: identical workload, identical seed, power loss
			// at mutating op k. Every filesystem mutation after the crash
			// point fails, so the disk image is frozen mid-operation.
			plan, err := fsim.ParsePlan(fmt.Sprintf("*:crash@op%d", k))
			if err != nil {
				t.Fatal(err)
			}
			faulty := fsim.New(plan, fsim.Config{Seed: explorerSeed})
			cfg := durableConfig(dir)
			cfg.FS = faulty
			var acked map[string]string
			cs, err := New(cfg)
			if err == nil {
				acked = runExplorerWorkload(cs)
				cs.crashForTest()
			}
			// A New that failed crashed during boot: nothing acknowledged.

			// Recovery: a fresh Server over the frozen dir with a healthy
			// disk must boot (quarantining damage, never failing) and
			// finish every acknowledged job with the reference ranking.
			rs, err := New(durableConfig(dir))
			if err != nil {
				t.Fatalf("recovery boot failed after crash at op %d: %v", k, err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				rs.Shutdown(ctx)
			}()
			for key, id := range acked {
				if _, err := rs.Get(id); err != nil {
					t.Fatalf("acknowledged job %s (%s) lost after crash at op %d: %v", id, key, k, err)
				}
			}
			for key, id := range acked {
				key, id := key, id
				waitFor(t, func() bool {
					v, err := rs.Get(id)
					return err == nil && v.State.Terminal()
				})
				v, err := rs.Get(id)
				if err != nil || v.State != StateDone {
					t.Fatalf("job %s (%s) recovered into state %q (%v), want done", id, key, v.State, err)
				}
				if got := rankingBytes(t, v); string(got) != string(reference[key]) {
					t.Fatalf("job %s (%s) ranking diverged after crash at op %d:\n got %s\nwant %s",
						id, key, k, got, reference[key])
				}
			}
		})
	}
	t.Logf("explored %d crash points, all invariants held", explored)
}

// TestExplorerWorkloadDeterministic guards the explorer's foundation: two
// clean runs of the workload perform the identical number of mutating
// filesystem operations, so crash@opK lands on the same boundary run to
// run.
func TestExplorerWorkloadDeterministic(t *testing.T) {
	ops := func() uint64 {
		dir := t.TempDir()
		rec := fsim.New(fsim.Plan{}, fsim.Config{Seed: explorerSeed})
		cfg := durableConfig(dir)
		cfg.FS = rec
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := runExplorerWorkload(s); len(got) != 3 {
			t.Fatalf("acknowledged %d jobs, want 3", len(got))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if rec.MutatingOps() == 0 {
			t.Fatal("recorder saw no mutating ops")
		}
		return rec.MutatingOps()
	}
	a := ops()
	b := ops()
	if a != b {
		t.Fatalf("mutating-op counts differ between identical runs: %d vs %d", a, b)
	}
}
