// Package service turns the metascreen engine into a long-running
// screening service: submitted screens become queued jobs, a bounded
// worker pool drains them through internal/core, and an HTTP JSON API
// (plus a Prometheus-text /metrics endpoint) exposes the whole lifecycle.
//
// The package is the chassis for production deployment of the paper's
// engine — the drug-discovery funnel as a server rather than a library
// call. Its contracts:
//
//   - Admission control: the queue is bounded; a full queue rejects with
//     ErrQueueFull (HTTP 429) instead of buffering unbounded memory.
//   - Cancellation: every running job has its own context.Context; DELETE
//     aborts it between metaheuristic generations via core.RunCtx.
//   - Determinism: a job's ranking is byte-identical to the same screen
//     run through the library API with the same request and seed.
//   - Graceful drain: Shutdown stops intake, cancels still-queued jobs,
//     and lets running jobs finish (until the shutdown context expires,
//     at which point they are force-cancelled).
//
// The worker pool and the metrics counters are shared mutable state; run
// the package tests with -race (see the repo's CI workflow).
package service

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/fsim"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/trace"
	"github.com/metascreen/metascreen/internal/wal"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent screening workers;
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-started jobs;
	// 0 means 64.
	QueueDepth int
	// ScreenWorkers bounds the per-job ligand parallelism handed to
	// core.ScreenCtx; 0 means one goroutine per CPU (fine for a single
	// job at a time; set to 1 when Workers is large to avoid
	// oversubscription).
	ScreenWorkers int
	// MaxAttempts bounds how many times a job whose failures classify as
	// transient is executed before it is failed; 0 means 3, 1 disables
	// retries. Permanent failures never retry.
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry; it doubles
	// per retry (jittered, capped at 5s). 0 means 100ms.
	RetryBaseDelay time.Duration

	// DataDir enables durability: job lifecycle events are journaled to
	// <DataDir>/journal and per-job checkpoints snapshotted under
	// <DataDir>/checkpoints, so a crashed process resumes its jobs on the
	// next boot over the same directory. Empty keeps everything in memory
	// (the pre-durability behaviour).
	DataDir string
	// Fsync is the journal's fsync policy; the zero value is
	// wal.SyncAlways. Only meaningful with DataDir.
	Fsync wal.SyncPolicy
	// FsyncInterval is the wal.SyncInterval cadence; 0 means 100ms.
	FsyncInterval time.Duration
	// CheckpointEvery snapshots a running job's checkpoint after every N
	// newly completed ligands; 0 means 1 (snapshot after each ligand).
	CheckpointEvery int
	// CompactBytes compacts the journal into per-job snapshots when it
	// grows past this size; 0 means 4 MiB.
	CompactBytes int64
	// FS is the filesystem the journal and checkpoints write through; nil
	// means the real one. The -disk-chaos flag and the crash-point
	// explorer inject a fsim.Faulty here.
	FS fsim.FS

	// Admission tunes overload protection (adaptive concurrency limiter,
	// circuit breaker, deadline shedding, graceful degradation). Zero
	// fields take their documented defaults; Workers is seeded from
	// Config.Workers when unset. See package admission.
	Admission admission.Config

	// Clock is the service's time source; nil means time.Now. Tests pin
	// it so admission decisions and timestamps are deterministic.
	Clock func() time.Time

	// Logger receives the service's structured logs; every job-scoped
	// record carries a "job" attribute for correlation. Nil discards.
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	return c
}

// runnerFunc executes one screen; tests substitute a controllable stub.
// The job ID keys the durable checkpoint the production runner resumes
// from.
type runnerFunc func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error)

// Service is the screening service: job registry, bounded queue, worker
// pool and metrics. Create it with New, serve its Handler, stop it with
// Shutdown.
type Service struct {
	cfg     Config
	metrics *Metrics
	log     *slog.Logger
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for List
	nextID   uint64
	draining bool

	queue   *jobQueue
	ctrl    *admission.Controller
	workers sync.WaitGroup
	run     runnerFunc

	// Durability (nil journal when DataDir is unset).
	journal  *wal.Journal
	fs       fsim.FS
	idem     map[string]string // idempotency key -> job ID
	recovery RecoveryStats
	crashed  bool // crashForTest: suppress terminal side effects

	// Storage-degraded read-only mode (see enterDegradedLocked): new
	// submissions shed with 507 while reads keep serving; probes flip the
	// service back once the disk takes writes again.
	storageDegraded  bool
	storageReason    string // "disk_full" or "io_error"
	storageSince     time.Time
	lastStorageProbe time.Time
	storageNotify    chan struct{}
	storageOnce      sync.Once

	// checkpointHook observes checkpoint snapshots; recovery tests use it
	// to crash at a deterministic mid-screen point.
	checkpointHook func(jobID string, newly int)

	// lastWarmup holds the most recent warm-up Percent factors reported
	// by a finished job's backend, for the debug snapshot.
	lastWarmup map[string][]float64

	// ready flips once New finished booting: journal replayed, worker
	// pool started. /readyz reports it (false again while draining).
	ready bool

	// now is the clock; tests pin it for stable timestamps.
	now func() time.Time
}

// New builds a service and starts its worker pool. With Config.DataDir
// set, it first replays the journal found there: the job table is rebuilt,
// finished jobs keep their rankings, and interrupted jobs are re-enqueued
// to resume from their checkpoints.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	now := time.Now
	if cfg.Clock != nil {
		now = cfg.Clock
	}
	acfg := cfg.Admission
	if acfg.Workers == 0 {
		acfg.Workers = cfg.Workers
	}
	if acfg.Now == nil {
		acfg.Now = now
	}
	s := &Service{
		cfg:     cfg,
		metrics: NewMetrics(cfg.Workers),
		log:     cfg.Logger,
		started: now(),
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
		queue:   newJobQueue(cfg.QueueDepth),
		ctrl:    admission.NewController(acfg),
		now:     now,
		fs:      cfg.FS,

		storageNotify: make(chan struct{}),
	}
	if s.fs == nil {
		s.fs = fsim.OSFS()
	}
	if s.log == nil {
		s.log = obs.Nop()
	}
	s.run = s.runScreen
	if cfg.DataDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
	return s, nil
}

// Recovery reports what this instance replayed and re-enqueued at boot;
// all zeros without a DataDir or on a fresh one.
func (s *Service) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// storageRetryAfter is the Retry-After handed to submissions shed in
// storage-degraded mode: long enough that clients do not hammer a full
// disk, short enough to notice space being freed promptly.
const storageRetryAfter = 5 * time.Second

// StorageFull is closed the first time the service enters
// storage-degraded mode. vsserved's -on-full=stop policy drains on it;
// the default -on-full=degrade keeps serving reads.
func (s *Service) StorageFull() <-chan struct{} { return s.storageNotify }

// Submit validates and enqueues a screen, returning the queued job's
// snapshot. It fails fast with ErrQueueFull or ErrDraining.
func (s *Service) Submit(req ScreenRequest) (JobView, error) {
	v, _, err := s.SubmitIdem(req, "")
	return v, err
}

// SubmitIdem is Submit with an idempotency key: when key is non-empty and
// a job — live or journaled before a crash — was already admitted under
// it, that job's snapshot is returned with existing=true instead of
// double-submitting. Clients that retry submissions across timeouts and
// server restarts should always send a key.
func (s *Service) SubmitIdem(req ScreenRequest, key string) (v JobView, existing bool, err error) {
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return JobView{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if key != "" {
		if id, ok := s.idem[key]; ok {
			return s.jobs[id].view(), true, nil
		}
	}
	if s.draining {
		return JobView{}, false, ErrDraining
	}
	// Storage-degraded read-only mode: a 202 must mean the submission is
	// journaled, which a failed disk cannot promise. Each rejected submit
	// is also a (rate-limited) recovery probe, so journaling resumes
	// without a restart once space is freed.
	if s.storageDegraded && !s.tryRecoverStorageLocked() {
		return JobView{}, false, s.shedLocked(ErrStorageFull, "storage_full", storageRetryAfter)
	}

	// Admission pipeline: breaker gate (machine jobs only), deadline
	// feasibility, then the bounded fair queue. Rejections never allocate
	// a job ID and always carry a computed Retry-After.
	var probe bool
	if req.Machine != "" {
		allowed, p := s.ctrl.Breaker.Allow()
		if !allowed {
			return JobView{}, false, s.shedLocked(ErrBreakerOpen, "breaker_open", s.ctrl.RetryAfterBreaker())
		}
		probe = p
	}
	var deadline time.Time
	if req.DeadlineSeconds > 0 {
		now := s.now()
		deadline = now.Add(time.Duration(req.DeadlineSeconds * float64(time.Second)))
		if ok, retry := s.ctrl.CanMeetDeadline(now, deadline); !ok {
			if probe {
				s.ctrl.Breaker.ReleaseProbe()
			}
			return JobView{}, false, s.shedLocked(ErrDeadlineUnmeetable, "deadline_admission", retry)
		}
	}
	class, _ := admission.ParseClass(req.Priority) // validated above

	s.nextID++
	j := &Job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		state:     StateQueued,
		req:       req,
		submitted: s.now(),
		idemKey:   key,
		class:     class,
		deadline:  deadline,
		probe:     probe,
		rec:       &trace.Recorder{},
	}
	j.rec.SetEpoch(j.submitted)
	if err := s.queue.tryPush(j); err != nil {
		s.nextID-- // the ID was never exposed
		if probe {
			s.ctrl.Breaker.ReleaseProbe()
		}
		s.metrics.Rejected()
		return JobView{}, false, s.shedLocked(err, "queue_full", s.ctrl.RetryAfterFull())
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if key != "" {
		s.idem[key] = j.id
	}
	s.metrics.Submitted()
	if !s.appendEvent(jobEvent{
		Type: evSubmitted, Job: j.id, Time: j.submitted,
		Request: &j.req, IdemKey: key,
	}) && s.journal != nil {
		// The ack oracle: a 202 promises the submission survives a crash,
		// and this one's record never reached the journal. Shed the job
		// (the queued entry is skipped when popped) instead of acking.
		if key != "" {
			delete(s.idem, key)
		}
		j.idemKey = ""
		s.finishLocked(j, StateShed, nil, "shed: journal unavailable at admission")
		return JobView{}, false, s.shedLocked(ErrStorageFull, "storage_full", storageRetryAfter)
	}
	s.log.Info("job submitted", "job", j.id,
		"dataset", req.Dataset, "library", req.Library,
		"metaheuristic", req.Metaheuristic, "machine", req.Machine)
	return j.view(), false, nil
}

// shedLocked counts and logs one overload rejection and wraps it as a
// ShedError carrying the Retry-After and queue state. Caller holds s.mu.
func (s *Service) shedLocked(err error, reason string, retryAfter time.Duration) error {
	s.metrics.Shed(reason)
	depth := s.queue.depth()
	s.log.Warn("request shed", "reason", reason, "err", err,
		"retry_after_seconds", retryAfter.Seconds(), "queue_depth", depth)
	return &ShedError{
		Err:        err,
		Reason:     reason,
		RetryAfter: retryAfter,
		QueueDepth: depth,
		Limit:      s.cfg.QueueDepth,
	}
}

// Get returns a job snapshot.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// Trace returns a job's span recorder for timeline export. A job restored
// from the journal lost its recorder with the previous process; a fresh
// one is built from its lifecycle timestamps so the trace endpoint still
// serves a (sparse) timeline.
func (s *Service) Trace(id string) (*trace.Recorder, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.rec == nil {
		j.rec = &trace.Recorder{}
		if !j.submitted.IsZero() {
			j.rec.SetEpoch(j.submitted)
		}
		if j.state.Terminal() && !j.finished.IsZero() {
			s.recordJobSpans(j)
		}
	}
	return j.rec, nil
}

// List returns every job in submission order.
func (s *Service) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled immediately (the
// worker that later pops it skips it), a running job has its context
// cancelled and finishes as cancelled once the engine notices, between
// generations. Cancelling a terminal job returns ErrTerminal.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.finishLocked(j, StateCancelled, nil, "cancelled while queued")
	case StateRunning:
		// Journal the intent before signalling: if the process dies before
		// the job finishes, replay sees the cancel and does not resurrect
		// the job.
		j.cancelRequested = true
		s.appendEvent(jobEvent{Type: evCancel, Job: j.id, Time: s.now()})
		j.cancel()
	default:
		return j.view(), ErrTerminal
	}
	return j.view(), nil
}

// finishLocked moves a job to a terminal state, records it in the metrics,
// journals the full final snapshot, and retires the job's checkpoint file
// (the terminal event carries the result, so the checkpoint has nothing
// left to add). Caller holds s.mu.
func (s *Service) finishLocked(j *Job, state JobState, res *core.ScreenResult, errMsg string) {
	j.state = state
	j.finished = s.now()
	j.err = errMsg
	j.result = res
	j.cancel = nil
	// Resolve the breaker's view of this job exactly once: a finished
	// machine job is the health signal. Success closes/keeps-closed, an
	// all-devices-lost failure counts toward tripping, and anything else
	// (cancel, shed, unrelated failure) just returns a held probe slot.
	if j.req.Machine != "" {
		switch {
		case state == StateDone:
			s.ctrl.Breaker.Success()
		case j.deviceLost:
			s.ctrl.Breaker.Failure()
		case j.probe:
			s.ctrl.Breaker.ReleaseProbe()
		}
	}
	s.metrics.Finished(state, j.finished.Sub(j.submitted))
	if !j.started.IsZero() {
		s.metrics.JobTimes(j.started.Sub(j.submitted), j.finished.Sub(j.started))
	}
	if res != nil {
		s.metrics.Work(res.Evaluations, res.SimulatedSeconds, res.DeviceFaults, res.Resplits)
		s.observeGenerations(res)
		if res.WarmupFactors != nil {
			s.lastWarmup = res.WarmupFactors
		}
	}
	s.recordJobSpans(j)
	if s.journal != nil {
		v := j.view()
		s.appendEvent(jobEvent{Type: evTerminal, Job: j.id, Time: j.finished, View: &v})
		if err := s.fs.Remove(s.checkpointPath(j.id)); err != nil && !os.IsNotExist(err) {
			s.metrics.WALIOError("remove")
		}
	}
	s.log.Info("job finished", "job", j.id, "state", string(state),
		"latency_seconds", j.finished.Sub(j.submitted).Seconds(), "err", errMsg)
}

// observeGenerations feeds every ligand run's per-generation simulated
// durations into the generation histogram.
func (s *Service) observeGenerations(res *core.ScreenResult) {
	for _, e := range res.Ranking {
		if e.Result == nil {
			continue
		}
		prev := 0.0
		for _, gp := range e.Result.History {
			s.metrics.GenerationSim(gp.SimSeconds - prev)
			prev = gp.SimSeconds
		}
	}
}

// recordJobSpans closes out a terminal job's wall-clock spans: the queued
// interval and the whole job interval, both relative to submission (the
// recorder's epoch). Caller holds s.mu.
func (s *Service) recordJobSpans(j *Job) {
	if j.rec == nil {
		return
	}
	if !j.started.IsZero() {
		j.rec.AddSpan(trace.Span{
			Track: "job", Name: "queued", Cat: trace.CatJob,
			Start: 0, End: j.started.Sub(j.submitted).Seconds(),
		})
	}
	j.rec.AddSpan(trace.Span{
		Track: "job", Name: "job " + j.id, Cat: trace.CatJob,
		Start: 0, End: j.finished.Sub(j.submitted).Seconds(),
		Args: map[string]string{"job": j.id, "state": string(j.state)},
	})
}

// Shutdown drains the service: intake stops (further Submits return
// ErrDraining), still-queued jobs are cancelled, and running jobs get to
// finish. When ctx expires first, running jobs are force-cancelled and
// Shutdown still waits for the workers to wind down before returning
// ctx's error. Shutdown is idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, id := range s.order {
			if j := s.jobs[id]; j.state == StateQueued {
				s.finishLocked(j, StateCancelled, nil, "cancelled at shutdown")
			}
		}
		s.queue.close()
		// Wake workers blocked in the concurrency limiter; their remaining
		// queued jobs were just cancelled above.
		s.ctrl.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, id := range s.order {
			if j := s.jobs[id]; j.state == StateRunning {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	s.mu.Lock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.mu.Unlock()
	return err
}

// crashForTest simulates kill -9 for the crash-recovery tests: from this
// point nothing further reaches the journal or triggers terminal side
// effects — exactly as if the process died — while the goroutines are
// still wound down so the test can reopen the data dir race-free. The
// journal bytes already written (synced per policy) are what the next boot
// sees.
func (s *Service) crashForTest() {
	s.mu.Lock()
	s.crashed = true
	s.journal = nil // drop without Close: no final sync, like SIGKILL
	s.draining = true
	s.queue.close()
	s.ctrl.Close()
	for _, id := range s.order {
		if j := s.jobs[id]; j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.workers.Wait()
}

// Stats is a point-in-time operational snapshot (also the source of the
// /metrics gauges).
type Stats struct {
	QueueDepth int  `json:"queue_depth"`
	Running    int  `json:"running"`
	Workers    int  `json:"workers"`
	Draining   bool `json:"draining"`
	// QueueByClass splits QueueDepth by priority class.
	QueueByClass map[string]int `json:"queue_by_class,omitempty"`
	// Limit and InFlight are the adaptive concurrency limiter's current
	// window and occupancy; Breaker is the device-health circuit state
	// ("closed", "half-open" or "open").
	Limit    int    `json:"limit"`
	InFlight int    `json:"in_flight"`
	Breaker  string `json:"breaker"`
	// StorageDegraded reports read-only mode after a journal I/O failure;
	// StorageReason is "disk_full" or "io_error" while degraded.
	StorageDegraded bool   `json:"storage_degraded,omitempty"`
	StorageReason   string `json:"storage_reason,omitempty"`
}

// Stats snapshots the live gauges.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.ctrl.Snapshot()
	st := Stats{
		QueueDepth:      s.queue.depth(),
		Workers:         s.cfg.Workers,
		Draining:        s.draining,
		QueueByClass:    make(map[string]int),
		Limit:           snap.Limit,
		InFlight:        snap.InFlight,
		Breaker:         snap.Breaker,
		StorageDegraded: s.storageDegraded,
		StorageReason:   s.storageReason,
	}
	for _, c := range admission.Classes() {
		st.QueueByClass[c.String()] = s.queue.depthClass(c)
	}
	for _, j := range s.jobs {
		if j.state == StateRunning {
			st.Running++
		}
	}
	return st
}
