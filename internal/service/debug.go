package service

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/trace"
)

// The debug surface: profiling and operational introspection, served on a
// separate listener (vsserved -debug-addr) so it is never exposed on the
// public API port.
//
//	/debug/pprof/...   net/http/pprof profiles (heap, goroutine, CPU, ...)
//	/debug/vars        expvar JSON (memstats, cmdline)
//	/debug/snapshot    point-in-time service snapshot: queue depth, busy
//	                   workers, per-device busy seconds aggregated over all
//	                   job traces, and the latest warm-up Percent factors

// DebugHandler returns the debug mux. Mount it on its own listener; the
// pprof endpoints can stall a request for seconds (CPU profiles) and must
// not share the API's connection budget.
func (s *Service) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/snapshot", s.handleDebugSnapshot)
	return mux
}

// DeviceBusy is one device track's accumulated busy time in a snapshot.
type DeviceBusy struct {
	Track       string  `json:"track"`
	BusySeconds float64 `json:"busy_seconds"`
}

// DebugSnapshot is the /debug/snapshot payload.
type DebugSnapshot struct {
	Stats         Stats   `json:"stats"`
	Jobs          int     `json:"jobs"`
	Goroutines    int     `json:"goroutines"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// DeviceBusy aggregates simulated device busy time per track over
	// every job trace held in memory, sorted by track name.
	DeviceBusy []DeviceBusy `json:"device_busy,omitempty"`
	// WarmupFactors are the most recent warm-up Percent factors (the
	// paper's equation 1) a finished job's backend reported, per kernel.
	WarmupFactors map[string][]float64 `json:"warmup_factors,omitempty"`
	// Admission is the overload-protection state: limiter window and
	// occupancy, breaker position, and the EWMA estimates behind deadline
	// shedding.
	Admission admission.Snapshot `json:"admission"`
	// Shed counts overload rejections and culls by reason.
	Shed map[string]int64 `json:"shed,omitempty"`
	// Storage reports the durability layer's degraded-mode state.
	Storage StorageStatus `json:"storage"`
}

// StorageStatus is the /debug/snapshot view of storage-degraded mode.
type StorageStatus struct {
	Degraded     bool    `json:"degraded"`
	Reason       string  `json:"reason,omitempty"`
	SinceSeconds float64 `json:"since_seconds,omitempty"`
}

// Snapshot builds the debug snapshot.
func (s *Service) DebugSnapshot() DebugSnapshot {
	st := s.Stats()
	s.mu.Lock()
	recs := make([]*trace.Recorder, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.rec != nil {
			recs = append(recs, j.rec)
		}
	}
	warm := s.lastWarmup
	started := s.started
	jobs := len(s.jobs)
	storage := StorageStatus{Degraded: s.storageDegraded, Reason: s.storageReason}
	if s.storageDegraded {
		storage.SinceSeconds = s.now().Sub(s.storageSince).Seconds()
	}
	s.mu.Unlock()

	busy := map[string]float64{}
	for _, r := range recs {
		for track, b := range r.BusyByTrack(trace.CatDevice) {
			busy[track] += b
		}
	}
	snap := DebugSnapshot{
		Stats:         st,
		Jobs:          jobs,
		Goroutines:    runtime.NumGoroutine(),
		UptimeSeconds: s.now().Sub(started).Seconds(),
		WarmupFactors: warm,
		Admission:     s.ctrl.Snapshot(),
		Shed:          s.metrics.ShedCounts(),
		Storage:       storage,
	}
	for track, b := range busy {
		snap.DeviceBusy = append(snap.DeviceBusy, DeviceBusy{Track: track, BusySeconds: b})
	}
	sort.Slice(snap.DeviceBusy, func(a, b int) bool {
		return snap.DeviceBusy[a].Track < snap.DeviceBusy[b].Track
	})
	return snap
}

func (s *Service) handleDebugSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DebugSnapshot())
}
